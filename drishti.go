// Package drishti is a from-scratch, trace-driven many-core cache-hierarchy
// simulator built to reproduce "Drishti: Do Not Forget Slicing While
// Designing Last-Level Cache Replacement Policies for Many-Core Systems"
// (MICRO 2025).
//
// The library models sliced NUCA last-level caches with state-of-the-art
// replacement policies (Hawkeye, Mockingjay, SHiP++, Glider-lite,
// CHROME-lite) and Drishti's two enhancements:
//
//   - a per-core yet global reuse predictor reached over a dedicated
//     low-latency interconnect (NOCSTAR), replacing the myopic per-slice
//     predictors, and
//   - a dynamic sampled cache that samples the LLC sets with the highest
//     capacity demand instead of random sets.
//
// # Quick start
//
//	cfg := drishti.DefaultConfig(4)
//	cfg.Policy = drishti.PolicySpec{Name: "mockingjay", Drishti: true}
//	mix := drishti.Homogeneous(drishti.SPECModels()[0], 4, 1)
//	res, err := drishti.RunMix(cfg, mix)
//
// Every experiment from the paper's evaluation section is runnable through
// Experiments / RunExperiment (or the cmd/drishti-bench binary), and the
// go-test benchmarks in bench_test.go regenerate each table and figure.
package drishti

import (
	"context"
	"io"

	"drishti/internal/experiments"
	"drishti/internal/fabric"
	"drishti/internal/metrics"
	"drishti/internal/policies"
	"drishti/internal/sim"
	"drishti/internal/trace"
	"drishti/internal/workload"
)

// Core simulation types, re-exported from the internal packages so that the
// public API is a single import.
type (
	// Config describes a simulated system (geometry, latencies, policy,
	// prefetchers, instruction budget). See DefaultConfig.
	Config = sim.Config
	// Result is everything one run produces (per-core IPC, MPKI/WPKI,
	// traffic, energy, policy budget).
	Result = sim.Result
	// System is an assembled machine; use New for custom workloads or
	// RunMix for the common path.
	System = sim.System
	// MixOutcome bundles a run with its multi-core metrics.
	MixOutcome = sim.MixOutcome

	// PolicySpec selects a replacement policy and its Drishti
	// configuration.
	PolicySpec = policies.Spec
	// Placement is the predictor placement (Local, Centralized,
	// PerCoreGlobal, ...).
	Placement = fabric.Placement

	// Model is a synthetic workload program.
	Model = workload.Model
	// Mix assigns one model per core.
	Mix = workload.Mix
	// StreamSpec parameterizes one access stream of a Model.
	StreamSpec = workload.StreamSpec

	// TraceReader is the instruction stream interface consumed by cores.
	TraceReader = trace.Reader
	// TraceRec is one memory instruction plus its preceding gap.
	TraceRec = trace.Rec

	// Multi holds the WS/HS/MIS/unfairness metrics of Section 5.2.
	Multi = metrics.Multi

	// Experiment is one reproducible table/figure from the paper.
	Experiment = experiments.Experiment
	// ExperimentParams controls experiment scale.
	ExperimentParams = experiments.Params

	// BatchVariant is one lane of a lockstep batch (see RunBatch).
	BatchVariant = sim.Variant
)

// Predictor placements (Table 2's design space).
const (
	PlacementLocal               = fabric.Local
	PlacementCentralized         = fabric.Centralized
	PlacementPerCoreGlobal       = fabric.PerCoreGlobal
	PlacementGlobalSCCentralized = fabric.GlobalSCCentralized
	PlacementGlobalSCDistributed = fabric.GlobalSCDistributed
)

// DefaultConfig returns the paper's Table 4 baseline system for the given
// core count (2 MB LLC slice per core, 512 KB L2, 48 KB L1D, mesh NoC,
// one DRAM channel per four cores).
func DefaultConfig(cores int) Config { return sim.DefaultConfig(cores) }

// ScaledConfig returns the baseline machine shrunk by scale for
// harness-speed runs; pair it with Model.Scale (see DESIGN.md §4).
func ScaledConfig(cores, scale int) Config { return sim.ScaledConfig(cores, scale) }

// New assembles a system over per-core trace readers (nil entries leave a
// core idle).
func New(cfg Config, readers []TraceReader) (*System, error) { return sim.New(cfg, readers) }

// The *Context entrypoints below are the canonical run functions: they
// accept a context for cooperative cancellation, and a context that is
// never cancelled produces results bit-identical to the non-context form.
// The context-free variants are one-line wrappers collected in compat.go;
// new code should call the *Context forms.

// RunMixContext builds and runs a system over a workload mix. The
// simulation aborts with a wrapped ctx.Err() once ctx is done.
func RunMixContext(ctx context.Context, cfg Config, mix Mix) (*Result, error) {
	return sim.RunMixContext(ctx, cfg, mix)
}

// RunAloneContext measures each core's alone IPC for the weighted-speedup
// metrics, running the independent per-core systems on up to GOMAXPROCS
// workers. Results are identical at every parallelism.
func RunAloneContext(ctx context.Context, cfg Config, mix Mix) ([]float64, error) {
	return sim.RunAloneContext(ctx, cfg, mix)
}

// RunAloneNContext is RunAloneContext with an explicit worker-pool bound
// (parallelism <= 1 runs serially).
func RunAloneNContext(ctx context.Context, cfg Config, mix Mix, parallelism int) ([]float64, error) {
	return sim.RunAloneNContext(ctx, cfg, mix, parallelism)
}

// RunBatchContext runs several policy/alone variants of one base
// configuration over a single shared generation of the mix's access
// streams, in lockstep. Each lane's result is bit-identical to running
// that configuration alone through RunMixContext (or to the corresponding
// alone run), so batching is purely a throughput optimization — one
// workload generation (and, when the configuration has no prefetchers and
// a non-inclusive LLC, one private L1/L2 simulation) is shared by all
// lanes. Results align with variants.
func RunBatchContext(ctx context.Context, base Config, variants []BatchVariant, mix Mix) ([]*Result, error) {
	return sim.RunBatchContext(ctx, base, variants, mix)
}

// RunWithMetricsContext runs a mix and computes WS/HS/MIS/unfairness
// against the supplied alone-IPC vector.
func RunWithMetricsContext(ctx context.Context, cfg Config, mix Mix, aloneIPC []float64) (*MixOutcome, error) {
	return sim.RunWithMetricsContext(ctx, cfg, mix, aloneIPC)
}

// ComputeMetrics derives WS/HS/MIS/unfairness from together and alone IPCs.
func ComputeMetrics(together, alone []float64) (Multi, error) {
	return metrics.Compute(together, alone)
}

// --- workloads ---------------------------------------------------------------

// SPECModels returns the 23 SPEC CPU2017-like workload models.
func SPECModels() []Model { return workload.SPECModels() }

// GAPModels returns the 12 GAP-like workload models.
func GAPModels() []Model { return workload.GAPModels() }

// AllSPECGAP returns the full 35-benchmark population of the main results.
func AllSPECGAP() []Model { return workload.AllSPECGAP() }

// Fig19Models returns the CVP1/CloudSuite/datacenter/XSBench-like models.
func Fig19Models() []Model { return workload.Fig19Models() }

// ModelByName looks a model up by exact name.
func ModelByName(name string) (Model, bool) { return workload.ByName(name) }

// Homogeneous builds a mix where every core runs model (distinct seeds).
func Homogeneous(model Model, cores int, seed uint64) Mix {
	return workload.Homogeneous(model, cores, seed)
}

// PaperMixes builds the paper's 35 homogeneous + 35 heterogeneous mixes.
func PaperMixes(cores int, seed uint64) []Mix { return workload.PaperMixes(cores, seed) }

// HeterogeneousMixes builds count random mixes from the model population.
func HeterogeneousMixes(models []Model, cores, count int, seed uint64) []Mix {
	return workload.HeterogeneousMixes(models, cores, count, seed)
}

// NewGenerator builds a deterministic trace generator for a model.
func NewGenerator(model Model, seed uint64) (TraceReader, error) {
	return workload.NewGenerator(model, seed)
}

// --- policies ----------------------------------------------------------------

// KnownPolicies lists the replacement policies RunMix accepts.
func KnownPolicies() []string { return policies.KnownPolicies() }

// BoolPtr is a convenience for PolicySpec literals.
func BoolPtr(v bool) *bool { return policies.BoolPtr(v) }

// PlacementPtr is a convenience for PolicySpec literals.
func PlacementPtr(p Placement) *Placement { return policies.PlacementPtr(p) }

// --- experiments ---------------------------------------------------------------

// Experiments returns every reproducible table/figure in paper order.
func Experiments() []Experiment { return experiments.All() }

// ExperimentByID returns one experiment ("fig13", "tab05", ...).
func ExperimentByID(id string) (Experiment, bool) { return experiments.ByID(id) }

// DefaultExperimentParams returns harness-scale parameters, honoring the
// DRISHTI_SCALE / DRISHTI_INSTR / DRISHTI_WARMUP / DRISHTI_MIXES /
// DRISHTI_SEED environment overrides.
func DefaultExperimentParams() ExperimentParams { return experiments.DefaultParams() }

// RunExperimentContext runs one experiment under ctx, writing its table
// to w.
func RunExperimentContext(ctx context.Context, id string, p ExperimentParams, w io.Writer) error {
	e, ok := experiments.ByID(id)
	if !ok {
		return &UnknownExperimentError{ID: id}
	}
	return e.RunContext(ctx, p, w)
}

// UnknownExperimentError reports a bad experiment ID.
type UnknownExperimentError struct{ ID string }

// Error implements error.
func (e *UnknownExperimentError) Error() string {
	return "drishti: unknown experiment " + e.ID + " (see Experiments())"
}
