module drishti

go 1.22
