// Command tracesample produces a small but genuine span journal: it runs
// one sweep job through an in-process job service with tracing enabled and
// writes every span to the given NDJSON file. CI uploads the output as a
// workflow artifact so each build carries a renderable trace
// (drishti-sim -trace-timeline <file>) of the exact code it tested.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"time"

	"drishti/internal/obs"
	"drishti/internal/obs/trace"
	"drishti/internal/serve"
)

func main() {
	out := flag.String("out", "trace-sample.ndjson", "journal output `file`")
	flag.Parse()
	if err := run(*out); err != nil {
		fmt.Fprintln(os.Stderr, "tracesample:", err)
		os.Exit(1)
	}
}

func run(out string) error {
	dir, err := os.MkdirTemp("", "tracesample-*")
	if err != nil {
		return err
	}
	defer os.RemoveAll(dir)

	j, err := trace.OpenJournal(out)
	if err != nil {
		return err
	}
	svc, err := serve.New(serve.Options{
		StoreDir: dir,
		Workers:  2,
		Registry: obs.NewRegistry(),
		Trace:    trace.NewRecorder("served", j),
	})
	if err != nil {
		return err
	}

	v, err := svc.Submit(serve.JobRequest{
		Cores:        2,
		Scale:        8,
		Instructions: 20_000,
		Warmup:       5_000,
		Seed:         1,
		Policies:     []serve.PolicyRequest{{Name: "lru"}, {Name: "mockingjay", Drishti: true}},
		Workloads:    []string{"605.mcf_s-1554B", "602.gcc_s-734B"},
	})
	if err != nil {
		return err
	}
	deadline := time.Now().Add(2 * time.Minute)
	for {
		cur, ok := svc.Get(v.ID)
		if !ok {
			return fmt.Errorf("job %s vanished", v.ID)
		}
		if cur.Status.Terminal() {
			if cur.Status != serve.StatusDone {
				return fmt.Errorf("job %s finished %s: %s", v.ID, cur.Status, cur.Error)
			}
			break
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("job %s still %s after 2m", v.ID, cur.Status)
		}
		time.Sleep(10 * time.Millisecond)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := svc.Shutdown(ctx); err != nil {
		return err
	}
	if err := j.Close(); err != nil {
		return err
	}
	spans, err := trace.ReadJournal(out)
	if err != nil {
		return err
	}
	if len(spans) == 0 {
		return fmt.Errorf("journal %s holds no spans", out)
	}
	fmt.Printf("tracesample: %d spans (trace %s) written to %s\n", len(spans), v.TraceID, out)
	return nil
}
