// Command benchcmp records `go test -bench` results as JSON and gates the
// build on throughput regressions.
//
// Record mode parses benchmark output on stdin and writes one JSON record
// per benchmark (median across -count repetitions):
//
//	go test -run '^$' -bench ... -count 3 . | benchcmp -record -out BENCH_sim.json
//
// Check mode parses a fresh run on stdin and compares it against a recorded
// baseline, failing (exit 1) when any benchmark's throughput metric drops
// more than -tolerance below the baseline (or, for benchmarks without a
// throughput metric, when ns/op grows more than -tolerance):
//
//	go test -run '^$' -bench ... -count 3 . | benchcmp -check -baseline BENCH_sim.json
//
// Medians across repetitions make the gate robust to scheduler noise;
// benchmarks present in only one of the two sets are reported but do not
// fail the check, so adding a benchmark does not require regenerating the
// baseline in the same commit.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"sort"
	"strconv"
	"strings"
)

// Result is one benchmark's recorded performance.
type Result struct {
	Name      string  `json:"name"`
	NsPerOp   float64 `json:"ns_per_op"`
	InstrPerS float64 `json:"instr_per_s,omitempty"` // ReportMetric("instr/s"), 0 when absent
	Reps      int     `json:"reps"`                  // repetitions the medians were taken over
}

// File is the BENCH_sim.json layout.
type File struct {
	Note       string   `json:"note"`
	Benchmarks []Result `json:"benchmarks"`
}

func main() {
	var (
		record    = flag.Bool("record", false, "parse stdin and write a baseline JSON file")
		check     = flag.Bool("check", false, "parse stdin and compare against -baseline")
		out       = flag.String("out", "BENCH_sim.json", "output path for -record")
		baseline  = flag.String("baseline", "BENCH_sim.json", "baseline path for -check")
		tolerance = flag.Float64("tolerance", 0.10, "allowed fractional regression before -check fails")
	)
	flag.Parse()
	if *record == *check {
		fmt.Fprintln(os.Stderr, "benchcmp: exactly one of -record or -check is required")
		os.Exit(2)
	}

	fresh, err := parse(os.Stdin)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchcmp: %v\n", err)
		os.Exit(2)
	}
	if len(fresh) == 0 {
		fmt.Fprintln(os.Stderr, "benchcmp: no benchmark lines on stdin")
		os.Exit(2)
	}

	if *record {
		f := File{
			Note:       "medians of `go test -bench` repetitions; regenerate with `make bench-quick`",
			Benchmarks: fresh,
		}
		data, err := json.MarshalIndent(f, "", "  ")
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchcmp: %v\n", err)
			os.Exit(2)
		}
		if err := os.WriteFile(*out, append(data, '\n'), 0o644); err != nil {
			fmt.Fprintf(os.Stderr, "benchcmp: %v\n", err)
			os.Exit(2)
		}
		for _, r := range fresh {
			fmt.Printf("recorded %-40s %12.0f ns/op", r.Name, r.NsPerOp)
			if r.InstrPerS > 0 {
				fmt.Printf(" %12.0f instr/s", r.InstrPerS)
			}
			fmt.Printf("  (median of %d)\n", r.Reps)
		}
		return
	}

	data, err := os.ReadFile(*baseline)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchcmp: %v\n", err)
		os.Exit(2)
	}
	var base File
	if err := json.Unmarshal(data, &base); err != nil {
		fmt.Fprintf(os.Stderr, "benchcmp: %s: %v\n", *baseline, err)
		os.Exit(2)
	}
	baseBy := map[string]Result{}
	for _, r := range base.Benchmarks {
		baseBy[r.Name] = r
	}

	failed := false
	for _, r := range fresh {
		b, ok := baseBy[r.Name]
		if !ok {
			fmt.Printf("new      %-40s (no baseline, skipped)\n", r.Name)
			continue
		}
		delete(baseBy, r.Name)
		var ratio float64 // >0 = improvement fraction, <0 = regression
		var detail string
		if b.InstrPerS > 0 && r.InstrPerS > 0 {
			ratio = r.InstrPerS/b.InstrPerS - 1
			detail = fmt.Sprintf("%.0f → %.0f instr/s", b.InstrPerS, r.InstrPerS)
		} else {
			ratio = b.NsPerOp/r.NsPerOp - 1
			detail = fmt.Sprintf("%.0f → %.0f ns/op", b.NsPerOp, r.NsPerOp)
		}
		status := "ok      "
		if ratio < -*tolerance {
			status = "REGRESSED"
			failed = true
		}
		fmt.Printf("%s %-40s %+6.1f%%  (%s)\n", status, r.Name, 100*ratio, detail)
	}
	for name := range baseBy {
		fmt.Printf("missing  %-40s (in baseline, not in this run)\n", name)
	}
	if failed {
		fmt.Fprintf(os.Stderr, "benchcmp: throughput regressed more than %.0f%% against %s\n", 100**tolerance, *baseline)
		os.Exit(1)
	}
}

// parse extracts benchmark result lines from `go test -bench` output and
// reduces repeated runs of the same benchmark to their medians.
func parse(f *os.File) ([]Result, error) {
	type samples struct {
		ns    []float64
		instr []float64
	}
	byName := map[string]*samples{}
	var order []string
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		fields := strings.Fields(sc.Text())
		// Benchmark lines: name, N, value unit [, value unit]...
		if len(fields) < 4 || !strings.HasPrefix(fields[0], "Benchmark") {
			continue
		}
		// Strip the -N GOMAXPROCS suffix so reps aggregate cleanly.
		name := fields[0]
		if i := strings.LastIndex(name, "-"); i > 0 {
			if _, err := strconv.Atoi(name[i+1:]); err == nil {
				name = name[:i]
			}
		}
		s := byName[name]
		if s == nil {
			s = &samples{}
			byName[name] = s
			order = append(order, name)
		}
		for i := 2; i+1 < len(fields); i += 2 {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				continue
			}
			switch fields[i+1] {
			case "ns/op":
				s.ns = append(s.ns, v)
			case "instr/s":
				s.instr = append(s.instr, v)
			}
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	var out []Result
	for _, name := range order {
		s := byName[name]
		if len(s.ns) == 0 {
			continue
		}
		out = append(out, Result{
			Name:      name,
			NsPerOp:   median(s.ns),
			InstrPerS: median(s.instr),
			Reps:      len(s.ns),
		})
	}
	return out, nil
}

func median(v []float64) float64 {
	if len(v) == 0 {
		return 0
	}
	s := append([]float64(nil), v...)
	sort.Float64s(s)
	if n := len(s); n%2 == 1 {
		return s[n/2]
	} else {
		return (s[n/2-1] + s[n/2]) / 2
	}
}
