package sampler

import (
	"testing"
	"testing/quick"

	"drishti/internal/stats"
)

func TestStaticSelection(t *testing.T) {
	s := NewStatic(256, 16, stats.NewRand(1))
	if s.N() != 16 || len(s.SampledSets()) != 16 {
		t.Fatalf("wrong count: %d", s.N())
	}
	seen := map[int]bool{}
	for i, set := range s.SampledSets() {
		if set < 0 || set >= 256 || seen[set] {
			t.Fatalf("bad set %d", set)
		}
		seen[set] = true
		idx, ok := s.IsSampled(set)
		if !ok || idx != i {
			t.Fatalf("IsSampled(%d) = %d,%v", set, idx, ok)
		}
	}
	if _, ok := s.IsSampled(-1); ok {
		t.Fatal("negative set sampled")
	}
	if g := s.Generation(); g != 0 {
		t.Fatalf("static generation %d", g)
	}
}

func TestStaticDeterminism(t *testing.T) {
	a := NewStatic(128, 8, stats.NewRand(7))
	b := NewStatic(128, 8, stats.NewRand(7))
	for i, set := range a.SampledSets() {
		if b.SampledSets()[i] != set {
			t.Fatal("static selection not deterministic")
		}
	}
}

func TestFixed(t *testing.T) {
	f := NewFixed([]int{3, 1, 4})
	if f.N() != 3 {
		t.Fatalf("N = %d", f.N())
	}
	if idx, ok := f.IsSampled(1); !ok || idx != 1 {
		t.Fatalf("IsSampled(1) = %d,%v", idx, ok)
	}
}

func TestDynamicConfigNormalize(t *testing.T) {
	cfg := DynamicConfig{}.Normalize(2048, 16)
	if cfg.Sets != 2048 || cfg.CounterBits != 8 || cfg.MonitorLen != 2048*16 ||
		cfg.ActiveLen != 4*2048*16 || cfg.UniformThreshold != 100 {
		t.Fatalf("defaults wrong: %+v", cfg)
	}
	if err := cfg.Validate(); err != nil {
		t.Fatal(err)
	}
	if err := (DynamicConfig{Sets: 4, N: 8}).Validate(); err == nil {
		t.Fatal("N > Sets accepted")
	}
}

func TestDynamicSelectsHighMissSets(t *testing.T) {
	cfg := DynamicConfig{Sets: 64, N: 4, CounterBits: 8, MonitorLen: 1024, ActiveLen: 4096, UniformThreshold: 100}
	d, err := NewDynamic(cfg, stats.NewRand(3))
	if err != nil {
		t.Fatal(err)
	}
	gen0 := d.Generation()
	// Sets 0-3 always miss; sets 4-7 always hit; the rest untouched. The
	// missing sets' counters must exceed the uniform threshold.
	for i := 0; i < 1024; i++ {
		set := i % 8
		d.OnAccess(set, set >= 4)
	}
	if d.Generation() == gen0 {
		t.Fatal("no selection after monitor interval")
	}
	got := d.SampledSets()
	want := map[int]bool{0: true, 1: true, 2: true, 3: true}
	for _, s := range got {
		if !want[s] {
			t.Fatalf("selected %v, want the four missing sets", got)
		}
	}
	if d.Selections != 1 || d.UniformFallbacks != 0 {
		t.Fatalf("stats %d/%d", d.Selections, d.UniformFallbacks)
	}
}

func TestDynamicUniformFallback(t *testing.T) {
	cfg := DynamicConfig{Sets: 64, N: 4, CounterBits: 8, MonitorLen: 640, ActiveLen: 1280, UniformThreshold: 100}
	d, err := NewDynamic(cfg, stats.NewRand(5))
	if err != nil {
		t.Fatal(err)
	}
	// Uniform traffic: every set misses equally (lbm-like).
	for i := 0; i < 640; i++ {
		d.OnAccess(i%64, false)
	}
	if d.UniformFallbacks != 1 {
		t.Fatalf("uniform demand not detected: %d fallbacks", d.UniformFallbacks)
	}
	if len(d.SampledSets()) != 4 {
		t.Fatal("fallback selection missing")
	}
}

func TestDynamicPhaseCycle(t *testing.T) {
	cfg := DynamicConfig{Sets: 16, N: 2, CounterBits: 8, MonitorLen: 100, ActiveLen: 200, UniformThreshold: 10}
	d, err := NewDynamic(cfg, stats.NewRand(7))
	if err != nil {
		t.Fatal(err)
	}
	// Drive several full monitor+active cycles; generation should bump once
	// per cycle, and counters reset each time.
	for cycle := 0; cycle < 3; cycle++ {
		gen := d.Generation()
		for i := 0; i < 100; i++ { // monitor
			d.OnAccess(i%16, i%16 != 0) // set 0 misses
		}
		if d.Generation() != gen+1 {
			t.Fatalf("cycle %d: generation %d, want %d", cycle, d.Generation(), gen+1)
		}
		if _, ok := d.IsSampled(0); !ok {
			t.Fatalf("cycle %d: high-miss set 0 not sampled", cycle)
		}
		for i := 0; i < 200; i++ { // active
			d.OnAccess(i%16, true)
		}
		// After active, counters must be back at init.
		if d.Counter(0) != 128 {
			t.Fatalf("counter not reset: %d", d.Counter(0))
		}
	}
}

func TestDynamicCounterSaturation(t *testing.T) {
	cfg := DynamicConfig{Sets: 4, N: 1, CounterBits: 8, MonitorLen: 10000, ActiveLen: 100, UniformThreshold: 1}
	d, err := NewDynamic(cfg, stats.NewRand(9))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 500; i++ {
		d.OnAccess(0, false) // misses: counter up
		d.OnAccess(1, true)  // hits: counter down
	}
	if d.Counter(0) != 255 {
		t.Fatalf("counter 0 = %d, want saturation at 255", d.Counter(0))
	}
	if d.Counter(1) != 0 {
		t.Fatalf("counter 1 = %d, want floor 0", d.Counter(1))
	}
}

func TestDynamicSampledSetsAlwaysValid(t *testing.T) {
	check := func(seed uint64, accesses []uint16) bool {
		cfg := DynamicConfig{Sets: 32, N: 4, CounterBits: 8, MonitorLen: 50, ActiveLen: 100, UniformThreshold: 20}
		d, err := NewDynamic(cfg, stats.NewRand(seed))
		if err != nil {
			return false
		}
		for _, a := range accesses {
			d.OnAccess(int(a)%32, a%3 == 0)
		}
		sets := d.SampledSets()
		if len(sets) != 4 {
			return false
		}
		seen := map[int]bool{}
		for i, s := range sets {
			if s < 0 || s >= 32 || seen[s] {
				return false
			}
			seen[s] = true
			idx, ok := d.IsSampled(s)
			if !ok || idx != i {
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
