// Package sampler implements sampled-set selection for LLC replacement
// policies: the conventional static random selection, a fixed selection (for
// the Table 1 oracle experiments), and Drishti's dynamic sampled cache
// (Enhancement II, Section 4.2), which picks the sets with the highest
// capacity demand using per-set saturating counters.
package sampler

import (
	"fmt"

	"drishti/internal/stats"
)

// SetSelector decides which LLC sets of one slice are sampled sets. The
// owning policy keeps its sampled-cache contents keyed by the selector's
// sample index and must discard them whenever Generation changes.
type SetSelector interface {
	// Name identifies the selector for reports.
	Name() string
	// IsSampled returns the stable sample index of set if it is currently
	// sampled.
	IsSampled(set int) (idx int, ok bool)
	// SampledSets returns the currently sampled sets in index order.
	SampledSets() []int
	// Generation increments every time the sampled-set selection changes.
	Generation() uint64
	// OnAccess feeds the selector one demand access to the slice (for the
	// dynamic monitor). hit reports whether the LLC access hit.
	OnAccess(set int, hit bool)
	// N returns the number of sampled sets.
	N() int
}

// --- static ---------------------------------------------------------------

// Static selects N sets pseudo-randomly once, like Hawkeye and Mockingjay do
// (Section 2).
type Static struct {
	sets  map[int]int
	order []int
	n     int
}

// NewStatic selects n of sets deterministically from rnd.
func NewStatic(sets, n int, rnd *stats.Rand) *Static {
	if n > sets {
		n = sets
	}
	chosen := rnd.Choose(sets, n)
	return newStaticFrom(chosen)
}

// NewFixed selects exactly the given sets (Table 1's oracle cases).
func NewFixed(sets []int) *Static { return newStaticFrom(append([]int(nil), sets...)) }

func newStaticFrom(chosen []int) *Static {
	s := &Static{sets: make(map[int]int, len(chosen)), order: chosen, n: len(chosen)}
	for i, set := range chosen {
		s.sets[set] = i
	}
	return s
}

// Name implements SetSelector.
func (s *Static) Name() string { return "static" }

// IsSampled implements SetSelector.
func (s *Static) IsSampled(set int) (int, bool) {
	idx, ok := s.sets[set]
	return idx, ok
}

// SampledSets implements SetSelector.
func (s *Static) SampledSets() []int { return s.order }

// Generation implements SetSelector: static selection never changes.
func (s *Static) Generation() uint64 { return 0 }

// OnAccess implements SetSelector (no-op).
func (s *Static) OnAccess(int, bool) {}

// N implements SetSelector.
func (s *Static) N() int { return s.n }

// --- dynamic (Drishti) ------------------------------------------------------

// DynamicConfig parameterizes the dynamic sampled cache. Zero fields take
// the paper's defaults via Normalize.
type DynamicConfig struct {
	Sets             int // LLC sets per slice
	N                int // sampled sets to select
	CounterBits      int // k (paper: 8)
	MonitorLen       int // monitoring interval in slice loads (paper: lines per slice = 32K)
	ActiveLen        int // selection lifetime in slice loads (paper: 4×MonitorLen = 128K)
	UniformThreshold int // max-min below which demand is "uniform" (paper: 100)
}

// Normalize fills defaults for a slice with the given geometry.
func (c DynamicConfig) Normalize(sets, ways int) DynamicConfig {
	if c.Sets == 0 {
		c.Sets = sets
	}
	if c.N == 0 {
		c.N = 16
	}
	if c.CounterBits == 0 {
		c.CounterBits = 8
	}
	if c.MonitorLen == 0 {
		c.MonitorLen = sets * ways
	}
	if c.ActiveLen == 0 {
		c.ActiveLen = 4 * c.MonitorLen
	}
	if c.UniformThreshold == 0 {
		c.UniformThreshold = 100
	}
	return c
}

// Validate reports configuration errors.
func (c DynamicConfig) Validate() error {
	if c.Sets <= 0 || c.N <= 0 || c.N > c.Sets {
		return fmt.Errorf("sampler: invalid dynamic config sets=%d n=%d", c.Sets, c.N)
	}
	if c.CounterBits < 1 || c.CounterBits > 16 {
		return fmt.Errorf("sampler: counter bits %d out of range", c.CounterBits)
	}
	if c.MonitorLen <= 0 || c.ActiveLen <= 0 {
		return fmt.Errorf("sampler: intervals must be positive")
	}
	return nil
}

type dynPhase uint8

const (
	phaseMonitor dynPhase = iota
	phaseActive
)

// Dynamic is Drishti's dynamic sampled cache. Each set has a k-bit
// saturating counter initialized to 2^k/2, incremented on an LLC miss and
// decremented on a hit. After MonitorLen slice loads the N highest-counter
// sets become the sampled sets for ActiveLen loads; then counters reset and
// monitoring repeats. If max−min counter < UniformThreshold the slice has
// uniform capacity demand and selection falls back to random (Section 4.2).
type Dynamic struct {
	cfg     DynamicConfig
	rnd     *stats.Rand
	ctrs    []uint16
	ctrInit uint16
	ctrMax  uint16

	phase     dynPhase
	phaseLeft int

	current    map[int]int
	sampled    []bool // bitmap mirror of current, for branch-cheap membership
	order      []int
	generation uint64

	// Selections and UniformFallbacks are exported for experiment reports.
	Selections       uint64
	UniformFallbacks uint64

	// SampledMisses/UnsampledMisses split demand misses by whether they hit a
	// currently sampled set — the utilization signal the telemetry layer
	// reports (how much of the miss stream the sampled cache actually sees).
	// Churn counts sets newly entering the selection across re-selections
	// (the initial random selection is not churn).
	SampledMisses   uint64
	UnsampledMisses uint64
	Churn           uint64
}

// NewDynamic builds the dynamic selector; the initial selection (before the
// first monitoring interval completes) is random, like the baseline.
func NewDynamic(cfg DynamicConfig, rnd *stats.Rand) (*Dynamic, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	d := &Dynamic{
		cfg:     cfg,
		rnd:     rnd,
		ctrs:    make([]uint16, cfg.Sets),
		sampled: make([]bool, cfg.Sets),
		ctrInit: uint16(1) << (cfg.CounterBits - 1),
		ctrMax:  uint16(1)<<cfg.CounterBits - 1,
	}
	d.resetCounters()
	d.phase = phaseMonitor
	d.phaseLeft = cfg.MonitorLen
	d.adopt(d.rnd.Choose(cfg.Sets, cfg.N))
	return d, nil
}

// MustDynamic is NewDynamic that panics on configuration errors.
func MustDynamic(cfg DynamicConfig, rnd *stats.Rand) *Dynamic {
	d, err := NewDynamic(cfg, rnd)
	if err != nil {
		panic(err)
	}
	return d
}

// Name implements SetSelector.
func (d *Dynamic) Name() string { return "dynamic" }

// IsSampled implements SetSelector.
func (d *Dynamic) IsSampled(set int) (int, bool) {
	idx, ok := d.current[set]
	return idx, ok
}

// SampledSets implements SetSelector.
func (d *Dynamic) SampledSets() []int { return d.order }

// Generation implements SetSelector.
func (d *Dynamic) Generation() uint64 { return d.generation }

// N implements SetSelector.
func (d *Dynamic) N() int { return d.cfg.N }

// Counter exposes the saturating counter of a set (for tests and reports).
func (d *Dynamic) Counter(set int) uint16 { return d.ctrs[set] }

// OnAccess implements SetSelector: drives the monitor state machine.
func (d *Dynamic) OnAccess(set int, hit bool) {
	if !hit {
		if d.sampled[set] {
			d.SampledMisses++
		} else {
			d.UnsampledMisses++
		}
	}
	if d.phase == phaseMonitor {
		c := &d.ctrs[set]
		if hit {
			if *c > 0 {
				*c--
			}
		} else if *c < d.ctrMax {
			*c++
		}
	}
	d.phaseLeft--
	if d.phaseLeft > 0 {
		return
	}
	switch d.phase {
	case phaseMonitor:
		d.selectSets()
		d.phase = phaseActive
		d.phaseLeft = d.cfg.ActiveLen
	case phaseActive:
		d.resetCounters()
		d.phase = phaseMonitor
		d.phaseLeft = d.cfg.MonitorLen
	}
}

func (d *Dynamic) resetCounters() {
	for i := range d.ctrs {
		d.ctrs[i] = d.ctrInit
	}
}

func (d *Dynamic) selectSets() {
	d.Selections++
	minC, maxC := d.ctrs[0], d.ctrs[0]
	for _, c := range d.ctrs[1:] {
		if c < minC {
			minC = c
		}
		if c > maxC {
			maxC = c
		}
	}
	if int(maxC-minC) < d.cfg.UniformThreshold {
		// Uniform capacity demand (e.g., lbm): random selection, as the
		// baseline policies do.
		d.UniformFallbacks++
		d.adopt(d.rnd.Choose(d.cfg.Sets, d.cfg.N))
		return
	}
	vals := make([]uint64, len(d.ctrs))
	for i, c := range d.ctrs {
		vals[i] = uint64(c)
	}
	d.adopt(stats.TopK(vals, d.cfg.N))
}

func (d *Dynamic) adopt(sets []int) {
	// Churn counts sets absent from the previous selection; the initial
	// random adoption has no predecessor and does not count.
	if d.generation > 0 {
		for _, s := range sets {
			if !d.sampled[s] {
				d.Churn++
			}
		}
	}
	d.generation++
	d.order = sets
	d.current = make(map[int]int, len(sets))
	for i := range d.sampled {
		d.sampled[i] = false
	}
	for i, s := range sets {
		d.current[s] = i
		d.sampled[s] = true
	}
}
