package ring

import (
	"fmt"
	"math/rand"
	"testing"
)

// sampleKeys builds n keys shaped like fleet cell keys (long structured
// strings) from a fixed seed, so the property tests are deterministic.
func sampleKeys(n int) []string {
	rng := rand.New(rand.NewSource(42))
	keys := make([]string, n)
	for i := range keys {
		keys[i] = fmt.Sprintf("cfg.c%d.s%d.i%d|mix-%08x", rng.Intn(64)+1, rng.Intn(16)+1, rng.Intn(1_000_000), rng.Uint32())
	}
	return keys
}

// TestOwnerStableAcrossConstruction asserts routing is a pure function of
// (key, member set): a ring rebuilt from a shuffled member list — as a
// restarted process or a different fleet node would build it — routes
// every key identically.
func TestOwnerStableAcrossConstruction(t *testing.T) {
	members := []string{"http://c3:1", "http://c1:1", "http://c0:1", "http://c2:1"}
	a := New(members, 0)
	shuffled := []string{"http://c0:1", "http://c2:1", "http://c3:1", "http://c1:1"}
	b := New(shuffled, 0)
	c := New(append(append([]string{}, members...), "http://c1:1", ""), 0) // dupes and blanks ignored
	for _, k := range sampleKeys(10_000) {
		if a.Owner(k) != b.Owner(k) || a.Owner(k) != c.Owner(k) {
			t.Fatalf("owner of %q depends on construction order: %q vs %q vs %q",
				k, a.Owner(k), b.Owner(k), c.Owner(k))
		}
	}
}

// TestMinimalRemapOnMembershipChange is the consistent-hashing property:
// removing (or adding) one member of n remaps only the keys that member
// owned (~K/n of them); every other key keeps its owner.
func TestMinimalRemapOnMembershipChange(t *testing.T) {
	keys := sampleKeys(10_000)
	for _, n := range []int{2, 4, 8} {
		members := make([]string, n)
		for i := range members {
			members[i] = fmt.Sprintf("shard-%d", i)
		}
		full := New(members, 0)
		smaller := New(members[:n-1], 0)
		larger := New(append(append([]string{}, members...), fmt.Sprintf("shard-%d", n)), 0)

		removed, moved, added := 0, 0, 0
		for _, k := range keys {
			was := full.Owner(k)
			if now := smaller.Owner(k); now != was {
				if was != members[n-1] {
					// A key not owned by the removed member changed
					// owner — consistent hashing forbids that entirely.
					moved++
				}
				removed++
			}
			if larger.Owner(k) != was {
				added++
			}
		}
		if moved != 0 {
			t.Errorf("n=%d: %d keys not owned by the removed member were remapped", n, moved)
		}
		// The removed member owned ~K/n keys; allow 2x slack for hash
		// variance at 64 replicas before calling the split broken.
		bound := 2 * len(keys) / n
		if removed > bound {
			t.Errorf("n=%d: removing one member remapped %d/%d keys (bound %d)", n, removed, len(keys), bound)
		}
		boundAdd := 2 * len(keys) / (n + 1)
		if added > boundAdd {
			t.Errorf("n=%d: adding one member remapped %d/%d keys (bound %d)", n, added, len(keys), boundAdd)
		}
		if removed == 0 || added == 0 {
			t.Errorf("n=%d: membership change remapped nothing (removed=%d added=%d) — ring is not splitting load", n, removed, added)
		}
	}
}

// TestLoadSplit asserts no member is starved or doubly loaded beyond the
// variance 64 virtual nodes should leave.
func TestLoadSplit(t *testing.T) {
	members := []string{"a", "b", "c", "d"}
	r := New(members, 0)
	counts := map[string]int{}
	keys := sampleKeys(10_000)
	for _, k := range keys {
		counts[r.Owner(k)]++
	}
	want := len(keys) / len(members)
	for _, m := range members {
		if counts[m] < want/2 || counts[m] > want*2 {
			t.Errorf("member %s owns %d keys, want within [%d,%d]", m, counts[m], want/2, want*2)
		}
	}
}

func TestEmptyAndSingle(t *testing.T) {
	if got := New(nil, 0).Owner("k"); got != "" {
		t.Fatalf("empty ring owner = %q, want empty", got)
	}
	one := New([]string{"only"}, 0)
	for _, k := range sampleKeys(100) {
		if one.Owner(k) != "only" {
			t.Fatalf("single-member ring must own every key")
		}
	}
}
