// Package ring is the consistent-hash ring shared by the sharded store
// (internal/store routes content addresses to shard backends) and the
// multi-coordinator fleet (internal/dist routes cell keys to their owning
// coordinator). Routing is a pure function of (key, member set): no state,
// no randomness, no process identity — two processes that agree on the
// member list agree on every owner, across restarts, regardless of the
// order members were listed in.
//
// Each member is projected onto the ring at Replicas virtual points
// (SHA-256 of "member#i"), which keeps the load split close to uniform
// and, crucially, bounds churn: adding or removing one member of n remaps
// only the ~K/n keys whose nearest point belonged to it, leaving every
// other key's owner untouched (asserted by the property test in this
// package).
package ring

import (
	"crypto/sha256"
	"encoding/binary"
	"sort"
	"strconv"
)

// DefaultReplicas is the virtual-node count used when New is given a
// non-positive replica count. 64 points per member keeps the max/min load
// ratio within a few percent for small member sets without making ring
// construction noticeable.
const DefaultReplicas = 64

// point is one virtual node: a position on the ring owned by a member.
type point struct {
	hash   uint64
	member int // index into Ring.members
}

// Ring is an immutable consistent-hash ring over a set of member names.
// Construct a new Ring to change membership; lookups are safe for
// concurrent use.
type Ring struct {
	members []string
	points  []point
}

// New builds a ring over members (deduplicated, order-insensitive) with
// the given virtual-node count per member (<=0 takes DefaultReplicas).
// An empty member list yields a ring whose Owner is always "".
func New(members []string, replicas int) *Ring {
	if replicas <= 0 {
		replicas = DefaultReplicas
	}
	seen := make(map[string]bool, len(members))
	uniq := make([]string, 0, len(members))
	for _, m := range members {
		if m == "" || seen[m] {
			continue
		}
		seen[m] = true
		uniq = append(uniq, m)
	}
	// Sorting the member list first makes the members index — and with it
	// the tie-break below — independent of input order.
	sort.Strings(uniq)
	r := &Ring{members: uniq}
	r.points = make([]point, 0, len(uniq)*replicas)
	for mi, m := range uniq {
		for i := 0; i < replicas; i++ {
			r.points = append(r.points, point{
				hash:   hash64(m + "#" + strconv.Itoa(i)),
				member: mi,
			})
		}
	}
	sort.Slice(r.points, func(i, j int) bool {
		if r.points[i].hash != r.points[j].hash {
			return r.points[i].hash < r.points[j].hash
		}
		// Equal hashes (astronomically rare) tie-break on the sorted
		// member index so the winner never depends on input order.
		return r.points[i].member < r.points[j].member
	})
	return r
}

// Members returns the deduplicated, sorted member names.
func (r *Ring) Members() []string {
	out := make([]string, len(r.members))
	copy(out, r.members)
	return out
}

// Len returns the member count.
func (r *Ring) Len() int { return len(r.members) }

// Owner returns the member owning key: the member of the first virtual
// point at or clockwise-after the key's hash. Empty ring returns "".
func (r *Ring) Owner(key string) string {
	if len(r.points) == 0 {
		return ""
	}
	h := hash64(key)
	i := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	if i == len(r.points) {
		i = 0 // wrap past the last point to the ring's start
	}
	return r.members[r.points[i].member]
}

// hash64 maps a string to a ring position. SHA-256 (truncated) rather
// than a fast non-crypto hash: ring lookups are never on a simulation hot
// path, and the uniformity matters more than the nanoseconds.
func hash64(s string) uint64 {
	sum := sha256.Sum256([]byte(s))
	return binary.BigEndian.Uint64(sum[:8])
}
