package workload

import (
	"fmt"

	"drishti/internal/trace"
)

// streamChunkLen is the Stream materialization granularity. Chunks are
// recycled once every cursor has moved past them, so the resident window
// is a few chunks per core regardless of run length.
const streamChunkLen = 2048

// Stream materializes a single trace.Reader into a bounded, chunked
// window that several consumers read at independent positions. It is the
// shared-trace layer of batched simulation: one generator produces each
// record exactly once, and every lane replays it through its own Cursor.
//
// A finite source is looped (Reset + reread) exactly like the simulator's
// step loop does, so cursors see an endless stream either way. Storage is
// bounded by the caller advancing Release past positions no cursor will
// read again; reading below the released low-water mark panics (it is a
// scheduling bug, not a recoverable condition).
//
// Stream is not safe for unsynchronized concurrent mutation. Concurrent
// batched lanes may read already-materialized records through their
// cursors from several goroutines, provided the driver has called Ensure
// up to every position the lanes may reach and calls Ensure/Release only
// at barriers when no cursor is reading (the lockstep discipline in
// sim.runLockstep).
type Stream struct {
	src      trace.Reader
	chunkLen uint64
	base     uint64 // absolute record index of chunks[0][0]
	next     uint64 // absolute record index of the first unmaterialized record
	chunks   [][]trace.Rec
	free     [][]trace.Rec
	done     bool // src exhausted and empty on loop (degenerate source)
}

// NewStream wraps src. chunkLen <= 0 selects the default granularity.
func NewStream(src trace.Reader, chunkLen int) *Stream {
	if chunkLen <= 0 {
		chunkLen = streamChunkLen
	}
	return &Stream{src: src, chunkLen: uint64(chunkLen)}
}

// get returns the record at absolute position pos, materializing from the
// source as needed. ok is false only for a degenerate (empty) source.
func (s *Stream) get(pos uint64) (trace.Rec, bool) {
	for pos >= s.next {
		if !s.fill() {
			return trace.Rec{}, false
		}
	}
	if pos < s.base {
		panic(fmt.Sprintf("workload: stream read at %d below released window base %d", pos, s.base))
	}
	off := pos - s.base
	return s.chunks[off/s.chunkLen][off%s.chunkLen], true
}

// fill materializes one more chunk. A finite source is looped via Reset,
// mirroring the simulator's own exhaustion handling, so every chunk is
// full unless the source is empty even after a Reset.
func (s *Stream) fill() bool {
	if s.done {
		return false
	}
	var c []trace.Rec
	if n := len(s.free); n > 0 {
		c, s.free = s.free[n-1][:0], s.free[:n-1]
	} else {
		c = make([]trace.Rec, 0, s.chunkLen)
	}
	for uint64(len(c)) < s.chunkLen {
		rec, ok := s.src.Next()
		if !ok {
			s.src.Reset()
			if rec, ok = s.src.Next(); !ok {
				s.done = true
				break
			}
		}
		c = append(c, rec)
	}
	if len(c) == 0 {
		return false
	}
	s.chunks = append(s.chunks, c)
	s.next += uint64(len(c))
	return true
}

// Ensure materializes records until every position below pos is readable
// (or the source is degenerate). After Ensure(pos), cursor reads strictly
// below pos never mutate the stream, so they are safe from concurrent
// goroutines until the next Ensure/Release.
func (s *Stream) Ensure(pos uint64) {
	for s.next < pos && s.fill() {
	}
}

// Release recycles every chunk wholly below min — the minimum position any
// cursor will read again. Reading below min afterwards panics.
func (s *Stream) Release(min uint64) {
	drop := 0
	for drop < len(s.chunks) &&
		uint64(len(s.chunks[drop])) == s.chunkLen &&
		s.base+uint64(drop+1)*s.chunkLen <= min {
		drop++
	}
	if drop == 0 {
		return
	}
	s.free = append(s.free, s.chunks[:drop]...)
	s.chunks = append(s.chunks[:0], s.chunks[drop:]...)
	s.base += uint64(drop) * s.chunkLen
}

// Cursor returns a new consumer positioned at the stream's origin. Every
// lane of a batch reads through its own cursor.
func (s *Stream) Cursor() *Cursor { return &Cursor{s: s} }

// Cursor is one consumer's read position in a Stream. It implements
// trace.Reader except for Reset: the window behind the low-water mark is
// recycled, so shared-stream consumption is strictly single-pass (the
// stream itself already loops finite sources).
type Cursor struct {
	s   *Stream
	pos uint64
}

// Next implements trace.Reader.
func (c *Cursor) Next() (trace.Rec, bool) {
	rec, ok := c.s.get(c.pos)
	if ok {
		c.pos++
	}
	return rec, ok
}

// Pos returns the absolute index of the record the next Next will return.
// Batch schedulers compare cursor positions to bound lane skew.
func (c *Cursor) Pos() uint64 { return c.pos }

// Reset implements trace.Reader by panicking: shared-stream cursors are
// single-pass by construction (see Cursor).
func (c *Cursor) Reset() {
	panic("workload: shared-stream cursors cannot be reset")
}
