package workload

import "testing"

func TestMixKeyDistinguishesScaleAndSeeds(t *testing.T) {
	models := AllSPECGAP()
	m := models[0]

	full := Homogeneous(m, 2, 1)
	scaled := Homogeneous(m.Scale(8, 7), 2, 1)
	if full.Key() == scaled.Key() {
		t.Fatal("scaled mix shares a key with the full-size mix (same name, different streams)")
	}

	reseeded := Homogeneous(m, 2, 2)
	if full.Key() == reseeded.Key() {
		t.Fatal("reseeded mix shares a key")
	}

	again := Homogeneous(m, 2, 1)
	if full.Key() != again.Key() {
		t.Fatal("identical mixes produce different keys")
	}
}

func TestModelKeyCoversStreams(t *testing.T) {
	a := AllSPECGAP()[0]
	b := a
	b.Streams = append([]StreamSpec(nil), a.Streams...)
	if a.Key() != b.Key() {
		t.Fatal("copied model differs")
	}
	b.Streams[0].FootprintKB++
	if a.Key() == b.Key() {
		t.Fatal("stream footprint change not reflected in key")
	}
}
