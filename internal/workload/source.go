package workload

import (
	"encoding/binary"
	"fmt"
	"hash/fnv"

	"drishti/internal/trace"
)

// Source optionally overrides how one core of a mix produces its access
// stream. The zero value keeps the core on Models[c]; at most one field
// may be set. Scenario specs (internal/scenario) compile phase schedules
// and trace replay into sources, so heterogeneous "production" mixes flow
// through the same Mix type — and the same content-address chain — as the
// paper's model-only mixes.
type Source struct {
	// Phased runs a phase-changing schedule (PhasedGenerator) seeded
	// with the core's mix seed.
	Phased *PhasedModel
	// Trace replays a recorded stream. Finite streams loop: the
	// simulator Resets an exhausted reader exactly like Stream does.
	Trace *TraceData
}

func (s Source) active() bool { return s.Phased != nil || s.Trace != nil }

// TraceData is a replayed record stream with a stable identity, so
// trace-backed mixes participate in memo caches and the durable store.
type TraceData struct {
	Name string
	Recs []trace.Rec
}

// Key returns a stable identity string for the trace: its name, length,
// and an FNV-1a digest over every record's fields. Two traces with equal
// keys replay the same stream.
func (t *TraceData) Key() string {
	h := fnv.New64a()
	var buf [21]byte
	for _, r := range t.Recs {
		binary.LittleEndian.PutUint64(buf[0:8], r.PC)
		binary.LittleEndian.PutUint64(buf[8:16], r.Addr)
		binary.LittleEndian.PutUint32(buf[16:20], r.Gap)
		buf[20] = 0
		if r.Write {
			buf[20] = 1
		}
		h.Write(buf[:])
	}
	return fmt.Sprintf("trace=%s|n=%d|h=%016x", t.Name, len(t.Recs), h.Sum64())
}

// sourceAt returns core c's source override (the zero Source when the
// mix has none).
func (m Mix) sourceAt(c int) Source {
	if c < len(m.Sources) {
		return m.Sources[c]
	}
	return Source{}
}

// NewReader builds core c's record stream for the mix: the core's Source
// override when one is set, otherwise a model generator. It is the single
// construction point the simulator uses (plain, alone, and batched runs),
// so source-bearing mixes behave identically on every execution path.
func NewReader(m Mix, c int) (trace.Reader, error) {
	if c < 0 || c >= len(m.Models) {
		return nil, fmt.Errorf("workload: mix %s has no core %d", m.Name, c)
	}
	var seed uint64
	if c < len(m.Seeds) {
		seed = m.Seeds[c]
	}
	switch src := m.sourceAt(c); {
	case src.Phased != nil && src.Trace != nil:
		return nil, fmt.Errorf("workload: mix %s core %d sets both phased and trace sources", m.Name, c)
	case src.Phased != nil:
		return NewPhasedGenerator(*src.Phased, seed)
	case src.Trace != nil:
		if len(src.Trace.Recs) == 0 {
			return nil, fmt.Errorf("workload: mix %s core %d replays an empty trace %q", m.Name, c, src.Trace.Name)
		}
		return trace.NewSliceReader(src.Trace.Recs), nil
	default:
		return NewGenerator(m.Models[c], seed)
	}
}

// ForkReader checkpoints a reader built by NewReader: the fork and the
// original emit identical future streams and never affect each other. The
// batched fallback path (per-lane stream replay) forks one prototype
// reader per core instead of assuming every core is a plain Generator.
func ForkReader(r trace.Reader) (trace.Reader, error) {
	switch g := r.(type) {
	case *Generator:
		return g.Fork(), nil
	case *PhasedGenerator:
		return g.Fork(), nil
	case *trace.SliceReader:
		return g.Fork(), nil
	}
	return nil, fmt.Errorf("workload: cannot fork reader of type %T", r)
}
