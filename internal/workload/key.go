package workload

import (
	"fmt"
	"strings"
)

// Key returns a stable identity string for the model: the name plus every
// generation parameter. Name alone is not enough for cache keys — the
// harness scales models per machine (Scale rewrites footprints and
// SetIndexBits while keeping the name), so two same-named models can
// generate different address streams.
func (m Model) Key() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s/%s|gap=%g|bits=%d", m.Name, m.Suite, m.MeanGap, m.SetIndexBits)
	// An explicit "geometric" simulates identically to the default, so
	// it keys identically too; only genuinely different gap processes
	// extend the key (keeping every pre-existing model key byte-stable).
	if m.GapDist != "" && m.GapDist != "geometric" {
		fmt.Fprintf(&b, "|gdist=%s,%g", m.GapDist, m.GapShape)
	}
	for _, st := range m.Streams {
		fmt.Fprintf(&b, "|s=%d,%g,%d,%d,%d,%g,%g,%d,%g,%d",
			st.Kind, st.Weight, st.FootprintKB, st.PCs, st.BlocksPerPC,
			st.WriteFrac, st.Skew, st.StrideBlk, st.HotSetFrac, st.HotSets)
	}
	return b.String()
}

// Key returns a stable identity string for the mix: its name plus the
// per-core model keys and generator seeds, so mixes that share a name but
// differ in population, scaling, or seeding never collide in memo caches.
func (m Mix) Key() string {
	var b strings.Builder
	fmt.Fprintf(&b, "mix=%s|cores=%d", m.Name, m.Cores())
	for c, mod := range m.Models {
		var seed uint64
		if c < len(m.Seeds) { // malformed mixes still key stably
			seed = m.Seeds[c]
		}
		switch src := m.sourceAt(c); {
		case src.Phased != nil:
			fmt.Fprintf(&b, "|c%d=ph{%s}@%d", c, src.Phased.Key(), seed)
		case src.Trace != nil:
			fmt.Fprintf(&b, "|c%d=tr{%s}@%d", c, src.Trace.Key(), seed)
		default:
			fmt.Fprintf(&b, "|c%d={%s}@%d", c, mod.Key(), seed)
		}
	}
	return b.String()
}

// Key returns a stable identity string for the phased model: the name,
// period, and every phase's full model key.
func (m PhasedModel) Key() string {
	var b strings.Builder
	fmt.Fprintf(&b, "phased=%s|period=%d", m.Name, m.Period)
	for _, ph := range m.Phases {
		fmt.Fprintf(&b, "|p={%s}", ph.Key())
	}
	return b.String()
}
