package workload

import (
	"fmt"
	"strings"
)

// Key returns a stable identity string for the model: the name plus every
// generation parameter. Name alone is not enough for cache keys — the
// harness scales models per machine (Scale rewrites footprints and
// SetIndexBits while keeping the name), so two same-named models can
// generate different address streams.
func (m Model) Key() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s/%s|gap=%g|bits=%d", m.Name, m.Suite, m.MeanGap, m.SetIndexBits)
	for _, st := range m.Streams {
		fmt.Fprintf(&b, "|s=%d,%g,%d,%d,%d,%g,%g,%d,%g,%d",
			st.Kind, st.Weight, st.FootprintKB, st.PCs, st.BlocksPerPC,
			st.WriteFrac, st.Skew, st.StrideBlk, st.HotSetFrac, st.HotSets)
	}
	return b.String()
}

// Key returns a stable identity string for the mix: its name plus the
// per-core model keys and generator seeds, so mixes that share a name but
// differ in population, scaling, or seeding never collide in memo caches.
func (m Mix) Key() string {
	var b strings.Builder
	fmt.Fprintf(&b, "mix=%s|cores=%d", m.Name, m.Cores())
	for c, mod := range m.Models {
		var seed uint64
		if c < len(m.Seeds) { // malformed mixes still key stably
			seed = m.Seeds[c]
		}
		fmt.Fprintf(&b, "|c%d={%s}@%d", c, mod.Key(), seed)
	}
	return b.String()
}
