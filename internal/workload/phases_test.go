package workload

import (
	"testing"

	"drishti/internal/mem"
)

func TestPhasedValidate(t *testing.T) {
	if err := (PhasedModel{}).Validate(); err == nil {
		t.Fatal("empty phased model accepted")
	}
	one := PhasedModel{Name: "x", Phases: []Model{SPECModels()[0]}, Period: 10}
	if err := one.Validate(); err == nil {
		t.Fatal("single-phase model accepted")
	}
	if err := PhasedMcf(1000).Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestPhasedAlternates(t *testing.T) {
	m := PhasedMcf(100)
	g, err := NewPhasedGenerator(m, 1)
	if err != nil {
		t.Fatal(err)
	}
	if g.Phase() != 0 {
		t.Fatal("must start in phase 0")
	}
	for i := 0; i < 100; i++ {
		g.Next()
	}
	if g.Phase() != 1 {
		t.Fatalf("after one period, phase %d", g.Phase())
	}
	for i := 0; i < 100; i++ {
		g.Next()
	}
	if g.Phase() != 0 {
		t.Fatal("phases must wrap")
	}
}

func TestPhasedPhasesDiffer(t *testing.T) {
	// PCs may coincide across phases (same code, phase-dependent
	// behavior); what must differ is the access pattern. The scan phase
	// streams (high distinct-block rate), the chase phase reuses.
	g, err := NewPhasedGenerator(PhasedMcf(2000), 3)
	if err != nil {
		t.Fatal(err)
	}
	distinct := func(n int) int {
		blocks := map[uint64]bool{}
		for i := 0; i < n; i++ {
			r, _ := g.Next()
			blocks[mem.Block(r.Addr)] = true
		}
		return len(blocks)
	}
	chasePhase := distinct(2000)
	scanPhase := distinct(2000)
	if scanPhase <= chasePhase {
		t.Fatalf("scan phase distinct blocks %d ≤ chase phase %d; phases indistinguishable",
			scanPhase, chasePhase)
	}
}

func TestPhasedReset(t *testing.T) {
	g, err := NewPhasedGenerator(PhasedMcf(50), 5)
	if err != nil {
		t.Fatal(err)
	}
	var first []uint64
	for i := 0; i < 120; i++ {
		r, _ := g.Next()
		first = append(first, r.Addr)
	}
	g.Reset()
	for i := 0; i < 120; i++ {
		r, _ := g.Next()
		if r.Addr != first[i] {
			t.Fatalf("reset not reproducible at %d", i)
		}
	}
}

func TestScalePhased(t *testing.T) {
	m := ScalePhased(PhasedMcf(100), 8, 8)
	for _, ph := range m.Phases {
		if ph.SetIndexBits != 8 {
			t.Fatal("scale not applied to all phases")
		}
	}
}

func TestPhasedAddressesStableAcrossPhases(t *testing.T) {
	// Same seed ⇒ phases can share address regions (same data, different
	// pattern); at minimum addresses must be non-zero and block-aligned
	// reads must make sense.
	g, err := NewPhasedGenerator(PhasedMcf(10), 9)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 100; i++ {
		r, ok := g.Next()
		if !ok || r.Addr == 0 {
			t.Fatal("bad record")
		}
		_ = mem.Block(r.Addr)
	}
}
