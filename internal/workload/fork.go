package workload

// Fork returns an independent generator that continues from the current
// position: the fork and the original emit identical future record streams
// and never affect each other. It is a cheap checkpoint — the immutable
// tables built at construction (PCs, hot-set indexes, Narrow block groups,
// stream weights) are shared, and only the mutable sampler state (the
// random streams, stream cursors, and Zipf memo tables) is copied.
//
// Batched runs use Fork when the shared-window materialization would
// exceed the memory budget: each lane gets a fork and replays the stream
// itself. The fork property test asserts byte-identity against a fresh
// generator advanced to the same position.
func (g *Generator) Fork() *Generator {
	ng := &Generator{
		model:  g.model,
		seed:   g.seed,
		rnd:    g.rnd.Clone(),
		cumW:   g.cumW,
		totalW: g.totalW,
	}
	// gapGeom draws from the generator's top-level Rand; rewire it to the
	// clone so the fork's gap stream decouples from the original.
	ng.gapGeom = g.gapGeom.CloneWith(ng.rnd)
	if g.gapAlt != nil {
		ng.gapAlt = g.gapAlt.CloneWith(ng.rnd)
	}
	ng.streams = make([]*streamState, len(g.streams))
	for i, st := range g.streams {
		ng.streams[i] = st.fork()
	}
	return ng
}

// fork copies the stream's mutable state (cursor, random stream, Zipf
// sampler); pcs/hot/narrow/base/blocks are read-only after construction
// and stay shared.
func (st *streamState) fork() *streamState {
	ns := *st
	ns.rnd = st.rnd.Clone()
	if st.zipf != nil {
		ns.zipf = st.zipf.Clone()
	}
	return &ns
}

// Fork returns an independent phased generator continuing from the current
// position, including mid-phase: the record counter and every phase
// generator are copied, so phase boundaries land on the same records for
// the fork and the original.
func (g *PhasedGenerator) Fork() *PhasedGenerator {
	ng := &PhasedGenerator{model: g.model, seed: g.seed, pos: g.pos}
	ng.gens = make([]*Generator, len(g.gens))
	for i, pg := range g.gens {
		ng.gens[i] = pg.Fork()
	}
	return ng
}
