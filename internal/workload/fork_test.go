package workload

import (
	"testing"

	"drishti/internal/trace"
)

// collectN drains n records from a reader, failing the test on exhaustion
// (generators are infinite).
func collectN(t *testing.T, r trace.Reader, n int) []trace.Rec {
	t.Helper()
	out := make([]trace.Rec, 0, n)
	for i := 0; i < n; i++ {
		rec, ok := r.Next()
		if !ok {
			t.Fatalf("generator exhausted after %d records", i)
		}
		out = append(out, rec)
	}
	return out
}

func recsEqual(t *testing.T, label string, got, want []trace.Rec) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: %d records, want %d", label, len(got), len(want))
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("%s: record %d = %+v, want %+v", label, i, got[i], want[i])
		}
	}
}

// TestGeneratorForkReplay is the fork property test: a fork taken after
// advance records replays byte-identically to (a) a fresh generator
// advanced to the same position and (b) the original continuing — and the
// two subsequently evolve independently.
func TestGeneratorForkReplay(t *testing.T) {
	models := AllSPECGAP()
	// A deterministic pseudo-random walk over (model, seed, position)
	// triples; positions land both below and above the stream chunk size.
	positions := []int{0, 1, 7, 63, 500, 2048, 5000}
	for mi := 0; mi < len(models); mi += 5 {
		model := models[mi]
		t.Run(model.Name, func(t *testing.T) {
			seed := uint64(mi)*0x9e37 + 1
			for _, advance := range positions {
				const tail = 1500
				orig := MustGenerator(model, seed)
				collectN(t, orig, advance)
				fork := orig.Fork()

				fresh := MustGenerator(model, seed)
				collectN(t, fresh, advance)
				want := collectN(t, fresh, tail)

				recsEqual(t, "fork vs fresh", collectN(t, fork, tail), want)
				recsEqual(t, "original vs fresh", collectN(t, orig, tail), want)

				// Independence: draining one stream further must not
				// disturb a second fork taken at the same point.
				orig2 := MustGenerator(model, seed)
				collectN(t, orig2, advance)
				fork2 := orig2.Fork()
				collectN(t, orig2, 3*tail)
				recsEqual(t, "fork after original drained", collectN(t, fork2, tail), want)
			}
		})
	}
}

// TestPhasedGeneratorForkReplay covers forks taken right at, just before,
// and just after PhasedGenerator phase boundaries.
func TestPhasedGeneratorForkReplay(t *testing.T) {
	const period = 256
	model := PhasedMcf(period)
	for _, advance := range []int{0, period - 1, period, period + 1, 3*period - 1, 4 * period} {
		const tail = 2 * period
		orig, err := NewPhasedGenerator(model, 42)
		if err != nil {
			t.Fatal(err)
		}
		collectN(t, orig, advance)
		fork := orig.Fork()
		if fork.Phase() != orig.Phase() {
			t.Fatalf("advance %d: fork phase %d, original phase %d", advance, fork.Phase(), orig.Phase())
		}

		fresh, err := NewPhasedGenerator(model, 42)
		if err != nil {
			t.Fatal(err)
		}
		collectN(t, fresh, advance)
		want := collectN(t, fresh, tail)

		recsEqual(t, "phased fork vs fresh", collectN(t, fork, tail), want)
		recsEqual(t, "phased original vs fresh", collectN(t, orig, tail), want)
	}
}

// TestStreamCursorsReplay checks that cursors at different positions read
// identical records to a private generator, across chunk recycling.
func TestStreamCursorsReplay(t *testing.T) {
	model := AllSPECGAP()[0]
	const n = 3 * streamChunkLen
	want := collectN(t, MustGenerator(model, 7), n)

	s := NewStream(MustGenerator(model, 7), 0)
	fast, slow := s.Cursor(), s.Cursor()
	for i := 0; i < n; i++ {
		rec, ok := fast.Next()
		if !ok || rec != want[i] {
			t.Fatalf("fast cursor record %d = %+v ok=%v, want %+v", i, rec, ok, want[i])
		}
		// The slow cursor trails by half a chunk; release behind it.
		if i >= streamChunkLen/2 {
			j := i - streamChunkLen/2
			rec, ok := slow.Next()
			if !ok || rec != want[j] {
				t.Fatalf("slow cursor record %d = %+v ok=%v, want %+v", j, rec, ok, want[j])
			}
			s.Release(slow.Pos())
		}
	}
	if got := fast.Pos(); got != n {
		t.Fatalf("fast cursor pos = %d, want %d", got, n)
	}
}

// TestStreamLoopsFiniteSource checks the stream loops a finite reader the
// same way the simulator's step loop does.
func TestStreamLoopsFiniteSource(t *testing.T) {
	recs := []trace.Rec{{PC: 1, Addr: 64}, {PC: 2, Addr: 128, Write: true}, {PC: 3, Addr: 192}}
	s := NewStream(trace.NewSliceReader(recs), 4)
	c := s.Cursor()
	for i := 0; i < 10; i++ {
		rec, ok := c.Next()
		if !ok || rec != recs[i%len(recs)] {
			t.Fatalf("record %d = %+v ok=%v, want %+v", i, rec, ok, recs[i%len(recs)])
		}
	}
}
