package workload

import (
	"strings"
	"testing"

	"drishti/internal/trace"
)

func testTraceData() *TraceData {
	return &TraceData{Name: "t0", Recs: []trace.Rec{
		{PC: 0x400100, Addr: 0x1000, Gap: 2},
		{PC: 0x400108, Addr: 0x2000, Gap: 3, Write: true},
		{PC: 0x400110, Addr: 0x3000, Gap: 1},
	}}
}

// TestGapDistKeyStability pins the key contract for the arrival-shaping
// fields: absent and explicit-geometric distributions key identically to
// the pre-existing format (so every committed key stays byte-stable), and
// only a genuine alternative process extends the key.
func TestGapDistKeyStability(t *testing.T) {
	base := Homogeneous(AllSPECGAP()[0], 2, 1)
	plain := base.Key()
	if strings.Contains(plain, "gdist=") {
		t.Fatalf("default mix key mentions gdist: %s", plain)
	}
	geo := base
	geo.Models = append([]Model(nil), base.Models...)
	for i := range geo.Models {
		geo.Models[i].GapDist = "geometric"
	}
	if got := geo.Key(); got != plain {
		t.Errorf("explicit geometric changed the key:\n  %s\n  %s", got, plain)
	}
	wb := base
	wb.Models = append([]Model(nil), base.Models...)
	for i := range wb.Models {
		wb.Models[i].GapDist = "weibull"
		wb.Models[i].GapShape = 0.45
	}
	if got := wb.Key(); !strings.Contains(got, "gdist=weibull,0.45") {
		t.Errorf("weibull mix key missing gdist tag: %s", got)
	}
}

// TestGapDistGeneratorDeterminism checks an alternative gap process keeps
// the generator deterministic and forkable: same seed, same stream; a fork
// taken mid-stream tracks its parent record for record.
func TestGapDistGeneratorDeterminism(t *testing.T) {
	m := AllSPECGAP()[0]
	m.GapDist = "weibull"
	m.GapShape = 0.45
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
	a, err := NewGenerator(m, 7)
	if err != nil {
		t.Fatal(err)
	}
	b, _ := NewGenerator(m, 7)
	for i := 0; i < 2000; i++ {
		ra, _ := a.Next()
		rb, _ := b.Next()
		if ra != rb {
			t.Fatalf("record %d diverged: %+v vs %+v", i, ra, rb)
		}
	}
	fork := a.Fork()
	for i := 0; i < 2000; i++ {
		ra, _ := a.Next()
		rf, _ := fork.Next()
		if ra != rf {
			t.Fatalf("forked record %d diverged: %+v vs %+v", i, ra, rf)
		}
	}
}

// TestGapDistValidate pins the accepted distribution names and the shape
// requirement.
func TestGapDistValidate(t *testing.T) {
	m := AllSPECGAP()[0]
	for _, ok := range []string{"", "geometric", "poisson"} {
		m.GapDist, m.GapShape = ok, 0
		if err := m.Validate(); err != nil {
			t.Errorf("GapDist %q: %v", ok, err)
		}
	}
	m.GapDist, m.GapShape = "gamma", 0
	if err := m.Validate(); err == nil {
		t.Error("gamma without shape validated")
	}
	m.GapDist, m.GapShape = "lognormal", 1
	if err := m.Validate(); err == nil {
		t.Error("unknown distribution validated")
	}
}

// TestMixSources covers the Source extension of Mix: validation of the
// exactly-one rule, source-aware keys, and NewReader/ForkReader dispatch.
func TestMixSources(t *testing.T) {
	td := testTraceData()
	ph := &PhasedModel{Name: "ph", Period: 100, Phases: []Model{AllSPECGAP()[0], AllSPECGAP()[1]}}
	mix := Mix{
		Name:   "src-mix",
		Models: []Model{{Name: "phased-ph"}, {Name: "trace-t0"}, AllSPECGAP()[0]},
		Seeds:  []uint64{1, 2, 3},
		Sources: []Source{
			{Phased: ph},
			{Trace: td},
			{},
		},
	}
	if err := mix.Validate(); err != nil {
		t.Fatal(err)
	}
	key := mix.Key()
	for _, want := range []string{"c0=ph{phased=ph|period=100", "c1=tr{trace=t0|n=3|h="} {
		if !strings.Contains(key, want) {
			t.Errorf("mix key missing %q: %s", want, key)
		}
	}

	r0, err := NewReader(mix, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := r0.(*PhasedGenerator); !ok {
		t.Errorf("core 0 reader = %T, want *PhasedGenerator", r0)
	}
	r1, err := NewReader(mix, 1)
	if err != nil {
		t.Fatal(err)
	}
	sr, ok := r1.(*trace.SliceReader)
	if !ok {
		t.Fatalf("core 1 reader = %T, want *trace.SliceReader", r1)
	}
	if rec, _ := sr.Next(); rec != td.Recs[0] {
		t.Errorf("trace reader first record = %+v", rec)
	}
	// ForkReader must checkpoint the cursor, not rewind it.
	f, err := ForkReader(sr)
	if err != nil {
		t.Fatal(err)
	}
	if rec, _ := f.Next(); rec != td.Recs[1] {
		t.Errorf("forked trace reader resumed at %+v, want record 1", rec)
	}
	if r2, err := NewReader(mix, 2); err != nil {
		t.Fatal(err)
	} else if _, ok := r2.(*Generator); !ok {
		t.Errorf("core 2 reader = %T, want *Generator", r2)
	}

	bad := mix
	bad.Sources = []Source{{Phased: ph, Trace: td}, {}, {}}
	if err := bad.Validate(); err == nil {
		t.Error("both-set source validated")
	}
	short := mix
	short.Sources = mix.Sources[:2]
	if err := short.Validate(); err == nil {
		t.Error("sources shorter than models validated")
	}
}

// TestTraceDataKey pins that the trace digest reacts to every record field.
func TestTraceDataKey(t *testing.T) {
	base := testTraceData().Key()
	mut := testTraceData()
	mut.Recs[2].Write = true
	if mut.Key() == base {
		t.Error("flipping a Write bit did not change the trace key")
	}
	ren := testTraceData()
	ren.Name = "other"
	if ren.Key() == base {
		t.Error("renaming did not change the trace key")
	}
}
