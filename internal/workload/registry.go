package workload

import "fmt"

// The registry mirrors the paper's workload population: 23 memory-intensive
// SPEC CPU2017 benchmarks plus 12 single-threaded GAP kernels (Section 5.1),
// and the CVP1 / CloudSuite / Google-datacenter / XSBench families used in
// Fig 19. Models are archetype-based: each named benchmark instantiates an
// archetype with parameters chosen to match its published LLC behavior
// (MPKI class, working-set size, PC population, set skew).

// Archetype constructors ---------------------------------------------------

// chaseModel imitates pointer-chasing integer codes (mcf, omnetpp):
// a large skewed chase plus a medium LLC-friendly loop and narrow PCs.
func chaseModel(name string, suite Suite, footMB int, skew, hotFrac float64, hotSets, pcs int, gap float64) Model {
	return Model{
		Name:    name,
		Suite:   suite,
		MeanGap: gap,
		Streams: []StreamSpec{
			// Register-spill / stack traffic that lives in the L1: the
			// bulk of a real program's loads, invisible to the LLC.
			{Kind: Loop, Weight: 13, FootprintKB: 32, PCs: 8, WriteFrac: 0.3},
			{Kind: Chase, Weight: 5, FootprintKB: footMB * 1024, PCs: pcs, Skew: skew,
				HotSetFrac: hotFrac, HotSets: hotSets, WriteFrac: 0.15},
			{Kind: Loop, Weight: 3, FootprintKB: 1536, PCs: pcs / 2, WriteFrac: 0.05},
			{Kind: Narrow, Weight: 2, FootprintKB: 4096, PCs: 3 * pcs, BlocksPerPC: 1},
		},
	}
}

// streamModel imitates streaming FP codes (lbm, bwaves): long sequential
// sweeps with uniform per-set demand, so the dynamic sampled cache must
// detect uniformity and fall back to random selection.
func streamModel(name string, suite Suite, footMB int, writeFrac, gap float64, pcs int) Model {
	return Model{
		Name:    name,
		Suite:   suite,
		MeanGap: gap,
		Streams: []StreamSpec{
			{Kind: Loop, Weight: 10, FootprintKB: 32, PCs: 8, WriteFrac: 0.3},
			{Kind: Sequential, Weight: 7, FootprintKB: footMB * 1024, PCs: pcs, WriteFrac: writeFrac},
			{Kind: Sequential, Weight: 2, FootprintKB: footMB * 512, PCs: pcs, StrideBlk: 2, WriteFrac: writeFrac / 2},
			{Kind: Loop, Weight: 1, FootprintKB: 256, PCs: 4},
		},
	}
}

// loopMixModel imitates codes with scan reuse near the LLC capacity
// (xalancbmk, roms): LRU thrashes, OPT-like policies keep a resident
// fraction. Wide PC populations scatter heavily across slices, which makes
// these the prime beneficiaries of the per-core global predictor.
func loopMixModel(name string, suite Suite, loopKB, pcs int, aversMB int, gap float64) Model {
	return Model{
		Name:    name,
		Suite:   suite,
		MeanGap: gap,
		Streams: []StreamSpec{
			{Kind: Loop, Weight: 10, FootprintKB: 32, PCs: 8, WriteFrac: 0.3},
			{Kind: Loop, Weight: 5, FootprintKB: loopKB, PCs: pcs, WriteFrac: 0.1},
			{Kind: Chase, Weight: 3, FootprintKB: aversMB * 1024, PCs: pcs / 2, WriteFrac: 0.1},
			{Kind: Loop, Weight: 2, FootprintKB: 192, PCs: 8},
		},
	}
}

// mixedModel imitates balanced integer codes (gcc, perlbench): moderate
// skew, moderate footprint, some narrow PCs.
func mixedModel(name string, suite Suite, footMB int, skew float64, pcs int, gap float64) Model {
	return Model{
		Name:    name,
		Suite:   suite,
		MeanGap: gap,
		Streams: []StreamSpec{
			{Kind: Loop, Weight: 18, FootprintKB: 32, PCs: 8, WriteFrac: 0.3},
			{Kind: Chase, Weight: 3, FootprintKB: footMB * 1024, PCs: pcs, Skew: skew,
				HotSetFrac: 0.25, HotSets: 256, WriteFrac: 0.12},
			{Kind: Loop, Weight: 3, FootprintKB: 1024, PCs: pcs, WriteFrac: 0.08},
			{Kind: Sequential, Weight: 2, FootprintKB: 8192, PCs: 4, WriteFrac: 0.05},
			{Kind: Narrow, Weight: 2, FootprintKB: 2048, PCs: 2 * pcs, BlocksPerPC: 2},
		},
	}
}

// graphModel imitates GAP kernels: a heavily skewed gather over a large
// vertex/edge table (hot vertices reused, tail streamed) plus narrow
// bookkeeping PCs. Narrow-heavy parameterizations give the high
// "PCs map to one slice" fraction the paper reports for pr.
func graphModel(name string, footMB int, skew float64, narrowPCs int, gap float64) Model {
	return Model{
		Name:    name,
		Suite:   SuiteGAP,
		MeanGap: gap,
		Streams: []StreamSpec{
			{Kind: Loop, Weight: 12, FootprintKB: 32, PCs: 8, WriteFrac: 0.3},
			{Kind: Gather, Weight: 5, FootprintKB: footMB * 1024, PCs: 12, Skew: skew, WriteFrac: 0.1},
			{Kind: Sequential, Weight: 2, FootprintKB: footMB * 256, PCs: 4, WriteFrac: 0.05},
			{Kind: Narrow, Weight: 3, FootprintKB: 8192, PCs: narrowPCs, BlocksPerPC: 1},
		},
	}
}

// SPECModels returns the 23 SPEC CPU2017-like models.
func SPECModels() []Model {
	return []Model{
		chaseModel("605.mcf_s-1554B", SuiteSPEC, 48, 0.85, 0.35, 96, 16, 2.5),
		chaseModel("620.omnetpp_s-874B", SuiteSPEC, 24, 0.9, 0.35, 96, 24, 3.5),
		loopMixModel("623.xalancbmk_s-202B", SuiteSPEC, 2560, 96, 16, 3.0),
		loopMixModel("654.roms_s-842B", SuiteSPEC, 2048, 40, 24, 4.0),
		streamModel("619.lbm_s-2676B", SuiteSPEC, 56, 0.45, 3.0, 6),
		streamModel("603.bwaves_s-3699B", SuiteSPEC, 48, 0.2, 4.0, 8),
		streamModel("649.fotonik3d_s-1176B", SuiteSPEC, 40, 0.3, 4.0, 8),
		streamModel("628.pop2_s-17B", SuiteSPEC, 32, 0.25, 5.0, 10),
		mixedModel("602.gcc_s-734B", SuiteSPEC, 16, 0.8, 32, 4.0),
		mixedModel("600.perlbench_s-210B", SuiteSPEC, 8, 0.75, 40, 6.0),
		mixedModel("623.xz_s-3167B", SuiteSPEC, 20, 0.7, 20, 4.5),
		mixedModel("631.deepsjeng_s-928B", SuiteSPEC, 12, 0.8, 24, 6.0),
		mixedModel("641.leela_s-800B", SuiteSPEC, 6, 0.7, 24, 7.0),
		mixedModel("657.xz_s-2302B", SuiteSPEC, 24, 0.65, 18, 4.0),
		chaseModel("605.mcf_s-665B", SuiteSPEC, 40, 0.8, 0.3, 96, 16, 3.0),
		chaseModel("620.omnetpp_s-141B", SuiteSPEC, 20, 0.85, 0.3, 128, 24, 4.0),
		streamModel("607.cactuBSSN_s-2421B", SuiteSPEC, 36, 0.3, 3.5, 10),
		streamModel("621.wrf_s-6673B", SuiteSPEC, 28, 0.3, 5.0, 12),
		streamModel("627.cam4_s-490B", SuiteSPEC, 24, 0.25, 5.0, 12),
		loopMixModel("623.xalancbmk_s-700B", SuiteSPEC, 2816, 80, 12, 3.5),
		mixedModel("602.gcc_s-2226B", SuiteSPEC, 14, 0.85, 36, 4.5),
		streamModel("644.nab_s-5853B", SuiteSPEC, 16, 0.2, 6.0, 8),
		loopMixModel("638.imagick_s-10316B", SuiteSPEC, 1792, 32, 8, 5.0),
	}
}

// GAPModels returns the 12 GAP-like models (kernel × graph combinations).
func GAPModels() []Model {
	return []Model{
		graphModel("pr-twitter", 64, 0.99, 160, 3.0),
		graphModel("pr-web", 48, 0.9, 144, 3.5),
		graphModel("pr-kron", 80, 1.05, 160, 3.0),
		graphModel("bfs-twitter", 56, 0.8, 96, 3.5),
		graphModel("bfs-road", 24, 0.6, 64, 4.0),
		graphModel("cc-twitter", 56, 0.95, 128, 3.0),
		graphModel("cc-web", 40, 0.85, 112, 3.5),
		graphModel("bc-twitter", 64, 0.9, 128, 3.0),
		graphModel("bc-urand", 72, 0.4, 96, 3.0),
		graphModel("sssp-road", 28, 0.65, 80, 4.0),
		graphModel("sssp-kron", 72, 1.0, 128, 3.0),
		graphModel("tc-urand", 64, 0.3, 80, 3.5),
	}
}

// CVP1Models returns server-like models for Fig 19 (CVP1 traces rebased by
// Feliu et al., IISWC'23): large instruction-side tax approximated by many
// narrow PCs plus moderate data footprints.
func CVP1Models() []Model {
	out := make([]Model, 0, 8)
	for i := 0; i < 8; i++ {
		out = append(out, Model{
			Name:    fmt.Sprintf("cvp1-srv%d", i),
			Suite:   SuiteCVP1,
			MeanGap: 5.0 + float64(i%3),
			Streams: []StreamSpec{
				{Kind: Loop, Weight: 12, FootprintKB: 32, PCs: 12, WriteFrac: 0.3},
				{Kind: Narrow, Weight: 4, FootprintKB: 4096 + 1024*i, PCs: 200 + 20*i, BlocksPerPC: 1},
				{Kind: Chase, Weight: 3, FootprintKB: (8 + 2*i) * 1024, PCs: 32, Skew: 0.7, WriteFrac: 0.1},
				{Kind: Loop, Weight: 3, FootprintKB: 768 + 128*i, PCs: 24, WriteFrac: 0.08},
			},
		})
	}
	return out
}

// CloudModels returns CloudSuite / Google-datacenter-like models for Fig 19:
// flat reuse, huge code+data footprints, little exploitable locality.
func CloudModels() []Model {
	out := make([]Model, 0, 8)
	for i := 0; i < 8; i++ {
		out = append(out, Model{
			Name:    fmt.Sprintf("cloud-dc%d", i),
			Suite:   SuiteCloud,
			MeanGap: 6.0,
			Streams: []StreamSpec{
				{Kind: Loop, Weight: 11, FootprintKB: 32, PCs: 12, WriteFrac: 0.3},
				{Kind: Gather, Weight: 5, FootprintKB: (32 + 8*i) * 1024, PCs: 64, Skew: 0.5, WriteFrac: 0.15},
				{Kind: Narrow, Weight: 3, FootprintKB: 8192, PCs: 300, BlocksPerPC: 1},
				{Kind: Sequential, Weight: 2, FootprintKB: 16 * 1024, PCs: 8, WriteFrac: 0.1},
			},
		})
	}
	return out
}

// XSBenchModels returns XSBench-like models for Fig 19: the unionized
// cross-section lookup is a uniform random gather over a table far larger
// than the LLC.
func XSBenchModels() []Model {
	out := make([]Model, 0, 4)
	for i := 0; i < 4; i++ {
		out = append(out, Model{
			Name:    fmt.Sprintf("xsbench-g%d", i),
			Suite:   SuiteXS,
			MeanGap: 3.0,
			Streams: []StreamSpec{
				{Kind: Loop, Weight: 13, FootprintKB: 32, PCs: 8, WriteFrac: 0.2},
				{Kind: Gather, Weight: 7, FootprintKB: (96 + 32*i) * 1024, PCs: 6, Skew: 0.2},
				{Kind: Loop, Weight: 2, FootprintKB: 512, PCs: 8},
				{Kind: Narrow, Weight: 1, FootprintKB: 2048, PCs: 40, BlocksPerPC: 2},
			},
		})
	}
	return out
}

// AllSPECGAP returns the 35-benchmark population used for the main results.
func AllSPECGAP() []Model {
	return append(SPECModels(), GAPModels()...)
}

// Fig19Models returns the CVP1+Cloud+XSBench population used in Fig 19.
func Fig19Models() []Model {
	out := CVP1Models()
	out = append(out, CloudModels()...)
	out = append(out, XSBenchModels()...)
	return out
}

// ByName returns the model with the given name from the full registry.
func ByName(name string) (Model, bool) {
	for _, m := range append(AllSPECGAP(), Fig19Models()...) {
		if m.Name == name {
			return m, true
		}
	}
	return Model{}, false
}

// Names returns the names of the given models, preserving order.
func Names(models []Model) []string {
	out := make([]string, len(models))
	for i, m := range models {
		out[i] = m.Name
	}
	return out
}
