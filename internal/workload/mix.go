package workload

import (
	"fmt"

	"drishti/internal/stats"
)

// Mix assigns one model (and generator seed) to each core of a simulated
// system, mirroring the paper's 35 homogeneous + 35 heterogeneous mixes.
type Mix struct {
	Name   string
	Models []Model  // one per core
	Seeds  []uint64 // one per core
	// Sources optionally overrides per-core stream production (phase
	// schedules, trace replay). Nil — the common case — means every core
	// runs its Model; when set it must have one entry per core, and a
	// core with an active source keeps a display-only placeholder in
	// Models (reports print Models[c].Name).
	Sources []Source
}

// Cores returns the number of cores the mix targets.
func (m Mix) Cores() int { return len(m.Models) }

// Validate reports structural errors in the mix.
func (m Mix) Validate() error {
	if len(m.Models) == 0 {
		return fmt.Errorf("workload: mix %s has no cores", m.Name)
	}
	if len(m.Seeds) != len(m.Models) {
		return fmt.Errorf("workload: mix %s has %d seeds for %d cores", m.Name, len(m.Seeds), len(m.Models))
	}
	if len(m.Sources) != 0 && len(m.Sources) != len(m.Models) {
		return fmt.Errorf("workload: mix %s has %d sources for %d cores", m.Name, len(m.Sources), len(m.Models))
	}
	for c, mod := range m.Models {
		if m.sourceAt(c).active() {
			continue // Models[c] is a display placeholder
		}
		if err := mod.Validate(); err != nil {
			return fmt.Errorf("workload: mix %s: %w", m.Name, err)
		}
	}
	for c, src := range m.Sources {
		switch {
		case src.Phased != nil && src.Trace != nil:
			return fmt.Errorf("workload: mix %s core %d sets both phased and trace sources", m.Name, c)
		case src.Phased != nil:
			if err := src.Phased.Validate(); err != nil {
				return fmt.Errorf("workload: mix %s core %d: %w", m.Name, c, err)
			}
		case src.Trace != nil:
			if src.Trace.Name == "" {
				return fmt.Errorf("workload: mix %s core %d has an unnamed trace source", m.Name, c)
			}
			if len(src.Trace.Recs) == 0 {
				return fmt.Errorf("workload: mix %s core %d trace %q has no records", m.Name, c, src.Trace.Name)
			}
		}
	}
	return nil
}

// Homogeneous builds a mix where every core runs model. Per-core seeds
// differ (different SimPoints of the same benchmark, per Section 5.1).
func Homogeneous(model Model, cores int, seed uint64) Mix {
	mix := Mix{Name: "homo-" + model.Name}
	for c := 0; c < cores; c++ {
		mix.Models = append(mix.Models, model)
		mix.Seeds = append(mix.Seeds, stats.Mix64(seed+uint64(c)*1_000_003))
	}
	return mix
}

// HomogeneousMixes builds one homogeneous mix per model (the paper's 35).
func HomogeneousMixes(models []Model, cores int, seed uint64) []Mix {
	out := make([]Mix, 0, len(models))
	for i, m := range models {
		out = append(out, Homogeneous(m, cores, seed+uint64(i)*7919))
	}
	return out
}

// HeterogeneousMixes builds count random mixes drawing models from the
// population, following the paper's random-mix methodology (Section 5.1).
func HeterogeneousMixes(models []Model, cores, count int, seed uint64) []Mix {
	rnd := stats.NewRand(seed)
	out := make([]Mix, 0, count)
	for i := 0; i < count; i++ {
		mix := Mix{Name: fmt.Sprintf("hetero-%02d", i)}
		for c := 0; c < cores; c++ {
			m := models[rnd.Intn(len(models))]
			mix.Models = append(mix.Models, m)
			mix.Seeds = append(mix.Seeds, rnd.Uint64())
		}
		out = append(out, mix)
	}
	return out
}

// PaperMixes reproduces the paper's evaluation population: 35 homogeneous
// plus 35 heterogeneous mixes from SPEC CPU2017 + GAP for the given core
// count.
func PaperMixes(cores int, seed uint64) []Mix {
	models := AllSPECGAP()
	mixes := HomogeneousMixes(models, cores, seed)
	return append(mixes, HeterogeneousMixes(models, cores, 35, seed^0xdeadbeef)...)
}

// Fig19Mixes reproduces the Fig 19 population: 50 random mixes from the
// CVP1 / CloudSuite / Google-datacenter / XSBench families.
func Fig19Mixes(cores int, seed uint64) []Mix {
	return HeterogeneousMixes(Fig19Models(), cores, 50, seed)
}
