// Package workload provides synthetic workload models that stand in for the
// SPEC CPU2017, GAP, CVP1, CloudSuite, Google-datacenter, and XSBench traces
// used by the paper (substitution documented in DESIGN.md §2).
//
// A Model is a weighted mixture of access streams. Each stream owns a
// private address region and a set of program counters, and produces
// addresses with a characteristic reuse pattern. The statistics that LLC
// replacement studies depend on are all explicit parameters:
//
//   - reuse distance mix          → stream kinds and footprints
//   - PC count and PC "width"     → PCs / BlocksPerPC per stream
//   - slice scattering (Fig 2)    → footprint per PC
//   - per-set miss skew (Fig 5)   → HotSetFrac / HotSets
//   - streaming uniformity (lbm)  → Sequential streams with no skew
package workload

import (
	"fmt"

	"drishti/internal/mem"
	"drishti/internal/stats"
	"drishti/internal/trace"
)

// Suite labels the benchmark family a model imitates.
type Suite string

// Suites.
const (
	SuiteSPEC  Suite = "SPEC"
	SuiteGAP   Suite = "GAP"
	SuiteCVP1  Suite = "CVP1"
	SuiteCloud Suite = "Cloud"
	SuiteXS    Suite = "XSBench"
)

// StreamKind selects the address-generation behavior of a stream.
type StreamKind uint8

const (
	// Sequential walks its region with a fixed block stride and wraps
	// (streaming / cache-averse when the footprint exceeds the LLC).
	Sequential StreamKind = iota
	// Loop repeatedly walks a region in order (scan reuse; LLC-friendly
	// iff the footprint fits in the LLC share).
	Loop
	// Chase jumps pseudo-randomly inside its region, optionally with a
	// Zipf skew over blocks and a hot-set bias (mcf-like).
	Chase
	// Gather picks blocks from a large table through a Zipf distribution
	// (graph-analytics-like: hot vertices plus a long random tail).
	Gather
	// Narrow gives each PC a tiny private group of blocks that it
	// re-touches forever; such PCs map to very few LLC slices, which is
	// what drives the paper's Fig 2 statistic.
	Narrow
)

// String implements fmt.Stringer.
func (k StreamKind) String() string {
	switch k {
	case Sequential:
		return "seq"
	case Loop:
		return "loop"
	case Chase:
		return "chase"
	case Gather:
		return "gather"
	case Narrow:
		return "narrow"
	default:
		return fmt.Sprintf("StreamKind(%d)", uint8(k))
	}
}

// StreamSpec parameterizes one access stream of a model.
type StreamSpec struct {
	Kind        StreamKind
	Weight      float64 // relative probability of this stream per memory op
	FootprintKB int     // region size
	PCs         int     // distinct program counters in this stream
	BlocksPerPC int     // Narrow: private blocks per PC (default 2)
	WriteFrac   float64 // fraction of accesses that are stores
	Skew        float64 // Zipf skew over blocks (Chase/Gather); 0 = uniform
	StrideBlk   int     // Sequential: stride in blocks (default 1)
	HotSetFrac  float64 // fraction of accesses steered into hot sets
	HotSets     int     // number of hot sets when HotSetFrac > 0
}

// Model is a complete synthetic program.
type Model struct {
	Name    string
	Suite   Suite
	MeanGap float64 // mean non-memory instructions between memory ops
	Streams []StreamSpec
	// SetIndexBits is the per-slice set-index width the hot-set steering
	// targets; 0 uses the default (11, a 2 MB / 16-way slice). Scale sets
	// it to match shrunken machines.
	SetIndexBits int
	// GapDist selects the inter-access gap process: "" or "geometric" is
	// the default geometric think time; "poisson", "gamma", and "weibull"
	// draw gaps from the matching distribution with mean MeanGap. Scenario
	// specs (internal/scenario) use these for arrival/burst shaping —
	// a weibull shape below one yields the heavy-tailed idle periods and
	// dense bursts of consolidated multi-tenant arrivals.
	GapDist string
	// GapShape is the shape parameter k for gamma/weibull gap processes;
	// ignored by the other distributions.
	GapShape float64
}

// Scale shrinks every stream footprint by divisor (for harness-scale runs
// where the whole machine is scaled down too) and retargets hot-set
// steering at a slice with setBits set-index bits. Footprints floor at
// 16 KB so streams keep distinct behaviors.
func (m Model) Scale(divisor, setBits int) Model {
	if divisor <= 1 && setBits == 0 {
		return m
	}
	out := m
	out.SetIndexBits = setBits
	out.Streams = make([]StreamSpec, len(m.Streams))
	for i, st := range m.Streams {
		if divisor > 1 {
			st.FootprintKB /= divisor
			if st.FootprintKB < 4 {
				st.FootprintKB = 4
			}
		}
		out.Streams[i] = st
	}
	return out
}

// StreamPCs returns the (deterministic) program counters stream streamIdx
// of the model will issue — the same values every generator of this model
// uses, independent of seed. Experiments use it to pick hot PCs to inspect.
func StreamPCs(m Model, streamIdx int) []uint64 {
	return streamPCs(m.Streams[streamIdx].PCs, streamIdx)
}

func streamPCs(count, streamIdx int) []uint64 {
	pcs := make([]uint64, count)
	for i := range pcs {
		pcs[i] = 0x400000 + uint64(streamIdx)<<16 + uint64(i)*4
	}
	return pcs
}

// ScaleAll applies Scale to each model.
func ScaleAll(models []Model, divisor, setBits int) []Model {
	out := make([]Model, len(models))
	for i, m := range models {
		out[i] = m.Scale(divisor, setBits)
	}
	return out
}

// Validate reports configuration errors in the model.
func (m Model) Validate() error {
	if m.Name == "" {
		return fmt.Errorf("workload: model with empty name")
	}
	if len(m.Streams) == 0 {
		return fmt.Errorf("workload: model %s has no streams", m.Name)
	}
	switch m.GapDist {
	case "", "geometric", "poisson":
	case "gamma", "weibull":
		if m.GapShape <= 0 {
			return fmt.Errorf("workload: model %s %s gap distribution needs GapShape > 0", m.Name, m.GapDist)
		}
	default:
		return fmt.Errorf("workload: model %s has unknown gap distribution %q (geometric|poisson|gamma|weibull)", m.Name, m.GapDist)
	}
	for i, s := range m.Streams {
		if s.Weight <= 0 {
			return fmt.Errorf("workload: model %s stream %d has non-positive weight", m.Name, i)
		}
		if s.FootprintKB <= 0 {
			return fmt.Errorf("workload: model %s stream %d has non-positive footprint", m.Name, i)
		}
		if s.PCs <= 0 {
			return fmt.Errorf("workload: model %s stream %d has no PCs", m.Name, i)
		}
		if s.WriteFrac < 0 || s.WriteFrac > 1 {
			return fmt.Errorf("workload: model %s stream %d write fraction out of range", m.Name, i)
		}
		if s.HotSetFrac > 0 && s.HotSets <= 0 {
			return fmt.Errorf("workload: model %s stream %d hot-set fraction without hot sets", m.Name, i)
		}
	}
	return nil
}

// setIndexBits is the number of per-slice set-index bits the generator
// assumes when steering accesses into hot sets. It matches the default
// 2 MB / 16-way slice (2048 sets). The steering still produces set-level
// skew for other slice geometries, just with a different aliasing.
const setIndexBits = 11

// Generator produces an infinite instruction stream for one model instance.
// It implements trace.Reader.
type Generator struct {
	model   Model
	seed    uint64
	rnd     *stats.Rand
	gapGeom *stats.Geom      // geometric gap sampler over rnd, MeanGap precomputed
	gapAlt  stats.IntSampler // non-nil iff GapDist selects a non-geometric process
	streams []*streamState
	cumW    []float64
	totalW  float64
}

type streamState struct {
	spec    StreamSpec
	base    uint64 // region base address (64 KB aligned)
	blocks  uint64 // region size in blocks
	pcs     []uint64
	pos     uint64      // Sequential/Loop cursor
	zipf    *stats.Zipf // Chase/Gather block popularity
	hot     []uint64    // hot set indices
	narrow  [][]uint64  // Narrow: per-PC private blocks
	rnd     *stats.Rand
	setBits int
}

// NewGenerator builds a deterministic generator for model with the given
// seed. Different seeds produce disjoint address spaces, which mirrors the
// paper's multi-programmed (no-sharing) setup.
func NewGenerator(model Model, seed uint64) (*Generator, error) {
	if err := model.Validate(); err != nil {
		return nil, err
	}
	g := &Generator{model: model, seed: seed, rnd: stats.NewRand(seed)}
	g.gapGeom = stats.NewGeom(g.rnd, model.MeanGap)
	// Alternative gap processes layer on top of (and fully replace) the
	// default geometric sampler; the default path's draw sequence is
	// untouched, so models without GapDist stay bit-identical.
	switch model.GapDist {
	case "", "geometric":
	case "poisson":
		g.gapAlt = stats.NewPoisson(g.rnd, model.MeanGap)
	case "gamma":
		g.gapAlt = stats.NewGamma(g.rnd, model.MeanGap, model.GapShape)
	case "weibull":
		g.gapAlt = stats.NewWeibull(g.rnd, model.MeanGap, model.GapShape)
	}
	var cum float64
	setBits := model.SetIndexBits
	if setBits == 0 {
		setBits = setIndexBits
	}
	for i, spec := range model.Streams {
		st := newStreamState(spec, g.rnd.Fork(uint64(i)+1), seed, i, setBits)
		g.streams = append(g.streams, st)
		cum += spec.Weight
		g.cumW = append(g.cumW, cum)
	}
	g.totalW = cum
	return g, nil
}

// MustGenerator is NewGenerator that panics on configuration errors; for use
// with the built-in registry models, which are validated by tests.
func MustGenerator(model Model, seed uint64) *Generator {
	g, err := NewGenerator(model, seed)
	if err != nil {
		panic(err)
	}
	return g
}

func newStreamState(spec StreamSpec, rnd *stats.Rand, seed uint64, idx, setBits int) *streamState {
	blocks := uint64(spec.FootprintKB) * 1024 / mem.BlockSize
	if blocks == 0 {
		blocks = 1
	}
	// Regions live in disjoint 1 GB "address universes" per (seed, stream)
	// so generators never alias across cores or streams.
	region := stats.Mix64(seed*2654435761 + uint64(idx)*97)
	base := (region % (1 << 20)) << 30
	base += uint64(idx) << 26
	st := &streamState{spec: spec, base: base, blocks: blocks, rnd: rnd, setBits: setBits}
	// PCs are stable across seeds for the same model stream so that
	// homogeneous mixes exercise the per-core predictor indexing.
	st.pcs = streamPCs(spec.PCs, idx)
	switch spec.Kind {
	case Chase, Gather:
		if spec.Skew > 0 {
			st.zipf = stats.NewZipf(rnd.Fork(11), blocks, spec.Skew)
		}
	case Narrow:
		per := spec.BlocksPerPC
		if per <= 0 {
			per = 2
		}
		st.narrow = make([][]uint64, spec.PCs)
		for i := range st.narrow {
			bs := make([]uint64, per)
			for j := range bs {
				bs[j] = rnd.Uint64n(blocks)
			}
			st.narrow[i] = bs
		}
	}
	if spec.HotSetFrac > 0 {
		// Clamp so hot sets stay a small fraction of the slice even on
		// scaled machines; otherwise "hot" degenerates to uniform. The
		// paper's Fig 5a mcf skew concentrates misses in very few sets.
		nHot := spec.HotSets
		if max := (1 << uint(setBits)) / 8; nHot > max {
			nHot = max
		}
		if nHot < 1 {
			nHot = 1
		}
		// Hot set indexes are structural (data-layout offsets baked into
		// the binary), so they are derived from the stream identity, NOT
		// the per-core seed: every core of a homogeneous mix hammers the
		// same sets, exactly like Fig 5's per-set MPKA skew.
		hotRnd := stats.NewRand(uint64(idx)*7907 + 5)
		st.hot = make([]uint64, nHot)
		for i := range st.hot {
			st.hot[i] = hotRnd.Uint64n(1 << uint(setBits))
		}
	}
	return st
}

// Next implements trace.Reader; the stream is infinite so ok is always true.
func (g *Generator) Next() (trace.Rec, bool) {
	st := g.pick()
	addr, pc := st.next()
	var gap int
	if g.gapAlt != nil {
		gap = g.gapAlt.Next()
	} else {
		gap = g.gapGeom.Next()
	}
	rec := trace.Rec{
		PC:    pc,
		Addr:  addr,
		Write: st.rnd.Float64() < st.spec.WriteFrac,
		Gap:   uint32(gap),
	}
	return rec, true
}

// Reset implements trace.Reader by rebuilding the deterministic state.
func (g *Generator) Reset() {
	fresh, err := NewGenerator(g.model, g.seed)
	if err != nil { // validated at construction; cannot happen
		panic(err)
	}
	*g = *fresh
}

// Model returns the generator's model.
func (g *Generator) Model() Model { return g.model }

func (g *Generator) pick() *streamState {
	u := g.rnd.Float64() * g.totalW
	for i, c := range g.cumW {
		if u < c {
			return g.streams[i]
		}
	}
	return g.streams[len(g.streams)-1]
}

func (st *streamState) next() (addr, pc uint64) {
	spec := st.spec
	switch spec.Kind {
	case Sequential:
		stride := uint64(spec.StrideBlk)
		if stride == 0 {
			stride = 1
		}
		blk := st.pos % st.blocks
		st.pos += stride
		pc = st.pcs[0]
		if len(st.pcs) > 1 {
			pc = st.pcs[int(st.pos/64)%len(st.pcs)]
		}
		return st.blockAddr(blk), pc
	case Loop:
		blk := st.pos % st.blocks
		st.pos++
		// Loop bodies cycle their PCs in program order.
		pc = st.pcs[int(blk)%len(st.pcs)]
		return st.blockAddr(blk), pc
	case Chase:
		var blk uint64
		if st.zipf != nil {
			blk = st.zipf.Next()
			// PC stratification: hot structures are walked by dedicated
			// PCs (tight pointer loops), the cold tail by traversal PCs.
			// This is what makes PC-indexed reuse predictors useful on
			// pointer-chasing codes, as they are on real mcf.
			pcIdx := int(blk * uint64(len(st.pcs)) / st.blocks)
			if pcIdx >= len(st.pcs) {
				pcIdx = len(st.pcs) - 1
			}
			pc = st.pcs[pcIdx]
		} else {
			blk = st.rnd.Uint64n(st.blocks)
			pc = st.pcs[st.rnd.Intn(len(st.pcs))]
		}
		if steered, h := st.steerHot(blk); steered != blk || st.isSteered(blk) {
			// The oversubscribed structure has its own traversal code:
			// steered blocks are touched by a dedicated PC group, so
			// their (pessimistic) training never poisons the predictions
			// for blocks living in ordinary sets.
			blk = steered
			if n := len(st.pcs); n > 8 {
				pc = st.pcs[n-1-int(h%4)]
			}
		}
		return st.blockAddr(blk), pc
	case Gather:
		var blk uint64
		if st.zipf != nil {
			blk = st.zipf.Next()
		} else {
			blk = st.rnd.Uint64n(st.blocks)
		}
		// Popularity rank correlates with PC: hot vertices are touched by
		// the tight inner loop, the tail by the frontier-expansion PCs.
		pcIdx := int(blk * uint64(len(st.pcs)) / st.blocks)
		if pcIdx >= len(st.pcs) {
			pcIdx = len(st.pcs) - 1
		}
		pc = st.pcs[pcIdx]
		blk, _ = st.steerHot(blk)
		return st.blockAddr(blk), pc
	case Narrow:
		i := st.rnd.Intn(len(st.pcs))
		bs := st.narrow[i]
		return st.blockAddr(bs[st.rnd.Intn(len(bs))]), st.pcs[i]
	default:
		panic(fmt.Sprintf("workload: unknown stream kind %d", spec.Kind))
	}
}

// steerHot redirects a fraction of the stream's blocks so their per-slice
// set index lands in one of the stream's hot sets, producing the per-set
// miss skew of Fig 5. The redirect is a pure function of the block, so a
// steered block keeps a stable address and its reuse pattern survives —
// high-MPKA sets are overloaded, not noise. The returned hash lets callers
// derive stable per-block choices (e.g., the dedicated PC).
func (st *streamState) steerHot(blk uint64) (uint64, uint64) {
	h := stats.Mix64(blk ^ st.base)
	if !st.steers(h) {
		return blk, h
	}
	// Skew among the hot sets themselves: quadratic bias toward index 0.
	u := float64(stats.Mix64(blk*2654435761+st.base)>>11) * 0x1p-53
	hot := st.hot[int(u*u*float64(len(st.hot)))]
	mask := uint64(1)<<uint(st.setBits) - 1
	return (blk &^ mask) | hot, h
}

// steers reports whether a block with steering hash h is redirected.
func (st *streamState) steers(h uint64) bool {
	if len(st.hot) == 0 {
		return false
	}
	return float64(h>>11)*0x1p-53 < st.spec.HotSetFrac
}

// isSteered reports whether blk belongs to the steered hash-slice.
func (st *streamState) isSteered(blk uint64) bool {
	return st.steers(stats.Mix64(blk ^ st.base))
}

func (st *streamState) blockAddr(blk uint64) uint64 {
	return st.base + blk*mem.BlockSize
}
