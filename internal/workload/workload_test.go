package workload

import (
	"testing"
	"testing/quick"

	"drishti/internal/mem"
	"drishti/internal/trace"
)

func TestRegistryCounts(t *testing.T) {
	if n := len(SPECModels()); n != 23 {
		t.Fatalf("SPEC models %d, want 23 (Section 5.1)", n)
	}
	if n := len(GAPModels()); n != 12 {
		t.Fatalf("GAP models %d, want 12", n)
	}
	if n := len(AllSPECGAP()); n != 35 {
		t.Fatalf("population %d, want 35", n)
	}
	if len(Fig19Models()) == 0 {
		t.Fatal("no Fig 19 models")
	}
}

func TestRegistryValidates(t *testing.T) {
	for _, m := range append(AllSPECGAP(), Fig19Models()...) {
		if err := m.Validate(); err != nil {
			t.Fatalf("%s: %v", m.Name, err)
		}
	}
}

func TestRegistryNamesUnique(t *testing.T) {
	seen := map[string]bool{}
	for _, m := range append(AllSPECGAP(), Fig19Models()...) {
		if seen[m.Name] {
			t.Fatalf("duplicate model name %s", m.Name)
		}
		seen[m.Name] = true
	}
}

func TestByName(t *testing.T) {
	if _, ok := ByName("605.mcf_s-1554B"); !ok {
		t.Fatal("mcf missing from registry")
	}
	if _, ok := ByName("not-a-benchmark"); ok {
		t.Fatal("bogus name resolved")
	}
}

func TestGeneratorDeterminism(t *testing.T) {
	m := SPECModels()[0]
	a := MustGenerator(m, 42)
	b := MustGenerator(m, 42)
	for i := 0; i < 5000; i++ {
		ra, _ := a.Next()
		rb, _ := b.Next()
		if ra != rb {
			t.Fatalf("streams diverged at %d: %+v vs %+v", i, ra, rb)
		}
	}
}

func TestGeneratorSeedsDisjoint(t *testing.T) {
	m := SPECModels()[0]
	a := MustGenerator(m, 1)
	b := MustGenerator(m, 2)
	blocksA := map[uint64]bool{}
	for i := 0; i < 5000; i++ {
		ra, _ := a.Next()
		blocksA[mem.Block(ra.Addr)] = true
	}
	overlap := 0
	for i := 0; i < 5000; i++ {
		rb, _ := b.Next()
		if blocksA[mem.Block(rb.Addr)] {
			overlap++
		}
	}
	if overlap > 0 {
		t.Fatalf("different seeds shared %d blocks (address spaces must be disjoint)", overlap)
	}
}

func TestGeneratorReset(t *testing.T) {
	g := MustGenerator(GAPModels()[0], 9)
	first := trace.Collect(g, 100)
	g.Reset()
	second := trace.Collect(g, 100)
	for i := range first {
		if first[i] != second[i] {
			t.Fatalf("Reset not reproducible at %d", i)
		}
	}
}

func TestStreamPCsStableAcrossSeeds(t *testing.T) {
	m := SPECModels()[2] // xalan-like
	want := StreamPCs(m, 0)
	for _, seed := range []uint64{1, 7, 99} {
		g := MustGenerator(m, seed)
		seen := map[uint64]bool{}
		for i := 0; i < 20000; i++ {
			r, _ := g.Next()
			seen[r.PC] = true
		}
		found := 0
		for _, pc := range want {
			if seen[pc] {
				found++
			}
		}
		if found < len(want)/2 {
			t.Fatalf("seed %d: only %d/%d stream-0 PCs observed", seed, found, len(want))
		}
	}
}

func TestScale(t *testing.T) {
	m := SPECModels()[0]
	s := m.Scale(8, 8)
	if s.SetIndexBits != 8 {
		t.Fatal("set bits not applied")
	}
	for i, st := range s.Streams {
		if st.FootprintKB > m.Streams[i].FootprintKB {
			t.Fatal("scaling grew a footprint")
		}
		if st.FootprintKB < 4 {
			t.Fatal("scaling below the floor")
		}
	}
	// Scale(1, 0) is the identity.
	id := m.Scale(1, 0)
	if id.Streams[0] != m.Streams[0] {
		t.Fatal("identity scale changed streams")
	}
}

func TestHotSetSteeringStable(t *testing.T) {
	// The same logical block must always land at the same address —
	// otherwise steered blocks never reuse (the Table 1 poisoning bug).
	m := Model{
		Name: "steer", Suite: SuiteSPEC, MeanGap: 1,
		Streams: []StreamSpec{{
			Kind: Chase, Weight: 1, FootprintKB: 256, PCs: 4,
			Skew: 0.9, HotSetFrac: 0.5, HotSets: 8,
		}},
		SetIndexBits: 6,
	}
	g := MustGenerator(m, 3)
	addrByPCOrder := map[uint64]map[uint64]bool{}
	for i := 0; i < 50000; i++ {
		r, _ := g.Next()
		blk := mem.Block(r.Addr)
		if addrByPCOrder[blk] == nil {
			addrByPCOrder[blk] = map[uint64]bool{}
		}
	}
	// Reuse must exist: distinct blocks ≪ accesses.
	if len(addrByPCOrder) > 45000 {
		t.Fatalf("steering destroyed block identity: %d distinct blocks in 50000 accesses", len(addrByPCOrder))
	}
}

func TestHotSetSkew(t *testing.T) {
	m := Model{
		Name: "skew", Suite: SuiteSPEC, MeanGap: 1,
		Streams: []StreamSpec{{
			Kind: Chase, Weight: 1, FootprintKB: 1024, PCs: 4,
			Skew: 0.8, HotSetFrac: 0.5, HotSets: 64,
		}},
		SetIndexBits: 8,
	}
	g := MustGenerator(m, 5)
	counts := make([]int, 256)
	for i := 0; i < 100000; i++ {
		r, _ := g.Next()
		counts[int(mem.Block(r.Addr))&255]++
	}
	max, min := counts[0], counts[0]
	for _, c := range counts {
		if c > max {
			max = c
		}
		if c < min {
			min = c
		}
	}
	if max < 4*min+4 {
		t.Fatalf("no per-set skew: max=%d min=%d", max, min)
	}
}

func TestMixes(t *testing.T) {
	models := AllSPECGAP()
	homo := HomogeneousMixes(models, 4, 1)
	if len(homo) != 35 {
		t.Fatalf("homogeneous mixes %d", len(homo))
	}
	for _, mix := range homo {
		if err := mix.Validate(); err != nil {
			t.Fatal(err)
		}
		if mix.Cores() != 4 {
			t.Fatal("wrong core count")
		}
		// Same model, distinct seeds (distinct SimPoints).
		if mix.Seeds[0] == mix.Seeds[1] {
			t.Fatal("homogeneous cores share a seed")
		}
		if mix.Models[0].Name != mix.Models[3].Name {
			t.Fatal("homogeneous mix mixes models")
		}
	}
	het := HeterogeneousMixes(models, 8, 35, 2)
	if len(het) != 35 {
		t.Fatalf("heterogeneous mixes %d", len(het))
	}
	paper := PaperMixes(4, 1)
	if len(paper) != 70 {
		t.Fatalf("paper population %d, want 70", len(paper))
	}
	f19 := Fig19Mixes(16, 1)
	if len(f19) != 50 {
		t.Fatalf("fig19 mixes %d, want 50", len(f19))
	}
}

func TestGapDistribution(t *testing.T) {
	m := SPECModels()[0]
	g := MustGenerator(m, 11)
	var sum float64
	const n = 50000
	for i := 0; i < n; i++ {
		r, _ := g.Next()
		sum += float64(r.Gap)
	}
	mean := sum / n
	if mean < m.MeanGap*0.8 || mean > m.MeanGap*1.2 {
		t.Fatalf("gap mean %.2f, model says %.2f", mean, m.MeanGap)
	}
}

func TestWriteFractionRoughlyMatches(t *testing.T) {
	m := SPECModels()[4] // lbm-like, write-heavy
	g := MustGenerator(m, 13)
	writes := 0
	const n = 50000
	for i := 0; i < n; i++ {
		r, _ := g.Next()
		if r.Write {
			writes++
		}
	}
	if writes == 0 {
		t.Fatal("write-heavy model produced no writes")
	}
}

func TestValidateRejectsBadModels(t *testing.T) {
	bad := []Model{
		{},
		{Name: "x"},
		{Name: "x", Streams: []StreamSpec{{Kind: Loop, Weight: 0, FootprintKB: 1, PCs: 1}}},
		{Name: "x", Streams: []StreamSpec{{Kind: Loop, Weight: 1, FootprintKB: 0, PCs: 1}}},
		{Name: "x", Streams: []StreamSpec{{Kind: Loop, Weight: 1, FootprintKB: 1, PCs: 0}}},
		{Name: "x", Streams: []StreamSpec{{Kind: Loop, Weight: 1, FootprintKB: 1, PCs: 1, WriteFrac: 2}}},
		{Name: "x", Streams: []StreamSpec{{Kind: Loop, Weight: 1, FootprintKB: 1, PCs: 1, HotSetFrac: 0.5}}},
	}
	for i, m := range bad {
		if err := m.Validate(); err == nil {
			t.Fatalf("bad model %d accepted", i)
		}
	}
}

func TestGeneratorAddressesAlwaysInRegionProperty(t *testing.T) {
	check := func(seed uint64) bool {
		g := MustGenerator(GAPModels()[int(seed%uint64(len(GAPModels())))], seed)
		for i := 0; i < 2000; i++ {
			r, ok := g.Next()
			if !ok || r.Addr == 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}
