package workload

import (
	"fmt"

	"drishti/internal/trace"
)

// PhasedModel alternates between two or more component models on a fixed
// record period, imitating application phase changes. The dynamic sampled
// cache's re-monitoring cycle (Section 4.2's "phase change and count
// reset") exists exactly for this behavior: the hot sets of one phase are
// stale in the next, and the selector must re-identify them.
type PhasedModel struct {
	Name   string
	Phases []Model
	// Period is the number of memory records each phase lasts.
	Period uint64
}

// Validate reports configuration errors.
func (m PhasedModel) Validate() error {
	if m.Name == "" {
		return fmt.Errorf("workload: phased model with empty name")
	}
	if len(m.Phases) < 2 {
		return fmt.Errorf("workload: phased model %s needs ≥2 phases", m.Name)
	}
	if m.Period == 0 {
		return fmt.Errorf("workload: phased model %s has zero period", m.Name)
	}
	for _, ph := range m.Phases {
		if err := ph.Validate(); err != nil {
			return fmt.Errorf("workload: phased model %s: %w", m.Name, err)
		}
	}
	return nil
}

// PhasedGenerator implements trace.Reader over a PhasedModel.
type PhasedGenerator struct {
	model PhasedModel
	seed  uint64
	gens  []*Generator
	pos   uint64
}

// NewPhasedGenerator builds a deterministic phased generator. All phases
// share the seed, so a structure that appears in two phases keeps its
// addresses (the realistic case: same data, different access pattern).
func NewPhasedGenerator(model PhasedModel, seed uint64) (*PhasedGenerator, error) {
	if err := model.Validate(); err != nil {
		return nil, err
	}
	g := &PhasedGenerator{model: model, seed: seed}
	for _, ph := range model.Phases {
		pg, err := NewGenerator(ph, seed)
		if err != nil {
			return nil, err
		}
		g.gens = append(g.gens, pg)
	}
	return g, nil
}

// Next implements trace.Reader.
func (g *PhasedGenerator) Next() (trace.Rec, bool) {
	phase := int(g.pos/g.model.Period) % len(g.gens)
	g.pos++
	return g.gens[phase].Next()
}

// Reset implements trace.Reader.
func (g *PhasedGenerator) Reset() {
	g.pos = 0
	for _, pg := range g.gens {
		pg.Reset()
	}
}

// Phase reports which phase the next record will come from.
func (g *PhasedGenerator) Phase() int {
	return int(g.pos/g.model.Period) % len(g.gens)
}

// PhasedMcf builds a phase-changing mcf-like workload: a pointer-chase
// phase whose hot sets differ from the following scan phase. Period is in
// memory records.
func PhasedMcf(period uint64) PhasedModel {
	chase := chaseModel("mcf-phaseA", SuiteSPEC, 48, 0.85, 0.5, 48, 16, 2.5)
	scan := streamModel("mcf-phaseB", SuiteSPEC, 48, 0.2, 2.5, 8)
	return PhasedModel{Name: "phased-mcf", Phases: []Model{chase, scan}, Period: period}
}

// ScalePhased applies Model.Scale to every phase.
func ScalePhased(m PhasedModel, divisor, setBits int) PhasedModel {
	out := m
	out.Phases = make([]Model, len(m.Phases))
	for i, ph := range m.Phases {
		out.Phases[i] = ph.Scale(divisor, setBits)
	}
	return out
}
