package policies

import (
	"fmt"
	"strings"
)

// Key returns a stable identity string for the spec, suitable for memo
// cache keys. A %+v rendering is not: the optional fields are pointers,
// so two specs equal in every resolved knob — built by different call
// sites — would render as distinct addresses and never share a cache
// entry. Key dereferences every pointer (encoding nil distinctly from
// any set value, since nil means "policy default") and delimits slice
// elements so neighboring fields cannot run together.
func (s Spec) Key() string {
	var b strings.Builder
	b.WriteString("name=")
	b.WriteString(s.Name)
	fmt.Fprintf(&b, "|drishti=%t", s.Drishti)
	if s.Placement != nil {
		fmt.Fprintf(&b, "|place=%d", *s.Placement)
	} else {
		b.WriteString("|place=nil")
	}
	if s.UseNocstar != nil {
		fmt.Fprintf(&b, "|nocstar=%t", *s.UseNocstar)
	} else {
		b.WriteString("|nocstar=nil")
	}
	fmt.Fprintf(&b, "|predlat=%d", s.FixedPredLatency)
	if s.DynamicSampler != nil {
		fmt.Fprintf(&b, "|dsc=%t", *s.DynamicSampler)
	} else {
		b.WriteString("|dsc=nil")
	}
	fmt.Fprintf(&b, "|ssets=%d", s.SampledSets)
	b.WriteString("|fixed=")
	writeInts(&b, s.FixedSampledSets)
	b.WriteString("|perslice=")
	for i, sets := range s.FixedPerSlice {
		if i > 0 {
			b.WriteByte(';')
		}
		writeInts(&b, sets)
	}
	return b.String()
}

func writeInts(b *strings.Builder, xs []int) {
	for i, x := range xs {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(b, "%d", x)
	}
}
