// Package policies wires replacement policies onto a sliced LLC: it builds
// the predictor fabric, the per-slice sampled-set selectors, any shared
// (banked) predictor state, and one policy instance per slice.
//
// A Spec names the base policy and the Drishti configuration. Spec.Drishti
// is shorthand for the paper's D-<policy> point: per-core-yet-global
// predictor over NOCSTAR plus the dynamic sampled cache with the reduced
// sampled-set counts of Section 4.2. Every knob can also be set explicitly,
// which is how the ablation and design-space experiments are driven.
package policies

import (
	"fmt"

	"drishti/internal/fabric"
	"drishti/internal/noc"
	"drishti/internal/policy/chrome"
	"drishti/internal/policy/glider"
	"drishti/internal/policy/hawkeye"
	"drishti/internal/policy/leeway"
	"drishti/internal/policy/mockingjay"
	"drishti/internal/policy/perceptron"
	"drishti/internal/policy/sdbp"
	"drishti/internal/policy/shippp"
	"drishti/internal/repl"
	"drishti/internal/sampler"
	"drishti/internal/stats"
)

// Spec selects a policy and its Drishti configuration.
type Spec struct {
	// Name is the base policy: lru, random, srrip, brrip, dip, ipv, eva,
	// hawkeye, mockingjay, ship++, glider, chrome, sdbp, leeway,
	// perceptron.
	Name string

	// Drishti applies both enhancements with the paper's defaults.
	Drishti bool

	// Placement overrides the predictor placement (nil = Local, or
	// PerCoreGlobal when Drishti is set).
	Placement *fabric.Placement

	// UseNocstar routes slice↔predictor traffic over the dedicated
	// low-latency interconnect (default: true when Drishti).
	UseNocstar *bool

	// FixedPredLatency forces a constant slice→predictor latency in
	// cycles (Fig 11b sensitivity); 0 = use the interconnect model.
	FixedPredLatency uint32

	// DynamicSampler enables the dynamic sampled cache (default: true
	// when Drishti).
	DynamicSampler *bool

	// SampledSets overrides the per-slice sampled-set count (0 = policy
	// default: baseline counts without Drishti, reduced with).
	SampledSets int

	// FixedSampledSets pins the sampled sets of every slice (Table 1's
	// oracle selection experiments). Overrides DynamicSampler.
	FixedSampledSets []int

	// FixedPerSlice pins a different sampled-set list per slice (Table 1
	// with per-slice MPKA rankings). Overrides FixedSampledSets.
	FixedPerSlice [][]int
}

// DisplayName renders the conventional name (D- prefix when Drishti).
func (s Spec) DisplayName() string {
	if s.Drishti {
		return "d-" + s.Name
	}
	return s.Name
}

// IsPredictorBased reports whether the policy uses a sampled cache and
// reuse predictor (Table 7's prediction-based category).
func (s Spec) IsPredictorBased() bool {
	switch s.Name {
	case "hawkeye", "mockingjay", "ship++", "glider", "chrome",
		"sdbp", "leeway", "perceptron":
		return true
	}
	return false
}

// SupportsDSCOnly reports whether the policy takes only Enhancement II
// (dynamic set selection for its dueling sets): the memoryless set-dueling
// policies of Table 7's first row.
func (s Spec) SupportsDSCOnly() bool { return s.Name == "dip" }

// placement resolves the effective predictor placement.
func (s Spec) placement() fabric.Placement {
	if s.Placement != nil {
		return *s.Placement
	}
	if s.Drishti {
		return fabric.PerCoreGlobal
	}
	return fabric.Local
}

// useNocstar resolves the effective interconnect choice.
func (s Spec) useNocstar() bool {
	if s.UseNocstar != nil {
		return *s.UseNocstar
	}
	return s.Drishti
}

// dynamicSampler resolves the effective sampled-set selection strategy.
func (s Spec) dynamicSampler() bool {
	if len(s.FixedSampledSets) > 0 || len(s.FixedPerSlice) > 0 {
		return false
	}
	if s.DynamicSampler != nil {
		return *s.DynamicSampler
	}
	return s.Drishti
}

// sampledSets resolves the per-slice sampled-set count for the base policy.
// Paper defaults (for a 2048-set slice): Hawkeye 64→8, Mockingjay 32→16
// (Section 4.2); the other prediction-based policies follow Hawkeye's
// ratio. Counts scale with the slice's set count so harness-scale machines
// keep the paper's sampling density.
func (s Spec) sampledSets(setsPerSlice int) int {
	if len(s.FixedPerSlice) > 0 {
		return len(s.FixedPerSlice[0])
	}
	if len(s.FixedSampledSets) > 0 {
		return len(s.FixedSampledSets)
	}
	if s.SampledSets > 0 {
		return s.SampledSets
	}
	drishti := s.dynamicSampler()
	base := 64
	switch s.Name {
	case "mockingjay":
		if drishti {
			base = 16
		} else {
			base = 32
		}
	default:
		if drishti {
			base = 8
		}
	}
	n := base * setsPerSlice / 2048
	// Floor: below 8 sampled sets the dynamic top-N selection and the
	// OPTgen history degenerate; full-size slices are unaffected.
	if n < 8 {
		n = 8
	}
	if n > setsPerSlice {
		n = setsPerSlice
	}
	return n
}

// Geometry describes the sliced LLC the policy attaches to.
type Geometry struct {
	Slices       int
	Cores        int
	SetsPerSlice int
	Ways         int
}

// Built is the assembled policy stack for a sliced LLC.
type Built struct {
	Spec      Spec
	PerSlice  []repl.Policy
	Selectors []sampler.SetSelector // nil entries for non-sampled policies
	Fabric    *fabric.Fabric        // nil for non-predictor policies
	Shared    any                   // policy-specific shared state (e.g. *mockingjay.Shared)
	Budget    map[string]int        // per-core storage in bytes
}

// Build assembles the policy stack. mesh and star are the system
// interconnect models (star may be nil when NOCSTAR is not used).
func Build(spec Spec, g Geometry, mesh *noc.Mesh, star *noc.Star, rnd *stats.Rand) (*Built, error) {
	if g.Slices <= 0 || g.Cores <= 0 || g.SetsPerSlice <= 0 || g.Ways <= 0 {
		return nil, fmt.Errorf("policies: invalid geometry %+v", g)
	}
	b := &Built{Spec: spec, PerSlice: make([]repl.Policy, g.Slices)}

	if spec.SupportsDSCOnly() && spec.dynamicSampler() {
		return buildDynamicDIP(spec, g, rnd, b)
	}
	if !spec.IsPredictorBased() {
		return buildBasic(spec, g, rnd, b)
	}

	fab, err := fabric.New(fabric.Config{
		Placement:        spec.placement(),
		Slices:           g.Slices,
		Cores:            g.Cores,
		UseNocstar:       spec.useNocstar(),
		Mesh:             mesh,
		Star:             star,
		FixedPredLatency: spec.FixedPredLatency,
	})
	if err != nil {
		return nil, err
	}
	b.Fabric = fab

	n := spec.sampledSets(g.SetsPerSlice)
	b.Selectors = make([]sampler.SetSelector, g.Slices)
	for i := range b.Selectors {
		sel, err := buildSelector(spec, g, n, i, rnd.Fork(uint64(i)+101))
		if err != nil {
			return nil, err
		}
		b.Selectors[i] = sel
	}

	dynamic := spec.dynamicSampler()
	switch spec.Name {
	case "hawkeye":
		cfg := hawkeye.Config{Sets: g.SetsPerSlice, Ways: g.Ways, Slices: g.Slices, Cores: g.Cores, SampledSets: n}
		shared, err := hawkeye.NewShared(cfg, fab)
		if err != nil {
			return nil, err
		}
		b.Shared = shared
		for i := range b.PerSlice {
			b.PerSlice[i] = hawkeye.NewSlice(shared, i, b.Selectors[i])
		}
		b.Budget = hawkeye.Budget(cfg, n, dynamic)
	case "mockingjay":
		cfg := mockingjay.Config{Sets: g.SetsPerSlice, Ways: g.Ways, Slices: g.Slices, Cores: g.Cores, SampledSets: n}
		shared, err := mockingjay.NewShared(cfg, fab)
		if err != nil {
			return nil, err
		}
		b.Shared = shared
		for i := range b.PerSlice {
			b.PerSlice[i] = mockingjay.NewSlice(shared, i, b.Selectors[i])
		}
		b.Budget = mockingjay.Budget(cfg, n, dynamic)
	case "ship++":
		cfg := shippp.Config{Sets: g.SetsPerSlice, Ways: g.Ways, Slices: g.Slices, Cores: g.Cores, SampledSets: n}
		shared, err := shippp.NewShared(cfg, fab)
		if err != nil {
			return nil, err
		}
		b.Shared = shared
		for i := range b.PerSlice {
			b.PerSlice[i] = shippp.NewSlice(shared, i, b.Selectors[i])
		}
		b.Budget = shippp.Budget(cfg, n, dynamic)
	case "glider":
		cfg := glider.Config{Sets: g.SetsPerSlice, Ways: g.Ways, Slices: g.Slices, Cores: g.Cores, SampledSets: n}
		shared, err := glider.NewShared(cfg, fab)
		if err != nil {
			return nil, err
		}
		b.Shared = shared
		for i := range b.PerSlice {
			b.PerSlice[i] = glider.NewSlice(shared, i, b.Selectors[i])
		}
		b.Budget = glider.Budget(cfg, n, dynamic)
	case "chrome":
		cfg := chrome.Config{Sets: g.SetsPerSlice, Ways: g.Ways, Slices: g.Slices, Cores: g.Cores}
		shared, err := chrome.NewShared(cfg, fab, rnd.Fork(7))
		if err != nil {
			return nil, err
		}
		b.Shared = shared
		for i := range b.PerSlice {
			b.PerSlice[i] = chrome.NewSlice(shared, i, b.Selectors[i])
		}
		b.Budget = chrome.Budget(cfg, dynamic)
	case "sdbp":
		cfg := sdbp.Config{Sets: g.SetsPerSlice, Ways: g.Ways, Slices: g.Slices, Cores: g.Cores, SampledSets: n}
		shared, err := sdbp.NewShared(cfg, fab)
		if err != nil {
			return nil, err
		}
		b.Shared = shared
		for i := range b.PerSlice {
			b.PerSlice[i] = sdbp.NewSlice(shared, i, b.Selectors[i])
		}
		b.Budget = sdbp.Budget(cfg, n, dynamic)
	case "leeway":
		cfg := leeway.Config{Sets: g.SetsPerSlice, Ways: g.Ways, Slices: g.Slices, Cores: g.Cores, SampledSets: n}
		shared, err := leeway.NewShared(cfg, fab)
		if err != nil {
			return nil, err
		}
		b.Shared = shared
		for i := range b.PerSlice {
			b.PerSlice[i] = leeway.NewSlice(shared, i, b.Selectors[i])
		}
		b.Budget = leeway.Budget(cfg, n, dynamic)
	case "perceptron":
		cfg := perceptron.Config{Sets: g.SetsPerSlice, Ways: g.Ways, Slices: g.Slices, Cores: g.Cores, SampledSets: n}
		shared, err := perceptron.NewShared(cfg, fab)
		if err != nil {
			return nil, err
		}
		b.Shared = shared
		for i := range b.PerSlice {
			b.PerSlice[i] = perceptron.NewSlice(shared, i, b.Selectors[i])
		}
		b.Budget = perceptron.Budget(cfg, n, dynamic)
	default:
		return nil, fmt.Errorf("policies: unknown predictor policy %q", spec.Name)
	}
	return b, nil
}

func buildBasic(spec Spec, g Geometry, rnd *stats.Rand, b *Built) (*Built, error) {
	for i := range b.PerSlice {
		switch spec.Name {
		case "lru":
			b.PerSlice[i] = repl.NewLRU(g.SetsPerSlice, g.Ways)
		case "random":
			b.PerSlice[i] = repl.NewRandom(g.Ways, rnd.Uint64())
		case "srrip":
			b.PerSlice[i] = repl.NewSRRIP(g.SetsPerSlice, g.Ways)
		case "brrip":
			b.PerSlice[i] = repl.NewBRRIP(g.SetsPerSlice, g.Ways)
		case "dip":
			b.PerSlice[i] = repl.NewDIP(g.SetsPerSlice, g.Ways, rnd.Uint64())
		case "ipv":
			b.PerSlice[i] = repl.NewIPV(g.SetsPerSlice, g.Ways)
		case "eva":
			b.PerSlice[i] = repl.NewEVA(g.SetsPerSlice, g.Ways)
		default:
			return nil, fmt.Errorf("policies: unknown policy %q", spec.Name)
		}
	}
	b.Budget = map[string]int{}
	return b, nil
}

func buildSelector(spec Spec, g Geometry, n, slice int, rnd *stats.Rand) (sampler.SetSelector, error) {
	if len(spec.FixedPerSlice) > 0 {
		return sampler.NewFixed(spec.FixedPerSlice[slice%len(spec.FixedPerSlice)]), nil
	}
	if len(spec.FixedSampledSets) > 0 {
		return sampler.NewFixed(spec.FixedSampledSets), nil
	}
	if spec.dynamicSampler() {
		cfg := sampler.DynamicConfig{N: n}.Normalize(g.SetsPerSlice, g.Ways)
		return sampler.NewDynamic(cfg, rnd)
	}
	return sampler.NewStatic(g.SetsPerSlice, n, rnd), nil
}

// KnownPolicies lists the policy names Build accepts.
func KnownPolicies() []string {
	return []string{
		"lru", "random", "srrip", "brrip", "dip", "ipv", "eva",
		"hawkeye", "mockingjay", "ship++", "glider", "chrome",
		"sdbp", "leeway", "perceptron",
	}
}

// dynamicDIP is DIP whose dueling leader sets come from Drishti's dynamic
// sampled cache: the two teams duel on the highest-capacity-demand sets.
type dynamicDIP struct {
	*repl.DIP
	sel sampler.SetSelector
	gen uint64
}

// OnAccess implements repl.Observer: feeds the selector and re-teams the
// leaders when the selection changes.
func (d *dynamicDIP) OnAccess(set int, a repl.Access, hit bool) {
	if a.Type.IsDemand() {
		d.sel.OnAccess(set, hit)
	}
	if g := d.sel.Generation(); g != d.gen {
		d.gen = g
		sets := d.sel.SampledSets()
		half := len(sets) / 2
		d.SetLeaders(sets[:half], sets[half:])
	}
	d.DIP.OnAccess(set, a, hit)
}

func buildDynamicDIP(spec Spec, g Geometry, rnd *stats.Rand, b *Built) (*Built, error) {
	n := spec.sampledSets(g.SetsPerSlice)
	b.Selectors = make([]sampler.SetSelector, g.Slices)
	for i := range b.PerSlice {
		sel, err := buildSelector(spec, g, n, i, rnd.Fork(uint64(i)+101))
		if err != nil {
			return nil, err
		}
		b.Selectors[i] = sel
		d := &dynamicDIP{DIP: repl.NewDIP(g.SetsPerSlice, g.Ways, rnd.Uint64()), sel: sel, gen: sel.Generation()}
		sets := sel.SampledSets()
		half := len(sets) / 2
		d.SetLeaders(sets[:half], sets[half:])
		b.PerSlice[i] = d
	}
	b.Budget = map[string]int{"saturating-counters": g.SetsPerSlice}
	return b, nil
}

// BoolPtr is a convenience for Spec literal construction.
func BoolPtr(v bool) *bool { return &v }

// PlacementPtr is a convenience for Spec literal construction.
func PlacementPtr(p fabric.Placement) *fabric.Placement { return &p }
