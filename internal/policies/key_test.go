package policies

import (
	"testing"

	"drishti/internal/fabric"
)

func TestSpecKeyDistinguishesFields(t *testing.T) {
	variants := map[string]Spec{
		"lru":         {Name: "lru"},
		"srrip":       {Name: "srrip"},
		"drishti":     {Name: "lru", Drishti: true},
		"place-local": {Name: "lru", Placement: PlacementPtr(fabric.Local)},
		"place-cent":  {Name: "lru", Placement: PlacementPtr(fabric.Centralized)},
		"nocstar-on":  {Name: "lru", UseNocstar: BoolPtr(true)},
		"nocstar-off": {Name: "lru", UseNocstar: BoolPtr(false)},
		"predlat":     {Name: "lru", FixedPredLatency: 5},
		"dsc-on":      {Name: "lru", DynamicSampler: BoolPtr(true)},
		"dsc-off":     {Name: "lru", DynamicSampler: BoolPtr(false)},
		"ssets":       {Name: "lru", SampledSets: 4},
		"fixed-1-2":   {Name: "lru", FixedSampledSets: []int{1, 2}},
		"fixed-12":    {Name: "lru", FixedSampledSets: []int{12}},
		"slice-1s2":   {Name: "lru", FixedPerSlice: [][]int{{1}, {2}}},
		"slice-12":    {Name: "lru", FixedPerSlice: [][]int{{1, 2}}},
		"slice-1-2s":  {Name: "lru", FixedPerSlice: [][]int{{1, 2}, {}}},
	}
	keys := map[string]string{}
	for name, spec := range variants {
		k := spec.Key()
		for prev, pk := range keys {
			if pk == k {
				t.Errorf("spec %q collides with %q: %s", name, prev, k)
			}
		}
		keys[name] = k
	}
}

// TestSpecKeyValueSemantics: two specs equal in every resolved knob must
// share a key even when their pointer fields are distinct allocations —
// the collision-free replacement for the old %+v keys, which rendered
// pointer addresses.
func TestSpecKeyValueSemantics(t *testing.T) {
	a := Spec{Name: "mockingjay", Placement: PlacementPtr(fabric.PerCoreGlobal),
		UseNocstar: BoolPtr(true), DynamicSampler: BoolPtr(false)}
	b := Spec{Name: "mockingjay", Placement: PlacementPtr(fabric.PerCoreGlobal),
		UseNocstar: BoolPtr(true), DynamicSampler: BoolPtr(false)}
	if a.Key() != b.Key() {
		t.Fatalf("equal specs with distinct pointers differ:\n%s\n%s", a.Key(), b.Key())
	}
	// nil means "policy default", which Drishti flips — it must not alias
	// any explicit setting.
	if (Spec{Name: "lru"}).Key() == (Spec{Name: "lru", UseNocstar: BoolPtr(false)}).Key() {
		t.Fatal("nil UseNocstar aliases explicit false")
	}
}
