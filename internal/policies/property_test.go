package policies

import (
	"testing"
	"testing/quick"

	"drishti/internal/mem"
	"drishti/internal/noc"
	"drishti/internal/repl"
	"drishti/internal/stats"
)

// TestAllPoliciesSurviveArbitraryAccessStreams is the cross-policy fuzz
// harness: every policy (base and Drishti variant), under every placement
// its spec implies, must produce in-range victims and never panic for an
// arbitrary interleaving of loads, stores, prefetches, writebacks, hits,
// fills, and evictions.
func TestAllPoliciesSurviveArbitraryAccessStreams(t *testing.T) {
	g := Geometry{Slices: 2, Cores: 2, SetsPerSlice: 32, Ways: 4}
	var specs []Spec
	for _, name := range KnownPolicies() {
		specs = append(specs, Spec{Name: name})
		if (Spec{Name: name}).IsPredictorBased() || name == "dip" {
			specs = append(specs, Spec{Name: name, Drishti: true})
		}
	}
	for _, spec := range specs {
		spec := spec
		t.Run(spec.DisplayName(), func(t *testing.T) {
			b, err := Build(spec, g, noc.NewMesh(2, 4, 2), noc.NewStar(2, 3), stats.NewRand(1))
			if err != nil {
				t.Fatal(err)
			}
			check := func(ops []uint32) bool {
				for _, op := range ops {
					slice := int(op) % g.Slices
					set := int(op>>1) % g.SetsPerSlice
					way := int(op>>6) % g.Ways
					typ := mem.AccessType(op>>8) % 4
					a := repl.Access{
						PC:    uint64(op>>10)*4 + 0x400000,
						Block: uint64(op >> 3),
						Core:  int(op>>2) % g.Cores,
						Set:   set,
						Type:  typ,
					}
					p := b.PerSlice[slice]
					if obs, ok := p.(repl.Observer); ok {
						obs.OnAccess(set, a, op%3 == 0)
					}
					switch op % 4 {
					case 0:
						if v := p.Victim(set, a); v != repl.Bypass && (v < 0 || v >= g.Ways) {
							return false
						}
					case 1:
						p.OnFill(set, way, a)
					case 2:
						p.OnHit(set, way, a)
					default:
						p.OnEvict(set, way, a.Block)
					}
				}
				return true
			}
			if err := quick.Check(check, &quick.Config{MaxCount: 20}); err != nil {
				t.Fatal(err)
			}
		})
	}
}
