package policies

import (
	"testing"

	"drishti/internal/fabric"
	"drishti/internal/noc"
	"drishti/internal/sampler"
	"drishti/internal/stats"
)

func geo() Geometry { return Geometry{Slices: 4, Cores: 4, SetsPerSlice: 256, Ways: 16} }

func buildSpec(t *testing.T, spec Spec) *Built {
	t.Helper()
	b, err := Build(spec, geo(), noc.NewMesh(4, 4, 2), noc.NewStar(4, 3), stats.NewRand(1))
	if err != nil {
		t.Fatalf("Build(%+v): %v", spec, err)
	}
	return b
}

func TestBuildAllPolicies(t *testing.T) {
	for _, name := range KnownPolicies() {
		for _, drishti := range []bool{false, true} {
			if drishti && !(Spec{Name: name}).IsPredictorBased() {
				continue
			}
			b := buildSpec(t, Spec{Name: name, Drishti: drishti})
			if len(b.PerSlice) != 4 {
				t.Fatalf("%s: %d slice policies", name, len(b.PerSlice))
			}
			for _, p := range b.PerSlice {
				if p == nil {
					t.Fatalf("%s: nil slice policy", name)
				}
			}
		}
	}
}

func TestUnknownPolicyRejected(t *testing.T) {
	if _, err := Build(Spec{Name: "belady"}, geo(), nil, nil, stats.NewRand(1)); err == nil {
		t.Fatal("unknown policy accepted")
	}
}

func TestDisplayName(t *testing.T) {
	if (Spec{Name: "mockingjay", Drishti: true}).DisplayName() != "d-mockingjay" {
		t.Fatal("display name wrong")
	}
	if (Spec{Name: "lru"}).DisplayName() != "lru" {
		t.Fatal("plain display name wrong")
	}
}

func TestDrishtiDefaults(t *testing.T) {
	b := buildSpec(t, Spec{Name: "mockingjay", Drishti: true})
	if b.Fabric.Placement() != fabric.PerCoreGlobal {
		t.Fatalf("drishti placement %v", b.Fabric.Placement())
	}
	if _, ok := b.Selectors[0].(*sampler.Dynamic); !ok {
		t.Fatalf("drishti selector %T, want dynamic", b.Selectors[0])
	}
	base := buildSpec(t, Spec{Name: "mockingjay"})
	if base.Fabric.Placement() != fabric.Local {
		t.Fatalf("baseline placement %v", base.Fabric.Placement())
	}
	if _, ok := base.Selectors[0].(*sampler.Static); !ok {
		t.Fatalf("baseline selector %T, want static", base.Selectors[0])
	}
}

func TestPlacementOverride(t *testing.T) {
	b := buildSpec(t, Spec{Name: "hawkeye", Placement: PlacementPtr(fabric.Centralized), FixedPredLatency: 1})
	if b.Fabric.Placement() != fabric.Centralized {
		t.Fatal("placement override ignored")
	}
	if b.Fabric.NumBanks() != 1 {
		t.Fatal("centralized should have one bank")
	}
}

func TestSampledSetsScaleWithGeometry(t *testing.T) {
	// 256-set slices: paper's 32-of-2048 ratio gives 4, floored to 8.
	spec := Spec{Name: "mockingjay"}
	if n := spec.sampledSets(256); n != 8 {
		t.Fatalf("scaled sampled sets %d, want 8", n)
	}
	if n := spec.sampledSets(2048); n != 32 {
		t.Fatalf("full-size sampled sets %d, want 32", n)
	}
	d := Spec{Name: "mockingjay", Drishti: true}
	if n := d.sampledSets(2048); n != 16 {
		t.Fatalf("drishti full-size sampled sets %d, want 16", n)
	}
	h := Spec{Name: "hawkeye"}
	if n := h.sampledSets(2048); n != 64 {
		t.Fatalf("hawkeye sampled sets %d, want 64", n)
	}
}

func TestFixedPerSlice(t *testing.T) {
	spec := Spec{Name: "mockingjay", FixedPerSlice: [][]int{{1, 2}, {3, 4}, {5, 6}, {7, 8}}}
	b := buildSpec(t, spec)
	got := b.Selectors[2].SampledSets()
	if len(got) != 2 || got[0] != 5 || got[1] != 6 {
		t.Fatalf("slice 2 sampled sets %v", got)
	}
}

func TestNonPredictorHasNoFabric(t *testing.T) {
	b := buildSpec(t, Spec{Name: "lru"})
	if b.Fabric != nil {
		t.Fatal("lru should not build a fabric")
	}
	if b.Shared != nil {
		t.Fatal("lru should have no shared state")
	}
}

func TestBudgetsPopulated(t *testing.T) {
	for _, name := range []string{"hawkeye", "mockingjay", "ship++", "glider", "chrome"} {
		b := buildSpec(t, Spec{Name: name})
		if len(b.Budget) == 0 {
			t.Fatalf("%s: empty budget", name)
		}
	}
}

func TestSharedStateIsShared(t *testing.T) {
	b := buildSpec(t, Spec{Name: "hawkeye", Drishti: true})
	if b.Shared == nil {
		t.Fatal("no shared state")
	}
}

func TestTable2DesignSpaceBuildable(t *testing.T) {
	// Every placement in Table 2 must assemble.
	for _, place := range []fabric.Placement{
		fabric.Local, fabric.Centralized, fabric.PerCoreGlobal,
		fabric.GlobalSCCentralized, fabric.GlobalSCDistributed,
	} {
		buildSpec(t, Spec{Name: "mockingjay", Placement: PlacementPtr(place)})
	}
}
