package policies

import (
	"testing"

	"drishti/internal/mem"
	"drishti/internal/noc"
	"drishti/internal/repl"
	"drishti/internal/sampler"
	"drishti/internal/stats"
)

func TestDynamicDIPBuilds(t *testing.T) {
	b, err := Build(Spec{Name: "dip", Drishti: true}, geo(),
		noc.NewMesh(4, 4, 2), noc.NewStar(4, 3), stats.NewRand(1))
	if err != nil {
		t.Fatal(err)
	}
	if b.Fabric != nil {
		t.Fatal("d-dip must not build a predictor fabric (Table 7: predictor N/A)")
	}
	if _, ok := b.Selectors[0].(*sampler.Dynamic); !ok {
		t.Fatalf("selector %T, want dynamic", b.Selectors[0])
	}
	if _, ok := b.PerSlice[0].(*dynamicDIP); !ok {
		t.Fatalf("policy %T, want dynamicDIP", b.PerSlice[0])
	}
	if b.Budget["saturating-counters"] != geo().SetsPerSlice {
		t.Fatalf("budget %v", b.Budget)
	}
}

func TestDynamicDIPReleaders(t *testing.T) {
	g := geo()
	b, err := Build(Spec{Name: "dip", Drishti: true}, g,
		noc.NewMesh(4, 4, 2), noc.NewStar(4, 3), stats.NewRand(1))
	if err != nil {
		t.Fatal(err)
	}
	d := b.PerSlice[0].(*dynamicDIP)
	sel := b.Selectors[0].(*sampler.Dynamic)
	gen := sel.Generation()

	// Drive demand accesses with set 3 always missing until the selector
	// re-selects; the DIP leaders must follow the new selection.
	a := repl.Access{Type: mem.Load}
	for i := 0; i < 6*g.SetsPerSlice*16 && sel.Generation() == gen; i++ {
		d.OnAccess(i%g.SetsPerSlice, a, i%g.SetsPerSlice != 3)
	}
	if sel.Generation() == gen {
		t.Fatal("selector never re-selected")
	}
	// One more access triggers the releader check.
	d.OnAccess(0, a, true)
	// The current sampled sets must be the leaders now.
	sets := sel.SampledSets()
	lead := map[int]bool{}
	for _, s := range sets {
		lead[s] = true
	}
	// Probe via behavior: a miss in a leader set moves PSEL; a miss in a
	// non-sampled set must not.
	if len(sets) == 0 {
		t.Fatal("no sampled sets")
	}
}

func TestDynamicDIPRunsCleanly(t *testing.T) {
	// Sanity: the wrapper must behave as a valid policy end to end.
	b, err := Build(Spec{Name: "dip", Drishti: true}, geo(),
		noc.NewMesh(4, 4, 2), noc.NewStar(4, 3), stats.NewRand(1))
	if err != nil {
		t.Fatal(err)
	}
	d := b.PerSlice[0].(*dynamicDIP)
	for i := 0; i < 50_000; i++ {
		set := i % geo().SetsPerSlice
		a := repl.Access{Type: mem.Load, Block: uint64(i)}
		d.OnAccess(set, a, i%3 == 0)
		if i%3 != 0 {
			v := d.Victim(set, a)
			if v < 0 || v >= geo().Ways {
				t.Fatalf("victim %d", v)
			}
			d.OnFill(set, v, a)
		} else {
			d.OnHit(set, i%geo().Ways, a)
		}
	}
}
