package memo

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
)

func TestDoCachesSuccess(t *testing.T) {
	c := New[int](8)
	calls := 0
	fn := func() (int, error) { calls++; return 42, nil }
	for i := 0; i < 3; i++ {
		v, err := c.Do("k", fn)
		if err != nil || v != 42 {
			t.Fatalf("Do = %v, %v", v, err)
		}
	}
	if calls != 1 {
		t.Fatalf("fn ran %d times, want 1", calls)
	}
	if c.Len() != 1 {
		t.Fatalf("Len = %d, want 1", c.Len())
	}
}

func TestSingleflightConcurrent(t *testing.T) {
	c := New[int](8)
	var calls atomic.Int32
	gate := make(chan struct{})
	const workers = 16
	var wg sync.WaitGroup
	results := make([]int, workers)
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			v, err := c.Do("shared", func() (int, error) {
				calls.Add(1)
				<-gate // hold the computation open so everyone piles up
				return 7, nil
			})
			if err != nil {
				t.Errorf("worker %d: %v", i, err)
			}
			results[i] = v
		}(i)
	}
	close(gate)
	wg.Wait()
	if n := calls.Load(); n != 1 {
		t.Fatalf("computation ran %d times, want 1", n)
	}
	for i, v := range results {
		if v != 7 {
			t.Fatalf("worker %d got %d", i, v)
		}
	}
}

func TestUnrelatedKeysDoNotSerialize(t *testing.T) {
	// A slow computation on key A must not block key B: B's Do completes
	// while A is still in flight.
	c := New[string](8)
	aStarted := make(chan struct{})
	aRelease := make(chan struct{})
	done := make(chan struct{})
	go func() {
		c.Do("a", func() (string, error) {
			close(aStarted)
			<-aRelease
			return "a", nil
		})
		close(done)
	}()
	<-aStarted
	if v, err := c.Do("b", func() (string, error) { return "b", nil }); err != nil || v != "b" {
		t.Fatalf("Do(b) = %v, %v while a in flight", v, err)
	}
	close(aRelease)
	<-done
}

func TestErrorsNotCached(t *testing.T) {
	c := New[int](8)
	calls := 0
	boom := errors.New("boom")
	fn := func() (int, error) {
		calls++
		if calls == 1 {
			return 0, boom
		}
		return 5, nil
	}
	if _, err := c.Do("k", fn); !errors.Is(err, boom) {
		t.Fatalf("first Do err = %v", err)
	}
	if c.Len() != 0 {
		t.Fatalf("error retained: Len = %d", c.Len())
	}
	v, err := c.Do("k", fn)
	if err != nil || v != 5 {
		t.Fatalf("retry Do = %v, %v", v, err)
	}
	if calls != 2 {
		t.Fatalf("fn ran %d times, want 2", calls)
	}
}

func TestErrorSharedWithWaiters(t *testing.T) {
	c := New[int](8)
	gate := make(chan struct{})
	boom := errors.New("boom")
	var wg sync.WaitGroup
	errs := make([]error, 4)
	for i := range errs {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			_, errs[i] = c.Do("k", func() (int, error) {
				<-gate
				return 0, boom
			})
		}(i)
	}
	close(gate)
	wg.Wait()
	for i, err := range errs {
		if !errors.Is(err, boom) {
			t.Fatalf("waiter %d err = %v", i, err)
		}
	}
}

func TestLRUEviction(t *testing.T) {
	c := New[int](2)
	mk := func(i int) func() (int, error) { return func() (int, error) { return i, nil } }
	c.Do("a", mk(1))
	c.Do("b", mk(2))
	c.Do("a", mk(99)) // refresh a's recency; must not recompute
	c.Do("c", mk(3))  // evicts b, the least recently used
	if c.Len() != 2 {
		t.Fatalf("Len = %d, want 2", c.Len())
	}
	if _, ok := c.Get("b"); ok {
		t.Fatal("b survived eviction")
	}
	if v, ok := c.Get("a"); !ok || v != 1 {
		t.Fatalf("a = %v, %v; want cached 1", v, ok)
	}
	if v, ok := c.Get("c"); !ok || v != 3 {
		t.Fatalf("c = %v, %v", v, ok)
	}
}

func TestCapBoundsGrowth(t *testing.T) {
	c := New[int](16)
	for i := 0; i < 1000; i++ {
		i := i
		c.Do(fmt.Sprintf("k%d", i), func() (int, error) { return i, nil })
	}
	if c.Len() != 16 {
		t.Fatalf("Len = %d, want cap 16", c.Len())
	}
}

func TestUnboundedWhenCapZero(t *testing.T) {
	c := New[int](0)
	for i := 0; i < 100; i++ {
		i := i
		c.Do(fmt.Sprintf("k%d", i), func() (int, error) { return i, nil })
	}
	if c.Len() != 100 {
		t.Fatalf("Len = %d, want 100", c.Len())
	}
}

func TestReset(t *testing.T) {
	c := New[int](8)
	c.Do("k", func() (int, error) { return 1, nil })
	c.Reset()
	if c.Len() != 0 {
		t.Fatalf("Len after Reset = %d", c.Len())
	}
	calls := 0
	v, err := c.Do("k", func() (int, error) { calls++; return 2, nil })
	if err != nil || v != 2 || calls != 1 {
		t.Fatalf("post-Reset Do = %v, %v (calls %d)", v, err, calls)
	}
}

func TestResetDuringFlight(t *testing.T) {
	// Reset while a computation is in flight: the in-flight caller still
	// gets its value, but the result is not retained.
	c := New[int](8)
	started := make(chan struct{})
	release := make(chan struct{})
	done := make(chan error, 1)
	go func() {
		v, err := c.Do("k", func() (int, error) {
			close(started)
			<-release
			return 9, nil
		})
		if v != 9 {
			err = errors.Join(err, fmt.Errorf("in-flight caller got %d", v))
		}
		done <- err
	}()
	<-started
	c.Reset()
	close(release)
	if err := <-done; err != nil {
		t.Fatal(err)
	}
	if c.Len() != 0 {
		t.Fatalf("orphaned result retained: Len = %d", c.Len())
	}
}
