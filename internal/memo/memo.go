// Package memo provides a bounded, concurrency-safe memoization cache
// with singleflight semantics: concurrent callers asking for the same
// key block on a single execution of the compute function instead of
// duplicating it, while callers with different keys proceed
// independently (no lock is held around the computation itself).
// Successful results are retained up to a capacity and evicted
// least-recently-used; errors are delivered to every waiter but never
// cached, so the next request for the key retries.
//
// The experiment harness uses it to share simulation results across
// figures: dozens of workers can race for the same (config, mix) run and
// exactly one simulation executes.
package memo

import (
	"container/list"
	"sync"
)

type entry[V any] struct {
	key  string
	val  V
	err  error
	done chan struct{} // closed once val/err are set
	elem *list.Element // recency position; nil while in flight
}

// Cache memoizes the results of Do by string key. The zero value is not
// usable; construct with New.
type Cache[V any] struct {
	mu      sync.Mutex
	cap     int // max completed entries retained; <= 0 means unbounded
	entries map[string]*entry[V]
	recency *list.List // completed entries, most recent at the front
}

// New returns a cache retaining up to capacity completed results
// (capacity <= 0 means unbounded). In-flight computations do not count
// against the capacity.
func New[V any](capacity int) *Cache[V] {
	return &Cache[V]{
		cap:     capacity,
		entries: make(map[string]*entry[V]),
		recency: list.New(),
	}
}

// Do returns the cached value for key, or runs fn to compute it. If
// another goroutine is already computing key, Do blocks until that
// computation finishes and shares its outcome. fn runs in the calling
// goroutine with no cache lock held, so unrelated keys never serialize
// on each other.
func (c *Cache[V]) Do(key string, fn func() (V, error)) (V, error) {
	c.mu.Lock()
	if e, ok := c.entries[key]; ok {
		if e.elem != nil { // completed
			c.recency.MoveToFront(e.elem)
			c.mu.Unlock()
			return e.val, e.err
		}
		c.mu.Unlock() // in flight: wait for the owner
		<-e.done
		return e.val, e.err
	}
	e := &entry[V]{key: key, done: make(chan struct{})}
	c.entries[key] = e
	c.mu.Unlock()

	e.val, e.err = fn()
	close(e.done)

	c.mu.Lock()
	if c.entries[key] == e { // still current (not displaced by Reset)
		if e.err != nil {
			delete(c.entries, key)
		} else {
			e.elem = c.recency.PushFront(e)
			for c.cap > 0 && c.recency.Len() > c.cap {
				old := c.recency.Remove(c.recency.Back()).(*entry[V])
				delete(c.entries, old.key)
			}
		}
	}
	c.mu.Unlock()
	return e.val, e.err
}

// Get returns the completed value for key, if present.
func (c *Cache[V]) Get(key string) (V, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if e, ok := c.entries[key]; ok && e.elem != nil {
		c.recency.MoveToFront(e.elem)
		return e.val, true
	}
	var zero V
	return zero, false
}

// Len returns the number of completed entries currently retained.
func (c *Cache[V]) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.recency.Len()
}

// Cap returns the retention capacity (<= 0 means unbounded).
func (c *Cache[V]) Cap() int { return c.cap }

// Reset drops every completed entry and detaches in-flight ones:
// computations already running finish and deliver to their waiters, but
// their results are not retained.
func (c *Cache[V]) Reset() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.entries = make(map[string]*entry[V])
	c.recency.Init()
}
