// Package mem defines the memory-system vocabulary shared by every layer of
// the simulator: access types, byte/block address helpers, and the request
// record that flows down the cache hierarchy.
package mem

import "fmt"

// BlockShift is log2 of the cache line size (64 bytes).
const BlockShift = 6

// BlockSize is the cache line size in bytes.
const BlockSize = 1 << BlockShift

// AccessType classifies a memory request as seen by a cache level.
type AccessType uint8

const (
	// Load is a demand read.
	Load AccessType = iota
	// RFO is a demand write (read-for-ownership).
	RFO
	// Prefetch is a hardware-prefetch fill request. Prefetches carry the
	// PC of the demand load that trained the prefetcher, plus a prefetch
	// bit so reuse predictors can keep separate state (Section 3.3).
	Prefetch
	// Writeback is a dirty eviction from an upper level.
	Writeback
)

// String implements fmt.Stringer.
func (t AccessType) String() string {
	switch t {
	case Load:
		return "load"
	case RFO:
		return "rfo"
	case Prefetch:
		return "prefetch"
	case Writeback:
		return "writeback"
	default:
		return fmt.Sprintf("AccessType(%d)", uint8(t))
	}
}

// IsDemand reports whether the access is a demand load or store.
func (t AccessType) IsDemand() bool { return t == Load || t == RFO }

// Block converts a byte address to a block (line) address.
func Block(addr uint64) uint64 { return addr >> BlockShift }

// BlockBase converts a byte address to the first byte of its line.
func BlockBase(addr uint64) uint64 { return addr &^ uint64(BlockSize-1) }

// Request is a memory request as it travels down the hierarchy.
type Request struct {
	PC    uint64     // program counter of the triggering instruction
	Addr  uint64     // byte address
	Core  int        // originating core
	Type  AccessType // access class
	Cycle uint64     // core cycle at issue (for DRAM scheduling)
}

// Block returns the request's block address.
func (r Request) Block() uint64 { return Block(r.Addr) }

// FoldXor computes an n-bit XOR fold of v, used for slice hashing and
// predictor indexing. It mixes all address bits so that strided and
// sequential streams spread uniformly (after Kayaalp et al. [33] and
// Maurice et al. [41] style complex addressing).
func FoldXor(v uint64, bits uint) uint64 {
	if bits == 0 || bits >= 64 {
		return v
	}
	mask := (uint64(1) << bits) - 1
	var out uint64
	for v != 0 {
		out ^= v & mask
		v >>= bits
	}
	return out
}
