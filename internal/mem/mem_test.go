package mem

import (
	"testing"
	"testing/quick"
)

func TestBlockHelpers(t *testing.T) {
	if Block(0) != 0 || Block(63) != 0 || Block(64) != 1 {
		t.Fatal("Block boundaries wrong")
	}
	if BlockBase(127) != 64 {
		t.Fatalf("BlockBase(127) = %d", BlockBase(127))
	}
	if BlockSize != 64 || BlockShift != 6 {
		t.Fatal("line size constants changed")
	}
}

func TestAccessTypeStrings(t *testing.T) {
	cases := map[AccessType]string{
		Load: "load", RFO: "rfo", Prefetch: "prefetch", Writeback: "writeback",
	}
	for typ, want := range cases {
		if typ.String() != want {
			t.Fatalf("%v.String() = %q", uint8(typ), typ.String())
		}
	}
	if AccessType(99).String() == "" {
		t.Fatal("unknown type should still render")
	}
}

func TestIsDemand(t *testing.T) {
	if !Load.IsDemand() || !RFO.IsDemand() {
		t.Fatal("demand types misclassified")
	}
	if Prefetch.IsDemand() || Writeback.IsDemand() {
		t.Fatal("non-demand types misclassified")
	}
}

func TestRequestBlock(t *testing.T) {
	r := Request{Addr: 0x12345}
	if r.Block() != 0x12345>>6 {
		t.Fatal("Request.Block mismatch")
	}
}

func TestFoldXorProperties(t *testing.T) {
	// Output always fits in the requested bit width.
	check := func(v uint64, bits8 uint8) bool {
		bits := uint(bits8%20) + 1
		return FoldXor(v, bits) < 1<<bits
	}
	if err := quick.Check(check, nil); err != nil {
		t.Fatal(err)
	}
}

func TestFoldXorMixesHighBits(t *testing.T) {
	// Values differing only in high bits must (usually) fold differently.
	diff := 0
	for i := uint64(0); i < 1000; i++ {
		a := FoldXor(i<<40, 10)
		b := FoldXor((i+1)<<40, 10)
		if a != b {
			diff++
		}
	}
	if diff < 900 {
		t.Fatalf("high bits poorly mixed: only %d/1000 differ", diff)
	}
}

func TestFoldXorEdge(t *testing.T) {
	if FoldXor(12345, 0) != 12345 {
		t.Fatal("bits=0 should be identity")
	}
	if FoldXor(12345, 64) != 12345 {
		t.Fatal("bits=64 should be identity")
	}
}
