// Package trace defines the instruction-trace abstraction consumed by the
// simulator, together with an in-memory implementation and a compact binary
// on-disk format.
//
// A trace is a stream of memory instructions. Each record carries the number
// of non-memory instructions that retire before it (Gap), so a record stream
// of length M represents M + sum(Gap) instructions — the same information a
// ChampSim trace provides, at a fraction of the size.
package trace

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
)

// Rec is one memory instruction plus its preceding non-memory instructions.
type Rec struct {
	PC    uint64 // program counter of the memory instruction
	Addr  uint64 // effective byte address
	Write bool   // true for stores (RFOs)
	Gap   uint32 // non-memory instructions retired immediately before this one
}

// Instructions returns the number of instructions this record represents.
func (r Rec) Instructions() uint64 { return uint64(r.Gap) + 1 }

// Reader produces a (possibly infinite) stream of records.
type Reader interface {
	// Next returns the next record. ok is false when the stream is
	// exhausted; finite readers stay exhausted until Reset.
	Next() (rec Rec, ok bool)
	// Reset rewinds the stream to its beginning.
	Reset()
}

// SliceReader adapts a []Rec into a Reader.
type SliceReader struct {
	recs []Rec
	pos  int
}

// NewSliceReader returns a Reader over recs. The slice is not copied.
func NewSliceReader(recs []Rec) *SliceReader { return &SliceReader{recs: recs} }

// Next implements Reader.
func (s *SliceReader) Next() (Rec, bool) {
	if s.pos >= len(s.recs) {
		return Rec{}, false
	}
	r := s.recs[s.pos]
	s.pos++
	return r, true
}

// Reset implements Reader.
func (s *SliceReader) Reset() { s.pos = 0 }

// Fork returns an independent reader continuing from the current position.
// The record slice is shared (it is read-only); only the cursor is copied.
func (s *SliceReader) Fork() *SliceReader {
	c := *s
	return &c
}

// Len returns the number of records.
func (s *SliceReader) Len() int { return len(s.recs) }

// Collect drains up to n records from r into a slice. n <= 0 collects until
// the reader is exhausted (do not use with infinite readers).
func Collect(r Reader, n int) []Rec {
	var out []Rec
	for n <= 0 || len(out) < n {
		rec, ok := r.Next()
		if !ok {
			break
		}
		out = append(out, rec)
	}
	return out
}

// LoopReader repeats an underlying finite reader forever.
type LoopReader struct {
	inner Reader
}

// NewLoopReader wraps inner; when inner is exhausted it is Reset and
// reading continues. inner must produce at least one record.
func NewLoopReader(inner Reader) *LoopReader { return &LoopReader{inner: inner} }

// Next implements Reader.
func (l *LoopReader) Next() (Rec, bool) {
	rec, ok := l.inner.Next()
	if ok {
		return rec, true
	}
	l.inner.Reset()
	rec, ok = l.inner.Next()
	if !ok {
		return Rec{}, false
	}
	return rec, true
}

// Reset implements Reader.
func (l *LoopReader) Reset() { l.inner.Reset() }

// --- binary format -------------------------------------------------------

// magic identifies the drishti trace format, version 1.
var magic = [8]byte{'D', 'R', 'T', 'R', 'A', 'C', 'E', 1}

// Write serializes recs to w using delta + varint coding: PCs and addresses
// are usually near their predecessors, so the stream compresses well.
func Write(w io.Writer, recs []Rec) error {
	bw := bufio.NewWriter(w)
	if _, err := bw.Write(magic[:]); err != nil {
		return err
	}
	var buf [binary.MaxVarintLen64]byte
	putU := func(v uint64) error {
		n := binary.PutUvarint(buf[:], v)
		_, err := bw.Write(buf[:n])
		return err
	}
	if err := putU(uint64(len(recs))); err != nil {
		return err
	}
	var prevPC, prevAddr uint64
	for _, r := range recs {
		if err := putU(zigzag(int64(r.PC - prevPC))); err != nil {
			return err
		}
		if err := putU(zigzag(int64(r.Addr - prevAddr))); err != nil {
			return err
		}
		flags := uint64(r.Gap) << 1
		if r.Write {
			flags |= 1
		}
		if err := putU(flags); err != nil {
			return err
		}
		prevPC, prevAddr = r.PC, r.Addr
	}
	return bw.Flush()
}

// Read deserializes a trace written by Write.
func Read(r io.Reader) ([]Rec, error) {
	br := bufio.NewReader(r)
	var got [8]byte
	if _, err := io.ReadFull(br, got[:]); err != nil {
		return nil, fmt.Errorf("trace: reading magic: %w", err)
	}
	if got != magic {
		return nil, errors.New("trace: bad magic (not a drishti trace)")
	}
	n, err := binary.ReadUvarint(br)
	if err != nil {
		return nil, fmt.Errorf("trace: reading count: %w", err)
	}
	const maxRecs = 1 << 30
	if n > maxRecs {
		return nil, fmt.Errorf("trace: implausible record count %d", n)
	}
	recs := make([]Rec, 0, n)
	var prevPC, prevAddr uint64
	for i := uint64(0); i < n; i++ {
		dpc, err := binary.ReadUvarint(br)
		if err != nil {
			return nil, fmt.Errorf("trace: record %d pc: %w", i, err)
		}
		daddr, err := binary.ReadUvarint(br)
		if err != nil {
			return nil, fmt.Errorf("trace: record %d addr: %w", i, err)
		}
		flags, err := binary.ReadUvarint(br)
		if err != nil {
			return nil, fmt.Errorf("trace: record %d flags: %w", i, err)
		}
		prevPC += uint64(unzigzag(dpc))
		prevAddr += uint64(unzigzag(daddr))
		recs = append(recs, Rec{
			PC:    prevPC,
			Addr:  prevAddr,
			Write: flags&1 != 0,
			Gap:   uint32(flags >> 1),
		})
	}
	return recs, nil
}

func zigzag(v int64) uint64   { return uint64((v << 1) ^ (v >> 63)) }
func unzigzag(v uint64) int64 { return int64(v>>1) ^ -int64(v&1) }
