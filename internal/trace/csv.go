package trace

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// WriteCSV serializes recs as human-readable CSV with a header row:
// pc,addr,write,gap (pc and addr in hex). The binary format (Write/Read)
// is the interchange format; CSV exists for inspection and for feeding
// external tools.
func WriteCSV(w io.Writer, recs []Rec) error {
	bw := bufio.NewWriter(w)
	if _, err := fmt.Fprintln(bw, "pc,addr,write,gap"); err != nil {
		return err
	}
	for _, r := range recs {
		wr := 0
		if r.Write {
			wr = 1
		}
		if _, err := fmt.Fprintf(bw, "%#x,%#x,%d,%d\n", r.PC, r.Addr, wr, r.Gap); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadCSV parses the CSV form produced by WriteCSV. Blank lines are
// skipped; the header row is required.
func ReadCSV(r io.Reader) ([]Rec, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<16), 1<<20)
	if !sc.Scan() {
		if err := sc.Err(); err != nil {
			return nil, fmt.Errorf("trace: line 1: %w", err)
		}
		return nil, fmt.Errorf("trace: empty CSV")
	}
	if got := strings.TrimSpace(sc.Text()); got != "pc,addr,write,gap" {
		return nil, fmt.Errorf("trace: unexpected CSV header %q", got)
	}
	var recs []Rec
	line := 1
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" {
			continue
		}
		fields := strings.Split(text, ",")
		if len(fields) != 4 {
			return nil, fmt.Errorf("trace: line %d: %d fields, want 4", line, len(fields))
		}
		pc, err := strconv.ParseUint(strings.TrimSpace(fields[0]), 0, 64)
		if err != nil {
			return nil, fmt.Errorf("trace: line %d pc: %w", line, err)
		}
		addr, err := strconv.ParseUint(strings.TrimSpace(fields[1]), 0, 64)
		if err != nil {
			return nil, fmt.Errorf("trace: line %d addr: %w", line, err)
		}
		wr, err := strconv.ParseUint(strings.TrimSpace(fields[2]), 0, 8)
		if err != nil || wr > 1 {
			return nil, fmt.Errorf("trace: line %d write flag %q", line, fields[2])
		}
		gap, err := strconv.ParseUint(strings.TrimSpace(fields[3]), 0, 32)
		if err != nil {
			return nil, fmt.Errorf("trace: line %d gap: %w", line, err)
		}
		recs = append(recs, Rec{PC: pc, Addr: addr, Write: wr == 1, Gap: uint32(gap)})
	}
	// A scanner error (typically bufio.ErrTooLong when a line overflows the
	// 1 MiB buffer) ends the Scan loop exactly like EOF does; returning the
	// records parsed so far would silently truncate the stream. Fail with
	// the line the scanner stopped on instead.
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("trace: line %d: %w", line+1, err)
	}
	return recs, nil
}
