package trace

import (
	"bytes"
	"reflect"
	"testing"
	"testing/quick"
)

func TestSliceReader(t *testing.T) {
	recs := []Rec{{PC: 1, Addr: 64}, {PC: 2, Addr: 128, Write: true, Gap: 3}}
	r := NewSliceReader(recs)
	got := Collect(r, 0)
	if !reflect.DeepEqual(got, recs) {
		t.Fatalf("collected %+v", got)
	}
	if _, ok := r.Next(); ok {
		t.Fatal("exhausted reader returned a record")
	}
	r.Reset()
	if rec, ok := r.Next(); !ok || rec.PC != 1 {
		t.Fatal("Reset did not rewind")
	}
}

func TestCollectLimit(t *testing.T) {
	recs := make([]Rec, 10)
	got := Collect(NewSliceReader(recs), 4)
	if len(got) != 4 {
		t.Fatalf("Collect(4) returned %d", len(got))
	}
}

func TestLoopReader(t *testing.T) {
	recs := []Rec{{PC: 1}, {PC: 2}}
	l := NewLoopReader(NewSliceReader(recs))
	var pcs []uint64
	for i := 0; i < 5; i++ {
		rec, ok := l.Next()
		if !ok {
			t.Fatal("loop reader exhausted")
		}
		pcs = append(pcs, rec.PC)
	}
	want := []uint64{1, 2, 1, 2, 1}
	if !reflect.DeepEqual(pcs, want) {
		t.Fatalf("loop sequence %v", pcs)
	}
}

func TestLoopReaderEmptyInner(t *testing.T) {
	l := NewLoopReader(NewSliceReader(nil))
	if _, ok := l.Next(); ok {
		t.Fatal("empty inner should not produce records")
	}
}

func TestRecInstructions(t *testing.T) {
	if (Rec{Gap: 4}).Instructions() != 5 {
		t.Fatal("Instructions must count the memory op plus its gap")
	}
}

func TestWriteReadRoundTrip(t *testing.T) {
	recs := []Rec{
		{PC: 0x400000, Addr: 0x10000000, Gap: 3},
		{PC: 0x400004, Addr: 0x10000040, Write: true},
		{PC: 0x400000, Addr: 0x0fff0000, Gap: 1000000},
		{PC: 0xffffffffffff, Addr: 1},
	}
	var buf bytes.Buffer
	if err := Write(&buf, recs); err != nil {
		t.Fatal(err)
	}
	got, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, recs) {
		t.Fatalf("round trip mismatch:\n got %+v\nwant %+v", got, recs)
	}
}

func TestRoundTripProperty(t *testing.T) {
	check := func(pcs []uint64, addrs []uint64, gaps []uint32) bool {
		n := len(pcs)
		if len(addrs) < n {
			n = len(addrs)
		}
		if len(gaps) < n {
			n = len(gaps)
		}
		recs := make([]Rec, n)
		for i := 0; i < n; i++ {
			recs[i] = Rec{PC: pcs[i], Addr: addrs[i], Gap: gaps[i] & 0x7fffffff, Write: gaps[i]%3 == 0}
		}
		var buf bytes.Buffer
		if err := Write(&buf, recs); err != nil {
			return false
		}
		got, err := Read(&buf)
		if err != nil {
			return false
		}
		if len(got) != len(recs) {
			return false
		}
		for i := range recs {
			if got[i] != recs[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestReadRejectsGarbage(t *testing.T) {
	if _, err := Read(bytes.NewReader([]byte("not a trace file"))); err == nil {
		t.Fatal("expected magic error")
	}
	if _, err := Read(bytes.NewReader(nil)); err == nil {
		t.Fatal("expected EOF error")
	}
}

func TestReadRejectsTruncated(t *testing.T) {
	recs := []Rec{{PC: 1, Addr: 64}, {PC: 2, Addr: 128}}
	var buf bytes.Buffer
	if err := Write(&buf, recs); err != nil {
		t.Fatal(err)
	}
	cut := buf.Bytes()[:buf.Len()-1]
	if _, err := Read(bytes.NewReader(cut)); err == nil {
		t.Fatal("expected truncation error")
	}
}

func TestEmptyTrace(t *testing.T) {
	var buf bytes.Buffer
	if err := Write(&buf, nil); err != nil {
		t.Fatal(err)
	}
	got, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 0 {
		t.Fatalf("empty trace read %d records", len(got))
	}
}

func TestZigzag(t *testing.T) {
	for _, v := range []int64{0, 1, -1, 1 << 40, -(1 << 40), -9e18} {
		if unzigzag(zigzag(v)) != v {
			t.Fatalf("zigzag round trip failed for %d", v)
		}
	}
}

func TestCompression(t *testing.T) {
	// Sequential records should delta-encode very compactly.
	recs := make([]Rec, 10000)
	for i := range recs {
		recs[i] = Rec{PC: 0x400000, Addr: uint64(0x10000000 + i*64), Gap: 3}
	}
	var buf bytes.Buffer
	if err := Write(&buf, recs); err != nil {
		t.Fatal(err)
	}
	if perRec := buf.Len() / len(recs); perRec > 6 {
		t.Fatalf("sequential trace uses %d bytes/record; expected tight delta coding", perRec)
	}
}
