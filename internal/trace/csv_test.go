package trace

import (
	"bufio"
	"bytes"
	"errors"
	"reflect"
	"strings"
	"testing"
)

func TestCSVRoundTrip(t *testing.T) {
	recs := []Rec{
		{PC: 0x400000, Addr: 0x10000000, Gap: 3},
		{PC: 0x400004, Addr: 0x10000040, Write: true},
		{PC: 1, Addr: 2, Gap: 4_000_000_000},
	}
	var buf bytes.Buffer
	if err := WriteCSV(&buf, recs); err != nil {
		t.Fatal(err)
	}
	got, err := ReadCSV(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, recs) {
		t.Fatalf("round trip:\n got %+v\nwant %+v", got, recs)
	}
}

func TestCSVHeaderRequired(t *testing.T) {
	if _, err := ReadCSV(strings.NewReader("0x1,0x2,0,0\n")); err == nil {
		t.Fatal("missing header accepted")
	}
	if _, err := ReadCSV(strings.NewReader("")); err == nil {
		t.Fatal("empty input accepted")
	}
}

func TestCSVRejectsMalformed(t *testing.T) {
	cases := []string{
		"pc,addr,write,gap\nnothex,0x2,0,0\n",
		"pc,addr,write,gap\n0x1,0x2,7,0\n",
		"pc,addr,write,gap\n0x1,0x2,0\n",
		"pc,addr,write,gap\n0x1,0x2,0,notanum\n",
	}
	for i, c := range cases {
		if _, err := ReadCSV(strings.NewReader(c)); err == nil {
			t.Fatalf("case %d accepted", i)
		}
	}
}

func TestCSVSkipsBlankLines(t *testing.T) {
	in := "pc,addr,write,gap\n\n0x1,0x40,1,2\n\n"
	got, err := ReadCSV(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || !got[0].Write || got[0].Gap != 2 {
		t.Fatalf("parsed %+v", got)
	}
}

// A line longer than the scanner's 1 MiB buffer must fail with a
// line-numbered bufio.ErrTooLong, not silently truncate the record stream.
func TestCSVOverlongLine(t *testing.T) {
	var b strings.Builder
	b.WriteString("pc,addr,write,gap\n")
	b.WriteString("0x1,0x40,1,2\n")
	b.WriteString("0x2,")
	for b.Len() < 1<<20+64 {
		b.WriteString("ffffffffffffffff")
	}
	b.WriteString(",0,1\n")
	recs, err := ReadCSV(strings.NewReader(b.String()))
	if err == nil {
		t.Fatalf("overlong line accepted, parsed %d records", len(recs))
	}
	if !errors.Is(err, bufio.ErrTooLong) {
		t.Fatalf("got %v, want bufio.ErrTooLong", err)
	}
	if !strings.Contains(err.Error(), "line 3") {
		t.Errorf("error %q does not name the failing line", err)
	}
	if recs != nil {
		t.Errorf("partial records returned alongside the error")
	}
}
