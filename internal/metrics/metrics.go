// Package metrics computes the multi-core performance and fairness metrics
// of Section 5.2: weighted speedup (WS), harmonic mean of speedups (HS),
// maximum individual slowdown (MIS), and unfairness, plus the cache-quality
// rates (MPKI, WPKI, APKI).
package metrics

import "fmt"

// Multi summarizes a multi-programmed run against per-core alone IPCs.
type Multi struct {
	IS         []float64 // individual speedups IPC_together / IPC_alone
	WS         float64   // Σ IS_i
	HS         float64   // N / Σ (1/IS_i)
	MIS        float64   // max IS_i (reported as max slowdown in the paper)
	Unfairness float64   // max IS / min IS
}

// Compute derives the metrics. together and alone must be the same length
// and alone entries must be positive.
func Compute(together, alone []float64) (Multi, error) {
	if len(together) != len(alone) || len(together) == 0 {
		return Multi{}, fmt.Errorf("metrics: mismatched IPC vectors (%d vs %d)", len(together), len(alone))
	}
	m := Multi{IS: make([]float64, len(together))}
	var invSum float64
	minIS, maxIS := 0.0, 0.0
	for i := range together {
		if alone[i] <= 0 {
			return Multi{}, fmt.Errorf("metrics: non-positive alone IPC for core %d", i)
		}
		is := together[i] / alone[i]
		m.IS[i] = is
		m.WS += is
		if is > 0 {
			invSum += 1 / is
		}
		if i == 0 || is < minIS {
			minIS = is
		}
		if i == 0 || is > maxIS {
			maxIS = is
		}
	}
	if invSum > 0 {
		m.HS = float64(len(together)) / invSum
	}
	m.MIS = maxIS
	if minIS > 0 {
		m.Unfairness = maxIS / minIS
	}
	return m, nil
}

// MaxSlowdown returns the maximum individual slowdown 1 - min(IS), expressed
// as a fraction (the paper's MIS metric reports how much the most-hurt core
// loses).
func (m Multi) MaxSlowdown() float64 {
	if len(m.IS) == 0 {
		return 0
	}
	minIS := m.IS[0]
	for _, is := range m.IS[1:] {
		if is < minIS {
			minIS = is
		}
	}
	return 1 - minIS
}

// PerKiloInstr normalizes an event count to per-kilo-instruction.
func PerKiloInstr(events, instructions uint64) float64 {
	if instructions == 0 {
		return 0
	}
	return float64(events) * 1000 / float64(instructions)
}

// SpeedupPct converts a ratio to the paper's "% improvement" convention.
func SpeedupPct(policy, baseline float64) float64 {
	if baseline == 0 {
		return 0
	}
	return (policy/baseline - 1) * 100
}
