package metrics

import (
	"math"
	"testing"
	"testing/quick"
)

func TestComputeBasics(t *testing.T) {
	m, err := Compute([]float64{1, 2}, []float64{2, 2})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(m.WS-1.5) > 1e-9 {
		t.Fatalf("WS %v", m.WS)
	}
	// HS = 2 / (1/0.5 + 1/1) = 2/3.
	if math.Abs(m.HS-2.0/3.0) > 1e-9 {
		t.Fatalf("HS %v", m.HS)
	}
	if math.Abs(m.Unfairness-2) > 1e-9 {
		t.Fatalf("unfairness %v", m.Unfairness)
	}
	if math.Abs(m.MIS-1.0) > 1e-9 {
		t.Fatalf("MIS %v", m.MIS)
	}
	if math.Abs(m.MaxSlowdown()-0.5) > 1e-9 {
		t.Fatalf("max slowdown %v", m.MaxSlowdown())
	}
}

func TestComputeIdenticalRuns(t *testing.T) {
	m, err := Compute([]float64{1, 1, 1}, []float64{1, 1, 1})
	if err != nil {
		t.Fatal(err)
	}
	if m.WS != 3 || m.HS != 1 || m.Unfairness != 1 {
		t.Fatalf("%+v", m)
	}
}

func TestComputeErrors(t *testing.T) {
	if _, err := Compute([]float64{1}, []float64{1, 2}); err == nil {
		t.Fatal("length mismatch accepted")
	}
	if _, err := Compute(nil, nil); err == nil {
		t.Fatal("empty vectors accepted")
	}
	if _, err := Compute([]float64{1}, []float64{0}); err == nil {
		t.Fatal("zero alone IPC accepted")
	}
}

func TestHSAtMostWSOverN(t *testing.T) {
	// Harmonic mean ≤ arithmetic mean, always.
	check := func(raw []uint16) bool {
		if len(raw) < 2 {
			return true
		}
		together := make([]float64, len(raw))
		alone := make([]float64, len(raw))
		for i, r := range raw {
			together[i] = float64(r%100) + 1
			alone[i] = float64(r%37) + 1
		}
		m, err := Compute(together, alone)
		if err != nil {
			return false
		}
		return m.HS <= m.WS/float64(len(raw))+1e-9
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestPerKiloInstr(t *testing.T) {
	if PerKiloInstr(5, 1000) != 5 {
		t.Fatal("PKI wrong")
	}
	if PerKiloInstr(5, 0) != 0 {
		t.Fatal("zero instructions should not divide")
	}
}

func TestSpeedupPct(t *testing.T) {
	if SpeedupPct(1.1, 1.0) < 9.99 || SpeedupPct(1.1, 1.0) > 10.01 {
		t.Fatal("speedup percent wrong")
	}
	if SpeedupPct(1, 0) != 0 {
		t.Fatal("zero baseline should not divide")
	}
}
