package cache

import (
	"testing"
	"testing/quick"

	"drishti/internal/mem"
	"drishti/internal/repl"
)

func newLRUCache(t *testing.T, sets, ways int) *Cache {
	t.Helper()
	c, err := New(Config{Name: "t", Sets: sets, Ways: ways}, repl.NewLRU(sets, ways))
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func load(block uint64) repl.Access {
	return repl.Access{PC: 0x400000, Block: block, Type: mem.Load}
}

func TestConfigValidate(t *testing.T) {
	if err := (Config{Sets: 3, Ways: 4}).Validate(); err == nil {
		t.Fatal("non-power-of-two sets accepted")
	}
	if err := (Config{Sets: 0, Ways: 4}).Validate(); err == nil {
		t.Fatal("zero sets accepted")
	}
	if err := (Config{Sets: 8, Ways: 2}).Validate(); err != nil {
		t.Fatalf("valid config rejected: %v", err)
	}
	if _, err := New(Config{Sets: 8, Ways: 2}, nil); err == nil {
		t.Fatal("nil policy accepted")
	}
}

func TestMissThenFill(t *testing.T) {
	c := newLRUCache(t, 4, 2)
	hit, _ := c.Access(load(100))
	if hit {
		t.Fatal("empty cache hit")
	}
	c.Fill(load(100), false)
	hit, _ = c.Access(load(100))
	if !hit {
		t.Fatal("filled block missed")
	}
	if c.Stats.Hits != 1 || c.Stats.Misses != 1 || c.Stats.Fills != 1 {
		t.Fatalf("stats %+v", c.Stats)
	}
}

func TestLRUEvictionOrder(t *testing.T) {
	c := newLRUCache(t, 1, 2)
	c.Fill(load(1), false)
	c.Fill(load(2), false)
	c.Access(load(1)) // make 2 the LRU
	ev := c.Fill(load(3), false)
	if !ev.Valid || ev.Block != 2 {
		t.Fatalf("evicted %+v, want block 2", ev)
	}
	if _, ok := c.Probe(1); !ok {
		t.Fatal("block 1 should survive")
	}
}

func TestDirtyWritebackPath(t *testing.T) {
	c := newLRUCache(t, 1, 1)
	c.Fill(repl.Access{Block: 1, Type: mem.RFO}, true)
	ev := c.Fill(load(2), false)
	if !ev.Valid || !ev.Dirty || ev.Block != 1 {
		t.Fatalf("dirty eviction lost: %+v", ev)
	}
	if c.Stats.Writebacks != 1 {
		t.Fatalf("writeback not counted: %+v", c.Stats)
	}
}

func TestRFOHitSetsDirty(t *testing.T) {
	c := newLRUCache(t, 1, 1)
	c.Fill(load(1), false)
	c.Access(repl.Access{Block: 1, Type: mem.RFO})
	ev := c.Fill(load(2), false)
	if !ev.Dirty {
		t.Fatal("RFO hit must mark the line dirty")
	}
}

func TestMarkDirty(t *testing.T) {
	c := newLRUCache(t, 1, 1)
	c.Fill(load(1), false)
	c.MarkDirty(1)
	ev := c.Fill(load(2), false)
	if !ev.Dirty {
		t.Fatal("MarkDirty did not stick")
	}
	c.MarkDirty(42) // absent: must not panic
}

func TestPrefetchBits(t *testing.T) {
	c := newLRUCache(t, 1, 2)
	c.Fill(repl.Access{Block: 1, Type: mem.Prefetch}, false)
	hit, wasPref := c.Access(load(1))
	if !hit || !wasPref {
		t.Fatal("prefetched line should hit with prefetch bit set")
	}
	if c.Stats.PrefHits != 1 {
		t.Fatalf("prefetch hit not counted: %+v", c.Stats)
	}
	// Second demand access: bit consumed.
	_, wasPref = c.Access(load(1))
	if wasPref {
		t.Fatal("prefetch bit should clear after first demand hit")
	}
}

func TestRefillExistingLine(t *testing.T) {
	c := newLRUCache(t, 1, 2)
	c.Fill(load(1), false)
	ev := c.Fill(load(1), true) // refill, now dirty
	if ev.Valid {
		t.Fatal("refill must not evict")
	}
	ev = c.Fill(load(2), false)
	if ev.Valid {
		t.Fatal("way available; no eviction expected")
	}
	ev = c.Fill(load(3), false)
	if !ev.Valid || ev.Block != 1 || !ev.Dirty {
		t.Fatalf("expected dirty eviction of block 1, got %+v", ev)
	}
}

func TestInvalidate(t *testing.T) {
	c := newLRUCache(t, 2, 2)
	c.Fill(repl.Access{Block: 4, Type: mem.RFO}, true)
	dirty, present := c.Invalidate(4)
	if !present || !dirty {
		t.Fatalf("invalidate: dirty=%v present=%v", dirty, present)
	}
	if _, ok := c.Probe(4); ok {
		t.Fatal("block still present after invalidate")
	}
	if _, present := c.Invalidate(4); present {
		t.Fatal("double invalidate reported present")
	}
}

func TestOccupancy(t *testing.T) {
	c := newLRUCache(t, 1, 4)
	if c.Occupancy(0) != 0 {
		t.Fatal("empty set occupancy")
	}
	c.Fill(load(1), false)
	c.Fill(load(2), false)
	if c.Occupancy(0) != 2 {
		t.Fatalf("occupancy %d", c.Occupancy(0))
	}
}

func TestPerSetCountersDemandOnly(t *testing.T) {
	c := newLRUCache(t, 2, 1)
	c.Access(load(0))                                    // demand miss, set 0
	c.Access(repl.Access{Block: 2, Type: mem.Prefetch})  // prefetch miss, set 0
	c.Access(repl.Access{Block: 4, Type: mem.Writeback}) // writeback, set 0
	if c.SetAccesses[0] != 1 || c.SetMisses[0] != 1 {
		t.Fatalf("per-set counters must be demand-only: acc=%d miss=%d",
			c.SetAccesses[0], c.SetMisses[0])
	}
	if c.Stats.Accesses != 3 {
		t.Fatalf("aggregate accesses %d", c.Stats.Accesses)
	}
}

func TestMPKAPerSet(t *testing.T) {
	c := newLRUCache(t, 2, 1)
	for i := 0; i < 10; i++ {
		c.Access(load(uint64(i * 2))) // all set 0, all misses
		c.Fill(load(uint64(i*2)), false)
	}
	mpka := c.MPKAPerSet()
	if mpka[0] <= 0 || mpka[1] != 0 {
		t.Fatalf("MPKA %v", mpka)
	}
}

func TestResetStats(t *testing.T) {
	c := newLRUCache(t, 2, 1)
	c.Access(load(0))
	c.ResetStats()
	if c.Stats.Accesses != 0 || c.SetAccesses[0] != 0 {
		t.Fatal("stats survived reset")
	}
	// Contents must survive reset.
	c.Fill(load(0), false)
	c.ResetStats()
	if _, ok := c.Probe(0); !ok {
		t.Fatal("contents lost on stat reset")
	}
}

// bypassPolicy always bypasses.
type bypassPolicy struct{ repl.LRU }

func (b *bypassPolicy) Victim(int, repl.Access) int { return repl.Bypass }

func TestBypass(t *testing.T) {
	pol := &bypassPolicy{*repl.NewLRU(1, 1)}
	c, err := New(Config{Name: "b", Sets: 1, Ways: 1}, pol)
	if err != nil {
		t.Fatal(err)
	}
	c.Fill(load(1), false) // fills the empty way (no Victim call)
	ev := c.Fill(load(2), false)
	if ev.Valid {
		t.Fatal("bypass must not evict")
	}
	if c.Stats.Bypasses != 1 {
		t.Fatalf("bypass not counted: %+v", c.Stats)
	}
	if _, ok := c.Probe(2); ok {
		t.Fatal("bypassed block was cached")
	}
}

// TestInclusionInvariant checks the structural invariant: after any sequence
// of fills, each block appears at most once and only in its home set.
func TestInclusionInvariant(t *testing.T) {
	check := func(blocks []uint64) bool {
		c := newLRUCache(t, 4, 2)
		for _, b := range blocks {
			b %= 64
			if hit, _ := c.Access(load(b)); !hit {
				c.Fill(load(b), false)
			}
		}
		// Each resident block must probe back to exactly its own set.
		seen := map[uint64]bool{}
		for set := 0; set < 4; set++ {
			for w := 0; w < 2; w++ {
				// probe via public API: iterate candidate blocks
				_ = w
			}
		}
		for b := uint64(0); b < 64; b++ {
			if _, ok := c.Probe(b); ok {
				if seen[b] {
					return false
				}
				seen[b] = true
				if c.SetIndex(b) != int(b%4) {
					return false
				}
			}
		}
		return len(seen) <= 8
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
