// Package cache implements a generic set-associative cache with pluggable
// replacement, dirty-line tracking, and per-set statistics. It is used for
// L1D, L2, and each LLC slice.
//
// Storage is struct-of-arrays: one flat []uint64 of tags plus one packed
// flag byte per line. A 16-way probe therefore scans two cache lines of tag
// words instead of sixteen multi-word line structs, and the common hit is
// resolved in one comparison via a per-set MRU way hint. This layout is a
// pure optimization — every operation behaves exactly as the earlier
// array-of-structs implementation did.
package cache

import (
	"fmt"

	"drishti/internal/mem"
	"drishti/internal/repl"
)

// Packed per-line flag bits (the meta array).
const (
	metaValid    = 1 << 0
	metaDirty    = 1 << 1
	metaPrefetch = 1 << 2 // filled by a prefetch and not yet demanded
)

// invalidTag marks an empty way in the tag array. Tags are full block
// addresses (byte address >> mem.BlockShift), so ^uint64(0) can never be a
// real block and invalid ways can stay in the tag scan without a separate
// valid check.
const invalidTag = ^uint64(0)

// Stats aggregates cache-level counters.
type Stats struct {
	Accesses       uint64
	Hits           uint64
	Misses         uint64
	DemandAccesses uint64
	DemandMisses   uint64
	Fills          uint64
	Bypasses       uint64
	Evictions      uint64
	Writebacks     uint64 // dirty evictions handed to the next level
	PrefHits       uint64 // demand hits on prefetched lines
}

// Config sizes a cache.
type Config struct {
	Name string
	Sets int
	Ways int
}

// Validate reports configuration errors.
func (c Config) Validate() error {
	if c.Sets <= 0 || c.Ways <= 0 {
		return fmt.Errorf("cache %q: sets and ways must be positive (got %d×%d)", c.Name, c.Sets, c.Ways)
	}
	if c.Sets&(c.Sets-1) != 0 {
		return fmt.Errorf("cache %q: sets must be a power of two (got %d)", c.Name, c.Sets)
	}
	if c.Ways > 1<<16 {
		return fmt.Errorf("cache %q: at most %d ways supported (got %d)", c.Name, 1<<16, c.Ways)
	}
	return nil
}

// Cache is a single set-associative cache array.
type Cache struct {
	cfg     Config
	tags    []uint64 // sets×ways block addresses; invalidTag = empty way
	meta    []uint8  // sets×ways packed valid/dirty/prefetch bits
	mru     []uint16 // per-set most-recently-touched way, probed first
	valid   []uint16 // per-set valid-line count; ==ways ⇒ no invalid-way scan
	pol     repl.Policy
	obs     repl.Observer // optional view of pol
	lru     *repl.LRU     // set iff pol is exactly *repl.LRU (devirtualized)
	srrip   *repl.SRRIP   // set iff pol is exactly *repl.SRRIP
	setMask uint64
	ways    int

	// Per-set counters, used by Fig 5 (MPKA per set) and by the dynamic
	// sampled cache's saturating-counter monitor.
	SetAccesses []uint64
	SetMisses   []uint64

	Stats Stats
}

// New builds a cache with the given replacement policy.
func New(cfg Config, pol repl.Policy) (*Cache, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if pol == nil {
		return nil, fmt.Errorf("cache %q: nil policy", cfg.Name)
	}
	c := &Cache{
		cfg:         cfg,
		tags:        make([]uint64, cfg.Sets*cfg.Ways),
		meta:        make([]uint8, cfg.Sets*cfg.Ways),
		mru:         make([]uint16, cfg.Sets),
		valid:       make([]uint16, cfg.Sets),
		pol:         pol,
		setMask:     uint64(cfg.Sets - 1),
		ways:        cfg.Ways,
		SetAccesses: make([]uint64, cfg.Sets),
		SetMisses:   make([]uint64, cfg.Sets),
	}
	for i := range c.tags {
		c.tags[i] = invalidTag
	}
	if obs, ok := pol.(repl.Observer); ok {
		c.obs = obs
	}
	// The private caches always run the stock LRU/SRRIP policies, whose
	// callbacks are one or two stores. Calling them through concrete
	// pointers lets those callbacks inline into the access path; the
	// interface dispatch remains for every other policy. Note the asserted
	// types are exact: *BRRIP (which embeds SRRIP but overrides OnFill) and
	// *DIP do not match and keep the generic path.
	switch p := pol.(type) {
	case *repl.LRU:
		c.lru = p
	case *repl.SRRIP:
		c.srrip = p
	}
	return c, nil
}

// polOnHit dispatches Policy.OnHit, devirtualized for LRU/SRRIP.
func (c *Cache) polOnHit(set, way int, a repl.Access) {
	switch {
	case c.lru != nil:
		c.lru.OnHit(set, way, a)
	case c.srrip != nil:
		c.srrip.OnHit(set, way, a)
	default:
		c.pol.OnHit(set, way, a)
	}
}

// polOnFill dispatches Policy.OnFill, devirtualized for LRU/SRRIP.
func (c *Cache) polOnFill(set, way int, a repl.Access) {
	switch {
	case c.lru != nil:
		c.lru.OnFill(set, way, a)
	case c.srrip != nil:
		c.srrip.OnFill(set, way, a)
	default:
		c.pol.OnFill(set, way, a)
	}
}

// polOnEvict dispatches Policy.OnEvict, devirtualized for LRU/SRRIP.
func (c *Cache) polOnEvict(set, way int, block uint64) {
	switch {
	case c.lru != nil: // LRU.OnEvict is a no-op
	case c.srrip != nil:
		c.srrip.OnEvict(set, way, block)
	default:
		c.pol.OnEvict(set, way, block)
	}
}

// polVictim dispatches Policy.Victim, devirtualized for LRU/SRRIP.
func (c *Cache) polVictim(set int, a repl.Access) int {
	switch {
	case c.lru != nil:
		return c.lru.Victim(set, a)
	case c.srrip != nil:
		return c.srrip.Victim(set, a)
	default:
		return c.pol.Victim(set, a)
	}
}

// MustNew is New that panics on configuration errors.
func MustNew(cfg Config, pol repl.Policy) *Cache {
	c, err := New(cfg, pol)
	if err != nil {
		panic(err)
	}
	return c
}

// Config returns the cache configuration.
func (c *Cache) Config() Config { return c.cfg }

// Policy returns the replacement policy instance.
func (c *Cache) Policy() repl.Policy { return c.pol }

// SetIndex maps a block address to its set.
func (c *Cache) SetIndex(block uint64) int { return int(block & c.setMask) }

// probeSet looks block up within set. The MRU hint resolves the common
// hit-again case in one comparison; tags are unique within a set, so the
// hint can never disagree with the fallback scan.
func (c *Cache) probeSet(set int, block uint64) (way int, ok bool) {
	base := set * c.ways
	if m := int(c.mru[set]); c.tags[base+m] == block {
		return m, true
	}
	for w, tag := range c.tags[base : base+c.ways] {
		if tag == block {
			return w, true
		}
	}
	return 0, false
}

// Probe looks up block without side effects.
func (c *Cache) Probe(block uint64) (way int, ok bool) {
	return c.probeSet(c.SetIndex(block), block)
}

// Evicted describes the line displaced by a fill.
type Evicted struct {
	Block uint64
	Dirty bool
	Valid bool // false when the fill used an empty way or was bypassed
}

// Access performs the full lookup path for a demand or prefetch access a:
// observe, hit-or-miss, and per-set accounting. It does NOT fill on a miss —
// the hierarchy decides what to fill after the lower levels respond. Returns
// whether it hit and, on a hit, whether the line was a not-yet-demanded
// prefetch.
func (c *Cache) Access(a repl.Access) (hit bool, wasPrefetch bool) {
	a.Set = c.SetIndex(a.Block)
	way, ok := c.probeSet(a.Set, a.Block)
	if c.obs != nil {
		c.obs.OnAccess(a.Set, a, ok)
	}
	c.Stats.Accesses++
	demand := a.Type.IsDemand()
	if demand {
		c.Stats.DemandAccesses++
		// Per-set counters track demand traffic only: that is what the
		// Fig 5 MPKA study and the dynamic sampled cache monitor observe.
		c.SetAccesses[a.Set]++
	}
	if !ok {
		c.Stats.Misses++
		if demand {
			c.Stats.DemandMisses++
			c.SetMisses[a.Set]++
		}
		return false, false
	}
	c.Stats.Hits++
	i := a.Set*c.ways + way
	wasPref := c.meta[i]&metaPrefetch != 0
	if wasPref && demand {
		c.Stats.PrefHits++
		c.meta[i] &^= metaPrefetch
	}
	if a.Type == mem.RFO || a.Type == mem.Writeback {
		c.meta[i] |= metaDirty
	}
	c.mru[a.Set] = uint16(way)
	c.polOnHit(a.Set, way, a)
	return true, wasPref
}

// AccessMiss is Access for a block the caller has just probed and found
// absent, skipping the redundant second probe. The caller must guarantee
// nothing was filled into this cache since that probe. It runs exactly the
// miss half of Access: observer callback and statistics.
func (c *Cache) AccessMiss(a repl.Access) {
	a.Set = c.SetIndex(a.Block)
	if c.obs != nil {
		c.obs.OnAccess(a.Set, a, false)
	}
	c.Stats.Accesses++
	c.Stats.Misses++
	if a.Type.IsDemand() {
		c.Stats.DemandAccesses++
		c.SetAccesses[a.Set]++
		c.Stats.DemandMisses++
		c.SetMisses[a.Set]++
	}
}

// Fill installs block for access a, evicting a victim if needed. dirty marks
// the installed line dirty (writeback fills). Returns the evicted line, if
// any; a bypassed fill returns Evicted{} with Valid=false and installs
// nothing.
func (c *Cache) Fill(a repl.Access, dirty bool) Evicted {
	a.Set = c.SetIndex(a.Block)
	// Refill of a line that is already present (e.g., a demand fill racing a
	// prefetch fill in the same quantum): just update flags.
	if way, ok := c.probeSet(a.Set, a.Block); ok {
		if dirty {
			c.meta[a.Set*c.ways+way] |= metaDirty
		}
		return Evicted{}
	}
	return c.fillAbsent(a, dirty)
}

// FillMiss is Fill for a block the caller knows is absent — the demand path,
// where Access just missed and only invalidations (which never install
// lines) can have run since. It skips Fill's presence re-probe; everything
// else, including the invalid-way preference and every policy callback, is
// identical.
func (c *Cache) FillMiss(a repl.Access, dirty bool) Evicted {
	a.Set = c.SetIndex(a.Block)
	return c.fillAbsent(a, dirty)
}

func (c *Cache) fillAbsent(a repl.Access, dirty bool) Evicted {
	base := a.Set * c.ways
	// Prefer an invalid way, lowest index first. The per-set valid count
	// skips the scan once the set is full — the steady state everywhere.
	victim := -1
	if int(c.valid[a.Set]) < c.ways {
		for w := 0; w < c.ways; w++ {
			if c.meta[base+w]&metaValid == 0 {
				victim = w
				break
			}
		}
	}
	if victim < 0 {
		victim = c.polVictim(a.Set, a)
		if victim == repl.Bypass {
			c.Stats.Bypasses++
			return Evicted{}
		}
		if victim < 0 || victim >= c.ways {
			panic(fmt.Sprintf("cache %q: policy %s returned invalid victim %d", c.cfg.Name, c.pol.Name(), victim))
		}
	}
	var ev Evicted
	i := base + victim
	if c.meta[i]&metaValid != 0 {
		ev = Evicted{Block: c.tags[i], Dirty: c.meta[i]&metaDirty != 0, Valid: true}
		c.Stats.Evictions++
		if ev.Dirty {
			c.Stats.Writebacks++
		}
		c.polOnEvict(a.Set, victim, c.tags[i])
	} else {
		c.valid[a.Set]++
	}
	c.tags[i] = a.Block
	m := uint8(metaValid)
	if dirty {
		m |= metaDirty
	}
	if a.Type == mem.Prefetch {
		m |= metaPrefetch
	}
	c.meta[i] = m
	c.mru[a.Set] = uint16(victim)
	c.Stats.Fills++
	c.polOnFill(a.Set, victim, a)
	return ev
}

// MarkDirty sets the dirty bit on block if present (store hit path).
func (c *Cache) MarkDirty(block uint64) {
	set := c.SetIndex(block)
	if way, ok := c.probeSet(set, block); ok {
		c.meta[set*c.ways+way] |= metaDirty
	}
}

// Invalidate removes block if present, returning whether it was dirty.
func (c *Cache) Invalidate(block uint64) (wasDirty, present bool) {
	set := c.SetIndex(block)
	way, ok := c.probeSet(set, block)
	if !ok {
		return false, false
	}
	i := set*c.ways + way
	dirty := c.meta[i]&metaDirty != 0
	c.polOnEvict(set, way, c.tags[i])
	c.tags[i] = invalidTag
	c.meta[i] = 0
	c.valid[set]--
	return dirty, true
}

// Occupancy returns the number of valid lines in set.
func (c *Cache) Occupancy(set int) int { return int(c.valid[set]) }

// ResetStats clears aggregate and per-set counters (end of warmup).
func (c *Cache) ResetStats() {
	c.Stats = Stats{}
	for i := range c.SetAccesses {
		c.SetAccesses[i] = 0
		c.SetMisses[i] = 0
	}
}

// MPKAPerSet returns misses per kilo-access for each set (Fig 5): the
// per-set miss count normalized to the cache's total accesses in thousands.
func (c *Cache) MPKAPerSet() []float64 {
	out := make([]float64, c.cfg.Sets)
	total := float64(c.Stats.Accesses) / 1000.0
	if total == 0 {
		return out
	}
	for i, m := range c.SetMisses {
		out[i] = float64(m) / total
	}
	return out
}
