// Package cache implements a generic set-associative cache with pluggable
// replacement, dirty-line tracking, and per-set statistics. It is used for
// L1D, L2, and each LLC slice.
package cache

import (
	"fmt"

	"drishti/internal/mem"
	"drishti/internal/repl"
)

// Line is one cache line's bookkeeping state.
type Line struct {
	Tag      uint64 // full block address (not a truncated tag; simpler, exact)
	Valid    bool
	Dirty    bool
	Prefetch bool // filled by a prefetch and not yet demanded
}

// Stats aggregates cache-level counters.
type Stats struct {
	Accesses       uint64
	Hits           uint64
	Misses         uint64
	DemandAccesses uint64
	DemandMisses   uint64
	Fills          uint64
	Bypasses       uint64
	Evictions      uint64
	Writebacks     uint64 // dirty evictions handed to the next level
	PrefHits       uint64 // demand hits on prefetched lines
}

// Config sizes a cache.
type Config struct {
	Name string
	Sets int
	Ways int
}

// Validate reports configuration errors.
func (c Config) Validate() error {
	if c.Sets <= 0 || c.Ways <= 0 {
		return fmt.Errorf("cache %q: sets and ways must be positive (got %d×%d)", c.Name, c.Sets, c.Ways)
	}
	if c.Sets&(c.Sets-1) != 0 {
		return fmt.Errorf("cache %q: sets must be a power of two (got %d)", c.Name, c.Sets)
	}
	return nil
}

// Cache is a single set-associative cache array.
type Cache struct {
	cfg     Config
	lines   []Line // sets×ways, flattened
	pol     repl.Policy
	obs     repl.Observer // optional view of pol
	setMask uint64

	// Per-set counters, used by Fig 5 (MPKA per set) and by the dynamic
	// sampled cache's saturating-counter monitor.
	SetAccesses []uint64
	SetMisses   []uint64

	Stats Stats
}

// New builds a cache with the given replacement policy.
func New(cfg Config, pol repl.Policy) (*Cache, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if pol == nil {
		return nil, fmt.Errorf("cache %q: nil policy", cfg.Name)
	}
	c := &Cache{
		cfg:         cfg,
		lines:       make([]Line, cfg.Sets*cfg.Ways),
		pol:         pol,
		setMask:     uint64(cfg.Sets - 1),
		SetAccesses: make([]uint64, cfg.Sets),
		SetMisses:   make([]uint64, cfg.Sets),
	}
	if obs, ok := pol.(repl.Observer); ok {
		c.obs = obs
	}
	return c, nil
}

// MustNew is New that panics on configuration errors.
func MustNew(cfg Config, pol repl.Policy) *Cache {
	c, err := New(cfg, pol)
	if err != nil {
		panic(err)
	}
	return c
}

// Config returns the cache configuration.
func (c *Cache) Config() Config { return c.cfg }

// Policy returns the replacement policy instance.
func (c *Cache) Policy() repl.Policy { return c.pol }

// SetIndex maps a block address to its set.
func (c *Cache) SetIndex(block uint64) int { return int(block & c.setMask) }

// line returns a pointer to the line at (set, way).
func (c *Cache) line(set, way int) *Line { return &c.lines[set*c.cfg.Ways+way] }

// Probe looks up block without side effects.
func (c *Cache) Probe(block uint64) (way int, ok bool) {
	set := c.SetIndex(block)
	for w := 0; w < c.cfg.Ways; w++ {
		ln := c.line(set, w)
		if ln.Valid && ln.Tag == block {
			return w, true
		}
	}
	return 0, false
}

// Evicted describes the line displaced by a fill.
type Evicted struct {
	Block uint64
	Dirty bool
	Valid bool // false when the fill used an empty way or was bypassed
}

// Access performs the full lookup path for a demand or prefetch access a:
// observe, hit-or-miss, and per-set accounting. It does NOT fill on a miss —
// the hierarchy decides what to fill after the lower levels respond. Returns
// whether it hit and, on a hit, whether the line was a not-yet-demanded
// prefetch.
func (c *Cache) Access(a repl.Access) (hit bool, wasPrefetch bool) {
	a.Set = c.SetIndex(a.Block)
	way, ok := c.Probe(a.Block)
	if c.obs != nil {
		c.obs.OnAccess(a.Set, a, ok)
	}
	c.Stats.Accesses++
	demand := a.Type.IsDemand()
	if demand {
		c.Stats.DemandAccesses++
		// Per-set counters track demand traffic only: that is what the
		// Fig 5 MPKA study and the dynamic sampled cache monitor observe.
		c.SetAccesses[a.Set]++
	}
	if !ok {
		c.Stats.Misses++
		if demand {
			c.Stats.DemandMisses++
			c.SetMisses[a.Set]++
		}
		return false, false
	}
	c.Stats.Hits++
	ln := c.line(a.Set, way)
	wasPref := ln.Prefetch
	if ln.Prefetch && a.Type.IsDemand() {
		c.Stats.PrefHits++
		ln.Prefetch = false
	}
	if a.Type == mem.RFO || a.Type == mem.Writeback {
		ln.Dirty = true
	}
	c.pol.OnHit(a.Set, way, a)
	return true, wasPref
}

// Fill installs block for access a, evicting a victim if needed. dirty marks
// the installed line dirty (writeback fills). Returns the evicted line, if
// any; a bypassed fill returns Evicted{} with Valid=false and installs
// nothing.
func (c *Cache) Fill(a repl.Access, dirty bool) Evicted {
	a.Set = c.SetIndex(a.Block)
	// Refill of a line that is already present (e.g., a demand fill racing a
	// prefetch fill in the same quantum): just update flags.
	if way, ok := c.Probe(a.Block); ok {
		ln := c.line(a.Set, way)
		if dirty {
			ln.Dirty = true
		}
		return Evicted{}
	}
	// Prefer an invalid way.
	victim := -1
	for w := 0; w < c.cfg.Ways; w++ {
		if !c.line(a.Set, w).Valid {
			victim = w
			break
		}
	}
	if victim < 0 {
		victim = c.pol.Victim(a.Set, a)
		if victim == repl.Bypass {
			c.Stats.Bypasses++
			return Evicted{}
		}
		if victim < 0 || victim >= c.cfg.Ways {
			panic(fmt.Sprintf("cache %q: policy %s returned invalid victim %d", c.cfg.Name, c.pol.Name(), victim))
		}
	}
	var ev Evicted
	ln := c.line(a.Set, victim)
	if ln.Valid {
		ev = Evicted{Block: ln.Tag, Dirty: ln.Dirty, Valid: true}
		c.Stats.Evictions++
		if ln.Dirty {
			c.Stats.Writebacks++
		}
		c.pol.OnEvict(a.Set, victim, ln.Tag)
	}
	*ln = Line{
		Tag:      a.Block,
		Valid:    true,
		Dirty:    dirty,
		Prefetch: a.Type == mem.Prefetch,
	}
	c.Stats.Fills++
	c.pol.OnFill(a.Set, victim, a)
	return ev
}

// MarkDirty sets the dirty bit on block if present (store hit path).
func (c *Cache) MarkDirty(block uint64) {
	if way, ok := c.Probe(block); ok {
		c.line(c.SetIndex(block), way).Dirty = true
	}
}

// Invalidate removes block if present, returning whether it was dirty.
func (c *Cache) Invalidate(block uint64) (wasDirty, present bool) {
	way, ok := c.Probe(block)
	if !ok {
		return false, false
	}
	set := c.SetIndex(block)
	ln := c.line(set, way)
	dirty := ln.Dirty
	c.pol.OnEvict(set, way, ln.Tag)
	*ln = Line{}
	return dirty, true
}

// Occupancy returns the number of valid lines in set.
func (c *Cache) Occupancy(set int) int {
	n := 0
	for w := 0; w < c.cfg.Ways; w++ {
		if c.line(set, w).Valid {
			n++
		}
	}
	return n
}

// ResetStats clears aggregate and per-set counters (end of warmup).
func (c *Cache) ResetStats() {
	c.Stats = Stats{}
	for i := range c.SetAccesses {
		c.SetAccesses[i] = 0
		c.SetMisses[i] = 0
	}
}

// MPKAPerSet returns misses per kilo-access for each set (Fig 5): the
// per-set miss count normalized to the cache's total accesses in thousands.
func (c *Cache) MPKAPerSet() []float64 {
	out := make([]float64, c.cfg.Sets)
	total := float64(c.Stats.Accesses) / 1000.0
	if total == 0 {
		return out
	}
	for i, m := range c.SetMisses {
		out[i] = float64(m) / total
	}
	return out
}
