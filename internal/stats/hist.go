package stats

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// Histogram is a fixed-bucket integer histogram.
type Histogram struct {
	buckets []uint64
	// width is the value range covered by each bucket; the last bucket is
	// an overflow bucket.
	width int64
	min   int64
	total uint64
	sum   int64 // sum of recorded values (exact, unclamped)
}

// NewHistogram covers [min, min+width*len) in len buckets plus overflow.
func NewHistogram(min, width int64, n int) *Histogram {
	if width <= 0 || n <= 0 {
		panic("stats: invalid histogram shape")
	}
	return &Histogram{buckets: make([]uint64, n+1), width: width, min: min}
}

// Add records a value.
func (h *Histogram) Add(v int64) {
	i := (v - h.min) / h.width
	if v < h.min {
		i = 0
	}
	if i >= int64(len(h.buckets)-1) {
		i = int64(len(h.buckets) - 1)
	}
	h.buckets[i]++
	h.total++
	h.sum += v
}

// Mean returns the arithmetic mean of every recorded value (exact: values
// are summed before bucketing, so clamped and overflowed samples contribute
// their true value). Returns 0 for an empty histogram.
func (h *Histogram) Mean() float64 {
	if h.total == 0 {
		return 0
	}
	return float64(h.sum) / float64(h.total)
}

// Quantile estimates the p-quantile (0 ≤ p ≤ 1) from the bucket counts: the
// bucket holding the rank-⌈p·total⌉ sample, linearly interpolated within the
// bucket. Samples in the overflow bucket are indistinguishable beyond its
// lower edge, so quantiles landing there return that edge. Returns 0 for an
// empty histogram.
func (h *Histogram) Quantile(p float64) float64 {
	if h.total == 0 {
		return 0
	}
	if p < 0 {
		p = 0
	}
	if p > 1 {
		p = 1
	}
	rank := p * float64(h.total)
	var cum float64
	for i, c := range h.buckets {
		if c == 0 {
			continue
		}
		next := cum + float64(c)
		if rank <= next || i == len(h.buckets)-1 {
			lo := h.min + int64(i)*h.width
			if i == len(h.buckets)-1 {
				return float64(lo) // overflow: lower edge is all we know
			}
			frac := (rank - cum) / float64(c)
			if frac < 0 {
				frac = 0
			}
			return float64(lo) + frac*float64(h.width)
		}
		cum = next
	}
	return 0 // unreachable: total > 0 implies a non-empty bucket
}

// Count returns the number of samples recorded.
func (h *Histogram) Count() uint64 { return h.total }

// Bucket returns the count in bucket i (the last bucket is overflow).
func (h *Histogram) Bucket(i int) uint64 { return h.buckets[i] }

// Buckets returns the number of buckets, including the overflow bucket.
func (h *Histogram) Buckets() int { return len(h.buckets) }

// Fraction returns the fraction of samples in bucket i, or 0 if empty.
func (h *Histogram) Fraction(i int) float64 {
	if h.total == 0 {
		return 0
	}
	return float64(h.buckets[i]) / float64(h.total)
}

// String renders a compact one-line summary.
func (h *Histogram) String() string {
	var b strings.Builder
	for i, c := range h.buckets {
		if c == 0 {
			continue
		}
		lo := h.min + int64(i)*h.width
		if i == len(h.buckets)-1 {
			fmt.Fprintf(&b, " [%d+]=%d", lo, c)
		} else {
			fmt.Fprintf(&b, " [%d,%d)=%d", lo, lo+h.width, c)
		}
	}
	return strings.TrimSpace(b.String())
}

// TopK returns the indices of the k largest values in vals, ties broken by
// lower index. It is used by the dynamic sampled cache to pick the
// highest-MPKA sets.
func TopK(vals []uint64, k int) []int {
	if k > len(vals) {
		k = len(vals)
	}
	idx := make([]int, len(vals))
	for i := range idx {
		idx[i] = i
	}
	sort.SliceStable(idx, func(a, b int) bool { return vals[idx[a]] > vals[idx[b]] })
	out := make([]int, k)
	copy(out, idx[:k])
	sort.Ints(out)
	return out
}

// BottomK returns the indices of the k smallest values in vals.
func BottomK(vals []uint64, k int) []int {
	if k > len(vals) {
		k = len(vals)
	}
	idx := make([]int, len(vals))
	for i := range idx {
		idx[i] = i
	}
	sort.SliceStable(idx, func(a, b int) bool { return vals[idx[a]] < vals[idx[b]] })
	out := make([]int, k)
	copy(out, idx[:k])
	sort.Ints(out)
	return out
}

// Mean returns the arithmetic mean of xs, or 0 for an empty slice.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var s float64
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// GeoMean returns the geometric mean of xs (all must be > 0).
func GeoMean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var logSum float64
	for _, x := range xs {
		logSum += math.Log(x)
	}
	return math.Exp(logSum / float64(len(xs)))
}
