package stats

import (
	"math"
	"testing"
)

// samplerMean draws n values and returns their mean.
func samplerMean(s IntSampler, n int) float64 {
	sum := 0.0
	for i := 0; i < n; i++ {
		sum += float64(s.Next())
	}
	return sum / float64(n)
}

// TestSamplerMeans checks each alternative gap process converges near its
// configured mean — the property the arrival-shaping layer depends on: a
// scenario that reshapes a model's gaps must not change its access rate.
func TestSamplerMeans(t *testing.T) {
	const n = 200_000
	cases := []struct {
		name string
		mk   func(r *Rand) IntSampler
		mean float64
		tol  float64
	}{
		{"poisson-small", func(r *Rand) IntSampler { return NewPoisson(r, 3.5) }, 3.5, 0.05},
		{"poisson-large", func(r *Rand) IntSampler { return NewPoisson(r, 500) }, 500, 0.05},
		{"gamma-k2", func(r *Rand) IntSampler { return NewGamma(r, 8, 2) }, 8, 0.05},
		{"gamma-bursty", func(r *Rand) IntSampler { return NewGamma(r, 8, 0.4) }, 8, 0.08},
		{"weibull-k1", func(r *Rand) IntSampler { return NewWeibull(r, 6, 1) }, 6, 0.08},
		{"weibull-bursty", func(r *Rand) IntSampler { return NewWeibull(r, 6, 0.45) }, 6, 0.08},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			got := samplerMean(tc.mk(NewRand(42)), n)
			// Integer rounding shifts the continuous mean by at most 0.5.
			if math.Abs(got-tc.mean) > tc.mean*tc.tol+0.5 {
				t.Errorf("mean = %.3f, want %.3f +/- %.0f%%", got, tc.mean, tc.tol*100)
			}
		})
	}
}

// TestSamplerDeterminism pins that equal seeds give equal streams and that
// CloneWith reproduces the sampler's distribution parameters on a fresh
// RNG — the contract generator forking depends on.
func TestSamplerDeterminism(t *testing.T) {
	mks := map[string]func(r *Rand) IntSampler{
		"poisson": func(r *Rand) IntSampler { return NewPoisson(r, 7) },
		"gamma":   func(r *Rand) IntSampler { return NewGamma(r, 9, 0.6) },
		"weibull": func(r *Rand) IntSampler { return NewWeibull(r, 5, 0.45) },
	}
	for name, mk := range mks {
		t.Run(name, func(t *testing.T) {
			a, b := mk(NewRand(9)), mk(NewRand(9))
			for i := 0; i < 1000; i++ {
				if x, y := a.Next(), b.Next(); x != y {
					t.Fatalf("draw %d diverged: %d vs %d", i, x, y)
				}
			}
			// A clone seeded like a fresh sampler must match it draw for draw.
			c := mk(NewRand(11)).CloneWith(NewRand(23))
			d := mk(NewRand(23))
			for i := 0; i < 1000; i++ {
				if x, y := c.Next(), d.Next(); x != y {
					t.Fatalf("clone draw %d diverged: %d vs %d", i, x, y)
				}
			}
		})
	}
}

// TestSamplerZeroMean pins the degenerate contract: mean <= 0 always
// returns 0 and consumes no randomness.
func TestSamplerZeroMean(t *testing.T) {
	r := NewRand(1)
	before := r.Uint64()
	r = NewRand(1)
	for _, s := range []IntSampler{NewPoisson(r, 0), NewGamma(r, 0, 2), NewWeibull(r, 0, 1)} {
		if got := s.Next(); got != 0 {
			t.Errorf("%T zero-mean Next = %d, want 0", s, got)
		}
	}
	if got := r.Uint64(); got != before {
		t.Error("zero-mean samplers consumed randomness")
	}
}
