// Package stats provides deterministic randomness, histograms, and small
// statistical helpers used throughout the simulator.
//
// Every stochastic choice in the simulator flows through a Rand seeded from
// the experiment configuration, so identical configurations always produce
// identical results (design decision D5 in DESIGN.md).
package stats

import "math"

// Rand is a small, fast, deterministic pseudo-random generator based on
// splitmix64. It is not safe for concurrent use; give each component its own
// stream via Fork.
type Rand struct {
	state uint64
}

// NewRand returns a generator seeded with seed. A zero seed is valid.
func NewRand(seed uint64) *Rand {
	return &Rand{state: seed + 0x9e3779b97f4a7c15}
}

// Fork derives an independent stream labeled by tag. Streams forked with
// different tags from the same parent are decorrelated.
func (r *Rand) Fork(tag uint64) *Rand {
	return NewRand(Mix64(r.state ^ Mix64(tag)))
}

// Clone returns an independent copy of the generator at its current
// position: the clone and the original produce the same future stream and
// never affect each other.
func (r *Rand) Clone() *Rand {
	c := *r
	return &c
}

// Uint64 returns the next value in the stream.
func (r *Rand) Uint64() uint64 {
	r.state += 0x9e3779b97f4a7c15
	return Mix64(r.state)
}

// Mix64 is the splitmix64 finalizer: a cheap, high-quality bijective hash.
func Mix64(z uint64) uint64 {
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Intn returns a uniform value in [0, n). It panics if n <= 0.
func (r *Rand) Intn(n int) int {
	if n <= 0 {
		panic("stats: Intn with non-positive n")
	}
	return int(r.Uint64() % uint64(n))
}

// Uint64n returns a uniform value in [0, n). It panics if n == 0.
func (r *Rand) Uint64n(n uint64) uint64 {
	if n == 0 {
		panic("stats: Uint64n with zero n")
	}
	return r.Uint64() % n
}

// Float64 returns a uniform value in [0, 1). Scaling by 0x1p-53 is exact
// (power of two), so the multiply returns bit-identical values to dividing
// by 1<<53 at a fraction of the latency.
func (r *Rand) Float64() float64 {
	return float64(r.Uint64()>>11) * 0x1p-53
}

// Perm returns a pseudo-random permutation of [0, n).
func (r *Rand) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		p[i], p[j] = p[j], p[i]
	}
	return p
}

// Choose returns k distinct values from [0, n) in pseudo-random order.
// It panics if k > n.
func (r *Rand) Choose(n, k int) []int {
	if k > n {
		panic("stats: Choose k > n")
	}
	p := r.Perm(n)
	return p[:k]
}

// Geometric returns a sample from a geometric distribution with the given
// mean (mean >= 0). A mean of zero always returns zero.
func (r *Rand) Geometric(mean float64) int {
	if mean <= 0 {
		return 0
	}
	p := 1.0 / (mean + 1.0)
	u := r.Float64()
	// Inverse CDF of geometric starting at 0.
	g := int(math.Floor(math.Log1p(-u) / math.Log1p(-p)))
	if g < 0 {
		g = 0
	}
	return g
}

// Geom is a geometric sampler with a fixed mean. It draws the same stream
// values and evaluates the same floating-point expression as Rand.Geometric,
// so swapping one for the other cannot change results; it only hoists the
// math.Log1p of the constant distribution parameter out of the per-sample
// path, which profiles as a hot spot in workload generation.
type Geom struct {
	r    *Rand
	logQ float64 // math.Log1p(-p) with p = 1/(mean+1)
	live bool    // mean > 0
}

// NewGeom builds a sampler drawing from r with the given mean (mean >= 0).
func NewGeom(r *Rand, mean float64) *Geom {
	g := &Geom{r: r, live: mean > 0}
	if g.live {
		g.logQ = math.Log1p(-1.0 / (mean + 1.0))
	}
	return g
}

// CloneWith returns a copy of the sampler drawing from r, which callers
// pass as the clone of the original parent stream (Geom shares its parent's
// Rand, so cloning the sampler alone would leave it coupled to the
// original).
func (g *Geom) CloneWith(r *Rand) *Geom {
	c := *g
	c.r = r
	return &c
}

// Next returns the next sample. Like Rand.Geometric with a non-positive
// mean, it returns zero without consuming the stream.
func (g *Geom) Next() int {
	if !g.live {
		return 0
	}
	u := g.r.Float64()
	n := int(math.Floor(math.Log1p(-u) / g.logQ))
	if n < 0 {
		n = 0
	}
	return n
}

// Zipf draws Zipf-distributed values over [0, n) with exponent s using
// rejection-inversion. It is deterministic given the parent Rand stream.
//
// The acceptance test evaluates h and hInteg at integer-derived points, and
// Zipf mass concentrates on small ranks, so both are memoized for low ranks.
// Memo entries are produced by the very same h/hInteg calls on first use —
// the cache only replays bit-identical values, it never changes a sample.
type Zipf struct {
	r        *Rand
	n        uint64
	s        float64
	hIntegN  float64
	hIntegX1 float64
	hSpan    float64 // hIntegN - hIntegX1, hoisted out of Next
	hX1      float64
	hMemo    []float64 // h(k) by integer rank k; 0 = not yet computed (h > 0)
	hIntMemo []float64 // hInteg(k+0.5) by rank k; NaN = not yet computed
}

// zipfMemoRanks bounds the per-sampler memo tables (16 KB for both).
const zipfMemoRanks = 1024

// NewZipf builds a sampler over [0, n) with skew s (> 0, typically 0.6–1.2).
func NewZipf(r *Rand, n uint64, s float64) *Zipf {
	if n == 0 {
		panic("stats: Zipf over empty range")
	}
	z := &Zipf{r: r, n: n, s: s}
	z.hIntegX1 = z.hInteg(1.5) - 1.0
	z.hIntegN = z.hInteg(float64(n) + 0.5)
	z.hSpan = z.hIntegN - z.hIntegX1
	z.hX1 = z.h(1.0)
	ranks := uint64(zipfMemoRanks)
	if ranks > n {
		ranks = n
	}
	z.hMemo = make([]float64, ranks+1)
	z.hIntMemo = make([]float64, ranks+1)
	for i := range z.hIntMemo {
		z.hIntMemo[i] = math.NaN()
	}
	return z
}

// Clone returns an independent copy of the sampler at its current position:
// same future samples, no shared mutable state. The private Rand and the
// lazily-filled memo tables are deep-copied (memo entries only replay
// bit-identical values, but the tables are written on first use, so clones
// stepping concurrently must not share them).
func (z *Zipf) Clone() *Zipf {
	c := *z
	c.r = z.r.Clone()
	c.hMemo = append([]float64(nil), z.hMemo...)
	c.hIntMemo = append([]float64(nil), z.hIntMemo...)
	return &c
}

func (z *Zipf) h(x float64) float64 { return math.Exp(-z.s * math.Log(x)) }

func (z *Zipf) hInteg(x float64) float64 {
	if z.s == 1.0 {
		return math.Log(x)
	}
	return math.Exp((1.0-z.s)*math.Log(x)) / (1.0 - z.s)
}

func (z *Zipf) hIntegInv(x float64) float64 {
	if z.s == 1.0 {
		return math.Exp(x)
	}
	return math.Exp(math.Log((1.0-z.s)*x) / (1.0 - z.s))
}

// hAt is h(k) for integer rank k, memoized for low ranks.
func (z *Zipf) hAt(k float64) float64 {
	if i := int(k); i < len(z.hMemo) {
		v := z.hMemo[i]
		if v == 0 {
			v = z.h(k)
			z.hMemo[i] = v
		}
		return v
	}
	return z.h(k)
}

// hIntegAt is hInteg(k+0.5) for integer rank k, memoized for low ranks.
func (z *Zipf) hIntegAt(k float64) float64 {
	if i := int(k); i < len(z.hIntMemo) {
		v := z.hIntMemo[i]
		if math.IsNaN(v) {
			v = z.hInteg(k + 0.5)
			z.hIntMemo[i] = v
		}
		return v
	}
	return z.hInteg(k + 0.5)
}

// Next returns the next sample in [0, n), with rank-0 most popular.
func (z *Zipf) Next() uint64 {
	for {
		u := z.hIntegX1 + z.r.Float64()*z.hSpan
		x := z.hIntegInv(u)
		k := math.Floor(x + 0.5)
		if k < 1 {
			k = 1
		}
		if k > float64(z.n) {
			k = float64(z.n)
		}
		// Same acceptance condition as the classic formulation, with the
		// cheap rank-1 branch hoisted ahead of the || — h and hInteg are
		// pure, so evaluation order cannot change the outcome.
		if k <= 1.5 || z.hIntegAt(k)-u <= z.hAt(k) {
			return uint64(k) - 1
		}
	}
}
