package stats

import "math"

// IntSampler is a deterministic sampler of non-negative integers drawn
// from a fixed distribution over a parent Rand stream. Geom predates the
// interface and keeps its concrete type on the hot default path; the
// samplers here cover the alternative inter-access gap processes scenario
// specs can request (workload.Model.GapDist).
type IntSampler interface {
	// Next returns the next sample. Implementations with a non-positive
	// mean return zero without consuming the stream, like Geom.
	Next() int
	// CloneWith returns a copy drawing from r, which callers pass as the
	// clone of the original parent stream (samplers share their parent's
	// Rand, so cloning the sampler alone would leave it coupled to the
	// original). Any buffered sampler state is copied, so the clone and
	// the original produce identical future samples.
	CloneWith(r *Rand) IntSampler
}

// Poisson samples a Poisson distribution with fixed mean by Knuth's
// product-of-uniforms method. Means above 30 are split into chunks whose
// partial samples sum (Poisson is closed under addition), keeping
// exp(-mean) well away from underflow while staying fully deterministic.
type Poisson struct {
	r         *Rand
	mean      float64
	chunks    int
	expNegCkM float64 // exp(-mean/chunks)
}

// NewPoisson builds a sampler drawing from r with the given mean
// (mean >= 0; a non-positive mean always samples zero).
func NewPoisson(r *Rand, mean float64) *Poisson {
	p := &Poisson{r: r, mean: mean}
	if mean <= 0 {
		return p
	}
	p.chunks = 1
	for mean/float64(p.chunks) > 30 {
		p.chunks++
	}
	p.expNegCkM = math.Exp(-mean / float64(p.chunks))
	return p
}

// Next implements IntSampler.
func (p *Poisson) Next() int {
	if p.mean <= 0 {
		return 0
	}
	n := 0
	for c := 0; c < p.chunks; c++ {
		prod := 1.0
		for {
			prod *= p.r.Float64()
			if prod <= p.expNegCkM {
				break
			}
			n++
		}
	}
	return n
}

// CloneWith implements IntSampler.
func (p *Poisson) CloneWith(r *Rand) IntSampler {
	c := *p
	c.r = r
	return &c
}

// Gamma samples a gamma distribution with fixed mean and shape k via
// Marsaglia–Tsang, rounding to the nearest integer. Shapes below one use
// the standard boost (a Gamma(k+1) sample scaled by U^(1/k)). Normal
// deviates come from Box–Muller with the second deviate buffered, so the
// uniform stream is consumed two at a time.
type Gamma struct {
	r     *Rand
	mean  float64
	k     float64 // requested shape
	d, c  float64 // Marsaglia–Tsang constants for the effective shape
	scale float64 // mean / k
	spare float64 // buffered Box–Muller deviate
	have  bool
}

// NewGamma builds a sampler drawing from r with the given mean and shape
// k > 0 (a non-positive mean always samples zero).
func NewGamma(r *Rand, mean, k float64) *Gamma {
	g := &Gamma{r: r, mean: mean, k: k}
	if mean <= 0 || k <= 0 {
		g.mean = 0
		return g
	}
	kEff := k
	if kEff < 1 {
		kEff++
	}
	g.d = kEff - 1.0/3.0
	g.c = 1.0 / math.Sqrt(9.0*g.d)
	g.scale = mean / k
	return g
}

func (g *Gamma) normal() float64 {
	if g.have {
		g.have = false
		return g.spare
	}
	u1 := g.r.Float64()
	for u1 == 0 {
		u1 = g.r.Float64()
	}
	u2 := g.r.Float64()
	rad := math.Sqrt(-2 * math.Log(u1))
	theta := 2 * math.Pi * u2
	g.spare = rad * math.Sin(theta)
	g.have = true
	return rad * math.Cos(theta)
}

// Next implements IntSampler.
func (g *Gamma) Next() int {
	if g.mean <= 0 {
		return 0
	}
	boost := 1.0
	if g.k < 1 {
		u := g.r.Float64()
		for u == 0 {
			u = g.r.Float64()
		}
		boost = math.Pow(u, 1.0/g.k)
	}
	for {
		x := g.normal()
		v := 1 + g.c*x
		if v <= 0 {
			continue
		}
		v = v * v * v
		u := g.r.Float64()
		for u == 0 {
			u = g.r.Float64()
		}
		if math.Log(u) < 0.5*x*x+g.d-g.d*v+g.d*math.Log(v) {
			return int(g.d*v*boost*g.scale + 0.5)
		}
	}
}

// CloneWith implements IntSampler.
func (g *Gamma) CloneWith(r *Rand) IntSampler {
	c := *g
	c.r = r
	return &c
}

// Weibull samples a Weibull distribution with fixed mean and shape k by
// inverting the CDF (one uniform per sample), rounding to the nearest
// integer. Shapes below one are heavy-tailed: long idle gaps separating
// dense bursts, the bursty-tenant arrival pattern.
type Weibull struct {
	r      *Rand
	mean   float64
	invK   float64
	lambda float64 // scale such that the mean comes out to mean
}

// NewWeibull builds a sampler drawing from r with the given mean and
// shape k > 0 (a non-positive mean always samples zero).
func NewWeibull(r *Rand, mean, k float64) *Weibull {
	w := &Weibull{r: r, mean: mean}
	if mean <= 0 || k <= 0 {
		w.mean = 0
		return w
	}
	w.invK = 1.0 / k
	w.lambda = mean / math.Gamma(1.0+w.invK)
	return w
}

// Next implements IntSampler.
func (w *Weibull) Next() int {
	if w.mean <= 0 {
		return 0
	}
	u := w.r.Float64() // in [0,1): 1-u never hits zero
	return int(w.lambda*math.Pow(-math.Log(1.0-u), w.invK) + 0.5)
}

// CloneWith implements IntSampler.
func (w *Weibull) CloneWith(r *Rand) IntSampler {
	c := *w
	c.r = r
	return &c
}
