package stats

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func TestRandDeterminism(t *testing.T) {
	a, b := NewRand(42), NewRand(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("streams diverged at step %d", i)
		}
	}
}

func TestRandSeedsDiffer(t *testing.T) {
	a, b := NewRand(1), NewRand(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("different seeds produced %d identical values", same)
	}
}

func TestForkDecorrelates(t *testing.T) {
	parent := NewRand(7)
	a, b := parent.Fork(1), parent.Fork(2)
	if a.Uint64() == b.Uint64() {
		t.Fatal("forked streams start identically")
	}
}

func TestIntnRange(t *testing.T) {
	r := NewRand(3)
	for i := 0; i < 10000; i++ {
		v := r.Intn(17)
		if v < 0 || v >= 17 {
			t.Fatalf("Intn(17) returned %d", v)
		}
	}
}

func TestIntnPanicsOnZero(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewRand(1).Intn(0)
}

func TestFloat64Range(t *testing.T) {
	r := NewRand(5)
	var sum float64
	const n = 100000
	for i := 0; i < n; i++ {
		v := r.Float64()
		if v < 0 || v >= 1 {
			t.Fatalf("Float64 out of range: %v", v)
		}
		sum += v
	}
	if mean := sum / n; math.Abs(mean-0.5) > 0.01 {
		t.Fatalf("Float64 mean %v, want ≈0.5", mean)
	}
}

func TestPermIsPermutation(t *testing.T) {
	check := func(seed uint64) bool {
		n := 1 + int(seed%64)
		p := NewRand(seed).Perm(n)
		if len(p) != n {
			return false
		}
		seen := make([]bool, n)
		for _, v := range p {
			if v < 0 || v >= n || seen[v] {
				return false
			}
			seen[v] = true
		}
		return true
	}
	if err := quick.Check(check, nil); err != nil {
		t.Fatal(err)
	}
}

func TestChooseDistinct(t *testing.T) {
	r := NewRand(11)
	sel := r.Choose(100, 30)
	if len(sel) != 30 {
		t.Fatalf("got %d values", len(sel))
	}
	seen := map[int]bool{}
	for _, v := range sel {
		if v < 0 || v >= 100 || seen[v] {
			t.Fatalf("invalid or duplicate value %d", v)
		}
		seen[v] = true
	}
}

func TestGeometricMean(t *testing.T) {
	r := NewRand(13)
	const mean = 4.0
	var sum float64
	const n = 200000
	for i := 0; i < n; i++ {
		sum += float64(r.Geometric(mean))
	}
	if got := sum / n; math.Abs(got-mean) > 0.1 {
		t.Fatalf("geometric mean %v, want ≈%v", got, mean)
	}
}

func TestGeometricZeroMean(t *testing.T) {
	r := NewRand(1)
	for i := 0; i < 100; i++ {
		if r.Geometric(0) != 0 {
			t.Fatal("Geometric(0) must be 0")
		}
	}
}

func TestZipfSkew(t *testing.T) {
	r := NewRand(17)
	z := NewZipf(r, 1000, 1.0)
	counts := make([]int, 1000)
	const n = 200000
	for i := 0; i < n; i++ {
		v := z.Next()
		if v >= 1000 {
			t.Fatalf("Zipf out of range: %d", v)
		}
		counts[v]++
	}
	// Rank 0 must dominate rank 99 heavily under s=1.
	if counts[0] < 10*counts[99] {
		t.Fatalf("insufficient skew: rank0=%d rank99=%d", counts[0], counts[99])
	}
	// All mass present.
	total := 0
	for _, c := range counts {
		total += c
	}
	if total != n {
		t.Fatalf("lost samples: %d", total)
	}
}

func TestZipfLowSkewIsFlatter(t *testing.T) {
	r := NewRand(19)
	z := NewZipf(r, 1000, 0.2)
	counts := make([]int, 1000)
	for i := 0; i < 100000; i++ {
		counts[z.Next()]++
	}
	if counts[0] > 100*counts[500] {
		t.Fatalf("s=0.2 too skewed: rank0=%d rank500=%d", counts[0], counts[500])
	}
}

func TestMix64Bijective(t *testing.T) {
	seen := map[uint64]bool{}
	for i := uint64(0); i < 10000; i++ {
		h := Mix64(i)
		if seen[h] {
			t.Fatalf("collision at %d", i)
		}
		seen[h] = true
	}
}

func TestHistogram(t *testing.T) {
	h := NewHistogram(0, 10, 5) // [0,10) [10,20) ... [40,50) + overflow
	h.Add(0)
	h.Add(9)
	h.Add(10)
	h.Add(49)
	h.Add(50)
	h.Add(1000)
	h.Add(-5) // clamps to first bucket
	if h.Count() != 7 {
		t.Fatalf("count %d", h.Count())
	}
	if h.Bucket(0) != 3 { // 0, 9, -5
		t.Fatalf("bucket0 = %d", h.Bucket(0))
	}
	if h.Bucket(1) != 1 || h.Bucket(4) != 1 {
		t.Fatalf("mid buckets wrong: %v %v", h.Bucket(1), h.Bucket(4))
	}
	if h.Bucket(5) != 2 { // overflow: 50, 1000
		t.Fatalf("overflow = %d", h.Bucket(5))
	}
	if f := h.Fraction(0); math.Abs(f-3.0/7.0) > 1e-9 {
		t.Fatalf("fraction %v", f)
	}
}

func TestHistogramMean(t *testing.T) {
	h := NewHistogram(0, 10, 5)
	if m := h.Mean(); m != 0 {
		t.Fatalf("empty mean = %v", m)
	}
	for _, v := range []int64{0, 10, 20} {
		h.Add(v)
	}
	if m := h.Mean(); m != 10 {
		t.Fatalf("mean = %v, want 10", m)
	}
	// Clamped (below min) and overflowed samples contribute their true
	// values, not their bucket edges.
	h2 := NewHistogram(0, 10, 2)
	h2.Add(-20)
	h2.Add(1000)
	if m := h2.Mean(); m != 490 {
		t.Fatalf("clamped mean = %v, want 490", m)
	}
}

func TestHistogramQuantile(t *testing.T) {
	h := NewHistogram(0, 10, 10) // [0,100) + overflow
	if q := h.Quantile(0.5); q != 0 {
		t.Fatalf("empty quantile = %v", q)
	}
	for v := int64(0); v < 100; v++ {
		h.Add(v)
	}
	// Uniform fill: quantiles track p*100 to within one bucket width.
	for _, p := range []float64{0.1, 0.5, 0.9} {
		if q := h.Quantile(p); math.Abs(q-p*100) > 10 {
			t.Fatalf("Quantile(%v) = %v", p, q)
		}
	}
	if q := h.Quantile(0); q != 0 {
		t.Fatalf("Quantile(0) = %v", q)
	}
	if q := h.Quantile(1); q != 100 {
		t.Fatalf("Quantile(1) = %v, want 100 (top of last real bucket)", q)
	}
	// Out-of-range p clamps instead of panicking.
	if q := h.Quantile(-1); q != h.Quantile(0) {
		t.Fatalf("Quantile(-1) = %v", q)
	}
	if q := h.Quantile(2); q != h.Quantile(1) {
		t.Fatalf("Quantile(2) = %v", q)
	}
}

func TestHistogramQuantileEdgeBuckets(t *testing.T) {
	h := NewHistogram(0, 10, 3) // [0,30) + overflow at 30+
	h.Add(-5)                   // clamps into bucket 0
	h.Add(5)
	if q := h.Quantile(0.25); q < 0 || q >= 10 {
		t.Fatalf("first-bucket quantile = %v", q)
	}
	// All mass in the overflow bucket: every quantile reports its lower
	// edge (the histogram cannot resolve beyond it).
	ho := NewHistogram(0, 10, 3)
	ho.Add(31)
	ho.Add(500)
	for _, p := range []float64{0, 0.5, 1} {
		if q := ho.Quantile(p); q != 30 {
			t.Fatalf("overflow Quantile(%v) = %v, want 30", p, q)
		}
	}
}

func TestTopKBottomK(t *testing.T) {
	vals := []uint64{5, 1, 9, 3, 9, 0}
	top := TopK(vals, 2)
	if len(top) != 2 || top[0] != 2 || top[1] != 4 {
		t.Fatalf("TopK = %v", top)
	}
	bot := BottomK(vals, 2)
	if len(bot) != 2 || bot[0] != 1 || bot[1] != 5 {
		t.Fatalf("BottomK = %v", bot)
	}
}

func TestTopKClamps(t *testing.T) {
	if got := TopK([]uint64{1, 2}, 10); len(got) != 2 {
		t.Fatalf("TopK over-length = %v", got)
	}
}

func TestTopKProperty(t *testing.T) {
	check := func(seed uint64) bool {
		r := NewRand(seed)
		n := 1 + int(seed%50)
		vals := make([]uint64, n)
		for i := range vals {
			vals[i] = r.Uint64n(100)
		}
		k := 1 + int(seed>>8)%n
		top := TopK(vals, k)
		// Every selected value ≥ every non-selected value.
		sel := map[int]bool{}
		minSel := uint64(math.MaxUint64)
		for _, i := range top {
			sel[i] = true
			if vals[i] < minSel {
				minSel = vals[i]
			}
		}
		for i, v := range vals {
			if !sel[i] && v > minSel {
				return false
			}
		}
		return len(top) == k
	}
	if err := quick.Check(check, nil); err != nil {
		t.Fatal(err)
	}
}

func TestMeanGeoMean(t *testing.T) {
	if m := Mean([]float64{1, 2, 3}); m != 2 {
		t.Fatalf("mean %v", m)
	}
	if m := Mean(nil); m != 0 {
		t.Fatalf("empty mean %v", m)
	}
	if g := GeoMean([]float64{1, 4}); math.Abs(g-2) > 1e-9 {
		t.Fatalf("geomean %v", g)
	}
}

func TestHistogramString(t *testing.T) {
	h := NewHistogram(0, 10, 3)
	h.Add(5)
	h.Add(100)
	s := h.String()
	if s == "" || !strings.Contains(s, "[0,10)=1") || !strings.Contains(s, "[30+]=1") {
		t.Fatalf("histogram render %q", s)
	}
}

func TestUint64nPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewRand(1).Uint64n(0)
}

func TestChoosePanicsOnOverdraw(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewRand(1).Choose(3, 4)
}

func TestZipfPanicsOnEmpty(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewZipf(NewRand(1), 0, 1.0)
}

func TestHistogramPanicsOnBadShape(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewHistogram(0, 0, 4)
}
