package repl

import (
	"testing"
	"testing/quick"

	"drishti/internal/mem"
)

func TestEVAInitialRankIsLRULike(t *testing.T) {
	e := NewEVA(2, 4)
	// Age way 0 heavily; it should be the victim before any learning.
	for i := 0; i < 100; i++ {
		e.OnAccess(0, Access{}, false)
	}
	e.OnHit(0, 1, Access{})
	e.OnHit(0, 2, Access{})
	e.OnHit(0, 3, Access{})
	if v := e.Victim(0, Access{}); v != 0 {
		t.Fatalf("victim %d, want the oldest way", v)
	}
}

func TestEVAReclassifies(t *testing.T) {
	e := NewEVA(4, 2)
	e.period = 64
	// Lines that hit do so young; old lines only ever get evicted.
	for i := 0; i < 200; i++ {
		e.OnFill(0, 0, Access{})
		e.OnHit(0, 0, Access{}) // young hit
		for k := 0; k < 80; k++ {
			e.OnAccess(1, Access{}, false) // age set 1
		}
		e.OnEvict(1, 0, 0) // ancient eviction
		e.OnFill(1, 0, Access{})
	}
	// Young classes must now outrank ancient ones.
	if e.rank[0] <= e.rank[numAgeClasses-1] {
		t.Fatalf("rank[young]=%v rank[ancient]=%v", e.rank[0], e.rank[numAgeClasses-1])
	}
}

func TestEVAVictimInRangeProperty(t *testing.T) {
	check := func(ops []uint16) bool {
		e := NewEVA(4, 4)
		e.period = 32
		for _, op := range ops {
			set, way := int(op)%4, int(op>>2)%4
			switch op % 4 {
			case 0:
				e.OnFill(set, way, Access{})
			case 1:
				e.OnHit(set, way, Access{})
			case 2:
				e.OnEvict(set, way, 0)
			default:
				e.OnAccess(set, Access{}, false)
			}
		}
		for s := 0; s < 4; s++ {
			if v := e.Victim(s, Access{}); v < 0 || v >= 4 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestIPVStackInvariant(t *testing.T) {
	p := NewIPV(2, 8)
	// After arbitrary hits/fills the positions must stay a permutation.
	checkPerm := func() {
		seen := make([]bool, 8)
		for w := 0; w < 8; w++ {
			q := p.pos[w]
			if int(q) >= 8 || seen[q] {
				t.Fatalf("stack corrupted: %v", p.pos[:8])
			}
			seen[q] = true
		}
	}
	for i := 0; i < 1000; i++ {
		switch i % 3 {
		case 0:
			p.OnHit(0, i%8, Access{})
		case 1:
			v := p.Victim(0, Access{})
			p.OnFill(0, v, Access{})
		default:
			p.OnHit(0, (i*5)%8, Access{})
		}
		checkPerm()
	}
}

func TestIPVInsertNotMRU(t *testing.T) {
	p := NewIPV(1, 8)
	v := p.Victim(0, Access{})
	p.OnFill(0, v, Access{})
	if p.pos[v] == 0 {
		t.Fatal("IPV inserted at MRU; scan resistance lost")
	}
	if int(p.pos[v]) == 7 {
		t.Fatal("IPV inserted at LRU; fills would thrash")
	}
}

func TestIPVGradualPromotion(t *testing.T) {
	p := NewIPV(1, 8)
	// A line deep in the stack must take several hits to reach MRU.
	way := p.Victim(0, Access{})
	p.OnFill(0, way, Access{})
	hops := 0
	for p.pos[way] != 0 {
		p.OnHit(0, way, Access{})
		hops++
		if hops > 8 {
			t.Fatal("promotion does not converge")
		}
	}
	if hops < 2 {
		t.Fatalf("promotion reached MRU in %d hop(s); want gradual", hops)
	}
}

func TestIPVVictimIsLRUPosition(t *testing.T) {
	p := NewIPV(1, 4)
	v := p.Victim(0, Access{})
	if int(p.pos[v]) != 3 {
		t.Fatalf("victim at stack position %d", p.pos[v])
	}
}

func TestIPVWithVectorValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("malformed vector accepted")
		}
	}()
	NewIPVWithVector(2, 4, []uint8{0, 0, 3, 1}, 2) // promote[2]=3 demotes
}

func TestEVAName(t *testing.T) {
	if NewEVA(2, 2).Name() != "eva" || NewIPV(2, 2).Name() != "ipv" {
		t.Fatal("names changed")
	}
}

func TestIPVScanResistance(t *testing.T) {
	// A working set of 4 hot lines + endless scan: IPV must keep more hot
	// lines than plain LRU would.
	ways := 8
	p := NewIPV(1, ways)
	lru := NewLRU(1, ways)
	// Simulate tag arrays manually for both.
	type ca struct {
		tags []uint64
		pol  Policy
	}
	run := func(c *ca) int {
		hits := 0
		for round := 0; round < 200; round++ {
			for _, tag := range []uint64{1, 2, 3, 4} { // hot set
				hitWay := -1
				for w, tg := range c.tags {
					if tg == tag {
						hitWay = w
						break
					}
				}
				if hitWay >= 0 {
					hits++
					c.pol.OnHit(0, hitWay, Access{})
				} else {
					v := c.pol.Victim(0, Access{})
					c.pol.OnEvict(0, v, c.tags[v])
					c.tags[v] = tag
					c.pol.OnFill(0, v, Access{})
				}
			}
			for s := 0; s < 6; s++ { // scan
				tag := uint64(1000 + round*6 + s)
				v := c.pol.Victim(0, Access{})
				c.pol.OnEvict(0, v, c.tags[v])
				c.tags[v] = tag
				c.pol.OnFill(0, v, Access{})
			}
		}
		return hits
	}
	hitsIPV := run(&ca{tags: make([]uint64, ways), pol: p})
	hitsLRU := run(&ca{tags: make([]uint64, ways), pol: lru})
	if hitsIPV <= hitsLRU {
		t.Fatalf("IPV hits %d ≤ LRU hits %d under scan", hitsIPV, hitsLRU)
	}
	_ = mem.Load
}
