package repl

// EVA implements a lightweight Economic Value Added policy (Beckmann &
// Sánchez, HPCA'17): lines are ranked by the expected future value of their
// age class, estimated online from the age distributions of hits and
// evictions. EVA uses no PC-indexed predictor and no sampled sets, which is
// why neither of Drishti's enhancements applies to it (Table 7's last row);
// it is included as the distribution-based point of the design space.
type EVA struct {
	sets, ways int

	// Per-line coarse age, advanced on set accesses.
	age     []uint8
	tick    []uint8 // per-set sub-counter for coarse aging
	granule uint8   // set accesses per age step

	// Event histograms per age class, folded periodically into a rank.
	hits   [numAgeClasses]uint64
	evs    [numAgeClasses]uint64
	rank   [numAgeClasses]float64 // higher = more valuable
	events uint64
	period uint64
}

// numAgeClasses buckets line ages; the last class is "ancient".
const numAgeClasses = 16

// NewEVA builds an EVA policy for a sets×ways cache.
func NewEVA(sets, ways int) *EVA {
	e := &EVA{
		sets:    sets,
		ways:    ways,
		age:     make([]uint8, sets*ways),
		tick:    make([]uint8, sets),
		granule: 4,
		period:  8192,
	}
	// Until the first reclassification, prefer evicting old lines (LRU-ish).
	for c := 0; c < numAgeClasses; c++ {
		e.rank[c] = float64(numAgeClasses - c)
	}
	return e
}

// Name implements Policy.
func (e *EVA) Name() string { return "eva" }

func (e *EVA) idx(set, way int) int { return set*e.ways + way }

// OnAccess implements Observer: ages every line in the set coarsely.
func (e *EVA) OnAccess(set int, _ Access, _ bool) {
	e.tick[set]++
	if e.tick[set] < e.granule {
		return
	}
	e.tick[set] = 0
	base := set * e.ways
	for w := 0; w < e.ways; w++ {
		if e.age[base+w] < numAgeClasses-1 {
			e.age[base+w]++
		}
	}
}

// OnHit implements Policy: record the hit's age class, rejuvenate.
func (e *EVA) OnHit(set, way int, _ Access) {
	i := e.idx(set, way)
	e.hits[e.age[i]]++
	e.age[i] = 0
	e.bump()
}

// OnFill implements Policy.
func (e *EVA) OnFill(set, way int, _ Access) {
	e.age[e.idx(set, way)] = 0
}

// OnEvict implements Policy: record the eviction's age class.
func (e *EVA) OnEvict(set, way int, _ uint64) {
	e.evs[e.age[e.idx(set, way)]]++
	e.bump()
}

// Victim implements Policy: evict the line whose age class has the lowest
// estimated value.
func (e *EVA) Victim(set int, _ Access) int {
	base := set * e.ways
	best, bestRank := 0, e.rank[e.age[base]]
	for w := 1; w < e.ways; w++ {
		if r := e.rank[e.age[base+w]]; r < bestRank {
			best, bestRank = w, r
		}
	}
	return best
}

// bump counts classification events and periodically refreshes the ranks.
func (e *EVA) bump() {
	e.events++
	if e.events%e.period != 0 {
		return
	}
	e.reclassify()
}

// reclassify estimates each age class's forward value: the probability a
// line of this age eventually hits, weighed against the cache time it will
// consume — the spirit of EVA's hit-rate-per-resource ranking.
func (e *EVA) reclassify() {
	// Survival-style estimate from the oldest class downward.
	var futureHits, futureEvs float64
	for c := numAgeClasses - 1; c >= 0; c-- {
		futureHits += float64(e.hits[c])
		futureEvs += float64(e.evs[c])
		total := futureHits + futureEvs
		if total == 0 {
			e.rank[c] = 0
			continue
		}
		hitProb := futureHits / total
		// Expected remaining residency grows with how far the class's
		// hits are in the future; approximate with class distance.
		cost := 1.0 + float64(c)/numAgeClasses
		e.rank[c] = hitProb / cost
	}
	// Decay histories so the ranking tracks phase changes.
	for c := 0; c < numAgeClasses; c++ {
		e.hits[c] /= 2
		e.evs[c] /= 2
	}
}
