package repl

import "fmt"

// IPV implements insertion/promotion-vector replacement (Jiménez,
// MICRO'13): each set maintains an exact recency stack, and a static vector
// dictates (a) the stack position where fills are inserted and (b) the
// position a line at position p moves to when it hits. The genetic-searched
// vectors from the paper insert away from MRU and promote gradually, which
// buys scan resistance without any predictor state. IPV is a memoryless
// policy: Drishti's dynamic sampled cache can pick its dueling sets, but
// the per-core global predictor does not apply (Table 7's first row).
type IPV struct {
	sets, ways int
	// pos[set*ways+way] is the way's current recency-stack position
	// (0 = MRU, ways-1 = LRU).
	pos []uint8
	// insert is the stack position newly filled lines take.
	insert uint8
	// promote[p] is the new position for a line hitting at position p.
	promote []uint8
	// ctr drives the bimodal exception: 1-in-16 fills insert at MRU so a
	// long-lived line can bootstrap into the protected upper stack even
	// under a scan (the searched vectors encode the same escape hatch).
	ctr uint32
}

// NewIPV builds an IPV policy with a scan-resistant default vector:
// insertion near (but not at) the LRU end, promotion halfway toward MRU —
// the shape the MICRO'13 search consistently found.
func NewIPV(sets, ways int) *IPV {
	p := &IPV{sets: sets, ways: ways, pos: make([]uint8, sets*ways)}
	for s := 0; s < sets; s++ {
		for w := 0; w < ways; w++ {
			p.pos[s*ways+w] = uint8(w)
		}
	}
	p.insert = uint8(ways - ways/4 - 1)
	p.promote = make([]uint8, ways)
	for i := range p.promote {
		p.promote[i] = uint8(i / 2)
	}
	return p
}

// NewIPVWithVector builds an IPV policy with an explicit vector: promote[p]
// for hits at position p, and insert for fills. It panics on malformed
// vectors (this is a construction-time programming error).
func NewIPVWithVector(sets, ways int, promote []uint8, insert uint8) *IPV {
	if len(promote) != ways {
		panic(fmt.Sprintf("repl: IPV promotion vector has %d entries for %d ways", len(promote), ways))
	}
	for i, v := range promote {
		if int(v) >= ways || int(v) > i {
			panic(fmt.Sprintf("repl: IPV promotion %d→%d invalid (must move toward MRU, stay in range)", i, v))
		}
	}
	if int(insert) >= ways {
		panic("repl: IPV insertion position out of range")
	}
	p := NewIPV(sets, ways)
	copy(p.promote, promote)
	p.insert = insert
	return p
}

// Name implements Policy.
func (p *IPV) Name() string { return "ipv" }

// moveTo places way at stack position target, shifting lines between the
// way's old and new positions down by one.
func (p *IPV) moveTo(set, way int, target uint8) {
	base := set * p.ways
	old := p.pos[base+way]
	if old == target {
		return
	}
	if target > old {
		panic("repl: IPV demotion not supported")
	}
	for w := 0; w < p.ways; w++ {
		q := p.pos[base+w]
		if q >= target && q < old {
			p.pos[base+w] = q + 1
		}
	}
	p.pos[base+way] = target
}

// OnHit implements Policy.
func (p *IPV) OnHit(set, way int, _ Access) {
	p.moveTo(set, way, p.promote[p.pos[set*p.ways+way]])
}

// OnFill implements Policy.
func (p *IPV) OnFill(set, way int, _ Access) {
	ins := p.insert
	p.ctr++
	if p.ctr%16 == 0 {
		ins = 0
	}
	// The victim occupied the LRU position; first push it conceptually
	// out, then insert at the vector's position.
	base := set * p.ways
	old := p.pos[base+way]
	for w := 0; w < p.ways; w++ {
		q := p.pos[base+w]
		if q >= ins && q < old {
			p.pos[base+w] = q + 1
		}
	}
	p.pos[base+way] = ins
}

// OnEvict implements Policy.
func (p *IPV) OnEvict(int, int, uint64) {}

// Victim implements Policy: the line at the LRU stack position.
func (p *IPV) Victim(set int, _ Access) int {
	base := set * p.ways
	for w := 0; w < p.ways; w++ {
		if int(p.pos[base+w]) == p.ways-1 {
			return w
		}
	}
	// Unreachable for a well-formed stack; fall back defensively.
	return 0
}
