// Package repl defines the replacement-policy interface used by every cache
// level, plus the classic baseline policies (LRU, Random, SRRIP, BRRIP,
// DIP). State-of-the-art sampled-cache policies (Hawkeye, Mockingjay,
// SHiP++, Glider, CHROME) live in internal/policy/*; they implement the same
// interface.
package repl

import "drishti/internal/mem"

// Bypass is the sentinel Victim result meaning "do not cache this fill".
const Bypass = -1

// Access describes one cache access as seen by a replacement policy.
type Access struct {
	PC    uint64         // program counter (prefetches carry the trigger PC)
	Block uint64         // block address
	Core  int            // originating core
	Set   int            // set index within this cache (or slice)
	Type  mem.AccessType // load / rfo / prefetch / writeback
	Cycle uint64         // core cycle at issue (for interconnect arbitration)
}

// Policy makes per-set replacement decisions for one cache (or LLC slice).
// Implementations are single-threaded; the simulator serializes accesses.
type Policy interface {
	// Name identifies the policy for reports.
	Name() string
	// OnHit is called when a lookup hits way in set.
	OnHit(set, way int, a Access)
	// Victim selects the way to evict for an incoming fill, or Bypass.
	Victim(set int, a Access) int
	// OnFill is called after the fill is installed in way.
	OnFill(set, way int, a Access)
	// OnEvict is called when the line in way is evicted (before OnFill of
	// the replacing line). evictedBlock is the block being removed.
	OnEvict(set, way int, evictedBlock uint64)
}

// Observer is an optional extension: policies that train on every access to
// a set (sampled-cache policies) implement it to see accesses — including
// hits and misses — before the hit/victim path runs.
type Observer interface {
	// OnAccess observes an access to set before it is serviced.
	OnAccess(set int, a Access, hit bool)
}

// FillLatencier is an optional extension: policies whose fill path consults
// a remote predictor report the extra cycles the last fill decision cost
// (Drishti Section 4.1.3 — this is what makes Fig 11 reproducible).
type FillLatencier interface {
	// FillPenalty returns the interconnect cycles added to the last fill.
	FillPenalty() uint32
}

// --- LRU -------------------------------------------------------------------

// LRU is true least-recently-used replacement via per-line stamps. Stamps
// live in one flat sets×ways array so a Victim scan touches one cache line
// run instead of chasing a row pointer.
type LRU struct {
	ways   int
	stamps []uint64
	clock  uint64
}

// NewLRU builds an LRU policy for a sets×ways cache.
func NewLRU(sets, ways int) *LRU {
	return &LRU{ways: ways, stamps: make([]uint64, sets*ways)}
}

// Name implements Policy.
func (l *LRU) Name() string { return "lru" }

// OnHit implements Policy.
func (l *LRU) OnHit(set, way int, _ Access) { l.touch(set, way) }

// OnFill implements Policy.
func (l *LRU) OnFill(set, way int, _ Access) { l.touch(set, way) }

// OnEvict implements Policy.
func (l *LRU) OnEvict(int, int, uint64) {}

func (l *LRU) touch(set, way int) {
	l.clock++
	l.stamps[set*l.ways+way] = l.clock
}

// Victim implements Policy: the way with the oldest stamp.
func (l *LRU) Victim(set int, _ Access) int {
	row := l.stamps[set*l.ways : set*l.ways+l.ways]
	best, bestStamp := 0, row[0]
	for w := 1; w < len(row); w++ {
		if row[w] < bestStamp {
			best, bestStamp = w, row[w]
		}
	}
	return best
}

// --- Random ------------------------------------------------------------------

// Random evicts a pseudo-random way; the cheapest possible baseline.
type Random struct {
	ways  int
	state uint64
}

// NewRandom builds a Random policy with the given seed.
func NewRandom(ways int, seed uint64) *Random {
	return &Random{ways: ways, state: seed | 1}
}

// Name implements Policy.
func (r *Random) Name() string { return "random" }

// OnHit implements Policy.
func (r *Random) OnHit(int, int, Access) {}

// OnFill implements Policy.
func (r *Random) OnFill(int, int, Access) {}

// OnEvict implements Policy.
func (r *Random) OnEvict(int, int, uint64) {}

// Victim implements Policy.
func (r *Random) Victim(int, Access) int {
	r.state = r.state*6364136223846793005 + 1442695040888963407
	return int((r.state >> 33) % uint64(r.ways))
}

// --- SRRIP / BRRIP ----------------------------------------------------------

// rrpvMax is the 2-bit re-reference prediction value ceiling.
const rrpvMax = 3

// SRRIP implements static re-reference interval prediction (Jaleel et al.,
// ISCA'10): insert at long re-reference (rrpvMax-1), promote to 0 on hit.
type SRRIP struct {
	ways int
	rrpv []uint8 // flat sets×ways
}

// NewSRRIP builds an SRRIP policy for a sets×ways cache.
func NewSRRIP(sets, ways int) *SRRIP {
	s := &SRRIP{ways: ways, rrpv: make([]uint8, sets*ways)}
	for i := range s.rrpv {
		s.rrpv[i] = rrpvMax
	}
	return s
}

// Name implements Policy.
func (s *SRRIP) Name() string { return "srrip" }

// OnHit implements Policy.
func (s *SRRIP) OnHit(set, way int, _ Access) { s.rrpv[set*s.ways+way] = 0 }

// OnFill implements Policy.
func (s *SRRIP) OnFill(set, way int, _ Access) { s.rrpv[set*s.ways+way] = rrpvMax - 1 }

// OnEvict implements Policy.
func (s *SRRIP) OnEvict(set, way int, _ uint64) { s.rrpv[set*s.ways+way] = rrpvMax }

// Victim implements Policy: first way at rrpvMax, aging until one exists.
// The classic formulation loops scan-then-increment rounds; since every
// round adds exactly one to every way, the fixed point is reached directly
// by aging the whole row by rrpvMax minus its maximum, and the victim is
// the first way that held that maximum. One scan plus at most one
// increment pass, with the same final rrpv state and the same choice.
func (s *SRRIP) Victim(set int, _ Access) int {
	row := s.rrpv[set*s.ways : set*s.ways+s.ways]
	best, maxV := 0, row[0]
	for w := 1; w < len(row); w++ {
		if row[w] > maxV {
			best, maxV = w, row[w]
		}
	}
	if d := rrpvMax - maxV; d > 0 {
		for w := range row {
			row[w] += d
		}
	}
	return best
}

// BRRIP is bimodal RRIP: like SRRIP but inserts at distant re-reference
// most of the time, protecting the cache from scans.
type BRRIP struct {
	SRRIP
	ctr uint32
}

// NewBRRIP builds a BRRIP policy for a sets×ways cache.
func NewBRRIP(sets, ways int) *BRRIP {
	return &BRRIP{SRRIP: *NewSRRIP(sets, ways)}
}

// Name implements Policy.
func (b *BRRIP) Name() string { return "brrip" }

// OnFill implements Policy: 1-in-32 fills get rrpvMax-1, the rest rrpvMax.
func (b *BRRIP) OnFill(set, way int, _ Access) {
	b.ctr++
	if b.ctr%32 == 0 {
		b.rrpv[set*b.ways+way] = rrpvMax - 1
	} else {
		b.rrpv[set*b.ways+way] = rrpvMax
	}
}

// --- DIP ---------------------------------------------------------------------

// DIP implements the dynamic insertion policy (Qureshi et al., ISCA'07) via
// set dueling between LRU insertion and bimodal insertion.
type DIP struct {
	lru      *LRU
	sets     int
	ways     int
	leaderA  []bool // per-set: LRU-insertion leader
	leaderB  []bool // per-set: BIP-insertion leader
	psel     int32
	pselMax  int32
	bipCtr   uint32
	fillsLRU bool // scratch: decision for the current fill
}

// NewDIP builds a DIP policy with 32 leader sets per team.
func NewDIP(sets, ways int, seed uint64) *DIP {
	d := &DIP{
		lru:     NewLRU(sets, ways),
		sets:    sets,
		ways:    ways,
		leaderA: make([]bool, sets),
		leaderB: make([]bool, sets),
		pselMax: 1024,
		psel:    512,
	}
	// Deterministic leader selection: stride the sets. At most a quarter
	// of the sets lead (an eighth per team) so followers always exist.
	n := 32
	if n > sets/8 {
		n = sets / 8
	}
	if n == 0 {
		n = 1
	}
	for i := 0; i < n; i++ {
		d.leaderA[(i*sets)/n] = true
		if b := (i*sets)/n + 1; b < sets {
			d.leaderB[b] = true
		}
	}
	_ = seed
	return d
}

// Name implements Policy.
func (d *DIP) Name() string { return "dip" }

// OnHit implements Policy.
func (d *DIP) OnHit(set, way int, a Access) { d.lru.OnHit(set, way, a) }

// OnEvict implements Policy.
func (d *DIP) OnEvict(int, int, uint64) {}

// OnAccess implements Observer: misses in leader sets move PSEL.
func (d *DIP) OnAccess(set int, a Access, hit bool) {
	if hit || !a.Type.IsDemand() {
		return
	}
	if d.leaderA[set] && d.psel < d.pselMax {
		d.psel++ // LRU-insertion team missed → favor BIP
	} else if d.leaderB[set] && d.psel > 0 {
		d.psel--
	}
}

// Victim implements Policy.
func (d *DIP) Victim(set int, a Access) int { return d.lru.Victim(set, a) }

// SetLeaders replaces the dueling leader sets. Drishti's dynamic sampled
// cache uses this to duel on the highest-capacity-demand sets instead of a
// static random selection (the Table 7 applicability of Enhancement II to
// memoryless set-dueling policies).
func (d *DIP) SetLeaders(teamLRU, teamBIP []int) {
	d.leaderA = make([]bool, d.sets)
	d.leaderB = make([]bool, d.sets)
	for _, s := range teamLRU {
		d.leaderA[s] = true
	}
	for _, s := range teamBIP {
		d.leaderB[s] = true
	}
}

// OnFill implements Policy: LRU insertion (MRU position) or bimodal
// insertion (stay LRU except 1-in-32), chosen per set-dueling outcome.
func (d *DIP) OnFill(set, way int, a Access) {
	useLRU := d.psel < d.pselMax/2
	if d.leaderA[set] {
		useLRU = true
	} else if d.leaderB[set] {
		useLRU = false
	}
	if useLRU {
		d.lru.OnFill(set, way, a)
		return
	}
	d.bipCtr++
	if d.bipCtr%32 == 0 {
		d.lru.OnFill(set, way, a)
		return
	}
	// Bimodal: leave the fill at the LRU position (stamp 0 → evict next).
	d.lru.stamps[set*d.lru.ways+way] = 0
}
