package repl

import (
	"testing"
	"testing/quick"

	"drishti/internal/mem"
)

func TestLRUVictimIsOldest(t *testing.T) {
	l := NewLRU(1, 4)
	for w := 0; w < 4; w++ {
		l.OnFill(0, w, Access{})
	}
	l.OnHit(0, 0, Access{})
	l.OnHit(0, 2, Access{})
	if v := l.Victim(0, Access{}); v != 1 {
		t.Fatalf("victim %d, want 1 (oldest untouched)", v)
	}
}

func TestLRUPropertyVictimNeverMostRecent(t *testing.T) {
	check := func(ops []uint8) bool {
		l := NewLRU(2, 4)
		last := -1
		for _, op := range ops {
			way := int(op % 4)
			if op%2 == 0 {
				l.OnHit(0, way, Access{})
			} else {
				l.OnFill(0, way, Access{})
			}
			last = way
		}
		if last < 0 {
			return true
		}
		return l.Victim(0, Access{}) != last
	}
	if err := quick.Check(check, nil); err != nil {
		t.Fatal(err)
	}
}

func TestRandomVictimInRange(t *testing.T) {
	r := NewRandom(8, 1)
	seen := map[int]bool{}
	for i := 0; i < 1000; i++ {
		v := r.Victim(0, Access{})
		if v < 0 || v >= 8 {
			t.Fatalf("victim %d out of range", v)
		}
		seen[v] = true
	}
	if len(seen) < 8 {
		t.Fatalf("random victim only covered %d ways", len(seen))
	}
}

func TestSRRIPPromotionAndAging(t *testing.T) {
	s := NewSRRIP(1, 2)
	s.OnFill(0, 0, Access{})
	s.OnFill(0, 1, Access{})
	s.OnHit(0, 0, Access{}) // way 0 → rrpv 0
	// Way 1 sits at rrpv 2; victim search must age until it reaches 3.
	if v := s.Victim(0, Access{}); v != 1 {
		t.Fatalf("victim %d, want 1", v)
	}
}

func TestSRRIPInsertsNotMRU(t *testing.T) {
	s := NewSRRIP(1, 2)
	s.OnFill(0, 0, Access{})
	s.OnHit(0, 0, Access{}) // protect way 0
	s.OnFill(0, 1, Access{})
	if v := s.Victim(0, Access{}); v != 1 {
		t.Fatalf("fresh long-rereference fill should lose to a promoted line; victim %d", v)
	}
}

func TestBRRIPMostlyDistant(t *testing.T) {
	b := NewBRRIP(1, 4)
	distant := 0
	for i := 0; i < 320; i++ {
		b.OnFill(0, 0, Access{})
		if b.rrpv[0] == rrpvMax {
			distant++
		}
	}
	if distant < 280 {
		t.Fatalf("BRRIP inserted near too often: %d/320 distant", distant)
	}
}

func TestDIPDuel(t *testing.T) {
	d := NewDIP(64, 4, 1)
	// Misses in LRU-leader sets push PSEL toward BIP.
	var lruLeader int = -1
	for s := 0; s < 64; s++ {
		if d.leaderA[s] {
			lruLeader = s
			break
		}
	}
	if lruLeader < 0 {
		t.Fatal("no LRU leader sets")
	}
	before := d.psel
	d.OnAccess(lruLeader, Access{Type: mem.Load}, false)
	if d.psel != before+1 {
		t.Fatalf("PSEL did not move on leader miss: %d → %d", before, d.psel)
	}
	// Hits must not move PSEL.
	before = d.psel
	d.OnAccess(lruLeader, Access{Type: mem.Load}, true)
	if d.psel != before {
		t.Fatal("PSEL moved on hit")
	}
}

func TestDIPBimodalInsertsAtLRU(t *testing.T) {
	d := NewDIP(512, 2, 1)
	// Force BIP selection.
	d.psel = d.pselMax
	var follower int = -1
	for s := 0; s < 512; s++ {
		if !d.leaderA[s] && !d.leaderB[s] {
			follower = s
			break
		}
	}
	d.lru.OnFill(follower, 0, Access{})
	d.OnFill(follower, 1, Access{}) // bimodal: stays at LRU stamp 0
	if v := d.Victim(follower, Access{}); v != 1 {
		t.Fatalf("bimodal insert should be the next victim; got way %d", v)
	}
}

func TestPolicyNames(t *testing.T) {
	cases := []struct {
		p    Policy
		want string
	}{
		{NewLRU(2, 2), "lru"},
		{NewRandom(2, 1), "random"},
		{NewSRRIP(2, 2), "srrip"},
		{NewBRRIP(2, 2), "brrip"},
		{NewDIP(64, 2, 1), "dip"},
	}
	for _, c := range cases {
		if c.p.Name() != c.want {
			t.Fatalf("Name() = %q, want %q", c.p.Name(), c.want)
		}
	}
}

func TestVictimAlwaysValidProperty(t *testing.T) {
	// Whatever access history, every basic policy returns a way in range.
	policies := []Policy{NewLRU(4, 4), NewSRRIP(4, 4), NewBRRIP(4, 4), NewDIP(4, 4, 9), NewRandom(4, 3)}
	check := func(ops []uint16) bool {
		for _, p := range policies {
			for _, op := range ops {
				set := int(op) % 4
				way := int(op>>2) % 4
				switch op % 3 {
				case 0:
					p.OnFill(set, way, Access{})
				case 1:
					p.OnHit(set, way, Access{})
				default:
					p.OnEvict(set, way, 0)
				}
			}
			for set := 0; set < 4; set++ {
				if v := p.Victim(set, Access{}); v < 0 || v >= 4 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}
