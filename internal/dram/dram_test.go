package dram

import (
	"testing"
	"testing/quick"
)

func testConfig() Config {
	return Config{
		Channels:    2,
		BanksPerCh:  4,
		RowBytes:    4096,
		TRP:         50,
		TRCD:        50,
		TCAS:        50,
		BurstCycles: 5,
	}
}

func TestValidate(t *testing.T) {
	if err := testConfig().Validate(); err != nil {
		t.Fatal(err)
	}
	bad := testConfig()
	bad.Channels = 0
	if err := bad.Validate(); err == nil {
		t.Fatal("zero channels accepted")
	}
	bad = testConfig()
	bad.RowBytes = 3000
	if err := bad.Validate(); err == nil {
		t.Fatal("non-power-of-two row accepted")
	}
}

func TestDefaultConfigChannels(t *testing.T) {
	if DefaultConfig(16).Channels != 4 {
		t.Fatal("16 cores should get 4 channels")
	}
	if DefaultConfig(1).Channels != 1 {
		t.Fatal("minimum one channel")
	}
}

func TestColdAccessLatency(t *testing.T) {
	d := MustNew(testConfig())
	lat := d.Read(0, 0)
	// Closed bank: tRCD + tCAS + burst.
	if lat != 50+50+5 {
		t.Fatalf("cold read latency %d", lat)
	}
	if d.Stats.Reads != 1 || d.Stats.RowMisses != 1 {
		t.Fatalf("stats %+v", d.Stats)
	}
}

func TestRowHitCheaper(t *testing.T) {
	d := MustNew(testConfig())
	d.Read(0, 0)
	// Same row, much later (no queueing): row hit costs tCAS + burst.
	lat := d.Read(64*2, 10_000) // same channel? addr 128: blk 2 → ch 0, same row
	if lat != 50+5 {
		t.Fatalf("row hit latency %d", lat)
	}
	if d.Stats.RowHits != 1 {
		t.Fatalf("row hit not counted: %+v", d.Stats)
	}
}

func TestRowConflictCostsPrecharge(t *testing.T) {
	cfg := testConfig()
	d := MustNew(cfg)
	d.Read(0, 0)
	// Same channel & bank, different row. Row stride: channels × banks ×
	// rowBytes in block-contiguous layout.
	conflictAddr := uint64(cfg.RowBytes) * uint64(cfg.Channels) * uint64(cfg.BanksPerCh)
	lat := d.Read(conflictAddr, 10_000)
	if lat != 50+50+50+5 {
		t.Fatalf("row conflict latency %d", lat)
	}
}

func TestRowHitsPipelineAtBurstRate(t *testing.T) {
	d := MustNew(testConfig())
	d.Read(0, 0)
	// Back-to-back same-row reads at the same issue time: each occupies
	// the bank/bus for one burst, so latency grows by burst, not tCAS.
	lat1 := d.Read(64*2, 0)
	lat2 := d.Read(64*4, 0)
	if lat2 != lat1+5 {
		t.Fatalf("open-row streaming does not pipeline: %d then %d", lat1, lat2)
	}
}

func TestBankLevelParallelism(t *testing.T) {
	cfg := testConfig()
	d := MustNew(cfg)
	// Two cold accesses to DIFFERENT banks of one channel at once: the
	// second must not serialize behind the first's full array access.
	a := d.Read(0, 0)
	b := d.Read(uint64(cfg.RowBytes)*uint64(cfg.Channels), 0) // next bank
	if b >= a+50 {
		t.Fatalf("no bank parallelism: first=%d second=%d", a, b)
	}
}

func TestChannelInterleaving(t *testing.T) {
	d := MustNew(testConfig())
	// Consecutive blocks alternate channels.
	ch0, _, _ := d.route(0)
	ch1, _, _ := d.route(64)
	if ch0 == ch1 {
		t.Fatal("consecutive blocks on the same channel")
	}
}

func TestWritesAreCheapButConsumeBus(t *testing.T) {
	d := MustNew(testConfig())
	const writes = 30
	for i := 0; i < writes; i++ {
		d.Write(uint64(i*128), 0)
	}
	if d.Stats.Writes != writes {
		t.Fatalf("writes %d", d.Stats.Writes)
	}
	// The write bursts occupy the channel bus for writes×burst cycles; a
	// read whose data would be ready earlier waits for the bus.
	lat := d.Read(0, 0)
	if lat != writes*5+5 {
		t.Fatalf("read latency %d, want bus drain %d", lat, writes*5+5)
	}
}

func TestQueueDelaySignal(t *testing.T) {
	d := MustNew(testConfig())
	if d.QueueDelay(0, 0) != 0 {
		t.Fatal("idle DRAM reports pressure")
	}
	for i := 0; i < 50; i++ {
		d.Read(0, 0)
	}
	if d.QueueDelay(0, 0) == 0 {
		t.Fatal("loaded DRAM reports no pressure")
	}
}

func TestLatencyNonNegativeProperty(t *testing.T) {
	d := MustNew(testConfig())
	now := uint64(0)
	check := func(addr uint64, step uint16) bool {
		now += uint64(step)
		lat := d.Read(addr%(1<<30), now)
		return lat >= 55 // at least tCAS + burst
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestAvgReadLatencyAndReset(t *testing.T) {
	d := MustNew(testConfig())
	if d.AvgReadLatency() != 0 {
		t.Fatal("empty average")
	}
	d.Read(0, 0)
	if d.AvgReadLatency() != 105 {
		t.Fatalf("avg %v", d.AvgReadLatency())
	}
	d.ResetStats()
	if d.Stats.Reads != 0 {
		t.Fatal("reset failed")
	}
	// Row state survives reset (warmup semantics).
	if lat := d.Read(64*2, 100_000); lat != 55 {
		t.Fatalf("row state lost on reset: %d", lat)
	}
}
