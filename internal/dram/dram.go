// Package dram models main memory: channels, banks, an open-page row-buffer
// policy, and bandwidth occupancy — enough to reproduce miss-latency growth
// under load and the DRAM-channel sensitivity of Fig 22.
package dram

import "fmt"

// Config sizes the DRAM model. Timings are in core cycles (4 GHz core,
// tRP = tRCD = tCAS = 12.5 ns ⇒ 50 cycles each, per Table 4).
type Config struct {
	Channels    int
	BanksPerCh  int
	RowBytes    uint64 // row-buffer size (4 KB)
	TRP         uint32
	TRCD        uint32
	TCAS        uint32
	BurstCycles uint32 // data-transfer occupancy per 64B access
}

// DefaultConfig returns the paper's baseline DRAM for the given core count
// (one channel per four cores, 6400 MTPS).
func DefaultConfig(cores int) Config {
	ch := cores / 4
	if ch < 1 {
		ch = 1
	}
	return Config{
		Channels:   ch,
		BanksPerCh: 16, // DDR4: 4 bank groups × 4 banks
		RowBytes:   4096,
		TRP:        50,
		TRCD:       50,
		TCAS:       50,
		// 64 B / (6400 MT/s × 8 B/transfer) = 1.25 ns ≈ 5 core cycles.
		BurstCycles: 5,
	}
}

// Validate reports configuration errors.
func (c Config) Validate() error {
	if c.Channels <= 0 || c.BanksPerCh <= 0 {
		return fmt.Errorf("dram: channels and banks must be positive")
	}
	if c.RowBytes == 0 || c.RowBytes&(c.RowBytes-1) != 0 {
		return fmt.Errorf("dram: row size must be a power of two")
	}
	return nil
}

// Stats aggregates DRAM counters.
type Stats struct {
	Reads     uint64
	Writes    uint64
	RowHits   uint64
	RowMisses uint64
	QueueWait uint64 // total cycles requests waited on busy channels
	TotalLat  uint64 // total read latency, for averages
}

type bank struct {
	openRow   uint64
	rowValid  bool
	busyUntil uint64
}

type channel struct {
	banks     []bank
	busyUntil uint64 // data-bus occupancy
}

// DRAM is the memory model. It is not safe for concurrent use.
type DRAM struct {
	cfg   Config
	chans []channel
	Stats Stats

	// Shift/mask route when channel and bank counts are powers of two (every
	// default geometry): division-free, same results as the generic path.
	pow2     bool
	chMask   uint64
	rowShift uint // channel bits + blocks-per-row bits
	bkMask   uint64
	bkShift  uint
}

// New builds a DRAM model.
func New(cfg Config) (*DRAM, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	d := &DRAM{cfg: cfg, chans: make([]channel, cfg.Channels)}
	for i := range d.chans {
		d.chans[i].banks = make([]bank, cfg.BanksPerCh)
	}
	if isPow2(cfg.Channels) && isPow2(cfg.BanksPerCh) {
		d.pow2 = true
		d.chMask = uint64(cfg.Channels - 1)
		d.rowShift = log2(uint64(cfg.Channels)) + log2(cfg.RowBytes>>6)
		d.bkMask = uint64(cfg.BanksPerCh - 1)
		d.bkShift = log2(uint64(cfg.BanksPerCh))
	}
	return d, nil
}

func isPow2(n int) bool { return n > 0 && n&(n-1) == 0 }

func log2(v uint64) uint {
	var s uint
	for v > 1 {
		v >>= 1
		s++
	}
	return s
}

// MustNew is New that panics on configuration errors.
func MustNew(cfg Config) *DRAM {
	d, err := New(cfg)
	if err != nil {
		panic(err)
	}
	return d
}

// Config returns the model configuration.
func (d *DRAM) Config() Config { return d.cfg }

// route maps a byte address to (channel, bank, row). Channel bits come from
// low block-address bits for load balance; bank and row from higher bits.
func (d *DRAM) route(addr uint64) (ch, bk int, row uint64) {
	blk := addr >> 6
	if d.pow2 {
		rowID := blk >> d.rowShift
		return int(blk & d.chMask), int(rowID & d.bkMask), rowID >> d.bkShift
	}
	ch = int(blk % uint64(d.cfg.Channels))
	perRow := d.cfg.RowBytes >> 6 // blocks per row
	rowID := blk / uint64(d.cfg.Channels) / perRow
	bk = int(rowID % uint64(d.cfg.BanksPerCh))
	row = rowID / uint64(d.cfg.BanksPerCh)
	return ch, bk, row
}

// Read services a demand/prefetch fill at time now and returns its latency.
// Open-page policy: a row-buffer hit costs tCAS, a closed bank tRCD+tCAS, a
// conflict tRP+tRCD+tCAS; plus queueing behind the channel's data bus
// (FR-FCFS approximated by the open-row reuse the routing already favors).
func (d *DRAM) Read(addr uint64, now uint64) uint32 {
	lat := d.access(addr, now)
	d.Stats.Reads++
	d.Stats.TotalLat += uint64(lat)
	return lat
}

// Write retires a writeback at time now. Writes are posted and drained
// opportunistically by the FR-FCFS scheduler (write watermark 7/8 per
// Table 4): the model charges the data-bus burst — the bandwidth writes
// genuinely consume — but not a synchronous bank occupancy, since the
// controller schedules write bursts into idle bank slots.
func (d *DRAM) Write(addr uint64, now uint64) {
	chI, bkI, row := d.route(addr)
	c := &d.chans[chI]
	start := now
	if c.busyUntil > start {
		start = c.busyUntil
	}
	c.busyUntil = start + uint64(d.cfg.BurstCycles)
	// The write still lands in a row: model the row-buffer perturbation so
	// read streams interleaved with writebacks lose some locality.
	b := &c.banks[bkI]
	if !b.rowValid || b.openRow != row {
		d.Stats.RowMisses++
	} else {
		d.Stats.RowHits++
	}
	b.openRow, b.rowValid = row, true
	d.Stats.Writes++
}

func (d *DRAM) access(addr uint64, now uint64) uint32 {
	chI, bkI, row := d.route(addr)
	c := &d.chans[chI]
	b := &c.banks[bkI]

	// Bank-level parallelism: the request waits only for its own bank;
	// the channel data bus is occupied at transfer time, after the bank's
	// array access completes.
	start := now
	if b.busyUntil > start {
		d.Stats.QueueWait += b.busyUntil - start
		start = b.busyUntil
	}

	// Latency vs occupancy: tCAS/tRCD/tRP determine when the data arrives,
	// but column reads from an open row pipeline at burst granularity —
	// the bank is only serialized across requests by activates/precharges.
	var lat, occupy uint32
	switch {
	case b.rowValid && b.openRow == row:
		lat = d.cfg.TCAS
		occupy = d.cfg.BurstCycles
		d.Stats.RowHits++
	case !b.rowValid:
		lat = d.cfg.TRCD + d.cfg.TCAS
		occupy = d.cfg.TRCD + d.cfg.BurstCycles
		d.Stats.RowMisses++
	default:
		lat = d.cfg.TRP + d.cfg.TRCD + d.cfg.TCAS
		occupy = d.cfg.TRP + d.cfg.TRCD + d.cfg.BurstCycles
		d.Stats.RowMisses++
	}
	b.openRow, b.rowValid = row, true

	dataAt := start + uint64(lat)
	if c.busyUntil > dataAt {
		d.Stats.QueueWait += c.busyUntil - dataAt
		dataAt = c.busyUntil
	}
	done := dataAt + uint64(d.cfg.BurstCycles)
	c.busyUntil = done
	b.busyUntil = start + uint64(occupy)

	return uint32(done - now)
}

// QueueDelay estimates how long a request to addr issued at now would wait
// before service begins — the backpressure signal prefetch throttling uses.
func (d *DRAM) QueueDelay(addr uint64, now uint64) uint64 {
	chI, bkI, _ := d.route(addr)
	c := &d.chans[chI]
	wait := uint64(0)
	if b := c.banks[bkI].busyUntil; b > now {
		wait = b - now
	}
	if c.busyUntil > now && c.busyUntil-now > wait {
		wait = c.busyUntil - now
	}
	return wait
}

// AvgReadLatency returns the mean observed read latency in cycles.
func (d *DRAM) AvgReadLatency() float64 {
	if d.Stats.Reads == 0 {
		return 0
	}
	return float64(d.Stats.TotalLat) / float64(d.Stats.Reads)
}

// ResetStats clears counters (end of warmup) without closing rows.
func (d *DRAM) ResetStats() { d.Stats = Stats{} }
