package api

import (
	"bytes"
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"testing"
	"time"

	"drishti/internal/obs/trace"
	"drishti/internal/sim"
)

var update = flag.Bool("update", false, "rewrite the golden wire-format files")

// encodeWire renders v exactly the way the service's writeJSON does (two-
// space indent, trailing newline), so the golden files pin the bytes a /v1
// client actually receives.
func encodeWire(t *testing.T, v any) []byte {
	t.Helper()
	var buf bytes.Buffer
	enc := json.NewEncoder(&buf)
	enc.SetIndent("", "  ")
	if err := enc.Encode(v); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func checkGolden(t *testing.T, name string, got []byte) {
	t.Helper()
	path := filepath.Join("testdata", name)
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden file (run go test ./internal/serve/api -update): %v", err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("%s drifted from the golden wire format.\n--- got ---\n%s--- want ---\n%s"+
			"A deliberate schema change must bump api.Version and regenerate with -update.",
			name, got, want)
	}
}

// TestGoldenWireFormat pins the exact /v1 response bytes for every body the
// job service emits. A refactor of the api package (field rename, tag change,
// reordering) that alters the wire format fails here before any client sees
// it; requests without apiVersion must keep producing the pre-versioning
// bytes.
func TestGoldenWireFormat(t *testing.T) {
	started := time.Date(2026, 8, 5, 12, 0, 1, 0, time.UTC)
	finished := time.Date(2026, 8, 5, 12, 0, 2, 0, time.UTC)

	req := JobRequest{
		Cores:        2,
		Scale:        8,
		Instructions: 20_000,
		Warmup:       5_000,
		Seed:         1,
		Policies:     []PolicyRequest{{Name: "lru"}, {Name: "mockingjay", Drishti: true}},
		Workloads:    []string{"mcf", "hetero"},
	}

	view := JobView{
		ID:         "job-000001",
		Status:     StatusDone,
		Attempts:   1,
		EnqueuedAt: time.Date(2026, 8, 5, 12, 0, 0, 0, time.UTC),
		StartedAt:  &started,
		FinishedAt: &finished,
		Request:    req,
		TraceID:    "0123456789abcdef0123456789abcdef",
	}
	checkGolden(t, "job_view.golden.json", encodeWire(t, view))

	// A tracing-off job view must not leak an empty traceId field.
	offView := view
	offView.TraceID = ""
	if bytes.Contains(encodeWire(t, offView), []byte("traceId")) {
		t.Error("empty TraceID leaked into the wire format")
	}

	// An unversioned request must render byte-identically with and without
	// the APIVersion field in the struct — omitempty keeps the wire clean.
	if bytes.Contains(encodeWire(t, req), []byte("apiVersion")) {
		t.Error("zero APIVersion leaked into the wire format; unversioned clients would see a new field")
	}

	result := JobResult{
		Cells: []CellResult{
			{
				Policy:   "lru",
				Workload: "mcf",
				Mix:      "hom-mcf",
				IPCSum:   1.25,
				MPKI:     12.5,
				WPKI:     3.125,
				APKI:     20.0625,
				Result:   &sim.Result{PolicyName: "lru", Cores: 2, Budget: map[string]int{"lru": 0}},
			},
			{
				Policy:    "mockingjay+drishti",
				Workload:  "mcf",
				Mix:       "hom-mcf",
				FromStore: true,
			},
		},
		StoreHits:   1,
		StoreMisses: 1,
		ElapsedMS:   1000,
	}
	checkGolden(t, "job_result.golden.json", encodeWire(t, result))

	checkGolden(t, "error.golden.json", encodeWire(t, Error{Error: "no such job"}))

	fleet := FleetStatus{
		APIVersion: Version,
		Workers: []WorkerStatus{
			{ID: "w001-node-a", Name: "node-a", Capacity: 4, ActiveLeases: 2, CellsCompleted: 7, LastBeatMS: 150},
		},
		PendingCells:   3,
		ActiveLeases:   2,
		LeasesExpired:  1,
		CellsCompleted: 7,
		CellsRetried:   1,
		CellsLocal:     0,
		CellsResolved:  9,
		CellsFromStore: 2,
		StoreHitRatio:  2.0 / 9.0,
		LeaseLatency:   LatencyStats{Count: 7, Mean: 812.5, P50: 750, P99: 1900},
		BatchLaneCount: 4,
		Coordinators:   []string{"http://coord-a:8411", "http://coord-b:8411"},
		CellsForwarded: 5,
		CellsRemote:    4,
	}
	checkGolden(t, "fleet_status.golden.json", encodeWire(t, fleet))

	tv := TraceView{
		TraceID: "0123456789abcdef0123456789abcdef",
		Spans: []trace.Span{
			{
				TraceID:     "0123456789abcdef0123456789abcdef",
				SpanID:      "00000000000000aa",
				Name:        "job",
				Node:        "served",
				StartUnixNS: 1754390401000000000,
				DurationNS:  1000000000,
				Attrs:       map[string]string{"status": "done"},
			},
			{
				TraceID:     "0123456789abcdef0123456789abcdef",
				SpanID:      "00000000000000bb",
				ParentID:    "00000000000000aa",
				Name:        "lane",
				Node:        "w001-node-a",
				StartUnixNS: 1754390401200000000,
				DurationNS:  650000000,
			},
		},
	}
	checkGolden(t, "trace_view.golden.json", encodeWire(t, tv))
}

// TestGoldenWireFormatV3 pins the bodies the v3 schema added: the
// multi-tenant request fields, the streaming result events (compact
// NDJSON, one event per line, exactly as the /results endpoint frames
// them), and the coordinator forwarding messages.
func TestGoldenWireFormatV3(t *testing.T) {
	req := JobRequest{
		APIVersion: Version,
		Cores:      2,
		Policies:   []PolicyRequest{{Name: "lru"}},
		Workloads:  []string{"mcf"},
		Tenant:     "team-a",
		Priority:   PriorityInteractive,
	}
	checkGolden(t, "job_request_v3.golden.json", encodeWire(t, req))

	// A request without the v3 fields must render byte-identically to a
	// v2 request — omitempty keeps old clients' wire format untouched.
	v2 := req
	v2.APIVersion = 2
	v2.Tenant, v2.Priority = "", ""
	for _, field := range []string{"tenant", "priority"} {
		if bytes.Contains(encodeWire(t, v2), []byte(field)) {
			t.Errorf("empty %s leaked into the v2 wire format", field)
		}
	}

	// The streaming endpoint emits compact one-line events, not the
	// indented framing of the buffered endpoints.
	events := []ResultEvent{
		{Event: EventCell, Index: 1, Cell: &CellResult{
			Policy: "lru", Workload: "mcf", Mix: "hom-mcf", FromStore: true, IPCSum: 1.25, MPKI: 12.5, WPKI: 3.125, APKI: 20.0625,
		}},
		{Event: EventDone, Status: StatusDone, Cells: 2, StoreHits: 1, StoreMisses: 1, ElapsedMS: 1000},
	}
	var stream bytes.Buffer
	for _, ev := range events {
		line, err := json.Marshal(ev)
		if err != nil {
			t.Fatal(err)
		}
		stream.Write(line)
		stream.WriteByte('\n')
	}
	checkGolden(t, "result_events.golden.ndjson", stream.Bytes())

	// Every pinned stream line must survive a strict round trip — the
	// same DecodeStrict gate loadgen and tests apply at the boundary.
	for _, line := range bytes.Split(bytes.TrimSpace(stream.Bytes()), []byte("\n")) {
		var ev ResultEvent
		if err := DecodeStrict(bytes.NewReader(line), &ev); err != nil {
			t.Errorf("pinned stream line fails DecodeStrict: %v\n%s", err, line)
		}
	}

	fwd := ForwardCellsRequest{
		APIVersion: Version,
		Origin:     "http://coord-a:8411",
		JobID:      "j000001-deadbeef",
		TraceID:    "0123456789abcdef0123456789abcdef",
		SpanID:     "00000000000000aa",
		Cells: []CellSpec{{
			Index:         1,
			Key:           "cfg|mix",
			Request:       JobRequest{Cores: 2, Policies: []PolicyRequest{{Name: "lru"}}, Workloads: []string{"mcf"}},
			WorkloadIndex: 0,
			PolicyIndex:   0,
		}},
	}
	checkGolden(t, "forward_cells.golden.json", encodeWire(t, fwd))

	done := ForwardCompleteRequest{
		APIVersion: Version,
		Owner:      "http://coord-b:8411",
		JobID:      "j000001-deadbeef",
		Index:      1,
		FromStore:  false,
		Result:     &sim.Result{PolicyName: "lru", Cores: 2, Budget: map[string]int{"lru": 0}},
	}
	checkGolden(t, "forward_complete.golden.json", encodeWire(t, done))
}
