package api

import (
	"errors"

	"drishti/internal/obs/trace"
	"drishti/internal/sim"
)

// ErrNoWorkers is returned by a fleet distributor when no live workers are
// registered; the job service reacts by executing the job locally, so a
// coordinator with an empty fleet behaves exactly like a single node.
var ErrNoWorkers = errors.New("fleet: no live workers registered")

// RegisterRequest is POST /v1/fleet/register: a worker joining the fleet.
// APIVersion is mandatory here (not defaulted) — a worker binary built
// against another schema generation must be refused at the door, before it
// can mis-decode a lease.
type RegisterRequest struct {
	APIVersion int    `json:"apiVersion"`
	Name       string `json:"name"`     // human-readable worker name (hostname by default)
	Capacity   int    `json:"capacity"` // max concurrent cells this worker runs
}

// RegisterResponse assigns the worker its identity and the fleet's timing
// contract. All durations are milliseconds on the wire.
type RegisterResponse struct {
	APIVersion  int    `json:"apiVersion"`
	WorkerID    string `json:"workerId"`
	LeaseTTLMS  int64  `json:"leaseTtlMs"`  // complete within this or the cell is reassigned
	HeartbeatMS int64  `json:"heartbeatMs"` // heartbeat at least this often
	PollMS      int64  `json:"pollMs"`      // suggested idle poll interval
}

// HeartbeatRequest is POST /v1/fleet/heartbeat. A worker that misses
// heartbeats for the coordinator's worker TTL is declared dead and its
// leases are reassigned; the worker itself gets 410 Gone and re-registers.
type HeartbeatRequest struct {
	WorkerID string `json:"workerId"`
}

// LeaseRequest is POST /v1/fleet/lease: a worker asking for up to Max
// cells. Requests beyond the worker's registered capacity are answered
// with 429 + Retry-After (the same backpressure contract as job
// submission).
type LeaseRequest struct {
	WorkerID string `json:"workerId"`
	Max      int    `json:"max"`
}

// CellSpec identifies one sweep cell of a job. Request plus the two
// indices fully determine the simulation (JobRequest.Cell); Key is the
// coordinator-computed store address, which the worker re-derives and
// verifies so coordinator/worker schema drift fails loudly.
type CellSpec struct {
	Index         int        `json:"index"` // position in the job's deterministic cell order
	Key           string     `json:"key"`
	Request       JobRequest `json:"request"`
	WorkloadIndex int        `json:"workloadIndex"`
	PolicyIndex   int        `json:"policyIndex"`
}

// Lease is one leased cell: the worker must Complete it before
// DeadlineUnixMS or the coordinator reassigns it.
type Lease struct {
	ID             string   `json:"id"`
	JobID          string   `json:"jobId"`
	Cell           CellSpec `json:"cell"`
	DeadlineUnixMS int64    `json:"deadlineUnixMs"`
	// TraceID/SpanID carry the coordinator's trace context (the lease
	// span) so worker-side spans join the job's tree. Both empty when
	// tracing is off; workers then skip tracing entirely.
	TraceID string `json:"traceId,omitempty"`
	SpanID  string `json:"spanId,omitempty"`
}

// LeaseResponse carries zero or more leases; empty means no work is
// pending and the worker should sleep one poll interval.
type LeaseResponse struct {
	Leases []Lease `json:"leases"`
}

// CompleteRequest is POST /v1/fleet/complete: the outcome of one lease.
// Exactly one of Result or Error is set.
type CompleteRequest struct {
	WorkerID  string      `json:"workerId"`
	LeaseID   string      `json:"leaseId"`
	FromStore bool        `json:"fromStore"` // served from the worker's (shared) store
	Result    *sim.Result `json:"result,omitempty"`
	Error     string      `json:"error,omitempty"`
	// Spans are the worker-side spans of this lease's group, shipped on
	// the group's first completion so the coordinator holds the full
	// trace tree. Empty when the lease carried no trace context.
	Spans []trace.Span `json:"spans,omitempty"`
}

// CompleteResponse acknowledges a completion. Accepted=false (HTTP 409)
// means the lease had already expired or the job is gone; the worker
// discards the result — the cell has been or will be re-run elsewhere.
type CompleteResponse struct {
	Accepted bool `json:"accepted"`
}

// ForwardCellsRequest is POST /v1/fleet/cells (v3): a coordinator handing
// sweep cells it does not own to the owning peer in a multi-coordinator
// fleet. Ownership is consistent hashing of each cell's CellKey over the
// coordinator ring, so both sides independently agree who owns what.
// APIVersion is mandatory and exact, like worker registration: peers
// running different schema generations must not exchange cells.
type ForwardCellsRequest struct {
	APIVersion int `json:"apiVersion"`
	// Origin is the forwarding coordinator's advertised base URL — the
	// callback target for ForwardCompleteRequest.
	Origin string `json:"origin"`
	// JobID is the origin's job the cells belong to.
	JobID string `json:"jobId"`
	// TraceID/SpanID carry the origin job's trace context so owner-side
	// lease spans join the same tree. Empty when tracing is off.
	TraceID string     `json:"traceId,omitempty"`
	SpanID  string     `json:"spanId,omitempty"`
	Cells   []CellSpec `json:"cells"`
}

// ForwardCellsResponse acknowledges a forward. Accepted=false (with a
// reason) means the owner cannot take the cells — typically it has no
// live workers — and the origin must run them itself.
type ForwardCellsResponse struct {
	Accepted bool   `json:"accepted"`
	Reason   string `json:"reason,omitempty"`
	Queued   int    `json:"queued,omitempty"`
}

// ForwardCompleteRequest is POST /v1/fleet/cells/complete (v3): the owner
// coordinator reporting one forwarded cell's outcome back to its origin.
// Exactly one of Result or Error is set. Idempotent on the origin: a
// duplicate (JobID, Index) completion is acknowledged and dropped.
type ForwardCompleteRequest struct {
	APIVersion int         `json:"apiVersion"`
	Owner      string      `json:"owner"` // reporting coordinator's base URL, for logs
	JobID      string      `json:"jobId"`
	Index      int         `json:"index"`
	FromStore  bool        `json:"fromStore"`
	Result     *sim.Result `json:"result,omitempty"`
	Error      string      `json:"error,omitempty"`
}

// ForwardCompleteResponse acknowledges a forwarded completion.
// Accepted=false means the origin no longer wants it (job settled or
// cell re-owned and resolved); the owner drops its copy.
type ForwardCompleteResponse struct {
	Accepted bool `json:"accepted"`
}

// WorkerStatus is one worker's row in GET /v1/fleet.
type WorkerStatus struct {
	ID             string `json:"id"`
	Name           string `json:"name"`
	Capacity       int    `json:"capacity"`
	ActiveLeases   int    `json:"activeLeases"`
	CellsCompleted uint64 `json:"cellsCompleted"`
	LastBeatMS     int64  `json:"lastBeatMs"` // ms since last heartbeat
}

// FleetStatus is GET /v1/fleet: the coordinator's live view of the fleet.
type FleetStatus struct {
	APIVersion     int            `json:"apiVersion"`
	Workers        []WorkerStatus `json:"workers"`
	PendingCells   int            `json:"pendingCells"`
	ActiveLeases   int            `json:"activeLeases"`
	LeasesExpired  uint64         `json:"leasesExpired"`
	CellsCompleted uint64         `json:"cellsCompleted"`
	CellsRetried   uint64         `json:"cellsRetried"`
	CellsLocal     uint64         `json:"cellsLocal"`     // run by the coordinator's local fallback
	CellsResolved  uint64         `json:"cellsResolved"`  // every cell the fleet has settled, however it was served
	CellsFromStore uint64         `json:"cellsFromStore"` // fleet-wide store hits (coordinator + workers)
	StoreHitRatio  float64        `json:"storeHitRatio"`  // CellsFromStore / CellsResolved

	// LeaseLatency summarizes the fleet_lease_latency_ms histogram:
	// grant→complete wall time of accepted completions.
	LeaseLatency LatencyStats `json:"leaseLatency"`
	// BatchLaneCount is the worker_batch_lane_count gauge: the largest
	// same-group cell pack in the most recent lease grant.
	BatchLaneCount int `json:"batchLaneCount"`

	// Multi-coordinator fleets (v3). Coordinators is the consistent-hash
	// ring membership (empty on a single-coordinator fleet); the counters
	// track cells handed to peers, cells executed here on behalf of
	// peers, and forwarded cells this coordinator reclaimed after the
	// owner went silent.
	Coordinators    []string `json:"coordinators,omitempty"`
	CellsForwarded  uint64   `json:"cellsForwarded"`
	CellsRemote     uint64   `json:"cellsRemote"`
	ForwardsReowned uint64   `json:"forwardsReowned"`
}

// LatencyStats is a histogram summary in milliseconds.
type LatencyStats struct {
	Count uint64  `json:"count"`
	Mean  float64 `json:"mean"`
	P50   float64 `json:"p50"`
	P99   float64 `json:"p99"`
}
