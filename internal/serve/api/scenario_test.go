package api

import (
	"strings"
	"testing"

	"drishti/internal/scenario"
)

func scenarioSpec() *scenario.Spec {
	return &scenario.Spec{
		Version: scenario.Version,
		Name:    "api-check",
		Seed:    1,
		Machine: scenario.MachineSpec{Cores: 2, Scale: 8, Instructions: 20_000, Warmup: 5_000},
		Clients: []scenario.ClientSpec{
			{Name: "all", Workload: scenario.SourceSpec{Preset: "605.mcf_s-1554B"}},
		},
		Sweep: scenario.SweepSpec{
			Policies: []scenario.PolicySpec{{Name: "lru"}, {Name: "srrip"}},
			Configs:  []scenario.ConfigSpec{{Name: "a"}, {Name: "b", Cores: 4}},
		},
	}
}

func scenarioRequest() JobRequest {
	return JobRequest{Scenario: scenarioSpec()}
}

func TestScenarioRequestValidates(t *testing.T) {
	r := scenarioRequest()
	if err := r.Validate(); err != nil {
		t.Fatal(err)
	}
	// WithDefaults must leave the request untouched: the spec carries its
	// own defaults, and the echo has to be byte-identical to the submission.
	if got := r.WithDefaults(); got.Cores != 0 || got.Instructions != 0 {
		t.Errorf("WithDefaults() stamped sweep fields onto a scenario request: %+v", got)
	}

	both := scenarioRequest()
	both.Cores = 2
	if err := both.Validate(); err == nil || !strings.Contains(err.Error(), "must not also") {
		t.Errorf("scenario+cores validated: %v", err)
	}
	both = scenarioRequest()
	both.Workloads = []string{"mcf"}
	if err := both.Validate(); err == nil {
		t.Error("scenario+workloads validated")
	}

	bad := scenarioRequest()
	bad.Scenario.Sweep.Policies[0].Name = "nosuch"
	if err := bad.Validate(); err == nil || !strings.Contains(err.Error(), "known policies") {
		t.Errorf("bad scenario policy: %v", err)
	}

	// File traces have no anchor on the wire and must be rejected at
	// validation, not at execution.
	file := scenarioRequest()
	file.Scenario.Clients[0].Workload = scenario.SourceSpec{Trace: &scenario.TraceSpec{File: "x.csv"}}
	if err := file.Validate(); err == nil || !strings.Contains(err.Error(), "inline the csv") {
		t.Errorf("file trace validated on the wire: %v", err)
	}
}

func TestScenarioGridAndCells(t *testing.T) {
	r := scenarioRequest()
	nw, np, err := r.Grid()
	if err != nil {
		t.Fatal(err)
	}
	if nw != 2 || np != 2 {
		t.Fatalf("grid = %dx%d, want 2x2", nw, np)
	}
	if got := r.WorkloadName(0); got != "api-check/a" {
		t.Errorf("WorkloadName(0) = %q", got)
	}
	if got := r.WorkloadName(1); got != "api-check/b" {
		t.Errorf("WorkloadName(1) = %q", got)
	}
	mixes, err := r.Mixes()
	if err != nil {
		t.Fatal(err)
	}
	if len(mixes) != 2 || mixes[0].Cores() != 2 || mixes[1].Cores() != 4 {
		t.Fatalf("mixes resolved wrong: %d entries", len(mixes))
	}
	for wi := 0; wi < nw; wi++ {
		for pi := 0; pi < np; pi++ {
			cfg, mix, err := r.Cell(wi, pi)
			if err != nil {
				t.Fatal(err)
			}
			if cfg.Policy.Name != r.Scenario.Sweep.Policies[pi].Name {
				t.Errorf("cell (%d,%d) policy = %s", wi, pi, cfg.Policy.Name)
			}
			if cfg.Cores != mix.Cores() {
				t.Errorf("cell (%d,%d): cfg %d cores, mix %d", wi, pi, cfg.Cores, mix.Cores())
			}
		}
	}
	if _, _, err := r.Cell(2, 0); err == nil {
		t.Error("out-of-range cell resolved")
	}
}

// TestScenarioCellKeyMatchesPlainRequest pins the dedup identity at the
// API layer: a single-preset scenario resolves to the exact CellKey a
// plain cores/workloads request produces, so the store serves either one
// from the other's results.
func TestScenarioCellKeyMatchesPlainRequest(t *testing.T) {
	sr := scenarioRequest()
	sr.Scenario.Sweep.Configs = nil // single base run

	plain := JobRequest{
		Cores:        2,
		Scale:        8,
		Instructions: 20_000,
		Warmup:       5_000,
		Seed:         1,
		Policies:     []PolicyRequest{{Name: "lru"}, {Name: "srrip"}},
		Workloads:    []string{"605.mcf_s-1554B"},
	}.WithDefaults()

	for pi := 0; pi < 2; pi++ {
		scfg, smix, err := sr.Cell(0, pi)
		if err != nil {
			t.Fatal(err)
		}
		pcfg, pmix, err := plain.Cell(0, pi)
		if err != nil {
			t.Fatal(err)
		}
		if got, want := CellKey(scfg, smix), CellKey(pcfg, pmix); got != want {
			t.Errorf("policy %d cell key diverged:\n scenario %s\n plain    %s", pi, got, want)
		}
	}
}

// TestScenarioGoldenWire pins the wire bytes of a scenario-bearing job
// request: the scenario field is additive (apiVersion stays 2) and its
// schema is the scenario package's golden-pinned spec schema.
func TestScenarioGoldenWire(t *testing.T) {
	req := scenarioRequest()
	req.APIVersion = Version
	checkGolden(t, "job_request_scenario.golden.json", encodeWire(t, req))

	// A plain request must not grow a scenario field.
	if got := encodeWire(t, sweepRequest()); strings.Contains(string(got), "scenario") {
		t.Error("nil scenario leaked into the plain-request wire format")
	}

	// Strict decoding round-trips the golden bytes.
	var back JobRequest
	if err := DecodeStrict(strings.NewReader(string(encodeWire(t, req))), &back); err != nil {
		t.Fatal(err)
	}
	if back.Scenario == nil || back.Scenario.Name != "api-check" {
		t.Errorf("round-trip lost the scenario: %+v", back.Scenario)
	}
}
