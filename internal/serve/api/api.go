// Package api is the versioned, self-describing wire schema of the drishti
// job service — the single definition of every JSON body that crosses a
// process boundary, consumed by the HTTP front end (internal/serve), the
// fleet coordinator and workers (internal/dist), and any external client.
//
// Keeping the schema in one package is what stops the wire format from
// drifting: the coordinator marshals exactly the structs the worker
// unmarshals, defaults are applied in exactly one place (WithDefaults), and
// every decoder rejects unknown fields (DecodeStrict) so a field added on
// one side cannot be silently dropped by the other.
//
// Versioning: Version is the schema generation. Requests may carry an
// explicit APIVersion; zero means "current" so that pre-versioning clients
// keep working, and WithDefaults deliberately does not stamp the field — a
// request echoed back by the service carries exactly the version the client
// sent, keeping /v1 responses byte-compatible with the unversioned wire
// format (pinned by the golden-file test in this package).
//
// # Migrating from v2 to v3
//
// v3 is a strict superset of v2 for job submission: every valid v2
// JobRequest (apiVersion 2 or 0) is still accepted, decodes to the same
// sweep, and echoes back byte-identically — the new fields are omitted
// when unset. Fleet messages (register/lease/complete and the new forward
// endpoints) require an exact version match as before, so workers must be
// rebuilt when the coordinator is upgraded. What v3 adds:
//
//   - Streamed per-cell results: GET /v1/jobs/{id}/results serves chunked
//     NDJSON (Content-Type application/x-ndjson), one ResultEvent per
//     line — "cell" events as each sweep cell resolves, in completion
//     order, then exactly one "done" event with the job's summary. The
//     buffered GET /v1/jobs/{id}/result endpoint is unchanged; clients
//     that want whole-sweep bytes keep using it.
//   - Multi-tenant queueing: JobRequest.Tenant names the submitting
//     tenant for per-tenant quota enforcement (429 + Retry-After once the
//     tenant's active-job quota is reached), and JobRequest.Priority
//     ("interactive" | "normal" | "batch", default "normal") selects the
//     queue class — higher classes are always dispatched first, FIFO
//     within a class.
//   - Stateless multi-coordinator fleets: coordinators forward sweep
//     cells they do not own (consistent hashing over CellKey) to the
//     owning peer via ForwardCellsRequest and get results back via
//     ForwardCompleteRequest; FleetStatus reports the coordinator ring
//     and forwarding counters.
package api

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"strings"
	"time"

	"drishti/internal/obs/trace"
	"drishti/internal/policies"
	"drishti/internal/scenario"
	"drishti/internal/sim"
	"drishti/internal/workload"
)

// Version is the current wire-schema generation. Fleet messages carry it
// explicitly so a coordinator refuses workers built against another schema
// instead of mis-decoding their payloads.
//
// v2 added distributed tracing: JobView.TraceID, trace context on Lease,
// completed spans on CompleteRequest, and lease-latency/batch-lane
// telemetry on FleetStatus.
//
// v3 added streamed per-cell results (ResultEvent NDJSON on
// GET /v1/jobs/{id}/results), per-tenant quota and priority classes on
// JobRequest, and the multi-coordinator forwarding messages
// (ForwardCellsRequest/ForwardCompleteRequest). Job submission remains
// backward compatible: requests carrying apiVersion 2 (or 0) are still
// accepted.
const Version = 3

// CompatVersions lists the request schema generations Validate accepts
// for job submission. Fleet traffic still requires an exact match.
var CompatVersions = []int{2, Version}

// Priority classes for JobRequest.Priority. Higher classes are always
// dispatched before lower ones; jobs within a class run FIFO. An empty
// Priority means PriorityNormal.
const (
	PriorityInteractive = "interactive"
	PriorityNormal      = "normal"
	PriorityBatch       = "batch"
)

// PriorityRank orders priority classes for the queue: 0 is dispatched
// first. Unknown strings rank as normal (Validate rejects them at the
// boundary; internal callers get a sane default).
func PriorityRank(p string) int {
	switch p {
	case PriorityInteractive:
		return 0
	case PriorityBatch:
		return 2
	default:
		return 1
	}
}

// Status is a job's lifecycle state.
type Status string

const (
	StatusQueued    Status = "queued"
	StatusRunning   Status = "running"
	StatusDone      Status = "done"
	StatusFailed    Status = "failed"
	StatusCancelled Status = "cancelled"
)

// Terminal reports whether the status is final.
func (s Status) Terminal() bool {
	return s == StatusDone || s == StatusFailed || s == StatusCancelled
}

// PolicyRequest selects one replacement-policy stack.
type PolicyRequest struct {
	Name    string `json:"name"`
	Drishti bool   `json:"drishti,omitempty"`
}

// JobRequest is the JSON body of POST /v1/jobs: a sweep of one machine
// configuration over workloads × policies. A single simulation is the
// 1×1 special case. Fields mirror sim.Config / experiments.Params; zero
// values take the harness-scale defaults.
type JobRequest struct {
	// APIVersion pins the schema the client speaks. Zero means the
	// current version; anything else must match Version exactly.
	APIVersion int `json:"apiVersion,omitempty"`

	Cores        int    `json:"cores"`
	Scale        int    `json:"scale,omitempty"`        // default 8
	Instructions uint64 `json:"instructions,omitempty"` // default 200000
	Warmup       uint64 `json:"warmup,omitempty"`       // default 50000
	Seed         uint64 `json:"seed,omitempty"`         // default 1

	// Policies and Workloads span the sweep grid. Workload entries name
	// registry models (substring match, like drishti-sim -workload); each
	// becomes one homogeneous mix, or "hetero" for one heterogeneous mix
	// drawn from the whole population.
	Policies  []PolicyRequest `json:"policies"`
	Workloads []string        `json:"workloads"`

	// Scenario, when set, replaces Cores/Policies/Workloads with a
	// declarative scenario spec (internal/scenario): the sweep grid
	// becomes the spec's configs × policies, resolved by Grid/Cell like
	// any other request. Mutually exclusive with the fields above.
	// File-based trace sources are rejected at this boundary — a wire
	// submission must inline its CSV so every fleet node can rebuild the
	// cell without a shared filesystem.
	Scenario *scenario.Spec `json:"scenario,omitempty"`

	// TimeoutSec bounds the job's wall clock (0 = the service default).
	TimeoutSec int `json:"timeoutSec,omitempty"`

	// MaxRetries overrides the service's bounded retry budget for
	// transient failures (-1 = no retries, 0 = service default).
	MaxRetries int `json:"maxRetries,omitempty"`

	// Tenant names the submitting tenant (v3). The service enforces its
	// per-tenant active-job quota against this label; empty means the
	// anonymous tenant, which shares one bucket.
	Tenant string `json:"tenant,omitempty"`

	// Priority selects the queue class (v3): "interactive", "normal"
	// (default), or "batch". Higher classes are always dispatched first;
	// within a class, jobs run FIFO.
	Priority string `json:"priority,omitempty"`
}

// WithDefaults resolves zero values to harness-scale defaults. It is the
// only place defaults are applied: the service calls it once at submission,
// so every later consumer — executor, coordinator, worker — sees the same
// fully resolved request.
func (r JobRequest) WithDefaults() JobRequest {
	if r.Scenario != nil {
		// The spec carries its own defaults (scenario.WithDefaults,
		// applied inside Compile); leaving the request untouched keeps
		// the echoed request byte-identical to what the client sent.
		return r
	}
	if r.Scale == 0 {
		r.Scale = 8
	}
	if r.Instructions == 0 {
		r.Instructions = 200_000
	}
	if r.Warmup == 0 {
		r.Warmup = 50_000
	}
	if r.Seed == 0 {
		r.Seed = 1
	}
	return r
}

// Validate rejects malformed requests before they reach the queue.
func (r JobRequest) Validate() error {
	ok := r.APIVersion == 0
	for _, v := range CompatVersions {
		ok = ok || r.APIVersion == v
	}
	if !ok {
		return fmt.Errorf("apiVersion %d not supported (current: %d, accepted: %v)", r.APIVersion, Version, CompatVersions)
	}
	if err := r.validateTenancy(); err != nil {
		return err
	}
	if r.Scenario != nil {
		return r.validateScenario()
	}
	if r.Cores <= 0 || r.Cores > 128 {
		return fmt.Errorf("cores must be in [1,128], got %d", r.Cores)
	}
	if len(r.Policies) == 0 {
		return fmt.Errorf("at least one policy is required")
	}
	if len(r.Workloads) == 0 {
		return fmt.Errorf("at least one workload is required")
	}
	known := policies.KnownPolicies()
	for _, p := range r.Policies {
		ok := false
		for _, k := range known {
			if p.Name == k {
				ok = true
				break
			}
		}
		if !ok {
			return fmt.Errorf("unknown policy %q (known: %s)", p.Name, strings.Join(known, ", "))
		}
	}
	cfg := sim.ScaledConfig(r.Cores, max(r.Scale, 1))
	for _, w := range r.Workloads {
		if w == "hetero" {
			continue
		}
		if _, err := lookupModel(cfg, w, max(r.Scale, 1)); err != nil {
			return err
		}
	}
	if r.TimeoutSec < 0 {
		return fmt.Errorf("timeoutSec must be >= 0")
	}
	if r.Instructions > 100_000_000 {
		return fmt.Errorf("instructions above the 100M service ceiling")
	}
	return nil
}

// validateTenancy checks the v3 multi-tenant fields; both are optional.
func (r JobRequest) validateTenancy() error {
	if len(r.Tenant) > 64 {
		return fmt.Errorf("tenant longer than 64 bytes")
	}
	for _, c := range r.Tenant {
		if c <= ' ' || c == 0x7f {
			return fmt.Errorf("tenant contains whitespace or control characters")
		}
	}
	switch r.Priority {
	case "", PriorityInteractive, PriorityNormal, PriorityBatch:
		return nil
	default:
		return fmt.Errorf("priority %q unknown (accepted: %s, %s, %s)",
			r.Priority, PriorityInteractive, PriorityNormal, PriorityBatch)
	}
}

// validateScenario checks a scenario-bearing request: the spec fields are
// exclusive with the plain sweep fields, the spec must compile with inline
// sources only, and the compiled runs must respect the service ceilings.
func (r JobRequest) validateScenario() error {
	if r.Cores != 0 || len(r.Policies) != 0 || len(r.Workloads) != 0 {
		return fmt.Errorf("scenario jobs must not also set cores/policies/workloads")
	}
	c, err := r.Scenario.Compile("")
	if err != nil {
		return err
	}
	for _, run := range c.Runs {
		if run.Cfg.Instructions > 100_000_000 {
			return fmt.Errorf("scenario run %s: instructions above the 100M service ceiling", run.Name)
		}
	}
	if r.TimeoutSec < 0 {
		return fmt.Errorf("timeoutSec must be >= 0")
	}
	return nil
}

// compiled resolves the request's scenario with inline sources only (no
// filesystem anchor exists on the wire).
func (r JobRequest) compiled() (*scenario.Compiled, error) {
	return r.Scenario.Compile("")
}

// Grid returns the sweep grid dimensions: workload entries × policies for
// plain requests, runs × policies for scenario requests. Executors loop
// wi over [0,nw) and pi over [0,np) and resolve each cell via Cell.
func (r JobRequest) Grid() (nw, np int, err error) {
	if r.Scenario != nil {
		c, err := r.compiled()
		if err != nil {
			return 0, 0, err
		}
		return len(c.Runs), len(c.Policies), nil
	}
	return len(r.Workloads), len(r.Policies), nil
}

// WorkloadName labels workload entry wi for results and fleet status: the
// request's workload string, or "<scenario>/<run>" for scenario jobs.
// Out-of-range indices label stably rather than panic (results for such
// cells cannot exist).
func (r JobRequest) WorkloadName(wi int) string {
	if r.Scenario != nil {
		if c, err := r.compiled(); err == nil && wi >= 0 && wi < len(c.Runs) {
			return c.Spec.Name + "/" + c.Runs[wi].Name
		}
		return fmt.Sprintf("scenario[%d]", wi)
	}
	if wi >= 0 && wi < len(r.Workloads) {
		return r.Workloads[wi]
	}
	return fmt.Sprintf("workload[%d]", wi)
}

// lookupModel resolves a workload name (substring match) against the
// scaled model population, exactly like drishti-sim -workload.
func lookupModel(cfg sim.Config, name string, scale int) (workload.Model, error) {
	for _, m := range workload.ScaleAll(workload.AllSPECGAP(), scale, cfg.SetIndexBits()) {
		if strings.Contains(m.Name, name) {
			return m, nil
		}
	}
	return workload.Model{}, fmt.Errorf("no workload model matching %q", name)
}

// Config builds the simulated machine for the request (policy unset; the
// executor stamps one per cell). Scenario requests return the first run's
// machine; per-run machines come from Cell.
func (r JobRequest) Config() sim.Config {
	if r.Scenario != nil {
		if c, err := r.compiled(); err == nil && len(c.Runs) > 0 {
			return c.Runs[0].Cfg
		}
		return sim.Config{}
	}
	cfg := sim.ScaledConfig(r.Cores, r.Scale)
	cfg.Instructions = r.Instructions
	cfg.Warmup = r.Warmup
	cfg.Seed = r.Seed
	return cfg
}

// Mix materializes workload wi of the request as a scaled mix. Entries are
// independent, so materializing one is identical to taking Mixes()[wi].
func (r JobRequest) Mix(wi int) (workload.Mix, error) {
	if r.Scenario != nil {
		c, err := r.compiled()
		if err != nil {
			return workload.Mix{}, err
		}
		if wi < 0 || wi >= len(c.Runs) {
			return workload.Mix{}, fmt.Errorf("scenario run index %d out of range [0,%d)", wi, len(c.Runs))
		}
		return c.Runs[wi].Mix, nil
	}
	if wi < 0 || wi >= len(r.Workloads) {
		return workload.Mix{}, fmt.Errorf("workload index %d out of range [0,%d)", wi, len(r.Workloads))
	}
	cfg := r.Config()
	w := r.Workloads[wi]
	if w == "hetero" {
		models := workload.ScaleAll(workload.AllSPECGAP(), r.Scale, cfg.SetIndexBits())
		return workload.HeterogeneousMixes(models, r.Cores, 1, r.Seed)[0], nil
	}
	m, err := lookupModel(cfg, w, r.Scale)
	if err != nil {
		return workload.Mix{}, err
	}
	return workload.Homogeneous(m, r.Cores, r.Seed), nil
}

// Mixes materializes every workload entry as a scaled mix.
func (r JobRequest) Mixes() ([]workload.Mix, error) {
	nw, _, err := r.Grid()
	if err != nil {
		return nil, err
	}
	out := make([]workload.Mix, 0, nw)
	for wi := 0; wi < nw; wi++ {
		m, err := r.Mix(wi)
		if err != nil {
			return nil, err
		}
		out = append(out, m)
	}
	return out, nil
}

// Cell resolves sweep cell (wi, pi) — workload wi under policy pi — to the
// exact machine configuration and mix a worker must simulate. Coordinator
// and workers both call this, so a cell means the same simulation on every
// node of a fleet. Scenario requests resolve wi to the spec's runs and pi
// to the spec's sweep policies.
func (r JobRequest) Cell(wi, pi int) (sim.Config, workload.Mix, error) {
	if r.Scenario != nil {
		c, err := r.compiled()
		if err != nil {
			return sim.Config{}, workload.Mix{}, err
		}
		if wi < 0 || wi >= len(c.Runs) {
			return sim.Config{}, workload.Mix{}, fmt.Errorf("scenario run index %d out of range [0,%d)", wi, len(c.Runs))
		}
		if pi < 0 || pi >= len(c.Policies) {
			return sim.Config{}, workload.Mix{}, fmt.Errorf("policy index %d out of range [0,%d)", pi, len(c.Policies))
		}
		cfg := c.Runs[wi].Cfg
		cfg.Policy = c.Policies[pi]
		return cfg, c.Runs[wi].Mix, nil
	}
	if pi < 0 || pi >= len(r.Policies) {
		return sim.Config{}, workload.Mix{}, fmt.Errorf("policy index %d out of range [0,%d)", pi, len(r.Policies))
	}
	mix, err := r.Mix(wi)
	if err != nil {
		return sim.Config{}, workload.Mix{}, err
	}
	cfg := r.Config()
	p := r.Policies[pi]
	cfg.Policy = policies.Spec{Name: p.Name, Drishti: p.Drishti}
	return cfg, mix, nil
}

// CellKey is the content-address of one simulation cell in the durable
// store: the explicit Key() builders joined, shared by the single-node
// executor, the coordinator, and every worker.
func CellKey(cfg sim.Config, mix workload.Mix) string {
	return cfg.Key() + "|" + mix.Key()
}

// CellResult is one (workload, policy) simulation inside a job.
type CellResult struct {
	Policy    string      `json:"policy"`
	Workload  string      `json:"workload"`
	Mix       string      `json:"mix"`
	FromStore bool        `json:"fromStore"` // served from the durable store
	IPCSum    float64     `json:"ipcSum"`
	MPKI      float64     `json:"mpki"`
	WPKI      float64     `json:"wpki"`
	APKI      float64     `json:"apki"`
	Result    *sim.Result `json:"result,omitempty"`
}

// JobResult is what GET /v1/jobs/{id}/result returns for a done job.
type JobResult struct {
	Cells       []CellResult `json:"cells"`
	StoreHits   int          `json:"storeHits"`
	StoreMisses int          `json:"storeMisses"`
	ElapsedMS   int64        `json:"elapsedMs"`
}

// ResultEvent is one NDJSON line of the v3 streaming results endpoint,
// GET /v1/jobs/{id}/results (Content-Type: application/x-ndjson). The
// stream carries one "cell" event per sweep cell as it resolves — in
// completion order, each index exactly once, even across job retries —
// followed by exactly one "done" event summarizing the job. Clients that
// want the whole sweep in deterministic cell order keep using the
// buffered GET /v1/jobs/{id}/result.
type ResultEvent struct {
	// Event is "cell" (one resolved sweep cell) or "done" (terminal
	// summary; always the last line).
	Event string `json:"event"`

	// Cell events: Index is the cell's position in the job's
	// deterministic cell order (omitted when zero — Cell non-nil marks a
	// cell event), Cell the resolved result.
	Index int         `json:"index,omitempty"`
	Cell  *CellResult `json:"cell,omitempty"`

	// Done events: the job's terminal status, its error when failed, and
	// the JobResult summary when one exists.
	Status      Status `json:"status,omitempty"`
	Error       string `json:"error,omitempty"`
	Cells       int    `json:"cells,omitempty"`
	StoreHits   int    `json:"storeHits,omitempty"`
	StoreMisses int    `json:"storeMisses,omitempty"`
	ElapsedMS   int64  `json:"elapsedMs,omitempty"`
}

// EventCell and EventDone are the ResultEvent.Event values.
const (
	EventCell = "cell"
	EventDone = "done"
)

// JobView is the wire form of a job's status (result elided).
type JobView struct {
	ID         string     `json:"id"`
	Status     Status     `json:"status"`
	Error      string     `json:"error,omitempty"`
	Attempts   int        `json:"attempts"`
	EnqueuedAt time.Time  `json:"enqueuedAt"`
	StartedAt  *time.Time `json:"startedAt,omitempty"`
	FinishedAt *time.Time `json:"finishedAt,omitempty"`
	Request    JobRequest `json:"request"`
	// TraceID identifies the job's distributed trace; fetch the span
	// tree via GET /v1/jobs/{id}/trace. Empty when tracing is disabled.
	TraceID string `json:"traceId,omitempty"`
}

// TraceView is GET /v1/jobs/{id}/trace: every span collected so far for
// one job's trace (the tree is complete once the job is done and all
// workers' completions have arrived).
type TraceView struct {
	TraceID string       `json:"traceId"`
	Spans   []trace.Span `json:"spans"`
}

// Error is the JSON error envelope every endpoint returns on failure.
type Error struct {
	Error string `json:"error"`
}

// DecodeStrict decodes one JSON value from r into v, rejecting unknown
// fields and trailing garbage. Every process boundary uses it, so a schema
// mismatch surfaces as an explicit decode error on the receiving side
// instead of a silently dropped field.
func DecodeStrict(r io.Reader, v any) error {
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		return err
	}
	if dec.More() {
		return errors.New("trailing data after JSON value")
	}
	return nil
}
