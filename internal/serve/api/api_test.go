package api

import (
	"reflect"
	"strings"
	"testing"

	"drishti/internal/workload"
)

func sweepRequest() JobRequest {
	return JobRequest{
		Cores:        2,
		Scale:        8,
		Instructions: 20_000,
		Warmup:       5_000,
		Policies:     []PolicyRequest{{Name: "lru"}, {Name: "srrip", Drishti: false}},
		Workloads:    []string{workload.AllSPECGAP()[0].Name, "hetero"},
	}
}

func TestWithDefaults(t *testing.T) {
	got := JobRequest{Cores: 4}.WithDefaults()
	want := JobRequest{Cores: 4, Scale: 8, Instructions: 200_000, Warmup: 50_000, Seed: 1}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("WithDefaults() = %+v, want %+v", got, want)
	}

	// Explicit values survive, and APIVersion is deliberately not stamped
	// (a request echoed back must carry exactly what the client sent).
	r := JobRequest{APIVersion: Version, Cores: 4, Scale: 2, Instructions: 7, Warmup: 3, Seed: 9}
	if got := r.WithDefaults(); !reflect.DeepEqual(got, r) {
		t.Errorf("WithDefaults() overrode explicit values: %+v", got)
	}
	if got := (JobRequest{Cores: 4}).WithDefaults(); got.APIVersion != 0 {
		t.Errorf("WithDefaults() stamped APIVersion = %d, want 0", got.APIVersion)
	}
}

func TestValidateAPIVersion(t *testing.T) {
	r := sweepRequest()
	// 0 = current, plus every compat generation (v2 requests are a strict
	// subset of v3 and stay accepted through the door check).
	for _, v := range append([]int{0}, CompatVersions...) {
		r.APIVersion = v
		if err := r.Validate(); err != nil {
			t.Errorf("Validate() with apiVersion %d: %v", v, err)
		}
	}
	for _, v := range []int{1, Version + 1} {
		r.APIVersion = v
		if err := r.Validate(); err == nil || !strings.Contains(err.Error(), "apiVersion") {
			t.Errorf("Validate() with apiVersion %d: err = %v, want apiVersion rejection", r.APIVersion, err)
		}
	}
}

func TestValidateTenancy(t *testing.T) {
	r := sweepRequest()
	r.Tenant = "team-a"
	for _, p := range []string{"", PriorityInteractive, PriorityNormal, PriorityBatch} {
		r.Priority = p
		if err := r.Validate(); err != nil {
			t.Errorf("Validate() with priority %q: %v", p, err)
		}
	}
	r.Priority = "urgent"
	if err := r.Validate(); err == nil || !strings.Contains(err.Error(), "priority") {
		t.Errorf("Validate() with unknown priority: err = %v, want priority rejection", err)
	}
	r.Priority = ""
	r.Tenant = "has space"
	if err := r.Validate(); err == nil || !strings.Contains(err.Error(), "tenant") {
		t.Errorf("Validate() with whitespace tenant: err = %v, want tenant rejection", err)
	}
	r.Tenant = strings.Repeat("x", 65)
	if err := r.Validate(); err == nil || !strings.Contains(err.Error(), "tenant") {
		t.Errorf("Validate() with oversized tenant: err = %v, want tenant rejection", err)
	}
}

func TestPriorityRank(t *testing.T) {
	if !(PriorityRank(PriorityInteractive) < PriorityRank("") &&
		PriorityRank("") == PriorityRank(PriorityNormal) &&
		PriorityRank(PriorityNormal) < PriorityRank(PriorityBatch)) {
		t.Fatalf("priority ranks out of order: interactive=%d empty=%d normal=%d batch=%d",
			PriorityRank(PriorityInteractive), PriorityRank(""), PriorityRank(PriorityNormal), PriorityRank(PriorityBatch))
	}
}

func TestValidateRejects(t *testing.T) {
	cases := []struct {
		name   string
		mutate func(*JobRequest)
		want   string
	}{
		{"zero cores", func(r *JobRequest) { r.Cores = 0 }, "cores"},
		{"too many cores", func(r *JobRequest) { r.Cores = 1000 }, "cores"},
		{"no policies", func(r *JobRequest) { r.Policies = nil }, "policy"},
		{"no workloads", func(r *JobRequest) { r.Workloads = nil }, "workload"},
		{"unknown policy", func(r *JobRequest) { r.Policies[0].Name = "nope" }, "unknown policy"},
		{"unknown workload", func(r *JobRequest) { r.Workloads[0] = "no-such-model" }, "no workload model"},
		{"negative timeout", func(r *JobRequest) { r.TimeoutSec = -1 }, "timeoutSec"},
		{"instruction ceiling", func(r *JobRequest) { r.Instructions = 200_000_000 }, "ceiling"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			r := sweepRequest()
			tc.mutate(&r)
			err := r.Validate()
			if err == nil || !strings.Contains(err.Error(), tc.want) {
				t.Errorf("Validate() = %v, want error containing %q", err, tc.want)
			}
		})
	}
	r := sweepRequest()
	if err := r.Validate(); err != nil {
		t.Errorf("Validate() on a good request: %v", err)
	}
}

func TestDecodeStrict(t *testing.T) {
	var r JobRequest
	good := `{"cores":2,"policies":[{"name":"lru"}],"workloads":["mcf"]}`
	if err := DecodeStrict(strings.NewReader(good), &r); err != nil {
		t.Fatalf("DecodeStrict(good): %v", err)
	}
	if r.Cores != 2 || len(r.Policies) != 1 || r.Policies[0].Name != "lru" {
		t.Errorf("DecodeStrict decoded %+v", r)
	}

	unknown := `{"cores":2,"polcies":[{"name":"lru"}],"workloads":["mcf"]}`
	if err := DecodeStrict(strings.NewReader(unknown), &r); err == nil {
		t.Error("DecodeStrict accepted a misspelled field; schema drift would be silent")
	}

	trailing := good + `{"cores":3}`
	if err := DecodeStrict(strings.NewReader(trailing), &r); err == nil {
		t.Error("DecodeStrict accepted trailing data")
	}
}

// TestCellMatchesMixes pins the contract the fleet depends on: resolving a
// single cell on a worker yields exactly the config and mix the single-node
// executor derives from the whole request — including the "hetero" draw.
func TestCellMatchesMixes(t *testing.T) {
	r := sweepRequest().WithDefaults()
	mixes, err := r.Mixes()
	if err != nil {
		t.Fatal(err)
	}
	if len(mixes) != len(r.Workloads) {
		t.Fatalf("Mixes() returned %d mixes for %d workloads", len(mixes), len(r.Workloads))
	}
	seen := map[string]bool{}
	for wi := range r.Workloads {
		for pi, p := range r.Policies {
			cfg, mix, err := r.Cell(wi, pi)
			if err != nil {
				t.Fatalf("Cell(%d,%d): %v", wi, pi, err)
			}
			if !reflect.DeepEqual(mix, mixes[wi]) {
				t.Errorf("Cell(%d,%d) mix differs from Mixes()[%d]", wi, pi, wi)
			}
			if cfg.Policy.Name != p.Name {
				t.Errorf("Cell(%d,%d) policy = %q, want %q", wi, pi, cfg.Policy.Name, p.Name)
			}
			key := CellKey(cfg, mix)
			if seen[key] {
				t.Errorf("Cell(%d,%d) key %q collides with another cell", wi, pi, key)
			}
			seen[key] = true

			// The key must be reproducible on a second derivation — it is
			// the cell's content address in the durable store.
			cfg2, mix2, err := r.Cell(wi, pi)
			if err != nil {
				t.Fatal(err)
			}
			if k2 := CellKey(cfg2, mix2); k2 != key {
				t.Errorf("Cell(%d,%d) key not stable: %q then %q", wi, pi, key, k2)
			}
		}
	}

	if _, _, err := r.Cell(len(r.Workloads), 0); err == nil {
		t.Error("Cell() accepted an out-of-range workload index")
	}
	if _, _, err := r.Cell(0, len(r.Policies)); err == nil {
		t.Error("Cell() accepted an out-of-range policy index")
	}
}
