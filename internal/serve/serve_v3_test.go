package serve

import (
	"bufio"
	"net/http"
	"strconv"
	"strings"
	"testing"
	"time"

	"drishti/internal/serve/api"
)

// TestTenantQuota429: a tenant at its non-terminal-job quota is rejected
// with 429 + Retry-After while other tenants keep submitting.
func TestTenantQuota429(t *testing.T) {
	s, srv, reg := testService(t, Options{Workers: -1, TenantQuota: 1})
	defer s.Shutdown(shortCtx(t))

	req := smallSweep(t)
	req.Tenant = "team-a"
	if _, resp := postJob(t, srv, req); resp.StatusCode != http.StatusAccepted {
		t.Fatalf("first team-a submit: HTTP %d", resp.StatusCode)
	}
	_, resp := postJob(t, srv, req)
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("over-quota submit: HTTP %d, want 429", resp.StatusCode)
	}
	ra, err := strconv.Atoi(resp.Header.Get("Retry-After"))
	if err != nil || ra < 1 {
		t.Fatalf("over-quota Retry-After = %q, want a positive integer", resp.Header.Get("Retry-After"))
	}
	// Another tenant is unaffected — the quota is per tenant, not global.
	req.Tenant = "team-b"
	if _, resp := postJob(t, srv, req); resp.StatusCode != http.StatusAccepted {
		t.Fatalf("team-b submit under team-a's quota: HTTP %d", resp.StatusCode)
	}
	if reg.Counter("jobs_rejected").Value() != 1 {
		t.Fatalf("jobs_rejected = %d, want 1", reg.Counter("jobs_rejected").Value())
	}
}

// TestDerivedRetryAfter pins the Retry-After derivation: depth+1 jobs at
// the observed mean duration over the worker pool, clamped to [1, 60],
// falling back to 5 with no history.
func TestDerivedRetryAfter(t *testing.T) {
	s, _, _ := testService(t, Options{Workers: 2, QueueCap: 4})
	defer s.Shutdown(shortCtx(t))

	if got := s.retryAfterSec(); got != 5 {
		t.Fatalf("retryAfterSec with no history = %d, want fallback 5", got)
	}
	// 3 queued + 1 incoming, mean 4s, 2 workers → ceil(4*4s/2) = 8s.
	s.mu.Lock()
	s.durTotal, s.durCount = 4*time.Second, 1
	s.mu.Unlock()
	for i := 0; i < 3; i++ {
		s.q.push(&Job{Request: smallSweep(t)})
	}
	if got := s.retryAfterSec(); got != 8 {
		t.Fatalf("retryAfterSec = %d, want 8 (4 jobs x 4s / 2 workers)", got)
	}
	// A huge backlog estimate clamps to 60.
	s.mu.Lock()
	s.durTotal = 10 * time.Minute
	s.mu.Unlock()
	if got := s.retryAfterSec(); got != 60 {
		t.Fatalf("retryAfterSec = %d, want clamp 60", got)
	}
	s.q.drain() // don't leave fake jobs for Shutdown to persist
}

// TestPriorityLanes: the queue drains interactive before normal before
// batch, FIFO within a class, regardless of submission order.
func TestPriorityLanes(t *testing.T) {
	q := newFifo()
	mk := func(id, prio string) *Job {
		r := JobRequest{Priority: prio}
		return &Job{ID: id, Request: r}
	}
	q.push(mk("b1", api.PriorityBatch))
	q.push(mk("n1", ""))
	q.push(mk("i1", api.PriorityInteractive))
	q.push(mk("n2", api.PriorityNormal))
	q.push(mk("i2", api.PriorityInteractive))
	want := []string{"i1", "i2", "n1", "n2", "b1"}
	for _, id := range want {
		j, ok := q.pop()
		if !ok || j.ID != id {
			t.Fatalf("pop = %v (ok=%v), want %s", j, ok, id)
		}
	}
	if q.depth() != 0 {
		t.Fatalf("depth after drain = %d", q.depth())
	}
}

// TestResultStream drives GET /v1/jobs/{id}/results end to end: one
// strict-decodable "cell" event per sweep cell with unique indices, then
// exactly one "done" event, and the stream terminates.
func TestResultStream(t *testing.T) {
	s, srv, _ := testService(t, Options{Workers: 2})
	defer s.Shutdown(shortCtx(t))

	if code, _ := streamStatus(t, srv.URL+"/v1/jobs/zzz/results"); code != http.StatusNotFound {
		t.Fatalf("stream of unknown job: HTTP %d, want 404", code)
	}

	req := smallSweep(t)
	id, resp := postJob(t, srv, req)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit: HTTP %d", resp.StatusCode)
	}
	// Connect immediately — the stream must follow live resolution.
	hr, err := http.Get(srv.URL + "/v1/jobs/" + id + "/results")
	if err != nil {
		t.Fatal(err)
	}
	defer hr.Body.Close()
	if ct := hr.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Fatalf("stream Content-Type = %q", ct)
	}
	wantCells := len(req.Policies) * len(req.Workloads)
	seen := map[int]bool{}
	var done *api.ResultEvent
	sc := bufio.NewScanner(hr.Body)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<20)
	for sc.Scan() {
		var ev api.ResultEvent
		if err := api.DecodeStrict(strings.NewReader(sc.Text()), &ev); err != nil {
			t.Fatalf("stream line fails DecodeStrict: %v\n%s", err, sc.Text())
		}
		switch ev.Event {
		case api.EventCell:
			if ev.Cell == nil {
				t.Fatalf("cell event without cell body: %s", sc.Text())
			}
			if seen[ev.Index] {
				t.Fatalf("index %d streamed twice", ev.Index)
			}
			seen[ev.Index] = true
		case api.EventDone:
			if done != nil {
				t.Fatal("second done event")
			}
			e := ev
			done = &e
		default:
			t.Fatalf("unknown event %q", ev.Event)
		}
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	if done == nil || done.Status != StatusDone {
		t.Fatalf("stream ended without a done event: %+v", done)
	}
	if len(seen) != wantCells || done.Cells != wantCells {
		t.Fatalf("streamed %d cells, done reports %d, want %d", len(seen), done.Cells, wantCells)
	}
	// The buffered endpoint and the stream agree on the merged result.
	res := fetchResult(t, srv, id)
	if len(res.Cells) != wantCells {
		t.Fatalf("buffered result has %d cells", len(res.Cells))
	}

	// A late watcher connecting after the job settled replays everything.
	hr2, err := http.Get(srv.URL + "/v1/jobs/" + id + "/results")
	if err != nil {
		t.Fatal(err)
	}
	defer hr2.Body.Close()
	lines := 0
	sc2 := bufio.NewScanner(hr2.Body)
	sc2.Buffer(make([]byte, 0, 1<<20), 1<<20)
	for sc2.Scan() {
		lines++
	}
	if lines != wantCells+1 {
		t.Fatalf("replay stream had %d lines, want %d cells + 1 done", lines, wantCells)
	}
}

func streamStatus(t *testing.T, url string) (int, string) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	return resp.StatusCode, resp.Header.Get("Content-Type")
}
