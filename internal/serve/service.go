// Package serve is the drishti-served job service: an HTTP front end that
// queues simulation/sweep requests into a bounded FIFO, executes them on a
// worker pool with per-job cancellation, timeouts, and bounded
// retry-with-backoff, and amortizes identical work through the durable
// content-addressed result store (internal/store). Queued jobs survive
// restarts: graceful shutdown drains in-flight work, persists the queue,
// and New restores it.
package serve

import (
	"context"
	"errors"
	"fmt"
	"log/slog"
	"path/filepath"
	"runtime"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"drishti/internal/obs"
	"drishti/internal/obs/trace"
	"drishti/internal/serve/api"
	"drishti/internal/sim"
	"drishti/internal/store"
	"drishti/internal/workload"
)

// Distributor executes a job's sweep cells somewhere other than this
// process — the fleet coordinator (internal/dist) implements it. Returning
// an error wrapping api.ErrNoWorkers tells the service to fall back to
// local in-process execution, so a coordinator with no registered workers
// behaves exactly like a single node.
//
// sink, when non-nil, receives each cell result as it resolves (index is
// the cell's position in the job's deterministic order) so the service can
// stream partial results to watchers before the job settles. The final
// *api.JobResult remains authoritative; sink delivery is best-effort and
// may be invoked from any goroutine, but never after RunJob returns.
type Distributor interface {
	RunJob(ctx context.Context, jobID string, req api.JobRequest, sink func(index int, cell api.CellResult)) (*api.JobResult, error)
}

// Options configure a Service. Zero values take the documented defaults.
type Options struct {
	// StoreDir roots the durable result store and the persisted queue.
	StoreDir string

	// Store, when non-nil, overrides the store opened from StoreDir —
	// scaled-out deployments hand every coordinator the same sharded
	// (optionally cached) store built with store.OpenSharded. StoreDir
	// still roots the persisted queue file.
	Store *store.Store

	// TenantQuota bounds the number of non-terminal (queued or running)
	// jobs any one tenant may hold; submissions beyond it get HTTP 429
	// with a Retry-After derived from the current drain rate. 0 disables
	// quotas. The empty tenant counts as its own tenant.
	TenantQuota int

	// Workers is the scheduler pool size (default GOMAXPROCS). A negative
	// value starts no workers at all: jobs queue but never execute, which
	// tests use to exercise queue persistence deterministically.
	Workers int

	// QueueCap bounds the FIFO; submissions beyond it get HTTP 429
	// (default 64).
	QueueCap int

	// DefaultTimeout bounds each job's wall clock unless the request
	// overrides it (default 0 = unbounded).
	DefaultTimeout time.Duration

	// MaxRetries is the per-job retry budget for failures that are not
	// cancellations or timeouts (default 2; requests can override).
	MaxRetries int

	// RetryBackoff is the base of the exponential backoff between
	// attempts (default 100ms, doubling per attempt, capped at 5s).
	RetryBackoff time.Duration

	// Logger receives one structured line per job transition (default
	// discard).
	Logger *slog.Logger

	// Registry receives queue/store/job metrics (default the process
	// registry).
	Registry *obs.Registry

	// Distributor, when non-nil, is offered every job before local
	// execution (fleet mode). See the Distributor interface.
	Distributor Distributor

	// Trace, when non-nil, enables distributed tracing: every job gets a
	// trace ID at Submit, spans are recorded here, and the span tree is
	// served at GET /v1/jobs/{id}/trace. Share one recorder with the
	// fleet coordinator so its spans land in the same tree.
	Trace *trace.Recorder
}

func (o Options) withDefaults() Options {
	if o.Workers == 0 {
		o.Workers = runtime.GOMAXPROCS(0)
	} else if o.Workers < 0 {
		o.Workers = -1
	}
	if o.QueueCap <= 0 {
		o.QueueCap = 64
	}
	if o.MaxRetries == 0 {
		o.MaxRetries = 2
	}
	if o.RetryBackoff <= 0 {
		o.RetryBackoff = 100 * time.Millisecond
	}
	if o.Logger == nil {
		o.Logger = obs.Discard()
	}
	if o.Registry == nil {
		o.Registry = obs.Default()
	}
	return o
}

// Service owns the queue, the worker pool, the job table, and the store.
type Service struct {
	opts  Options
	st    *store.Store
	q     *fifo
	log   *slog.Logger
	reg   *obs.Registry
	qfile string

	mu       sync.Mutex
	jobs     map[string]*Job
	order    []string // submission order, for listing
	seq      int
	draining bool

	// Drain-rate estimate for the derived Retry-After: total wall time and
	// count of finished jobs. Guarded by mu.
	durTotal time.Duration
	durCount int

	wg       sync.WaitGroup
	inflight atomic.Int64

	// metrics
	cSubmitted, cRestored, cRejected *obs.Counter
	cDone, cFailed, cCancelled       *obs.Counter
	cRetries                         *obs.Counter
	gQueueDepth, gInflight           *obs.Gauge
	hLatency                         *obs.Histogram
}

// New builds a Service, opens (or creates) its store, restores any queue
// persisted by a previous process, and starts the worker pool.
func New(opts Options) (*Service, error) {
	opts = opts.withDefaults()
	st := opts.Store
	if st == nil {
		var err error
		st, err = store.Open(opts.StoreDir)
		if err != nil {
			return nil, err
		}
		st.Attach(opts.Registry, "store")
	}
	s := &Service{
		opts:  opts,
		st:    st,
		q:     newFifo(),
		log:   opts.Logger,
		reg:   opts.Registry,
		qfile: filepath.Join(opts.StoreDir, "queue.json"),
		jobs:  make(map[string]*Job),

		cSubmitted:  opts.Registry.Counter("jobs_submitted"),
		cRestored:   opts.Registry.Counter("jobs_restored"),
		cRejected:   opts.Registry.Counter("jobs_rejected"),
		cDone:       opts.Registry.Counter("jobs_done"),
		cFailed:     opts.Registry.Counter("jobs_failed"),
		cCancelled:  opts.Registry.Counter("jobs_cancelled"),
		cRetries:    opts.Registry.Counter("jobs_retried"),
		gQueueDepth: opts.Registry.Gauge("queue_depth"),
		gInflight:   opts.Registry.Gauge("jobs_inflight"),
		hLatency:    opts.Registry.Histogram("job_latency_ms", 0, 250, 64),
	}
	if err := s.restoreQueue(); err != nil {
		return nil, err
	}
	for i := 0; i < opts.Workers; i++ {
		s.wg.Add(1)
		go s.worker()
	}
	return s, nil
}

// Store exposes the backing store (the HTTP stats endpoint reads it).
func (s *Service) Store() *store.Store { return s.st }

// restoreQueue re-enqueues jobs a previous process persisted on shutdown.
// Restored jobs keep their IDs, so clients polling across the restart
// resolve. The file is consumed: a later shutdown rewrites it from scratch.
func (s *Service) restoreQueue() error {
	pjobs, err := loadQueue(s.qfile)
	if err != nil {
		return err
	}
	for _, pj := range pjobs {
		j := &Job{ID: pj.ID, Request: pj.Request, Status: StatusQueued, EnqueuedAt: pj.EnqueuedAt,
			wake: make(chan struct{})}
		s.jobs[j.ID] = j
		s.order = append(s.order, j.ID)
		s.q.push(j)
		s.cRestored.Inc()
	}
	if len(pjobs) > 0 {
		s.log.Info("queue restored", "jobs", len(pjobs))
	}
	s.gQueueDepth.Set(float64(s.q.depth()))
	return saveQueue(s.qfile, nil) // consumed
}

// ErrQueueFull is returned by Submit when the FIFO is at capacity; the
// HTTP layer maps it to 429 + Retry-After.
var ErrQueueFull = errors.New("serve: queue full")

// ErrQuotaExceeded is returned by Submit when the request's tenant already
// holds TenantQuota non-terminal jobs; the HTTP layer maps it to 429 +
// Retry-After, same as a full queue.
var ErrQuotaExceeded = errors.New("serve: tenant quota exceeded")

// ErrDraining is returned during shutdown; the HTTP layer maps it to 503.
var ErrDraining = errors.New("serve: shutting down")

// Submit validates, assigns an ID, and enqueues a job, returning a
// snapshot taken before any worker can touch it (the live *Job is owned
// by the service and its mutex from here on).
func (s *Service) Submit(req JobRequest) (view, error) {
	req = req.WithDefaults()
	if err := req.Validate(); err != nil {
		return view{}, fmt.Errorf("invalid job: %w", err)
	}
	s.mu.Lock()
	if s.draining {
		s.mu.Unlock()
		return view{}, ErrDraining
	}
	if s.q.depth() >= s.opts.QueueCap {
		s.mu.Unlock()
		s.cRejected.Inc()
		return view{}, ErrQueueFull
	}
	if q := s.opts.TenantQuota; q > 0 {
		held := 0
		for _, id := range s.order {
			if t := s.jobs[id]; t.Request.Tenant == req.Tenant && !t.Status.Terminal() {
				held++
			}
		}
		if held >= q {
			s.mu.Unlock()
			s.cRejected.Inc()
			return view{}, fmt.Errorf("%w: tenant %q holds %d of %d jobs",
				ErrQuotaExceeded, req.Tenant, held, q)
		}
	}
	s.seq++
	id := fmt.Sprintf("j%06d-%s", s.seq, obs.RunID(
		strconv.Itoa(s.seq), strconv.FormatInt(time.Now().UnixNano(), 10)))
	j := &Job{ID: id, Request: req, Status: StatusQueued, EnqueuedAt: time.Now(),
		wake: make(chan struct{})}
	if s.opts.Trace != nil {
		j.TraceID = trace.NewTraceID()
	}
	s.jobs[id] = j
	s.order = append(s.order, id)
	snap := j.snapshot()
	s.q.push(j)
	s.mu.Unlock()
	s.cSubmitted.Inc()
	s.gQueueDepth.Set(float64(s.q.depth()))
	s.log.Info("job queued", "job", id, "cores", req.Cores,
		"policies", len(req.Policies), "workloads", len(req.Workloads))
	return snap, nil
}

// Get returns a snapshot view of the job, if it exists.
func (s *Service) Get(id string) (view, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[id]
	if !ok {
		return view{}, false
	}
	return j.snapshot(), true
}

// Result returns a done job's result.
func (s *Service) Result(id string) (*JobResult, Status, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[id]
	if !ok {
		return nil, "", false
	}
	return j.Result, j.Status, true
}

// List returns snapshots of every job in submission order.
func (s *Service) List() []view {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]view, 0, len(s.order))
	for _, id := range s.order {
		out = append(out, s.jobs[id].snapshot())
	}
	return out
}

// Cancel stops a job: queued jobs flip straight to cancelled (the worker
// skips them), running jobs get their context cancelled and settle to
// cancelled once the simulator unwinds. Returns the post-cancel status.
func (s *Service) Cancel(id string) (Status, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[id]
	if !ok {
		return "", false
	}
	switch j.Status {
	case StatusQueued:
		j.Status = StatusCancelled
		j.FinishedAt = time.Now()
		s.cCancelled.Inc()
		s.log.Info("job cancelled while queued", "job", id)
	case StatusRunning:
		if j.cancel != nil {
			j.cancel()
		}
		s.log.Info("job cancel requested", "job", id)
	}
	return j.Status, true
}

// recordCell stores one resolved cell for stream watchers and wakes them.
// First result per index wins: a retry attempt re-resolving a cell is
// dropped so the stream never repeats an index (the buffered JobResult of
// the final successful attempt remains authoritative).
func (s *Service) recordCell(j *Job, index int, cell api.CellResult) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, dup := j.cells[index]; dup {
		return
	}
	if j.cells == nil {
		j.cells = make(map[int]CellResult)
	}
	j.cells[index] = cell
	j.cellSeq = append(j.cellSeq, index)
	s.notifyLocked(j)
}

// notifyLocked broadcasts a stream event to every watcher blocked on the
// job's wake channel. Caller holds the service mutex.
func (s *Service) notifyLocked(j *Job) {
	if j.wake != nil {
		close(j.wake)
		j.wake = make(chan struct{})
	}
}

// retryAfterSec derives the Retry-After hint for 429 responses from the
// queue's current drain rate: depth+1 jobs ahead, each taking the observed
// mean wall time, spread over the worker pool. Clamped to [1s, 60s]; with
// no finished jobs yet (no rate estimate) it falls back to 5s.
func (s *Service) retryAfterSec() int {
	s.mu.Lock()
	var mean time.Duration
	if s.durCount > 0 {
		mean = s.durTotal / time.Duration(s.durCount)
	}
	s.mu.Unlock()
	if mean <= 0 || s.opts.Workers <= 0 {
		return 5
	}
	wait := time.Duration(s.q.depth()+1) * mean / time.Duration(s.opts.Workers)
	sec := int((wait + time.Second - 1) / time.Second)
	if sec < 1 {
		sec = 1
	}
	if sec > 60 {
		sec = 60
	}
	return sec
}

// worker pulls jobs until the queue closes.
func (s *Service) worker() {
	defer s.wg.Done()
	for {
		j, ok := s.q.pop()
		if !ok {
			return
		}
		s.gQueueDepth.Set(float64(s.q.depth()))
		s.execute(j)
	}
}

// execute runs one job with timeout, bounded retry, and cancellation.
func (s *Service) execute(j *Job) {
	s.mu.Lock()
	if j.Status != StatusQueued { // cancelled while waiting
		s.mu.Unlock()
		return
	}
	j.Status = StatusRunning
	j.StartedAt = time.Now()
	ctx, cancel := context.WithCancel(context.Background())
	timeout := s.opts.DefaultTimeout
	if j.Request.TimeoutSec > 0 {
		timeout = time.Duration(j.Request.TimeoutSec) * time.Second
	}
	if timeout > 0 {
		ctx, cancel = context.WithTimeout(ctx, timeout)
	}
	j.cancel = cancel
	s.mu.Unlock()
	defer cancel()
	// Root span of the job's trace; the span context rides the context so
	// the Distributor (fleet coordinator) parents its spans under it.
	root := s.opts.Trace.Tracer().Start(trace.SpanContext{TraceID: j.TraceID}, "job")
	if root != nil {
		root.SetAttr("job", j.ID)
		ctx = trace.NewContext(ctx, root.Context())
	}
	s.gInflight.Set(float64(s.inflight.Add(1)))
	defer func() { s.gInflight.Set(float64(s.inflight.Add(-1))) }()

	retries := s.opts.MaxRetries
	switch {
	case j.Request.MaxRetries > 0:
		retries = j.Request.MaxRetries
	case j.Request.MaxRetries < 0:
		retries = 0
	}

	var (
		res      *JobResult
		err      error
		attempts int
	)
	for attempt := 0; ; attempt++ {
		attempts = attempt + 1
		res, err = s.runJob(ctx, j)
		if err == nil || ctx.Err() != nil || attempt >= retries {
			break
		}
		// Transient failure: back off exponentially (capped) and retry.
		s.cRetries.Inc()
		backoff := s.opts.RetryBackoff << uint(attempt)
		if backoff > 5*time.Second {
			backoff = 5 * time.Second
		}
		s.log.Warn("job attempt failed, retrying", "job", j.ID,
			"attempt", attempts, "backoff", backoff, "err", err)
		select {
		case <-ctx.Done():
		case <-time.After(backoff):
		}
	}

	s.mu.Lock()
	j.Attempts = attempts
	j.FinishedAt = time.Now()
	j.cancel = nil
	elapsed := j.FinishedAt.Sub(j.StartedAt)
	switch {
	case err == nil:
		j.Status = StatusDone
		res.ElapsedMS = elapsed.Milliseconds()
		j.Result = res
		s.cDone.Inc()
	case errors.Is(err, context.Canceled):
		j.Status = StatusCancelled
		j.Error = err.Error()
		s.cCancelled.Inc()
	case errors.Is(err, context.DeadlineExceeded):
		j.Status = StatusFailed
		j.Error = fmt.Sprintf("timed out after %v: %v", elapsed.Round(time.Millisecond), err)
		s.cFailed.Inc()
	default:
		j.Status = StatusFailed
		j.Error = err.Error()
		s.cFailed.Inc()
	}
	status := j.Status
	s.durTotal += elapsed
	s.durCount++
	s.notifyLocked(j) // wake stream watchers: the job is terminal
	s.mu.Unlock()
	root.SetAttr("status", string(status))
	root.End()
	s.hLatency.Observe(elapsed.Milliseconds())
	s.log.Info("job finished", "job", j.ID, "status", string(status),
		"attempts", attempts, "elapsed", elapsed.Round(time.Millisecond), "err", err)
}

// runJob executes the request's workload × policy grid serially within the
// job (the worker pool provides cross-job parallelism), front-loading every
// cell with a store lookup. Identical cells computed by any earlier process
// are served from disk without touching the simulator. In fleet mode the
// configured Distributor gets the job first; it declines with
// api.ErrNoWorkers when the fleet is empty and the local path below runs
// exactly as on a single node.
func (s *Service) runJob(ctx context.Context, j *Job) (*JobResult, error) {
	req := j.Request
	sink := func(index int, cell api.CellResult) { s.recordCell(j, index, cell) }
	if s.opts.Distributor != nil {
		res, err := s.opts.Distributor.RunJob(ctx, j.ID, req, sink)
		switch {
		case err == nil:
			return res, nil
		case errors.Is(err, api.ErrNoWorkers):
			s.log.Info("no fleet workers registered; executing locally", "job", j.ID)
		default:
			return nil, err
		}
	}
	nw, np, err := req.Grid()
	if err != nil {
		return nil, err
	}
	out := &JobResult{}
	tracer := s.opts.Trace.Tracer()
	parent := trace.FromContext(ctx)
	for wi := 0; wi < nw; wi++ {
		for pi := 0; pi < np; pi++ {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
			cfg, mix, err := req.Cell(wi, pi)
			if err != nil {
				return nil, err
			}
			sp := tracer.Start(parent, "cell")
			sp.SetAttr("policy", cfg.Policy.DisplayName())
			sp.SetAttr("mix", mix.Name)
			res, fromStore, err := s.runCell(ctx, cfg, mix)
			if err != nil {
				sp.SetAttr("error", err.Error())
				sp.End()
				return nil, fmt.Errorf("%s on %s: %w", cfg.Policy.DisplayName(), mix.Name, err)
			}
			sp.SetAttr("fromStore", strconv.FormatBool(fromStore))
			sp.End()
			if fromStore {
				out.StoreHits++
			} else {
				out.StoreMisses++
			}
			cell := CellResult{
				Policy:    cfg.Policy.DisplayName(),
				Workload:  req.WorkloadName(wi),
				Mix:       mix.Name,
				FromStore: fromStore,
				IPCSum:    res.IPCSum(),
				MPKI:      res.MPKI,
				WPKI:      res.WPKI,
				APKI:      res.APKI,
				Result:    res,
			}
			out.Cells = append(out.Cells, cell)
			sink(wi*np+pi, cell)
			s.log.Info("cell done", "job", j.ID,
				"run", obs.RunID(cfg.Key(), mix.Key()),
				"policy", cfg.Policy.DisplayName(), "mix", mix.Name,
				"fromStore", fromStore, "mpki", res.MPKI)
		}
	}
	return out, nil
}

// Trace returns the collected span tree of one job's distributed trace.
// ok is false when the job is unknown or tracing is disabled.
func (s *Service) Trace(id string) (api.TraceView, bool) {
	s.mu.Lock()
	j, exists := s.jobs[id]
	traceID := ""
	if exists {
		traceID = j.TraceID
	}
	s.mu.Unlock()
	if traceID == "" {
		return api.TraceView{}, false
	}
	spans := s.opts.Trace.Spans(traceID)
	if spans == nil {
		spans = []trace.Span{}
	}
	return api.TraceView{TraceID: traceID, Spans: spans}, true
}

// runCell serves one simulation from the store or computes and stores it.
func (s *Service) runCell(ctx context.Context, cfg sim.Config, mix workload.Mix) (*sim.Result, bool, error) {
	key := api.CellKey(cfg, mix)
	var cached sim.Result
	hit, err := s.st.Get(key, &cached)
	if err != nil {
		return nil, false, err
	}
	if hit {
		return &cached, true, nil
	}
	res, err := sim.RunMixContext(ctx, cfg, mix)
	if err != nil {
		return nil, false, err
	}
	if err := s.st.Put(key, res); err != nil {
		// The result is good; only durability failed. Log and serve it.
		s.log.Warn("store put failed", "err", err)
	}
	return res, false, nil
}

// Shutdown gracefully stops the service: new submissions are rejected,
// workers stop picking up queued jobs and finish their in-flight ones, and
// whatever is still queued is persisted for the next process. ctx bounds
// the drain; on expiry the queue is still persisted but in-flight jobs are
// abandoned (their contexts are NOT cancelled — a hard stop would lose
// work that is about to finish).
func (s *Service) Shutdown(ctx context.Context) error {
	s.mu.Lock()
	if s.draining {
		s.mu.Unlock()
		return nil
	}
	s.draining = true
	s.mu.Unlock()
	s.q.close()

	done := make(chan struct{})
	go func() { s.wg.Wait(); close(done) }()
	var drainErr error
	select {
	case <-done:
	case <-ctx.Done():
		drainErr = fmt.Errorf("serve: drain timeout: %w", ctx.Err())
	}

	left := s.q.drain()
	if err := saveQueue(s.qfile, left); err != nil {
		return errors.Join(drainErr, fmt.Errorf("serve: persist queue: %w", err))
	}
	s.log.Info("shutdown complete", "persistedJobs", len(left))
	return drainErr
}
