package serve

import (
	"fmt"
	"strings"
	"time"

	"drishti/internal/policies"
	"drishti/internal/sim"
	"drishti/internal/workload"
)

// Status is a job's lifecycle state.
type Status string

const (
	StatusQueued    Status = "queued"
	StatusRunning   Status = "running"
	StatusDone      Status = "done"
	StatusFailed    Status = "failed"
	StatusCancelled Status = "cancelled"
)

// Terminal reports whether the status is final.
func (s Status) Terminal() bool {
	return s == StatusDone || s == StatusFailed || s == StatusCancelled
}

// PolicyRequest selects one replacement-policy stack.
type PolicyRequest struct {
	Name    string `json:"name"`
	Drishti bool   `json:"drishti,omitempty"`
}

// JobRequest is the JSON body of POST /v1/jobs: a sweep of one machine
// configuration over workloads × policies. A single simulation is the
// 1×1 special case. Fields mirror sim.Config / experiments.Params; zero
// values take the harness-scale defaults.
type JobRequest struct {
	Cores        int    `json:"cores"`
	Scale        int    `json:"scale,omitempty"`        // default 8
	Instructions uint64 `json:"instructions,omitempty"` // default 200000
	Warmup       uint64 `json:"warmup,omitempty"`       // default 50000
	Seed         uint64 `json:"seed,omitempty"`         // default 1

	// Policies and Workloads span the sweep grid. Workload entries name
	// registry models (substring match, like drishti-sim -workload); each
	// becomes one homogeneous mix, or "hetero" for one heterogeneous mix
	// drawn from the whole population.
	Policies  []PolicyRequest `json:"policies"`
	Workloads []string        `json:"workloads"`

	// TimeoutSec bounds the job's wall clock (0 = the service default).
	TimeoutSec int `json:"timeoutSec,omitempty"`

	// MaxRetries overrides the service's bounded retry budget for
	// transient failures (-1 = no retries, 0 = service default).
	MaxRetries int `json:"maxRetries,omitempty"`
}

// withDefaults resolves zero values to harness-scale defaults.
func (r JobRequest) withDefaults() JobRequest {
	if r.Scale == 0 {
		r.Scale = 8
	}
	if r.Instructions == 0 {
		r.Instructions = 200_000
	}
	if r.Warmup == 0 {
		r.Warmup = 50_000
	}
	if r.Seed == 0 {
		r.Seed = 1
	}
	return r
}

// Validate rejects malformed requests before they reach the queue.
func (r JobRequest) Validate() error {
	if r.Cores <= 0 || r.Cores > 128 {
		return fmt.Errorf("cores must be in [1,128], got %d", r.Cores)
	}
	if len(r.Policies) == 0 {
		return fmt.Errorf("at least one policy is required")
	}
	if len(r.Workloads) == 0 {
		return fmt.Errorf("at least one workload is required")
	}
	known := policies.KnownPolicies()
	for _, p := range r.Policies {
		ok := false
		for _, k := range known {
			if p.Name == k {
				ok = true
				break
			}
		}
		if !ok {
			return fmt.Errorf("unknown policy %q (known: %s)", p.Name, strings.Join(known, ", "))
		}
	}
	cfg := sim.ScaledConfig(r.Cores, maxInt(r.Scale, 1))
	for _, w := range r.Workloads {
		if w == "hetero" {
			continue
		}
		if _, err := lookupModel(cfg, w, maxInt(r.Scale, 1)); err != nil {
			return err
		}
	}
	if r.TimeoutSec < 0 {
		return fmt.Errorf("timeoutSec must be >= 0")
	}
	if r.Instructions > 100_000_000 {
		return fmt.Errorf("instructions above the 100M service ceiling")
	}
	return nil
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// lookupModel resolves a workload name (substring match) against the
// scaled model population, exactly like drishti-sim -workload.
func lookupModel(cfg sim.Config, name string, scale int) (workload.Model, error) {
	for _, m := range workload.ScaleAll(workload.AllSPECGAP(), scale, cfg.SetIndexBits()) {
		if strings.Contains(m.Name, name) {
			return m, nil
		}
	}
	return workload.Model{}, fmt.Errorf("no workload model matching %q", name)
}

// config builds the simulated machine for the request (policy unset; the
// executor stamps one per cell).
func (r JobRequest) config() sim.Config {
	cfg := sim.ScaledConfig(r.Cores, r.Scale)
	cfg.Instructions = r.Instructions
	cfg.Warmup = r.Warmup
	cfg.Seed = r.Seed
	return cfg
}

// mixes materializes the request's workloads as scaled mixes.
func (r JobRequest) mixes() ([]workload.Mix, error) {
	cfg := r.config()
	out := make([]workload.Mix, 0, len(r.Workloads))
	for _, w := range r.Workloads {
		if w == "hetero" {
			models := workload.ScaleAll(workload.AllSPECGAP(), r.Scale, cfg.SetIndexBits())
			out = append(out, workload.HeterogeneousMixes(models, r.Cores, 1, r.Seed)[0])
			continue
		}
		m, err := lookupModel(cfg, w, r.Scale)
		if err != nil {
			return nil, err
		}
		out = append(out, workload.Homogeneous(m, r.Cores, r.Seed))
	}
	return out, nil
}

// CellResult is one (workload, policy) simulation inside a job.
type CellResult struct {
	Policy    string      `json:"policy"`
	Workload  string      `json:"workload"`
	Mix       string      `json:"mix"`
	FromStore bool        `json:"fromStore"` // served from the durable store
	IPCSum    float64     `json:"ipcSum"`
	MPKI      float64     `json:"mpki"`
	WPKI      float64     `json:"wpki"`
	APKI      float64     `json:"apki"`
	Result    *sim.Result `json:"result,omitempty"`
}

// JobResult is what GET /v1/jobs/{id}/result returns for a done job.
type JobResult struct {
	Cells       []CellResult `json:"cells"`
	StoreHits   int          `json:"storeHits"`
	StoreMisses int          `json:"storeMisses"`
	ElapsedMS   int64        `json:"elapsedMs"`
}

// Job is one queued/running/finished unit of work. Mutable fields are
// guarded by the owning Service's mutex.
type Job struct {
	ID       string     `json:"id"`
	Request  JobRequest `json:"request"`
	Status   Status     `json:"status"`
	Error    string     `json:"error,omitempty"`
	Attempts int        `json:"attempts"` // execution attempts consumed

	EnqueuedAt time.Time `json:"enqueuedAt"`
	StartedAt  time.Time `json:"startedAt,omitempty"`
	FinishedAt time.Time `json:"finishedAt,omitempty"`

	Result *JobResult `json:"-"` // served by /result, not by /jobs/{id}

	cancel func() // non-nil while running; invoked by DELETE
}

// view is the wire form of a job's status (result elided).
type view struct {
	ID         string     `json:"id"`
	Status     Status     `json:"status"`
	Error      string     `json:"error,omitempty"`
	Attempts   int        `json:"attempts"`
	EnqueuedAt time.Time  `json:"enqueuedAt"`
	StartedAt  *time.Time `json:"startedAt,omitempty"`
	FinishedAt *time.Time `json:"finishedAt,omitempty"`
	Request    JobRequest `json:"request"`
}

// snapshot renders the job for the API. Caller holds the service mutex.
func (j *Job) snapshot() view {
	v := view{
		ID:         j.ID,
		Status:     j.Status,
		Error:      j.Error,
		Attempts:   j.Attempts,
		EnqueuedAt: j.EnqueuedAt,
		Request:    j.Request,
	}
	if !j.StartedAt.IsZero() {
		t := j.StartedAt
		v.StartedAt = &t
	}
	if !j.FinishedAt.IsZero() {
		t := j.FinishedAt
		v.FinishedAt = &t
	}
	return v
}
