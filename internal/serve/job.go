package serve

import (
	"time"

	"drishti/internal/serve/api"
)

// The wire schema — requests, results, statuses, views — lives in the
// shared internal/serve/api package so the single-node service, the fleet
// coordinator, and remote workers all marshal exactly the same bytes. The
// aliases below keep this package's exported surface (and its callers)
// unchanged.
type (
	// Status is a job's lifecycle state.
	Status = api.Status
	// PolicyRequest selects one replacement-policy stack.
	PolicyRequest = api.PolicyRequest
	// JobRequest is the JSON body of POST /v1/jobs.
	JobRequest = api.JobRequest
	// CellResult is one (workload, policy) simulation inside a job.
	CellResult = api.CellResult
	// JobResult is what GET /v1/jobs/{id}/result returns for a done job.
	JobResult = api.JobResult

	// view is the wire form of a job's status (result elided).
	view = api.JobView
)

const (
	StatusQueued    = api.StatusQueued
	StatusRunning   = api.StatusRunning
	StatusDone      = api.StatusDone
	StatusFailed    = api.StatusFailed
	StatusCancelled = api.StatusCancelled
)

// Job is one queued/running/finished unit of work. Mutable fields are
// guarded by the owning Service's mutex.
type Job struct {
	ID       string     `json:"id"`
	Request  JobRequest `json:"request"`
	Status   Status     `json:"status"`
	Error    string     `json:"error,omitempty"`
	Attempts int        `json:"attempts"` // execution attempts consumed

	EnqueuedAt time.Time `json:"enqueuedAt"`
	StartedAt  time.Time `json:"startedAt,omitempty"`
	FinishedAt time.Time `json:"finishedAt,omitempty"`

	Result *JobResult `json:"-"` // served by /result, not by /jobs/{id}

	// TraceID is the job's distributed-trace identity, assigned at Submit
	// when tracing is enabled (empty otherwise). Immutable after Submit.
	TraceID string `json:"traceId,omitempty"`

	cancel func() // non-nil while running; invoked by DELETE

	// Streaming state (v3): cells resolved so far, keyed by their position
	// in the job's deterministic cell order. First result per index wins —
	// a retried attempt re-resolving a cell is dropped, so stream watchers
	// never see the same index twice. cellSeq records arrival order; wake
	// is closed and replaced on every stream event (new cell or terminal
	// transition) to broadcast to blocked watchers.
	cells   map[int]CellResult
	cellSeq []int
	wake    chan struct{}
}

// snapshot renders the job for the API. Caller holds the service mutex.
func (j *Job) snapshot() view {
	v := view{
		ID:         j.ID,
		Status:     j.Status,
		Error:      j.Error,
		Attempts:   j.Attempts,
		EnqueuedAt: j.EnqueuedAt,
		Request:    j.Request,
		TraceID:    j.TraceID,
	}
	if !j.StartedAt.IsZero() {
		t := j.StartedAt
		v.StartedAt = &t
	}
	if !j.FinishedAt.IsZero() {
		t := j.FinishedAt
		v.FinishedAt = &t
	}
	return v
}
