package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"drishti/internal/obs"
	"drishti/internal/workload"
)

// testService builds a Service on a fresh registry and temp store, plus a
// live httptest server in front of its Handler.
func testService(t *testing.T, opts Options) (*Service, *httptest.Server, *obs.Registry) {
	t.Helper()
	reg := obs.NewRegistry()
	opts.Registry = reg
	if opts.StoreDir == "" {
		opts.StoreDir = t.TempDir()
	}
	s, err := New(opts)
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(s.Handler())
	t.Cleanup(srv.Close)
	return s, srv, reg
}

// smallSweep is a 2-policy sweep small enough to simulate in well under a
// second per cell.
func smallSweep(t *testing.T) JobRequest {
	t.Helper()
	name := workload.AllSPECGAP()[0].Name
	return JobRequest{
		Cores:        2,
		Scale:        8,
		Instructions: 20_000,
		Warmup:       5_000,
		Policies:     []PolicyRequest{{Name: "lru"}, {Name: "srrip"}},
		Workloads:    []string{name},
	}
}

func postJob(t *testing.T, srv *httptest.Server, req JobRequest) (string, *http.Response) {
	t.Helper()
	body, _ := json.Marshal(req)
	resp, err := http.Post(srv.URL+"/v1/jobs", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out struct {
		ID     string `json:"id"`
		Status Status `json:"status"`
	}
	json.NewDecoder(resp.Body).Decode(&out)
	return out.ID, resp
}

func getJSON(t *testing.T, url string, v any) int {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if v != nil {
		if err := json.NewDecoder(resp.Body).Decode(v); err != nil {
			t.Fatalf("decode %s: %v", url, err)
		}
	}
	return resp.StatusCode
}

// waitTerminal polls a job until it reaches a terminal status.
func waitTerminal(t *testing.T, srv *httptest.Server, id string, timeout time.Duration) view {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for {
		var v view
		if code := getJSON(t, srv.URL+"/v1/jobs/"+id, &v); code != http.StatusOK {
			t.Fatalf("GET job %s: HTTP %d", id, code)
		}
		if v.Status.Terminal() {
			return v
		}
		if time.Now().After(deadline) {
			t.Fatalf("job %s stuck in %s after %v", id, v.Status, timeout)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

func fetchResult(t *testing.T, srv *httptest.Server, id string) JobResult {
	t.Helper()
	var res JobResult
	if code := getJSON(t, srv.URL+"/v1/jobs/"+id+"/result", &res); code != http.StatusOK {
		t.Fatalf("GET result %s: HTTP %d", id, code)
	}
	return res
}

// TestE2ESecondSweepServedFromStore is the acceptance test: the same sweep
// submitted twice against a live server completes the second time entirely
// from the durable store, without invoking the simulator — asserted via the
// registry's store-hit counter and the per-cell FromStore flags.
func TestE2ESecondSweepServedFromStore(t *testing.T) {
	s, srv, reg := testService(t, Options{Workers: 2})
	defer s.Shutdown(shortCtx(t))

	req := smallSweep(t)
	id1, resp := postJob(t, srv, req)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit: HTTP %d", resp.StatusCode)
	}
	if v := waitTerminal(t, srv, id1, 30*time.Second); v.Status != StatusDone {
		t.Fatalf("first job: %s (%s)", v.Status, v.Error)
	}
	res1 := fetchResult(t, srv, id1)
	cells := len(req.Policies) * len(req.Workloads)
	if len(res1.Cells) != cells || res1.StoreMisses != cells || res1.StoreHits != 0 {
		t.Fatalf("cold run: %d cells, hits=%d misses=%d", len(res1.Cells), res1.StoreHits, res1.StoreMisses)
	}

	hitsBefore := reg.Counter("store_hits").Value()
	id2, _ := postJob(t, srv, req)
	if v := waitTerminal(t, srv, id2, 30*time.Second); v.Status != StatusDone {
		t.Fatalf("second job: %s (%s)", v.Status, v.Error)
	}
	res2 := fetchResult(t, srv, id2)
	if res2.StoreHits != cells || res2.StoreMisses != 0 {
		t.Fatalf("warm run not fully from store: hits=%d misses=%d", res2.StoreHits, res2.StoreMisses)
	}
	for _, c := range res2.Cells {
		if !c.FromStore {
			t.Fatalf("cell %s/%s recomputed on warm run", c.Policy, c.Mix)
		}
	}
	if got := reg.Counter("store_hits").Value() - hitsBefore; got != uint64(cells) {
		t.Fatalf("store-hit counter advanced by %d, want %d (simulator was invoked)", got, cells)
	}
	// Results must be bit-identical across cold and warm paths.
	for i := range res1.Cells {
		if res1.Cells[i].MPKI != res2.Cells[i].MPKI || res1.Cells[i].IPCSum != res2.Cells[i].IPCSum {
			t.Fatalf("store round-trip changed results: %+v vs %+v", res1.Cells[i], res2.Cells[i])
		}
	}
}

// TestCancelRunningJob is the second acceptance clause: cancelling a running
// job stops its worker via context and the job reports status "cancelled".
func TestCancelRunningJob(t *testing.T) {
	s, srv, _ := testService(t, Options{Workers: 1})
	defer s.Shutdown(shortCtx(t))

	req := smallSweep(t)
	req.Instructions = 80_000_000 // long enough to still be running when cancelled
	req.Warmup = 0
	id, _ := postJob(t, srv, req)

	// Wait until the worker has actually picked it up.
	deadline := time.Now().Add(10 * time.Second)
	for {
		var v view
		getJSON(t, srv.URL+"/v1/jobs/"+id, &v)
		if v.Status == StatusRunning {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("job never started (status %s)", v.Status)
		}
		time.Sleep(5 * time.Millisecond)
	}

	httpDelete(t, srv, id)
	start := time.Now()
	v := waitTerminal(t, srv, id, 10*time.Second)
	if v.Status != StatusCancelled {
		t.Fatalf("status %s after cancel, want cancelled", v.Status)
	}
	// The simulator polls its context every 1024 steps, so the worker must
	// come back far faster than the job would have taken to finish.
	if took := time.Since(start); took > 5*time.Second {
		t.Fatalf("cancel took %v; worker did not stop promptly", took)
	}
	if code := getJSON(t, srv.URL+"/v1/jobs/"+id+"/result", nil); code != http.StatusConflict {
		t.Fatalf("result of cancelled job: HTTP %d, want 409", code)
	}
}

func httpDelete(t *testing.T, srv *httptest.Server, id string) {
	t.Helper()
	req, _ := http.NewRequest(http.MethodDelete, srv.URL+"/v1/jobs/"+id, nil)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("DELETE: HTTP %d", resp.StatusCode)
	}
}

// TestCancelQueuedJob: a job cancelled before any worker picks it up flips
// straight to cancelled and is skipped when popped.
func TestCancelQueuedJob(t *testing.T) {
	s, srv, _ := testService(t, Options{Workers: -1})
	defer s.Shutdown(shortCtx(t))
	id, _ := postJob(t, srv, smallSweep(t))
	httpDelete(t, srv, id)
	var v view
	getJSON(t, srv.URL+"/v1/jobs/"+id, &v)
	if v.Status != StatusCancelled {
		t.Fatalf("queued job after cancel: %s", v.Status)
	}
}

// TestBackpressure429: once the queue is at capacity, submissions are
// rejected with 429 and a Retry-After header.
func TestBackpressure429(t *testing.T) {
	s, srv, reg := testService(t, Options{Workers: -1, QueueCap: 2})
	defer s.Shutdown(shortCtx(t))

	req := smallSweep(t)
	for i := 0; i < 2; i++ {
		if _, resp := postJob(t, srv, req); resp.StatusCode != http.StatusAccepted {
			t.Fatalf("submit %d: HTTP %d", i, resp.StatusCode)
		}
	}
	_, resp := postJob(t, srv, req)
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("over-capacity submit: HTTP %d, want 429", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("429 without Retry-After header")
	}
	if reg.Counter("jobs_rejected").Value() != 1 {
		t.Fatalf("jobs_rejected = %d", reg.Counter("jobs_rejected").Value())
	}
}

// TestQueuePersistRestore: queued jobs survive a shutdown/restart cycle with
// their IDs intact (satellite 4's round-trip requirement).
func TestQueuePersistRestore(t *testing.T) {
	dir := t.TempDir()
	s1, srv1, _ := testService(t, Options{Workers: -1, StoreDir: dir})
	req := smallSweep(t)
	idA, _ := postJob(t, srv1, req)
	idB, _ := postJob(t, srv1, req)
	if err := s1.Shutdown(shortCtx(t)); err != nil {
		t.Fatal(err)
	}
	srv1.Close()

	// Submissions after shutdown are refused.
	if _, err := s1.Submit(req); err == nil {
		t.Fatal("submit after shutdown succeeded")
	}

	s2, srv2, reg2 := testService(t, Options{Workers: -1, StoreDir: dir})
	defer s2.Shutdown(shortCtx(t))
	if got := reg2.Counter("jobs_restored").Value(); got != 2 {
		t.Fatalf("restored %d jobs, want 2", got)
	}
	for _, id := range []string{idA, idB} {
		var v view
		if code := getJSON(t, srv2.URL+"/v1/jobs/"+id, &v); code != http.StatusOK || v.Status != StatusQueued {
			t.Fatalf("restored job %s: HTTP %d status %s", id, code, v.Status)
		}
	}
	if s2.q.depth() != 2 {
		t.Fatalf("restored queue depth %d", s2.q.depth())
	}

	// Restored jobs actually run: a third service with workers drains them
	// (the queue file was consumed by s2, so persist it again first).
	if err := s2.Shutdown(shortCtx(t)); err != nil {
		t.Fatal(err)
	}
	s3, srv3, _ := testService(t, Options{Workers: 2, StoreDir: dir})
	defer s3.Shutdown(shortCtx(t))
	for _, id := range []string{idA, idB} {
		if v := waitTerminal(t, srv3, id, 30*time.Second); v.Status != StatusDone {
			t.Fatalf("restored job %s finished %s (%s)", id, v.Status, v.Error)
		}
	}
}

// TestJobTimeout: a request-level timeout fails the job rather than hanging
// the worker.
func TestJobTimeout(t *testing.T) {
	s, srv, _ := testService(t, Options{Workers: 1})
	defer s.Shutdown(shortCtx(t))
	req := smallSweep(t)
	req.Instructions = 80_000_000
	req.Warmup = 0
	req.TimeoutSec = 1
	id, _ := postJob(t, srv, req)
	v := waitTerminal(t, srv, id, 20*time.Second)
	if v.Status != StatusFailed {
		t.Fatalf("timed-out job: %s", v.Status)
	}
}

// TestSubmitValidation: malformed bodies and unknown names are 400s.
func TestSubmitValidation(t *testing.T) {
	s, srv, _ := testService(t, Options{Workers: -1})
	defer s.Shutdown(shortCtx(t))
	cases := []string{
		`{not json`,
		`{"cores": 0, "policies": [{"name":"lru"}], "workloads": ["x"]}`,
		`{"cores": 2, "policies": [{"name":"nope"}], "workloads": ["x"]}`,
		`{"cores": 2, "policies": [{"name":"lru"}], "workloads": ["no-such-model"]}`,
		`{"cores": 2, "policies": [], "workloads": ["x"]}`,
		`{"cores": 2, "unknownField": 1}`,
	}
	for _, body := range cases {
		resp, err := http.Post(srv.URL+"/v1/jobs", "application/json", bytes.NewReader([]byte(body)))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("body %q: HTTP %d, want 400", body, resp.StatusCode)
		}
	}
}

// TestAuxEndpoints: version, metrics, and store stats respond.
func TestAuxEndpoints(t *testing.T) {
	s, srv, _ := testService(t, Options{Workers: -1})
	defer s.Shutdown(shortCtx(t))
	var ver struct {
		GoVersion string `json:"goVersion"`
	}
	if code := getJSON(t, srv.URL+"/v1/version", &ver); code != http.StatusOK || ver.GoVersion == "" {
		t.Fatalf("version: HTTP %d %+v", code, ver)
	}
	var stats map[string]any
	if code := getJSON(t, srv.URL+"/v1/store/stats", &stats); code != http.StatusOK {
		t.Fatalf("store stats: HTTP %d", code)
	}
	if code := getJSON(t, srv.URL+"/metrics", nil); code != http.StatusOK {
		t.Fatalf("metrics: HTTP %d", code)
	}
	if code := getJSON(t, srv.URL+"/v1/jobs/zzz", nil); code != http.StatusNotFound {
		t.Fatalf("unknown job: HTTP %d", code)
	}
}

func shortCtx(t *testing.T) context.Context {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	t.Cleanup(cancel)
	return ctx
}
