package serve

import (
	"encoding/json"
	"testing"
	"time"

	"drishti/internal/scenario"
	"drishti/internal/workload"
)

// scenarioSweep is the declarative twin of smallSweep: the same machine,
// workload, and policy grid expressed as a scenario spec.
func scenarioSweep(t *testing.T) JobRequest {
	t.Helper()
	return JobRequest{Scenario: &scenario.Spec{
		Version: scenario.Version,
		Name:    "dedup-check",
		Seed:    1,
		Machine: scenario.MachineSpec{Cores: 2, Scale: 8, Instructions: 20_000, Warmup: 5_000},
		Clients: []scenario.ClientSpec{
			{Name: "all", Workload: scenario.SourceSpec{Preset: workload.AllSPECGAP()[0].Name}},
		},
		Sweep: scenario.SweepSpec{
			Policies: []scenario.PolicySpec{{Name: "lru"}, {Name: "srrip"}},
		},
	}}
}

// TestScenarioJobDedupsAgainstPlainSweep is the end-to-end content-address
// guarantee: a plain Go-constructed sweep runs first, then the equivalent
// scenario-spec submission is served entirely from the store — zero new
// simulations — with byte-identical per-cell results.
func TestScenarioJobDedupsAgainstPlainSweep(t *testing.T) {
	_, srv, _ := testService(t, Options{Workers: 2})

	plainID, _ := postJob(t, srv, smallSweep(t))
	if v := waitTerminal(t, srv, plainID, 30*time.Second); v.Status != StatusDone {
		t.Fatalf("plain job ended %s: %s", v.Status, v.Error)
	}
	plain := fetchResult(t, srv, plainID)

	scnID, _ := postJob(t, srv, scenarioSweep(t))
	if v := waitTerminal(t, srv, scnID, 30*time.Second); v.Status != StatusDone {
		t.Fatalf("scenario job ended %s: %s", v.Status, v.Error)
	}
	scn := fetchResult(t, srv, scnID)

	if len(scn.Cells) != len(plain.Cells) {
		t.Fatalf("scenario produced %d cells, plain %d", len(scn.Cells), len(plain.Cells))
	}
	if scn.StoreHits != len(scn.Cells) || scn.StoreMisses != 0 {
		t.Errorf("scenario job hit the store %d/%d times (misses %d), want all hits",
			scn.StoreHits, len(scn.Cells), scn.StoreMisses)
	}
	for i, c := range scn.Cells {
		if !c.FromStore {
			t.Errorf("cell %d (%s) was re-simulated", i, c.Policy)
		}
		got, err := json.Marshal(c.Result)
		if err != nil {
			t.Fatal(err)
		}
		want, err := json.Marshal(plain.Cells[i].Result)
		if err != nil {
			t.Fatal(err)
		}
		if string(got) != string(want) {
			t.Errorf("cell %d result diverged from the plain sweep's", i)
		}
		if c.Policy != plain.Cells[i].Policy {
			t.Errorf("cell %d policy = %s, plain %s", i, c.Policy, plain.Cells[i].Policy)
		}
	}
	// The label reflects the scenario run, not the plain workload name.
	if scn.Cells[0].Workload != "dedup-check/base" {
		t.Errorf("scenario cell workload label = %q", scn.Cells[0].Workload)
	}
}

// TestScenarioJobRuns executes a scenario job with no warm store: a
// multi-config sweep must produce one cell per run x policy.
func TestScenarioJobRuns(t *testing.T) {
	_, srv, _ := testService(t, Options{Workers: 2})
	req := scenarioSweep(t)
	req.Scenario.Sweep.Configs = []scenario.ConfigSpec{{Name: "n2"}, {Name: "n4", Cores: 4}}
	id, _ := postJob(t, srv, req)
	if v := waitTerminal(t, srv, id, 60*time.Second); v.Status != StatusDone {
		t.Fatalf("job ended %s: %s", v.Status, v.Error)
	}
	res := fetchResult(t, srv, id)
	if len(res.Cells) != 4 {
		t.Fatalf("got %d cells, want 4", len(res.Cells))
	}
	for _, c := range res.Cells {
		if c.Result == nil && !c.FromStore {
			t.Errorf("cell %s/%s has no result", c.Workload, c.Policy)
		}
	}
	if res.Cells[2].Workload != "dedup-check/n4" {
		t.Errorf("cell 2 label = %q", res.Cells[2].Workload)
	}
}
