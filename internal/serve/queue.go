package serve

import (
	"encoding/json"
	"errors"
	"fmt"
	"io/fs"
	"os"
	"sync"
	"time"

	"drishti/internal/serve/api"
	"drishti/internal/store"
)

// fifo is the bounded job queue: one FIFO lane per priority class
// (interactive, normal, batch), drained strictly in class order — an
// interactive job always dispatches before a queued batch job, and jobs of
// the same class keep submission order. Bounding happens at submission
// time (the HTTP layer rejects with 429 once total depth reaches
// capacity); the structure itself is elastic so a restored queue larger
// than the current capacity still loads completely.
type fifo struct {
	mu     sync.Mutex
	cond   *sync.Cond
	lanes  [3][]*Job // indexed by api.PriorityRank
	closed bool
}

func newFifo() *fifo {
	q := &fifo{}
	q.cond = sync.NewCond(&q.mu)
	return q
}

// push appends a job to its class lane. Returns false once the queue is
// closed.
func (q *fifo) push(j *Job) bool {
	q.mu.Lock()
	defer q.mu.Unlock()
	if q.closed {
		return false
	}
	r := api.PriorityRank(j.Request.Priority)
	q.lanes[r] = append(q.lanes[r], j)
	q.cond.Signal()
	return true
}

// pop blocks until a job is available or the queue closes, returning the
// oldest job of the most urgent non-empty class. On close it returns
// immediately even if jobs remain — shutdown wants them persisted, not
// executed.
func (q *fifo) pop() (*Job, bool) {
	q.mu.Lock()
	defer q.mu.Unlock()
	for q.lenLocked() == 0 && !q.closed {
		q.cond.Wait()
	}
	if q.closed {
		return nil, false
	}
	for r := range q.lanes {
		if len(q.lanes[r]) > 0 {
			j := q.lanes[r][0]
			q.lanes[r] = q.lanes[r][1:]
			return j, true
		}
	}
	return nil, false // unreachable: lenLocked() > 0
}

func (q *fifo) lenLocked() int {
	n := 0
	for r := range q.lanes {
		n += len(q.lanes[r])
	}
	return n
}

// depth returns the number of queued jobs across every class.
func (q *fifo) depth() int {
	q.mu.Lock()
	defer q.mu.Unlock()
	return q.lenLocked()
}

// close wakes every waiter; subsequent pushes fail and pops drain nothing.
func (q *fifo) close() {
	q.mu.Lock()
	q.closed = true
	q.cond.Broadcast()
	q.mu.Unlock()
}

// drain returns and removes every queued job (used after close to
// persist), most urgent class first, submission order within a class.
func (q *fifo) drain() []*Job {
	q.mu.Lock()
	defer q.mu.Unlock()
	var out []*Job
	for r := range q.lanes {
		out = append(out, q.lanes[r]...)
		q.lanes[r] = nil
	}
	return out
}

// --- durable queue state ----------------------------------------------------

// queueSchemaVersion guards the persisted-queue layout, like the store's
// SchemaVersion guards entries.
const queueSchemaVersion = 1

type persistedJob struct {
	ID         string     `json:"id"`
	Request    JobRequest `json:"request"`
	EnqueuedAt time.Time  `json:"enqueuedAt"`
}

type persistedQueue struct {
	Version int            `json:"v"`
	Jobs    []persistedJob `json:"jobs"`
}

// saveQueue atomically writes the still-queued jobs to path. An empty
// queue removes the file so a clean shutdown leaves no residue.
func saveQueue(path string, jobs []*Job) error {
	if len(jobs) == 0 {
		err := os.Remove(path)
		if errors.Is(err, fs.ErrNotExist) {
			return nil
		}
		return err
	}
	pq := persistedQueue{Version: queueSchemaVersion}
	for _, j := range jobs {
		pq.Jobs = append(pq.Jobs, persistedJob{ID: j.ID, Request: j.Request, EnqueuedAt: j.EnqueuedAt})
	}
	raw, err := json.MarshalIndent(pq, "", "  ")
	if err != nil {
		return err
	}
	return store.WriteFileAtomic(path, raw, 0o644)
}

// loadQueue reads a persisted queue, tolerating a missing file (fresh
// start) and rejecting an incompatible schema.
func loadQueue(path string) ([]persistedJob, error) {
	raw, err := os.ReadFile(path)
	if errors.Is(err, fs.ErrNotExist) {
		return nil, nil
	}
	if err != nil {
		return nil, err
	}
	var pq persistedQueue
	if err := json.Unmarshal(raw, &pq); err != nil {
		return nil, fmt.Errorf("serve: corrupt queue file %s: %w", path, err)
	}
	if pq.Version != queueSchemaVersion {
		return nil, fmt.Errorf("serve: queue file %s has schema v%d, want v%d", path, pq.Version, queueSchemaVersion)
	}
	return pq.Jobs, nil
}
