package serve

import (
	"encoding/json"
	"errors"
	"net/http"
	"net/http/pprof"
	"strconv"

	"drishti/internal/buildinfo"
	"drishti/internal/serve/api"
)

// Handler builds the service's HTTP API on a Go 1.22 pattern mux:
//
//	POST   /v1/jobs            submit (202; 400 invalid, 429 full/over-quota, 503 draining)
//	GET    /v1/jobs            list job statuses
//	GET    /v1/jobs/{id}        one job's status
//	GET    /v1/jobs/{id}/result a done job's result (409 until terminal)
//	GET    /v1/jobs/{id}/results stream per-cell results as NDJSON (v3)
//	GET    /v1/jobs/{id}/trace  the job's span tree (404 when tracing is off)
//	DELETE /v1/jobs/{id}        cancel (queued or running)
//	GET    /v1/store/stats      durable-store counters + disk usage
//	GET    /v1/version          build metadata
//	GET    /metrics             registry snapshot
//	/debug/pprof/*              live profiling
//
// In fleet mode the coordinator wraps this handler and additionally serves
// /v1/fleet and /v1/fleet/* (see internal/dist).
func (s *Service) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/jobs", s.handleSubmit)
	mux.HandleFunc("GET /v1/jobs", s.handleList)
	mux.HandleFunc("GET /v1/jobs/{id}", s.handleGet)
	mux.HandleFunc("GET /v1/jobs/{id}/result", s.handleResult)
	mux.HandleFunc("GET /v1/jobs/{id}/results", s.handleResultStream)
	mux.HandleFunc("GET /v1/jobs/{id}/trace", s.handleTrace)
	mux.HandleFunc("DELETE /v1/jobs/{id}", s.handleCancel)
	mux.HandleFunc("GET /v1/store/stats", s.handleStoreStats)
	mux.HandleFunc("GET /v1/version", func(w http.ResponseWriter, r *http.Request) {
		s.writeJSON(w, http.StatusOK, buildinfo.Read())
	})
	mux.HandleFunc("GET /metrics", func(w http.ResponseWriter, r *http.Request) {
		s.writeJSON(w, http.StatusOK, s.reg.Snapshot())
	})
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

// writeJSON renders v with the service's response framing. Encode failures
// cannot change the already-written status line, but they must not vanish
// either — a response the client could not have parsed is logged.
func (s *Service) writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(v); err != nil {
		s.log.Warn("response encode failed", "status", status, "err", err)
	}
}

func (s *Service) handleSubmit(w http.ResponseWriter, r *http.Request) {
	var req JobRequest
	if err := api.DecodeStrict(r.Body, &req); err != nil {
		s.writeJSON(w, http.StatusBadRequest, api.Error{Error: "bad request body: " + err.Error()})
		return
	}
	v, err := s.Submit(req)
	switch {
	case errors.Is(err, ErrQueueFull), errors.Is(err, ErrQuotaExceeded):
		// Retry-After is derived from the queue's observed drain rate, not
		// a constant: depth × mean job duration ÷ workers, clamped.
		w.Header().Set("Retry-After", strconv.Itoa(s.retryAfterSec()))
		s.writeJSON(w, http.StatusTooManyRequests, api.Error{Error: err.Error()})
		return
	case errors.Is(err, ErrDraining):
		s.writeJSON(w, http.StatusServiceUnavailable, api.Error{Error: err.Error()})
		return
	case err != nil:
		s.writeJSON(w, http.StatusBadRequest, api.Error{Error: err.Error()})
		return
	}
	s.writeJSON(w, http.StatusAccepted, map[string]any{
		"id":     v.ID,
		"status": v.Status,
	})
}

func (s *Service) handleList(w http.ResponseWriter, r *http.Request) {
	s.writeJSON(w, http.StatusOK, map[string]any{"jobs": s.List()})
}

func (s *Service) handleGet(w http.ResponseWriter, r *http.Request) {
	v, ok := s.Get(r.PathValue("id"))
	if !ok {
		s.writeJSON(w, http.StatusNotFound, api.Error{Error: "no such job"})
		return
	}
	s.writeJSON(w, http.StatusOK, v)
}

func (s *Service) handleResult(w http.ResponseWriter, r *http.Request) {
	res, status, ok := s.Result(r.PathValue("id"))
	if !ok {
		s.writeJSON(w, http.StatusNotFound, api.Error{Error: "no such job"})
		return
	}
	if !status.Terminal() {
		s.writeJSON(w, http.StatusConflict, api.Error{Error: "job is " + string(status) + "; result not ready"})
		return
	}
	if res == nil {
		s.writeJSON(w, http.StatusConflict, api.Error{Error: "job finished " + string(status) + " with no result"})
		return
	}
	s.writeJSON(w, http.StatusOK, res)
}

// handleResultStream is GET /v1/jobs/{id}/results (v3): chunked NDJSON,
// one compact api.ResultEvent per line — a "cell" event for every resolved
// cell in arrival order, then exactly one "done" event once the job is
// terminal. Watchers can connect at any point in the job's life: already-
// resolved cells replay immediately, then the stream follows live
// resolution. The buffered GET /result endpoint remains the authoritative
// merged view.
func (s *Service) handleResultStream(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	j, ok := s.jobs[r.PathValue("id")]
	s.mu.Unlock()
	if !ok {
		s.writeJSON(w, http.StatusNotFound, api.Error{Error: "no such job"})
		return
	}
	w.Header().Set("Content-Type", "application/x-ndjson")
	w.WriteHeader(http.StatusOK)
	flusher, _ := w.(http.Flusher)
	enc := json.NewEncoder(w) // compact: one event per line
	sent := 0
	for {
		s.mu.Lock()
		var events []api.ResultEvent
		for ; sent < len(j.cellSeq); sent++ {
			idx := j.cellSeq[sent]
			cell := j.cells[idx]
			events = append(events, api.ResultEvent{Event: api.EventCell, Index: idx, Cell: &cell})
		}
		terminal := j.Status.Terminal()
		if terminal {
			done := api.ResultEvent{Event: api.EventDone, Status: j.Status, Error: j.Error}
			if j.Result != nil {
				done.Cells = len(j.Result.Cells)
				done.StoreHits = j.Result.StoreHits
				done.StoreMisses = j.Result.StoreMisses
				done.ElapsedMS = j.Result.ElapsedMS
			}
			events = append(events, done)
		}
		wake := j.wake
		s.mu.Unlock()
		for _, ev := range events {
			if err := enc.Encode(ev); err != nil {
				return // client went away
			}
		}
		if len(events) > 0 && flusher != nil {
			flusher.Flush()
		}
		if terminal {
			return
		}
		select {
		case <-wake:
		case <-r.Context().Done():
			return
		}
	}
}

func (s *Service) handleTrace(w http.ResponseWriter, r *http.Request) {
	tv, ok := s.Trace(r.PathValue("id"))
	if !ok {
		s.writeJSON(w, http.StatusNotFound, api.Error{Error: "no trace for job (unknown job, or tracing disabled)"})
		return
	}
	s.writeJSON(w, http.StatusOK, tv)
}

func (s *Service) handleCancel(w http.ResponseWriter, r *http.Request) {
	status, ok := s.Cancel(r.PathValue("id"))
	if !ok {
		s.writeJSON(w, http.StatusNotFound, api.Error{Error: "no such job"})
		return
	}
	s.writeJSON(w, http.StatusOK, map[string]any{"id": r.PathValue("id"), "status": status})
}

func (s *Service) handleStoreStats(w http.ResponseWriter, r *http.Request) {
	entries, bytes, err := s.st.DiskStats()
	if err != nil {
		s.writeJSON(w, http.StatusInternalServerError, api.Error{Error: err.Error()})
		return
	}
	s.writeJSON(w, http.StatusOK, map[string]any{
		"counters":   s.st.Stats(),
		"entries":    entries,
		"diskBytes":  bytes,
		"dir":        s.st.Dir(),
		"queueDepth": s.q.depth(),
	})
}
