package serve

import (
	"encoding/json"
	"errors"
	"net/http"
	"net/http/pprof"

	"drishti/internal/buildinfo"
)

// Handler builds the service's HTTP API on a Go 1.22 pattern mux:
//
//	POST   /v1/jobs            submit (202; 400 invalid, 429 full, 503 draining)
//	GET    /v1/jobs            list job statuses
//	GET    /v1/jobs/{id}        one job's status
//	GET    /v1/jobs/{id}/result a done job's result (409 until terminal)
//	DELETE /v1/jobs/{id}        cancel (queued or running)
//	GET    /v1/store/stats      durable-store counters + disk usage
//	GET    /v1/version          build metadata
//	GET    /metrics             registry snapshot
//	/debug/pprof/*              live profiling
func (s *Service) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/jobs", s.handleSubmit)
	mux.HandleFunc("GET /v1/jobs", s.handleList)
	mux.HandleFunc("GET /v1/jobs/{id}", s.handleGet)
	mux.HandleFunc("GET /v1/jobs/{id}/result", s.handleResult)
	mux.HandleFunc("DELETE /v1/jobs/{id}", s.handleCancel)
	mux.HandleFunc("GET /v1/store/stats", s.handleStoreStats)
	mux.HandleFunc("GET /v1/version", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, buildinfo.Read())
	})
	mux.HandleFunc("GET /metrics", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, s.reg.Snapshot())
	})
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

type apiError struct {
	Error string `json:"error"`
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}

func (s *Service) handleSubmit(w http.ResponseWriter, r *http.Request) {
	var req JobRequest
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		writeJSON(w, http.StatusBadRequest, apiError{"bad request body: " + err.Error()})
		return
	}
	v, err := s.Submit(req)
	switch {
	case errors.Is(err, ErrQueueFull):
		w.Header().Set("Retry-After", "5")
		writeJSON(w, http.StatusTooManyRequests, apiError{err.Error()})
		return
	case errors.Is(err, ErrDraining):
		writeJSON(w, http.StatusServiceUnavailable, apiError{err.Error()})
		return
	case err != nil:
		writeJSON(w, http.StatusBadRequest, apiError{err.Error()})
		return
	}
	writeJSON(w, http.StatusAccepted, map[string]any{
		"id":     v.ID,
		"status": v.Status,
	})
}

func (s *Service) handleList(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{"jobs": s.List()})
}

func (s *Service) handleGet(w http.ResponseWriter, r *http.Request) {
	v, ok := s.Get(r.PathValue("id"))
	if !ok {
		writeJSON(w, http.StatusNotFound, apiError{"no such job"})
		return
	}
	writeJSON(w, http.StatusOK, v)
}

func (s *Service) handleResult(w http.ResponseWriter, r *http.Request) {
	res, status, ok := s.Result(r.PathValue("id"))
	if !ok {
		writeJSON(w, http.StatusNotFound, apiError{"no such job"})
		return
	}
	if !status.Terminal() {
		writeJSON(w, http.StatusConflict, apiError{"job is " + string(status) + "; result not ready"})
		return
	}
	if res == nil {
		writeJSON(w, http.StatusConflict, apiError{"job finished " + string(status) + " with no result"})
		return
	}
	writeJSON(w, http.StatusOK, res)
}

func (s *Service) handleCancel(w http.ResponseWriter, r *http.Request) {
	status, ok := s.Cancel(r.PathValue("id"))
	if !ok {
		writeJSON(w, http.StatusNotFound, apiError{"no such job"})
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{"id": r.PathValue("id"), "status": status})
}

func (s *Service) handleStoreStats(w http.ResponseWriter, r *http.Request) {
	entries, bytes, err := s.st.DiskStats()
	if err != nil {
		writeJSON(w, http.StatusInternalServerError, apiError{err.Error()})
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"counters":   s.st.Stats(),
		"entries":    entries,
		"diskBytes":  bytes,
		"dir":        s.st.Dir(),
		"queueDepth": s.q.depth(),
	})
}
