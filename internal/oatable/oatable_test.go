package oatable

import (
	"testing"

	"drishti/internal/stats"
)

func TestBasicInsertGet(t *testing.T) {
	tb := New[int](64)
	if tb.Get(1) != nil {
		t.Fatal("empty table returned a value")
	}
	*tb.Insert(1) = 10
	*tb.Insert(2) = 20
	if v := tb.Get(1); v == nil || *v != 10 {
		t.Fatalf("Get(1) = %v", v)
	}
	if v := tb.Get(2); v == nil || *v != 20 {
		t.Fatalf("Get(2) = %v", v)
	}
	if tb.Get(3) != nil {
		t.Fatal("absent key returned a value")
	}
	if tb.Len() != 2 {
		t.Fatalf("Len = %d", tb.Len())
	}
}

// collidingKeys returns n distinct keys whose Mix64 hashes all land on the
// same slot of a table with the given mask, forcing linear-probe chains.
func collidingKeys(mask uint64, n int) []uint64 {
	var out []uint64
	want := stats.Mix64(0xdead) & mask
	for k := uint64(0); len(out) < n; k++ {
		if stats.Mix64(k)&mask == want {
			out = append(out, k)
		}
	}
	return out
}

func TestCollisionChains(t *testing.T) {
	tb := New[uint64](16)
	keys := collidingKeys(uint64(tb.Cap()-1), 6)
	for i, k := range keys {
		*tb.Insert(k) = uint64(i)
	}
	for i, k := range keys {
		if v := tb.Get(k); v == nil || *v != uint64(i) {
			t.Fatalf("colliding key %#x lost (got %v)", k, v)
		}
	}
}

// TestProbeWraparound fills the last slots of the array so probe chains must
// wrap from the top of the table back to slot 0.
func TestProbeWraparound(t *testing.T) {
	tb := New[int](8)
	mask := uint64(tb.Cap() - 1)
	// Find keys hashing to the LAST slot; their chains wrap to index 0.
	var keys []uint64
	for k := uint64(0); len(keys) < 3; k++ {
		if stats.Mix64(k)&mask == mask {
			keys = append(keys, k)
		}
	}
	for i, k := range keys {
		*tb.Insert(k) = i + 100
	}
	for i, k := range keys {
		if v := tb.Get(k); v == nil || *v != i+100 {
			t.Fatalf("wrapped key %#x lost (got %v)", k, v)
		}
	}
}

func TestClearDropsEverything(t *testing.T) {
	tb := New[int](64)
	for k := uint64(0); k < 20; k++ {
		*tb.Insert(k) = int(k)
	}
	tb.Clear()
	if tb.Len() != 0 {
		t.Fatalf("Len after Clear = %d", tb.Len())
	}
	for k := uint64(0); k < 20; k++ {
		if tb.Get(k) != nil {
			t.Fatalf("key %d survived Clear", k)
		}
	}
	// The table stays usable and re-inserting yields zeroed slots.
	if v := tb.Insert(5); *v != 0 {
		t.Fatalf("slot not zeroed after Clear: %d", *v)
	}
}

// TestClearGenerationWraparound forces the uint32 generation counter to wrap
// and checks that old entries cannot resurrect.
func TestClearGenerationWraparound(t *testing.T) {
	tb := New[int](8)
	*tb.Insert(7) = 1
	tb.gen = ^uint32(0) // jump to the last generation
	// Re-tag the live entry so it is visible in this generation.
	for i := range tb.gens {
		if tb.keys[i] == 7 && tb.gens[i] != 0 {
			tb.gens[i] = tb.gen
		}
	}
	tb.Clear() // wraps: gen must reset and metadata must be zeroed
	if tb.gen == 0 {
		t.Fatal("generation stayed at 0")
	}
	if tb.Len() != 0 || tb.Get(7) != nil {
		t.Fatal("entry resurrected across generation wraparound")
	}
	*tb.Insert(7) = 2
	if v := tb.Get(7); v == nil || *v != 2 {
		t.Fatal("table unusable after wraparound")
	}
}

func TestEvictFirstOrderAndBackwardShift(t *testing.T) {
	tb := New[uint64](16)
	keys := collidingKeys(uint64(tb.Cap()-1), 4)
	for i, k := range keys {
		*tb.Insert(k) = uint64(i)
	}
	// EvictFirst removes the entry in the lowest occupied slot — the head of
	// the collision chain — and the rest must remain reachable.
	k0, v0, ok := tb.EvictFirst()
	if !ok || k0 != keys[0] || v0 != 0 {
		t.Fatalf("EvictFirst = (%#x, %d, %v), want (%#x, 0, true)", k0, v0, ok, keys[0])
	}
	if tb.Len() != 3 {
		t.Fatalf("Len after evict = %d", tb.Len())
	}
	for i := 1; i < len(keys); i++ {
		if v := tb.Get(keys[i]); v == nil || *v != uint64(i) {
			t.Fatalf("chain entry %#x unreachable after backward shift (got %v)", keys[i], v)
		}
	}
	if tb.Get(keys[0]) != nil {
		t.Fatal("evicted key still present")
	}
}

func TestEvictFirstEmpty(t *testing.T) {
	tb := New[int](8)
	if _, _, ok := tb.EvictFirst(); ok {
		t.Fatal("EvictFirst on empty table reported an entry")
	}
}

func TestEvictUntilEmpty(t *testing.T) {
	tb := New[int](32)
	for k := uint64(0); k < 12; k++ {
		*tb.Insert(k) = int(k)
	}
	seen := map[uint64]bool{}
	for {
		k, _, ok := tb.EvictFirst()
		if !ok {
			break
		}
		if seen[k] {
			t.Fatalf("key %d evicted twice", k)
		}
		seen[k] = true
	}
	if len(seen) != 12 || tb.Len() != 0 {
		t.Fatalf("evicted %d of 12, Len=%d", len(seen), tb.Len())
	}
}

func TestRangeSlotOrderDeterministic(t *testing.T) {
	mk := func() []uint64 {
		tb := New[int](64)
		for k := uint64(100); k < 120; k++ {
			*tb.Insert(k) = int(k)
		}
		var order []uint64
		tb.Range(func(key uint64, _ *int) bool {
			order = append(order, key)
			return true
		})
		return order
	}
	a, b := mk(), mk()
	if len(a) != 20 || len(b) != 20 {
		t.Fatalf("Range visited %d/%d entries", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("Range order differs at %d: %d vs %d", i, a[i], b[i])
		}
	}
}

func TestRangeEarlyStop(t *testing.T) {
	tb := New[int](32)
	for k := uint64(0); k < 10; k++ {
		tb.Insert(k)
	}
	n := 0
	tb.Range(func(uint64, *int) bool { n++; return n < 3 })
	if n != 3 {
		t.Fatalf("Range visited %d entries after early stop", n)
	}
}

// TestLazyGrowth: tables start small, double under load, and never exceed
// the bound given to New; entries survive every growth step.
func TestLazyGrowth(t *testing.T) {
	tb := New[uint64](1 << 12)
	if tb.Cap() != initialCap {
		t.Fatalf("fresh table cap = %d, want %d", tb.Cap(), initialCap)
	}
	for k := uint64(0); k < 1<<11; k++ {
		*tb.Insert(k) = k * 3
	}
	if tb.Cap() != 1<<12 {
		t.Fatalf("cap after %d inserts = %d, want %d", 1<<11, tb.Cap(), 1<<12)
	}
	for k := uint64(0); k < 1<<11; k++ {
		if v := tb.Get(k); v == nil || *v != k*3 {
			t.Fatalf("key %d lost across growth (got %v)", k, v)
		}
	}
	// Clear keeps capacity: steady-state flushes never re-grow.
	tb.Clear()
	if tb.Cap() != 1<<12 {
		t.Fatalf("Clear changed capacity to %d", tb.Cap())
	}
}

func TestSmallBoundStartsAtBound(t *testing.T) {
	tb := New[int](16)
	if tb.Cap() != 16 {
		t.Fatalf("cap = %d, want 16", tb.Cap())
	}
}

func TestInsertDuplicatePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("duplicate insert did not panic")
		}
	}()
	tb := New[int](8)
	tb.Insert(1)
	tb.Insert(1)
}

func TestInsertFullPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("overfull insert did not panic")
		}
	}()
	tb := New[int](8)
	for k := uint64(0); k < 9; k++ {
		tb.Insert(k)
	}
}
