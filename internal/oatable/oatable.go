// Package oatable provides a bounded open-addressing hash table with uint64
// keys, built for the simulator's hot train/lookup paths (prefetcher tables,
// the PC→slice tracker). Compared to a Go map it allocates nothing in steady
// state: lookups are Mix64-hashed linear probes over flat arrays, values
// live inline, and eviction is explicit — callers bound the entry count and
// either Clear the whole table (the generational flush the prefetchers use)
// or EvictFirst one deterministic entry. Clear is O(1) via a generation
// counter, so a flush costs no more than the insert that triggered it.
//
// Tables start small and double geometrically up to the capacity given to
// New, so a table that only ever sees a few dozen keys (one per-core stride
// table tracking a handful of PCs, say) stays a few cache lines rather than
// paying for its worst case. Growth is driven purely by the insert sequence,
// so it is deterministic, and Get/Insert/Clear semantics are independent of
// the current capacity.
package oatable

import (
	"fmt"

	"drishti/internal/stats"
)

// Table is a bounded open-addressing hash table from uint64 keys to inline V
// values. The zero Table is not usable; call New.
type Table[V any] struct {
	mask   uint64
	n      int
	maxCap int
	gen    uint32 // current generation; slots from older generations are free
	keys   []uint64
	gens   []uint32 // gens[i] == gen ⇒ slot i occupied
	vals   []V
}

// initialCap is the starting slot count for tables whose bound is larger.
const initialCap = 256

// New builds a table that can hold up to capacity slots (rounded up to a
// power of two, minimum 8). Callers must keep the live entry count at or
// below half that bound — probe performance and the full-table panic in
// Insert both rely on the table never filling up.
func New[V any](capacity int) *Table[V] {
	c := 8
	for c < capacity {
		c <<= 1
	}
	t := &Table[V]{maxCap: c}
	if c > initialCap {
		c = initialCap
	}
	t.alloc(c)
	return t
}

func (t *Table[V]) alloc(c int) {
	t.mask = uint64(c - 1)
	t.gen = 1
	t.keys = make([]uint64, c)
	t.gens = make([]uint32, c)
	t.vals = make([]V, c)
}

// Len returns the number of live entries.
func (t *Table[V]) Len() int { return t.n }

// Cap returns the current slot count (grows up to the bound given to New).
func (t *Table[V]) Cap() int { return len(t.keys) }

// Get returns a pointer to key's value, or nil if absent. The pointer stays
// valid until the table next grows, Clears, or evicts that entry.
func (t *Table[V]) Get(key uint64) *V {
	i := stats.Mix64(key) & t.mask
	for {
		if t.gens[i] != t.gen {
			return nil
		}
		if t.keys[i] == key {
			return &t.vals[i]
		}
		i = (i + 1) & t.mask
	}
}

// Insert adds key — which must be absent — and returns a pointer to its
// zeroed value slot, doubling the table first when it is half full and still
// below its bound. It panics if the table is full at its bound: callers are
// expected to limit Len with Clear or EvictFirst before inserting.
func (t *Table[V]) Insert(key uint64) *V {
	if c := len(t.keys); 2*(t.n+1) > c && c < t.maxCap {
		t.grow()
	}
	return t.insertNoGrow(key)
}

func (t *Table[V]) insertNoGrow(key uint64) *V {
	if t.n >= len(t.keys) {
		panic(fmt.Sprintf("oatable: insert into full table (cap %d)", len(t.keys)))
	}
	i := stats.Mix64(key) & t.mask
	for t.gens[i] == t.gen {
		if t.keys[i] == key {
			panic(fmt.Sprintf("oatable: duplicate insert of key %#x", key))
		}
		i = (i + 1) & t.mask
	}
	t.keys[i] = key
	t.gens[i] = t.gen
	var zero V
	t.vals[i] = zero
	t.n++
	return &t.vals[i]
}

// grow doubles the slot count and re-seats every live entry.
func (t *Table[V]) grow() {
	oldKeys, oldGens, oldVals, oldGen := t.keys, t.gens, t.vals, t.gen
	t.alloc(2 * len(oldKeys))
	t.n = 0
	for i, g := range oldGens {
		if g == oldGen {
			p := t.insertNoGrow(oldKeys[i])
			*p = oldVals[i]
		}
	}
}

// Clear drops every entry in O(1) by advancing the generation; capacity is
// kept. On the (unreachable in practice) generation wraparound it falls back
// to zeroing the slot metadata so stale generations cannot resurrect.
func (t *Table[V]) Clear() {
	t.n = 0
	t.gen++
	if t.gen == 0 {
		for i := range t.gens {
			t.gens[i] = 0
		}
		t.gen = 1
	}
}

// Range calls f for every live entry in slot order (a deterministic order,
// unlike Go map iteration) until f returns false.
func (t *Table[V]) Range(f func(key uint64, v *V) bool) {
	if t.n == 0 {
		return
	}
	for i := range t.keys {
		if t.gens[i] == t.gen && !f(t.keys[i], &t.vals[i]) {
			return
		}
	}
}

// EvictFirst removes the first live entry in slot order and returns its key
// and value. ok is false when the table is empty. Removal re-probes the
// entries that follow the hole so later lookups keep finding them (standard
// open-addressing backward-shift deletion).
func (t *Table[V]) EvictFirst() (key uint64, val V, ok bool) {
	if t.n == 0 {
		return 0, val, false
	}
	for i := range t.keys {
		if t.gens[i] == t.gen {
			key, val = t.keys[i], t.vals[i]
			t.deleteAt(uint64(i))
			return key, val, true
		}
	}
	return 0, val, false
}

// deleteAt empties slot i and backward-shifts the probe chain after it.
func (t *Table[V]) deleteAt(i uint64) {
	var zero V
	t.gens[i] = t.gen - 1
	t.vals[i] = zero
	t.n--
	// Re-seat every entry in the contiguous run after i: any of them may
	// have probed past slot i and become unreachable through the new hole.
	j := (i + 1) & t.mask
	for t.gens[j] == t.gen {
		k, v := t.keys[j], t.vals[j]
		t.gens[j] = t.gen - 1
		t.vals[j] = zero
		t.n--
		// Re-insert shifts the entry back toward its home slot.
		p := t.insertNoGrow(k)
		*p = v
		j = (j + 1) & t.mask
	}
}
