package scenario

import (
	"reflect"
	"strings"
	"testing"
)

func mustYAML(t *testing.T, src string) any {
	t.Helper()
	v, err := parseYAML([]byte(src))
	if err != nil {
		t.Fatalf("parseYAML: %v\n%s", err, src)
	}
	return v
}

func TestYAMLScalars(t *testing.T) {
	got := mustYAML(t, `
int: 42
hex: 0x10
neg: -3
float: 0.45
exp: 1e3
bool: true
off: false
nil1: null
nil2: ~
str: plain words
url: http://host:8080/x
dq: "a # not comment"
sq: 'it''s'
empty: ""
flow: [1, two, 3.5]
emptyflow: []
`)
	want := map[string]any{
		"int": int64(42), "hex": int64(0x10), "neg": int64(-3),
		"float": 0.45, "exp": 1e3, "bool": true, "off": false,
		"nil1": nil, "nil2": nil,
		"str": "plain words", "url": "http://host:8080/x",
		"dq": "a # not comment", "sq": "it's", "empty": "",
		"flow": []any{int64(1), "two", 3.5}, "emptyflow": []any{},
	}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("got  %#v\nwant %#v", got, want)
	}
}

func TestYAMLNesting(t *testing.T) {
	got := mustYAML(t, `
# document comment
top:
  inner: 1   # trailing comment
  list:
    - a
    - b
items:
  - name: x
    value: 1
  - name: y
    nested:
      deep: true
  -
    name: z
`)
	want := map[string]any{
		"top": map[string]any{
			"inner": int64(1),
			"list":  []any{"a", "b"},
		},
		"items": []any{
			map[string]any{"name": "x", "value": int64(1)},
			map[string]any{"name": "y", "nested": map[string]any{"deep": true}},
			map[string]any{"name": "z"},
		},
	}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("got  %#v\nwant %#v", got, want)
	}
}

func TestYAMLLiteralBlock(t *testing.T) {
	got := mustYAML(t, `
csv: |
  pc,addr,write,gap
  0x1,0x40,0,2

  0x2,0x80,1,3

after: 1
`)
	m := got.(map[string]any)
	want := "pc,addr,write,gap\n0x1,0x40,0,2\n\n0x2,0x80,1,3\n"
	if m["csv"] != want {
		t.Errorf("literal block = %q, want %q", m["csv"], want)
	}
	if m["after"] != int64(1) {
		t.Errorf("key after block = %v", m["after"])
	}
}

func TestYAMLErrors(t *testing.T) {
	cases := map[string]string{
		"tab indent":     "a:\n\tb: 1",
		"dup key":        "a: 1\na: 2",
		"bad indent":     "a: 1\n   b: 2",
		"seq in map":     "a: 1\n- b",
		"no colon":       "just words\n",
		"empty doc":      "   \n# only comments\n",
		"trailing":       "a: 1\nb: 2\n 3",
		"unclosed flow":  "a: [1, 2",
		"flow map":       "a: {b: 1}",
		"unclosed quote": "a: 'oops",
	}
	for name, src := range cases {
		if _, err := parseYAML([]byte(src)); err == nil {
			t.Errorf("%s: parsed without error:\n%s", name, src)
		}
	}
}

// TestParseJSONAndYAMLAgree pins the normalization contract: the same
// spec expressed as YAML and JSON decodes to identical Spec values, and
// unknown fields are rejected in both.
func TestParseJSONAndYAMLAgree(t *testing.T) {
	yamlSrc := `
version: 1
name: demo
machine:
  cores: 4
clients:
  - name: only
    workload:
      preset: mcf
`
	jsonSrc := `{"version":1,"name":"demo","machine":{"cores":4},
		"clients":[{"name":"only","workload":{"preset":"mcf"}}]}`
	fromYAML, err := Parse([]byte(yamlSrc))
	if err != nil {
		t.Fatal(err)
	}
	fromJSON, err := Parse([]byte(jsonSrc))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(fromYAML, fromJSON) {
		t.Errorf("YAML %+v != JSON %+v", fromYAML, fromJSON)
	}
	for _, bad := range []string{
		"version: 1\nname: x\nbogus: 1\nmachine:\n  cores: 2\nclients:\n  - name: a\n    workload:\n      preset: mcf\n",
		`{"version":1,"name":"x","bogus":1}`,
	} {
		if _, err := Parse([]byte(bad)); err == nil || !strings.Contains(err.Error(), "bogus") {
			t.Errorf("unknown field accepted or unnamed in error: %v", err)
		}
	}
}
