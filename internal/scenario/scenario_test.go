package scenario

import (
	"strings"
	"testing"

	"drishti/internal/sim"
	"drishti/internal/workload"
)

// specYAML is a spec exercising every source class; reordered below to pin
// field-order independence.
const specYAML = `
version: 1
name: kitchen-sink
seed: 9
machine:
  cores: 8
  scale: 8
  instructions: 40000
  warmup: 10000
clients:
  - name: pinned
    cores: 2
    workload:
      preset: 605.mcf_s-1554B
    arrival:
      process: weibull
      shape: 0.45
  - name: inline
    cores: 2
    workload:
      model:
        meanGap: 4.0
        streams:
          - kind: loop
            weight: 10
            footprintKB: 64
            pcs: 8
          - kind: seq
            weight: 2
            footprintKB: 4096
            pcs: 4
            writeFrac: 0.2
  - name: phasey
    cores: 2
    workload:
      phases:
        period: 5000
        of:
          - preset: 619.lbm_s-2676B
          - preset: 605.mcf_s-1554B
  - name: replay
    workload:
      trace:
        csv: |
          pc,addr,write,gap
          0x1,0x40,0,2
          0x2,0x80,1,3
sweep:
  policies:
    - name: lru
    - name: mockingjay
      drishti: true
  configs:
    - name: small
    - name: wide
      cores: 16
`

// specYAMLReordered is the same document with every mapping's keys and the
// client order-insensitive fields permuted (element order of clients,
// policies, and configs is semantic and kept).
const specYAMLReordered = `
name: kitchen-sink
seed: 9
version: 1
clients:
  - workload:
      preset: 605.mcf_s-1554B
    arrival:
      shape: 0.45
      process: weibull
    cores: 2
    name: pinned
  - cores: 2
    workload:
      model:
        streams:
          - weight: 10
            pcs: 8
            footprintKB: 64
            kind: loop
          - writeFrac: 0.2
            kind: seq
            footprintKB: 4096
            weight: 2
            pcs: 4
        meanGap: 4.0
    name: inline
  - name: phasey
    workload:
      phases:
        of:
          - preset: 619.lbm_s-2676B
          - preset: 605.mcf_s-1554B
        period: 5000
    cores: 2
  - name: replay
    workload:
      trace:
        csv: |
          pc,addr,write,gap
          0x1,0x40,0,2
          0x2,0x80,1,3
machine:
  warmup: 10000
  cores: 8
  instructions: 40000
  scale: 8
sweep:
  configs:
    - name: small
    - cores: 16
      name: wide
  policies:
    - name: lru
    - drishti: true
      name: mockingjay
`

func mustCompile(t *testing.T, src string) *Compiled {
	t.Helper()
	spec, err := Parse([]byte(src))
	if err != nil {
		t.Fatal(err)
	}
	c, err := spec.Compile("")
	if err != nil {
		t.Fatal(err)
	}
	return c
}

// TestCompileDeterministicAcrossOrderings pins that the content address is
// a function of the spec's meaning, not its serialization: reordering
// mapping keys must not move a single byte of the compiled key.
func TestCompileDeterministicAcrossOrderings(t *testing.T) {
	a := mustCompile(t, specYAML)
	b := mustCompile(t, specYAMLReordered)
	if a.Key() != b.Key() {
		t.Errorf("reordered spec compiled to a different key:\n%s\n%s", a.Key(), b.Key())
	}
	// Repeated compilation of one spec is bit-stable too.
	if again := mustCompile(t, specYAML); again.Key() != a.Key() {
		t.Error("recompiling the same spec changed the key")
	}
}

func TestCompileShape(t *testing.T) {
	c := mustCompile(t, specYAML)
	if len(c.Runs) != 2 || len(c.Policies) != 2 {
		t.Fatalf("got %d runs x %d policies, want 2x2", len(c.Runs), len(c.Policies))
	}
	if c.Runs[0].Name != "small" || c.Runs[0].Cfg.Cores != 8 {
		t.Errorf("run 0 = %s/%d cores", c.Runs[0].Name, c.Runs[0].Cfg.Cores)
	}
	if c.Runs[1].Name != "wide" || c.Runs[1].Cfg.Cores != 16 {
		t.Errorf("run 1 = %s/%d cores", c.Runs[1].Name, c.Runs[1].Cfg.Cores)
	}
	mix := c.Runs[0].Mix
	if mix.Cores() != 8 {
		t.Fatalf("mix cores = %d", mix.Cores())
	}
	// Client layout: 2 preset + 2 inline + 2 phased + 2 rest (trace).
	if len(mix.Sources) != 8 {
		t.Fatalf("sources = %d, want 8 (mix has active sources)", len(mix.Sources))
	}
	if mix.Sources[4].Phased == nil || mix.Sources[6].Trace == nil {
		t.Error("phased/trace sources not where the client layout puts them")
	}
	if !strings.Contains(mix.Models[0].Name, "mcf") || mix.Models[0].GapDist != "weibull" {
		t.Errorf("client 0 model = %+v", mix.Models[0])
	}
	// The wide run re-allocates the rest client: 16 - 6 = 10 trace cores.
	if n := c.Runs[1].Mix.Cores(); n != 16 {
		t.Errorf("wide run cores = %d", n)
	}
}

// TestHomogeneousEquivalence pins the dedup-critical identity: a
// single-preset scenario spanning the machine compiles to byte-identical
// cfg and mix keys as the Go-constructed homogeneous sweep, so spec
// submissions re-hit stored results from plain submissions.
func TestHomogeneousEquivalence(t *testing.T) {
	const name = "605.mcf_s-1554B"
	spec := Spec{
		Version: 1,
		Name:    "homo-check",
		Seed:    1,
		Machine: MachineSpec{Cores: 4, Scale: 8, Instructions: 20_000, Warmup: 5_000},
		Clients: []ClientSpec{{Name: "all", Workload: SourceSpec{Preset: name}}},
	}
	c, err := spec.Compile("")
	if err != nil {
		t.Fatal(err)
	}
	cfg := sim.ScaledConfig(4, 8)
	cfg.Instructions = 20_000
	cfg.Warmup = 5_000
	cfg.Seed = 1
	var model workload.Model
	for _, m := range workload.ScaleAll(workload.AllSPECGAP(), 8, cfg.SetIndexBits()) {
		if m.Name == name {
			model = m
			break
		}
	}
	want := workload.Homogeneous(model, 4, 1)
	if got := c.Runs[0].Mix.Key(); got != want.Key() {
		t.Errorf("mix key diverged from workload.Homogeneous:\n got %s\nwant %s", got, want.Key())
	}
	if got := c.Runs[0].Cfg.Key(); got != cfg.Key() {
		t.Errorf("cfg key diverged from sim.ScaledConfig:\n got %s\nwant %s", got, cfg.Key())
	}
}

func compileErr(t *testing.T, mut func(*Spec)) error {
	t.Helper()
	spec, err := Parse([]byte(specYAML))
	if err != nil {
		t.Fatal(err)
	}
	mut(spec)
	_, err = spec.Compile("")
	if err == nil {
		t.Fatal("compile succeeded, want error")
	}
	return err
}

func TestValidationErrors(t *testing.T) {
	if err := compileErr(t, func(s *Spec) { s.Version = 2 }); !strings.Contains(err.Error(), "version") {
		t.Errorf("version error: %v", err)
	}
	// Unknown presets and policies list the known names, newline-joined.
	err := compileErr(t, func(s *Spec) { s.Clients[0].Workload.Preset = "nosuchbench" })
	if !strings.Contains(err.Error(), "known presets:") || !strings.Contains(err.Error(), "620.omnetpp_s-874B") {
		t.Errorf("unknown preset error does not list names: %v", err)
	}
	err = compileErr(t, func(s *Spec) { s.Sweep.Policies[0].Name = "nosuchpolicy" })
	if !strings.Contains(err.Error(), "known policies:") || !strings.Contains(err.Error(), "mockingjay") {
		t.Errorf("unknown policy error does not list names: %v", err)
	}
	compileErr(t, func(s *Spec) { s.Clients[0].Fraction = 0.5 })                                           // cores+fraction
	compileErr(t, func(s *Spec) { s.Clients[0].Cores = 0 })                                                // two rest clients
	compileErr(t, func(s *Spec) { s.Clients[3].Cores = 3 })                                                // cores don't cover machine
	compileErr(t, func(s *Spec) { s.Clients[0].Workload.Model = &ModelSpec{} })                            // two sources
	compileErr(t, func(s *Spec) { s.Clients[1].Workload.Model.Streams = nil })                             // no streams
	compileErr(t, func(s *Spec) { s.Clients[1].Workload.Model.Streams[0].Kind = "zig" })                   // bad kind
	compileErr(t, func(s *Spec) { s.Clients[0].Arrival.Shape = 0 })                                        // weibull needs shape
	compileErr(t, func(s *Spec) { s.Clients[0].Arrival.Process = "pareto" })                               // unknown process
	compileErr(t, func(s *Spec) { s.Clients[3].Arrival = &ArrivalSpec{Process: "gamma", Shape: 1} })       // arrival on trace
	compileErr(t, func(s *Spec) { s.Clients[2].Workload.Phases.Of = s.Clients[2].Workload.Phases.Of[:1] }) // 1 phase
	compileErr(t, func(s *Spec) { s.Clients[3].Workload.Trace.File = "x.csv" })                            // file+csv
	compileErr(t, func(s *Spec) { s.Name = "has spaces" })                                                 // key-unsafe name
	compileErr(t, func(s *Spec) { s.Machine.Cores = MaxCores + 1 })                                        // too many cores
}

// TestTraceFileRejectedWithoutBaseDir pins the wire-submission rule: file
// traces only resolve when the caller anchors them to a directory.
func TestTraceFileRejectedWithoutBaseDir(t *testing.T) {
	spec, err := Parse([]byte(specYAML))
	if err != nil {
		t.Fatal(err)
	}
	spec.Clients[3].Workload.Trace = &TraceSpec{File: "some.csv"}
	if _, err := spec.Compile(""); err == nil || !strings.Contains(err.Error(), "inline the csv") {
		t.Errorf("file trace without baseDir: %v", err)
	}
}
