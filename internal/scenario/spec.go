// Package scenario is the declarative experiment layer: versioned,
// strict-decoded YAML/JSON scenario specs that compile into the existing
// workload.Mix / sim.Config machinery. One spec file describes a whole
// experiment — a multi-client workload (named registry presets, parametric
// models, phase schedules, or CSV trace replay, with per-client
// arrival/burst shaping) plus a sweep block of policies × machine
// configurations — and is accepted everywhere a Go-constructed sweep is:
// drishti-sim -scenario, drishti-bench -scenario, the job API's scenario
// field, and fleet decompose.
//
// Compiled scenarios join the content-address chain: every run resolves to
// the same sim.Config.Key()/workload.Mix.Key() pair a hand-built sweep
// produces, so the durable store, memo LRUs, and fleet dedup treat a
// spec-submitted job and its Go-constructed twin as the same work.
package scenario

import (
	"fmt"
	"strings"

	"drishti/internal/policies"
)

// Version is the current scenario-spec schema generation. Specs carry it
// explicitly (`version: 1`) so a future schema change cannot silently
// reinterpret committed files.
const Version = 1

// MaxCores bounds scenario machines; above the job API's 128-core sweep
// ceiling to cover the 128–256-core datacenter mixes scenarios target.
const MaxCores = 256

// Spec is the root of a scenario file.
type Spec struct {
	Version int    `json:"version"`
	Name    string `json:"name"`
	// Seed is the experiment seed (default 1); per-client seeds derive
	// from it unless a client pins its own.
	Seed    uint64       `json:"seed,omitempty"`
	Machine MachineSpec  `json:"machine"`
	Clients []ClientSpec `json:"clients"`
	Sweep   SweepSpec    `json:"sweep"`
}

// MachineSpec is the base simulated machine; sweep configs override
// individual fields.
type MachineSpec struct {
	Cores        int    `json:"cores"`
	Scale        int    `json:"scale,omitempty"`        // default 8
	Instructions uint64 `json:"instructions,omitempty"` // default 200000
	Warmup       uint64 `json:"warmup,omitempty"`       // default 50000
}

// ClientSpec is one tenant of the machine: a workload source pinned to an
// explicit core count or a fraction of the machine. Exactly one client may
// omit both and takes the remaining cores.
type ClientSpec struct {
	Name     string  `json:"name"`
	Cores    int     `json:"cores,omitempty"`
	Fraction float64 `json:"fraction,omitempty"`
	// Seed overrides the derived per-client seed (spec seed + client
	// index spacing) when non-zero.
	Seed     uint64       `json:"seed,omitempty"`
	Workload SourceSpec   `json:"workload"`
	Arrival  *ArrivalSpec `json:"arrival,omitempty"`
}

// SourceSpec selects the client's stream source; exactly one field set.
type SourceSpec struct {
	// Preset names a registry model (exact name first, then substring,
	// over SPEC/GAP then CVP1/Cloud/XSBench).
	Preset string `json:"preset,omitempty"`
	// Model declares a parametric model inline.
	Model *ModelSpec `json:"model,omitempty"`
	// Phases alternates component sources on a fixed period
	// (workload.PhasedModel).
	Phases *PhasesSpec `json:"phases,omitempty"`
	// Trace replays a CSV record stream (trace.ReadCSV format).
	Trace *TraceSpec `json:"trace,omitempty"`
}

func (s SourceSpec) count() int {
	n := 0
	if s.Preset != "" {
		n++
	}
	if s.Model != nil {
		n++
	}
	if s.Phases != nil {
		n++
	}
	if s.Trace != nil {
		n++
	}
	return n
}

// ModelSpec is a parametric workload model. Footprints are full-size; the
// machine scale shrinks them exactly as it does registry presets.
type ModelSpec struct {
	Name    string       `json:"name,omitempty"` // default: the client name
	MeanGap float64      `json:"meanGap"`
	Streams []StreamSpec `json:"streams"`
}

// StreamSpec mirrors workload.StreamSpec with a named kind.
type StreamSpec struct {
	Kind        string  `json:"kind"` // seq | loop | chase | gather | narrow
	Weight      float64 `json:"weight"`
	FootprintKB int     `json:"footprintKB"`
	PCs         int     `json:"pcs"`
	BlocksPerPC int     `json:"blocksPerPC,omitempty"`
	WriteFrac   float64 `json:"writeFrac,omitempty"`
	Skew        float64 `json:"skew,omitempty"`
	StrideBlk   int     `json:"strideBlk,omitempty"`
	HotSetFrac  float64 `json:"hotSetFrac,omitempty"`
	HotSets     int     `json:"hotSets,omitempty"`
}

// PhasesSpec is a phase schedule: the component sources (preset or model
// only) alternate every Period memory records.
type PhasesSpec struct {
	Period uint64       `json:"period"`
	Of     []SourceSpec `json:"of"`
}

// TraceSpec is a CSV trace replay source ("pc,addr,write,gap" header,
// looping when shorter than the run). File paths resolve relative to the
// spec file and are CLI-only; wire submissions must inline the CSV.
type TraceSpec struct {
	Name string `json:"name,omitempty"` // default: client name (csv) or file base name
	File string `json:"file,omitempty"`
	CSV  string `json:"csv,omitempty"`
}

// ArrivalSpec layers an inter-access gap process over the client's model
// source (not applicable to trace replay, which carries its own gaps).
type ArrivalSpec struct {
	Process string `json:"process"` // geometric | poisson | gamma | weibull
	// MeanGap overrides the model's mean gap when > 0.
	MeanGap float64 `json:"meanGap,omitempty"`
	// Shape is the gamma/weibull shape parameter k (< 1 = heavy-tailed
	// bursts).
	Shape float64 `json:"shape,omitempty"`
}

// SweepSpec spans the experiment grid: every config × every policy.
// Empty blocks default to the base machine under plain LRU.
type SweepSpec struct {
	Policies []PolicySpec `json:"policies,omitempty"`
	Configs  []ConfigSpec `json:"configs,omitempty"`
}

// PolicySpec selects one replacement-policy stack.
type PolicySpec struct {
	Name    string `json:"name"`
	Drishti bool   `json:"drishti,omitempty"`
}

// ConfigSpec overrides base machine fields for one sweep run; zero fields
// inherit the machine block.
type ConfigSpec struct {
	Name         string `json:"name,omitempty"`
	Cores        int    `json:"cores,omitempty"`
	Scale        int    `json:"scale,omitempty"`
	Instructions uint64 `json:"instructions,omitempty"`
	Warmup       uint64 `json:"warmup,omitempty"`
}

// WithDefaults resolves zero values to the harness-scale defaults the job
// API uses. Compile applies it internally, so callers holding a raw spec
// and callers holding a defaulted one compile to identical runs.
func (s Spec) WithDefaults() Spec {
	if s.Seed == 0 {
		s.Seed = 1
	}
	if s.Machine.Scale == 0 {
		s.Machine.Scale = 8
	}
	if s.Machine.Instructions == 0 {
		s.Machine.Instructions = 200_000
	}
	if s.Machine.Warmup == 0 {
		s.Machine.Warmup = 50_000
	}
	if len(s.Sweep.Policies) == 0 {
		s.Sweep.Policies = []PolicySpec{{Name: "lru"}}
	}
	if len(s.Sweep.Configs) == 0 {
		s.Sweep.Configs = []ConfigSpec{{}}
	}
	return s
}

// validName restricts names that feed content-address keys and mix names
// to a charset that cannot collide with the keys' delimiters.
func validName(s string) bool {
	if s == "" {
		return false
	}
	for _, r := range s {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9':
		case r == '.', r == '_', r == '-':
		default:
			return false
		}
	}
	return true
}

// Validate reports structural errors in the spec. It checks everything
// that does not require resolving sources (Compile covers preset lookup,
// trace loading, and per-config core allocation).
func (s Spec) Validate() error {
	if s.Version != Version {
		return fmt.Errorf("scenario: version %d not supported (current: %d)", s.Version, Version)
	}
	if !validName(s.Name) {
		return fmt.Errorf("scenario: name %q must be non-empty [a-zA-Z0-9._-]", s.Name)
	}
	if s.Machine.Cores <= 0 || s.Machine.Cores > MaxCores {
		return fmt.Errorf("scenario: machine cores must be in [1,%d], got %d", MaxCores, s.Machine.Cores)
	}
	if len(s.Clients) == 0 {
		return fmt.Errorf("scenario: at least one client is required")
	}
	rest := -1
	for i, cl := range s.Clients {
		if !validName(cl.Name) {
			return fmt.Errorf("scenario: client %d name %q must be non-empty [a-zA-Z0-9._-]", i, cl.Name)
		}
		if cl.Cores < 0 || cl.Cores > MaxCores {
			return fmt.Errorf("scenario: client %s cores out of range", cl.Name)
		}
		if cl.Fraction < 0 || cl.Fraction > 1 {
			return fmt.Errorf("scenario: client %s fraction must be in (0,1]", cl.Name)
		}
		if cl.Cores > 0 && cl.Fraction > 0 {
			return fmt.Errorf("scenario: client %s sets both cores and fraction", cl.Name)
		}
		if cl.Cores == 0 && cl.Fraction == 0 {
			if rest >= 0 {
				return fmt.Errorf("scenario: clients %s and %s both omit cores/fraction; at most one client may take the rest",
					s.Clients[rest].Name, cl.Name)
			}
			rest = i
		}
		if err := cl.Workload.validate(cl.Name, true); err != nil {
			return err
		}
		if cl.Arrival != nil {
			if cl.Workload.Trace != nil {
				return fmt.Errorf("scenario: client %s: arrival shaping does not apply to trace replay (traces carry their own gaps)", cl.Name)
			}
			if err := cl.Arrival.validate(cl.Name); err != nil {
				return err
			}
		}
	}
	known := policies.KnownPolicies()
	for _, p := range s.Sweep.Policies {
		ok := false
		for _, k := range known {
			if p.Name == k {
				ok = true
				break
			}
		}
		if !ok {
			return fmt.Errorf("scenario: unknown policy %q; known policies:\n  %s", p.Name, strings.Join(known, "\n  "))
		}
	}
	for i, c := range s.Sweep.Configs {
		if c.Name != "" && !validName(c.Name) {
			return fmt.Errorf("scenario: sweep config %d name %q must be [a-zA-Z0-9._-]", i, c.Name)
		}
		if c.Cores < 0 || c.Cores > MaxCores {
			return fmt.Errorf("scenario: sweep config %d cores must be in [1,%d]", i, MaxCores)
		}
		if c.Scale < 0 {
			return fmt.Errorf("scenario: sweep config %d has negative scale", i)
		}
	}
	return nil
}

// validate checks one source spec. Phase components recurse with
// nested=false: a phase may only be a preset or an inline model.
func (s SourceSpec) validate(client string, topLevel bool) error {
	switch n := s.count(); {
	case n == 0:
		return fmt.Errorf("scenario: client %s: workload needs one of preset/model/phases/trace", client)
	case n > 1:
		return fmt.Errorf("scenario: client %s: workload sets %d of preset/model/phases/trace; exactly one allowed", client, n)
	}
	if s.Model != nil {
		if err := s.Model.validate(client); err != nil {
			return err
		}
	}
	if s.Phases != nil {
		if !topLevel {
			return fmt.Errorf("scenario: client %s: phases cannot nest inside phases", client)
		}
		if s.Phases.Period == 0 {
			return fmt.Errorf("scenario: client %s: phases needs a non-zero period", client)
		}
		if len(s.Phases.Of) < 2 {
			return fmt.Errorf("scenario: client %s: phases needs at least two components", client)
		}
		for _, of := range s.Phases.Of {
			if of.Trace != nil {
				return fmt.Errorf("scenario: client %s: a phase component cannot be a trace", client)
			}
			if err := of.validate(client, false); err != nil {
				return err
			}
		}
	}
	if s.Trace != nil {
		set := 0
		if s.Trace.File != "" {
			set++
		}
		if s.Trace.CSV != "" {
			set++
		}
		if set != 1 {
			return fmt.Errorf("scenario: client %s: trace needs exactly one of file/csv", client)
		}
		if s.Trace.Name != "" && !validName(s.Trace.Name) {
			return fmt.Errorf("scenario: client %s: trace name %q must be [a-zA-Z0-9._-]", client, s.Trace.Name)
		}
	}
	return nil
}

func (m *ModelSpec) validate(client string) error {
	if m.Name != "" && !validName(m.Name) {
		return fmt.Errorf("scenario: client %s: model name %q must be [a-zA-Z0-9._-]", client, m.Name)
	}
	if len(m.Streams) == 0 {
		return fmt.Errorf("scenario: client %s: model has no streams", client)
	}
	for i, st := range m.Streams {
		if _, err := streamKind(st.Kind); err != nil {
			return fmt.Errorf("scenario: client %s stream %d: %w", client, i, err)
		}
	}
	// Numeric ranges are covered by workload.Model.Validate at compile.
	return nil
}

func (a *ArrivalSpec) validate(client string) error {
	switch a.Process {
	case "geometric", "poisson":
		if a.Shape != 0 {
			return fmt.Errorf("scenario: client %s: arrival process %q takes no shape", client, a.Process)
		}
	case "gamma", "weibull":
		if a.Shape <= 0 {
			return fmt.Errorf("scenario: client %s: arrival process %q needs shape > 0", client, a.Process)
		}
	default:
		return fmt.Errorf("scenario: client %s: unknown arrival process %q (geometric|poisson|gamma|weibull)", client, a.Process)
	}
	if a.MeanGap < 0 {
		return fmt.Errorf("scenario: client %s: arrival meanGap must be >= 0", client)
	}
	return nil
}
