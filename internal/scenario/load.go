package scenario

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"os"
)

// Load reads and strict-decodes a scenario spec file, YAML or JSON by
// content. Callers compiling a loaded spec should pass the spec file's
// directory as Compile's baseDir so relative trace paths resolve.
func Load(path string) (*Spec, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	s, err := Parse(data)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return s, nil
}

// Parse strict-decodes a spec from YAML or JSON bytes: unknown fields and
// trailing garbage are rejected, exactly like the job API's wire decoding
// (a YAML document is normalized through JSON first, so both formats share
// one schema).
func Parse(data []byte) (*Spec, error) {
	js := data
	if trimmed := bytes.TrimLeft(data, " \t\r\n"); len(trimmed) == 0 || trimmed[0] != '{' {
		doc, err := parseYAML(data)
		if err != nil {
			return nil, err
		}
		js, err = json.Marshal(doc)
		if err != nil {
			return nil, fmt.Errorf("scenario: normalizing yaml: %w", err)
		}
	}
	var s Spec
	if err := decodeStrict(bytes.NewReader(js), &s); err != nil {
		return nil, fmt.Errorf("scenario: %w", err)
	}
	return &s, nil
}

// decodeStrict mirrors api.DecodeStrict (the api package imports this one,
// so the helper is duplicated rather than the dependency inverted).
func decodeStrict(r io.Reader, v any) error {
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		return err
	}
	if dec.More() {
		return errors.New("trailing data after JSON value")
	}
	return nil
}
