package scenario

// A minimal YAML-subset parser, sufficient for scenario specs: block
// mappings and sequences by indentation, inline "- key: value" sequence
// items, scalars (null/bool/int/uint/float/string, single- and
// double-quoted), flow lists ([a, b]), "#" comments, and "|" literal
// blocks (for inline CSV traces). The repo deliberately has no
// third-party dependencies, and the subset keeps the accepted grammar
// small enough to pin with tests.
//
// Parsed documents are generic (map[string]any / []any / scalars) and are
// round-tripped through encoding/json into the Spec with unknown-field
// rejection, so YAML and JSON submissions share one strict schema.

import (
	"fmt"
	"strconv"
	"strings"
)

type yamlLine struct {
	n      int    // 1-based line number
	indent int    // leading spaces
	text   string // raw content after indentation (comments intact)
}

type yamlParser struct {
	lines []yamlLine
	pos   int
}

// parseYAML parses one document into generic Go values.
func parseYAML(data []byte) (any, error) {
	raw := strings.Split(strings.ReplaceAll(string(data), "\r\n", "\n"), "\n")
	p := &yamlParser{}
	for i, ln := range raw {
		j := 0
		for j < len(ln) && ln[j] == ' ' {
			j++
		}
		if j < len(ln) && ln[j] == '\t' {
			return nil, fmt.Errorf("yaml: line %d: tab in indentation (use spaces)", i+1)
		}
		p.lines = append(p.lines, yamlLine{n: i + 1, indent: j, text: ln[j:]})
	}
	p.skipBlank()
	if !p.eof() && strings.TrimSpace(p.cur().text) == "---" {
		p.pos++
		p.skipBlank()
	}
	if p.eof() {
		return nil, fmt.Errorf("yaml: empty document")
	}
	v, err := p.parseNode(p.cur().indent)
	if err != nil {
		return nil, err
	}
	p.skipBlank()
	if !p.eof() {
		return nil, fmt.Errorf("yaml: line %d: content outside the document structure", p.cur().n)
	}
	return v, nil
}

func (p *yamlParser) eof() bool     { return p.pos >= len(p.lines) }
func (p *yamlParser) cur() yamlLine { return p.lines[p.pos] }

// skipBlank advances over blank and comment-only lines.
func (p *yamlParser) skipBlank() {
	for !p.eof() {
		t := strings.TrimSpace(p.lines[p.pos].text)
		if t != "" && !strings.HasPrefix(t, "#") {
			return
		}
		p.pos++
	}
}

func isSeqItem(text string) bool {
	return text == "-" || strings.HasPrefix(text, "- ")
}

func (p *yamlParser) parseNode(indent int) (any, error) {
	if isSeqItem(p.cur().text) {
		return p.parseSeq(indent)
	}
	return p.parseMap(indent)
}

func (p *yamlParser) parseMap(indent int) (map[string]any, error) {
	out := map[string]any{}
	for {
		p.skipBlank()
		if p.eof() || p.cur().indent < indent {
			return out, nil
		}
		ln := p.cur()
		if ln.indent > indent {
			return nil, fmt.Errorf("yaml: line %d: unexpected indentation", ln.n)
		}
		if isSeqItem(ln.text) {
			return nil, fmt.Errorf("yaml: line %d: sequence item where a mapping key was expected", ln.n)
		}
		key, rest, err := splitKey(ln)
		if err != nil {
			return nil, err
		}
		if _, dup := out[key]; dup {
			return nil, fmt.Errorf("yaml: line %d: duplicate key %q", ln.n, key)
		}
		p.pos++
		switch rest {
		case "":
			// Nested block (or an explicitly empty value).
			p.skipBlank()
			if p.eof() || p.cur().indent <= indent {
				out[key] = nil
				continue
			}
			v, err := p.parseNode(p.cur().indent)
			if err != nil {
				return nil, err
			}
			out[key] = v
		case "|":
			out[key] = p.literalBlock(indent)
		default:
			v, err := parseScalar(rest, ln.n)
			if err != nil {
				return nil, err
			}
			out[key] = v
		}
	}
}

func (p *yamlParser) parseSeq(indent int) ([]any, error) {
	out := []any{}
	for {
		p.skipBlank()
		if p.eof() || p.cur().indent < indent {
			return out, nil
		}
		ln := p.cur()
		if ln.indent > indent || !isSeqItem(ln.text) {
			return nil, fmt.Errorf("yaml: line %d: expected a \"- \" sequence item", ln.n)
		}
		if ln.text == "-" {
			p.pos++
			p.skipBlank()
			if p.eof() || p.cur().indent <= indent {
				out = append(out, nil)
				continue
			}
			v, err := p.parseNode(p.cur().indent)
			if err != nil {
				return nil, err
			}
			out = append(out, v)
			continue
		}
		rest := strings.TrimLeft(ln.text[2:], " ")
		off := indent + len(ln.text) - len(rest) // column of the item's content
		if _, _, err := splitKey(yamlLine{n: ln.n, text: rest}); err == nil {
			// "- key: value": the item is a mapping whose first entry sits
			// on the dash line; rewrite the line at the content column and
			// let parseMap consume it together with the following keys.
			p.lines[p.pos] = yamlLine{n: ln.n, indent: off, text: rest}
			v, err := p.parseMap(off)
			if err != nil {
				return nil, err
			}
			out = append(out, v)
			continue
		}
		p.pos++
		sc := strings.TrimSpace(stripComment(rest))
		if sc == "" {
			out = append(out, nil)
			continue
		}
		v, err := parseScalar(sc, ln.n)
		if err != nil {
			return nil, err
		}
		out = append(out, v)
	}
}

// literalBlock collects the indented lines after a "key: |" header,
// strips their common indentation, and joins them with newlines. Inner
// blank lines survive; trailing blank lines are dropped (one trailing
// newline remains, YAML's clip chomping).
func (p *yamlParser) literalBlock(keyIndent int) string {
	var block []yamlLine
	for !p.eof() {
		ln := p.cur()
		if strings.TrimSpace(ln.text) == "" {
			block = append(block, yamlLine{}) // blank marker (n == 0)
			p.pos++
			continue
		}
		if ln.indent <= keyIndent {
			break
		}
		block = append(block, ln)
		p.pos++
	}
	for len(block) > 0 && block[len(block)-1].n == 0 {
		block = block[:len(block)-1]
	}
	if len(block) == 0 {
		return ""
	}
	min := -1
	for _, ln := range block {
		if ln.n != 0 && (min < 0 || ln.indent < min) {
			min = ln.indent
		}
	}
	var b strings.Builder
	for _, ln := range block {
		if ln.n == 0 {
			b.WriteByte('\n')
			continue
		}
		b.WriteString(strings.Repeat(" ", ln.indent-min))
		b.WriteString(ln.text)
		b.WriteByte('\n')
	}
	return b.String()
}

// splitKey splits a "key: value" line at the first unquoted ": " (or a
// trailing ":"), stripping any comment from the value side.
func splitKey(ln yamlLine) (key, rest string, err error) {
	s := ln.text
	inS, inD := false, false
	for i := 0; i < len(s); i++ {
		switch c := s[i]; {
		case c == '\'' && !inD:
			inS = !inS
		case c == '"' && !inS:
			inD = !inD
		case c == '#' && !inS && !inD && i > 0 && s[i-1] == ' ':
			return "", "", fmt.Errorf("yaml: line %d: expected \"key: value\"", ln.n)
		case c == ':' && !inS && !inD:
			if i+1 < len(s) && s[i+1] != ' ' {
				continue // a colon inside an unquoted scalar ("http://...")
			}
			key = strings.TrimSpace(s[:i])
			if key == "" {
				return "", "", fmt.Errorf("yaml: line %d: empty mapping key", ln.n)
			}
			if strings.HasPrefix(key, "\"") || strings.HasPrefix(key, "'") {
				kv, err := parseScalar(key, ln.n)
				if err != nil {
					return "", "", err
				}
				ks, ok := kv.(string)
				if !ok {
					return "", "", fmt.Errorf("yaml: line %d: non-string mapping key", ln.n)
				}
				key = ks
			}
			return key, strings.TrimSpace(stripComment(s[i+1:])), nil
		}
	}
	return "", "", fmt.Errorf("yaml: line %d: expected \"key: value\"", ln.n)
}

// stripComment drops an unquoted "#" comment (at start, or after a space).
func stripComment(s string) string {
	inS, inD := false, false
	for i := 0; i < len(s); i++ {
		switch c := s[i]; {
		case c == '\'' && !inD:
			inS = !inS
		case c == '"' && !inS:
			inD = !inD
		case c == '#' && !inS && !inD:
			if i == 0 || s[i-1] == ' ' {
				return s[:i]
			}
		}
	}
	return s
}

// parseScalar interprets one scalar (or flow list) value.
func parseScalar(s string, line int) (any, error) {
	s = strings.TrimSpace(s)
	switch {
	case strings.HasPrefix(s, "["):
		if !strings.HasSuffix(s, "]") {
			return nil, fmt.Errorf("yaml: line %d: unterminated flow list", line)
		}
		inner := strings.TrimSpace(s[1 : len(s)-1])
		out := []any{}
		if inner == "" {
			return out, nil
		}
		for _, part := range splitFlow(inner) {
			v, err := parseScalar(part, line)
			if err != nil {
				return nil, err
			}
			out = append(out, v)
		}
		return out, nil
	case strings.HasPrefix(s, "{"):
		return nil, fmt.Errorf("yaml: line %d: flow mappings are not supported (use block form)", line)
	case strings.HasPrefix(s, "\""):
		v, err := strconv.Unquote(s)
		if err != nil {
			return nil, fmt.Errorf("yaml: line %d: bad quoted string %s", line, s)
		}
		return v, nil
	case strings.HasPrefix(s, "'"):
		if len(s) < 2 || !strings.HasSuffix(s, "'") {
			return nil, fmt.Errorf("yaml: line %d: unterminated single-quoted string", line)
		}
		return strings.ReplaceAll(s[1:len(s)-1], "''", "'"), nil
	}
	switch s {
	case "null", "~":
		return nil, nil
	case "true":
		return true, nil
	case "false":
		return false, nil
	}
	if i, err := strconv.ParseInt(s, 0, 64); err == nil {
		return i, nil
	}
	if u, err := strconv.ParseUint(s, 0, 64); err == nil {
		return u, nil
	}
	if f, err := strconv.ParseFloat(s, 64); err == nil {
		return f, nil
	}
	return s, nil
}

// splitFlow splits a flow-list body on top-level commas (quote-aware; no
// nested flow lists).
func splitFlow(s string) []string {
	var (
		out      []string
		start    int
		inS, inD bool
	)
	for i := 0; i < len(s); i++ {
		switch c := s[i]; {
		case c == '\'' && !inD:
			inS = !inS
		case c == '"' && !inS:
			inD = !inD
		case c == ',' && !inS && !inD:
			out = append(out, strings.TrimSpace(s[start:i]))
			start = i + 1
		}
	}
	return append(out, strings.TrimSpace(s[start:]))
}
