package scenario

import (
	"bytes"
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"testing"
)

var update = flag.Bool("update", false, "rewrite the golden spec-schema files")

// encodeWire renders v the way the job service's writeJSON does (two-space
// indent, trailing newline) so the golden bytes match what a wire client
// round-trips.
func encodeWire(t *testing.T, v any) []byte {
	t.Helper()
	var buf bytes.Buffer
	enc := json.NewEncoder(&buf)
	enc.SetIndent("", "  ")
	if err := enc.Encode(v); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func checkGolden(t *testing.T, name string, got []byte) {
	t.Helper()
	path := filepath.Join("testdata", name)
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden file (run go test ./internal/scenario -update): %v", err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("%s drifted from the golden format.\n--- got ---\n%s--- want ---\n%s"+
			"A deliberate schema change must bump scenario.Version and regenerate with -update.",
			name, got, want)
	}
}

// TestGoldenSpecSchema pins the scenario spec's JSON schema bytes — every
// field name, omitempty decision, and default — plus the compiled content
// address of a fixed spec. A rename or tag change that would silently break
// committed spec files (or move stored results to new keys) fails here.
func TestGoldenSpecSchema(t *testing.T) {
	spec, err := Parse([]byte(specYAML))
	if err != nil {
		t.Fatal(err)
	}
	// The raw spec round-trips with defaults applied, the form the job API
	// echoes back after WithDefaults.
	checkGolden(t, "spec_v1.golden.json", encodeWire(t, spec.WithDefaults()))

	key, err := spec.Key()
	if err != nil {
		t.Fatal(err)
	}
	checkGolden(t, "spec_v1.key.golden", append([]byte(key), '\n'))
}
