package scenario

import (
	"os"
	"path/filepath"
	"sort"
	"testing"

	"drishti/internal/sim"
)

// examplesDir is the committed scenario library at the repo root.
const examplesDir = "../../examples/scenarios"

// TestExampleScenariosCompile loads and compiles every committed example
// spec — the same validation `make scenarios` and CI run — so a registry
// rename or schema change can never orphan a shipped file.
func TestExampleScenariosCompile(t *testing.T) {
	entries, err := os.ReadDir(examplesDir)
	if err != nil {
		t.Fatal(err)
	}
	var files []string
	for _, e := range entries {
		if ext := filepath.Ext(e.Name()); ext == ".yaml" || ext == ".yml" || ext == ".json" {
			files = append(files, e.Name())
		}
	}
	sort.Strings(files)
	if len(files) < 4 {
		t.Fatalf("examples/scenarios holds %d specs, want at least 4", len(files))
	}
	for _, name := range files {
		t.Run(name, func(t *testing.T) {
			spec, err := Load(filepath.Join(examplesDir, name))
			if err != nil {
				t.Fatal(err)
			}
			c, err := spec.Compile(examplesDir)
			if err != nil {
				t.Fatal(err)
			}
			if len(c.Runs) == 0 || len(c.Policies) == 0 {
				t.Fatalf("compiled to %d runs x %d policies", len(c.Runs), len(c.Policies))
			}
			// Compiling twice must give the same content address.
			again, err := spec.Compile(examplesDir)
			if err != nil {
				t.Fatal(err)
			}
			if c.Key() != again.Key() {
				t.Error("recompile changed the key")
			}
		})
	}
}

// TestExampleScenarioRuns executes the smallest committed scenario end to
// end (every run x policy cell) — the smoke `make scenarios` repeats.
func TestExampleScenarioRuns(t *testing.T) {
	spec, err := Load(filepath.Join(examplesDir, "trace-replay.yaml"))
	if err != nil {
		t.Fatal(err)
	}
	c, err := spec.Compile(examplesDir)
	if err != nil {
		t.Fatal(err)
	}
	for _, run := range c.Runs {
		for _, pol := range c.Policies {
			cfg := run.Cfg
			cfg.Policy = pol
			res, err := sim.RunMix(cfg, run.Mix)
			if err != nil {
				t.Fatalf("run %s policy %s: %v", run.Name, pol.DisplayName(), err)
			}
			if res.IPCSum() <= 0 {
				t.Errorf("run %s policy %s: non-positive IPC sum", run.Name, pol.DisplayName())
			}
		}
	}
}
