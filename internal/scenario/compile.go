package scenario

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"drishti/internal/policies"
	"drishti/internal/sim"
	"drishti/internal/stats"
	"drishti/internal/trace"
	"drishti/internal/workload"
)

// Run is one compiled sweep run: a machine configuration (policy unset;
// executors stamp one per cell) over the scenario's mix materialized for
// that machine.
type Run struct {
	Name string
	Cfg  sim.Config
	Mix  workload.Mix
}

// Compiled is a fully resolved scenario: the defaulted spec, one Run per
// sweep config, and the policy list. The grid an executor walks is
// Runs × Policies, in that nesting order — the same order the job
// service and fleet use for plain requests.
type Compiled struct {
	Spec     Spec
	Runs     []Run
	Policies []policies.Spec
}

// Compile resolves the spec into runnable form. baseDir anchors relative
// trace file paths (the directory of the spec file); pass "" in contexts
// without a filesystem anchor — wire submissions — where file-based
// traces are rejected and inline CSV is required.
func (s Spec) Compile(baseDir string) (*Compiled, error) {
	s = s.WithDefaults()
	if err := s.Validate(); err != nil {
		return nil, err
	}
	out := &Compiled{Spec: s}
	for _, p := range s.Sweep.Policies {
		out.Policies = append(out.Policies, policies.Spec{Name: p.Name, Drishti: p.Drishti})
	}
	for ci, cs := range s.Sweep.Configs {
		m := s.Machine
		if cs.Cores > 0 {
			m.Cores = cs.Cores
		}
		if cs.Scale > 0 {
			m.Scale = cs.Scale
		}
		if cs.Instructions > 0 {
			m.Instructions = cs.Instructions
		}
		if cs.Warmup > 0 {
			m.Warmup = cs.Warmup
		}
		cfg := sim.ScaledConfig(m.Cores, m.Scale)
		cfg.Instructions = m.Instructions
		cfg.Warmup = m.Warmup
		cfg.Seed = s.Seed
		mix, err := s.compileMix(m, cfg.SetIndexBits(), baseDir)
		if err != nil {
			return nil, err
		}
		name := cs.Name
		if name == "" {
			if cs == (ConfigSpec{}) {
				name = "base"
			} else {
				name = fmt.Sprintf("cfg%d-%dc", ci, m.Cores)
			}
		}
		out.Runs = append(out.Runs, Run{Name: name, Cfg: cfg, Mix: mix})
	}
	return out, nil
}

// Key returns the scenario's content address: the spec identity plus
// every run's exact sim.Config / workload.Mix keys and every policy key.
// Two scenarios with equal keys describe the same set of simulations, so
// store, memo LRU, and fleet dedup work across spec submissions unchanged.
func (c *Compiled) Key() string {
	var b strings.Builder
	fmt.Fprintf(&b, "scn=%s|v=%d|seed=%d", c.Spec.Name, c.Spec.Version, c.Spec.Seed)
	for _, r := range c.Runs {
		fmt.Fprintf(&b, "|run=%s{%s|%s}", r.Name, r.Cfg.Key(), r.Mix.Key())
	}
	for _, p := range c.Policies {
		fmt.Fprintf(&b, "|p={%s}", p.Key())
	}
	return b.String()
}

// Key compiles the spec (inline sources only) and returns its content
// address.
func (s Spec) Key() (string, error) {
	c, err := s.Compile("")
	if err != nil {
		return "", err
	}
	return c.Key(), nil
}

// allocate distributes cores cores over the clients: explicit counts
// first, then floors of fractions, with the single rest-client (if any)
// taking the remainder. The sum must cover the machine exactly.
func (s Spec) allocate(cores int) ([]int, error) {
	counts := make([]int, len(s.Clients))
	rest, used := -1, 0
	for i, cl := range s.Clients {
		switch {
		case cl.Cores > 0:
			counts[i] = cl.Cores
		case cl.Fraction > 0:
			counts[i] = int(cl.Fraction * float64(cores))
		default:
			rest = i
		}
		used += counts[i]
	}
	if rest >= 0 {
		counts[rest] = cores - used
		used = cores
	}
	if used != cores {
		return nil, fmt.Errorf("scenario: %s: clients cover %d of %d cores (add a rest client or adjust counts)", s.Name, used, cores)
	}
	for i, n := range counts {
		if n <= 0 {
			return nil, fmt.Errorf("scenario: %s: client %s gets %d cores on a %d-core machine", s.Name, s.Clients[i].Name, n, cores)
		}
	}
	return counts, nil
}

// builtClient is one client's resolved source, shared by all its cores.
type builtClient struct {
	model  workload.Model  // the core's model, or a display placeholder
	source workload.Source // zero for plain model clients
}

func (b builtClient) active() bool { return b.source.Phased != nil || b.source.Trace != nil }

// compileMix materializes the scenario's clients for one machine. A
// single plain-model client spanning the whole machine compiles to
// exactly workload.Homogeneous(model, cores, seed) — same mix name, same
// per-core seed chain — so such a spec shares content addresses (and
// therefore store entries) with the equivalent plain job request.
func (s Spec) compileMix(m MachineSpec, setBits int, baseDir string) (workload.Mix, error) {
	counts, err := s.allocate(m.Cores)
	if err != nil {
		return workload.Mix{}, err
	}
	built := make([]builtClient, len(s.Clients))
	hasSources := false
	for i, cl := range s.Clients {
		b, err := s.buildClient(cl, m.Scale, setBits, baseDir)
		if err != nil {
			return workload.Mix{}, err
		}
		built[i] = b
		if b.active() {
			hasSources = true
		}
	}
	mix := workload.Mix{Name: "scn-" + s.Name}
	if len(s.Clients) == 1 && !hasSources {
		mix.Name = "homo-" + built[0].model.Name
	}
	for i, cl := range s.Clients {
		seed := cl.Seed
		if seed == 0 {
			// Same spacing HomogeneousMixes uses between mixes, so
			// client 0 with the spec seed matches Homogeneous exactly.
			seed = s.Seed + uint64(i)*7919
		}
		for k := 0; k < counts[i]; k++ {
			mix.Models = append(mix.Models, built[i].model)
			mix.Seeds = append(mix.Seeds, stats.Mix64(seed+uint64(k)*1_000_003))
			if hasSources {
				mix.Sources = append(mix.Sources, built[i].source)
			}
		}
	}
	if err := mix.Validate(); err != nil {
		return workload.Mix{}, err
	}
	return mix, nil
}

// buildClient resolves one client's source for a machine scale.
func (s Spec) buildClient(cl ClientSpec, scale, setBits int, baseDir string) (builtClient, error) {
	w := cl.Workload
	switch {
	case w.Preset != "":
		m, err := lookupPreset(w.Preset, scale, setBits)
		if err != nil {
			return builtClient{}, fmt.Errorf("scenario: client %s: %w", cl.Name, err)
		}
		return builtClient{model: applyArrival(m, cl.Arrival)}, nil
	case w.Model != nil:
		m, err := w.Model.build(cl.Name)
		if err != nil {
			return builtClient{}, err
		}
		return builtClient{model: applyArrival(m.Scale(scale, setBits), cl.Arrival)}, nil
	case w.Phases != nil:
		pm := workload.PhasedModel{Name: cl.Name, Period: w.Phases.Period}
		for pi, of := range w.Phases.Of {
			var (
				ph  workload.Model
				err error
			)
			switch {
			case of.Preset != "":
				ph, err = lookupPreset(of.Preset, scale, setBits)
				if err != nil {
					err = fmt.Errorf("scenario: client %s phase %d: %w", cl.Name, pi, err)
				}
			case of.Model != nil:
				ph, err = of.Model.build(fmt.Sprintf("%s-phase%d", cl.Name, pi))
				ph = ph.Scale(scale, setBits)
			default: // rejected by Validate
				err = fmt.Errorf("scenario: client %s phase %d has no source", cl.Name, pi)
			}
			if err != nil {
				return builtClient{}, err
			}
			pm.Phases = append(pm.Phases, applyArrival(ph, cl.Arrival))
		}
		return builtClient{
			model:  workload.Model{Name: "phased-" + cl.Name},
			source: workload.Source{Phased: &pm},
		}, nil
	case w.Trace != nil:
		td, err := loadTrace(w.Trace, cl.Name, baseDir)
		if err != nil {
			return builtClient{}, err
		}
		return builtClient{
			model:  workload.Model{Name: "trace-" + td.Name},
			source: workload.Source{Trace: td},
		}, nil
	}
	return builtClient{}, fmt.Errorf("scenario: client %s: workload needs one of preset/model/phases/trace", cl.Name)
}

// lookupPreset resolves a registry preset at the given machine scale:
// exact name first (a fully-qualified name can never be shadowed), then
// substring in registry order — SPEC/GAP before CVP1/Cloud/XSBench, the
// same first-match rule the job API and drishti-sim use.
func lookupPreset(name string, scale, setBits int) (workload.Model, error) {
	full := append(workload.AllSPECGAP(), workload.Fig19Models()...)
	pop := workload.ScaleAll(full, scale, setBits)
	for _, m := range pop {
		if m.Name == name {
			return m, nil
		}
	}
	for _, m := range pop {
		if strings.Contains(m.Name, name) {
			return m, nil
		}
	}
	return workload.Model{}, fmt.Errorf("no workload preset matching %q; known presets:\n  %s",
		name, strings.Join(workload.Names(full), "\n  "))
}

// applyArrival layers the client's gap process onto a compiled model.
func applyArrival(m workload.Model, a *ArrivalSpec) workload.Model {
	if a == nil {
		return m
	}
	m.GapDist = a.Process
	m.GapShape = a.Shape
	if a.MeanGap > 0 {
		m.MeanGap = a.MeanGap
	}
	return m
}

// streamKind maps a spec kind name to the workload enum.
func streamKind(name string) (workload.StreamKind, error) {
	switch name {
	case "seq", "sequential":
		return workload.Sequential, nil
	case "loop":
		return workload.Loop, nil
	case "chase":
		return workload.Chase, nil
	case "gather":
		return workload.Gather, nil
	case "narrow":
		return workload.Narrow, nil
	}
	return 0, fmt.Errorf("unknown stream kind %q (seq|loop|chase|gather|narrow)", name)
}

// build converts the parametric model spec to a full-size workload.Model.
func (m *ModelSpec) build(client string) (workload.Model, error) {
	name := m.Name
	if name == "" {
		name = client
	}
	out := workload.Model{Name: name, Suite: "Scenario", MeanGap: m.MeanGap}
	for i, st := range m.Streams {
		kind, err := streamKind(st.Kind)
		if err != nil {
			return workload.Model{}, fmt.Errorf("scenario: client %s stream %d: %w", client, i, err)
		}
		out.Streams = append(out.Streams, workload.StreamSpec{
			Kind:        kind,
			Weight:      st.Weight,
			FootprintKB: st.FootprintKB,
			PCs:         st.PCs,
			BlocksPerPC: st.BlocksPerPC,
			WriteFrac:   st.WriteFrac,
			Skew:        st.Skew,
			StrideBlk:   st.StrideBlk,
			HotSetFrac:  st.HotSetFrac,
			HotSets:     st.HotSets,
		})
	}
	if err := out.Validate(); err != nil {
		return workload.Model{}, fmt.Errorf("scenario: client %s: %w", client, err)
	}
	return out, nil
}

// loadTrace materializes a trace source. Inline CSV is wire-portable;
// file paths need a baseDir anchor and are therefore CLI-only.
func loadTrace(t *TraceSpec, client, baseDir string) (*workload.TraceData, error) {
	name := t.Name
	switch {
	case t.CSV != "":
		if name == "" {
			name = client
		}
		recs, err := trace.ReadCSV(strings.NewReader(t.CSV))
		if err != nil {
			return nil, fmt.Errorf("scenario: client %s inline trace: %w", client, err)
		}
		if len(recs) == 0 {
			return nil, fmt.Errorf("scenario: client %s inline trace has no records", client)
		}
		return &workload.TraceData{Name: name, Recs: recs}, nil
	case t.File != "":
		if baseDir == "" {
			return nil, fmt.Errorf("scenario: client %s: trace file %q cannot be resolved here (inline the csv for wire submissions)", client, t.File)
		}
		path := t.File
		if !filepath.IsAbs(path) {
			path = filepath.Join(baseDir, path)
		}
		f, err := os.Open(path)
		if err != nil {
			return nil, fmt.Errorf("scenario: client %s: %w", client, err)
		}
		defer f.Close()
		recs, err := trace.ReadCSV(f)
		if err != nil {
			return nil, fmt.Errorf("scenario: client %s trace %s: %w", client, path, err)
		}
		if len(recs) == 0 {
			return nil, fmt.Errorf("scenario: client %s trace %s has no records", client, path)
		}
		if name == "" {
			name = strings.TrimSuffix(filepath.Base(path), filepath.Ext(path))
		}
		return &workload.TraceData{Name: name, Recs: recs}, nil
	}
	return nil, fmt.Errorf("scenario: client %s: trace needs exactly one of file/csv", client)
}
