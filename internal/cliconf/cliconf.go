// Package cliconf is the one place the drishti binaries resolve their
// configuration knobs. Every knob has three layers with a single
// precedence rule — an explicit command-line flag beats a DRISHTI_*
// environment variable beats the built-in default — so `-parallel 4`,
// `DRISHTI_PARALLEL=4`, and the GOMAXPROCS fallback compose identically
// in drishti-bench, drishti-sim, and the rest of cmd/.
//
// Usage mirrors the flag package: register knobs before flag.Parse,
// then call Resolve afterwards (Resolve is when the env layer is
// consulted, because "was the flag explicitly set" is only knowable
// post-Parse):
//
//	cc := cliconf.New(flag.CommandLine)
//	parallel := cc.Int("parallel", "DRISHTI_PARALLEL", 0, "sweep worker-pool size")
//	flag.Parse()
//	if err := cc.Resolve(); err != nil { ... }
//
// A malformed environment value is a hard error, not a silent fallback:
// DRISHTI_PARALLEL=four should stop the run, not quietly simulate with
// the default and produce numbers nobody asked for.
package cliconf

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"time"
)

// Set registers knobs on one flag.FlagSet and resolves the env layer
// after parsing. The zero value is not usable; call New.
type Set struct {
	fs  *flag.FlagSet
	env func(string) (string, bool) // swappable in tests
	res []func() error
}

// New returns a Set registering knobs on fs. Pass flag.CommandLine for
// a binary's top-level flags.
func New(fs *flag.FlagSet) *Set {
	return &Set{fs: fs, env: os.LookupEnv}
}

// SetEnv replaces the environment lookup (tests inject a map instead of
// mutating the process environment).
func (s *Set) SetEnv(lookup func(string) (string, bool)) { s.env = lookup }

// explicit reports whether the flag was set on the command line.
func (s *Set) explicit(name string) bool {
	found := false
	s.fs.Visit(func(f *flag.Flag) {
		if f.Name == name {
			found = true
		}
	})
	return found
}

// usage appends the env-var layer to a knob's help text so -h documents
// the full precedence chain without each binary repeating it.
func usage(text, env string) string {
	if env == "" {
		return text
	}
	return text + " (env " + env + ")"
}

// knob registers the common resolve step: if the flag was not set
// explicitly and env is present, parse applies it.
func (s *Set) knob(name, env string, parse func(string) error) {
	s.res = append(s.res, func() error {
		if env == "" || s.explicit(name) {
			return nil
		}
		v, ok := s.env(env)
		if !ok || v == "" {
			return nil
		}
		if err := parse(v); err != nil {
			return fmt.Errorf("cliconf: %s=%q: %w", env, v, err)
		}
		return nil
	})
}

// Int registers an int knob.
func (s *Set) Int(name, env string, def int, help string) *int {
	p := s.fs.Int(name, def, usage(help, env))
	s.knob(name, env, func(v string) error {
		n, err := strconv.Atoi(v)
		if err != nil {
			return err
		}
		*p = n
		return nil
	})
	return p
}

// Uint64 registers a uint64 knob.
func (s *Set) Uint64(name, env string, def uint64, help string) *uint64 {
	p := s.fs.Uint64(name, def, usage(help, env))
	s.knob(name, env, func(v string) error {
		n, err := strconv.ParseUint(v, 10, 64)
		if err != nil {
			return err
		}
		*p = n
		return nil
	})
	return p
}

// Bool registers a bool knob. The env layer accepts strconv.ParseBool
// forms, so DRISHTI_BATCH=0 turns batching off and =1 turns it on.
func (s *Set) Bool(name, env string, def bool, help string) *bool {
	p := s.fs.Bool(name, def, usage(help, env))
	s.knob(name, env, func(v string) error {
		b, err := strconv.ParseBool(v)
		if err != nil {
			return err
		}
		*p = b
		return nil
	})
	return p
}

// String registers a string knob.
func (s *Set) String(name, env, def, help string) *string {
	p := s.fs.String(name, def, usage(help, env))
	s.knob(name, env, func(v string) error {
		*p = v
		return nil
	})
	return p
}

// Duration registers a time.Duration knob; the env layer uses
// time.ParseDuration forms ("30s", "2m").
func (s *Set) Duration(name, env string, def time.Duration, help string) *time.Duration {
	p := s.fs.Duration(name, def, usage(help, env))
	s.knob(name, env, func(v string) error {
		d, err := time.ParseDuration(v)
		if err != nil {
			return err
		}
		*p = d
		return nil
	})
	return p
}

// Resolve applies the environment layer to every knob whose flag was
// not set on the command line. Call it exactly once, after fs.Parse.
func (s *Set) Resolve() error {
	for _, r := range s.res {
		if err := r(); err != nil {
			return err
		}
	}
	return nil
}
