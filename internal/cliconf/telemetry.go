package cliconf

import (
	"fmt"
	"io"
	"os"

	"drishti/internal/obs"
)

// Telemetry bundles the per-epoch telemetry knobs that drishti-sim and
// drishti-bench used to register (and validate, and open) separately.
type Telemetry struct {
	Path   *string
	Epoch  *uint64
	Format *string
}

// Telemetry registers -telemetry, -telemetry-epoch, and
// -telemetry-format with their DRISHTI_* env layers.
func (s *Set) Telemetry() *Telemetry {
	return &Telemetry{
		Path:   s.String("telemetry", "DRISHTI_TELEMETRY", "", "write per-epoch telemetry to `file`"),
		Epoch:  s.Uint64("telemetry-epoch", "DRISHTI_TELEMETRY_EPOCH", 50_000, "LLC demand loads per telemetry epoch"),
		Format: s.String("telemetry-format", "DRISHTI_TELEMETRY_FORMAT", "ndjson", "telemetry format: ndjson or csv"),
	}
}

// Open creates the telemetry sink, or returns a nil sink when the knob
// is unset. The caller owns the returned closer (nil when disabled) and
// closes it after the run so the file is flushed.
func (t *Telemetry) Open() (obs.EpochSink, io.Closer, error) {
	if *t.Path == "" {
		return nil, nil, nil
	}
	f, err := os.Create(*t.Path)
	if err != nil {
		return nil, nil, err
	}
	switch *t.Format {
	case "ndjson":
		return obs.NewNDJSONWriter(f), f, nil
	case "csv":
		return obs.NewCSVWriter(f), f, nil
	default:
		f.Close()
		return nil, nil, fmt.Errorf("cliconf: unknown telemetry format %q (ndjson|csv)", *t.Format)
	}
}
