package cliconf

import (
	"flag"
	"io"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"testing"
	"time"
)

// env returns a lookup over a literal map, so tests never mutate the
// process environment.
func env(m map[string]string) func(string) (string, bool) {
	return func(k string) (string, bool) {
		v, ok := m[k]
		return v, ok
	}
}

func newSet(t *testing.T, environ map[string]string) (*Set, *flag.FlagSet) {
	t.Helper()
	fs := flag.NewFlagSet("test", flag.ContinueOnError)
	fs.SetOutput(io.Discard)
	s := New(fs)
	s.SetEnv(env(environ))
	return s, fs
}

// TestPrecedence pins the one rule everything else builds on: explicit
// flag > environment variable > default, for every knob type.
func TestPrecedence(t *testing.T) {
	environ := map[string]string{
		"E_INT": "7", "E_U64": "9", "E_BOOL": "0", "E_STR": "env", "E_DUR": "90s",
	}
	cases := []struct {
		name string
		args []string
		want string // rendered resolved values
	}{
		{"default", nil, "1 2 true def 1s"},
		{"env", nil, "7 9 false env 1m30s"},
		{"flag", []string{"-i", "100", "-u", "200", "-b=true", "-s", "flag", "-d", "5s"}, "100 200 true flag 5s"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			e := environ
			if tc.name == "default" {
				e = nil
			}
			s, fs := newSet(t, e)
			i := s.Int("i", "E_INT", 1, "")
			u := s.Uint64("u", "E_U64", 2, "")
			b := s.Bool("b", "E_BOOL", true, "")
			str := s.String("s", "E_STR", "def", "")
			d := s.Duration("d", "E_DUR", time.Second, "")
			if err := fs.Parse(tc.args); err != nil {
				t.Fatal(err)
			}
			if err := s.Resolve(); err != nil {
				t.Fatal(err)
			}
			got := strings.Join([]string{
				itoa(*i), utoa(*u), btoa(*b), *str, d.String(),
			}, " ")
			if got != tc.want {
				t.Fatalf("resolved %q, want %q", got, tc.want)
			}
		})
	}
}

// TestFlagBeatsEnvAtDefaultValue: a flag explicitly set to its default
// value still wins over the environment — "explicit" means "present on
// the command line", not "different from the default".
func TestFlagBeatsEnvAtDefaultValue(t *testing.T) {
	s, fs := newSet(t, map[string]string{"E": "99"})
	p := s.Int("n", "E", 4, "")
	if err := fs.Parse([]string{"-n", "4"}); err != nil {
		t.Fatal(err)
	}
	if err := s.Resolve(); err != nil {
		t.Fatal(err)
	}
	if *p != 4 {
		t.Fatalf("explicit -n 4 resolved to %d; env must not override an explicit flag", *p)
	}
}

// TestMalformedEnvIsAnError: a garbage env value fails Resolve loudly
// instead of silently running with the default.
func TestMalformedEnvIsAnError(t *testing.T) {
	for _, tc := range []struct {
		kind, val string
	}{
		{"int", "four"}, {"uint64", "-1"}, {"bool", "maybe"}, {"duration", "90"},
	} {
		s, fs := newSet(t, map[string]string{"E": tc.val})
		switch tc.kind {
		case "int":
			s.Int("n", "E", 0, "")
		case "uint64":
			s.Uint64("n", "E", 0, "")
		case "bool":
			s.Bool("n", "E", false, "")
		case "duration":
			s.Duration("n", "E", 0, "")
		}
		if err := fs.Parse(nil); err != nil {
			t.Fatal(err)
		}
		if err := s.Resolve(); err == nil {
			t.Fatalf("%s knob accepted E=%q", tc.kind, tc.val)
		}
	}
}

// TestEmptyEnvIgnored: an exported-but-empty variable behaves like an
// unset one.
func TestEmptyEnvIgnored(t *testing.T) {
	s, fs := newSet(t, map[string]string{"E": ""})
	p := s.Int("n", "E", 3, "")
	if err := fs.Parse(nil); err != nil {
		t.Fatal(err)
	}
	if err := s.Resolve(); err != nil {
		t.Fatal(err)
	}
	if *p != 3 {
		t.Fatalf("empty env resolved to %d, want default 3", *p)
	}
}

// TestUsageMentionsEnv: -h output documents the env layer per knob.
func TestUsageMentionsEnv(t *testing.T) {
	s, fs := newSet(t, nil)
	s.Int("parallel", "DRISHTI_PARALLEL", 0, "sweep worker-pool size")
	f := fs.Lookup("parallel")
	if f == nil || !strings.Contains(f.Usage, "DRISHTI_PARALLEL") {
		t.Fatalf("usage %q does not mention the env var", f.Usage)
	}
}

func TestTelemetryOpen(t *testing.T) {
	dir := t.TempDir()

	// Disabled: nil sink, nil closer.
	s, fs := newSet(t, nil)
	tl := s.Telemetry()
	if err := fs.Parse(nil); err != nil {
		t.Fatal(err)
	}
	if err := s.Resolve(); err != nil {
		t.Fatal(err)
	}
	if sink, closer, err := tl.Open(); err != nil || sink != nil || closer != nil {
		t.Fatalf("disabled telemetry: sink=%v closer=%v err=%v", sink, closer, err)
	}

	// Env-configured NDJSON sink writes the file.
	path := filepath.Join(dir, "epochs.ndjson")
	s, fs = newSet(t, map[string]string{"DRISHTI_TELEMETRY": path})
	tl = s.Telemetry()
	if err := fs.Parse(nil); err != nil {
		t.Fatal(err)
	}
	if err := s.Resolve(); err != nil {
		t.Fatal(err)
	}
	sink, closer, err := tl.Open()
	if err != nil || sink == nil {
		t.Fatalf("env telemetry: sink=%v err=%v", sink, err)
	}
	closer.Close()
	if _, err := os.Stat(path); err != nil {
		t.Fatalf("telemetry file not created: %v", err)
	}

	// Unknown format is rejected.
	s, fs = newSet(t, nil)
	tl = s.Telemetry()
	if err := fs.Parse([]string{"-telemetry", filepath.Join(dir, "x"), "-telemetry-format", "xml"}); err != nil {
		t.Fatal(err)
	}
	if err := s.Resolve(); err != nil {
		t.Fatal(err)
	}
	if _, _, err := tl.Open(); err == nil {
		t.Fatal("telemetry-format xml accepted")
	}
}

func itoa(n int) string    { return strconv.Itoa(n) }
func utoa(n uint64) string { return strconv.FormatUint(n, 10) }
func btoa(b bool) string   { return strconv.FormatBool(b) }
