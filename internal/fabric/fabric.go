// Package fabric implements reuse-predictor placement for sliced LLCs: the
// full design space of Table 2 plus the baseline, with latency, traffic, and
// broadcast accounting.
//
//	Local                  — per-slice predictor, per-slice sampled cache
//	                         (the baseline; myopic view, no traffic)
//	Centralized            — one predictor for all slices (global view,
//	                         high bandwidth demand at one node)
//	PerCoreGlobal          — Drishti: one predictor bank per core, placed at
//	                         the core's home slice, reachable from every
//	                         slice (global view, low traffic)
//	GlobalSCCentralized    — centralized sampled cache training local
//	                         predictors via broadcast (Fig 6)
//	GlobalSCDistributed    — distributed-but-global sampled cache training
//	                         local predictors via broadcast (Fig 7)
//
// Prediction lookups happen on every LLC fill and are therefore on the fill
// critical path: their interconnect latency is returned to the caller and
// charged to the fill (design decision D4; this is what Fig 11 measures).
// Training happens on sampled-set accesses and is off the critical path;
// it is recorded for traffic, bandwidth, and energy reporting only.
package fabric

import (
	"fmt"

	"drishti/internal/noc"
)

// Placement selects the predictor/sampled-cache organization.
type Placement uint8

// Placements (see package comment).
const (
	Local Placement = iota
	Centralized
	PerCoreGlobal
	GlobalSCCentralized
	GlobalSCDistributed
)

// String implements fmt.Stringer.
func (p Placement) String() string {
	switch p {
	case Local:
		return "local"
	case Centralized:
		return "centralized"
	case PerCoreGlobal:
		return "per-core-global"
	case GlobalSCCentralized:
		return "global-sc-centralized"
	case GlobalSCDistributed:
		return "global-sc-distributed"
	default:
		return fmt.Sprintf("Placement(%d)", uint8(p))
	}
}

// GlobalView reports whether the placement gives predictors a global view of
// reuse (mitigating the myopic problem of Section 3.1).
func (p Placement) GlobalView() bool { return p != Local }

// Broadcast reports whether training requires a broadcast to all local
// predictors (the global-sampled-cache designs of Section 4.1.1).
func (p Placement) Broadcast() bool {
	return p == GlobalSCCentralized || p == GlobalSCDistributed
}

// Config builds a Fabric.
type Config struct {
	Placement  Placement
	Slices     int
	Cores      int
	UseNocstar bool      // route slice↔predictor traffic over NOCSTAR
	Mesh       *noc.Mesh // required unless every path is local
	Star       *noc.Star // required when UseNocstar
	// FixedPredLatency, when >0, overrides the interconnect entirely with a
	// constant slice→predictor latency (the Fig 11b sensitivity knob).
	FixedPredLatency uint32
}

// Stats aggregates fabric traffic.
type Stats struct {
	Lookups       uint64 // prediction reads (LLC fill path)
	Trainings     uint64 // predictor updates from sampled caches
	Broadcasts    uint64 // broadcast fan-out messages (GlobalSC designs)
	LookupLatSum  uint64 // total prediction latency charged to fills
	RemoteLookups uint64 // lookups that crossed the interconnect
	RemoteTrains  uint64 // trainings that crossed the interconnect
}

// Fabric resolves which predictor bank an access uses and at what cost.
type Fabric struct {
	cfg    Config
	center int // node index hosting the centralized structures

	// Per-bank access counters (Fig 10: accesses per kilo-instruction to
	// centralized vs per-core predictors). BankLookups/BankTrains split the
	// same traffic by kind for the telemetry epoch series
	// (BankAccesses[i] == BankLookups[i] + BankTrains[i]).
	BankAccesses []uint64
	BankLookups  []uint64
	BankTrains   []uint64

	trainBuf []int // reused result buffer for TrainBanks

	Stats Stats
}

// New builds a Fabric. It returns an error when the placement needs an
// interconnect model that was not provided.
func New(cfg Config) (*Fabric, error) {
	if cfg.Slices <= 0 || cfg.Cores <= 0 {
		return nil, fmt.Errorf("fabric: slices and cores must be positive")
	}
	needsNet := cfg.Placement != Local && cfg.FixedPredLatency == 0
	if needsNet && cfg.UseNocstar && cfg.Star == nil {
		return nil, fmt.Errorf("fabric: placement %v with NOCSTAR requires a Star model", cfg.Placement)
	}
	if needsNet && !cfg.UseNocstar && cfg.Mesh == nil {
		return nil, fmt.Errorf("fabric: placement %v requires a Mesh model", cfg.Placement)
	}
	f := &Fabric{cfg: cfg, center: cfg.Slices / 2}
	f.BankAccesses = make([]uint64, f.NumBanks())
	f.BankLookups = make([]uint64, f.NumBanks())
	f.BankTrains = make([]uint64, f.NumBanks())
	return f, nil
}

// MustNew is New that panics on configuration errors.
func MustNew(cfg Config) *Fabric {
	f, err := New(cfg)
	if err != nil {
		panic(err)
	}
	return f
}

// Config returns the fabric configuration.
func (f *Fabric) Config() Config { return f.cfg }

// Placement returns the configured placement.
func (f *Fabric) Placement() Placement { return f.cfg.Placement }

// NumBanks returns how many predictor table banks the policy must allocate.
func (f *Fabric) NumBanks() int {
	switch f.cfg.Placement {
	case Centralized:
		return 1
	case PerCoreGlobal:
		return f.cfg.Cores
	default: // Local and the GlobalSC designs keep per-slice predictors.
		return f.cfg.Slices
	}
}

// transit returns the slice→target latency over the configured interconnect
// and records the message.
func (f *Fabric) transit(slice, target int, now uint64) uint32 {
	if f.cfg.FixedPredLatency > 0 {
		return f.cfg.FixedPredLatency
	}
	if f.cfg.UseNocstar {
		return f.cfg.Star.Latency(slice, target, now)
	}
	return f.cfg.Mesh.Latency(slice%f.cfg.Mesh.Nodes(), target%f.cfg.Mesh.Nodes())
}

// PredictBank returns the bank that serves a prediction for (slice, core)
// and the interconnect latency the fill must absorb. now is the current
// cycle (for NOCSTAR link arbitration).
func (f *Fabric) PredictBank(slice, core int, now uint64) (bank int, latency uint32) {
	f.Stats.Lookups++
	switch f.cfg.Placement {
	case Local, GlobalSCCentralized, GlobalSCDistributed:
		bank, latency = slice, 0
	case Centralized:
		bank = 0
		latency = f.transit(slice, f.center, now)
		f.Stats.RemoteLookups++
	case PerCoreGlobal:
		bank = core
		// Predictor for core c sits at c's home slice; a lookup from that
		// same slice is free.
		if core%f.cfg.Slices == slice {
			latency = 0
		} else {
			latency = f.transit(slice, core%f.cfg.Slices, now)
			f.Stats.RemoteLookups++
		}
	}
	f.BankAccesses[bank]++
	f.BankLookups[bank]++
	f.Stats.LookupLatSum += uint64(latency)
	return bank, latency
}

// TrainBanks returns the banks a sampled-cache training event from (slice,
// core) must update. Training is off the fill critical path, so no latency
// is returned; traffic is recorded. The returned slice is reused across
// calls — do not retain it.
func (f *Fabric) TrainBanks(slice, core int, now uint64) []int {
	f.Stats.Trainings++
	switch f.cfg.Placement {
	case Local:
		f.trainBuf = f.trainBuf[:0]
		f.trainBuf = append(f.trainBuf, slice)
	case Centralized:
		f.trainBuf = f.trainBuf[:0]
		f.trainBuf = append(f.trainBuf, 0)
		f.countTrainTransit(slice, f.center, now)
	case PerCoreGlobal:
		f.trainBuf = f.trainBuf[:0]
		f.trainBuf = append(f.trainBuf, core)
		if core%f.cfg.Slices != slice {
			f.countTrainTransit(slice, core%f.cfg.Slices, now)
		}
	case GlobalSCCentralized, GlobalSCDistributed:
		// The (conceptually global) sampled cache broadcasts the training
		// event to every slice's local predictor (Figs 6 and 7).
		f.trainBuf = f.trainBuf[:0]
		for s := 0; s < f.cfg.Slices; s++ {
			f.trainBuf = append(f.trainBuf, s)
			if s != slice {
				f.Stats.Broadcasts++
				f.countTrainTransit(slice, s, now)
			}
		}
		if f.cfg.Placement == GlobalSCCentralized {
			// Slice → central sampled cache hop happens first.
			f.countTrainTransit(slice, f.center, now)
		}
	}
	for _, b := range f.trainBuf {
		f.BankAccesses[b]++
		f.BankTrains[b]++
	}
	return f.trainBuf
}

func (f *Fabric) countTrainTransit(slice, target int, now uint64) {
	f.Stats.RemoteTrains++
	if f.cfg.FixedPredLatency > 0 {
		return
	}
	if f.cfg.UseNocstar {
		f.cfg.Star.Latency(slice, target, now)
		return
	}
	f.cfg.Mesh.Latency(slice%f.cfg.Mesh.Nodes(), target%f.cfg.Mesh.Nodes())
}

// ResetStats clears traffic counters (end of warmup).
func (f *Fabric) ResetStats() {
	f.Stats = Stats{}
	for i := range f.BankAccesses {
		f.BankAccesses[i] = 0
		f.BankLookups[i] = 0
		f.BankTrains[i] = 0
	}
}

// MaxBankAccesses returns the largest per-bank access count (the hot spot a
// centralized predictor becomes, Fig 10).
func (f *Fabric) MaxBankAccesses() uint64 {
	var m uint64
	for _, v := range f.BankAccesses {
		if v > m {
			m = v
		}
	}
	return m
}

// AvgBankAccesses returns the mean per-bank access count.
func (f *Fabric) AvgBankAccesses() float64 {
	if len(f.BankAccesses) == 0 {
		return 0
	}
	var s uint64
	for _, v := range f.BankAccesses {
		s += v
	}
	return float64(s) / float64(len(f.BankAccesses))
}
