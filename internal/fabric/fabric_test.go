package fabric

import (
	"testing"

	"drishti/internal/noc"
)

func build(t *testing.T, placement Placement, useStar bool, fixed uint32) *Fabric {
	t.Helper()
	f, err := New(Config{
		Placement:        placement,
		Slices:           8,
		Cores:            8,
		UseNocstar:       useStar,
		Mesh:             noc.NewMesh(8, 4, 2),
		Star:             noc.NewStar(8, noc.DefaultStarLatency),
		FixedPredLatency: fixed,
	})
	if err != nil {
		t.Fatal(err)
	}
	return f
}

func TestNumBanks(t *testing.T) {
	cases := map[Placement]int{
		Local:               8,
		Centralized:         1,
		PerCoreGlobal:       8,
		GlobalSCCentralized: 8,
		GlobalSCDistributed: 8,
	}
	for place, want := range cases {
		if got := build(t, place, false, 0).NumBanks(); got != want {
			t.Fatalf("%v: %d banks, want %d", place, got, want)
		}
	}
}

func TestLocalIsFreeAndMyopic(t *testing.T) {
	f := build(t, Local, false, 0)
	bank, lat := f.PredictBank(3, 7, 0)
	if bank != 3 || lat != 0 {
		t.Fatalf("local predict bank=%d lat=%d", bank, lat)
	}
	banks := f.TrainBanks(3, 7, 0)
	if len(banks) != 1 || banks[0] != 3 {
		t.Fatalf("local train banks %v", banks)
	}
	if f.Stats.RemoteLookups != 0 || f.Stats.RemoteTrains != 0 {
		t.Fatal("local placement produced remote traffic")
	}
}

func TestCentralizedConcentratesTraffic(t *testing.T) {
	f := build(t, Centralized, false, 0)
	for slice := 0; slice < 8; slice++ {
		bank, _ := f.PredictBank(slice, slice, 0)
		if bank != 0 {
			t.Fatalf("centralized bank %d", bank)
		}
	}
	if f.BankAccesses[0] != 8 {
		t.Fatalf("central bank accesses %d", f.BankAccesses[0])
	}
	if f.MaxBankAccesses() != 8 || f.AvgBankAccesses() != 8 {
		t.Fatal("bank aggregation wrong for single bank")
	}
}

func TestPerCoreGlobalRouting(t *testing.T) {
	f := build(t, PerCoreGlobal, true, 0)
	// Core 2's predictor lives at slice 2: free from slice 2...
	if _, lat := f.PredictBank(2, 2, 0); lat != 0 {
		t.Fatalf("home-slice lookup cost %d", lat)
	}
	// ...and one NOCSTAR transfer from anywhere else.
	bank, lat := f.PredictBank(5, 2, 0)
	if bank != 2 {
		t.Fatalf("bank %d, want core's bank", bank)
	}
	if lat != noc.DefaultStarLatency {
		t.Fatalf("remote lookup latency %d, want %d", lat, noc.DefaultStarLatency)
	}
	if f.Stats.RemoteLookups != 1 {
		t.Fatalf("remote lookups %d", f.Stats.RemoteLookups)
	}
	// Training updates exactly the core's bank.
	banks := f.TrainBanks(5, 2, 0)
	if len(banks) != 1 || banks[0] != 2 {
		t.Fatalf("train banks %v", banks)
	}
}

func TestGlobalSCBroadcast(t *testing.T) {
	for _, place := range []Placement{GlobalSCCentralized, GlobalSCDistributed} {
		f := build(t, place, false, 0)
		banks := f.TrainBanks(1, 4, 0)
		if len(banks) != 8 {
			t.Fatalf("%v: broadcast reached %d banks", place, len(banks))
		}
		if f.Stats.Broadcasts != 7 {
			t.Fatalf("%v: %d broadcast messages, want 7", place, f.Stats.Broadcasts)
		}
		// Predictions stay local (the predictor itself is per slice).
		bank, lat := f.PredictBank(1, 4, 0)
		if bank != 1 || lat != 0 {
			t.Fatalf("%v: predict bank=%d lat=%d", place, bank, lat)
		}
	}
}

func TestFixedLatencyOverride(t *testing.T) {
	f := build(t, PerCoreGlobal, false, 17)
	if _, lat := f.PredictBank(5, 2, 0); lat != 17 {
		t.Fatalf("fixed latency not honored: %d", lat)
	}
}

func TestMeshRoutedLatencyGrowsWithDistance(t *testing.T) {
	f := build(t, PerCoreGlobal, false, 0)
	_, near := f.PredictBank(1, 2, 0) // 1 hop
	_, far := f.PredictBank(0, 7, 0)  // farther
	if far <= near {
		t.Fatalf("mesh latency not distance-sensitive: near=%d far=%d", near, far)
	}
}

func TestPlacementProperties(t *testing.T) {
	if Local.GlobalView() {
		t.Fatal("local is not global")
	}
	for _, p := range []Placement{Centralized, PerCoreGlobal, GlobalSCCentralized, GlobalSCDistributed} {
		if !p.GlobalView() {
			t.Fatalf("%v should give a global view", p)
		}
	}
	if !GlobalSCCentralized.Broadcast() || !GlobalSCDistributed.Broadcast() {
		t.Fatal("global sampled caches must broadcast")
	}
	if PerCoreGlobal.Broadcast() || Centralized.Broadcast() {
		t.Fatal("predictor-global designs must not broadcast")
	}
}

func TestTrainBufReuseSafety(t *testing.T) {
	f := build(t, GlobalSCDistributed, false, 0)
	first := f.TrainBanks(0, 0, 0)
	got := append([]int(nil), first...)
	second := f.TrainBanks(1, 1, 0)
	// Documented: the returned slice is reused; callers must not retain.
	_ = second
	for i, b := range got {
		if b != i {
			t.Fatalf("copied result corrupted: %v", got)
		}
	}
}

func TestResetStats(t *testing.T) {
	f := build(t, Centralized, false, 0)
	f.PredictBank(0, 0, 0)
	f.ResetStats()
	if f.Stats.Lookups != 0 || f.BankAccesses[0] != 0 {
		t.Fatal("reset failed")
	}
}

func TestConfigErrors(t *testing.T) {
	if _, err := New(Config{Placement: Centralized, Slices: 4, Cores: 4}); err == nil {
		t.Fatal("missing mesh accepted")
	}
	if _, err := New(Config{Placement: PerCoreGlobal, Slices: 4, Cores: 4, UseNocstar: true}); err == nil {
		t.Fatal("missing star accepted")
	}
	if _, err := New(Config{Placement: Local, Slices: 0, Cores: 4}); err == nil {
		t.Fatal("zero slices accepted")
	}
	// Local placement needs no interconnect at all.
	if _, err := New(Config{Placement: Local, Slices: 4, Cores: 4}); err != nil {
		t.Fatalf("local without interconnect rejected: %v", err)
	}
}
