package experiments

import (
	"bytes"
	"strings"
	"testing"

	"drishti/internal/obs"
)

// TestSweepObservability drives one sweep with the full observability stack
// attached: live progress, structured per-cell run logs, and epoch
// telemetry flowing into a shared NDJSON sink.
func TestSweepObservability(t *testing.T) {
	cfg, mixes, specs := sweepFixture()
	nCells := len(mixes) * len(specs)

	var progOut, logOut, telemOut bytes.Buffer
	p := Params{Parallelism: 4}
	p.Progress = obs.NewProgress(&progOut, "sweep")
	p.Logger = obs.NewLogger(&logOut, "test", false)
	p.TelemetryEpoch = 5000
	p.TelemetrySink = obs.NewNDJSONWriter(&telemOut)
	cfg.TelemetryEpoch = p.TelemetryEpoch
	cfg.TelemetrySink = p.TelemetrySink

	ResetCache()
	defer ResetCache()
	if _, err := runSweep(cfg, mixes, specs, p); err != nil {
		t.Fatal(err)
	}
	p.Progress.Finish()

	if done, total := p.Progress.Snapshot(); done != nCells || total != nCells {
		t.Fatalf("progress %d/%d, want %d/%d", done, total, nCells, nCells)
	}
	logs := logOut.String()
	if got := strings.Count(logs, "cell done"); got != nCells {
		t.Fatalf("%d cell-done log lines, want %d:\n%s", got, nCells, logs)
	}
	if !strings.Contains(logs, "run=") || !strings.Contains(logs, "policy=") {
		t.Fatalf("run log missing run ID or policy: %s", logs)
	}
	// Every cell's run of record emits epochs into the shared sink; each
	// NDJSON line must be independently parseable (no torn writes).
	lines := strings.Split(strings.TrimSpace(telemOut.String()), "\n")
	if len(lines) < nCells {
		t.Fatalf("only %d telemetry lines for %d cells", len(lines), nCells)
	}
	for _, ln := range lines {
		if !strings.HasPrefix(ln, "{") || !strings.HasSuffix(ln, "}") {
			t.Fatalf("torn NDJSON line: %q", ln)
		}
		// The default (batched) sweep attributes every epoch to its cell
		// and batch lane, so a shared sink never collapses the K lanes of
		// one lockstep batch into a single stream.
		if !strings.Contains(ln, `"cell":`) {
			t.Fatalf("epoch line missing cell run ID: %q", ln)
		}
		if !strings.Contains(ln, `"lane":`) {
			t.Fatalf("batched epoch line missing lane tag: %q", ln)
		}
	}
}

// TestSweepTelemetrySerialTagsCellNotLane: the unbatched path stamps each
// epoch with its cell's run ID but no lane — lanes are a batch concept.
func TestSweepTelemetrySerialTagsCellNotLane(t *testing.T) {
	cfg, mixes, specs := sweepFixture()
	var telemOut bytes.Buffer
	p := Params{Parallelism: 1, Batch: BatchOff}
	p.TelemetryEpoch = 5000
	p.TelemetrySink = obs.NewNDJSONWriter(&telemOut)
	cfg.TelemetryEpoch = p.TelemetryEpoch
	cfg.TelemetrySink = p.TelemetrySink

	ResetCache()
	defer ResetCache()
	if _, err := runSweep(cfg, mixes[:1], specs[:1], p); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(telemOut.String()), "\n")
	if len(lines) == 0 || lines[0] == "" {
		t.Fatal("serial sweep emitted no telemetry")
	}
	for _, ln := range lines {
		if !strings.Contains(ln, `"cell":`) {
			t.Fatalf("serial epoch line missing cell run ID: %q", ln)
		}
		if strings.Contains(ln, `"lane":`) {
			t.Fatalf("serial epoch line carries a lane tag: %q", ln)
		}
	}
}

// TestSweepObservabilityOffIsDefault: zero-valued Params run exactly as
// before — no progress, no logs, no telemetry, no panics.
func TestSweepObservabilityOffIsDefault(t *testing.T) {
	cfg, mixes, specs := sweepFixture()
	ResetCache()
	defer ResetCache()
	if _, err := runSweep(cfg, mixes, specs[:1], Params{Parallelism: 2}); err != nil {
		t.Fatal(err)
	}
}
