package experiments

import (
	"fmt"
	"io"
	"sort"

	"drishti/internal/fabric"
	"drishti/internal/noc"
	"drishti/internal/policies"
	"drishti/internal/stats"
)

// Fig10PredictorAPKI reproduces Fig 10: accesses per kilo instruction to a
// centralized reuse predictor vs Drishti's per-core global predictors, for
// Mockingjay on 4/16/32 cores. Both training and prediction lookups count.
func Fig10PredictorAPKI(p Params, w io.Writer) error {
	header(w, "fig10", "predictor APKI: centralized vs per-core-global", p)
	for _, cores := range []int{4, 16, 32} {
		cfg := p.config(cores)
		mixes := p.paperMixes(cfg, cores)
		var centMax, centAvg, pcgMax, pcgAvg []float64
		for _, mix := range mixes {
			for _, place := range []fabric.Placement{fabric.Centralized, fabric.PerCoreGlobal} {
				c := cfg
				c.Policy = policies.Spec{
					Name:             "mockingjay",
					Placement:        policies.PlacementPtr(place),
					FixedPredLatency: 1, // isolate traffic from timing effects
				}
				res, err := runMixCached(p.ctx(), c, mix)
				if err != nil {
					return err
				}
				maxB, avgB := bankAPKI(res.BankAPKI)
				if place == fabric.Centralized {
					centMax = append(centMax, maxB)
					centAvg = append(centAvg, avgB)
				} else {
					pcgMax = append(pcgMax, maxB)
					pcgAvg = append(pcgAvg, avgB)
				}
			}
		}
		fmt.Fprintf(w, "%2d cores  centralized: avg=%.2f max=%.2f APKI   per-core-global: avg=%.2f max=%.2f APKI\n",
			cores, stats.Mean(centAvg), maxOf(centMax), stats.Mean(pcgAvg), maxOf(pcgMax))
	}
	fmt.Fprintln(w, "paper shape (32 cores): centralized >65 avg (max 257.76); per-core 2.46 avg (max 8.05)")
	return nil
}

func bankAPKI(apki []float64) (max, avg float64) {
	if len(apki) == 0 {
		return 0, 0
	}
	var sum float64
	for _, v := range apki {
		sum += v
		if v > max {
			max = v
		}
	}
	return max, sum / float64(len(apki))
}

func maxOf(xs []float64) float64 {
	var m float64
	for _, x := range xs {
		if x > m {
			m = x
		}
	}
	return m
}

// Fig11aNoNocstar reproduces Fig 11a: the slowdown of D-Mockingjay when the
// per-core global predictor is reached over the existing mesh instead of
// NOCSTAR, relative to baseline Mockingjay, on 4/16/32 cores.
func Fig11aNoNocstar(p Params, w io.Writer) error {
	header(w, "fig11a", "D-Mockingjay without a low-latency interconnect", p)
	specs := []policies.Spec{
		{Name: "mockingjay"},
		{Name: "mockingjay", Drishti: true, UseNocstar: policies.BoolPtr(false)}, // mesh-routed
		{Name: "mockingjay", Drishti: true},                                      // NOCSTAR
	}
	for _, cores := range []int{4, 16, 32} {
		cfg := p.config(cores)
		mixes := p.paperMixes(cfg, cores)
		sr, err := runSweepCached(cfg, mixes, specs, p)
		if err != nil {
			return err
		}
		base := sr.geoNormWS(0)
		mesh := sr.geoNormWS(1)
		star := sr.geoNormWS(2)
		fmt.Fprintf(w, "%2d cores  mockingjay=%.4f  d-mockingjay/mesh=%.4f (%+.1f%% vs base)  d-mockingjay/nocstar=%.4f (%+.1f%%)\n",
			cores, base, mesh, (mesh/base-1)*100, star, (star/base-1)*100)
	}
	fmt.Fprintln(w, "paper shape: mesh-routed D-Mockingjay is SLOWER than Mockingjay (−2.8% @4, −5.5% @16, −9% @32)")
	return nil
}

// Fig11bLatencySweep reproduces Fig 11b: normalized performance of
// D-Mockingjay on 32 cores as the slice→predictor latency varies.
func Fig11bLatencySweep(p Params, w io.Writer) error {
	header(w, "fig11b", "predictor-interconnect latency sensitivity (32 cores)", p)
	const cores = 32
	cfg := p.config(cores)
	mixes := p.paperMixes(cfg, cores)
	specs := []policies.Spec{{Name: "mockingjay"}}
	latencies := []uint32{1, 3, 5, 10, 15, 20, 30}
	for _, lat := range latencies {
		specs = append(specs, policies.Spec{Name: "mockingjay", Drishti: true, FixedPredLatency: lat})
	}
	sr, err := runSweepCached(cfg, mixes, specs, p)
	if err != nil {
		return err
	}
	base := sr.geoNormWS(0)
	fmt.Fprintf(w, "mockingjay baseline normWS=%.4f\n", base)
	for i, lat := range latencies {
		v := sr.geoNormWS(i + 1)
		fmt.Fprintf(w, "pred-latency=%2d cycles  d-mockingjay normWS=%.4f (%+.1f%% vs mockingjay)\n",
			lat, v, (v/base-1)*100)
	}
	fmt.Fprintln(w, "paper shape: <5 cycles ≈ no loss; ≈20 cycles erases the gains")
	return nil
}

// Tab03Budget reproduces Table 3: per-core storage with and without Drishti
// for Hawkeye and Mockingjay on the full-size 2 MB/16-way slice.
func Tab03Budget(p Params, w io.Writer) error {
	header(w, "tab03", "per-core hardware budget (full-size 2 MB slice)", p)
	g := policies.Geometry{Slices: 32, Cores: 32, SetsPerSlice: 2048, Ways: 16}
	mesh := noc.NewMesh(32, 4, 2)
	star := noc.NewStar(32, noc.DefaultStarLatency)
	for _, spec := range []policies.Spec{
		{Name: "hawkeye"},
		{Name: "hawkeye", Drishti: true},
		{Name: "mockingjay"},
		{Name: "mockingjay", Drishti: true},
	} {
		b, err := policies.Build(spec, g, mesh, star, stats.NewRand(1))
		if err != nil {
			return err
		}
		var total int
		keys := make([]string, 0, len(b.Budget))
		for k := range b.Budget {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		fmt.Fprintf(w, "%-14s", spec.DisplayName())
		for _, k := range keys {
			fmt.Fprintf(w, "  %s=%.2fKB", k, float64(b.Budget[k])/1024)
			total += b.Budget[k]
		}
		fmt.Fprintf(w, "  TOTAL=%.2fKB\n", float64(total)/1024)
	}
	fmt.Fprintln(w, "paper: hawkeye 28→20.75 KB, mockingjay 31.91→28.95 KB per core")
	return nil
}
