package experiments

import (
	"fmt"
	"io"

	"drishti/internal/fabric"
	"drishti/internal/policies"
	"drishti/internal/sim"
	"drishti/internal/workload"
)

// Fig17Ablation reproduces Fig 17: the utility of each Drishti enhancement
// on 32 cores — Mockingjay, then +global view (per-core global predictor
// only), then +dynamic sampled cache (full D-Mockingjay) — split by suite
// and mix type.
func Fig17Ablation(p Params, w io.Writer) error {
	header(w, "fig17", "enhancement ablation: global view, then +DSC", p)
	const cores = 32
	cfg := p.config(cores)
	specs := []policies.Spec{
		{Name: "mockingjay"},
		// Global view only: per-core global predictor over NOCSTAR, but
		// conventional random sampled sets at the baseline count.
		{Name: "mockingjay",
			Placement:      policies.PlacementPtr(fabric.PerCoreGlobal),
			UseNocstar:     policies.BoolPtr(true),
			DynamicSampler: policies.BoolPtr(false)},
		// Full Drishti: global view + dynamic sampled cache.
		{Name: "mockingjay", Drishti: true},
	}
	labels := []string{"mockingjay", "+global view", "+global view & DSC"}

	groups := []struct {
		name  string
		mixes []workload.Mix
	}{
		{"SPEC homo", homoSubset(p, cfg, cores, workload.SPECModels())},
		{"GAP homo", homoSubset(p, cfg, cores, workload.GAPModels())},
		{"heterogeneous", workload.HeterogeneousMixes(p.scaleModels(cfg, workload.AllSPECGAP()), cores, p.Mixes, p.Seed^0xdeadbeef)},
	}
	for _, g := range groups {
		sr, err := runSweepCached(cfg, g.mixes, specs, p)
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "%-15s", g.name)
		for si := range specs {
			fmt.Fprintf(w, "  %s=%+.2f%%", labels[si], pctOver(sr.geoNormWS(si)))
		}
		fmt.Fprintln(w)
	}
	fmt.Fprintln(w, "paper shape: each step adds performance (3.8→6→9.7% SPEC-side; 9.7→15→16.9% GAP-side)")
	return nil
}

func homoSubset(p Params, cfg sim.Config, cores int, models []workload.Model) []workload.Mix {
	scaled := p.scaleModels(cfg, models)
	return spread(workload.HomogeneousMixes(scaled, cores, p.Seed), p.Mixes)
}

// Fig18DrishtiETR reproduces Fig 18: with Drishti's per-core-yet-global
// predictor, the ETR predictions for the hot xalan PC sit close to the
// global view (contrast with Fig 3's myopic scatter).
func Fig18DrishtiETR(p Params, w io.Writer) error {
	header(w, "fig18", "ETR views with Drishti (xalan)", p)
	return etrViews(p, w, policies.Spec{Name: "mockingjay", Drishti: true}, "drishti (per-core global banks)")
}

// Fig19OtherWorkloads reproduces Fig 19: the four policies on CVP1-,
// CloudSuite/Google-datacenter-, and XSBench-like mixes for 16 and 32 cores.
func Fig19OtherWorkloads(p Params, w io.Writer) error {
	header(w, "fig19", "datacenter-class workloads", p)
	specs := mainSpecs()
	fmt.Fprintf(w, "%-8s", "cores")
	for _, s := range specs {
		fmt.Fprintf(w, "  %-14s", s.DisplayName())
	}
	fmt.Fprintln(w)
	for _, cores := range []int{16, 32} {
		cfg := p.config(cores)
		models := p.scaleModels(cfg, workload.Fig19Models())
		mixes := workload.HeterogeneousMixes(models, cores, min2(p.Mixes*2, 50), p.Seed^0xf19)
		sr, err := runSweepCached(cfg, mixes, specs, p)
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "%-8d", cores)
		for si := range specs {
			fmt.Fprintf(w, "  %+13.2f%%", pctOver(sr.geoNormWS(si)))
		}
		fmt.Fprintln(w)
	}
	fmt.Fprintln(w, "paper shape: base policies gain only 2–3%; Drishti adds ≈2% more on average")
	return nil
}

func min2(a, b int) int {
	if a < b {
		return a
	}
	return b
}
