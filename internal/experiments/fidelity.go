package experiments

import (
	"fmt"
	"io"

	"drishti/internal/sim"
)

// FidelityAblation quantifies the substrate's modeling choices (DESIGN.md
// §5): strict Table 4 MSHR limits vs the default ROB-window MLP
// approximation, and an inclusive LLC vs the baseline non-inclusive
// hierarchy. This is an extension — the paper fixes both choices — but it
// bounds how sensitive the headline comparison is to them.
func FidelityAblation(p Params, w io.Writer) error {
	header(w, "extB", "EXTENSION: substrate fidelity ablation (16 cores)", p)
	const cores = 16
	specs := mainSpecs()
	variants := []struct {
		label string
		edit  func(*sim.Config)
	}{
		{"baseline (ROB-window MLP)", func(c *sim.Config) {}},
		{"strict MSHRs (8/16/64)", func(c *sim.Config) { c.ModelMSHRs = true }},
		{"inclusive LLC", func(c *sim.Config) { c.InclusiveLLC = true }},
	}
	fmt.Fprintf(w, "%-28s", "variant")
	for _, s := range specs {
		fmt.Fprintf(w, "  %-14s", s.DisplayName())
	}
	fmt.Fprintln(w)
	for _, v := range variants {
		cfg := p.config(cores)
		v.edit(&cfg)
		mixes := p.paperMixes(cfg, cores)
		mixes = mixes[:min2(p.Mixes, len(mixes))]
		sr, err := runSweepCached(cfg, mixes, specs, p)
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "%-28s", v.label)
		for si := range specs {
			fmt.Fprintf(w, "  %+13.2f%%", pctOver(sr.geoNormWS(si)))
		}
		fmt.Fprintln(w)
	}
	fmt.Fprintln(w, "reading: fidelity knobs interact strongly with policies — strict MSHRs put the")
	fmt.Fprintln(w, "system in a latency-bound regime where per-mix outcomes can reorder, and an")
	fmt.Fprintln(w, "inclusive LLC devastates aggressive dead-line eviction (back-invalidated")
	fmt.Fprintln(w, "L1-resident lines), which is precisely why the paper's baseline — like AMD's —")
	fmt.Fprintln(w, "is non-inclusive")
	return nil
}
