package experiments

import (
	"fmt"
	"io"

	"drishti/internal/dram"
	"drishti/internal/sim"
)

// sensitivitySweep runs the main policy set over 16-core homogeneous mixes
// for each variant of the machine configuration and prints one row per
// variant.
func sensitivitySweep(p Params, w io.Writer, variants []struct {
	label string
	edit  func(*sim.Config)
}) error {
	const cores = 16
	specs := mainSpecs()
	fmt.Fprintf(w, "%-16s", "variant")
	for _, s := range specs {
		fmt.Fprintf(w, "  %-14s", s.DisplayName())
	}
	fmt.Fprintln(w)
	for _, v := range variants {
		cfg := p.config(cores)
		v.edit(&cfg)
		if err := cfg.Validate(); err != nil {
			return fmt.Errorf("variant %s: %w", v.label, err)
		}
		mixes := p.paperMixes(cfg, cores)
		// The paper's sensitivity studies use homogeneous mixes only.
		mixes = mixes[:min2(p.Mixes, len(mixes))]
		sr, err := runSweepCached(cfg, mixes, specs, p)
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "%-16s", v.label)
		for si := range specs {
			fmt.Fprintf(w, "  %+13.2f%%", pctOver(sr.geoNormWS(si)))
		}
		fmt.Fprintln(w)
	}
	return nil
}

// Fig20LLCSize reproduces Fig 20: sensitivity to the LLC slice size (1, 2,
// 4 MB per core at paper scale), with sampled-set counts fixed as for the
// 2 MB slice.
func Fig20LLCSize(p Params, w io.Writer) error {
	header(w, "fig20", "LLC slice size sensitivity (16 cores)", p)
	base := p.config(16).SliceKB
	err := sensitivitySweep(p, w, []struct {
		label string
		edit  func(*sim.Config)
	}{
		{"1MB/core", func(c *sim.Config) { c.SliceKB = base / 2 }},
		{"2MB/core", func(c *sim.Config) {}},
		{"4MB/core", func(c *sim.Config) { c.SliceKB = base * 2 }},
	})
	if err != nil {
		return err
	}
	fmt.Fprintln(w, "paper shape: Drishti's edge holds across sizes, best at 2 MB/core")
	return nil
}

// Fig21L2Size reproduces Fig 21: sensitivity to the L2 size (0.5, 1, 2 MB
// at paper scale). Large L2s absorb the working set and shrink everyone's
// headroom.
func Fig21L2Size(p Params, w io.Writer) error {
	header(w, "fig21", "L2 size sensitivity (16 cores)", p)
	base := p.config(16).L2KB
	err := sensitivitySweep(p, w, []struct {
		label string
		edit  func(*sim.Config)
	}{
		{"0.5MB L2", func(c *sim.Config) {}},
		{"1MB L2", func(c *sim.Config) { c.L2KB = base * 2 }},
		{"2MB L2", func(c *sim.Config) { c.L2KB = base * 4 }},
	})
	if err != nil {
		return err
	}
	fmt.Fprintln(w, "paper shape: gains shrink as L2 grows (working sets start fitting in L2)")
	return nil
}

// Fig22DRAMChannels reproduces Fig 22: sensitivity to DRAM channel count on
// 16 cores (2, 4, 8 channels). Fewer channels make LLC misses costlier, so
// replacement quality matters more.
func Fig22DRAMChannels(p Params, w io.Writer) error {
	header(w, "fig22", "DRAM channel sensitivity (16 cores)", p)
	err := sensitivitySweep(p, w, []struct {
		label string
		edit  func(*sim.Config)
	}{
		{"2 channels", func(c *sim.Config) { d := dram.DefaultConfig(16); d.Channels = 2; c.DRAM = d }},
		{"4 channels", func(c *sim.Config) { d := dram.DefaultConfig(16); d.Channels = 4; c.DRAM = d }},
		{"8 channels", func(c *sim.Config) { d := dram.DefaultConfig(16); d.Channels = 8; c.DRAM = d }},
	})
	if err != nil {
		return err
	}
	fmt.Fprintln(w, "paper shape: biggest gains at 2 channels; gains shrink at 8")
	return nil
}

// Fig23Prefetchers reproduces Fig 23: Drishti under five state-of-the-art
// prefetcher configurations (each normalized to an LRU baseline running the
// same prefetchers).
func Fig23Prefetchers(p Params, w io.Writer) error {
	header(w, "fig23", "Drishti with state-of-the-art prefetchers (16 cores)", p)
	err := sensitivitySweep(p, w, []struct {
		label string
		edit  func(*sim.Config)
	}{
		{"nl+ip-stride", func(c *sim.Config) {}},
		{"spp(+ppf)", func(c *sim.Config) { c.L2Prefetcher = "spp" }},
		{"bingo", func(c *sim.Config) { c.L2Prefetcher = "bingo" }},
		{"ipcp", func(c *sim.Config) { c.L1Prefetcher = "ipcp"; c.L2Prefetcher = "ipcp" }},
		{"berti", func(c *sim.Config) { c.L1Prefetcher = "berti"; c.L2Prefetcher = "berti" }},
		{"gaze", func(c *sim.Config) { c.L2Prefetcher = "gaze" }},
	})
	if err != nil {
		return err
	}
	fmt.Fprintln(w, "paper shape: gains persist under every prefetcher; highly accurate ones (spp/berti) shrink the headroom")
	return nil
}
