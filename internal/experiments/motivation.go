package experiments

import (
	"fmt"
	"io"
	"sort"

	"drishti/internal/cache"
	"drishti/internal/fabric"
	"drishti/internal/policies"
	"drishti/internal/policy/hawkeye"
	"drishti/internal/policy/mockingjay"
	"drishti/internal/sim"
	"drishti/internal/stats"
	"drishti/internal/workload"
)

// Fig02PCScatter reproduces Fig 2: the fraction of PCs per core (with ≥2
// demand loads at the LLC) whose loads all map to one LLC slice, across the
// 16-core mix population.
func Fig02PCScatter(p Params, w io.Writer) error {
	header(w, "fig02", "PC→slice scatter (higher = more myopic-prone)", p)
	const cores = 16
	cfg := p.config(cores)
	cfg.TrackPCSlices = true
	mixes := p.paperMixes(cfg, cores)
	var fracs []float64
	for _, mix := range mixes {
		res, err := sim.RunMixContext(p.ctx(), cfg, mix)
		if err != nil {
			return err
		}
		if res.PCSlices == nil || res.PCSlices.PCs == 0 {
			fmt.Fprintf(w, "%-28s no multi-load PCs at LLC\n", mix.Name)
			continue
		}
		fracs = append(fracs, res.PCSlices.FractionOne)
		fmt.Fprintf(w, "%-28s pcs=%-5d one-slice=%.1f%%\n",
			mix.Name, res.PCSlices.PCs, res.PCSlices.FractionOne*100)
	}
	fmt.Fprintf(w, "AVG one-slice fraction: %.1f%%  (paper: 66.2%% avg, ~40%% for xalan)\n",
		stats.Mean(fracs)*100)
	return nil
}

// Fig03ETRViews reproduces Fig 3: the predicted ETR values for a hot PC of
// a xalan-like 16-core homogeneous mix under the myopic (per-slice), global
// (centralized), and oracle (centralized, every set sampled) views.
func Fig03ETRViews(p Params, w io.Writer) error {
	header(w, "fig03", "ETR views for a hot xalan PC", p)
	return etrViews(p, w, policies.Spec{
		Name:      "mockingjay",
		Placement: policies.PlacementPtr(fabric.Local),
	}, "myopic (per-slice banks)")
}

// etrViews runs the three views and prints per-core predicted ETRs for the
// hottest loop PC. drishtiSpec selects what stands in for the myopic view
// (fig03 uses Local; fig18 uses Drishti's per-core-global).
func etrViews(p Params, w io.Writer, firstSpec policies.Spec, firstLabel string) error {
	const cores = 16
	cfg := p.config(cores)
	mix, err := p.homoMix(cfg, cores, "xalancbmk_s-202B")
	if err != nil {
		return err
	}
	// Stream 1 is the model's big LLC-resident loop (stream 0 is the
	// L1-resident stack stream, which rarely reaches the LLC).
	hotPC := workload.StreamPCs(mix.Models[0], 1)[0]

	type view struct {
		label string
		spec  policies.Spec
	}
	views := []view{
		{firstLabel, firstSpec},
		{"global (centralized bank)", policies.Spec{
			Name:      "mockingjay",
			Placement: policies.PlacementPtr(fabric.Centralized),
			// Centralized latency is not the point here; keep it off the
			// fill path so the prediction values are comparable.
			FixedPredLatency: 1,
		}},
		{"oracle (global + all sets sampled)", policies.Spec{
			Name:             "mockingjay",
			Placement:        policies.PlacementPtr(fabric.Centralized),
			FixedPredLatency: 1,
			// Every set of every slice is sampled: the predictor sees the
			// complete access pattern.
			SampledSets: cfg.SliceKB * 1024 / 64 / cfg.LLCWays,
		}},
	}

	for _, v := range views {
		c := cfg
		c.Policy = v.spec
		readers, err := sim.Readers(mix)
		if err != nil {
			return err
		}
		sys, err := sim.New(c, readers)
		if err != nil {
			return err
		}
		if _, err := sys.Run(); err != nil {
			return err
		}
		shared, ok := sys.Built().Shared.(*mockingjay.Shared)
		if !ok {
			return fmt.Errorf("fig03: expected mockingjay shared state")
		}
		banks := sys.Built().Fabric.NumBanks()
		fmt.Fprintf(w, "-- %s (PC 0x%x)\n", v.label, hotPC)
		for core := 0; core < cores; core += 4 {
			var vals []int16
			for b := 0; b < banks; b++ {
				if rd, trained := shared.Peek(b, hotPC, core); trained {
					vals = append(vals, rd)
				}
			}
			fmt.Fprintf(w, "   core %-2d trained-banks=%-3d etr=%s\n", core, len(vals), etrSummary(vals))
		}
	}
	fmt.Fprintln(w, "paper shape: myopic values scatter widely; global tracks oracle")
	return nil
}

func etrSummary(vals []int16) string {
	if len(vals) == 0 {
		return "untrained"
	}
	sort.Slice(vals, func(i, j int) bool { return vals[i] < vals[j] })
	min, max := vals[0], vals[len(vals)-1]
	var sum int
	for _, v := range vals {
		sum += int(v)
	}
	return fmt.Sprintf("min=%d mean=%.0f max=%d spread=%d", min, float64(sum)/float64(len(vals)), max, max-min)
}

// Fig04FreqDist reproduces Fig 4: how the distribution of inserted ETR
// values (Mockingjay) and friendly/averse insertions (Hawkeye) differs
// between the myopic and global views, for xalan (heavy scatter) and pr
// (little scatter).
func Fig04FreqDist(p Params, w io.Writer) error {
	header(w, "fig04", "insertion-value distributions, myopic vs global", p)
	const cores = 16
	cfg := p.config(cores)
	for _, wl := range []string{"xalancbmk_s-202B", "pr-twitter"} {
		mix, err := p.homoMix(cfg, cores, wl)
		if err != nil {
			return err
		}
		for _, view := range []struct {
			label string
			place fabric.Placement
		}{
			{"myopic", fabric.Local},
			{"global", fabric.Centralized},
		} {
			// Mockingjay ETR fill histogram.
			c := cfg
			c.Policy = policies.Spec{Name: "mockingjay", Placement: policies.PlacementPtr(view.place), FixedPredLatency: 1}
			readers, err := sim.Readers(mix)
			if err != nil {
				return err
			}
			sys, err := sim.New(c, readers)
			if err != nil {
				return err
			}
			for _, pol := range sys.Built().PerSlice {
				pol.(*mockingjay.Slice).CollectETR = true
			}
			if _, err := sys.Run(); err != nil {
				return err
			}
			hist := stats.NewHistogram(0, 8, 9)
			for _, pol := range sys.Built().PerSlice {
				for _, v := range pol.(*mockingjay.Slice).ETRFills {
					hist.Add(int64(v))
				}
			}
			fmt.Fprintf(w, "%-22s %-7s mockingjay ETR fills: %s\n", wl, view.label, hist)

			// Hawkeye friendly/averse split.
			c.Policy = policies.Spec{Name: "hawkeye", Placement: policies.PlacementPtr(view.place), FixedPredLatency: 1}
			readers, err = sim.Readers(mix)
			if err != nil {
				return err
			}
			sys, err = sim.New(c, readers)
			if err != nil {
				return err
			}
			if _, err := sys.Run(); err != nil {
				return err
			}
			var friendly, averse uint64
			for _, pol := range sys.Built().PerSlice {
				h := pol.(*hawkeye.Slice)
				friendly += h.InsertFriendly
				averse += h.InsertAverse
			}
			tot := friendly + averse
			if tot == 0 {
				tot = 1
			}
			fmt.Fprintf(w, "%-22s %-7s hawkeye inserts: rrip0(friendly)=%.1f%% rrip7(averse)=%.1f%%\n",
				wl, view.label, 100*float64(friendly)/float64(tot), 100*float64(averse)/float64(tot))
		}
	}
	fmt.Fprintln(w, "paper shape: xalan's myopic/global gap is larger than pr's")
	return nil
}

// Fig05SetMPKA reproduces Fig 5: the per-set demand MPKA distribution for
// mcf-like (skewed), gcc-like (intermediate), and lbm-like (uniform)
// 16-core homogeneous mixes under LRU.
func Fig05SetMPKA(p Params, w io.Writer) error {
	header(w, "fig05", "per-set MPKA distributions", p)
	const cores = 16
	cfg := p.config(cores)
	for _, wl := range []string{"mcf_s-1554B", "gcc_s-734B", "lbm_s-2676B"} {
		mix, err := p.homoMix(cfg, cores, wl)
		if err != nil {
			return err
		}
		readers, err := sim.Readers(mix)
		if err != nil {
			return err
		}
		sys, err := sim.New(cfg, readers)
		if err != nil {
			return err
		}
		if _, err := sys.Run(); err != nil {
			return err
		}
		var all []float64
		for _, sl := range sys.Slices() {
			all = append(all, sl.MPKAPerSet()...)
		}
		sort.Float64s(all)
		n := len(all)
		top := all[n*31/32:]
		var topSum, total float64
		for _, v := range all {
			total += v
		}
		for _, v := range top {
			topSum += v
		}
		share := 0.0
		if total > 0 {
			share = topSum / total
		}
		fmt.Fprintf(w, "%-22s sets=%d min=%.3f p50=%.3f p95=%.3f max=%.3f  top-3%%-sets-share=%.1f%%\n",
			wl, n, all[0], all[n/2], all[n*95/100], all[n-1], share*100)
	}
	fmt.Fprintln(w, "paper shape: mcf heavily skewed, gcc milder, lbm uniform")
	return nil
}

// Tab01SampledSetCases reproduces Table 1: Mockingjay speedup on a 16-core
// mcf homogeneous mix when the sampled sets are the top-MPKA sets (I), the
// bottom-MPKA sets (II), or half/half (III), relative to random selection.
func Tab01SampledSetCases(p Params, w io.Writer) error {
	header(w, "tab01", "MPKA-ranked sampled-set selection (Mockingjay, mcf homo)", p)
	const cores = 16
	cfg := p.config(cores)
	mix, err := p.homoMix(cfg, cores, "mcf_s-1554B")
	if err != nil {
		return err
	}

	// Profile pass under LRU to rank sets by misses per slice.
	readers, err := sim.Readers(mix)
	if err != nil {
		return err
	}
	profSys, err := sim.New(cfg, readers)
	if err != nil {
		return err
	}
	if _, err := profSys.Run(); err != nil {
		return err
	}
	sets := cfg.SliceKB * 1024 / 64 / cfg.LLCWays
	n := 32 * sets / 2048 // the paper's 32-of-2048, scaled
	if n < 4 {
		n = 4
	}
	topPer, botPer, mixPer := rankSets(profSys.Slices(), n)

	ev, err := evalMix(p.ctx(), cfg, mix, p.Parallel())
	if err != nil {
		return err
	}
	baseSpec := policies.Spec{Name: "mockingjay", SampledSets: n}
	baseOut, err := ev.runPolicy(p.ctx(), cfg, baseSpec)
	if err != nil {
		return err
	}
	cases := []struct {
		label string
		per   [][]int
	}{
		{"I   (top MPKA)", topPer},
		{"II  (bottom MPKA)", botPer},
		{"III (half/half)", mixPer},
	}
	fmt.Fprintf(w, "random baseline (n=%d/slice): normWS=%.4f\n", n, baseOut.normWS)
	for _, cse := range cases {
		out, err := ev.runPolicy(p.ctx(), cfg, policies.Spec{Name: "mockingjay", FixedPerSlice: cse.per})
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "case %-18s normWS=%.4f  speedup over random=%+.2f%%\n",
			cse.label, out.normWS, (out.normWS/baseOut.normWS-1)*100)
	}
	fmt.Fprintln(w, "paper shape: I > III > II (16.4 / 9.5 / 8.3% over Mockingjay-random)")
	return nil
}

// rankSets builds per-slice top-n, bottom-n, and mixed set lists from a
// profiling run's per-set miss counters.
func rankSets(slices []*cache.Cache, n int) (top, bot, mixed [][]int) {
	for _, sl := range slices {
		topK := stats.TopK(sl.SetMisses, n)
		botK := stats.BottomK(sl.SetMisses, n)
		seen := map[int]bool{}
		var mix []int
		for _, s := range append(append([]int(nil), topK[:n/2]...), botK...) {
			if !seen[s] {
				seen[s] = true
				mix = append(mix, s)
			}
			if len(mix) == n {
				break
			}
		}
		sort.Ints(mix)
		top = append(top, topK)
		bot = append(bot, botK)
		mixed = append(mixed, mix)
	}
	return top, bot, mixed
}
