package experiments

import (
	"context"
	"errors"
	"testing"
)

// A cancelled Params.Context must abort a sweep on both the serial and the
// parallel path with an error wrapping context.Canceled.
func TestSweepCancelled(t *testing.T) {
	cfg, mixes, specs := sweepFixture()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	for _, par := range []int{1, 4} {
		ResetCache()
		_, err := runSweep(cfg, mixes, specs, Params{Parallelism: par, Context: ctx})
		if !errors.Is(err, context.Canceled) {
			t.Errorf("parallelism %d: got %v, want context.Canceled", par, err)
		}
	}
	ResetCache()
}

// The zero-value Context must run to completion exactly like before.
func TestSweepZeroContextCompletes(t *testing.T) {
	cfg, mixes, specs := sweepFixture()
	ResetCache()
	sr, err := runSweep(cfg, mixes, specs, Params{Parallelism: 2})
	ResetCache()
	if err != nil {
		t.Fatal(err)
	}
	if got := len(sr.normWS); got != len(specs) {
		t.Fatalf("sweep returned %d spec rows, want %d", got, len(specs))
	}
}
