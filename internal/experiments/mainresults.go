package experiments

import (
	"fmt"
	"io"
	"sort"

	"drishti/internal/policies"
	"drishti/internal/stats"
)

// Fig13MainPerf reproduces Fig 13: normalized weighted speedup of Hawkeye,
// D-Hawkeye, Mockingjay, and D-Mockingjay over LRU on 4-, 16-, and 32-core
// systems across the SPEC+GAP mix population.
func Fig13MainPerf(p Params, w io.Writer) error {
	header(w, "fig13", "normalized WS over LRU (the headline result)", p)
	specs := mainSpecs()
	fmt.Fprintf(w, "%-8s", "cores")
	for _, s := range specs {
		fmt.Fprintf(w, "  %-14s", s.DisplayName())
	}
	fmt.Fprintln(w)
	for _, cores := range []int{4, 16, 32} {
		cfg := p.config(cores)
		mixes := p.paperMixes(cfg, cores)
		sr, err := runSweepCached(cfg, mixes, specs, p)
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "%-8d", cores)
		for si := range specs {
			fmt.Fprintf(w, "  %+13.2f%%", pctOver(sr.geoNormWS(si)))
		}
		fmt.Fprintln(w)
	}
	fmt.Fprintln(w, "paper (32 cores): hawkeye +3.3%, d-hawkeye +5.6%, mockingjay +6.7%, d-mockingjay +13.2%")
	fmt.Fprintln(w, "shape to check: D- variants beat bases; the gap widens with core count")
	return nil
}

// Fig14MissReduction reproduces Fig 14: the reduction in average LLC MPKI
// relative to LRU for the same policy set and core counts.
func Fig14MissReduction(p Params, w io.Writer) error {
	header(w, "fig14", "LLC miss (MPKI) reduction over LRU", p)
	specs := mainSpecs()
	fmt.Fprintf(w, "%-8s", "cores")
	for _, s := range specs {
		fmt.Fprintf(w, "  %-14s", s.DisplayName())
	}
	fmt.Fprintln(w)
	for _, cores := range []int{4, 16, 32} {
		cfg := p.config(cores)
		mixes := p.paperMixes(cfg, cores)
		sr, err := runSweepCached(cfg, mixes, specs, p)
		if err != nil {
			return err
		}
		base := sr.avgBaseMPKI()
		fmt.Fprintf(w, "%-8d", cores)
		for si := range specs {
			red := 0.0
			if base > 0 {
				red = (1 - sr.avgMPKI(si)/base) * 100
			}
			fmt.Fprintf(w, "  %+13.2f%%", red)
		}
		fmt.Fprintln(w)
	}
	fmt.Fprintln(w, "paper (32 cores): hawkeye −10.6%, d-hawkeye −14.1%, mockingjay −21.2%, d-mockingjay −24.1%")
	return nil
}

// Tab05WPKI reproduces Table 5: average LLC writebacks per kilo instruction.
func Tab05WPKI(p Params, w io.Writer) error {
	header(w, "tab05", "average LLC WPKI", p)
	specs := mainSpecs()
	fmt.Fprintf(w, "%-8s  %-10s", "cores", "lru")
	for _, s := range specs {
		fmt.Fprintf(w, "  %-14s", s.DisplayName())
	}
	fmt.Fprintln(w)
	for _, cores := range []int{4, 16, 32} {
		cfg := p.config(cores)
		mixes := p.paperMixes(cfg, cores)
		sr, err := runSweepCached(cfg, mixes, specs, p)
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "%-8d  %-10.2f", cores, sr.avgBaseWPKI())
		for si := range specs {
			fmt.Fprintf(w, "  %-14.2f", sr.avgWPKI(si))
		}
		fmt.Fprintln(w)
	}
	fmt.Fprintln(w, "paper shape: predictor policies write back much more than LRU (dirty lines get lowest priority)")
	return nil
}

// Fig15Energy reproduces Fig 15: uncore (LLC+NoC+DRAM) dynamic energy
// normalized to LRU on 16- and 32-core systems.
func Fig15Energy(p Params, w io.Writer) error {
	header(w, "fig15", "uncore energy normalized to LRU (lower is better)", p)
	specs := mainSpecs()
	fmt.Fprintf(w, "%-8s", "cores")
	for _, s := range specs {
		fmt.Fprintf(w, "  %-14s", s.DisplayName())
	}
	fmt.Fprintln(w)
	for _, cores := range []int{16, 32} {
		cfg := p.config(cores)
		mixes := p.paperMixes(cfg, cores)
		sr, err := runSweepCached(cfg, mixes, specs, p)
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "%-8d", cores)
		for si := range specs {
			fmt.Fprintf(w, "  %-14.3f", sr.avgEnergy(si))
		}
		fmt.Fprintln(w)
	}
	fmt.Fprintln(w, "paper (32 cores): hawkeye 0.98, d-hawkeye 0.97, mockingjay 0.95, d-mockingjay 0.91")
	return nil
}

// Tab06Metrics reproduces Table 6: WS, HS, unfairness, and MIS for the four
// policies on the 32-core system.
func Tab06Metrics(p Params, w io.Writer) error {
	header(w, "tab06", "WS / HS / unfairness / max-slowdown on 32 cores", p)
	const cores = 32
	cfg := p.config(cores)
	mixes := p.paperMixes(cfg, cores)
	specs := mainSpecs()
	sr, err := runSweepCached(cfg, mixes, specs, p)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "%-14s  %-8s  %-8s  %-10s  %-8s\n", "policy", "WS(%)", "HS(%)", "unfair", "MIS(%)")
	for si, spec := range specs {
		var hsRatios, unfair, maxSlow []float64
		for mi := range mixes {
			out := sr.outcomes[si][mi]
			ev := sr.evals[mi]
			baseM, err := outMetrics(ev)
			if err != nil {
				return err
			}
			hsRatios = append(hsRatios, out.multi.HS/baseM.HS)
			unfair = append(unfair, out.multi.Unfairness)
			maxSlow = append(maxSlow, out.multi.MaxSlowdown()*100)
		}
		fmt.Fprintf(w, "%-14s  %+7.2f  %+7.2f  %-10.2f  %-8.1f\n",
			spec.DisplayName(),
			pctOver(sr.geoNormWS(si)),
			pctOver(geomean(hsRatios)),
			stats.Mean(unfair),
			stats.Mean(maxSlow))
	}
	fmt.Fprintln(w, "paper: WS 3.3/5.6/6.7/13.3%, HS 3.4/5/4.5/12.8%, unfairness ~1.2–1.3, MIS 41.4/40/37/34.2%")
	return nil
}

// Fig16PerMix reproduces Fig 16: per-mix normalized WS for Mockingjay and
// D-Mockingjay on 32 cores, sorted by improvement.
func Fig16PerMix(p Params, w io.Writer) error {
	header(w, "fig16", "per-mix performance, Mockingjay vs D-Mockingjay (sorted)", p)
	const cores = 32
	cfg := p.config(cores)
	mixes := p.paperMixes(cfg, cores)
	specs := []policies.Spec{{Name: "mockingjay"}, {Name: "mockingjay", Drishti: true}}
	sr, err := runSweepCached(cfg, mixes, specs, p)
	if err != nil {
		return err
	}
	type row struct {
		name  string
		m, dm float64
	}
	rows := make([]row, len(mixes))
	for mi, mix := range mixes {
		rows[mi] = row{mix.Name, sr.normWS[0][mi], sr.normWS[1][mi]}
	}
	sort.Slice(rows, func(i, j int) bool { return rows[i].dm < rows[j].dm })
	wins := 0
	for _, r := range rows {
		marker := ""
		if r.dm >= r.m {
			wins++
		} else {
			marker = "  (d-mockingjay behind)"
		}
		fmt.Fprintf(w, "%-28s mockingjay=%.4f d-mockingjay=%.4f%s\n", r.name, r.m, r.dm, marker)
	}
	fmt.Fprintf(w, "d-mockingjay ≥ mockingjay on %d/%d mixes (paper: consistently outperforms on all 70)\n",
		wins, len(rows))
	return nil
}

// outMetrics computes the LRU baseline's own metrics (for HS normalization).
func outMetrics(ev *mixEval) (m multiLite, err error) {
	// The baseline's HS against its own alone IPCs.
	var invSum float64
	n := 0
	for i, ipc := range ev.baseRes.IPCs() {
		is := ipc / ev.alone[i]
		if is > 0 {
			invSum += 1 / is
			n++
		}
	}
	if n == 0 || invSum == 0 {
		return multiLite{HS: 1}, nil
	}
	return multiLite{HS: float64(n) / invSum}, nil
}

type multiLite struct{ HS float64 }
