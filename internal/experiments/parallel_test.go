package experiments

import (
	"context"

	"testing"

	"drishti/internal/policies"
	"drishti/internal/sim"
	"drishti/internal/workload"
)

// sweepFixture builds a small but non-trivial sweep: 2 mixes × 3 specs on
// a 2-core scaled machine.
func sweepFixture() (sim.Config, []workload.Mix, []policies.Spec) {
	p := tinyParams()
	cfg := p.config(2)
	mixes := p.paperMixes(cfg, 2)
	specs := []policies.Spec{
		{Name: "srrip"},
		{Name: "hawkeye"},
		{Name: "hawkeye", Drishti: true},
	}
	return cfg, mixes, specs
}

// TestSweepParallelMatchesSerial is the tentpole determinism guarantee:
// a sweep at parallelism 8 produces bit-identical normWS, MPKI, WPKI, and
// energy values to the strictly serial run.
func TestSweepParallelMatchesSerial(t *testing.T) {
	if testing.Short() {
		t.Skip("sweep determinism test is not -short")
	}
	cfg, mixes, specs := sweepFixture()

	ResetCache()
	serial, err := runSweep(cfg, mixes, specs, Params{Parallelism: 1})
	if err != nil {
		t.Fatal(err)
	}
	ResetCache() // force the parallel run to recompute everything
	par, err := runSweep(cfg, mixes, specs, Params{Parallelism: 8})
	if err != nil {
		t.Fatal(err)
	}
	ResetCache()

	for si := range specs {
		for mi := range mixes {
			if s, p := serial.normWS[si][mi], par.normWS[si][mi]; s != p {
				t.Errorf("normWS[%d][%d]: serial %v != parallel %v", si, mi, s, p)
			}
			sres, pres := serial.outcomes[si][mi].res, par.outcomes[si][mi].res
			if sres.MPKI != pres.MPKI {
				t.Errorf("MPKI[%d][%d]: serial %v != parallel %v", si, mi, sres.MPKI, pres.MPKI)
			}
			if sres.WPKI != pres.WPKI {
				t.Errorf("WPKI[%d][%d]: serial %v != parallel %v", si, mi, sres.WPKI, pres.WPKI)
			}
			if sres.Energy.Total != pres.Energy.Total {
				t.Errorf("energy[%d][%d]: serial %v != parallel %v", si, mi,
					sres.Energy.Total, pres.Energy.Total)
			}
		}
	}
	for mi := range mixes {
		sev, pev := serial.evals[mi], par.evals[mi]
		if sev == nil || pev == nil {
			t.Fatalf("eval[%d] missing: serial %v parallel %v", mi, sev, pev)
		}
		if sev.baseWS != pev.baseWS {
			t.Errorf("baseWS[%d]: serial %v != parallel %v", mi, sev.baseWS, pev.baseWS)
		}
		for c := range sev.alone {
			if sev.alone[c] != pev.alone[c] {
				t.Errorf("alone[%d][%d]: serial %v != parallel %v", mi, c, sev.alone[c], pev.alone[c])
			}
		}
	}
	// Aggregates follow from the cells, but assert the headline numbers too.
	for si := range specs {
		if serial.geoNormWS(si) != par.geoNormWS(si) {
			t.Errorf("geoNormWS(%d) differs", si)
		}
		if serial.avgEnergy(si) != par.avgEnergy(si) {
			t.Errorf("avgEnergy(%d) differs", si)
		}
	}
}

// TestSweepErrorDeterministic: an error in one cell cancels the sweep and
// the returned error is the serial path's first error at every
// parallelism.
func TestSweepErrorDeterministic(t *testing.T) {
	if testing.Short() {
		t.Skip()
	}
	p := tinyParams()
	cfg := p.config(2)
	mixes := p.paperMixes(cfg, 2)
	// Cell (mix 0, spec 1) is the first to fail serially; later cells
	// fail too, so the parallel pool must still surface cell (0,1).
	specs := []policies.Spec{
		{Name: "lru"},
		{Name: "no-such-policy"},
		{Name: "also-bogus"},
	}
	ResetCache()
	_, errSerial := runSweep(cfg, mixes, specs, Params{Parallelism: 1})
	if errSerial == nil {
		t.Fatal("serial sweep accepted a bogus policy")
	}
	for _, par := range []int{2, 8} {
		ResetCache()
		_, err := runSweep(cfg, mixes, specs, Params{Parallelism: par})
		if err == nil {
			t.Fatalf("parallelism %d accepted a bogus policy", par)
		}
		if err.Error() != errSerial.Error() {
			t.Fatalf("parallelism %d error %q != serial %q", par, err, errSerial)
		}
	}
	ResetCache()
}

// TestSweepEvalErrorDeterministic: a baseline-eval failure (not a policy
// cell failure) also surfaces the serial path's error.
func TestSweepEvalErrorDeterministic(t *testing.T) {
	if testing.Short() {
		t.Skip()
	}
	p := tinyParams()
	cfg := p.config(2)
	mixes := p.paperMixes(cfg, 2)
	// A streamless model fails generator construction inside the eval's
	// alone runs.
	mixes[1].Models[0] = workload.Model{Name: "broken"}
	specs := []policies.Spec{{Name: "lru"}, {Name: "srrip"}}
	ResetCache()
	_, errSerial := runSweep(cfg, mixes, specs, Params{Parallelism: 1})
	if errSerial == nil {
		t.Fatal("serial sweep accepted a broken mix")
	}
	ResetCache()
	_, errPar := runSweep(cfg, mixes, specs, Params{Parallelism: 8})
	if errPar == nil {
		t.Fatal("parallel sweep accepted a broken mix")
	}
	if errPar.Error() != errSerial.Error() {
		t.Fatalf("parallel error %q != serial %q", errPar, errSerial)
	}
	ResetCache()
}

// TestRunSweepCachedSingleflight: a second identical request is served
// from the cache (same result pointer), and parallelism is not part of
// the key.
func TestRunSweepCachedSingleflight(t *testing.T) {
	if testing.Short() {
		t.Skip()
	}
	p := tinyParams()
	cfg := p.config(2)
	mixes := p.paperMixes(cfg, 2)[:1]
	specs := []policies.Spec{{Name: "srrip"}}
	ResetCache()
	a, err := runSweepCached(cfg, mixes, specs, Params{Parallelism: 1})
	if err != nil {
		t.Fatal(err)
	}
	b, err := runSweepCached(cfg, mixes, specs, Params{Parallelism: 4})
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Fatal("identical sweep recomputed: parallelism leaked into the cache key")
	}
	ResetCache()
}

// TestParallelParam: flag/env plumbing and the GOMAXPROCS fallback.
func TestParallelParam(t *testing.T) {
	t.Setenv("DRISHTI_PARALLEL", "3")
	p := DefaultParams()
	if p.Parallelism != 3 || p.Parallel() != 3 {
		t.Fatalf("DRISHTI_PARALLEL ignored: %+v", p)
	}
	if got := (Params{}).Parallel(); got < 1 {
		t.Fatalf("zero-value Parallel() = %d, want >= 1", got)
	}
	if got := (Params{Parallelism: 1}).Parallel(); got != 1 {
		t.Fatalf("Parallel() = %d, want 1", got)
	}
}

// TestCachesBounded: the memo caches advertise finite capacities and
// ResetCache empties them.
func TestCachesBounded(t *testing.T) {
	if mixCache.Cap() <= 0 || evalCache.Cap() <= 0 || sweepCache.Cap() <= 0 {
		t.Fatal("cross-experiment caches must be bounded")
	}
	p := tinyParams()
	cfg := p.config(2)
	mixes := p.paperMixes(cfg, 2)[:1]
	if _, err := runMixCached(context.Background(), cfg, mixes[0]); err != nil {
		t.Fatal(err)
	}
	if mixCache.Len() == 0 {
		t.Fatal("run not cached")
	}
	ResetCache()
	if mixCache.Len() != 0 || evalCache.Len() != 0 || sweepCache.Len() != 0 {
		t.Fatal("ResetCache left entries behind")
	}
}
