package experiments

import (
	"fmt"
	"io"

	"drishti/internal/scenario"
	"drishti/internal/workload"
)

// RunScenario executes a compiled scenario — every run in its sweep, every
// policy per run — through the same cached sweep harness the paper's
// experiments use, and prints one table per run: policy, normalized
// weighted speedup (vs. the LRU baseline measured on the same mix), MPKI,
// WPKI, and unfairness. The scenario's machine settings are authoritative;
// Params supplies only execution knobs (parallelism, batching, logging,
// telemetry), which never change results.
func RunScenario(p Params, c *scenario.Compiled, w io.Writer) error {
	fmt.Fprintf(w, "== scenario %s (seed=%d, %d run(s) x %d polic%s)\n",
		c.Spec.Name, c.Spec.Seed, len(c.Runs), len(c.Policies), plural(len(c.Policies), "y", "ies"))
	for _, run := range c.Runs {
		cfg := run.Cfg
		if p.TelemetryEpoch > 0 && p.TelemetrySink != nil {
			cfg.TelemetryEpoch = p.TelemetryEpoch
			cfg.TelemetrySink = p.TelemetrySink
		}
		sr, err := runSweepCached(cfg, []workload.Mix{run.Mix}, c.Policies, p)
		if err != nil {
			return fmt.Errorf("scenario %s run %s: %w", c.Spec.Name, run.Name, err)
		}
		fmt.Fprintf(w, "\n-- run %s: cores=%d slice=%dKB instr=%d mix=%s\n",
			run.Name, cfg.Cores, cfg.SliceKB, cfg.Instructions, run.Mix.Name)
		fmt.Fprintf(w, "   %-22s %8s %8s %8s %10s\n", "policy", "normWS", "MPKI", "WPKI", "unfairness")
		for si, spec := range c.Policies {
			out := sr.outcomes[si][0]
			fmt.Fprintf(w, "   %-22s %8.4f %8.2f %8.2f %10.3f\n",
				spec.DisplayName(), out.normWS, out.res.MPKI, out.res.WPKI, out.multi.Unfairness)
		}
	}
	return nil
}

func plural(n int, one, many string) string {
	if n == 1 {
		return one
	}
	return many
}
