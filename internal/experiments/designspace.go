package experiments

import (
	"fmt"
	"io"

	"drishti/internal/fabric"
	"drishti/internal/policies"
)

// Tab02DesignSpace quantifies Table 2: the four ways to give reuse
// predictors a global view (global sampled cache — centralized or
// distributed — vs global predictor — centralized or per-core), measured by
// the traffic they put on the interconnect: prediction lookups that cross
// slices, training messages, and broadcasts. The paper argues per-core-yet-
// global predictors win because they need no broadcast and little bandwidth;
// this experiment reproduces that argument with numbers.
func Tab02DesignSpace(p Params, w io.Writer) error {
	header(w, "tab02", "predictor/sampled-cache design space (Mockingjay, 16 cores)", p)
	const cores = 16
	cfg := p.config(cores)
	mix, err := p.homoMix(cfg, cores, "xalancbmk_s-202B")
	if err != nil {
		return err
	}
	rows := []struct {
		label string
		place fabric.Placement
	}{
		{"local SC + local pred (baseline, myopic)", fabric.Local},
		{"global SC centralized + local pred", fabric.GlobalSCCentralized},
		{"global SC distributed + local pred", fabric.GlobalSCDistributed},
		{"local SC + centralized pred", fabric.Centralized},
		{"local SC + per-core global pred (Drishti)", fabric.PerCoreGlobal},
	}
	fmt.Fprintf(w, "%-44s %-8s %-10s %-11s %-11s %-9s %-12s\n",
		"design", "global?", "lookups", "trainings", "broadcasts", "remote", "hottest-bank")
	for _, row := range rows {
		c := cfg
		c.Policy = policies.Spec{
			Name:             "mockingjay",
			Placement:        policies.PlacementPtr(row.place),
			FixedPredLatency: 1, // isolate traffic from timing
		}
		res, err := runMixCached(p.ctx(), c, mix)
		if err != nil {
			return err
		}
		var g string
		if row.place.GlobalView() {
			g = "yes"
		} else {
			g = "no"
		}
		f := res.Fabric
		// The bandwidth story is concentration: how much traffic the
		// single busiest predictor bank absorbs (Fig 10's hot spot).
		var maxBank float64
		for _, v := range res.BankAPKI {
			if v > maxBank {
				maxBank = v
			}
		}
		fmt.Fprintf(w, "%-44s %-8s %-10d %-11d %-11d %-9d %-12.1f\n",
			row.label, g, f.Lookups, f.Trainings, f.Broadcasts,
			f.RemoteLookups+f.RemoteTrains, maxBank)
	}
	fmt.Fprintln(w, "paper shape (Table 2): global-SC designs broadcast; a centralized predictor")
	fmt.Fprintln(w, "concentrates everything on one hot bank (high bandwidth demand); the per-core")
	fmt.Fprintln(w, "global predictor spreads the same global view across banks with no broadcast")
	return nil
}
