package experiments

import (
	"context"
	"io"

	"drishti/internal/scenario"
)

// This file is the package's context-first door. Historically the
// cancellation context rode inside Params.Context; these one-line
// entrypoints make the context an explicit first argument — the
// canonical shape everywhere else in the codebase — and reduce the
// Params field to plumbing. Passing a context that is never cancelled
// is bit-identical to the Params-only forms.

// RunContext runs the experiment under ctx (installed as the params'
// cancellation context).
func (e Experiment) RunContext(ctx context.Context, p Params, w io.Writer) error {
	p.Context = ctx
	return e.Run(p, w)
}

// RunScenarioContext is RunScenario under ctx (installed as the params'
// cancellation context).
func RunScenarioContext(ctx context.Context, p Params, c *scenario.Compiled, w io.Writer) error {
	p.Context = ctx
	return RunScenario(p, c, w)
}
