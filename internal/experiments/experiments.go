// Package experiments contains one driver per table and figure of the
// paper's evaluation (the full index lives in DESIGN.md §4). Each driver
// regenerates the corresponding rows/series: the workload population, the
// parameter sweep, the baselines, and the metric the paper plots.
//
// Every driver runs at "harness scale": the machine and the workload
// footprints are shrunk by the same factor (Params.Scale) so that
// footprint-to-capacity ratios — the quantity replacement behavior depends
// on — match the full-size system while simulating orders of magnitude
// fewer instructions. Absolute percentages therefore differ from the paper;
// the shape (who wins, orderings, crossovers) is what EXPERIMENTS.md
// compares.
package experiments

import (
	"context"
	"fmt"
	"io"
	"log/slog"
	"os"
	"runtime"
	"strconv"

	"drishti/internal/obs"
	"drishti/internal/sim"
	"drishti/internal/workload"
)

// Params control experiment scale. Environment variables override the
// defaults for full-fidelity runs: DRISHTI_SCALE, DRISHTI_INSTR,
// DRISHTI_WARMUP, DRISHTI_MIXES, DRISHTI_SEED, DRISHTI_PARALLEL,
// DRISHTI_LANE_WORKERS, DRISHTI_BATCH.
type Params struct {
	Scale        int    // machine + workload shrink factor
	Instructions uint64 // measured instructions per core
	Warmup       uint64 // warmup instructions per core
	Mixes        int    // mixes per category (≤35 homogeneous + ≤35 hetero)
	Seed         uint64

	// Context, when non-nil, cancels in-flight experiments: sweeps stop
	// dispatching cells and running simulations abort with a wrapped
	// ctx.Err(). The zero value behaves exactly like context.Background —
	// results are bit-identical to an uncancellable run.
	Context context.Context

	// Parallelism bounds the sweep worker pool: how many (mix, policy)
	// simulations run concurrently. 0 means GOMAXPROCS. Results are
	// bit-identical at every setting; 1 forces the serial path.
	Parallelism int

	// LaneWorkers bounds concurrent lane execution inside each batched
	// mix (sim.Config.LaneWorkers). The two parallelism levels compose
	// multiplicatively — concurrent mixes × lane workers goroutines run
	// simulations at once — so batched sweeps keep their product within
	// the Parallelism budget: 0 (the default) derives lane workers as
	// Parallelism / concurrent-mixes (surplus budget flows to lanes once
	// the mix pool is saturated), while an explicit value claims its share
	// and shrinks the mix pool to Parallelism / LaneWorkers instead.
	// Results are bit-identical at every setting; DRISHTI_LANE_WORKERS
	// overrides the default.
	LaneWorkers int

	// Logger receives the structured run log (one line per sweep cell with
	// a stable run ID). Nil discards.
	Logger *slog.Logger

	// Progress, when non-nil, receives live sweep accounting (cells
	// dispatched/completed). Sweeps served from the memo cache do no work
	// and are not counted.
	Progress *obs.Progress

	// TelemetryEpoch/TelemetrySink enable the sim-level epoch snapshotter
	// for every run of record (see sim.Config). The sink is shared by all
	// concurrent cells and must be safe for concurrent use; epochs are
	// tagged with the mix name and carry the policy name.
	TelemetryEpoch uint64
	TelemetrySink  obs.EpochSink

	// Batch selects how sweeps execute the cells that share a mix.
	// BatchAuto (the zero value, the default) groups them — every policy
	// cell, the LRU baseline, and the per-core alone calibration runs —
	// into one lockstep batch over a shared access stream
	// (sim.RunBatchContext), paying workload generation once per mix
	// instead of once per run. BatchOff forces the historical one-
	// simulation-per-cell path. Results are bit-identical either way
	// (golden-tested), so this is purely a throughput/memory knob;
	// DRISHTI_BATCH=0 flips the default to off.
	Batch BatchMode
}

// BatchMode selects the sweep execution strategy; see Params.Batch.
type BatchMode int

const (
	// BatchAuto (zero value) batches cells sharing a mix.
	BatchAuto BatchMode = iota
	// BatchOff runs every cell as its own simulation.
	BatchOff
)

// ctx returns the cancellation context, defaulting to Background.
func (p Params) ctx() context.Context {
	if p.Context != nil {
		return p.Context
	}
	return context.Background()
}

// logger returns the run log, defaulting to discard.
func (p Params) logger() *slog.Logger {
	if p.Logger != nil {
		return p.Logger
	}
	return obs.Discard()
}

// Parallel returns the effective worker-pool size (>= 1).
func (p Params) Parallel() int {
	if p.Parallelism > 0 {
		return p.Parallelism
	}
	return runtime.GOMAXPROCS(0)
}

// DefaultParams returns harness-scale defaults, honoring the DRISHTI_*
// environment overrides.
func DefaultParams() Params {
	p := Params{Scale: 8, Instructions: 200_000, Warmup: 50_000, Mixes: 4, Seed: 1}
	if v, ok := envInt("DRISHTI_SCALE"); ok {
		p.Scale = v
	}
	if v, ok := envInt("DRISHTI_INSTR"); ok {
		p.Instructions = uint64(v)
	}
	if v, ok := envInt("DRISHTI_WARMUP"); ok {
		p.Warmup = uint64(v)
	}
	if v, ok := envInt("DRISHTI_MIXES"); ok {
		p.Mixes = v
	}
	if v, ok := envInt("DRISHTI_SEED"); ok {
		p.Seed = uint64(v)
	}
	if v, ok := envInt("DRISHTI_PARALLEL"); ok {
		p.Parallelism = v
	}
	if v, ok := envInt("DRISHTI_LANE_WORKERS"); ok {
		p.LaneWorkers = v
	}
	if v, ok := envInt("DRISHTI_BATCH"); ok && v == 0 {
		p.Batch = BatchOff
	}
	return p
}

func envInt(name string) (int, bool) {
	s := os.Getenv(name)
	if s == "" {
		return 0, false
	}
	v, err := strconv.Atoi(s)
	if err != nil {
		return 0, false
	}
	return v, true
}

// Experiment is one reproducible table/figure.
type Experiment struct {
	ID    string // e.g. "fig13"
	Title string
	Run   func(p Params, w io.Writer) error
}

// All returns every experiment in paper order.
func All() []Experiment {
	return []Experiment{
		{"fig02", "Fraction of PCs per core mapping demand loads to one LLC slice", Fig02PCScatter},
		{"fig03", "ETR views for a hot PC: myopic vs global vs oracle", Fig03ETRViews},
		{"fig04", "Frequency distribution of ETRs and RRIPs, myopic vs global", Fig04FreqDist},
		{"fig05", "MPKA per LLC set for mcf/gcc/lbm-like workloads", Fig05SetMPKA},
		{"tab01", "Speedup with MPKA-ranked sampled-set selection (Mockingjay, mcf)", Tab01SampledSetCases},
		{"tab02", "Design space: global sampled cache vs global predictor traffic", Tab02DesignSpace},
		{"fig10", "Predictor accesses per kilo instruction: centralized vs per-core", Fig10PredictorAPKI},
		{"fig11a", "Slowdown of D-Mockingjay without the low-latency interconnect", Fig11aNoNocstar},
		{"fig11b", "Predictor-interconnect latency sensitivity (32 cores)", Fig11bLatencySweep},
		{"tab03", "Per-core hardware budget with and without Drishti", Tab03Budget},
		{"fig13", "Normalized weighted speedup on 4/16/32 cores", Fig13MainPerf},
		{"fig14", "LLC miss reduction over LRU", Fig14MissReduction},
		{"tab05", "Average LLC WPKI", Tab05WPKI},
		{"fig15", "Uncore energy normalized to LRU", Fig15Energy},
		{"tab06", "WS / HS / Unfairness / MIS on 32 cores", Tab06Metrics},
		{"fig16", "Per-mix sorted performance, Mockingjay vs D-Mockingjay", Fig16PerMix},
		{"fig17", "Utility of each enhancement (global view, then +DSC)", Fig17Ablation},
		{"fig18", "ETR values with Drishti (xalan)", Fig18DrishtiETR},
		{"fig19", "Drishti on CVP1/Cloud/datacenter/XSBench-like workloads", Fig19OtherWorkloads},
		{"fig20", "LLC slice size sensitivity", Fig20LLCSize},
		{"fig21", "L2 size sensitivity", Fig21L2Size},
		{"fig22", "DRAM channel sensitivity", Fig22DRAMChannels},
		{"fig23", "Drishti with state-of-the-art prefetchers", Fig23Prefetchers},
		{"tab07", "Applicability across LLC replacement policies", Tab07Applicability},
		{"tab08", "Drishti with SHiP++, CHROME, and Glider", Tab08OtherPolicies},
		{"scal", "64/128-core scalability (Section 5.3 text)", Scalability},
		{"extA", "EXTENSION: Drishti across the remaining Table 7 policies", ExtApplicability},
		{"extB", "EXTENSION: substrate fidelity ablation (MSHRs, inclusion)", FidelityAblation},
	}
}

// ByID returns the experiment with the given ID.
func ByID(id string) (Experiment, bool) {
	for _, e := range All() {
		if e.ID == id {
			return e, true
		}
	}
	return Experiment{}, false
}

// --- shared helpers ----------------------------------------------------------

// config builds the scaled machine for an experiment.
func (p Params) config(cores int) sim.Config {
	cfg := sim.ScaledConfig(cores, p.Scale)
	cfg.Instructions = p.Instructions
	cfg.Warmup = p.Warmup
	cfg.Seed = p.Seed
	cfg.TelemetryEpoch = p.TelemetryEpoch
	cfg.TelemetrySink = p.TelemetrySink
	return cfg
}

// scaleModels shrinks workload models to match the machine.
func (p Params) scaleModels(cfg sim.Config, models []workload.Model) []workload.Model {
	return workload.ScaleAll(models, p.Scale, cfg.SetIndexBits())
}

// paperMixes returns the scaled evaluation population, subsetted to
// p.Mixes homogeneous + p.Mixes heterogeneous mixes. Homogeneous picks are
// spread across the model list so every archetype is represented.
func (p Params) paperMixes(cfg sim.Config, cores int) []workload.Mix {
	models := p.scaleModels(cfg, workload.AllSPECGAP())
	homo := workload.HomogeneousMixes(models, cores, p.Seed)
	homo = spread(homo, p.Mixes)
	het := workload.HeterogeneousMixes(models, cores, p.Mixes, p.Seed^0xdeadbeef)
	return append(homo, het...)
}

// homoMix builds one scaled homogeneous mix by (partial) model name.
func (p Params) homoMix(cfg sim.Config, cores int, nameSubstr string) (workload.Mix, error) {
	for _, m := range workload.AllSPECGAP() {
		if contains(m.Name, nameSubstr) {
			scaled := m.Scale(p.Scale, cfg.SetIndexBits())
			return workload.Homogeneous(scaled, cores, p.Seed), nil
		}
	}
	return workload.Mix{}, fmt.Errorf("experiments: no model matching %q", nameSubstr)
}

func contains(s, sub string) bool {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return true
		}
	}
	return false
}

// spread picks n entries evenly from xs, preserving order.
func spread[T any](xs []T, n int) []T {
	if n >= len(xs) {
		return xs
	}
	if n <= 0 {
		return nil
	}
	out := make([]T, 0, n)
	for i := 0; i < n; i++ {
		out = append(out, xs[(i*len(xs))/n])
	}
	return out
}

// geomean of normalized speedups, as the paper averages across mixes.
func geomean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	prod := 1.0
	for _, x := range xs {
		prod *= x
	}
	return pow(prod, 1/float64(len(xs)))
}

func pctOver(x float64) float64 { return (x - 1) * 100 }
