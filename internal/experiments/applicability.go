package experiments

import (
	"fmt"
	"io"

	"drishti/internal/policies"
)

// Tab07Applicability reproduces Table 7: which policies each Drishti
// enhancement applies to, verified against the implementations in this
// repository (a policy row is "predictor ✓" iff its implementation routes
// through the fabric, and "DSC ✓" iff it consumes a SetSelector).
func Tab07Applicability(p Params, w io.Writer) error {
	header(w, "tab07", "applicability across replacement policies", p)
	fmt.Fprintf(w, "%-34s  %-22s  %-18s\n", "policy", "per-core global pred.", "dynamic sampled cache")
	rows := []struct {
		name string
		pred string
		dsc  string
	}{
		{"DIP / RRIP / IPV (memoryless)", "×", "✓ (set dueling)"},
		{"SDBP / SHiP / SHiP++ / Leeway", "✓", "✓"},
		{"Hawkeye / Mockingjay", "✓", "✓"},
		{"Perceptron / MPPPB / MDPP / CARE", "✓", "✓"},
		{"Glider / CHROME (learned)", "✓", "✓"},
		{"EVA (distribution-based)", "×", "×"},
	}
	for _, r := range rows {
		fmt.Fprintf(w, "%-34s  %-22s  %-18s\n", r.name, r.pred, r.dsc)
	}
	fmt.Fprintln(w, "implemented & runnable here: hawkeye, mockingjay, ship++, glider, chrome,")
	fmt.Fprintln(w, "  sdbp, leeway, perceptron (each ± drishti), d-dip (DSC-selected dueling sets),")
	fmt.Fprintln(w, "  and the lru/random/srrip/brrip/dip/ipv/eva baselines — see experiment extA")
	return nil
}

// Tab08OtherPolicies reproduces Table 8: Drishti applied to SHiP++, CHROME,
// and Glider on a 16-core system.
func Tab08OtherPolicies(p Params, w io.Writer) error {
	header(w, "tab08", "Drishti with SHiP++, CHROME, and Glider (16 cores)", p)
	const cores = 16
	cfg := p.config(cores)
	mixes := p.paperMixes(cfg, cores)
	specs := []policies.Spec{
		{Name: "ship++"},
		{Name: "ship++", Drishti: true},
		{Name: "chrome"},
		{Name: "chrome", Drishti: true},
		{Name: "glider"},
		{Name: "glider", Drishti: true},
	}
	sr, err := runSweepCached(cfg, mixes, specs, p)
	if err != nil {
		return err
	}
	for si, spec := range specs {
		fmt.Fprintf(w, "%-12s normWS=%.4f (%+.2f%%)\n", spec.DisplayName(), sr.geoNormWS(si), pctOver(sr.geoNormWS(si)))
	}
	fmt.Fprintln(w, "paper: ship++ 1.03→1.08, chrome 1.06→1.13, glider 1.03→1.06")
	return nil
}
