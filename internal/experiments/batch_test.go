package experiments

import (
	"sync"
	"testing"

	"drishti/internal/policies"
)

// TestSweepBatchedMatchesUnbatched is the sweep-level bit-identity guard
// for lockstep batching: the batched grouper (alone + baseline + policy
// lanes over one shared stream per mix) must produce exactly the
// per-cell path's numbers. The two sweeps run CONCURRENTLY on purpose —
// under -race this doubles as the shared-state check for the batch
// grouper racing a plain sweep through the same memo caches.
func TestSweepBatchedMatchesUnbatched(t *testing.T) {
	if testing.Short() {
		t.Skip("sweep determinism test is not -short")
	}
	cfg, mixes, specs := sweepFixture()

	ResetCache()
	var (
		wg                   sync.WaitGroup
		batched, unbatched   *sweepResult
		batchErr, unbatchErr error
	)
	wg.Add(2)
	go func() {
		defer wg.Done()
		batched, batchErr = runSweep(cfg, mixes, specs, Params{Parallelism: 2, Batch: BatchAuto})
	}()
	go func() {
		defer wg.Done()
		unbatched, unbatchErr = runSweep(cfg, mixes, specs, Params{Parallelism: 2, Batch: BatchOff})
	}()
	wg.Wait()
	ResetCache()
	if batchErr != nil {
		t.Fatalf("batched sweep: %v", batchErr)
	}
	if unbatchErr != nil {
		t.Fatalf("unbatched sweep: %v", unbatchErr)
	}

	for si := range specs {
		for mi := range mixes {
			if b, u := batched.normWS[si][mi], unbatched.normWS[si][mi]; b != u {
				t.Errorf("normWS[%d][%d]: batched %v != unbatched %v", si, mi, b, u)
			}
			bres, ures := batched.outcomes[si][mi].res, unbatched.outcomes[si][mi].res
			if bres.MPKI != ures.MPKI {
				t.Errorf("MPKI[%d][%d]: batched %v != unbatched %v", si, mi, bres.MPKI, ures.MPKI)
			}
			if bres.WPKI != ures.WPKI {
				t.Errorf("WPKI[%d][%d]: batched %v != unbatched %v", si, mi, bres.WPKI, ures.WPKI)
			}
			if bres.Energy.Total != ures.Energy.Total {
				t.Errorf("energy[%d][%d]: batched %v != unbatched %v", si, mi,
					bres.Energy.Total, ures.Energy.Total)
			}
		}
	}
	for mi := range mixes {
		bev, uev := batched.evals[mi], unbatched.evals[mi]
		if bev == nil || uev == nil {
			t.Fatalf("eval[%d] missing: batched %v unbatched %v", mi, bev, uev)
		}
		if bev.baseWS != uev.baseWS {
			t.Errorf("baseWS[%d]: batched %v != unbatched %v", mi, bev.baseWS, uev.baseWS)
		}
		for c := range bev.alone {
			if bev.alone[c] != uev.alone[c] {
				t.Errorf("alone[%d][%d]: batched %v != unbatched %v", mi, c, bev.alone[c], uev.alone[c])
			}
		}
	}
	for si := range specs {
		if batched.geoNormWS(si) != unbatched.geoNormWS(si) {
			t.Errorf("geoNormWS(%d) differs", si)
		}
	}
}

// TestSweepBatchedLaneWorkersMatchesSerial turns BOTH concurrency knobs
// on at once — sweep-level Parallelism and intra-batch LaneWorkers — and
// requires the result to be bit-identical to the fully serial sweep.
// Under -race this is the composition check: batch groups running on the
// sweep pool while each group's lanes run on its own lane pool, all
// through the shared memo caches.
func TestSweepBatchedLaneWorkersMatchesSerial(t *testing.T) {
	if testing.Short() {
		t.Skip("sweep determinism test is not -short")
	}
	cfg, mixes, specs := sweepFixture()

	ResetCache()
	serial, err := runSweep(cfg, mixes, specs, Params{Parallelism: 1, LaneWorkers: 1, Batch: BatchAuto})
	if err != nil {
		t.Fatalf("serial batched sweep: %v", err)
	}
	ResetCache()
	par, err := runSweep(cfg, mixes, specs, Params{Parallelism: 2, LaneWorkers: 2, Batch: BatchAuto})
	if err != nil {
		t.Fatalf("parallel batched sweep: %v", err)
	}
	ResetCache()

	for si := range specs {
		for mi := range mixes {
			if s, p := serial.normWS[si][mi], par.normWS[si][mi]; s != p {
				t.Errorf("normWS[%d][%d]: serial %v != parallel+lanes %v", si, mi, s, p)
			}
			sres, pres := serial.outcomes[si][mi].res, par.outcomes[si][mi].res
			if sres.MPKI != pres.MPKI {
				t.Errorf("MPKI[%d][%d]: serial %v != parallel+lanes %v", si, mi, sres.MPKI, pres.MPKI)
			}
			if sres.Energy.Total != pres.Energy.Total {
				t.Errorf("energy[%d][%d]: serial %v != parallel+lanes %v", si, mi,
					sres.Energy.Total, pres.Energy.Total)
			}
		}
		if serial.geoNormWS(si) != par.geoNormWS(si) {
			t.Errorf("geoNormWS(%d) differs with both concurrency knobs on", si)
		}
	}
	for mi := range mixes {
		sev, pev := serial.evals[mi], par.evals[mi]
		if sev.baseWS != pev.baseWS {
			t.Errorf("baseWS[%d]: serial %v != parallel+lanes %v", mi, sev.baseWS, pev.baseWS)
		}
		for c := range sev.alone {
			if sev.alone[c] != pev.alone[c] {
				t.Errorf("alone[%d][%d]: serial %v != parallel+lanes %v", mi, c, sev.alone[c], pev.alone[c])
			}
		}
	}
}

// TestSweepBatchedDedupsBaseline: when LRU is one of the swept specs its
// lane doubles as the eval baseline — the baseline result in the eval and
// the LRU cell's result must be the same simulation (and exactly equal).
func TestSweepBatchedDedupsBaseline(t *testing.T) {
	if testing.Short() {
		t.Skip()
	}
	p := tinyParams()
	cfg := p.config(2)
	mixes := p.paperMixes(cfg, 2)[:1]
	specs := []policies.Spec{{Name: "lru"}, {Name: "srrip"}}

	ResetCache()
	sr, err := runSweep(cfg, mixes, specs, Params{Parallelism: 1, Batch: BatchAuto})
	if err != nil {
		t.Fatal(err)
	}
	ResetCache()
	for si, spec := range specs {
		if spec.Name != "lru" || spec.Drishti {
			continue
		}
		if sr.outcomes[si][0].res != sr.evals[0].baseRes {
			t.Errorf("LRU cell result is not the deduplicated baseline lane")
		}
		if sr.normWS[si][0] != 1 {
			t.Errorf("LRU normalized WS = %v, want exactly 1 (same run as baseline)", sr.normWS[si][0])
		}
	}
}
