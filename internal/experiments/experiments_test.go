package experiments

import (
	"bytes"
	"strings"
	"testing"
)

// tinyParams keeps experiment smoke tests fast; the real scale lives in the
// benchmarks and cmd/drishti-bench.
func tinyParams() Params {
	return Params{Scale: 8, Instructions: 12_000, Warmup: 3_000, Mixes: 1, Seed: 1}
}

func TestRegistry(t *testing.T) {
	all := All()
	if len(all) != 28 {
		t.Fatalf("%d experiments registered, want 28 (tables+figures + Table 2 + 3 extensions)", len(all))
	}
	seen := map[string]bool{}
	for _, e := range all {
		if e.ID == "" || e.Title == "" || e.Run == nil {
			t.Fatalf("malformed experiment %+v", e)
		}
		if seen[e.ID] {
			t.Fatalf("duplicate id %s", e.ID)
		}
		seen[e.ID] = true
	}
	if _, ok := ByID("fig13"); !ok {
		t.Fatal("fig13 missing")
	}
	if _, ok := ByID("nope"); ok {
		t.Fatal("bogus id resolved")
	}
}

func TestDefaultParamsEnvOverride(t *testing.T) {
	t.Setenv("DRISHTI_SCALE", "4")
	t.Setenv("DRISHTI_MIXES", "2")
	p := DefaultParams()
	if p.Scale != 4 || p.Mixes != 2 {
		t.Fatalf("env overrides ignored: %+v", p)
	}
}

// TestCheapExperimentsRun smoke-runs the fast experiments end to end.
func TestCheapExperimentsRun(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment smoke tests are not -short")
	}
	ResetCache()
	for _, id := range []string{"fig05", "tab03", "tab07"} {
		e, ok := ByID(id)
		if !ok {
			t.Fatalf("%s missing", id)
		}
		var buf bytes.Buffer
		if err := e.Run(tinyParams(), &buf); err != nil {
			t.Fatalf("%s: %v", id, err)
		}
		if !strings.Contains(buf.String(), id) {
			t.Fatalf("%s output missing banner:\n%s", id, buf.String())
		}
	}
}

func TestFig02Runs(t *testing.T) {
	if testing.Short() {
		t.Skip()
	}
	ResetCache()
	var buf bytes.Buffer
	if err := Fig02PCScatter(tinyParams(), &buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "one-slice") {
		t.Fatalf("fig02 output:\n%s", buf.String())
	}
}

func TestTab01Runs(t *testing.T) {
	if testing.Short() {
		t.Skip()
	}
	ResetCache()
	var buf bytes.Buffer
	if err := Tab01SampledSetCases(tinyParams(), &buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"case I", "case II", "case III", "random baseline"} {
		if !strings.Contains(out, want) {
			t.Fatalf("tab01 missing %q:\n%s", want, out)
		}
	}
}

func TestSpread(t *testing.T) {
	xs := []int{0, 1, 2, 3, 4, 5, 6, 7, 8, 9}
	got := spread(xs, 3)
	if len(got) != 3 || got[0] != 0 {
		t.Fatalf("spread %v", got)
	}
	if got := spread(xs, 20); len(got) != 10 {
		t.Fatal("over-subsetting")
	}
	if got := spread(xs, 0); got != nil {
		t.Fatal("zero subset")
	}
}

func TestGeomean(t *testing.T) {
	if g := geomean([]float64{1, 4}); g < 1.99 || g > 2.01 {
		t.Fatalf("geomean %v", g)
	}
	if geomean(nil) != 0 {
		t.Fatal("empty geomean")
	}
}

func TestTab02Runs(t *testing.T) {
	if testing.Short() {
		t.Skip()
	}
	ResetCache()
	var buf bytes.Buffer
	if err := Tab02DesignSpace(tinyParams(), &buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"per-core global", "broadcasts", "hottest-bank"} {
		if !strings.Contains(out, want) {
			t.Fatalf("tab02 missing %q:\n%s", want, out)
		}
	}
}

func TestHarnessHelpers(t *testing.T) {
	max, avg := bankAPKI([]float64{1, 3, 2})
	if max != 3 || avg != 2 {
		t.Fatalf("bankAPKI max=%v avg=%v", max, avg)
	}
	if m, a := bankAPKI(nil); m != 0 || a != 0 {
		t.Fatal("empty bankAPKI")
	}
	if maxOf([]float64{1, 5, 2}) != 5 {
		t.Fatal("maxOf")
	}
	if pctOver(1.1) < 9.99 || pctOver(1.1) > 10.01 {
		t.Fatal("pctOver")
	}
	if min2(3, 5) != 3 || min2(5, 3) != 3 {
		t.Fatal("min2")
	}
}
