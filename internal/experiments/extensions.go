package experiments

import (
	"fmt"
	"io"

	"drishti/internal/policies"
)

// Scalability reproduces the paper's scalability paragraph (Section 5.3):
// D-Mockingjay vs Mockingjay on 64- and 128-core systems with
// proportionally larger sliced LLCs. The paper reports D-Mockingjay stays
// effective, gaining ≈1% over its 32-core advantage.
func Scalability(p Params, w io.Writer) error {
	header(w, "scal", "64/128-core scalability (Section 5.3 text)", p)
	specs := []policies.Spec{
		{Name: "mockingjay"},
		{Name: "mockingjay", Drishti: true},
	}
	for _, cores := range []int{32, 64, 128} {
		cfg := p.config(cores)
		// Larger machines at harness scale are expensive: trim the mix
		// count, keeping at least two of each category.
		mixes := p.paperMixes(cfg, cores)
		limit := min2(len(mixes), 4)
		mixes = mixes[:limit]
		sr, err := runSweepCached(cfg, mixes, specs, p)
		if err != nil {
			return err
		}
		m, dm := sr.geoNormWS(0), sr.geoNormWS(1)
		fmt.Fprintf(w, "%3d cores  mockingjay=%+.2f%%  d-mockingjay=%+.2f%%  (delta %+.2f pts)\n",
			cores, pctOver(m), pctOver(dm), (dm-m)*100)
	}
	fmt.Fprintln(w, "paper shape: the D-Mockingjay advantage persists (and grows ≈1%) at 64/128 cores")
	return nil
}

// ExtApplicability extends Table 8 beyond the paper: Drishti applied to the
// other prediction-based policies this repository implements (SDBP, Leeway,
// perceptron reuse prediction) plus the dynamic-sampled-cache-only variant
// of DIP from Table 7's memoryless row. This experiment is an extension —
// the paper reports these rows qualitatively (Table 7) but does not measure
// them.
func ExtApplicability(p Params, w io.Writer) error {
	header(w, "extA", "EXTENSION: Drishti across the remaining Table 7 policies (16 cores)", p)
	const cores = 16
	cfg := p.config(cores)
	mixes := p.paperMixes(cfg, cores)
	specs := []policies.Spec{
		{Name: "dip"},
		{Name: "dip", Drishti: true}, // DSC-selected dueling sets only
		{Name: "sdbp"},
		{Name: "sdbp", Drishti: true},
		{Name: "leeway"},
		{Name: "leeway", Drishti: true},
		{Name: "perceptron"},
		{Name: "perceptron", Drishti: true},
		{Name: "ipv"},
		{Name: "eva"},
	}
	sr, err := runSweepCached(cfg, mixes, specs, p)
	if err != nil {
		return err
	}
	for si, spec := range specs {
		fmt.Fprintf(w, "%-14s normWS=%.4f (%+.2f%%)\n",
			spec.DisplayName(), sr.geoNormWS(si), pctOver(sr.geoNormWS(si)))
	}
	fmt.Fprintln(w, "expected shape: each D- variant at or above its base; eva/ipv are no-enhancement baselines")
	return nil
}
