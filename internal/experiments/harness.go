package experiments

import (
	"context"
	"fmt"
	"io"
	"math"
	"strings"
	"sync"

	"drishti/internal/memo"
	"drishti/internal/metrics"
	"drishti/internal/obs"
	"drishti/internal/policies"
	"drishti/internal/sim"
	"drishti/internal/workload"
)

func pow(x, y float64) float64 { return math.Pow(x, y) }

// Cross-experiment memoization: several figures reuse the same runs
// (fig13/fig14/tab05 share sweeps; fig10's traffic runs repeat per mix).
// Keys are the explicit sim.Config / workload.Mix / policies.Spec key
// builders, so results are exact. The caches are singleflight: concurrent
// sweep workers asking for the same run block on one execution instead of
// duplicating it or serializing unrelated runs. Capacities bound resident
// results so `drishti-bench all` at large -mixes cannot grow without
// limit; LRU eviction keeps the runs the current experiment is reusing.
const (
	mixCacheCap   = 1024
	evalCacheCap  = 512
	sweepCacheCap = 64
)

var (
	mixCache   = memo.New[*sim.Result](mixCacheCap)
	evalCache  = memo.New[*mixEval](evalCacheCap)
	sweepCache = memo.New[*sweepResult](sweepCacheCap)
)

// ResetCache clears the cross-experiment memo (tests use it to isolate
// runs and bound memory; the cmd binary never needs to).
func ResetCache() {
	mixCache.Reset()
	evalCache.Reset()
	sweepCache.Reset()
}

// cfgKey identifies one (machine, mix) simulation.
func cfgKey(cfg sim.Config, mix workload.Mix) string {
	return cfg.Key() + "|" + mix.Key()
}

// runMixCached is sim.RunMix with cross-experiment memoization. ctx cancels
// the computation if this caller owns it; waiters sharing the singleflight
// see the owner's outcome (a cancellation error is never cached, so the
// next request retries).
func runMixCached(ctx context.Context, cfg sim.Config, mix workload.Mix) (*sim.Result, error) {
	return mixCache.Do(cfgKey(cfg, mix), func() (*sim.Result, error) {
		return sim.RunMixContext(ctx, cfg, mix)
	})
}

// evalMixCached is evalMix with memoization. alonePar bounds the
// fan-out of the per-core alone runs inside the eval.
func evalMixCached(ctx context.Context, cfg sim.Config, mix workload.Mix, alonePar int) (*mixEval, error) {
	base := cfg
	base.Policy = policies.Spec{Name: "lru"}
	return evalCache.Do(cfgKey(base, mix), func() (*mixEval, error) {
		return evalMix(ctx, cfg, mix, alonePar)
	})
}

func sweepKey(cfg sim.Config, mixes []workload.Mix, specs []policies.Spec) string {
	var b strings.Builder
	b.WriteString(cfg.Key())
	fmt.Fprintf(&b, "|mixes=%d", len(mixes))
	for _, m := range mixes {
		b.WriteByte('|')
		b.WriteString(m.Key())
	}
	for _, s := range specs {
		b.WriteByte('|')
		b.WriteString(s.Key())
	}
	return b.String()
}

// runSweepCached is runSweep with memoization keyed by config, mixes, and
// specs. Parallelism, logging, and progress are deliberately not part of
// the key: every parallelism produces bit-identical results (asserted by
// TestSweepParallelMatchesSerial), and observability never changes them.
func runSweepCached(cfg sim.Config, mixes []workload.Mix, specs []policies.Spec, p Params) (*sweepResult, error) {
	return sweepCache.Do(sweepKey(cfg, mixes, specs), func() (*sweepResult, error) {
		return runSweep(cfg, mixes, specs, p)
	})
}

// mixEval is the cached evaluation context for one mix: the LRU baseline run
// and the per-core alone IPCs (measured under LRU and shared across
// policies; see DESIGN.md §4).
type mixEval struct {
	mix     workload.Mix
	alone   []float64
	baseWS  float64
	baseRes *sim.Result
}

// evalMix measures the LRU baseline and alone IPCs for a mix, running up
// to alonePar of the per-core alone systems concurrently.
func evalMix(ctx context.Context, cfg sim.Config, mix workload.Mix, alonePar int) (*mixEval, error) {
	base := cfg
	base.Policy = policies.Spec{Name: "lru"}
	alone, err := sim.RunAloneNContext(ctx, base, mix, alonePar)
	if err != nil {
		return nil, fmt.Errorf("alone runs for %s: %w", mix.Name, err)
	}
	for i, a := range alone {
		if a <= 0 {
			return nil, fmt.Errorf("mix %s core %d: zero alone IPC", mix.Name, i)
		}
	}
	res, err := sim.RunMixContext(ctx, base, mix)
	if err != nil {
		return nil, fmt.Errorf("baseline run for %s: %w", mix.Name, err)
	}
	m, err := metrics.Compute(res.IPCs(), alone)
	if err != nil {
		return nil, err
	}
	return &mixEval{mix: mix, alone: alone, baseWS: m.WS, baseRes: res}, nil
}

// policyOutcome is one policy's result on one mix, normalized to LRU.
type policyOutcome struct {
	res    *sim.Result
	multi  metrics.Multi
	normWS float64 // WS(policy) / WS(lru) — the paper's headline metric
}

// runPolicy evaluates spec on the mix against the cached baseline.
func (e *mixEval) runPolicy(ctx context.Context, cfg sim.Config, spec policies.Spec) (*policyOutcome, error) {
	cfg.Policy = spec
	res, err := sim.RunMixContext(ctx, cfg, e.mix)
	if err != nil {
		return nil, fmt.Errorf("%s on %s: %w", spec.DisplayName(), e.mix.Name, err)
	}
	m, err := metrics.Compute(res.IPCs(), e.alone)
	if err != nil {
		return nil, err
	}
	return &policyOutcome{res: res, multi: m, normWS: m.WS / e.baseWS}, nil
}

// sweep runs a set of policy specs over a set of mixes, returning
// per-policy geomean normalized WS plus per-mix details, and optionally
// streaming progress to w.
type sweepResult struct {
	specs    []policies.Spec
	mixes    []workload.Mix
	evals    []*mixEval
	normWS   [][]float64 // [spec][mix]
	outcomes [][]*policyOutcome
}

// runSweep evaluates every (mix, policy) cell on a bounded worker pool of
// par goroutines; par <= 1 is the strictly serial path. Each cell is an
// independent deterministic simulation, so results are bit-identical for
// every parallelism. The per-mix LRU baseline a cell depends on is
// resolved through evalCache's singleflight: the first worker to reach a
// mix computes it, concurrent cells of the same mix block on that one
// execution, and cells of other mixes proceed.
//
// On failure the sweep stops dispatching new cells and returns the error
// of the cell with the lowest serial position — cells are dispatched in
// serial order, so every cell preceding the winner has already run, which
// makes the returned error exactly the serial path's.
func runSweep(cfg sim.Config, mixes []workload.Mix, specs []policies.Spec, p Params) (*sweepResult, error) {
	sr := &sweepResult{
		specs:    specs,
		mixes:    mixes,
		evals:    make([]*mixEval, len(mixes)),
		normWS:   make([][]float64, len(specs)),
		outcomes: make([][]*policyOutcome, len(specs)),
	}
	for i := range specs {
		sr.normWS[i] = make([]float64, len(mixes))
		sr.outcomes[i] = make([]*policyOutcome, len(mixes))
	}
	par := p.Parallel()
	log := p.logger()
	ctx := p.ctx()
	nCells := len(mixes) * len(specs)
	p.Progress.AddTotal(nCells)
	cellDone := func(mix workload.Mix, spec policies.Spec, out *policyOutcome) {
		p.Progress.Done(1)
		c := cfg
		c.Policy = spec
		log.Info("cell done",
			"run", obs.RunID(c.Key(), mix.Key()),
			"mix", mix.Name, "policy", spec.DisplayName(),
			"normWS", out.normWS, "mpki", out.res.MPKI)
	}
	if par > nCells {
		par = nCells
	}
	if par <= 1 {
		for mi, mix := range mixes {
			ev, err := evalMixCached(ctx, cfg, mix, 1)
			if err != nil {
				return nil, err
			}
			sr.evals[mi] = ev
			for si, spec := range specs {
				out, err := ev.runPolicy(ctx, cfg, spec)
				if err != nil {
					return nil, err
				}
				sr.normWS[si][mi] = out.normWS
				sr.outcomes[si][mi] = out
				cellDone(mix, spec, out)
			}
		}
		return sr, nil
	}

	var (
		mu       sync.Mutex
		firstErr error
		errSeq   = nCells
		wg       sync.WaitGroup
		sem      = make(chan struct{}, par)
	)
	record := func(seq int, err error) {
		mu.Lock()
		if seq < errSeq {
			errSeq, firstErr = seq, err
		}
		mu.Unlock()
	}
	for seq := 0; seq < nCells; seq++ {
		if err := ctx.Err(); err != nil {
			// Cancelled: stop dispatching. Workers already in flight
			// observe the same context and abort on their own.
			record(seq, err)
			break
		}
		mu.Lock()
		failed := firstErr != nil
		mu.Unlock()
		if failed {
			break
		}
		sem <- struct{}{}
		wg.Add(1)
		go func(seq int) {
			defer wg.Done()
			defer func() { <-sem }()
			mi, si := seq/len(specs), seq%len(specs)
			// alonePar=1: the cell pool already owns the parallelism
			// budget; nesting another fan-out would oversubscribe it.
			ev, err := evalMixCached(ctx, cfg, mixes[mi], 1)
			if err != nil {
				// Serially the eval runs before any of the mix's cells.
				record(mi*len(specs), err)
				return
			}
			mu.Lock()
			if sr.evals[mi] == nil {
				sr.evals[mi] = ev
			}
			mu.Unlock()
			out, err := ev.runPolicy(ctx, cfg, specs[si])
			if err != nil {
				record(seq, err)
				return
			}
			sr.normWS[si][mi] = out.normWS // cell-private slots: no lock
			sr.outcomes[si][mi] = out
			cellDone(mixes[mi], specs[si], out)
		}(seq)
	}
	wg.Wait()
	if firstErr != nil {
		return nil, firstErr
	}
	return sr, nil
}

// geoNormWS returns the geomean normalized WS for spec index si.
func (sr *sweepResult) geoNormWS(si int) float64 { return geomean(sr.normWS[si]) }

// avgMPKI returns the mean LLC demand MPKI for spec index si.
func (sr *sweepResult) avgMPKI(si int) float64 {
	var s float64
	for _, out := range sr.outcomes[si] {
		s += out.res.MPKI
	}
	return s / float64(len(sr.outcomes[si]))
}

// avgWPKI returns the mean LLC WPKI for spec index si.
func (sr *sweepResult) avgWPKI(si int) float64 {
	var s float64
	for _, out := range sr.outcomes[si] {
		s += out.res.WPKI
	}
	return s / float64(len(sr.outcomes[si]))
}

// avgBaseMPKI returns the mean LRU MPKI across the sweep's mixes.
func (sr *sweepResult) avgBaseMPKI() float64 {
	var s float64
	for _, ev := range sr.evals {
		s += ev.baseRes.MPKI
	}
	return s / float64(len(sr.evals))
}

// avgBaseWPKI returns the mean LRU WPKI across the sweep's mixes.
func (sr *sweepResult) avgBaseWPKI() float64 {
	var s float64
	for _, ev := range sr.evals {
		s += ev.baseRes.WPKI
	}
	return s / float64(len(sr.evals))
}

// avgEnergy returns the mean uncore energy for spec si normalized to LRU.
func (sr *sweepResult) avgEnergy(si int) float64 {
	var s float64
	n := 0
	for mi, out := range sr.outcomes[si] {
		base := sr.evals[mi].baseRes.Energy.Total
		if base > 0 {
			s += out.res.Energy.Total / base
			n++
		}
	}
	if n == 0 {
		return 0
	}
	return s / float64(n)
}

// header prints a standard experiment banner.
func header(w io.Writer, id, title string, p Params) {
	fmt.Fprintf(w, "== %s: %s\n", id, title)
	fmt.Fprintf(w, "   scale=1/%d instr=%d warmup=%d mixes=%d seed=%d\n",
		p.Scale, p.Instructions, p.Warmup, p.Mixes, p.Seed)
}

// mainSpecs is the Fig 13/14/Table 5/6 policy set.
func mainSpecs() []policies.Spec {
	return []policies.Spec{
		{Name: "hawkeye"},
		{Name: "hawkeye", Drishti: true},
		{Name: "mockingjay"},
		{Name: "mockingjay", Drishti: true},
	}
}
