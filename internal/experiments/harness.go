package experiments

import (
	"context"
	"fmt"
	"io"
	"math"
	"strings"
	"sync"

	"drishti/internal/memo"
	"drishti/internal/metrics"
	"drishti/internal/obs"
	"drishti/internal/policies"
	"drishti/internal/sim"
	"drishti/internal/workload"
)

func pow(x, y float64) float64 { return math.Pow(x, y) }

// Cross-experiment memoization: several figures reuse the same runs
// (fig13/fig14/tab05 share sweeps; fig10's traffic runs repeat per mix).
// Keys are the explicit sim.Config / workload.Mix / policies.Spec key
// builders, so results are exact. The caches are singleflight: concurrent
// sweep workers asking for the same run block on one execution instead of
// duplicating it or serializing unrelated runs. Capacities bound resident
// results so `drishti-bench all` at large -mixes cannot grow without
// limit; LRU eviction keeps the runs the current experiment is reusing.
const (
	mixCacheCap   = 1024
	evalCacheCap  = 512
	sweepCacheCap = 64
)

var (
	mixCache   = memo.New[*sim.Result](mixCacheCap)
	evalCache  = memo.New[*mixEval](evalCacheCap)
	sweepCache = memo.New[*sweepResult](sweepCacheCap)
)

// ResetCache clears the cross-experiment memo (tests use it to isolate
// runs and bound memory; the cmd binary never needs to).
func ResetCache() {
	mixCache.Reset()
	evalCache.Reset()
	sweepCache.Reset()
}

// cfgKey identifies one (machine, mix) simulation.
func cfgKey(cfg sim.Config, mix workload.Mix) string {
	return cfg.Key() + "|" + mix.Key()
}

// runMixCached is sim.RunMix with cross-experiment memoization. ctx cancels
// the computation if this caller owns it; waiters sharing the singleflight
// see the owner's outcome (a cancellation error is never cached, so the
// next request retries).
func runMixCached(ctx context.Context, cfg sim.Config, mix workload.Mix) (*sim.Result, error) {
	return mixCache.Do(cfgKey(cfg, mix), func() (*sim.Result, error) {
		return sim.RunMixContext(ctx, cfg, mix)
	})
}

// evalMixCached is evalMix with memoization. alonePar bounds the
// fan-out of the per-core alone runs inside the eval.
func evalMixCached(ctx context.Context, cfg sim.Config, mix workload.Mix, alonePar int) (*mixEval, error) {
	base := cfg
	base.Policy = policies.Spec{Name: "lru"}
	return evalCache.Do(cfgKey(base, mix), func() (*mixEval, error) {
		return evalMix(ctx, cfg, mix, alonePar)
	})
}

func sweepKey(cfg sim.Config, mixes []workload.Mix, specs []policies.Spec) string {
	var b strings.Builder
	b.WriteString(cfg.Key())
	fmt.Fprintf(&b, "|mixes=%d", len(mixes))
	for _, m := range mixes {
		b.WriteByte('|')
		b.WriteString(m.Key())
	}
	for _, s := range specs {
		b.WriteByte('|')
		b.WriteString(s.Key())
	}
	return b.String()
}

// runSweepCached is runSweep with memoization keyed by config, mixes, and
// specs. Parallelism, logging, and progress are deliberately not part of
// the key: every parallelism produces bit-identical results (asserted by
// TestSweepParallelMatchesSerial), and observability never changes them.
func runSweepCached(cfg sim.Config, mixes []workload.Mix, specs []policies.Spec, p Params) (*sweepResult, error) {
	return sweepCache.Do(sweepKey(cfg, mixes, specs), func() (*sweepResult, error) {
		return runSweep(cfg, mixes, specs, p)
	})
}

// mixEval is the cached evaluation context for one mix: the LRU baseline run
// and the per-core alone IPCs (measured under LRU and shared across
// policies; see DESIGN.md §4).
type mixEval struct {
	mix     workload.Mix
	alone   []float64
	baseWS  float64
	baseRes *sim.Result
}

// evalMix measures the LRU baseline and alone IPCs for a mix, running up
// to alonePar of the per-core alone systems concurrently.
func evalMix(ctx context.Context, cfg sim.Config, mix workload.Mix, alonePar int) (*mixEval, error) {
	base := cfg
	base.Policy = policies.Spec{Name: "lru"}
	if base.TelemetryEpoch > 0 && base.TelemetrySink != nil {
		base.TelemetrySink = obs.TagEpochs(base.TelemetrySink, 0, obs.RunID(base.Key(), mix.Key()))
	}
	alone, err := sim.RunAloneNContext(ctx, base, mix, alonePar)
	if err != nil {
		return nil, fmt.Errorf("alone runs for %s: %w", mix.Name, err)
	}
	for i, a := range alone {
		if a <= 0 {
			return nil, fmt.Errorf("mix %s core %d: zero alone IPC", mix.Name, i)
		}
	}
	res, err := sim.RunMixContext(ctx, base, mix)
	if err != nil {
		return nil, fmt.Errorf("baseline run for %s: %w", mix.Name, err)
	}
	m, err := metrics.Compute(res.IPCs(), alone)
	if err != nil {
		return nil, err
	}
	return &mixEval{mix: mix, alone: alone, baseWS: m.WS, baseRes: res}, nil
}

// policyOutcome is one policy's result on one mix, normalized to LRU.
type policyOutcome struct {
	res    *sim.Result
	multi  metrics.Multi
	normWS float64 // WS(policy) / WS(lru) — the paper's headline metric
}

// runPolicy evaluates spec on the mix against the cached baseline.
func (e *mixEval) runPolicy(ctx context.Context, cfg sim.Config, spec policies.Spec) (*policyOutcome, error) {
	cfg.Policy = spec
	if cfg.TelemetryEpoch > 0 && cfg.TelemetrySink != nil {
		// Stamp the cell's run ID onto its epochs (lane 0: not a batch
		// lane), so a shared sink attributes every stream to its cell.
		cfg.TelemetrySink = obs.TagEpochs(cfg.TelemetrySink, 0, obs.RunID(cfg.Key(), e.mix.Key()))
	}
	res, err := sim.RunMixContext(ctx, cfg, e.mix)
	if err != nil {
		return nil, fmt.Errorf("%s on %s: %w", spec.DisplayName(), e.mix.Name, err)
	}
	m, err := metrics.Compute(res.IPCs(), e.alone)
	if err != nil {
		return nil, err
	}
	return &policyOutcome{res: res, multi: m, normWS: m.WS / e.baseWS}, nil
}

// sweep runs a set of policy specs over a set of mixes, returning
// per-policy geomean normalized WS plus per-mix details, and optionally
// streaming progress to w.
type sweepResult struct {
	specs    []policies.Spec
	mixes    []workload.Mix
	evals    []*mixEval
	normWS   [][]float64 // [spec][mix]
	outcomes [][]*policyOutcome
}

// runSweep evaluates every (mix, policy) cell on a bounded worker pool of
// par goroutines; par <= 1 is the strictly serial path. Each cell is an
// independent deterministic simulation, so results are bit-identical for
// every parallelism. The per-mix LRU baseline a cell depends on is
// resolved through evalCache's singleflight: the first worker to reach a
// mix computes it, concurrent cells of the same mix block on that one
// execution, and cells of other mixes proceed.
//
// On failure the sweep stops dispatching new cells and returns the error
// of the cell with the lowest serial position — cells are dispatched in
// serial order, so every cell preceding the winner has already run, which
// makes the returned error exactly the serial path's.
func runSweep(cfg sim.Config, mixes []workload.Mix, specs []policies.Spec, p Params) (*sweepResult, error) {
	sr := &sweepResult{
		specs:    specs,
		mixes:    mixes,
		evals:    make([]*mixEval, len(mixes)),
		normWS:   make([][]float64, len(specs)),
		outcomes: make([][]*policyOutcome, len(specs)),
	}
	for i := range specs {
		sr.normWS[i] = make([]float64, len(mixes))
		sr.outcomes[i] = make([]*policyOutcome, len(mixes))
	}
	par := p.Parallel()
	log := p.logger()
	ctx := p.ctx()
	nCells := len(mixes) * len(specs)
	p.Progress.AddTotal(nCells)
	cellDone := func(mix workload.Mix, spec policies.Spec, out *policyOutcome) {
		p.Progress.Done(1)
		c := cfg
		c.Policy = spec
		log.Info("cell done",
			"run", obs.RunID(c.Key(), mix.Key()),
			"mix", mix.Name, "policy", spec.DisplayName(),
			"normWS", out.normWS, "mpki", out.res.MPKI)
	}
	if par > nCells {
		par = nCells
	}
	if p.Batch != BatchOff {
		return runSweepBatched(sr, cfg, mixes, specs, p, cellDone)
	}
	if par <= 1 {
		for mi, mix := range mixes {
			ev, err := evalMixCached(ctx, cfg, mix, 1)
			if err != nil {
				return nil, err
			}
			sr.evals[mi] = ev
			for si, spec := range specs {
				out, err := ev.runPolicy(ctx, cfg, spec)
				if err != nil {
					return nil, err
				}
				sr.normWS[si][mi] = out.normWS
				sr.outcomes[si][mi] = out
				cellDone(mix, spec, out)
			}
		}
		return sr, nil
	}

	var (
		mu       sync.Mutex
		firstErr error
		errSeq   = nCells
		wg       sync.WaitGroup
		sem      = make(chan struct{}, par)
	)
	record := func(seq int, err error) {
		mu.Lock()
		if seq < errSeq {
			errSeq, firstErr = seq, err
		}
		mu.Unlock()
	}
	for seq := 0; seq < nCells; seq++ {
		if err := ctx.Err(); err != nil {
			// Cancelled: stop dispatching. Workers already in flight
			// observe the same context and abort on their own.
			record(seq, err)
			break
		}
		mu.Lock()
		failed := firstErr != nil
		mu.Unlock()
		if failed {
			break
		}
		sem <- struct{}{}
		wg.Add(1)
		go func(seq int) {
			defer wg.Done()
			defer func() { <-sem }()
			mi, si := seq/len(specs), seq%len(specs)
			// alonePar=1: the cell pool already owns the parallelism
			// budget; nesting another fan-out would oversubscribe it.
			ev, err := evalMixCached(ctx, cfg, mixes[mi], 1)
			if err != nil {
				// Serially the eval runs before any of the mix's cells.
				record(mi*len(specs), err)
				return
			}
			mu.Lock()
			if sr.evals[mi] == nil {
				sr.evals[mi] = ev
			}
			mu.Unlock()
			out, err := ev.runPolicy(ctx, cfg, specs[si])
			if err != nil {
				record(seq, err)
				return
			}
			sr.normWS[si][mi] = out.normWS // cell-private slots: no lock
			sr.outcomes[si][mi] = out
			cellDone(mixes[mi], specs[si], out)
		}(seq)
	}
	wg.Wait()
	if firstErr != nil {
		return nil, firstErr
	}
	return sr, nil
}

// runSweepBatched executes the sweep mix by mix, folding each mix's cells
// into one lockstep batch (sim.RunBatchContext): the per-core alone
// calibration lanes and the LRU baseline lane (both skipped when the
// mix's eval is already cached) ride with the policy lanes over a single
// shared generation of the access streams, so workload generation is paid
// once per mix instead of once per run. Lane results are bit-identical to
// the per-cell path, so the sweepResult is too; only the work grouping
// changes. The worker pool dispatches whole mixes. On failure the
// lowest-mix error is returned — a batch fails as a unit, so the serial
// path's per-cell error attribution within a mix is not recoverable.
func runSweepBatched(sr *sweepResult, cfg sim.Config, mixes []workload.Mix, specs []policies.Spec, p Params, cellDone func(workload.Mix, policies.Spec, *policyOutcome)) (*sweepResult, error) {
	ctx := p.ctx()
	par := p.Parallel()
	if par > len(mixes) {
		par = len(mixes)
	}
	// Compose the two parallelism levels so concurrent mixes × lane
	// workers stays within the Parallel() budget: by default the surplus
	// budget left after the mix pool flows to each batch's lanes; an
	// explicit Params.LaneWorkers claims its share and the mix pool
	// shrinks instead. Purely a scheduling split — results are
	// bit-identical at every combination.
	lw := p.LaneWorkers
	if lw <= 0 {
		if lw = p.Parallel() / par; lw < 1 {
			lw = 1
		}
	} else if room := p.Parallel() / lw; par > room {
		if par = room; par < 1 {
			par = 1
		}
	}
	cfg.LaneWorkers = lw // excluded from Key(): no cache identity drift
	runOne := func(mi int) error {
		ev, outs, err := runBatchedMix(ctx, cfg, mixes[mi], specs)
		if err != nil {
			return err
		}
		sr.evals[mi] = ev
		for si, out := range outs {
			// Cell-private slots: no lock needed, as in the per-cell pool.
			sr.normWS[si][mi] = out.normWS
			sr.outcomes[si][mi] = out
			cellDone(mixes[mi], specs[si], out)
		}
		return nil
	}
	if par <= 1 {
		for mi := range mixes {
			if err := runOne(mi); err != nil {
				return nil, err
			}
		}
		return sr, nil
	}
	var (
		mu       sync.Mutex
		firstErr error
		errMix   = len(mixes)
		wg       sync.WaitGroup
		sem      = make(chan struct{}, par)
	)
	record := func(mi int, err error) {
		mu.Lock()
		if mi < errMix {
			errMix, firstErr = mi, err
		}
		mu.Unlock()
	}
	for mi := 0; mi < len(mixes); mi++ {
		if err := ctx.Err(); err != nil {
			record(mi, err)
			break
		}
		mu.Lock()
		failed := firstErr != nil
		mu.Unlock()
		if failed {
			break
		}
		sem <- struct{}{}
		wg.Add(1)
		go func(mi int) {
			defer wg.Done()
			defer func() { <-sem }()
			if err := runOne(mi); err != nil {
				record(mi, err)
			}
		}(mi)
	}
	wg.Wait()
	if firstErr != nil {
		return nil, firstErr
	}
	return sr, nil
}

// runBatchedMix runs one mix's lanes — per-core alone calibration and the
// LRU baseline when the eval is not already cached, plus one lane per
// policy spec — as a single lockstep batch, and assembles the same
// mixEval/policyOutcome values the per-cell path produces. When LRU is
// itself one of the swept specs its lane doubles as the baseline, so the
// baseline simulation the serial path repeats is deduplicated away.
func runBatchedMix(ctx context.Context, cfg sim.Config, mix workload.Mix, specs []policies.Spec) (*mixEval, []*policyOutcome, error) {
	lru := policies.Spec{Name: "lru"}
	base := cfg
	base.Policy = lru
	evKey := cfgKey(base, mix)
	ev, cached := evalCache.Get(evKey)

	var variants []sim.Variant
	aloneIdx := -1
	if !cached {
		aloneIdx = len(variants)
		for c := 0; c < cfg.Cores; c++ {
			variants = append(variants, sim.Variant{Policy: lru, Alone: true, AloneCore: c})
		}
	}
	baseIdx := -1
	specIdx := make([]int, len(specs))
	for si, spec := range specs {
		specIdx[si] = len(variants)
		variants = append(variants, sim.Variant{Policy: spec})
		if baseIdx < 0 && spec.Key() == lru.Key() {
			baseIdx = specIdx[si] // the LRU cell doubles as the baseline
		}
	}
	if !cached && baseIdx < 0 {
		baseIdx = len(variants)
		variants = append(variants, sim.Variant{Policy: lru})
	}

	if cfg.TelemetryEpoch > 0 && cfg.TelemetrySink != nil {
		// Per-lane attribution: each lane's epochs carry its 1-based lane
		// index and its cell's run ID, so a shared sink never collapses
		// the K lanes of one batch into a single indistinguishable stream.
		for i := range variants {
			c := cfg
			c.Policy = variants[i].Policy
			variants[i].TelemetrySink = obs.TagEpochs(cfg.TelemetrySink, i+1, obs.RunID(c.Key(), mix.Key()))
		}
	}
	results, err := sim.RunBatchContext(ctx, cfg, variants, mix)
	if err != nil {
		return nil, nil, fmt.Errorf("batched cells for %s: %w", mix.Name, err)
	}

	if !cached {
		alone := make([]float64, cfg.Cores)
		for c := 0; c < cfg.Cores; c++ {
			alone[c] = results[aloneIdx+c].PerCore[c].IPC
			if alone[c] <= 0 {
				return nil, nil, fmt.Errorf("mix %s core %d: zero alone IPC", mix.Name, c)
			}
		}
		baseRes := results[baseIdx]
		m, err := metrics.Compute(baseRes.IPCs(), alone)
		if err != nil {
			return nil, nil, err
		}
		fresh := &mixEval{mix: mix, alone: alone, baseWS: m.WS, baseRes: baseRes}
		// Publish through the cache's singleflight so concurrent unbatched
		// sweeps share one eval; whichever side wins the race, the values
		// are bit-identical.
		ev, err = evalCache.Do(evKey, func() (*mixEval, error) { return fresh, nil })
		if err != nil {
			return nil, nil, err
		}
	}

	outs := make([]*policyOutcome, len(specs))
	for si := range specs {
		res := results[specIdx[si]]
		m, err := metrics.Compute(res.IPCs(), ev.alone)
		if err != nil {
			return nil, nil, err
		}
		outs[si] = &policyOutcome{res: res, multi: m, normWS: m.WS / ev.baseWS}
	}
	return ev, outs, nil
}

// geoNormWS returns the geomean normalized WS for spec index si.
func (sr *sweepResult) geoNormWS(si int) float64 { return geomean(sr.normWS[si]) }

// avgMPKI returns the mean LLC demand MPKI for spec index si.
func (sr *sweepResult) avgMPKI(si int) float64 {
	var s float64
	for _, out := range sr.outcomes[si] {
		s += out.res.MPKI
	}
	return s / float64(len(sr.outcomes[si]))
}

// avgWPKI returns the mean LLC WPKI for spec index si.
func (sr *sweepResult) avgWPKI(si int) float64 {
	var s float64
	for _, out := range sr.outcomes[si] {
		s += out.res.WPKI
	}
	return s / float64(len(sr.outcomes[si]))
}

// avgBaseMPKI returns the mean LRU MPKI across the sweep's mixes.
func (sr *sweepResult) avgBaseMPKI() float64 {
	var s float64
	for _, ev := range sr.evals {
		s += ev.baseRes.MPKI
	}
	return s / float64(len(sr.evals))
}

// avgBaseWPKI returns the mean LRU WPKI across the sweep's mixes.
func (sr *sweepResult) avgBaseWPKI() float64 {
	var s float64
	for _, ev := range sr.evals {
		s += ev.baseRes.WPKI
	}
	return s / float64(len(sr.evals))
}

// avgEnergy returns the mean uncore energy for spec si normalized to LRU.
func (sr *sweepResult) avgEnergy(si int) float64 {
	var s float64
	n := 0
	for mi, out := range sr.outcomes[si] {
		base := sr.evals[mi].baseRes.Energy.Total
		if base > 0 {
			s += out.res.Energy.Total / base
			n++
		}
	}
	if n == 0 {
		return 0
	}
	return s / float64(n)
}

// header prints a standard experiment banner.
func header(w io.Writer, id, title string, p Params) {
	fmt.Fprintf(w, "== %s: %s\n", id, title)
	fmt.Fprintf(w, "   scale=1/%d instr=%d warmup=%d mixes=%d seed=%d\n",
		p.Scale, p.Instructions, p.Warmup, p.Mixes, p.Seed)
}

// mainSpecs is the Fig 13/14/Table 5/6 policy set.
func mainSpecs() []policies.Spec {
	return []policies.Spec{
		{Name: "hawkeye"},
		{Name: "hawkeye", Drishti: true},
		{Name: "mockingjay"},
		{Name: "mockingjay", Drishti: true},
	}
}
