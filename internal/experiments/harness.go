package experiments

import (
	"fmt"
	"io"
	"math"
	"sync"

	"drishti/internal/metrics"
	"drishti/internal/policies"
	"drishti/internal/sim"
	"drishti/internal/workload"
)

func pow(x, y float64) float64 { return math.Pow(x, y) }

// Cross-experiment memoization: several figures reuse the same runs
// (fig13/fig14/tab05 share sweeps; fig10's traffic runs repeat per mix).
// Keys include the full config and mix identity, so results are exact.
var (
	cacheMu    sync.Mutex
	mixCache   = map[string]*sim.Result{}
	sweepCache = map[string]*sweepResult{}
	evalCache  = map[string]*mixEval{}
)

// ResetCache clears the cross-experiment memo (tests use it to bound
// memory; the cmd binary never needs to).
func ResetCache() {
	cacheMu.Lock()
	defer cacheMu.Unlock()
	mixCache = map[string]*sim.Result{}
	sweepCache = map[string]*sweepResult{}
	evalCache = map[string]*mixEval{}
}

func cfgKey(cfg sim.Config, mix workload.Mix) string {
	return fmt.Sprintf("%+v|%s|%d", cfg, mix.Name, mix.Cores())
}

// runMixCached is sim.RunMix with cross-experiment memoization.
func runMixCached(cfg sim.Config, mix workload.Mix) (*sim.Result, error) {
	key := cfgKey(cfg, mix)
	cacheMu.Lock()
	if r, ok := mixCache[key]; ok {
		cacheMu.Unlock()
		return r, nil
	}
	cacheMu.Unlock()
	r, err := sim.RunMix(cfg, mix)
	if err != nil {
		return nil, err
	}
	cacheMu.Lock()
	mixCache[key] = r
	cacheMu.Unlock()
	return r, nil
}

// evalMixCached is evalMix with memoization.
func evalMixCached(cfg sim.Config, mix workload.Mix) (*mixEval, error) {
	base := cfg
	base.Policy = policies.Spec{Name: "lru"}
	key := cfgKey(base, mix)
	cacheMu.Lock()
	if e, ok := evalCache[key]; ok {
		cacheMu.Unlock()
		return e, nil
	}
	cacheMu.Unlock()
	e, err := evalMix(cfg, mix)
	if err != nil {
		return nil, err
	}
	cacheMu.Lock()
	evalCache[key] = e
	cacheMu.Unlock()
	return e, nil
}

// runSweepCached is runSweep with memoization keyed by config, mixes, and
// the display names + full spec values of the policies.
func runSweepCached(cfg sim.Config, mixes []workload.Mix, specs []policies.Spec) (*sweepResult, error) {
	key := fmt.Sprintf("%+v|%d", cfg, len(mixes))
	for _, m := range mixes {
		key += "|" + m.Name
	}
	for _, s := range specs {
		key += fmt.Sprintf("|%+v", s)
	}
	cacheMu.Lock()
	if sr, ok := sweepCache[key]; ok {
		cacheMu.Unlock()
		return sr, nil
	}
	cacheMu.Unlock()
	sr, err := runSweep(cfg, mixes, specs)
	if err != nil {
		return nil, err
	}
	cacheMu.Lock()
	sweepCache[key] = sr
	cacheMu.Unlock()
	return sr, nil
}

// mixEval is the cached evaluation context for one mix: the LRU baseline run
// and the per-core alone IPCs (measured under LRU and shared across
// policies; see DESIGN.md §4).
type mixEval struct {
	mix     workload.Mix
	alone   []float64
	baseWS  float64
	baseRes *sim.Result
}

// evalMix measures the LRU baseline and alone IPCs for a mix.
func evalMix(cfg sim.Config, mix workload.Mix) (*mixEval, error) {
	base := cfg
	base.Policy = policies.Spec{Name: "lru"}
	alone, err := sim.RunAlone(base, mix)
	if err != nil {
		return nil, fmt.Errorf("alone runs for %s: %w", mix.Name, err)
	}
	for i, a := range alone {
		if a <= 0 {
			return nil, fmt.Errorf("mix %s core %d: zero alone IPC", mix.Name, i)
		}
	}
	res, err := sim.RunMix(base, mix)
	if err != nil {
		return nil, fmt.Errorf("baseline run for %s: %w", mix.Name, err)
	}
	m, err := metrics.Compute(res.IPCs(), alone)
	if err != nil {
		return nil, err
	}
	return &mixEval{mix: mix, alone: alone, baseWS: m.WS, baseRes: res}, nil
}

// policyOutcome is one policy's result on one mix, normalized to LRU.
type policyOutcome struct {
	res    *sim.Result
	multi  metrics.Multi
	normWS float64 // WS(policy) / WS(lru) — the paper's headline metric
}

// runPolicy evaluates spec on the mix against the cached baseline.
func (e *mixEval) runPolicy(cfg sim.Config, spec policies.Spec) (*policyOutcome, error) {
	cfg.Policy = spec
	res, err := sim.RunMix(cfg, e.mix)
	if err != nil {
		return nil, fmt.Errorf("%s on %s: %w", spec.DisplayName(), e.mix.Name, err)
	}
	m, err := metrics.Compute(res.IPCs(), e.alone)
	if err != nil {
		return nil, err
	}
	return &policyOutcome{res: res, multi: m, normWS: m.WS / e.baseWS}, nil
}

// sweep runs a set of policy specs over a set of mixes, returning
// per-policy geomean normalized WS plus per-mix details, and optionally
// streaming progress to w.
type sweepResult struct {
	specs    []policies.Spec
	mixes    []workload.Mix
	evals    []*mixEval
	normWS   [][]float64 // [spec][mix]
	outcomes [][]*policyOutcome
}

func runSweep(cfg sim.Config, mixes []workload.Mix, specs []policies.Spec) (*sweepResult, error) {
	sr := &sweepResult{
		specs:    specs,
		mixes:    mixes,
		normWS:   make([][]float64, len(specs)),
		outcomes: make([][]*policyOutcome, len(specs)),
	}
	for i := range specs {
		sr.normWS[i] = make([]float64, len(mixes))
		sr.outcomes[i] = make([]*policyOutcome, len(mixes))
	}
	for mi, mix := range mixes {
		ev, err := evalMixCached(cfg, mix)
		if err != nil {
			return nil, err
		}
		sr.evals = append(sr.evals, ev)
		for si, spec := range specs {
			out, err := ev.runPolicy(cfg, spec)
			if err != nil {
				return nil, err
			}
			sr.normWS[si][mi] = out.normWS
			sr.outcomes[si][mi] = out
		}
	}
	return sr, nil
}

// geoNormWS returns the geomean normalized WS for spec index si.
func (sr *sweepResult) geoNormWS(si int) float64 { return geomean(sr.normWS[si]) }

// avgMPKI returns the mean LLC demand MPKI for spec index si.
func (sr *sweepResult) avgMPKI(si int) float64 {
	var s float64
	for _, out := range sr.outcomes[si] {
		s += out.res.MPKI
	}
	return s / float64(len(sr.outcomes[si]))
}

// avgWPKI returns the mean LLC WPKI for spec index si.
func (sr *sweepResult) avgWPKI(si int) float64 {
	var s float64
	for _, out := range sr.outcomes[si] {
		s += out.res.WPKI
	}
	return s / float64(len(sr.outcomes[si]))
}

// avgBaseMPKI returns the mean LRU MPKI across the sweep's mixes.
func (sr *sweepResult) avgBaseMPKI() float64 {
	var s float64
	for _, ev := range sr.evals {
		s += ev.baseRes.MPKI
	}
	return s / float64(len(sr.evals))
}

// avgBaseWPKI returns the mean LRU WPKI across the sweep's mixes.
func (sr *sweepResult) avgBaseWPKI() float64 {
	var s float64
	for _, ev := range sr.evals {
		s += ev.baseRes.WPKI
	}
	return s / float64(len(sr.evals))
}

// avgEnergy returns the mean uncore energy for spec si normalized to LRU.
func (sr *sweepResult) avgEnergy(si int) float64 {
	var s float64
	n := 0
	for mi, out := range sr.outcomes[si] {
		base := sr.evals[mi].baseRes.Energy.Total
		if base > 0 {
			s += out.res.Energy.Total / base
			n++
		}
	}
	if n == 0 {
		return 0
	}
	return s / float64(n)
}

// header prints a standard experiment banner.
func header(w io.Writer, id, title string, p Params) {
	fmt.Fprintf(w, "== %s: %s\n", id, title)
	fmt.Fprintf(w, "   scale=1/%d instr=%d warmup=%d mixes=%d seed=%d\n",
		p.Scale, p.Instructions, p.Warmup, p.Mixes, p.Seed)
}

// mainSpecs is the Fig 13/14/Table 5/6 policy set.
func mainSpecs() []policies.Spec {
	return []policies.Spec{
		{Name: "hawkeye"},
		{Name: "hawkeye", Drishti: true},
		{Name: "mockingjay"},
		{Name: "mockingjay", Drishti: true},
	}
}
