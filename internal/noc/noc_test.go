package noc

import (
	"testing"
	"testing/quick"
)

func TestMeshHops(t *testing.T) {
	m := NewMesh(16, 4, 2) // 4×4
	if h := m.Hops(0, 0); h != 0 {
		t.Fatalf("self hops %d", h)
	}
	if h := m.Hops(0, 3); h != 3 {
		t.Fatalf("row hops %d", h)
	}
	if h := m.Hops(0, 15); h != 6 { // (3,3) from (0,0)
		t.Fatalf("corner hops %d", h)
	}
	if m.Hops(3, 0) != m.Hops(0, 3) {
		t.Fatal("hops not symmetric")
	}
}

func TestMeshLatencyAndTraffic(t *testing.T) {
	m := NewMesh(16, 4, 2)
	if lat := m.Latency(0, 0); lat != 2 {
		t.Fatalf("self latency %d", lat)
	}
	if lat := m.Latency(0, 15); lat != 2+6*4 {
		t.Fatalf("corner latency %d", lat)
	}
	if m.Messages != 2 || m.HopSum != 6 {
		t.Fatalf("traffic %d msgs %d hops", m.Messages, m.HopSum)
	}
	if m.PeekLatency(0, 15) != 26 {
		t.Fatal("peek mismatch")
	}
	if m.Messages != 2 {
		t.Fatal("peek must not record traffic")
	}
	m.Reset()
	if m.Messages != 0 || m.HopSum != 0 {
		t.Fatal("reset failed")
	}
}

func TestMesh32AvgLatencyNearPaper(t *testing.T) {
	// Section 4.1.3: the 32-core mesh averages ≈20 cycles.
	m := NewMesh(32, 4, 2)
	var sum float64
	n := 0
	for a := 0; a < 32; a++ {
		for b := 0; b < 32; b++ {
			if a == b {
				continue
			}
			sum += float64(m.PeekLatency(a, b))
			n++
		}
	}
	avg := sum / float64(n)
	if avg < 14 || avg > 26 {
		t.Fatalf("32-node mesh average latency %.1f, want ≈20", avg)
	}
}

func TestMeshHopsProperty(t *testing.T) {
	m := NewMesh(64, 1, 0)
	check := func(a8, b8, c8 uint8) bool {
		a, b, c := int(a8)%64, int(b8)%64, int(c8)%64
		// Symmetry and triangle inequality (Manhattan metric).
		if m.Hops(a, b) != m.Hops(b, a) {
			return false
		}
		return m.Hops(a, c) <= m.Hops(a, b)+m.Hops(b, c)
	}
	if err := quick.Check(check, nil); err != nil {
		t.Fatal(err)
	}
}

func TestStarFixedLatency(t *testing.T) {
	s := NewStar(16, DefaultStarLatency)
	if lat := s.Latency(0, 5, 100); lat != 3 {
		t.Fatalf("uncontended latency %d", lat)
	}
	if s.Messages != 1 {
		t.Fatal("message not counted")
	}
}

func TestStarContention(t *testing.T) {
	s := NewStar(4, 3)
	// Three transfers to the same bank at the same cycle: the first two
	// take the endpoint's dedicated link pair; the third waits.
	if lat := s.Latency(0, 1, 100); lat != 3 {
		t.Fatalf("first transfer %d", lat)
	}
	if lat := s.Latency(2, 1, 100); lat != 3 {
		t.Fatalf("second transfer (paired link) %d", lat)
	}
	if lat := s.Latency(3, 1, 100); lat != 4 {
		t.Fatalf("contended transfer %d, want 4", lat)
	}
	if s.Stalls != 1 {
		t.Fatalf("stalls %d", s.Stalls)
	}
	// Different bank: no contention.
	if lat := s.Latency(0, 2, 100); lat != 3 {
		t.Fatalf("other link %d", lat)
	}
}

func TestStarReset(t *testing.T) {
	s := NewStar(2, 3)
	s.Latency(0, 0, 10)
	s.Reset()
	if s.Messages != 0 || s.Stalls != 0 {
		t.Fatal("reset failed")
	}
	if lat := s.Latency(0, 0, 0); lat != 3 {
		t.Fatalf("link reservation survived reset: %d", lat)
	}
}

func TestStarMonotoneNoStarvation(t *testing.T) {
	s := NewStar(1, 3)
	// A burst of messages at the same cycle queues linearly across the
	// two links, not worse.
	for i := 0; i < 10; i++ {
		lat := s.Latency(0, 0, 1000)
		want := uint32(3 + i/2)
		if lat != want {
			t.Fatalf("message %d latency %d, want %d", i, lat, want)
		}
	}
}

func TestMeshAvgLatency(t *testing.T) {
	m := NewMesh(4, 4, 2)
	if m.AvgLatency() != 0 {
		t.Fatal("avg latency before traffic")
	}
	m.Latency(0, 3) // 3 hops on a 2×2? (0,0)→(1,1): 2 hops
	if m.AvgLatency() <= 0 {
		t.Fatal("avg latency after traffic")
	}
	if m.String() == "" {
		t.Fatal("empty String()")
	}
}

func TestStarFixedLatencyAccessor(t *testing.T) {
	s := NewStar(4, 7)
	if s.FixedLatency() != 7 {
		t.Fatal("FixedLatency accessor")
	}
}

func TestNewStarClampsLinks(t *testing.T) {
	s := NewStar(0, 3)
	if lat := s.Latency(0, 5, 0); lat != 3 {
		t.Fatalf("clamped star latency %d", lat)
	}
}
