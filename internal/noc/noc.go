// Package noc models the on-chip interconnects: the general-purpose mesh
// that carries core↔LLC-slice traffic, and NOCSTAR — the dedicated,
// latchless, circuit-switched side-band network Drishti uses for
// slice↔predictor communication (Section 4.1.4).
package noc

import "fmt"

// Mesh is an analytical 2D mesh: XY-routed hop counts with a fixed per-hop
// latency (router + link), matching the paper's 2-stage wormhole router.
type Mesh struct {
	nodes    int
	cols     int
	rows     int
	perHop   uint32   // cycles per hop (router traversal + link)
	router   uint32   // fixed injection/ejection overhead
	hops     []uint32 // precomputed XY hop counts, indexed a*nodes+b
	Messages uint64   // messages routed (for energy/traffic accounting)
	HopSum   uint64   // total hops, for average-latency reporting
}

// NewMesh builds a mesh of n nodes in a near-square grid. perHop is the
// per-hop cycle cost and router the fixed end overhead. With perHop=4 and
// router=2 a 32-node (8×4) mesh averages ≈20 cycles, matching Section 4.1.3.
func NewMesh(n int, perHop, router uint32) *Mesh {
	if n <= 0 {
		panic("noc: mesh with no nodes")
	}
	cols := 1
	for cols*cols < n {
		cols++
	}
	rows := (n + cols - 1) / cols
	m := &Mesh{nodes: n, cols: cols, rows: rows, perHop: perHop, router: router}
	// Hop counts sit on the LLC access path (every slice access routes
	// core→slice); an n×n table trades a few KB for dropping the per-access
	// div/mod coordinate math.
	m.hops = make([]uint32, n*n)
	for a := 0; a < n; a++ {
		for b := 0; b < n; b++ {
			m.hops[a*n+b] = m.hopsXY(a, b)
		}
	}
	return m
}

// Nodes returns the node count.
func (m *Mesh) Nodes() int { return m.nodes }

// Hops returns the XY-routing hop count between nodes a and b.
func (m *Mesh) Hops(a, b int) uint32 { return m.hops[a*m.nodes+b] }

// hopsXY computes the XY-routing hop count from grid coordinates (table
// construction only; lookups go through Hops).
func (m *Mesh) hopsXY(a, b int) uint32 {
	ax, ay := a%m.cols, a/m.cols
	bx, by := b%m.cols, b/m.cols
	dx := ax - bx
	if dx < 0 {
		dx = -dx
	}
	dy := ay - by
	if dy < 0 {
		dy = -dy
	}
	return uint32(dx + dy)
}

// Latency returns the one-way latency between nodes a and b and records the
// message for traffic accounting.
func (m *Mesh) Latency(a, b int) uint32 {
	h := m.Hops(a, b)
	m.Messages++
	m.HopSum += uint64(h)
	return m.router + h*m.perHop
}

// PeekLatency returns the latency without recording traffic.
func (m *Mesh) PeekLatency(a, b int) uint32 {
	return m.router + m.Hops(a, b)*m.perHop
}

// AvgLatency returns the observed mean message latency.
func (m *Mesh) AvgLatency() float64 {
	if m.Messages == 0 {
		return 0
	}
	return float64(m.router) + float64(m.HopSum)/float64(m.Messages)*float64(m.perHop)
}

// Reset clears traffic counters.
func (m *Mesh) Reset() { m.Messages, m.HopSum = 0, 0 }

// String implements fmt.Stringer.
func (m *Mesh) String() string {
	return fmt.Sprintf("mesh %dx%d perHop=%d router=%d", m.cols, m.rows, m.perHop, m.router)
}

// Star models NOCSTAR: a side-band, latchless, circuit-switched interconnect
// connecting every LLC slice to every per-core predictor bank with a fixed
// three-cycle latency (one hop when uncontended; the paper measures three
// cycles end to end). Bandwidth is low but predictor traffic is sparse
// (≈2.5 accesses per kilo-instruction per core, Fig 10), so a simple
// busy-until occupancy model captures contention.
type Star struct {
	latency  uint32
	occupy   uint32      // cycles a transfer holds its link
	links    [][2]uint64 // two dedicated links per endpoint (request/fill)
	Messages uint64
	Stalls   uint64 // cycles lost to link contention
}

// DefaultStarLatency is NOCSTAR's end-to-end latency in cycles.
const DefaultStarLatency = 3

// NewStar builds a NOCSTAR with one request/response link pair per endpoint
// pairing class; links is typically the slice count.
func NewStar(links int, latency uint32) *Star {
	if links <= 0 {
		links = 1
	}
	return &Star{latency: latency, occupy: 1, links: make([][2]uint64, links)}
}

// Latency returns the transfer latency from slice to the given predictor
// bank at time now, including any wait for the link arbiter.
func (s *Star) Latency(slice, bank int, now uint64) uint32 {
	pair := &s.links[bank%len(s.links)]
	// Pick the earlier-available of the endpoint's two links (the paper
	// dedicates separate request and fill links).
	l := &pair[0]
	if pair[1] < pair[0] {
		l = &pair[1]
	}
	wait := uint32(0)
	if *l > now {
		wait = uint32(*l - now)
	}
	*l = max(*l, now) + uint64(s.occupy)
	s.Messages++
	s.Stalls += uint64(wait)
	return s.latency + wait
}

// FixedLatency returns the uncontended latency (used for energy-only paths).
func (s *Star) FixedLatency() uint32 { return s.latency }

// Reset clears traffic counters and link reservations.
func (s *Star) Reset() {
	s.Messages, s.Stalls = 0, 0
	for i := range s.links {
		s.links[i] = [2]uint64{}
	}
}
