package analysis

import (
	"testing"
	"testing/quick"

	"drishti/internal/trace"
	"drishti/internal/workload"
)

func recsFromBlocks(blocks []uint64) []trace.Rec {
	out := make([]trace.Rec, len(blocks))
	for i, b := range blocks {
		out[i] = trace.Rec{PC: 0x400, Addr: b * 64}
	}
	return out
}

func TestProfileSimpleLoop(t *testing.T) {
	// A loop over 4 blocks repeated: after the cold pass, every access has
	// stack distance 3.
	var blocks []uint64
	for round := 0; round < 10; round++ {
		for b := uint64(0); b < 4; b++ {
			blocks = append(blocks, b)
		}
	}
	p := Profile(recsFromBlocks(blocks), 64)
	if p.Blocks != 4 || p.Cold != 4 {
		t.Fatalf("blocks=%d cold=%d", p.Blocks, p.Cold)
	}
	if p.Hist[3] != 36 {
		t.Fatalf("distance-3 count %d, want 36", p.Hist[3])
	}
	// A 4-block cache catches everything after the cold pass...
	if hr := p.HitRate(4); hr < 0.89 || hr > 0.91 {
		t.Fatalf("hit rate at capacity 4: %v", hr)
	}
	// ...a 3-block cache catches nothing (classic LRU loop pathology).
	if hr := p.HitRate(3); hr != 0 {
		t.Fatalf("hit rate at capacity 3: %v, want 0", hr)
	}
}

func TestProfileImmediateReuse(t *testing.T) {
	p := Profile(recsFromBlocks([]uint64{7, 7, 7, 7}), 16)
	if p.Hist[0] != 3 || p.Cold != 1 {
		t.Fatalf("hist0=%d cold=%d", p.Hist[0], p.Cold)
	}
	if p.MedianReuseDistance() != 0 {
		t.Fatalf("median %d", p.MedianReuseDistance())
	}
}

func TestProfileStreamingAllCold(t *testing.T) {
	var blocks []uint64
	for b := uint64(0); b < 1000; b++ {
		blocks = append(blocks, b)
	}
	p := Profile(recsFromBlocks(blocks), 64)
	if p.Cold != 1000 {
		t.Fatalf("cold=%d, want all", p.Cold)
	}
	if p.MedianReuseDistance() != -1 {
		t.Fatal("streaming has no reuse")
	}
}

func TestMissRateCurveMonotone(t *testing.T) {
	check := func(seed uint64) bool {
		g, err := workload.NewGenerator(workload.GAPModels()[int(seed%12)].Scale(8, 8), seed)
		if err != nil {
			return false
		}
		recs := trace.Collect(g, 3000)
		p := Profile(recs, 4096)
		caps := []int{1, 16, 64, 256, 1024, 4096}
		mrc := p.MissRateCurve(caps)
		for i := 1; i < len(mrc); i++ {
			if mrc[i] > mrc[i-1]+1e-12 {
				return false // more capacity can never miss more under LRU
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 10}); err != nil {
		t.Fatal(err)
	}
}

func TestTreeMatchesNaive(t *testing.T) {
	// The treap-based distances must equal a brute-force LRU stack.
	check := func(raw []uint8) bool {
		blocks := make([]uint64, len(raw))
		for i, r := range raw {
			blocks[i] = uint64(r % 24)
		}
		p := Profile(recsFromBlocks(blocks), 64)

		// Naive reference.
		var stack []uint64
		hist := make([]uint64, 64)
		var cold uint64
		for _, b := range blocks {
			found := -1
			for i := len(stack) - 1; i >= 0; i-- {
				if stack[i] == b {
					found = len(stack) - 1 - i
					break
				}
			}
			if found < 0 {
				cold++
			} else {
				hist[found]++
				idx := len(stack) - 1 - found
				stack = append(stack[:idx], stack[idx+1:]...)
			}
			stack = append(stack, b)
		}
		if cold != p.Cold {
			return false
		}
		for d := range hist {
			if hist[d] != p.Hist[d] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestTopBlockShare(t *testing.T) {
	blocks := []uint64{1, 1, 1, 1, 2, 3, 4, 5}
	if s := TopBlockShare(recsFromBlocks(blocks), 1); s != 0.5 {
		t.Fatalf("top-1 share %v", s)
	}
	if s := TopBlockShare(nil, 3); s != 0 {
		t.Fatal("empty trace share")
	}
}

// TestWorkloadArchetypesHavePromisedReuse validates the workload registry
// against its own documentation using the analyzer: streaming models have
// (almost) no reuse at LLC-relevant distances, loop models have strong
// mid-distance reuse, and skewed gathers concentrate accesses on few
// blocks.
func TestWorkloadArchetypesHavePromisedReuse(t *testing.T) {
	collect := func(name string) []trace.Rec {
		m, ok := workload.ByName(name)
		if !ok {
			t.Fatalf("model %s missing", name)
		}
		g, err := workload.NewGenerator(m.Scale(8, 8), 7)
		if err != nil {
			t.Fatal(err)
		}
		return trace.Collect(g, 40_000)
	}

	stream := Profile(collect("619.lbm_s-2676B"), 1<<15)
	loop := Profile(collect("623.xalancbmk_s-202B"), 1<<15)
	// Both models carry an L1-resident stack stream (short-distance
	// reuse), so the contrast is in the remaining traffic.
	if coldFrac(stream) < 1.3*coldFrac(loop) {
		t.Fatalf("streaming cold fraction %.2f should clearly exceed loop-mix %.2f",
			coldFrac(stream), coldFrac(loop))
	}

	skew := TopBlockShare(collect("pr-kron"), 64)
	flat := TopBlockShare(collect("tc-urand"), 64)
	if skew < flat {
		t.Fatalf("pr-kron top-64 share %.3f should exceed tc-urand %.3f", skew, flat)
	}
}

func coldFrac(p *StackProfile) float64 {
	return float64(p.Cold) / float64(p.Accesses)
}
