package analysis

import (
	"testing"
	"testing/quick"

	"drishti/internal/mem"
	"drishti/internal/trace"
)

func TestOPTLoopKeepsPartialWorkingSet(t *testing.T) {
	// Loop of 4 blocks through a 1-set, 3-way cache: LRU gets 0 hits; the
	// classic OPT result for a cyclic scan is a hit rate of
	// (capacity−1)/(N−1) = 2/3 at steady state.
	var blocks []uint64
	for round := 0; round < 100; round++ {
		for b := uint64(0); b < 4; b++ {
			blocks = append(blocks, b*8) // same set (sets=8 → low bits 0)
		}
	}
	res := SimulateOPT(recsFromBlocks(blocks), 8, 3)
	if res.Accesses != 400 {
		t.Fatalf("accesses %d", res.Accesses)
	}
	hr := res.HitRate()
	if hr < 0.62 || hr > 0.70 {
		t.Fatalf("OPT hit rate %v, want ≈2/3", hr)
	}
}

func TestOPTFullFit(t *testing.T) {
	// Working set fits: everything after the cold pass hits.
	var blocks []uint64
	for round := 0; round < 10; round++ {
		for b := uint64(0); b < 4; b++ {
			blocks = append(blocks, b)
		}
	}
	res := SimulateOPT(recsFromBlocks(blocks), 4, 4)
	if res.Misses != 4 {
		t.Fatalf("misses %d, want cold only", res.Misses)
	}
}

func TestOPTStreamingNoHits(t *testing.T) {
	var blocks []uint64
	for b := uint64(0); b < 500; b++ {
		blocks = append(blocks, b)
	}
	res := SimulateOPT(recsFromBlocks(blocks), 16, 4)
	if res.Hits != 0 {
		t.Fatalf("streaming got %d OPT hits", res.Hits)
	}
}

// TestOPTDominatesLRU is the defining property: OPT's hit rate is an upper
// bound on LRU's at equal geometry. We check against the stack-distance
// profiler's fully-associative LRU rate using a fully-associative OPT
// (sets=1).
func TestOPTDominatesLRU(t *testing.T) {
	check := func(raw []uint8) bool {
		if len(raw) == 0 {
			return true
		}
		blocks := make([]uint64, len(raw))
		for i, r := range raw {
			blocks[i] = uint64(r % 32)
		}
		recs := recsFromBlocks(blocks)
		const ways = 4
		opt := SimulateOPT(recs, 1, ways)
		lru := Profile(recs, 64).HitRate(ways)
		return opt.HitRate() >= lru-1e-9
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestOPTSetMapping(t *testing.T) {
	// Blocks in different sets must not evict each other.
	blocks := []uint64{0, 1, 0, 1, 0, 1}
	res := SimulateOPT(recsFromBlocks(blocks), 2, 1)
	if res.Misses != 2 {
		t.Fatalf("misses %d, want 2 cold", res.Misses)
	}
	_ = mem.BlockSize
}

func TestOPTEmpty(t *testing.T) {
	if r := SimulateOPT(nil, 4, 4); r.Accesses != 0 {
		t.Fatal("empty trace")
	}
	if r := SimulateOPT([]trace.Rec{{Addr: 64}}, 0, 0); r.Accesses != 0 {
		t.Fatal("bad geometry must be a no-op")
	}
}
