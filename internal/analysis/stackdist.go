// Package analysis provides offline trace analysis: Mattson stack-distance
// (reuse-distance) profiling and the fully-associative LRU hit rates it
// implies for any cache size in one pass. The workload-model tests use it
// to verify that each synthetic benchmark has the reuse structure its
// archetype promises, and cmd/drishti-trace exposes it for inspection.
package analysis

import (
	"fmt"
	"sort"

	"drishti/internal/mem"
	"drishti/internal/trace"
)

// StackProfile is the result of a stack-distance pass.
type StackProfile struct {
	// Hist[d] counts accesses with stack distance exactly d, for d <
	// len(Hist); deeper reuses and cold misses land in Cold.
	Hist []uint64
	// Cold counts first-touch accesses plus reuses beyond the histogram.
	Cold uint64
	// Accesses is the total number of block accesses profiled.
	Accesses uint64
	// Blocks is the number of distinct blocks touched.
	Blocks uint64
}

// distTree is an order-statistics treap over the LRU stack: each node is a
// resident block keyed by its last-access time; the stack distance of a
// reuse is the number of blocks accessed more recently, i.e. the rank of
// the block's old timestamp from the top.
type distTree struct {
	nodes []treapNode
	root  int32
	free  []int32
}

type treapNode struct {
	key         uint64 // last-access time
	prio        uint64
	left, right int32
	size        int32
}

const nilNode = int32(-1)

func newDistTree(capHint int) *distTree {
	t := &distTree{root: nilNode}
	t.nodes = make([]treapNode, 0, capHint)
	return t
}

func (t *distTree) size(n int32) int32 {
	if n == nilNode {
		return 0
	}
	return t.nodes[n].size
}

func (t *distTree) update(n int32) {
	t.nodes[n].size = 1 + t.size(t.nodes[n].left) + t.size(t.nodes[n].right)
}

func (t *distTree) alloc(key uint64) int32 {
	var id int32
	if len(t.free) > 0 {
		id = t.free[len(t.free)-1]
		t.free = t.free[:len(t.free)-1]
		t.nodes[id] = treapNode{key: key, prio: splitmix(key), left: nilNode, right: nilNode, size: 1}
	} else {
		t.nodes = append(t.nodes, treapNode{key: key, prio: splitmix(key), left: nilNode, right: nilNode, size: 1})
		id = int32(len(t.nodes) - 1)
	}
	return id
}

func splitmix(z uint64) uint64 {
	z += 0x9e3779b97f4a7c15
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// split partitions by key: left < key ≤ right.
func (t *distTree) split(n int32, key uint64) (int32, int32) {
	if n == nilNode {
		return nilNode, nilNode
	}
	if t.nodes[n].key < key {
		l, r := t.split(t.nodes[n].right, key)
		t.nodes[n].right = l
		t.update(n)
		return n, r
	}
	l, r := t.split(t.nodes[n].left, key)
	t.nodes[n].left = r
	t.update(n)
	return l, n
}

func (t *distTree) merge(a, b int32) int32 {
	if a == nilNode {
		return b
	}
	if b == nilNode {
		return a
	}
	if t.nodes[a].prio > t.nodes[b].prio {
		t.nodes[a].right = t.merge(t.nodes[a].right, b)
		t.update(a)
		return a
	}
	t.nodes[b].left = t.merge(a, t.nodes[b].left)
	t.update(b)
	return b
}

// insert adds a block with last-access time key.
func (t *distTree) insert(key uint64) {
	n := t.alloc(key)
	l, r := t.split(t.root, key)
	t.root = t.merge(t.merge(l, n), r)
}

// removeRank removes the node with time key and returns how many resident
// blocks have a larger (more recent) time — the stack distance.
func (t *distTree) removeRank(key uint64) int {
	l, rest := t.split(t.root, key)
	mid, r := t.split(rest, key+1)
	if mid == nilNode {
		// Caller guarantees presence; treat as cold defensively.
		t.root = t.merge(l, r)
		return -1
	}
	rank := int(t.size(r))
	t.free = append(t.free, mid)
	t.root = t.merge(l, r)
	return rank
}

// Profile computes the stack-distance histogram of the block-address stream
// in recs, with distances capped at maxDist (larger reuses count as Cold).
func Profile(recs []trace.Rec, maxDist int) *StackProfile {
	if maxDist <= 0 {
		maxDist = 1 << 16
	}
	p := &StackProfile{Hist: make([]uint64, maxDist)}
	last := make(map[uint64]uint64, 1<<12)
	tree := newDistTree(1 << 12)
	for i, r := range recs {
		now := uint64(i) + 1
		blk := mem.Block(r.Addr)
		p.Accesses++
		if prev, ok := last[blk]; ok {
			d := tree.removeRank(prev)
			if d >= 0 && d < maxDist {
				p.Hist[d]++
			} else {
				p.Cold++
			}
		} else {
			p.Blocks++
			p.Cold++
		}
		last[blk] = now
		tree.insert(now)
	}
	return p
}

// HitRate returns the fully-associative LRU hit rate for a cache of the
// given capacity in blocks: the fraction of accesses whose stack distance
// is below the capacity.
func (p *StackProfile) HitRate(capacityBlocks int) float64 {
	if p.Accesses == 0 {
		return 0
	}
	if capacityBlocks > len(p.Hist) {
		capacityBlocks = len(p.Hist)
	}
	var hits uint64
	for d := 0; d < capacityBlocks; d++ {
		hits += p.Hist[d]
	}
	return float64(hits) / float64(p.Accesses)
}

// MissRateCurve evaluates HitRate at each capacity and returns miss rates —
// the classic MRC used to reason about cache sizing.
func (p *StackProfile) MissRateCurve(capacities []int) []float64 {
	out := make([]float64, len(capacities))
	for i, c := range capacities {
		out[i] = 1 - p.HitRate(c)
	}
	return out
}

// MedianReuseDistance returns the median stack distance among reused
// accesses, or -1 if nothing was reused within the histogram.
func (p *StackProfile) MedianReuseDistance() int {
	var reuses uint64
	for _, c := range p.Hist {
		reuses += c
	}
	if reuses == 0 {
		return -1
	}
	var cum uint64
	for d, c := range p.Hist {
		cum += c
		if cum >= (reuses+1)/2 {
			return d
		}
	}
	return len(p.Hist) - 1
}

// String summarizes the profile.
func (p *StackProfile) String() string {
	return fmt.Sprintf("accesses=%d blocks=%d cold=%.1f%% medianRD=%d",
		p.Accesses, p.Blocks, 100*float64(p.Cold)/float64(max64(p.Accesses, 1)),
		p.MedianReuseDistance())
}

func max64(a, b uint64) uint64 {
	if a > b {
		return a
	}
	return b
}

// TopBlockShare returns the fraction of accesses going to the k most
// frequently touched blocks — the popularity skew workload models encode
// with Zipf parameters.
func TopBlockShare(recs []trace.Rec, k int) float64 {
	if len(recs) == 0 || k <= 0 {
		return 0
	}
	counts := map[uint64]int{}
	for _, r := range recs {
		counts[mem.Block(r.Addr)]++
	}
	all := make([]int, 0, len(counts))
	for _, c := range counts {
		all = append(all, c)
	}
	sort.Sort(sort.Reverse(sort.IntSlice(all)))
	if k > len(all) {
		k = len(all)
	}
	top := 0
	for _, c := range all[:k] {
		top += c
	}
	return float64(top) / float64(len(recs))
}
