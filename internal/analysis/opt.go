package analysis

import (
	"container/heap"

	"drishti/internal/mem"
	"drishti/internal/trace"
)

// OPTResult summarizes an offline Belady's-MIN simulation.
type OPTResult struct {
	Accesses uint64
	Hits     uint64
	Misses   uint64
}

// HitRate returns the OPT hit rate.
func (r OPTResult) HitRate() float64 {
	if r.Accesses == 0 {
		return 0
	}
	return float64(r.Hits) / float64(r.Accesses)
}

// SimulateOPT runs Belady's optimal replacement over the block stream in
// recs for a set-associative cache with the given geometry (sets must be a
// power of two; block → set uses the low block-address bits, as the
// simulator's caches do). It is the oracle that Hawkeye's OPTgen emulates
// online; tests use it to bound what any replacement policy can achieve.
//
// The implementation is the classic two-pass algorithm: first record, for
// every access, when its block is accessed next; then simulate each set
// with a max-heap of resident blocks keyed by next use, evicting the block
// whose next use is furthest in the future.
func SimulateOPT(recs []trace.Rec, sets, ways int) OPTResult {
	if sets <= 0 || ways <= 0 {
		return OPTResult{}
	}
	const never = ^uint64(0)

	// Pass 1: next-use chain.
	nextUse := make([]uint64, len(recs))
	lastSeen := make(map[uint64]int, 1<<12)
	for i := len(recs) - 1; i >= 0; i-- {
		blk := mem.Block(recs[i].Addr)
		if j, ok := lastSeen[blk]; ok {
			nextUse[i] = uint64(j)
		} else {
			nextUse[i] = never
		}
		lastSeen[blk] = i
	}

	// Pass 2: per-set simulation.
	type setState struct {
		resident map[uint64]bool
		h        optHeap // (block, nextUse) max-heap by nextUse (lazy)
	}
	states := make([]setState, sets)
	for i := range states {
		states[i] = setState{resident: make(map[uint64]bool, ways)}
	}
	mask := uint64(sets - 1)

	var res OPTResult
	for i, r := range recs {
		blk := mem.Block(r.Addr)
		st := &states[blk&mask]
		res.Accesses++
		if st.resident[blk] {
			res.Hits++
		} else {
			res.Misses++
			if len(st.resident) >= ways {
				// Evict the resident block with the furthest next use.
				// Heap entries are lazy: skip stale ones (blocks already
				// evicted or entries superseded by a nearer use).
				for {
					top := heap.Pop(&st.h).(optEntry)
					if st.resident[top.block] && top.stale == st.h.gen[top.block] {
						delete(st.resident, top.block)
						break
					}
				}
			}
			st.resident[blk] = true
		}
		// Record this block's next use (whether hit or fill).
		if st.h.gen == nil {
			st.h.gen = map[uint64]uint32{}
		}
		st.h.gen[blk]++
		heap.Push(&st.h, optEntry{block: blk, next: nextUse[i], stale: st.h.gen[blk]})
	}
	return res
}

// optEntry is a lazy heap entry: stale entries (superseded generations) are
// skipped at pop time.
type optEntry struct {
	block uint64
	next  uint64
	stale uint32
}

type optHeap struct {
	entries []optEntry
	gen     map[uint64]uint32
}

func (h optHeap) Len() int           { return len(h.entries) }
func (h optHeap) Less(i, j int) bool { return h.entries[i].next > h.entries[j].next }
func (h optHeap) Swap(i, j int)      { h.entries[i], h.entries[j] = h.entries[j], h.entries[i] }
func (h *optHeap) Push(x any)        { h.entries = append(h.entries, x.(optEntry)) }
func (h *optHeap) Pop() any {
	old := h.entries
	n := len(old)
	x := old[n-1]
	h.entries = old[:n-1]
	return x
}
