package store

import (
	"errors"
	"fmt"
	"sort"
	"strings"

	"drishti/internal/ring"
)

// shardPrefixLen is how much of the content address feeds the ring.
// Addresses are hex SHA-256, so any prefix is uniformly distributed; 16
// hex digits (64 bits) is far beyond collision range for routing while
// making the "routes by key prefix" contract literal: two addresses that
// share their 16-char prefix always land on the same shard.
const shardPrefixLen = 16

// Sharded is a composite Backend that splits the address space across
// child backends by consistent hashing of the address prefix. Routing is
// a pure function of (address, shard names), so every process that lists
// the same shards — coordinators, workers, tools — resolves every address
// to the same shard with no coordination, and adding a shard strands only
// ~K/n existing entries (which re-enter as plain misses and are healed by
// the next Put).
type Sharded struct {
	names  []string
	ring   *ring.Ring
	shards map[string]Backend
}

// NewSharded builds a composite over named child backends. Names are the
// ring identity: keep them stable (e.g. the shard directory path) or
// entries strand. len(names) must equal len(backends) and be non-zero.
func NewSharded(names []string, backends []Backend) (*Sharded, error) {
	if len(names) == 0 || len(names) != len(backends) {
		return nil, fmt.Errorf("store: sharded needs matching names and backends, got %d/%d", len(names), len(backends))
	}
	s := &Sharded{shards: make(map[string]Backend, len(names))}
	for i, n := range names {
		if n == "" {
			return nil, errors.New("store: empty shard name")
		}
		if _, dup := s.shards[n]; dup {
			return nil, fmt.Errorf("store: duplicate shard name %q", n)
		}
		s.shards[n] = backends[i]
		s.names = append(s.names, n)
	}
	sort.Strings(s.names)
	s.ring = ring.New(s.names, 0)
	return s, nil
}

// route picks the child backend owning addr.
func (s *Sharded) route(addr string) Backend {
	p := addr
	if len(p) > shardPrefixLen {
		p = p[:shardPrefixLen]
	}
	return s.shards[s.ring.Owner(p)]
}

// Shard exposes the owning shard's name for an address (tests and stats).
func (s *Sharded) Shard(addr string) string {
	p := addr
	if len(p) > shardPrefixLen {
		p = p[:shardPrefixLen]
	}
	return s.ring.Owner(p)
}

// Names returns the sorted shard names.
func (s *Sharded) Names() []string { return s.ring.Members() }

func (s *Sharded) Get(addr string) ([]byte, error)    { return s.route(addr).Get(addr) }
func (s *Sharded) Put(addr string, data []byte) error { return s.route(addr).Put(addr, data) }
func (s *Sharded) Delete(addr string) error           { return s.route(addr).Delete(addr) }

// List merges the children's listings. Addresses stranded on a non-owning
// shard by a membership change are still listed (they exist on disk),
// deduplicated against the owner's copy.
func (s *Sharded) List() ([]string, error) {
	seen := make(map[string]bool)
	var out []string
	for _, n := range s.names {
		addrs, err := s.shards[n].List()
		if err != nil {
			return nil, err
		}
		for _, a := range addrs {
			if !seen[a] {
				seen[a] = true
				out = append(out, a)
			}
		}
	}
	return out, nil
}

func (s *Sharded) Usage() (entries int, bytes int64, err error) {
	for _, n := range s.names {
		e, b, err := Usage(s.shards[n])
		if err != nil {
			return entries, bytes, err
		}
		entries += e
		bytes += b
	}
	return entries, bytes, nil
}

func (s *Sharded) Describe() string {
	descs := make([]string, len(s.names))
	for i, n := range s.names {
		descs[i] = Describe(s.shards[n])
	}
	return "sharded[" + strings.Join(descs, ",") + "]"
}

// Flush forwards to every child that supports it (e.g. per-shard Cached
// tiers).
func (s *Sharded) Flush() error {
	var errs []error
	for _, n := range s.names {
		if f, ok := s.shards[n].(flusher); ok {
			if err := f.Flush(); err != nil {
				errs = append(errs, err)
			}
		}
	}
	return errors.Join(errs...)
}
