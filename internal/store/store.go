// Package store is a durable, content-addressed result store: a disk-backed
// extension of the in-memory memo caches. Entries are keyed by the explicit
// Key() builders (sim.Config, policies.Spec, workload.Mix), addressed on
// disk by the SHA-256 of the key, and written atomically (temp file +
// rename) so a crashed writer never leaves a half-entry where a reader can
// see it. Every entry carries a schema version and a payload checksum;
// version mismatches and corrupted entries are treated as misses (and the
// bad file removed) so callers always fall back to recompute instead of
// consuming damaged results.
//
// The drishti-served job service fronts the simulator with a Store: a job
// whose (config, mix) key was computed by any earlier process — not just
// the current one — is served from disk in O(1).
package store

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"io/fs"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"

	"drishti/internal/obs"
)

// SchemaVersion is bumped whenever the envelope layout or the semantics of
// stored payloads change; entries written under another version are
// invalidated on read.
const SchemaVersion = 1

// envelope is the on-disk frame around a payload.
type envelope struct {
	Version int             `json:"v"`
	Key     string          `json:"key"`
	Sum     string          `json:"sum"` // hex SHA-256 of Payload
	Payload json.RawMessage `json:"payload"`
}

// Stats is a point-in-time summary of store activity since Open.
type Stats struct {
	Hits      uint64 `json:"hits"`
	Misses    uint64 `json:"misses"`  // absent entries
	Corrupt   uint64 `json:"corrupt"` // checksum/decode failures, removed
	Stale     uint64 `json:"stale"`   // schema-version mismatches, removed
	Puts      uint64 `json:"puts"`
	PutErrors uint64 `json:"putErrors"`
}

// Store is a content-addressed entry store rooted at one directory. All
// methods are safe for concurrent use, including by multiple processes
// sharing the directory (atomic rename makes same-key writers idempotent).
type Store struct {
	dir string

	hits, misses, corrupt, stale, puts, putErrs atomic.Uint64

	// Optional registry mirrors (set by Attach).
	mu                  sync.Mutex
	cHits, cMiss, cCorr *obs.Counter
}

// Open prepares a store rooted at dir, creating it if needed.
func Open(dir string) (*Store, error) {
	if dir == "" {
		return nil, errors.New("store: empty directory")
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	return &Store{dir: dir}, nil
}

// Dir returns the store's root directory.
func (s *Store) Dir() string { return s.dir }

// Attach mirrors hit/miss/corruption counts into reg as
// <prefix>_hits/_misses/_corrupt so /metrics exposes store behavior live.
func (s *Store) Attach(reg *obs.Registry, prefix string) *Store {
	if reg == nil {
		return s
	}
	s.mu.Lock()
	s.cHits = reg.Counter(prefix + "_hits")
	s.cMiss = reg.Counter(prefix + "_misses")
	s.cCorr = reg.Counter(prefix + "_corrupt")
	s.mu.Unlock()
	return s
}

// path maps a key to its content address: two-level fan-out keeps
// directories small at millions of entries.
func (s *Store) path(key string) string {
	sum := sha256.Sum256([]byte(key))
	name := hex.EncodeToString(sum[:])
	return filepath.Join(s.dir, name[:2], name+".json")
}

func (s *Store) bumpHit() {
	s.hits.Add(1)
	s.mu.Lock()
	if s.cHits != nil {
		s.cHits.Inc()
	}
	s.mu.Unlock()
}

func (s *Store) bumpMiss() {
	s.misses.Add(1)
	s.mu.Lock()
	if s.cMiss != nil {
		s.cMiss.Inc()
	}
	s.mu.Unlock()
}

func (s *Store) bumpCorrupt() {
	s.corrupt.Add(1)
	s.mu.Lock()
	if s.cCorr != nil {
		s.cCorr.Inc()
	}
	s.mu.Unlock()
}

// Get loads the entry for key into v (a pointer, as for json.Unmarshal).
// It returns (true, nil) on a hit. Absent, stale-version, and corrupted
// entries all report (false, nil) — a miss the caller recovers from by
// recomputing; damaged files are removed so the next Put heals the slot.
// Only environmental failures (e.g. permission errors) surface as errors.
func (s *Store) Get(key string, v any) (bool, error) {
	raw, err := os.ReadFile(s.path(key))
	if errors.Is(err, fs.ErrNotExist) {
		s.bumpMiss()
		return false, nil
	}
	if err != nil {
		return false, fmt.Errorf("store: read %q: %w", key, err)
	}
	var env envelope
	if err := json.Unmarshal(raw, &env); err != nil {
		s.discardCorrupt(key)
		return false, nil
	}
	if env.Version != SchemaVersion {
		s.discardStale(key)
		return false, nil
	}
	if env.Key != key { // hash collision or foreign file; never deliver
		s.discardCorrupt(key)
		return false, nil
	}
	sum := sha256.Sum256(env.Payload)
	if hex.EncodeToString(sum[:]) != env.Sum {
		s.discardCorrupt(key)
		return false, nil
	}
	if err := json.Unmarshal(env.Payload, v); err != nil {
		s.discardCorrupt(key)
		return false, nil
	}
	s.bumpHit()
	return true, nil
}

// discardCorrupt removes a damaged entry and counts it as a corruption
// plus a miss (the caller recomputes).
func (s *Store) discardCorrupt(key string) {
	os.Remove(s.path(key))
	s.bumpCorrupt()
	s.bumpMiss()
}

// discardStale removes an entry written under another schema version.
func (s *Store) discardStale(key string) {
	os.Remove(s.path(key))
	s.stale.Add(1)
	s.bumpMiss()
}

// Put durably stores v under key, replacing any existing entry. The write
// is atomic: the envelope lands in a temp file in the same directory and is
// renamed into place, so concurrent readers see either the old entry or the
// new one, never a torn file, and concurrent same-key writers are
// idempotent (both rename a complete file).
func (s *Store) Put(key string, v any) error {
	payload, err := json.Marshal(v)
	if err != nil {
		s.putErrs.Add(1)
		return fmt.Errorf("store: encode %q: %w", key, err)
	}
	sum := sha256.Sum256(payload)
	raw, err := json.Marshal(envelope{
		Version: SchemaVersion,
		Key:     key,
		Sum:     hex.EncodeToString(sum[:]),
		Payload: payload,
	})
	if err != nil {
		s.putErrs.Add(1)
		return fmt.Errorf("store: encode envelope %q: %w", key, err)
	}
	dst := s.path(key)
	if err := os.MkdirAll(filepath.Dir(dst), 0o755); err != nil {
		s.putErrs.Add(1)
		return fmt.Errorf("store: %w", err)
	}
	tmp, err := os.CreateTemp(filepath.Dir(dst), ".put-*")
	if err != nil {
		s.putErrs.Add(1)
		return fmt.Errorf("store: %w", err)
	}
	if _, err := tmp.Write(raw); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		s.putErrs.Add(1)
		return fmt.Errorf("store: write %q: %w", key, err)
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		s.putErrs.Add(1)
		return fmt.Errorf("store: close %q: %w", key, err)
	}
	if err := os.Rename(tmp.Name(), dst); err != nil {
		os.Remove(tmp.Name())
		s.putErrs.Add(1)
		return fmt.Errorf("store: rename %q: %w", key, err)
	}
	s.puts.Add(1)
	return nil
}

// Stats returns activity counts since Open.
func (s *Store) Stats() Stats {
	return Stats{
		Hits:      s.hits.Load(),
		Misses:    s.misses.Load(),
		Corrupt:   s.corrupt.Load(),
		Stale:     s.stale.Load(),
		Puts:      s.puts.Load(),
		PutErrors: s.putErrs.Load(),
	}
}

// DiskStats walks the store directory and returns the entry count and total
// payload bytes on disk (served by GET /v1/store/stats; O(entries), so it
// is not on any hot path).
func (s *Store) DiskStats() (entries int, bytes int64, err error) {
	err = filepath.WalkDir(s.dir, func(path string, d fs.DirEntry, err error) error {
		if err != nil || d.IsDir() || filepath.Ext(path) != ".json" {
			return err
		}
		info, err := d.Info()
		if err != nil {
			return err
		}
		entries++
		bytes += info.Size()
		return nil
	})
	return entries, bytes, err
}

// WriteFileAtomic writes data to path via a same-directory temp file and
// rename, the same torn-write guarantee store entries get. The job service
// reuses it for queue persistence.
func WriteFileAtomic(path string, data []byte, perm os.FileMode) error {
	dir := filepath.Dir(path)
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	tmp, err := os.CreateTemp(dir, ".atomic-*")
	if err != nil {
		return err
	}
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return err
	}
	if err := tmp.Chmod(perm); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return err
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return err
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		os.Remove(tmp.Name())
		return err
	}
	return nil
}
