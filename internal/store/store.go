// Package store is a durable, content-addressed result store: a disk-backed
// extension of the in-memory memo caches. Entries are keyed by the explicit
// Key() builders (sim.Config, policies.Spec, workload.Mix), addressed by the
// SHA-256 of the key, and written atomically so a crashed writer never
// leaves a half-entry where a reader can see it. Every entry carries a
// schema version and a payload checksum; version mismatches and corrupted
// entries are treated as misses (and the bad blob removed) so callers
// always fall back to recompute instead of consuming damaged results.
//
// The Store is layered: envelope framing, checksums, and hit/miss
// accounting live here, while blob placement is a pluggable Backend
// (Get/Put/Delete/List by content address). Dir is the classic
// one-directory layout; Sharded consistent-hashes the address space across
// several backends so one logical store spans disks or machines; Cached
// adds a read-through/write-back memory tier in front of any of them. All
// compositions serve the same envelopes, so fleet nodes with different
// topologies still dedup against each other.
//
// The drishti-served job service fronts the simulator with a Store: a job
// whose (config, mix) key was computed by any earlier process — not just
// the current one — is served from the backend in O(1).
package store

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"sync/atomic"

	"drishti/internal/obs"
)

// SchemaVersion is bumped whenever the envelope layout or the semantics of
// stored payloads change; entries written under another version are
// invalidated on read.
const SchemaVersion = 1

// envelope is the stored frame around a payload.
type envelope struct {
	Version int             `json:"v"`
	Key     string          `json:"key"`
	Sum     string          `json:"sum"` // hex SHA-256 of Payload
	Payload json.RawMessage `json:"payload"`
}

// Stats is a point-in-time summary of store activity since Open.
type Stats struct {
	Hits      uint64 `json:"hits"`
	Misses    uint64 `json:"misses"`  // absent entries
	Corrupt   uint64 `json:"corrupt"` // checksum/decode failures, removed
	Stale     uint64 `json:"stale"`   // schema-version mismatches, removed
	Puts      uint64 `json:"puts"`
	PutErrors uint64 `json:"putErrors"`
}

// Store frames entries (schema version, key echo, payload checksum) over a
// Backend. All methods are safe for concurrent use, including by multiple
// processes sharing the same backend (atomic backend writes make same-key
// writers idempotent).
type Store struct {
	be  Backend
	dir string // root directory for dir-backed stores; else a description

	hits, misses, corrupt, stale, puts, putErrs atomic.Uint64

	// Optional registry mirrors (set by Attach).
	mu                  sync.Mutex
	cHits, cMiss, cCorr *obs.Counter
}

// Open prepares a store over the classic single-directory backend rooted
// at dir, creating it if needed.
func Open(dir string) (*Store, error) {
	be, err := NewDir(dir)
	if err != nil {
		return nil, err
	}
	return &Store{be: be, dir: dir}, nil
}

// OpenBackend wraps an already-built backend composition (sharded, cached,
// in-memory, ...) in a Store.
func OpenBackend(be Backend) *Store {
	return &Store{be: be, dir: Describe(be)}
}

// OpenSharded builds the standard scaled-out composition: one Dir backend
// per shard directory, consistent-hash routed, with an optional
// read-through/write-back memory tier of cacheEntries entries in front
// (0 disables the tier, <0 takes DefaultCacheEntries). A single directory
// degenerates to the classic layout plus the optional tier.
func OpenSharded(dirs []string, cacheEntries int) (*Store, error) {
	if len(dirs) == 0 {
		return nil, errors.New("store: no shard directories")
	}
	var be Backend
	if len(dirs) == 1 {
		d, err := NewDir(dirs[0])
		if err != nil {
			return nil, err
		}
		be = d
	} else {
		names := make([]string, len(dirs))
		backends := make([]Backend, len(dirs))
		for i, dir := range dirs {
			d, err := NewDir(dir)
			if err != nil {
				return nil, err
			}
			// The ring identity is the shard's position-independent name:
			// the cleaned path, so every process naming the same
			// directories routes identically.
			names[i] = filepath.Clean(dir)
			backends[i] = d
		}
		sh, err := NewSharded(names, backends)
		if err != nil {
			return nil, err
		}
		be = sh
	}
	if cacheEntries != 0 {
		if cacheEntries < 0 {
			cacheEntries = DefaultCacheEntries
		}
		be = NewCached(be, cacheEntries)
	}
	return &Store{be: be, dir: strings.Join(dirs, ",")}, nil
}

// Dir returns the store's root directory for dir-backed stores, or a
// human-readable description of the backend composition otherwise.
func (s *Store) Dir() string { return s.dir }

// Backend exposes the underlying backend (stats endpoints and tests).
func (s *Store) Backend() Backend { return s.be }

// Flush forces any write-back tier in the backend composition to drain and
// returns the first asynchronous write failure it absorbed. A no-op for
// fully synchronous backends.
func (s *Store) Flush() error {
	if f, ok := s.be.(flusher); ok {
		return f.Flush()
	}
	return nil
}

// Attach mirrors hit/miss/corruption counts into reg as
// <prefix>_hits/_misses/_corrupt so /metrics exposes store behavior live.
func (s *Store) Attach(reg *obs.Registry, prefix string) *Store {
	if reg == nil {
		return s
	}
	s.mu.Lock()
	s.cHits = reg.Counter(prefix + "_hits")
	s.cMiss = reg.Counter(prefix + "_misses")
	s.cCorr = reg.Counter(prefix + "_corrupt")
	s.mu.Unlock()
	return s
}

// Addr maps a key to its content address: the hex SHA-256 every backend
// stores the entry under.
func Addr(key string) string {
	sum := sha256.Sum256([]byte(key))
	return hex.EncodeToString(sum[:])
}

func (s *Store) bumpHit() {
	s.hits.Add(1)
	s.mu.Lock()
	if s.cHits != nil {
		s.cHits.Inc()
	}
	s.mu.Unlock()
}

func (s *Store) bumpMiss() {
	s.misses.Add(1)
	s.mu.Lock()
	if s.cMiss != nil {
		s.cMiss.Inc()
	}
	s.mu.Unlock()
}

func (s *Store) bumpCorrupt() {
	s.corrupt.Add(1)
	s.mu.Lock()
	if s.cCorr != nil {
		s.cCorr.Inc()
	}
	s.mu.Unlock()
}

// Get loads the entry for key into v (a pointer, as for json.Unmarshal).
// It returns (true, nil) on a hit. Absent, stale-version, and corrupted
// entries all report (false, nil) — a miss the caller recovers from by
// recomputing; damaged blobs are removed so the next Put heals the slot.
// Only environmental failures (e.g. permission errors) surface as errors.
func (s *Store) Get(key string, v any) (bool, error) {
	addr := Addr(key)
	raw, err := s.be.Get(addr)
	if errors.Is(err, ErrNotFound) {
		s.bumpMiss()
		return false, nil
	}
	if err != nil {
		return false, fmt.Errorf("store: read %q: %w", key, err)
	}
	var env envelope
	if err := json.Unmarshal(raw, &env); err != nil {
		s.discardCorrupt(addr)
		return false, nil
	}
	if env.Version != SchemaVersion {
		s.discardStale(addr)
		return false, nil
	}
	if env.Key != key { // hash collision or foreign blob; never deliver
		s.discardCorrupt(addr)
		return false, nil
	}
	sum := sha256.Sum256(env.Payload)
	if hex.EncodeToString(sum[:]) != env.Sum {
		s.discardCorrupt(addr)
		return false, nil
	}
	if err := json.Unmarshal(env.Payload, v); err != nil {
		s.discardCorrupt(addr)
		return false, nil
	}
	s.bumpHit()
	return true, nil
}

// discardCorrupt removes a damaged entry and counts it as a corruption
// plus a miss (the caller recomputes).
func (s *Store) discardCorrupt(addr string) {
	s.be.Delete(addr)
	s.bumpCorrupt()
	s.bumpMiss()
}

// discardStale removes an entry written under another schema version.
func (s *Store) discardStale(addr string) {
	s.be.Delete(addr)
	s.stale.Add(1)
	s.bumpMiss()
}

// Put durably stores v under key, replacing any existing entry. Backend
// writes are atomic, so concurrent readers see either the old entry or the
// new one, never a torn blob, and concurrent same-key writers are
// idempotent.
func (s *Store) Put(key string, v any) error {
	payload, err := json.Marshal(v)
	if err != nil {
		s.putErrs.Add(1)
		return fmt.Errorf("store: encode %q: %w", key, err)
	}
	sum := sha256.Sum256(payload)
	raw, err := json.Marshal(envelope{
		Version: SchemaVersion,
		Key:     key,
		Sum:     hex.EncodeToString(sum[:]),
		Payload: payload,
	})
	if err != nil {
		s.putErrs.Add(1)
		return fmt.Errorf("store: encode envelope %q: %w", key, err)
	}
	if err := s.be.Put(Addr(key), raw); err != nil {
		s.putErrs.Add(1)
		return err
	}
	s.puts.Add(1)
	return nil
}

// Stats returns activity counts since Open.
func (s *Store) Stats() Stats {
	return Stats{
		Hits:      s.hits.Load(),
		Misses:    s.misses.Load(),
		Corrupt:   s.corrupt.Load(),
		Stale:     s.stale.Load(),
		Puts:      s.puts.Load(),
		PutErrors: s.putErrs.Load(),
	}
}

// DiskStats reports the backend's entry count and stored bytes (served by
// GET /v1/store/stats; O(entries), so it is not on any hot path).
func (s *Store) DiskStats() (entries int, bytes int64, err error) {
	return Usage(s.be)
}

// WriteFileAtomic writes data to path via a same-directory temp file and
// rename, the same torn-write guarantee store entries get. The job service
// reuses it for queue persistence.
func WriteFileAtomic(path string, data []byte, perm os.FileMode) error {
	dir := filepath.Dir(path)
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	tmp, err := os.CreateTemp(dir, ".atomic-*")
	if err != nil {
		return err
	}
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return err
	}
	if err := tmp.Chmod(perm); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return err
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return err
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		os.Remove(tmp.Name())
		return err
	}
	return nil
}
