package store

import (
	"container/list"
	"errors"
	"fmt"
	"sync"
)

// DefaultCacheEntries bounds a Cached tier when NewCached is given a
// non-positive capacity. Store entries are a few KB of JSON, so 4096
// entries is tens of MB — enough to absorb a sweep's working set.
const DefaultCacheEntries = 4096

// Cached is a read-through/write-back memory tier over another Backend.
// Get serves from memory when it can and populates memory from the
// backing store when it can't; Put lands in memory immediately (a Get
// that follows sees it with no disk round trip) and a background flusher
// writes it down to the backing store. Flush forces the write-back down
// and surfaces any asynchronous write error; Close flushes and stops the
// flusher.
//
// The cache holds at most max entries; least-recently-used clean entries
// are evicted first, and an entry is never evicted while its write-back
// is still owed. Because store entries are memo results (recomputable by
// design), a failed write-back is recorded and reported by Flush rather
// than crashing the serving path: the entry keeps being served from
// memory, and a later Put heals the durable copy.
type Cached struct {
	backing Backend
	max     int

	mu       sync.Mutex
	cond     *sync.Cond // broadcast when the dirty queue drains
	entries  map[string]*centry
	lru      *list.List // front = most recently used
	dirty    []*centry  // FIFO write-back queue
	flushing bool       // a write-back is in flight
	err      error      // first async write-back failure (sticky until Flush)

	wake    chan struct{}
	stop    chan struct{}
	stopped chan struct{}
	closed  bool
}

// centry is one cached blob. Guarded by Cached.mu; data is immutable once
// set (replaced wholesale on Put).
type centry struct {
	addr  string
	data  []byte
	dirty bool
	gen   int // bumped per Put; the flusher only clears dirty if unchanged
	elem  *list.Element
}

// NewCached wraps backing with a memory tier of at most max entries
// (<=0 takes DefaultCacheEntries) and starts the write-back flusher.
func NewCached(backing Backend, max int) *Cached {
	if max <= 0 {
		max = DefaultCacheEntries
	}
	c := &Cached{
		backing: backing,
		max:     max,
		entries: make(map[string]*centry),
		lru:     list.New(),
		wake:    make(chan struct{}, 1),
		stop:    make(chan struct{}),
		stopped: make(chan struct{}),
	}
	c.cond = sync.NewCond(&c.mu)
	go c.flusher()
	return c
}

func (c *Cached) Describe() string { return "cached(" + Describe(c.backing) + ")" }

// touchLocked moves e to the LRU front, inserting it if new.
func (c *Cached) touchLocked(e *centry) {
	if e.elem != nil {
		c.lru.MoveToFront(e.elem)
		return
	}
	e.elem = c.lru.PushFront(e)
	c.entries[e.addr] = e
	c.evictLocked()
}

// evictLocked drops least-recently-used clean entries until the cache
// fits. Dirty entries are skipped — their write-back is still owed — so
// under a stalled flusher the cache can exceed max by the dirty count.
func (c *Cached) evictLocked() {
	for over := len(c.entries) - c.max; over > 0; {
		evicted := false
		for el := c.lru.Back(); el != nil; el = el.Prev() {
			e := el.Value.(*centry)
			if e.dirty {
				continue
			}
			c.lru.Remove(el)
			delete(c.entries, e.addr)
			e.elem = nil
			over--
			evicted = true
			break
		}
		if !evicted {
			return // everything left is dirty
		}
	}
}

func (c *Cached) Get(addr string) ([]byte, error) {
	c.mu.Lock()
	if e, ok := c.entries[addr]; ok {
		c.touchLocked(e)
		data := e.data
		c.mu.Unlock()
		out := make([]byte, len(data))
		copy(out, data)
		return out, nil
	}
	c.mu.Unlock()

	raw, err := c.backing.Get(addr)
	if err != nil {
		return nil, err // ErrNotFound passes through; misses are not cached
	}
	c.mu.Lock()
	if _, ok := c.entries[addr]; !ok {
		c.touchLocked(&centry{addr: addr, data: raw})
	}
	c.mu.Unlock()
	out := make([]byte, len(raw))
	copy(out, raw)
	return out, nil
}

func (c *Cached) Put(addr string, data []byte) error {
	cp := make([]byte, len(data))
	copy(cp, data)
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		// A closed tier degrades to write-through so late writers (e.g. a
		// completion racing shutdown) still land durably.
		return c.backing.Put(addr, cp)
	}
	e, ok := c.entries[addr]
	if !ok {
		e = &centry{addr: addr}
	}
	e.data = cp
	e.gen++
	if !e.dirty {
		e.dirty = true
		c.dirty = append(c.dirty, e)
	}
	c.touchLocked(e)
	c.mu.Unlock()
	select {
	case c.wake <- struct{}{}:
	default:
	}
	return nil
}

func (c *Cached) Delete(addr string) error {
	c.mu.Lock()
	if e, ok := c.entries[addr]; ok {
		if e.elem != nil {
			c.lru.Remove(e.elem)
			e.elem = nil
		}
		delete(c.entries, addr)
		// Leave any queued write-back to the flusher; it re-checks the
		// entry table and skips deleted entries.
		e.dirty = false
		e.gen++
	}
	c.mu.Unlock()
	return c.backing.Delete(addr)
}

// List merges the backing store's listing with entries still waiting in
// the write-back queue, so a Put is visible to List before it is durable.
func (c *Cached) List() ([]string, error) {
	addrs, err := c.backing.List()
	if err != nil {
		return nil, err
	}
	seen := make(map[string]bool, len(addrs))
	for _, a := range addrs {
		seen[a] = true
	}
	c.mu.Lock()
	for _, e := range c.entries {
		if e.dirty && !seen[e.addr] {
			seen[e.addr] = true
			addrs = append(addrs, e.addr)
		}
	}
	c.mu.Unlock()
	return addrs, nil
}

func (c *Cached) Usage() (int, int64, error) {
	entries, bytes, err := Usage(c.backing)
	if err != nil {
		return entries, bytes, err
	}
	c.mu.Lock()
	for _, e := range c.entries {
		if e.dirty {
			entries++
			bytes += int64(len(e.data))
		}
	}
	c.mu.Unlock()
	return entries, bytes, nil
}

// flusher is the single write-back goroutine: it drains the dirty queue
// FIFO, re-queueing entries overwritten mid-flight.
func (c *Cached) flusher() {
	defer close(c.stopped)
	for {
		c.mu.Lock()
		for len(c.dirty) == 0 {
			c.flushing = false
			c.cond.Broadcast()
			c.mu.Unlock()
			select {
			case <-c.wake:
			case <-c.stop:
				return
			}
			c.mu.Lock()
		}
		e := c.dirty[0]
		c.dirty = c.dirty[1:]
		if !e.dirty { // deleted while queued
			c.mu.Unlock()
			continue
		}
		c.flushing = true
		data, gen := e.data, e.gen
		c.mu.Unlock()

		err := c.backing.Put(e.addr, data)

		c.mu.Lock()
		if err != nil && c.err == nil {
			c.err = fmt.Errorf("store: write-back %q: %w", e.addr, err)
		}
		if e.gen != gen && e.dirty {
			c.dirty = append(c.dirty, e) // overwritten mid-flight; flush again
		} else {
			e.dirty = false
		}
		c.flushing = false
		if len(c.dirty) == 0 {
			c.cond.Broadcast()
		}
		c.mu.Unlock()
	}
}

// Flush blocks until every owed write-back has been attempted and returns
// (and clears) the first asynchronous write failure recorded since the
// previous Flush.
func (c *Cached) Flush() error {
	select {
	case c.wake <- struct{}{}:
	default:
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	for (len(c.dirty) > 0 || c.flushing) && !c.closed {
		c.cond.Wait()
	}
	err := c.err
	c.err = nil
	if c.closed && len(c.dirty) > 0 {
		err = errors.Join(err, errors.New("store: cache closed with unflushed entries"))
	}
	return err
}

// Close flushes the write-back queue and stops the flusher. The tier
// remains usable afterwards, degraded to write-through.
func (c *Cached) Close() error {
	err := c.Flush()
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return err
	}
	c.closed = true
	c.mu.Unlock()
	close(c.stop)
	<-c.stopped
	c.mu.Lock()
	c.cond.Broadcast() // release any Flush waiting out the drain
	c.mu.Unlock()
	return err
}
