package store

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"testing"

	"drishti/internal/obs"
)

type payload struct {
	Name  string
	Value float64
	Seq   []int
}

func testStore(t *testing.T) *Store {
	t.Helper()
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestPutGetRoundTrip(t *testing.T) {
	s := testStore(t)
	in := payload{Name: "fig13", Value: 1.0625, Seq: []int{1, 2, 3}}
	if err := s.Put("k1", in); err != nil {
		t.Fatal(err)
	}
	var out payload
	hit, err := s.Get("k1", &out)
	if err != nil || !hit {
		t.Fatalf("Get: hit=%v err=%v", hit, err)
	}
	if out.Name != in.Name || out.Value != in.Value || len(out.Seq) != 3 {
		t.Fatalf("round trip mangled: %+v", out)
	}
	st := s.Stats()
	if st.Hits != 1 || st.Puts != 1 || st.Misses != 0 {
		t.Fatalf("stats %+v", st)
	}
}

func TestGetAbsentIsMiss(t *testing.T) {
	s := testStore(t)
	var out payload
	hit, err := s.Get("nope", &out)
	if err != nil || hit {
		t.Fatalf("hit=%v err=%v", hit, err)
	}
	if st := s.Stats(); st.Misses != 1 {
		t.Fatalf("stats %+v", st)
	}
}

// Concurrent readers and writers of the same key must never observe a torn
// or partially-written entry: every Get is either a miss or a fully valid
// payload. Run with -race in `make verify`.
func TestConcurrentSameKey(t *testing.T) {
	s := testStore(t)
	const key = "shared"
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				if err := s.Put(key, payload{Name: "w", Value: float64(w), Seq: []int{i}}); err != nil {
					t.Errorf("put: %v", err)
					return
				}
			}
		}(w)
	}
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				var out payload
				hit, err := s.Get(key, &out)
				if err != nil {
					t.Errorf("get: %v", err)
					return
				}
				if hit && out.Name != "w" {
					t.Errorf("torn read: %+v", out)
					return
				}
			}
		}()
	}
	wg.Wait()
	if st := s.Stats(); st.Corrupt != 0 {
		t.Fatalf("concurrent same-key access corrupted entries: %+v", st)
	}
}

// entryFile locates the single on-disk entry so corruption tests can damage
// it directly.
func entryFile(t *testing.T, s *Store) string {
	t.Helper()
	var found string
	filepath.Walk(s.Dir(), func(path string, info os.FileInfo, err error) error {
		if err == nil && !info.IsDir() && filepath.Ext(path) == ".json" {
			found = path
		}
		return nil
	})
	if found == "" {
		t.Fatal("no entry file on disk")
	}
	return found
}

func TestCorruptedEntryFallsBackToMiss(t *testing.T) {
	cases := []struct {
		name   string
		mangle func(raw []byte) []byte
	}{
		{"truncated", func(raw []byte) []byte { return raw[:len(raw)/2] }},
		{"bitflip-payload", func(raw []byte) []byte {
			// Flip a byte inside the payload numbers, leaving JSON valid.
			var env map[string]json.RawMessage
			if err := json.Unmarshal(raw, &env); err != nil {
				return raw[:1]
			}
			p := []byte(env["payload"])
			for i, b := range p {
				if b >= '1' && b <= '8' {
					p[i] = b + 1
					break
				}
			}
			env["payload"] = p
			out, _ := json.Marshal(env)
			return out
		}},
		{"garbage", func(raw []byte) []byte { return []byte("not json at all") }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			s := testStore(t)
			if err := s.Put("k", payload{Name: "x", Value: 12345678}); err != nil {
				t.Fatal(err)
			}
			file := entryFile(t, s)
			raw, err := os.ReadFile(file)
			if err != nil {
				t.Fatal(err)
			}
			if err := os.WriteFile(file, tc.mangle(raw), 0o644); err != nil {
				t.Fatal(err)
			}
			var out payload
			hit, err := s.Get("k", &out)
			if err != nil {
				t.Fatalf("corrupted entry surfaced an error: %v", err)
			}
			if hit {
				t.Fatalf("corrupted entry served as a hit: %+v", out)
			}
			if st := s.Stats(); st.Corrupt != 1 {
				t.Fatalf("stats %+v, want Corrupt=1", st)
			}
			if _, err := os.Stat(file); !os.IsNotExist(err) {
				t.Fatalf("corrupted file not removed (err=%v)", err)
			}
			// The slot heals: recompute + Put + Get works again.
			if err := s.Put("k", payload{Name: "fresh"}); err != nil {
				t.Fatal(err)
			}
			if hit, err := s.Get("k", &out); err != nil || !hit || out.Name != "fresh" {
				t.Fatalf("healed slot: hit=%v err=%v out=%+v", hit, err, out)
			}
		})
	}
}

func TestVersionMismatchInvalidates(t *testing.T) {
	s := testStore(t)
	if err := s.Put("k", payload{Name: "old"}); err != nil {
		t.Fatal(err)
	}
	file := entryFile(t, s)
	raw, err := os.ReadFile(file)
	if err != nil {
		t.Fatal(err)
	}
	var env map[string]any
	if err := json.Unmarshal(raw, &env); err != nil {
		t.Fatal(err)
	}
	env["v"] = SchemaVersion + 1
	newRaw, _ := json.Marshal(env)
	if err := os.WriteFile(file, newRaw, 0o644); err != nil {
		t.Fatal(err)
	}
	var out payload
	hit, err := s.Get("k", &out)
	if err != nil || hit {
		t.Fatalf("future-version entry served: hit=%v err=%v", hit, err)
	}
	st := s.Stats()
	if st.Stale != 1 || st.Corrupt != 0 {
		t.Fatalf("stats %+v, want Stale=1 Corrupt=0", st)
	}
	if _, err := os.Stat(file); !os.IsNotExist(err) {
		t.Fatalf("stale file not removed (err=%v)", err)
	}
}

func TestKeyMismatchRejected(t *testing.T) {
	s := testStore(t)
	if err := s.Put("k", payload{Name: "x"}); err != nil {
		t.Fatal(err)
	}
	// Rewrite the envelope claiming a different key at the same address.
	file := entryFile(t, s)
	raw, _ := os.ReadFile(file)
	var env envelope
	if err := json.Unmarshal(raw, &env); err != nil {
		t.Fatal(err)
	}
	env.Key = "other"
	newRaw, _ := json.Marshal(env)
	os.WriteFile(file, newRaw, 0o644)
	var out payload
	if hit, _ := s.Get("k", &out); hit {
		t.Fatal("foreign-key entry served as a hit")
	}
}

func TestAttachMirrorsCounters(t *testing.T) {
	s := testStore(t)
	reg := obs.NewRegistry()
	s.Attach(reg, "store")
	s.Put("k", payload{})
	var out payload
	s.Get("k", &out)  // hit
	s.Get("k2", &out) // miss
	snap := reg.Snapshot()
	if snap["store_hits"].(uint64) != 1 || snap["store_misses"].(uint64) != 1 {
		t.Fatalf("registry snapshot %v", snap)
	}
}

func TestDiskStats(t *testing.T) {
	s := testStore(t)
	for i := 0; i < 5; i++ {
		if err := s.Put(fmt.Sprintf("k%d", i), payload{Seq: []int{i}}); err != nil {
			t.Fatal(err)
		}
	}
	entries, bytes, err := s.DiskStats()
	if err != nil {
		t.Fatal(err)
	}
	if entries != 5 || bytes == 0 {
		t.Fatalf("DiskStats = (%d, %d)", entries, bytes)
	}
}

func TestDifferentKeysIndependent(t *testing.T) {
	s := testStore(t)
	for i := 0; i < 20; i++ {
		if err := s.Put(fmt.Sprintf("key-%d", i), payload{Value: float64(i)}); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 20; i++ {
		var out payload
		hit, err := s.Get(fmt.Sprintf("key-%d", i), &out)
		if err != nil || !hit || out.Value != float64(i) {
			t.Fatalf("key-%d: hit=%v err=%v out=%+v", i, hit, err, out)
		}
	}
}

func TestWriteFileAtomic(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "sub", "queue.json")
	if err := WriteFileAtomic(path, []byte(`{"a":1}`), 0o644); err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(path)
	if err != nil || string(raw) != `{"a":1}` {
		t.Fatalf("read back %q err=%v", raw, err)
	}
	// Overwrite is atomic too.
	if err := WriteFileAtomic(path, []byte(`{"a":2}`), 0o644); err != nil {
		t.Fatal(err)
	}
	raw, _ = os.ReadFile(path)
	if string(raw) != `{"a":2}` {
		t.Fatalf("overwrite read back %q", raw)
	}
	// No temp droppings left behind.
	files, _ := os.ReadDir(filepath.Join(dir, "sub"))
	if len(files) != 1 {
		t.Fatalf("%d files left in dir, want 1", len(files))
	}
}
