package store

import (
	"errors"
	"fmt"
	"io/fs"
	"os"
	"path/filepath"
	"strings"
)

// Dir is the filesystem Backend: one blob per address under root, with a
// two-level fan-out (root/<addr[:2]>/<addr>.json) that keeps directories
// small at millions of entries. Writes are atomic (same-directory temp
// file + rename), so a crashed writer never leaves a half-blob where a
// reader can see it and concurrent same-address writers are idempotent.
// Safe for concurrent use by multiple processes sharing the directory.
type Dir struct {
	root string
}

// NewDir prepares a directory backend rooted at root, creating it if
// needed.
func NewDir(root string) (*Dir, error) {
	if root == "" {
		return nil, errors.New("store: empty directory")
	}
	if err := os.MkdirAll(root, 0o755); err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	return &Dir{root: root}, nil
}

// Root returns the backend's root directory.
func (d *Dir) Root() string { return d.root }

func (d *Dir) Describe() string { return d.root }

// path maps a content address to its on-disk location.
func (d *Dir) path(addr string) string {
	fan := addr
	if len(fan) > 2 {
		fan = fan[:2]
	}
	return filepath.Join(d.root, fan, addr+".json")
}

func (d *Dir) Get(addr string) ([]byte, error) {
	raw, err := os.ReadFile(d.path(addr))
	if errors.Is(err, fs.ErrNotExist) {
		return nil, ErrNotFound
	}
	if err != nil {
		return nil, fmt.Errorf("store: read %q: %w", addr, err)
	}
	return raw, nil
}

func (d *Dir) Put(addr string, data []byte) error {
	dst := d.path(addr)
	if err := os.MkdirAll(filepath.Dir(dst), 0o755); err != nil {
		return fmt.Errorf("store: %w", err)
	}
	tmp, err := os.CreateTemp(filepath.Dir(dst), ".put-*")
	if err != nil {
		return fmt.Errorf("store: %w", err)
	}
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return fmt.Errorf("store: write %q: %w", addr, err)
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("store: close %q: %w", addr, err)
	}
	if err := os.Rename(tmp.Name(), dst); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("store: rename %q: %w", addr, err)
	}
	return nil
}

func (d *Dir) Delete(addr string) error {
	err := os.Remove(d.path(addr))
	if err == nil || errors.Is(err, fs.ErrNotExist) {
		return nil
	}
	return fmt.Errorf("store: delete %q: %w", addr, err)
}

func (d *Dir) List() ([]string, error) {
	var out []string
	err := filepath.WalkDir(d.root, func(path string, e fs.DirEntry, err error) error {
		if err != nil || e.IsDir() || filepath.Ext(path) != ".json" {
			return err
		}
		out = append(out, strings.TrimSuffix(filepath.Base(path), ".json"))
		return nil
	})
	return out, err
}

// Usage walks the directory and totals entry count and bytes without
// reading payloads (cheaper than the generic List+Get fallback).
func (d *Dir) Usage() (entries int, bytes int64, err error) {
	err = filepath.WalkDir(d.root, func(path string, e fs.DirEntry, err error) error {
		if err != nil || e.IsDir() || filepath.Ext(path) != ".json" {
			return err
		}
		info, err := e.Info()
		if err != nil {
			return err
		}
		entries++
		bytes += info.Size()
		return nil
	})
	return entries, bytes, err
}
