package store

import (
	"errors"
	"sort"
	"sync"
)

// ErrNotFound is returned by Backend.Get for an absent address. It is the
// only Get error the Store treats as a plain miss; anything else is an
// environmental failure surfaced to the caller.
var ErrNotFound = errors.New("store: address not found")

// Backend is the blob layer under a Store: it moves opaque envelope bytes
// by content address (the hex SHA-256 of the entry key) and knows nothing
// about envelopes, checksums, or schema versions — that logic lives in
// Store, so every backend gets it identically. Implementations must be
// safe for concurrent use.
//
// Implementations in this package: Dir (one filesystem directory, the
// classic layout), Mem (process-local map, for tests and the cache tier),
// Sharded (consistent-hash routing across child backends), and Cached (a
// read-through/write-back memory tier over any other backend).
type Backend interface {
	// Get returns the blob at addr, or ErrNotFound.
	Get(addr string) ([]byte, error)
	// Put atomically stores data at addr, replacing any existing blob.
	Put(addr string, data []byte) error
	// Delete removes addr; deleting an absent address is not an error.
	Delete(addr string) error
	// List returns every stored address, in no particular order.
	List() ([]string, error)
}

// usager is the optional Backend refinement behind Usage: backends that
// can report entry count and byte totals cheaper than a full List+Get
// sweep implement it (all backends in this package do).
type usager interface {
	Usage() (entries int, bytes int64, err error)
}

// describer lets a backend label itself for stats endpoints and logs.
type describer interface {
	Describe() string
}

// flusher is the optional write-back surface: Cached implements it, and
// Store.Flush forwards to it so owners can force dirty entries down to
// the durable layer (shutdown, tests).
type flusher interface {
	Flush() error
}

// Usage reports the backend's entry count and payload bytes, using the
// backend's own accounting when available and falling back to List+Get
// (O(entries) reads) otherwise.
func Usage(b Backend) (entries int, bytes int64, err error) {
	if u, ok := b.(usager); ok {
		return u.Usage()
	}
	addrs, err := b.List()
	if err != nil {
		return 0, 0, err
	}
	for _, a := range addrs {
		raw, err := b.Get(a)
		if errors.Is(err, ErrNotFound) {
			continue // deleted between List and Get
		}
		if err != nil {
			return entries, bytes, err
		}
		entries++
		bytes += int64(len(raw))
	}
	return entries, bytes, nil
}

// Describe labels a backend for human-facing output.
func Describe(b Backend) string {
	if d, ok := b.(describer); ok {
		return d.Describe()
	}
	return "backend"
}

// Mem is an in-memory Backend: a mutex-guarded map holding copies of the
// stored blobs. It backs tests and the Cached tier's bookkeeping, and is
// a legitimate (volatile) store backend in its own right.
type Mem struct {
	mu      sync.RWMutex
	entries map[string][]byte
}

// NewMem returns an empty in-memory backend.
func NewMem() *Mem {
	return &Mem{entries: make(map[string][]byte)}
}

func (m *Mem) Get(addr string) ([]byte, error) {
	m.mu.RLock()
	defer m.mu.RUnlock()
	data, ok := m.entries[addr]
	if !ok {
		return nil, ErrNotFound
	}
	out := make([]byte, len(data))
	copy(out, data)
	return out, nil
}

func (m *Mem) Put(addr string, data []byte) error {
	cp := make([]byte, len(data))
	copy(cp, data)
	m.mu.Lock()
	m.entries[addr] = cp
	m.mu.Unlock()
	return nil
}

func (m *Mem) Delete(addr string) error {
	m.mu.Lock()
	delete(m.entries, addr)
	m.mu.Unlock()
	return nil
}

func (m *Mem) List() ([]string, error) {
	m.mu.RLock()
	defer m.mu.RUnlock()
	out := make([]string, 0, len(m.entries))
	for a := range m.entries {
		out = append(out, a)
	}
	sort.Strings(out)
	return out, nil
}

func (m *Mem) Usage() (int, int64, error) {
	m.mu.RLock()
	defer m.mu.RUnlock()
	var bytes int64
	for _, d := range m.entries {
		bytes += int64(len(d))
	}
	return len(m.entries), bytes, nil
}

func (m *Mem) Describe() string { return "mem" }
