package store

import (
	"errors"
	"fmt"
	"path/filepath"
	"sort"
	"sync"
	"testing"
)

// backends under test, each built fresh per run. Every Backend in the
// package must pass the same conformance suite.
func testBackends(t *testing.T) map[string]func() Backend {
	t.Helper()
	return map[string]func() Backend{
		"dir": func() Backend {
			d, err := NewDir(t.TempDir())
			if err != nil {
				t.Fatal(err)
			}
			return d
		},
		"mem": func() Backend { return NewMem() },
		"sharded": func() Backend {
			var names []string
			var kids []Backend
			for i := 0; i < 4; i++ {
				d, err := NewDir(filepath.Join(t.TempDir(), fmt.Sprintf("s%d", i)))
				if err != nil {
					t.Fatal(err)
				}
				names = append(names, fmt.Sprintf("shard-%d", i))
				kids = append(kids, d)
			}
			s, err := NewSharded(names, kids)
			if err != nil {
				t.Fatal(err)
			}
			return s
		},
		"cached-mem": func() Backend {
			c := NewCached(NewMem(), 8)
			t.Cleanup(func() { c.Close() })
			return c
		},
		"cached-dir": func() Backend {
			d, err := NewDir(t.TempDir())
			if err != nil {
				t.Fatal(err)
			}
			c := NewCached(d, 8)
			t.Cleanup(func() { c.Close() })
			return c
		},
	}
}

// TestBackendConformance drives every backend through the Get/Put/Delete/
// List contract.
func TestBackendConformance(t *testing.T) {
	for name, build := range testBackends(t) {
		t.Run(name, func(t *testing.T) {
			b := build()
			addr1, addr2 := Addr("key-one"), Addr("key-two")

			if _, err := b.Get(addr1); !errors.Is(err, ErrNotFound) {
				t.Fatalf("Get(absent) = %v, want ErrNotFound", err)
			}
			if err := b.Delete(addr1); err != nil {
				t.Fatalf("Delete(absent) = %v, want nil", err)
			}
			if err := b.Put(addr1, []byte("v1")); err != nil {
				t.Fatal(err)
			}
			if err := b.Put(addr2, []byte("v2")); err != nil {
				t.Fatal(err)
			}
			if got, err := b.Get(addr1); err != nil || string(got) != "v1" {
				t.Fatalf("Get = %q, %v", got, err)
			}
			if err := b.Put(addr1, []byte("v1b")); err != nil { // overwrite
				t.Fatal(err)
			}
			if got, _ := b.Get(addr1); string(got) != "v1b" {
				t.Fatalf("overwrite lost: got %q", got)
			}
			addrs, err := b.List()
			if err != nil {
				t.Fatal(err)
			}
			sort.Strings(addrs)
			want := []string{addr1, addr2}
			sort.Strings(want)
			if len(addrs) != 2 || addrs[0] != want[0] || addrs[1] != want[1] {
				t.Fatalf("List = %v, want %v", addrs, want)
			}
			if err := b.Delete(addr1); err != nil {
				t.Fatal(err)
			}
			if _, err := b.Get(addr1); !errors.Is(err, ErrNotFound) {
				t.Fatalf("Get(deleted) = %v, want ErrNotFound", err)
			}
			if f, ok := b.(flusher); ok {
				if err := f.Flush(); err != nil {
					t.Fatal(err)
				}
			}
			entries, bytes, err := Usage(b)
			if err != nil {
				t.Fatal(err)
			}
			if entries != 1 || bytes <= 0 {
				t.Fatalf("Usage = %d entries / %d bytes, want 1 entry", entries, bytes)
			}
		})
	}
}

// TestShardedRouting asserts every address resolves to exactly one shard,
// stably, and that the composite reads back what it wrote from the owning
// child only.
func TestShardedRouting(t *testing.T) {
	names := []string{"a", "b", "c", "d"}
	kids := make([]Backend, len(names))
	mems := make([]*Mem, len(names))
	for i := range kids {
		mems[i] = NewMem()
		kids[i] = mems[i]
	}
	s, err := NewSharded(names, kids)
	if err != nil {
		t.Fatal(err)
	}
	perShard := map[string]int{}
	for i := 0; i < 500; i++ {
		addr := Addr(fmt.Sprintf("key-%d", i))
		if err := s.Put(addr, []byte("x")); err != nil {
			t.Fatal(err)
		}
		owner := s.Shard(addr)
		perShard[owner]++
		// The blob must live on exactly the owning child.
		found := 0
		for i, n := range names {
			if _, err := mems[i].Get(addr); err == nil {
				found++
				if n != owner {
					t.Fatalf("addr %s stored on %s, owner is %s", addr, n, owner)
				}
			}
		}
		if found != 1 {
			t.Fatalf("addr %s present on %d shards", addr, found)
		}
	}
	for _, n := range names {
		if perShard[n] == 0 {
			t.Fatalf("shard %s received no entries: %v", n, perShard)
		}
	}
}

// TestCachedWriteBack asserts the write-back contract: a Put is visible to
// Get and List immediately, and lands durably in the backing store by
// Flush.
func TestCachedWriteBack(t *testing.T) {
	back := NewMem()
	c := NewCached(back, 4)
	defer c.Close()
	addr := Addr("wb")
	if err := c.Put(addr, []byte("hello")); err != nil {
		t.Fatal(err)
	}
	if got, err := c.Get(addr); err != nil || string(got) != "hello" {
		t.Fatalf("Get after Put = %q, %v", got, err)
	}
	addrs, err := c.List()
	if err != nil {
		t.Fatal(err)
	}
	if len(addrs) != 1 || addrs[0] != addr {
		t.Fatalf("List after Put = %v", addrs)
	}
	if err := c.Flush(); err != nil {
		t.Fatal(err)
	}
	if got, err := back.Get(addr); err != nil || string(got) != "hello" {
		t.Fatalf("backing after Flush = %q, %v", got, err)
	}
}

// TestCachedReadThroughAndEviction: a backing entry populates the memory
// tier on first Get, and clean entries are evicted at capacity while
// remaining servable from the backing store.
func TestCachedReadThroughAndEviction(t *testing.T) {
	back := NewMem()
	for i := 0; i < 10; i++ {
		back.Put(Addr(fmt.Sprintf("k%d", i)), []byte(fmt.Sprintf("v%d", i)))
	}
	c := NewCached(back, 4)
	defer c.Close()
	for i := 0; i < 10; i++ {
		got, err := c.Get(Addr(fmt.Sprintf("k%d", i)))
		if err != nil || string(got) != fmt.Sprintf("v%d", i) {
			t.Fatalf("read-through k%d = %q, %v", i, got, err)
		}
	}
	c.mu.Lock()
	n := len(c.entries)
	c.mu.Unlock()
	if n > 4 {
		t.Fatalf("cache holds %d entries, capacity 4", n)
	}
	// Everything is still servable (from backing after eviction).
	for i := 0; i < 10; i++ {
		if _, err := c.Get(Addr(fmt.Sprintf("k%d", i))); err != nil {
			t.Fatalf("post-eviction Get k%d: %v", i, err)
		}
	}
}

// TestCachedConcurrent hammers the tier from several goroutines so the
// race detector can chew on the flusher/accessor interleavings.
func TestCachedConcurrent(t *testing.T) {
	c := NewCached(NewMem(), 16)
	defer c.Close()
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				addr := Addr(fmt.Sprintf("k%d", i%32))
				switch i % 3 {
				case 0:
					c.Put(addr, []byte(fmt.Sprintf("g%d-%d", g, i)))
				case 1:
					c.Get(addr)
				default:
					c.List()
				}
			}
		}(g)
	}
	wg.Wait()
	if err := c.Flush(); err != nil {
		t.Fatal(err)
	}
}

// TestStoreOverShardedCached runs the full Store envelope logic over the
// scaled-out composition and confirms cross-handle visibility: a second
// Store over the same shard directories (a different coordinator process)
// sees entries the first one flushed.
func TestStoreOverShardedCached(t *testing.T) {
	root := t.TempDir()
	dirs := []string{filepath.Join(root, "s0"), filepath.Join(root, "s1")}
	st, err := OpenSharded(dirs, 64)
	if err != nil {
		t.Fatal(err)
	}
	type payload struct{ N int }
	for i := 0; i < 20; i++ {
		if err := st.Put(fmt.Sprintf("cell-%d", i), payload{N: i}); err != nil {
			t.Fatal(err)
		}
	}
	if err := st.Flush(); err != nil {
		t.Fatal(err)
	}
	// A second process's handle over the same shards.
	st2, err := OpenSharded(dirs, 0)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 20; i++ {
		var p payload
		hit, err := st2.Get(fmt.Sprintf("cell-%d", i), &p)
		if err != nil || !hit || p.N != i {
			t.Fatalf("cross-handle get cell-%d: hit=%v p=%+v err=%v", i, hit, p, err)
		}
	}
	// Both shard directories must actually hold entries.
	for _, d := range dirs {
		dir, err := NewDir(d)
		if err != nil {
			t.Fatal(err)
		}
		n, _, err := dir.Usage()
		if err != nil {
			t.Fatal(err)
		}
		if n == 0 {
			t.Fatalf("shard %s holds no entries — routing sent everything elsewhere", d)
		}
	}
}
