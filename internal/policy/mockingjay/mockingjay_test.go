package mockingjay

import (
	"testing"

	"drishti/internal/fabric"
	"drishti/internal/mem"
	"drishti/internal/noc"
	"drishti/internal/repl"
	"drishti/internal/sampler"
	"drishti/internal/stats"
)

func build(t *testing.T, placement fabric.Placement, sets, ways, slices int) (*Shared, []*Slice) {
	t.Helper()
	fab, err := fabric.New(fabric.Config{
		Placement: placement,
		Slices:    slices,
		Cores:     slices,
		Mesh:      noc.NewMesh(slices, 4, 2),
		Star:      noc.NewStar(slices, 3),
	})
	if err != nil {
		t.Fatal(err)
	}
	cfg := Config{Sets: sets, Ways: ways, Slices: slices, Cores: slices, SampledSets: sets}
	sh, err := NewShared(cfg, fab)
	if err != nil {
		t.Fatal(err)
	}
	var ps []*Slice
	for i := 0; i < slices; i++ {
		sel := sampler.NewStatic(sets, sets, stats.NewRand(uint64(i)))
		ps = append(ps, NewSlice(sh, i, sel))
	}
	return sh, ps
}

func load(pc, block uint64) repl.Access {
	return repl.Access{PC: pc, Block: block, Type: mem.Load}
}

func TestConfigDefaults(t *testing.T) {
	c := Config{Ways: 16}.Normalize()
	if c.SampledSets != 32 || c.RDPEntries != 2048 || c.Granularity != 8 {
		t.Fatalf("defaults %+v", c)
	}
	if c.MaxRD != 8*16*8 {
		t.Fatalf("MaxRD %d", c.MaxRD)
	}
}

func TestLearnsReuseDistance(t *testing.T) {
	sh, ps := build(t, fabric.Local, 4, 4, 1)
	p := ps[0]
	pc := uint64(0x100)
	// Block 4 (set 0) reused every 3 sampled accesses.
	for i := 0; i < 60; i++ {
		p.OnAccess(0, load(pc, 4), i > 0)
		p.OnAccess(0, load(0x200, uint64(1000+i)*4), false)
		p.OnAccess(0, load(0x300, uint64(5000+i)*4), false)
	}
	sig := sh.index(pc, 0, false)
	rd, trained, _ := sh.predict(0, repl.Access{}, sig)
	if !trained {
		t.Fatal("PC untrained after 60 reuses")
	}
	if rd < 1 || rd > 12 {
		t.Fatalf("learned rd %d, want ≈3", rd)
	}
}

func TestLearnsInfForNoReuse(t *testing.T) {
	sh, ps := build(t, fabric.Local, 4, 2, 1)
	p := ps[0]
	scanPC := uint64(0xBAD)
	for i := uint64(0); i < 200; i++ {
		p.OnAccess(0, load(scanPC, i*4), false)
	}
	sig := sh.index(scanPC, 0, false)
	rd, trained, _ := sh.predict(0, repl.Access{}, sig)
	if !trained || rd != InfRD {
		t.Fatalf("scan PC rd=%d trained=%v, want INF", rd, trained)
	}
}

func TestVictimEvictsFurthestReuse(t *testing.T) {
	_, ps := build(t, fabric.Local, 2, 3, 1)
	p := ps[0]
	p.etr[p.idx(0, 0)], p.etrValid[p.idx(0, 0)] = 2, true
	p.etr[p.idx(0, 1)], p.etrValid[p.idx(0, 1)] = 90, true
	p.etr[p.idx(0, 2)], p.etrValid[p.idx(0, 2)] = -5, true
	if v := p.Victim(0, repl.Access{Type: mem.Writeback}); v != 1 {
		t.Fatalf("victim %d, want the ETR-90 way", v)
	}
}

func TestVictimTiePrefersOverdue(t *testing.T) {
	_, ps := build(t, fabric.Local, 2, 2, 1)
	p := ps[0]
	p.etr[p.idx(0, 0)], p.etrValid[p.idx(0, 0)] = 50, true
	p.etr[p.idx(0, 1)], p.etrValid[p.idx(0, 1)] = -50, true
	if v := p.Victim(0, repl.Access{Type: mem.Writeback}); v != 1 {
		t.Fatalf("victim %d, want the overdue way", v)
	}
}

func TestScanBypass(t *testing.T) {
	sh, ps := build(t, fabric.Local, 4, 2, 1)
	p := ps[0]
	scanPC := uint64(0xBAD)
	for i := uint64(0); i < 300; i++ {
		p.OnAccess(0, load(scanPC, i*4), false)
	}
	// Resident lines expect near reuse.
	p.etr[p.idx(0, 0)], p.etrValid[p.idx(0, 0)] = 1, true
	p.etr[p.idx(0, 1)], p.etrValid[p.idx(0, 1)] = 2, true
	sig := sh.index(scanPC, 0, false)
	if rd, _, _ := sh.predict(0, repl.Access{}, sig); rd != InfRD {
		t.Skip("scan not yet INF-trained; bypass untestable")
	}
	if v := p.Victim(0, load(scanPC, 9999)); v != repl.Bypass {
		t.Fatalf("INF-predicted demand fill into a hot set returned way %d, want bypass", v)
	}
	if p.Bypasses == 0 {
		t.Fatal("bypass not counted")
	}
}

func TestAgingDecrementsETR(t *testing.T) {
	sh, ps := build(t, fabric.Local, 2, 2, 1)
	_ = sh
	p := ps[0]
	p.etr[p.idx(0, 0)], p.etrValid[p.idx(0, 0)] = 10, true
	for i := 0; i < p.shared.cfg.Granularity; i++ {
		p.ageSet(0)
	}
	if p.etr[p.idx(0, 0)] != 9 {
		t.Fatalf("ETR after one granularity period: %d, want 9", p.etr[p.idx(0, 0)])
	}
}

func TestWritebackFillsGetLowestPriority(t *testing.T) {
	_, ps := build(t, fabric.Local, 2, 2, 1)
	p := ps[0]
	p.OnFill(0, 0, repl.Access{Block: 4, Type: mem.Writeback})
	p.etr[p.idx(0, 1)], p.etrValid[p.idx(0, 1)] = 3, true
	if v := p.Victim(0, repl.Access{Type: mem.Writeback}); v != 0 {
		t.Fatalf("victim %d, want the writeback-filled way", v)
	}
}

func TestUntrainedDefaultMidPriority(t *testing.T) {
	_, ps := build(t, fabric.Local, 2, 2, 1)
	p := ps[0]
	p.OnFill(0, 0, load(0xFEED, 4))
	d := p.etr[p.idx(0, 0)]
	max := int16(p.shared.cfg.MaxRD / p.shared.cfg.Granularity)
	if d <= 0 || d >= max {
		t.Fatalf("untrained fill ETR %d, want strictly between 0 and %d", d, max)
	}
}

func TestGlobalViewSharedAcrossSlices(t *testing.T) {
	sh, ps := build(t, fabric.PerCoreGlobal, 4, 2, 2)
	scanPC := uint64(0xF00)
	for i := uint64(0); i < 300; i++ {
		ps[0].OnAccess(0, load(scanPC, i*4), false) // core 0 traffic at slice 0
	}
	// Slice 1 predicting for core 0 must see the training.
	sig := sh.index(scanPC, 0, false)
	rd, trained, _ := sh.predict(1, repl.Access{Core: 0}, sig)
	if !trained || rd != InfRD {
		t.Fatalf("global view not shared: rd=%d trained=%v", rd, trained)
	}
}

func TestPeekMatchesPredict(t *testing.T) {
	sh, ps := build(t, fabric.Local, 4, 2, 1)
	pc := uint64(0x42)
	for i := uint64(0); i < 200; i++ {
		ps[0].OnAccess(0, load(pc, i*4), false)
	}
	rdPeek, trainedPeek := sh.Peek(0, pc, 0)
	sig := sh.index(pc, 0, false)
	rdPred, trainedPred, _ := sh.predict(0, repl.Access{}, sig)
	if rdPeek != rdPred || trainedPeek != trainedPred {
		t.Fatal("Peek disagrees with predict")
	}
}

func TestBudgetDirection(t *testing.T) {
	cfg := Config{Sets: 2048, Ways: 16, Slices: 32, Cores: 32}
	sum := func(m map[string]int) int {
		t := 0
		for _, v := range m {
			t += v
		}
		return t
	}
	if sum(Budget(cfg, 16, true)) >= sum(Budget(cfg, 32, false)) {
		t.Fatal("Drishti must reduce Mockingjay's per-core storage (Table 3)")
	}
}
