// Package mockingjay implements the Mockingjay LLC replacement policy (Shah,
// Jain & Lin, HPCA'22): Belady emulation generalized to multi-class reuse —
// a reuse-distance predictor (RDP) drives per-line Estimated Time Remaining
// (ETR) counters, and the victim is the line whose reuse is furthest away.
//
// Like the hawkeye package, the implementation is slice-aware: RDP tables
// are banked through a fabric.Fabric (baseline Mockingjay = local banks,
// D-Mockingjay = per-core-yet-global banks over NOCSTAR), and sampled sets
// come from a sampler.SetSelector.
package mockingjay

import (
	"fmt"

	"drishti/internal/fabric"
	"drishti/internal/mem"
	"drishti/internal/repl"
	"drishti/internal/sampler"
)

// Config sizes Mockingjay for one LLC slice population.
type Config struct {
	Sets        int
	Ways        int
	Slices      int
	Cores       int
	SampledSets int // per slice (paper: 32 baseline, 16 with Drishti)
	RDPEntries  int // per bank (default 2048)
	Granularity int // ETR clock granularity in set accesses (default 8)
	MaxRD       int // reuse distances at/above this train as INF
}

// Normalize fills defaults.
func (c Config) Normalize() Config {
	if c.SampledSets == 0 {
		c.SampledSets = 32
	}
	if c.RDPEntries == 0 {
		c.RDPEntries = 2048
	}
	if c.Granularity == 0 {
		c.Granularity = 8
	}
	if c.MaxRD == 0 {
		c.MaxRD = 8 * c.Ways * c.Granularity
	}
	return c
}

// Validate reports configuration errors.
func (c Config) Validate() error {
	if c.Sets <= 0 || c.Ways <= 0 || c.Slices <= 0 || c.Cores <= 0 {
		return fmt.Errorf("mockingjay: geometry must be positive: %+v", c)
	}
	if c.SampledSets > c.Sets {
		return fmt.Errorf("mockingjay: %d sampled sets exceed %d sets", c.SampledSets, c.Sets)
	}
	if c.RDPEntries&(c.RDPEntries-1) != 0 {
		return fmt.Errorf("mockingjay: RDP entries must be a power of two")
	}
	return nil
}

// InfRD is the sentinel predicted reuse distance for lines never reused
// within the modeled window.
const InfRD = int16(0x7fff)

// rdpEntry is one RDP slot: a predicted (scaled) reuse distance plus a
// trained bit.
type rdpEntry struct {
	rd      int16
	trained bool
}

// Shared holds the banked reuse-distance predictor.
type Shared struct {
	cfg  Config
	fab  *fabric.Fabric
	bank [][]rdpEntry
}

// NewShared allocates RDP banks for the given fabric placement.
func NewShared(cfg Config, fab *fabric.Fabric) (*Shared, error) {
	cfg = cfg.Normalize()
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	s := &Shared{cfg: cfg, fab: fab}
	s.bank = make([][]rdpEntry, fab.NumBanks())
	for i := range s.bank {
		s.bank[i] = make([]rdpEntry, cfg.RDPEntries)
	}
	return s, nil
}

// Config returns the normalized configuration.
func (s *Shared) Config() Config { return s.cfg }

// index hashes (PC, core, prefetch) into an RDP entry.
func (s *Shared) index(pc uint64, core int, prefetch bool) uint32 {
	h := pc*0x9e3779b97f4a7c15 ^ uint64(core)*0x94d049bb133111eb
	if prefetch {
		h ^= 0xbf58476d1ce4e5b9
	}
	h ^= h >> 31
	return uint32(h) & uint32(s.cfg.RDPEntries-1)
}

// train updates the RDP entry for sig toward the observed reuse distance
// using Mockingjay's saturating temporal-difference rule.
func (s *Shared) train(slice int, a repl.Access, sig uint32, observedRD int) {
	obs := int16(observedRD)
	if observedRD >= s.cfg.MaxRD {
		obs = InfRD
	}
	for _, b := range s.fab.TrainBanks(slice, a.Core, a.Cycle) {
		e := &s.bank[b][sig]
		switch {
		case !e.trained:
			e.rd = obs
			e.trained = true
		case obs == InfRD:
			// Scan evidence: move sharply toward INF.
			if e.rd > int16(s.cfg.MaxRD/2) {
				e.rd = InfRD
			} else {
				e.rd += int16(s.cfg.MaxRD / 4)
			}
		case e.rd == InfRD:
			// Evidence of reuse after an INF prediction: come back down.
			e.rd = int16(s.cfg.MaxRD/2) + obs/2
		default:
			diff := obs - e.rd
			step := diff / 4
			if step == 0 {
				if diff > 0 {
					step = 1
				} else if diff < 0 {
					step = -1
				}
			}
			e.rd += step
		}
	}
}

// predict returns the predicted reuse distance for sig from the bank serving
// (slice, core), whether the entry is trained, and the fill-path latency.
func (s *Shared) predict(slice int, a repl.Access, sig uint32) (rd int16, trained bool, lat uint32) {
	b, lat := s.fab.PredictBank(slice, a.Core, a.Cycle)
	e := s.bank[b][sig]
	return e.rd, e.trained, lat
}

// Peek reads the predicted (scaled) ETR value for a PC/core without traffic
// accounting — used by the Fig 3/18 ETR-view experiments.
func (s *Shared) Peek(bank int, pc uint64, core int) (rd int16, trained bool) {
	e := s.bank[bank][s.index(pc, core, false)]
	return e.rd, e.trained
}

// sampEntry is one sampled-cache line: the last PC to touch the block and
// the set-local timestamp of that touch.
type sampEntry struct {
	sig  uint32
	core uint16
	ts   uint32
}

// sampleSet tracks recent lines of one sampled set.
type sampleSet struct {
	entries map[uint64]*sampEntry
	time    uint32
}

func (ss *sampleSet) reset() {
	ss.entries = make(map[uint64]*sampEntry)
	ss.time = 0
}

// Slice is the Mockingjay instance for one LLC slice. It implements
// repl.Policy, repl.Observer, and repl.FillLatencier.
type Slice struct {
	shared  *Shared
	sliceID int
	sel     sampler.SetSelector
	selGen  uint64

	etr      []int16 // sets×ways, scaled by Granularity
	etrValid []bool
	lineRD   []int16  // fill-time predicted reuse distance per line
	setClock []uint16 // per-set access counter for ETR aging

	samples map[int]*sampleSet // keyed by set number
	penalty uint32

	// pending caches the predictor lookup made during victim selection so
	// the subsequent OnFill of the same block reuses it (one predictor
	// access per fill, as in the hardware design).
	pending struct {
		block   uint64
		rd      int16
		trained bool
		valid   bool
	}

	// ETRFillHist records predicted ETR values at fill (Fig 4 histograms);
	// populated only when CollectETR is set.
	CollectETR  bool
	ETRFills    []int16
	Bypasses    uint64
	InfPredicts uint64

	// Training-coverage stats: fills that consulted a trained vs untrained
	// RDP entry (the myopic effect shows up as a high untrained fraction).
	FillsTrained   uint64
	FillsUntrained uint64
}

// NewSlice builds the per-slice policy instance.
func NewSlice(shared *Shared, sliceID int, sel sampler.SetSelector) *Slice {
	cfg := shared.cfg
	p := &Slice{
		shared:   shared,
		sliceID:  sliceID,
		sel:      sel,
		selGen:   sel.Generation(),
		etr:      make([]int16, cfg.Sets*cfg.Ways),
		etrValid: make([]bool, cfg.Sets*cfg.Ways),
		lineRD:   make([]int16, cfg.Sets*cfg.Ways),
		setClock: make([]uint16, cfg.Sets),
		samples:  make(map[int]*sampleSet, sel.N()),
	}
	return p
}

// Name implements repl.Policy.
func (p *Slice) Name() string { return "mockingjay" }

// FillPenalty implements repl.FillLatencier.
func (p *Slice) FillPenalty() uint32 { return p.penalty }

func (p *Slice) idx(set, way int) int { return set*p.shared.cfg.Ways + way }

// maybeFlush drops sampled history for sets no longer sampled; sets that
// stay selected keep their entries (the hardware state remains valid).
func (p *Slice) maybeFlush() {
	if g := p.sel.Generation(); g != p.selGen {
		p.selGen = g
		for set := range p.samples {
			if _, ok := p.sel.IsSampled(set); !ok {
				delete(p.samples, set)
			}
		}
	}
}

// sampleCapacity bounds each sampled set's tracked lines; beyond this a
// line has aged past the modeled window and trains as never-reused.
func (p *Slice) sampleCapacity() int { return 8 * p.shared.cfg.Ways }

// OnAccess implements repl.Observer: sampled-cache reuse tracking.
func (p *Slice) OnAccess(set int, a repl.Access, hit bool) {
	if a.Type == mem.Writeback {
		return
	}
	if a.Type.IsDemand() {
		p.sel.OnAccess(set, hit)
	}
	p.maybeFlush()
	p.ageSet(set)
	if _, ok := p.sel.IsSampled(set); !ok {
		return
	}
	ss := p.samples[set]
	if ss == nil {
		ss = &sampleSet{}
		ss.reset()
		p.samples[set] = ss
	}
	sig := p.shared.index(a.PC, a.Core, a.Type == mem.Prefetch)
	if e, found := ss.entries[a.Block]; found {
		observed := int(ss.time - e.ts)
		p.shared.train(p.sliceID, repl.Access{Core: int(e.core), Cycle: a.Cycle}, e.sig, observed)
		e.sig, e.core, e.ts = sig, uint16(a.Core), ss.time
	} else {
		if len(ss.entries) >= p.sampleCapacity() {
			p.evictOldest(ss, a)
		}
		ss.entries[a.Block] = &sampEntry{sig: sig, core: uint16(a.Core), ts: ss.time}
	}
	ss.time++
}

// evictOldest drops the LRU sampled entry and trains its PC as not-reused
// (INFINITE reuse distance, Section 2).
func (p *Slice) evictOldest(ss *sampleSet, a repl.Access) {
	var (
		oldBlock uint64
		oldEnt   *sampEntry
	)
	for blk, e := range ss.entries {
		if oldEnt == nil || ss.time-e.ts > ss.time-oldEnt.ts {
			oldBlock, oldEnt = blk, e
		}
	}
	delete(ss.entries, oldBlock)
	p.shared.train(p.sliceID, repl.Access{Core: int(oldEnt.core), Cycle: a.Cycle}, oldEnt.sig, p.shared.cfg.MaxRD)
}

// ageSet decrements every line's ETR once per Granularity accesses to the
// set — the "clock" that turns predicted reuse distances into estimated
// time remaining.
func (p *Slice) ageSet(set int) {
	p.setClock[set]++
	if int(p.setClock[set]) < p.shared.cfg.Granularity {
		return
	}
	p.setClock[set] = 0
	base := set * p.shared.cfg.Ways
	for w := 0; w < p.shared.cfg.Ways; w++ {
		i := base + w
		if p.etrValid[i] && p.etr[i] > minETR {
			p.etr[i]--
		}
	}
}

// minETR floors aged ETRs: a very negative ETR means "long overdue".
const minETR = -127

// scaled converts a predicted reuse distance into an ETR counter value.
func (p *Slice) scaled(rd int16) int16 {
	if rd == InfRD {
		return int16(p.shared.cfg.MaxRD/p.shared.cfg.Granularity) + 1
	}
	return rd / int16(p.shared.cfg.Granularity)
}

// OnHit implements repl.Policy: re-estimate the line's time remaining.
func (p *Slice) OnHit(set, way int, a repl.Access) {
	if a.Type == mem.Writeback {
		return
	}
	i := p.idx(set, way)
	sig := p.shared.index(a.PC, a.Core, a.Type == mem.Prefetch)
	rd, trained, _ := p.shared.predict(p.sliceID, a, sig)
	if !trained {
		rd = p.defaultRD()
	}
	p.etr[i] = p.scaled(rd)
	p.etrValid[i] = true
}

// DefaultRDDivisor tunes the reuse distance assumed for PCs the RDP has not
// seen: MaxRD/DefaultRDDivisor. Small divisors treat unknowns as近-scans;
// large divisors protect them.
var DefaultRDDivisor = 2

// defaultRD is the reuse distance assumed for PCs the RDP has not seen:
// a middle priority, so unknown lines neither pin the set (rd=0 would make
// them the last evicted) nor bypass.
func (p *Slice) defaultRD() int16 { return int16(p.shared.cfg.MaxRD / DefaultRDDivisor) }

// Victim implements repl.Policy: evict the line with the largest |ETR|
// (reuse furthest in the future or most overdue). A demand fill whose own
// prediction is INF bypasses when every resident line is expected sooner.
func (p *Slice) Victim(set int, a repl.Access) int {
	base := set * p.shared.cfg.Ways
	ways := p.shared.cfg.Ways
	maxW, maxAbs := 0, int16(-1)
	for w := 0; w < ways; w++ {
		i := base + w
		if !p.etrValid[i] {
			return w
		}
		abs := p.etr[i]
		if abs < 0 {
			abs = -abs
		}
		// Ties prefer the more-negative (overdue) line.
		if abs > maxAbs || (abs == maxAbs && p.etr[i] < p.etr[base+maxW]) {
			maxW, maxAbs = w, abs
		}
	}
	if a.Type.IsDemand() || a.Type == mem.Prefetch {
		sig := p.shared.index(a.PC, a.Core, a.Type == mem.Prefetch)
		rd, trained, lat := p.shared.predict(p.sliceID, a, sig)
		p.penalty = lat
		p.pending.block, p.pending.rd, p.pending.trained, p.pending.valid = a.Block, rd, trained, true
		if trained && rd == InfRD {
			p.InfPredicts++
			incoming := p.scaled(rd)
			if incoming > maxAbs {
				p.Bypasses++
				return repl.Bypass
			}
		}
	}
	return maxW
}

// OnEvict implements repl.Policy.
func (p *Slice) OnEvict(set, way int, _ uint64) {
	i := p.idx(set, way)
	p.etrValid[i] = false
}

// OnFill implements repl.Policy: install with the predicted ETR.
func (p *Slice) OnFill(set, way int, a repl.Access) {
	i := p.idx(set, way)
	if a.Type == mem.Writeback {
		// Dirty fills get the lowest priority: maximum time-remaining.
		p.lineRD[i] = int16(p.shared.cfg.MaxRD)
		p.etr[i] = int16(p.shared.cfg.MaxRD/p.shared.cfg.Granularity) + 1
		p.etrValid[i] = true
		p.penalty = 0
		return
	}
	var (
		rd      int16
		trained bool
	)
	if p.pending.valid && p.pending.block == a.Block {
		rd, trained = p.pending.rd, p.pending.trained
		p.pending.valid = false
	} else {
		sig := p.shared.index(a.PC, a.Core, a.Type == mem.Prefetch)
		var lat uint32
		rd, trained, lat = p.shared.predict(p.sliceID, a, sig)
		p.penalty = lat
	}
	if trained {
		p.FillsTrained++
	} else {
		p.FillsUntrained++
		rd = p.defaultRD()
	}
	p.lineRD[i] = rd
	p.etr[i] = p.scaled(rd)
	p.etrValid[i] = true
	if p.CollectETR {
		p.ETRFills = append(p.ETRFills, p.etr[i])
	}
}

// Budget reports per-core storage in bytes, following Table 3's hardware
// entry sizes: the 32-set sampled cache costs 9.41 KB (≈301 B/set), the
// 2K-entry 7-bit RDP 1.75 KB, and ETR state 20.75 KB for a 2048×16 slice
// (5-bit ETR per line plus a 3-bit clock per set).
func Budget(cfg Config, sampledSets int, dynamic bool) map[string]int {
	cfg = cfg.Normalize()
	out := map[string]int{
		"sampled-cache": 9637 * sampledSets / 32, // 9.41 KB at 32 sets
		"predictor":     cfg.RDPEntries * 7 / 8,
		"etr-counters":  cfg.Sets*cfg.Ways*5/8 + cfg.Sets*3/8,
	}
	if dynamic {
		out["saturating-counters"] = cfg.Sets
	}
	return out
}
