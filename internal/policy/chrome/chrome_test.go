package chrome

import (
	"testing"

	"drishti/internal/fabric"
	"drishti/internal/mem"
	"drishti/internal/repl"
	"drishti/internal/sampler"
	"drishti/internal/stats"
)

func build(t *testing.T, sets, ways int) (*Shared, *Slice) {
	t.Helper()
	fab := fabric.MustNew(fabric.Config{Placement: fabric.Local, Slices: 1, Cores: 1})
	cfg := Config{Sets: sets, Ways: ways, Slices: 1, Cores: 1}
	sh, err := NewShared(cfg, fab, stats.NewRand(3))
	if err != nil {
		t.Fatal(err)
	}
	sel := sampler.NewStatic(sets, sets, stats.NewRand(1))
	return sh, NewSlice(sh, 0, sel)
}

func load(pc, block uint64) repl.Access {
	return repl.Access{PC: pc, Block: block, Type: mem.Load}
}

func TestRewardShiftsQ(t *testing.T) {
	sh, _ := build(t, 4, 2)
	st := sh.state(0x100, 0, 0)
	q0 := sh.q[0][st][actInsertMRU]
	sh.learn(0, repl.Access{}, st, actInsertMRU, rewardHit)
	if sh.q[0][st][actInsertMRU] <= q0 {
		t.Fatal("positive reward did not raise Q")
	}
	sh.learn(0, repl.Access{}, st, actInsertLRU, rewardDead)
	if sh.q[0][st][actInsertLRU] >= 0 {
		t.Fatal("negative reward did not lower Q")
	}
}

func TestAgentLearnsToProtectReusedPC(t *testing.T) {
	_, p := build(t, 4, 4)
	pc := uint64(0x42)
	// Repeated fill-then-hit experience: the hit reward reinforces
	// whatever insertion the agent chose.
	for i := 0; i < 500; i++ {
		way := p.Victim(0, load(pc, 4))
		if way == repl.Bypass {
			continue
		}
		p.OnFill(0, way, load(pc, 4))
		p.OnHit(0, way, load(pc, 4))
	}
	// The dominant action for this state must now be a caching one with
	// positive value.
	st := p.shared.state(pc, 0, p.pressure(0))
	q := p.shared.q[0][st]
	best, bestV := 0, q[0]
	for a := 1; a < numActions; a++ {
		if q[a] > bestV {
			best, bestV = a, q[a]
		}
	}
	if best == actBypass || bestV <= 0 {
		t.Fatalf("agent did not learn to cache a reused PC: best=%d q=%v", best, q)
	}
}

func TestDeadLinesPunished(t *testing.T) {
	_, p := build(t, 4, 2)
	pc := uint64(0xDead)
	for i := 0; i < 300; i++ {
		way := p.Victim(0, load(pc, uint64(i)))
		if way == repl.Bypass {
			continue
		}
		p.OnFill(0, way, load(pc, uint64(i)))
		p.OnEvict(0, way, uint64(i)) // evicted un-reused
	}
	st := p.shared.state(pc, 0, p.pressure(0))
	q := p.shared.q[0][st]
	if q[actInsertMRU] > 0 {
		t.Fatalf("MRU insertion still positive for dead PC: %v", q)
	}
}

func TestVictimRange(t *testing.T) {
	_, p := build(t, 8, 4)
	for i := 0; i < 500; i++ {
		v := p.Victim(i%8, load(uint64(i), uint64(i*64)))
		if v != repl.Bypass && (v < 0 || v >= 4) {
			t.Fatalf("victim %d", v)
		}
	}
}

func TestWritebackPath(t *testing.T) {
	_, p := build(t, 4, 2)
	p.OnFill(0, 0, repl.Access{Block: 4, Type: mem.Writeback})
	if p.rrpv[p.idx(0, 0)] != 3 {
		t.Fatal("writeback fill should be distant")
	}
	// Writeback victim selection must not consult the agent.
	if v := p.Victim(0, repl.Access{Type: mem.Writeback}); v == repl.Bypass {
		t.Fatal("writeback bypassed")
	}
}

func TestDeterministicWithSeed(t *testing.T) {
	_, p1 := build(t, 4, 2)
	_, p2 := build(t, 4, 2)
	for i := 0; i < 200; i++ {
		a := load(uint64(i%7), uint64(i*64))
		v1 := p1.Victim(0, a)
		v2 := p2.Victim(0, a)
		if v1 != v2 {
			t.Fatalf("ε-greedy diverged at step %d", i)
		}
		if v1 != repl.Bypass {
			p1.OnFill(0, v1, a)
			p2.OnFill(0, v2, a)
		}
	}
}
