// Package chrome implements a CHROME-lite online reinforcement-learning
// replacement policy (after Lu et al., HPCA'24): a tabular SARSA agent
// chooses the insertion priority (or bypass) for each fill from a state
// built from the fill's PC signature and the set's pressure, and is
// rewarded by subsequent hits and punished by dead evictions.
//
// The published CHROME adds concurrency (pure-miss) features; this lite
// version keeps the PC/set-pressure state space, which is the part Drishti
// interacts with: the Q-table is a PC-indexed structure banked through a
// fabric.Fabric, and experience comes from sampled sets via a
// sampler.SetSelector, so D-CHROME is the same code re-wired (Table 8).
package chrome

import (
	"fmt"

	"drishti/internal/fabric"
	"drishti/internal/mem"
	"drishti/internal/repl"
	"drishti/internal/sampler"
	"drishti/internal/stats"
)

// Config sizes CHROME for one LLC slice population.
type Config struct {
	Sets       int
	Ways       int
	Slices     int
	Cores      int
	PCBuckets  int  // PC-signature states per bank (default 1024)
	Epsilon    int  // exploration: 1-in-Epsilon random action (default 64)
	LearnShift uint // learning rate = 1/2^LearnShift (default 3)
}

// Normalize fills defaults.
func (c Config) Normalize() Config {
	if c.PCBuckets == 0 {
		c.PCBuckets = 1024
	}
	if c.Epsilon == 0 {
		c.Epsilon = 64
	}
	if c.LearnShift == 0 {
		c.LearnShift = 3
	}
	return c
}

// Validate reports configuration errors.
func (c Config) Validate() error {
	if c.Sets <= 0 || c.Ways <= 0 || c.Slices <= 0 || c.Cores <= 0 {
		return fmt.Errorf("chrome: geometry must be positive: %+v", c)
	}
	if c.PCBuckets&(c.PCBuckets-1) != 0 {
		return fmt.Errorf("chrome: PC buckets must be a power of two")
	}
	return nil
}

// Actions the agent can take on a fill.
const (
	actInsertMRU = iota
	actInsertMid
	actInsertLRU
	actBypass
	numActions
)

// pressure buckets: how full of recently-used lines the set is.
const numPressure = 4

// qValue is fixed-point Q (<<8).
type qValue int32

const (
	rewardHit         = 256  // +1.0
	rewardDead        = -256 // -1.0
	rewardBypassSaved = 64   // small reward for a bypass later proven right
)

// Shared holds the banked Q-tables.
type Shared struct {
	cfg Config
	fab *fabric.Fabric
	// bank × (pcBucket × pressure) × action
	q   [][]([numActions]qValue)
	rnd *stats.Rand
}

// NewShared allocates Q-table banks.
func NewShared(cfg Config, fab *fabric.Fabric, rnd *stats.Rand) (*Shared, error) {
	cfg = cfg.Normalize()
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	s := &Shared{cfg: cfg, fab: fab, rnd: rnd}
	states := cfg.PCBuckets * numPressure
	s.q = make([][]([numActions]qValue), fab.NumBanks())
	for i := range s.q {
		s.q[i] = make([]([numActions]qValue), states)
	}
	return s, nil
}

// Config returns the normalized configuration.
func (s *Shared) Config() Config { return s.cfg }

func (s *Shared) state(pc uint64, core, pressure int) uint32 {
	h := pc*0x9e3779b97f4a7c15 ^ uint64(core)*0xd6e8feb86659fd93
	h ^= h >> 33
	bucket := uint32(h) & uint32(s.cfg.PCBuckets-1)
	return bucket*numPressure + uint32(pressure)
}

// choose picks an action ε-greedily from the bank serving (slice, core).
func (s *Shared) choose(slice int, a repl.Access, state uint32) (action int, lat uint32) {
	b, lat := s.fab.PredictBank(slice, a.Core, a.Cycle)
	if s.rnd.Intn(s.cfg.Epsilon) == 0 {
		return s.rnd.Intn(numActions), lat
	}
	q := &s.q[b][state]
	best, bestQ := 0, q[0]
	for i := 1; i < numActions; i++ {
		if q[i] > bestQ {
			best, bestQ = i, q[i]
		}
	}
	return best, lat
}

// learn applies a reward to (state, action) in every bank the fabric
// routes this experience to.
func (s *Shared) learn(slice int, a repl.Access, state uint32, action int, reward int32) {
	for _, b := range s.fab.TrainBanks(slice, a.Core, a.Cycle) {
		q := &s.q[b][state]
		q[action] += qValue((reward - int32(q[action])) >> s.cfg.LearnShift)
	}
}

// lineState remembers the experience that inserted each line.
type lineState struct {
	state   uint32
	action  int
	core    uint16
	reused  bool
	sampled bool
}

// Slice is the CHROME instance for one LLC slice.
type Slice struct {
	shared  *Shared
	sliceID int
	sel     sampler.SetSelector

	rrpv    []uint8
	lines   []lineState
	penalty uint32

	// pending caches the action chosen during victim selection so OnFill
	// reuses it (one Q-table access per fill).
	pendingState  uint32
	pendingAction int
	pendingValid  bool
}

// NewSlice builds the per-slice policy instance.
func NewSlice(shared *Shared, sliceID int, sel sampler.SetSelector) *Slice {
	cfg := shared.cfg
	p := &Slice{
		shared:  shared,
		sliceID: sliceID,
		sel:     sel,
		rrpv:    make([]uint8, cfg.Sets*cfg.Ways),
		lines:   make([]lineState, cfg.Sets*cfg.Ways),
	}
	for i := range p.rrpv {
		p.rrpv[i] = 3
	}
	return p
}

// Name implements repl.Policy.
func (p *Slice) Name() string { return "chrome" }

// FillPenalty implements repl.FillLatencier.
func (p *Slice) FillPenalty() uint32 { return p.penalty }

func (p *Slice) idx(set, way int) int { return set*p.shared.cfg.Ways + way }

// pressure buckets the set's recently-reused occupancy into [0,numPressure).
func (p *Slice) pressure(set int) int {
	base := set * p.shared.cfg.Ways
	hot := 0
	for w := 0; w < p.shared.cfg.Ways; w++ {
		if p.rrpv[base+w] == 0 {
			hot++
		}
	}
	return hot * (numPressure - 1) / p.shared.cfg.Ways
}

// OnAccess implements repl.Observer.
func (p *Slice) OnAccess(set int, a repl.Access, hit bool) {
	if a.Type.IsDemand() {
		p.sel.OnAccess(set, hit)
	}
}

// OnHit implements repl.Policy: reward the action that kept this line.
func (p *Slice) OnHit(set, way int, a repl.Access) {
	if a.Type == mem.Writeback {
		return
	}
	i := p.idx(set, way)
	p.rrpv[i] = 0
	ln := &p.lines[i]
	if ln.sampled && !ln.reused {
		ln.reused = true
		p.shared.learn(p.sliceID, a, ln.state, ln.action, rewardHit)
	}
}

// Victim implements repl.Policy: RRIP search; the agent decides bypass.
func (p *Slice) Victim(set int, a repl.Access) int {
	if a.Type.IsDemand() || a.Type == mem.Prefetch {
		st := p.shared.state(a.PC, a.Core, p.pressure(set))
		action, lat := p.shared.choose(p.sliceID, a, st)
		p.penalty = lat
		p.pendingState, p.pendingAction, p.pendingValid = st, action, true
		if action == actBypass {
			// Bypass learning: mildly positive — DRAM pressure avoided —
			// unless contradicted by later reuse, which sampled training
			// cannot see after a bypass; keep the reward small.
			if _, sampled := p.sel.IsSampled(set); sampled {
				p.shared.learn(p.sliceID, a, st, action, rewardBypassSaved)
			}
			return repl.Bypass
		}
	}
	base := set * p.shared.cfg.Ways
	for {
		for w := 0; w < p.shared.cfg.Ways; w++ {
			if p.rrpv[base+w] >= 3 {
				return w
			}
		}
		for w := 0; w < p.shared.cfg.Ways; w++ {
			p.rrpv[base+w]++
		}
	}
}

// OnEvict implements repl.Policy: dead lines punish their insertion action.
func (p *Slice) OnEvict(set, way int, _ uint64) {
	i := p.idx(set, way)
	ln := &p.lines[i]
	if ln.sampled && !ln.reused {
		a := repl.Access{Core: int(ln.core)}
		p.shared.learn(p.sliceID, a, ln.state, ln.action, rewardDead)
	}
	ln.sampled = false
}

// OnFill implements repl.Policy: place per the chosen action.
func (p *Slice) OnFill(set, way int, a repl.Access) {
	i := p.idx(set, way)
	if a.Type == mem.Writeback {
		p.rrpv[i] = 3
		p.lines[i] = lineState{}
		p.penalty = 0
		return
	}
	st, action := p.pendingState, p.pendingAction
	if !p.pendingValid {
		st = p.shared.state(a.PC, a.Core, p.pressure(set))
		var lat uint32
		action, lat = p.shared.choose(p.sliceID, a, st)
		p.penalty = lat
	}
	p.pendingValid = false
	_, sampled := p.sel.IsSampled(set)
	p.lines[i] = lineState{state: st, action: action, core: uint16(a.Core), sampled: sampled}
	switch action {
	case actInsertMRU:
		p.rrpv[i] = 0
	case actInsertMid:
		p.rrpv[i] = 2
	default:
		p.rrpv[i] = 3
	}
}

// Budget reports per-core storage in bytes.
func Budget(cfg Config, dynamic bool) map[string]int {
	cfg = cfg.Normalize()
	out := map[string]int{
		"q-table":       cfg.PCBuckets * numPressure * numActions * 2, // 16-bit Q
		"rrpv":          cfg.Sets * cfg.Ways * 2 / 8,
		"line-metadata": cfg.Sets * cfg.Ways * 3,
	}
	if dynamic {
		out["saturating-counters"] = cfg.Sets
	}
	return out
}
