// Package sdbp implements Sampling Dead Block Prediction (Khan, Tian &
// Jiménez, MICRO'10): a PC-indexed skewed predictor learns, from sampled
// sets, whether the load that last touched a block "killed" it (no further
// reuse before eviction). Predicted-dead lines become preferred victims and
// dead-on-arrival fills insert at distant priority.
//
// The predictor tables are banked through a fabric.Fabric and training data
// comes from a sampler.SetSelector, so D-SDBP (per-core-yet-global
// predictor + dynamic sampled cache) is the same code re-wired — the Table 7
// applicability row this package exists to demonstrate.
package sdbp

import (
	"fmt"

	"drishti/internal/fabric"
	"drishti/internal/mem"
	"drishti/internal/repl"
	"drishti/internal/sampler"
)

// Config sizes SDBP for one LLC slice population.
type Config struct {
	Sets        int
	Ways        int
	Slices      int
	Cores       int
	SampledSets int // per slice
	TableBits   int // log2 entries per skewed table (default 12)
}

// Normalize fills defaults.
func (c Config) Normalize() Config {
	if c.SampledSets == 0 {
		c.SampledSets = 64
	}
	if c.TableBits == 0 {
		c.TableBits = 12
	}
	return c
}

// Validate reports configuration errors.
func (c Config) Validate() error {
	if c.Sets <= 0 || c.Ways <= 0 || c.Slices <= 0 || c.Cores <= 0 {
		return fmt.Errorf("sdbp: geometry must be positive: %+v", c)
	}
	if c.TableBits < 4 || c.TableBits > 20 {
		return fmt.Errorf("sdbp: table bits %d out of range", c.TableBits)
	}
	return nil
}

const (
	numTables  = 3 // skewed predictor tables
	counterMax = 3 // 2-bit saturating counters per table
	// deadAt is the summed-counter threshold at/above which a PC's loads
	// are predicted to kill their block.
	deadAt = 6
)

// Shared holds the banked skewed predictor.
type Shared struct {
	cfg Config
	fab *fabric.Fabric
	// bank × table × entry
	tables [][][]uint8
}

// NewShared allocates predictor banks.
func NewShared(cfg Config, fab *fabric.Fabric) (*Shared, error) {
	cfg = cfg.Normalize()
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	s := &Shared{cfg: cfg, fab: fab}
	s.tables = make([][][]uint8, fab.NumBanks())
	for b := range s.tables {
		s.tables[b] = make([][]uint8, numTables)
		for t := range s.tables[b] {
			s.tables[b][t] = make([]uint8, 1<<cfg.TableBits)
		}
	}
	return s, nil
}

// Config returns the normalized configuration.
func (s *Shared) Config() Config { return s.cfg }

// indices computes the per-table skewed hash indices for (pc, core).
func (s *Shared) indices(pc uint64, core int) [numTables]uint32 {
	mask := uint32(1)<<s.cfg.TableBits - 1
	h := pc ^ uint64(core)*0x9e3779b97f4a7c15
	var out [numTables]uint32
	out[0] = uint32(h*0xff51afd7ed558ccd>>29) & mask
	out[1] = uint32(h*0xc4ceb9fe1a85ec53>>31) & mask
	out[2] = uint32(h*0x2545f4914f6cdd1d>>33) & mask
	return out
}

// train moves the skewed counters toward dead (true) or live (false).
func (s *Shared) train(slice int, a repl.Access, pc uint64, core int, dead bool) {
	idx := s.indices(pc, core)
	for _, b := range s.fab.TrainBanks(slice, a.Core, a.Cycle) {
		for t := 0; t < numTables; t++ {
			c := &s.tables[b][t][idx[t]]
			if dead {
				if *c < counterMax {
					*c++
				}
			} else if *c > 0 {
				*c--
			}
		}
	}
}

// predict sums the skewed counters; at/above threshold the block is dead.
func (s *Shared) predict(slice int, a repl.Access, pc uint64, core int) (dead bool, lat uint32) {
	b, lat := s.fab.PredictBank(slice, a.Core, a.Cycle)
	idx := s.indices(pc, core)
	sum := 0
	for t := 0; t < numTables; t++ {
		sum += int(s.tables[b][t][idx[t]])
	}
	return sum >= deadAt, lat
}

// lineState is SDBP's per-line metadata.
type lineState struct {
	pc      uint64
	core    uint16
	dead    bool // current prediction for this line
	reused  bool
	sampled bool
}

// Slice is the SDBP instance for one LLC slice; LRU base order with
// dead-block victim preference. Implements repl.Policy, repl.Observer,
// and repl.FillLatencier.
type Slice struct {
	shared  *Shared
	sliceID int
	sel     sampler.SetSelector

	stamps  []uint64
	clock   uint64
	lines   []lineState
	penalty uint32
}

// NewSlice builds the per-slice policy instance.
func NewSlice(shared *Shared, sliceID int, sel sampler.SetSelector) *Slice {
	cfg := shared.cfg
	return &Slice{
		shared:  shared,
		sliceID: sliceID,
		sel:     sel,
		stamps:  make([]uint64, cfg.Sets*cfg.Ways),
		lines:   make([]lineState, cfg.Sets*cfg.Ways),
	}
}

// Name implements repl.Policy.
func (p *Slice) Name() string { return "sdbp" }

// FillPenalty implements repl.FillLatencier.
func (p *Slice) FillPenalty() uint32 { return p.penalty }

func (p *Slice) idx(set, way int) int { return set*p.shared.cfg.Ways + way }

// OnAccess implements repl.Observer.
func (p *Slice) OnAccess(set int, a repl.Access, hit bool) {
	if a.Type.IsDemand() {
		p.sel.OnAccess(set, hit)
	}
}

// OnHit implements repl.Policy: the previous toucher did NOT kill the
// block — train live, re-predict for the new toucher.
func (p *Slice) OnHit(set, way int, a repl.Access) {
	if a.Type == mem.Writeback {
		return
	}
	i := p.idx(set, way)
	p.clock++
	p.stamps[i] = p.clock
	ln := &p.lines[i]
	if ln.sampled {
		p.shared.train(p.sliceID, a, ln.pc, int(ln.core), false)
	}
	ln.pc, ln.core, ln.reused = a.PC, uint16(a.Core), true
	// A reused line is alive again; the predictor is consulted only on
	// fills, keeping hits off the (possibly remote) predictor path.
	ln.dead = false
}

// Victim implements repl.Policy: prefer predicted-dead lines, else LRU.
func (p *Slice) Victim(set int, _ repl.Access) int {
	base := set * p.shared.cfg.Ways
	bestDead, bestLRU := -1, 0
	var deadStamp, lruStamp uint64
	for w := 0; w < p.shared.cfg.Ways; w++ {
		st := p.stamps[base+w]
		if p.lines[base+w].dead && (bestDead < 0 || st < deadStamp) {
			bestDead, deadStamp = w, st
		}
		if w == 0 || st < lruStamp {
			bestLRU, lruStamp = w, st
		}
	}
	if bestDead >= 0 {
		return bestDead
	}
	return bestLRU
}

// OnEvict implements repl.Policy: eviction without reuse trains dead.
func (p *Slice) OnEvict(set, way int, _ uint64) {
	i := p.idx(set, way)
	ln := &p.lines[i]
	if ln.sampled && !ln.reused && ln.pc != 0 {
		a := repl.Access{Core: int(ln.core)}
		p.shared.train(p.sliceID, a, ln.pc, int(ln.core), true)
	}
	p.lines[i] = lineState{}
}

// OnFill implements repl.Policy.
func (p *Slice) OnFill(set, way int, a repl.Access) {
	i := p.idx(set, way)
	p.clock++
	_, sampled := p.sel.IsSampled(set)
	if a.Type == mem.Writeback {
		p.stamps[i] = 0 // dirty fills at LRU position
		p.lines[i] = lineState{sampled: sampled}
		p.penalty = 0
		return
	}
	dead, lat := p.shared.predict(p.sliceID, a, a.PC, a.Core)
	p.penalty = lat
	if dead {
		p.stamps[i] = 0 // dead-on-arrival: immediate victim candidate
	} else {
		p.stamps[i] = p.clock
	}
	p.lines[i] = lineState{pc: a.PC, core: uint16(a.Core), dead: dead, sampled: sampled}
}

// Budget reports per-core storage in bytes.
func Budget(cfg Config, sampledSets int, dynamic bool) map[string]int {
	cfg = cfg.Normalize()
	out := map[string]int{
		"predictor":     numTables * (1 << cfg.TableBits) * 2 / 8,
		"line-metadata": cfg.Sets * cfg.Ways * 3,
	}
	if dynamic {
		out["saturating-counters"] = cfg.Sets
	}
	_ = sampledSets
	return out
}
