package sdbp

import (
	"testing"

	"drishti/internal/fabric"
	"drishti/internal/mem"
	"drishti/internal/repl"
	"drishti/internal/sampler"
	"drishti/internal/stats"
)

func build(t *testing.T, sets, ways int) (*Shared, *Slice) {
	t.Helper()
	fab := fabric.MustNew(fabric.Config{Placement: fabric.Local, Slices: 1, Cores: 1})
	cfg := Config{Sets: sets, Ways: ways, Slices: 1, Cores: 1, SampledSets: sets}
	sh, err := NewShared(cfg, fab)
	if err != nil {
		t.Fatal(err)
	}
	sel := sampler.NewStatic(sets, sets, stats.NewRand(1))
	return sh, NewSlice(sh, 0, sel)
}

func load(pc, block uint64) repl.Access {
	return repl.Access{PC: pc, Block: block, Type: mem.Load}
}

func TestDeadPCTraining(t *testing.T) {
	sh, p := build(t, 4, 2)
	pc := uint64(0xDEAD)
	for i := 0; i < 20; i++ {
		p.OnFill(0, 0, load(pc, uint64(i)*4))
		p.OnEvict(0, 0, 0)
	}
	if dead, _ := sh.predict(0, repl.Access{}, pc, 0); !dead {
		t.Fatal("killer PC not predicted dead")
	}
	// Dead-on-arrival fills take the LRU stamp.
	p.OnFill(0, 1, load(pc, 999))
	if p.stamps[p.idx(0, 1)] != 0 {
		t.Fatal("dead fill not placed at LRU")
	}
}

func TestLivePCTraining(t *testing.T) {
	sh, p := build(t, 4, 2)
	pc := uint64(0x11FE)
	for i := 0; i < 20; i++ {
		p.OnFill(0, 0, load(pc, 4))
		p.OnHit(0, 0, load(pc, 4))
	}
	if dead, _ := sh.predict(0, repl.Access{}, pc, 0); dead {
		t.Fatal("reused PC predicted dead")
	}
}

func TestVictimPrefersDead(t *testing.T) {
	_, p := build(t, 2, 2)
	p.stamps[p.idx(0, 0)] = 5
	p.stamps[p.idx(0, 1)] = 99
	p.lines[p.idx(0, 1)].dead = true
	if v := p.Victim(0, repl.Access{}); v != 1 {
		t.Fatalf("victim %d, want the dead line despite its recency", v)
	}
}

func TestVictimFallsBackToLRU(t *testing.T) {
	_, p := build(t, 2, 2)
	p.stamps[p.idx(0, 0)] = 5
	p.stamps[p.idx(0, 1)] = 3
	if v := p.Victim(0, repl.Access{}); v != 1 {
		t.Fatalf("victim %d, want LRU", v)
	}
}

func TestSkewedTablesDisagreeGracefully(t *testing.T) {
	sh, _ := build(t, 4, 2)
	// Indices for different PCs must not be systematically identical.
	a := sh.indices(0x400, 0)
	b := sh.indices(0x404, 0)
	if a == b {
		t.Fatal("skewed hash collision for adjacent PCs across all tables")
	}
}
