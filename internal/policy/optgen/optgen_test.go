package optgen

import (
	"testing"
	"testing/quick"
)

func TestShortReuseIsOptHit(t *testing.T) {
	s := NewSet(32, 4)
	s.Insert(100, Entry{TS: s.Time()})
	s.Advance()
	s.Advance()
	e, ok := s.Lookup(100)
	if !ok {
		t.Fatal("entry lost")
	}
	if !s.OptHit(e.TS) {
		t.Fatal("uncontended short reuse must be an OPT hit")
	}
}

func TestBeyondWindowIsMiss(t *testing.T) {
	s := NewSet(8, 4)
	s.Insert(100, Entry{TS: s.Time()})
	for i := 0; i < 9; i++ {
		s.Advance()
	}
	if s.OptHit(0) {
		t.Fatal("reuse beyond the modeled window must miss")
	}
}

func TestCapacityPressureCausesOptMiss(t *testing.T) {
	// A 2-way set with 3 overlapping reuse intervals: the third must miss
	// under OPT (occupancy is full).
	s := NewSet(32, 2)
	for b := uint64(0); b < 3; b++ {
		s.Insert(b, Entry{TS: s.Time()})
		s.Advance()
	}
	hits := 0
	for b := uint64(0); b < 3; b++ {
		e, _ := s.Lookup(b)
		if s.OptHit(e.TS) {
			hits++
		}
		e.TS = s.Time()
		s.Advance()
	}
	if hits != 2 {
		t.Fatalf("2-way OPT admitted %d of 3 overlapping lines", hits)
	}
}

func TestSequentialReuseAllHit(t *testing.T) {
	// Non-overlapping (back-to-back) reuses never exceed occupancy 1.
	s := NewSet(64, 1)
	for b := uint64(0); b < 10; b++ {
		s.Insert(b, Entry{TS: s.Time()})
		s.Advance()
		e, _ := s.Lookup(b)
		if !s.OptHit(e.TS) {
			t.Fatalf("block %d: serial reuse rejected by 1-way OPT", b)
		}
		e.TS = s.Time()
		s.Advance()
	}
}

func TestInsertEvictsOldest(t *testing.T) {
	s := NewSet(4, 2) // capacity 4 entries
	for b := uint64(0); b < 4; b++ {
		s.Insert(b, Entry{Sig: uint32(b), TS: s.Time()})
		s.Advance()
	}
	old, evicted := s.Insert(99, Entry{TS: s.Time()})
	if !evicted || old.Sig != 0 {
		t.Fatalf("expected eviction of the oldest entry (sig 0); got %+v evicted=%v", old, evicted)
	}
	if _, ok := s.Lookup(0); ok {
		t.Fatal("evicted block still tracked")
	}
}

func TestResetClears(t *testing.T) {
	s := NewSet(8, 2)
	s.Insert(1, Entry{TS: 0})
	s.Advance()
	s.Reset(8)
	if _, ok := s.Lookup(1); ok {
		t.Fatal("reset kept entries")
	}
	if s.Time() != 0 {
		t.Fatal("reset kept the clock")
	}
}

func TestOptHitNeverExceedsWays(t *testing.T) {
	// Property: in any access pattern, the number of concurrently admitted
	// intervals covering one quantum never exceeds the associativity —
	// i.e., occupancy values stay ≤ ways.
	check := func(blocks []uint8) bool {
		ways := 3
		s := NewSet(24, ways)
		admitted := 0
		for _, b8 := range blocks {
			b := uint64(b8 % 8)
			if e, ok := s.Lookup(b); ok {
				if s.OptHit(e.TS) {
					admitted++
				}
				e.TS = s.Time()
			} else {
				s.Insert(b, Entry{TS: s.Time()})
			}
			s.Advance()
			for _, v := range s.occ {
				if int(v) > ways {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
