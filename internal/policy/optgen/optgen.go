// Package optgen implements the sampled OPTgen mechanism shared by
// Hawkeye-family policies (Hawkeye, Glider): a bounded per-sampled-set
// history of line accesses plus an occupancy vector that answers "would
// Belady's OPT have hit this reuse?".
package optgen

// Entry is one tracked line in a sampled set's history. Sig and Core
// identify the predictor entry of the access that brought the line in.
type Entry struct {
	Sig  uint32
	Core uint16
	TS   uint32
	Meta uint64 // policy-private payload (e.g., Glider's history snapshot)
}

// Set is the OPTgen state of one sampled set.
type Set struct {
	entries map[uint64]*Entry
	occ     []uint8
	time    uint32
	ways    int
	maxEnt  int
}

// NewSet builds a sampled set tracking a window of window accesses for a
// cache set with the given associativity.
func NewSet(window, ways int) *Set {
	s := &Set{ways: ways, maxEnt: window}
	s.Reset(window)
	return s
}

// Reset discards all history (dynamic sampled-set reselection).
func (s *Set) Reset(window int) {
	s.entries = make(map[uint64]*Entry)
	s.occ = make([]uint8, window)
	s.time = 0
	s.maxEnt = window
}

// Time returns the set-local access clock.
func (s *Set) Time() uint32 { return s.time }

// Lookup returns the history entry for block, if tracked.
func (s *Set) Lookup(block uint64) (*Entry, bool) {
	e, ok := s.entries[block]
	return e, ok
}

// OptHit answers whether OPT would have hit the reuse interval ending now
// for an entry last touched at last, updating the occupancy vector on a hit.
func (s *Set) OptHit(last uint32) bool {
	window := uint32(len(s.occ))
	if s.time-last >= window {
		return false
	}
	for t := last; t != s.time; t++ {
		if int(s.occ[t%window]) >= s.ways {
			return false
		}
	}
	for t := last; t != s.time; t++ {
		s.occ[t%window]++
	}
	return true
}

// Insert tracks a new block, evicting the oldest tracked entry if the
// history is full. The evicted entry (whose line aged out un-reused) is
// returned so the caller can detrain it.
func (s *Set) Insert(block uint64, e Entry) (evicted Entry, wasEvicted bool) {
	if len(s.entries) >= s.maxEnt {
		var (
			oldBlock uint64
			oldEnt   *Entry
		)
		for blk, ent := range s.entries {
			if oldEnt == nil || s.time-ent.TS > s.time-oldEnt.TS {
				oldBlock, oldEnt = blk, ent
			}
		}
		delete(s.entries, oldBlock)
		evicted, wasEvicted = *oldEnt, true
	}
	cp := e
	s.entries[block] = &cp
	return evicted, wasEvicted
}

// Advance opens the occupancy slot for the current time and ticks the clock.
// Call once per sampled-set access, after Lookup/Insert.
func (s *Set) Advance() {
	s.occ[s.time%uint32(len(s.occ))] = 0
	s.time++
}
