// Package leeway implements a Leeway-lite dead-block policy (Faldu & Grot,
// PACT'17): each line carries a "leeway" — how many set accesses it may sit
// unreferenced before it is considered dead — learned per PC from sampled
// sets. Leeway's energy insight is preserved: the predictor is consulted
// only on misses (fills), never on hits.
//
// Predictor tables are banked through a fabric.Fabric, so D-Leeway
// (per-core-yet-global predictor + dynamic sampled cache) follows.
package leeway

import (
	"fmt"

	"drishti/internal/fabric"
	"drishti/internal/mem"
	"drishti/internal/repl"
	"drishti/internal/sampler"
)

// Config sizes Leeway for one LLC slice population.
type Config struct {
	Sets        int
	Ways        int
	Slices      int
	Cores       int
	SampledSets int
	Entries     int // predictor entries per bank (default 4096)
	MaxLeeway   int // leeway ceiling in set accesses (default 64)
}

// Normalize fills defaults.
func (c Config) Normalize() Config {
	if c.SampledSets == 0 {
		c.SampledSets = 64
	}
	if c.Entries == 0 {
		c.Entries = 4096
	}
	if c.MaxLeeway == 0 {
		c.MaxLeeway = 64
	}
	return c
}

// Validate reports configuration errors.
func (c Config) Validate() error {
	if c.Sets <= 0 || c.Ways <= 0 || c.Slices <= 0 || c.Cores <= 0 {
		return fmt.Errorf("leeway: geometry must be positive: %+v", c)
	}
	if c.Entries&(c.Entries-1) != 0 {
		return fmt.Errorf("leeway: entries must be a power of two")
	}
	return nil
}

// lwEntry is a learned leeway value with hysteresis, following the paper's
// variability-tolerant update policy.
type lwEntry struct {
	leeway  uint8
	conf    uint8
	trained bool
}

// Shared holds the banked leeway predictor.
type Shared struct {
	cfg  Config
	fab  *fabric.Fabric
	bank [][]lwEntry
}

// NewShared allocates predictor banks.
func NewShared(cfg Config, fab *fabric.Fabric) (*Shared, error) {
	cfg = cfg.Normalize()
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	s := &Shared{cfg: cfg, fab: fab}
	s.bank = make([][]lwEntry, fab.NumBanks())
	for i := range s.bank {
		s.bank[i] = make([]lwEntry, cfg.Entries)
	}
	return s, nil
}

// Config returns the normalized configuration.
func (s *Shared) Config() Config { return s.cfg }

func (s *Shared) index(pc uint64, core int) uint32 {
	h := pc*0x9e3779b97f4a7c15 ^ uint64(core)*0xc2b2ae3d27d4eb4f
	h ^= h >> 32
	return uint32(h) & uint32(s.cfg.Entries-1)
}

// train updates the learned leeway toward the observed live span (set
// accesses between fill/hit and the line's last use). Growth is immediate,
// shrinkage needs repeated evidence (the paper's asymmetric update).
func (s *Shared) train(slice int, a repl.Access, sig uint32, observed int) {
	obs := uint8(min(observed, s.cfg.MaxLeeway))
	for _, b := range s.fab.TrainBanks(slice, a.Core, a.Cycle) {
		e := &s.bank[b][sig]
		switch {
		case !e.trained:
			e.leeway, e.conf, e.trained = obs, 0, true
		case obs > e.leeway:
			e.leeway, e.conf = obs, 0
		case obs < e.leeway:
			if e.conf < 3 {
				e.conf++
			} else {
				e.leeway, e.conf = (e.leeway+obs)/2, 0
			}
		}
	}
}

// predict returns the leeway for sig. Consulted on fills only.
func (s *Shared) predict(slice int, a repl.Access, sig uint32) (leeway uint8, lat uint32) {
	b, lat := s.fab.PredictBank(slice, a.Core, a.Cycle)
	e := s.bank[b][sig]
	if !e.trained {
		return uint8(s.cfg.MaxLeeway / 2), lat
	}
	return e.leeway, lat
}

// lineState tracks per-line leeway and reuse bookkeeping.
type lineState struct {
	sig      uint32
	core     uint16
	leeway   uint8
	idleAcc  uint8 // set accesses since last use
	liveSpan uint8 // set accesses from fill to last use
	sampled  bool
}

// Slice is the Leeway instance for one LLC slice.
type Slice struct {
	shared  *Shared
	sliceID int
	sel     sampler.SetSelector

	stamps  []uint64
	clock   uint64
	lines   []lineState
	penalty uint32
}

// NewSlice builds the per-slice policy instance.
func NewSlice(shared *Shared, sliceID int, sel sampler.SetSelector) *Slice {
	cfg := shared.cfg
	return &Slice{
		shared:  shared,
		sliceID: sliceID,
		sel:     sel,
		stamps:  make([]uint64, cfg.Sets*cfg.Ways),
		lines:   make([]lineState, cfg.Sets*cfg.Ways),
	}
}

// Name implements repl.Policy.
func (p *Slice) Name() string { return "leeway" }

// FillPenalty implements repl.FillLatencier.
func (p *Slice) FillPenalty() uint32 { return p.penalty }

func (p *Slice) idx(set, way int) int { return set*p.shared.cfg.Ways + way }

// OnAccess implements repl.Observer: ages the set's idle counters.
func (p *Slice) OnAccess(set int, a repl.Access, hit bool) {
	if a.Type.IsDemand() {
		p.sel.OnAccess(set, hit)
	}
	base := set * p.shared.cfg.Ways
	for w := 0; w < p.shared.cfg.Ways; w++ {
		ln := &p.lines[base+w]
		if ln.idleAcc < 255 {
			ln.idleAcc++
		}
		if ln.liveSpan < 255 {
			ln.liveSpan++
		}
	}
}

// OnHit implements repl.Policy: no predictor access (Leeway's design point).
func (p *Slice) OnHit(set, way int, a repl.Access) {
	if a.Type == mem.Writeback {
		return
	}
	i := p.idx(set, way)
	p.clock++
	p.stamps[i] = p.clock
	ln := &p.lines[i]
	ln.idleAcc = 0
	ln.liveSpan = 0 // live span restarts from the last use
}

// dead reports whether the line has exhausted its leeway.
func (ln *lineState) dead() bool { return ln.idleAcc > ln.leeway }

// Victim implements repl.Policy: oldest dead line, else plain LRU.
func (p *Slice) Victim(set int, _ repl.Access) int {
	base := set * p.shared.cfg.Ways
	bestDead, bestLRU := -1, 0
	var deadStamp, lruStamp uint64
	for w := 0; w < p.shared.cfg.Ways; w++ {
		st := p.stamps[base+w]
		if p.lines[base+w].dead() && (bestDead < 0 || st < deadStamp) {
			bestDead, deadStamp = w, st
		}
		if w == 0 || st < lruStamp {
			bestLRU, lruStamp = w, st
		}
	}
	if bestDead >= 0 {
		return bestDead
	}
	return bestLRU
}

// OnEvict implements repl.Policy: sampled evictions train the live span the
// line actually needed.
func (p *Slice) OnEvict(set, way int, _ uint64) {
	i := p.idx(set, way)
	ln := &p.lines[i]
	if ln.sampled && ln.sig != 0 {
		needed := int(ln.liveSpan) - int(ln.idleAcc) // span up to last use
		if needed < 0 {
			needed = 0
		}
		a := repl.Access{Core: int(ln.core)}
		p.shared.train(p.sliceID, a, ln.sig, needed)
	}
	p.lines[i] = lineState{}
}

// OnFill implements repl.Policy: the only predictor consultation.
func (p *Slice) OnFill(set, way int, a repl.Access) {
	i := p.idx(set, way)
	p.clock++
	p.stamps[i] = p.clock
	_, sampled := p.sel.IsSampled(set)
	if a.Type == mem.Writeback {
		p.lines[i] = lineState{leeway: 0, sampled: sampled}
		p.penalty = 0
		return
	}
	sig := p.shared.index(a.PC, a.Core)
	lw, lat := p.shared.predict(p.sliceID, a, sig)
	p.penalty = lat
	p.lines[i] = lineState{sig: sig, core: uint16(a.Core), leeway: lw, sampled: sampled}
}

// Budget reports per-core storage in bytes.
func Budget(cfg Config, sampledSets int, dynamic bool) map[string]int {
	cfg = cfg.Normalize()
	out := map[string]int{
		"predictor":     cfg.Entries * 10 / 8, // leeway + confidence
		"line-metadata": cfg.Sets * cfg.Ways * 3,
	}
	if dynamic {
		out["saturating-counters"] = cfg.Sets
	}
	_ = sampledSets
	return out
}
