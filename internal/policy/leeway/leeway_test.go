package leeway

import (
	"testing"

	"drishti/internal/fabric"
	"drishti/internal/mem"
	"drishti/internal/repl"
	"drishti/internal/sampler"
	"drishti/internal/stats"
)

func build(t *testing.T, sets, ways int) (*Shared, *Slice) {
	t.Helper()
	fab := fabric.MustNew(fabric.Config{Placement: fabric.Local, Slices: 1, Cores: 1})
	cfg := Config{Sets: sets, Ways: ways, Slices: 1, Cores: 1, SampledSets: sets}
	sh, err := NewShared(cfg, fab)
	if err != nil {
		t.Fatal(err)
	}
	sel := sampler.NewStatic(sets, sets, stats.NewRand(1))
	return sh, NewSlice(sh, 0, sel)
}

func load(pc, block uint64) repl.Access {
	return repl.Access{PC: pc, Block: block, Type: mem.Load}
}

func TestPredictorOnlyOnMisses(t *testing.T) {
	sh, p := build(t, 4, 2)
	p.OnFill(0, 0, load(0x100, 4))
	lookups := sh.fab.Stats.Lookups
	for i := 0; i < 10; i++ {
		p.OnHit(0, 0, load(0x100, 4))
	}
	if sh.fab.Stats.Lookups != lookups {
		t.Fatal("Leeway consulted the predictor on hits (its design forbids this)")
	}
	p.OnFill(0, 1, load(0x100, 8))
	if sh.fab.Stats.Lookups != lookups+1 {
		t.Fatal("fill did not consult the predictor")
	}
}

func TestLeewayExpiryMakesLineDead(t *testing.T) {
	_, p := build(t, 2, 2)
	p.OnFill(0, 0, load(0x1, 4))
	p.lines[p.idx(0, 0)].leeway = 3
	for i := 0; i < 5; i++ {
		p.OnAccess(0, load(0x2, uint64(100+i)*4), false)
	}
	if !p.lines[p.idx(0, 0)].dead() {
		t.Fatal("line past its leeway not considered dead")
	}
	// Dead line preferred over a fresher-but-live one.
	p.OnFill(0, 1, load(0x1, 8))
	p.lines[p.idx(0, 1)].leeway = 200
	if v := p.Victim(0, repl.Access{}); v != 0 {
		t.Fatalf("victim %d, want the expired line", v)
	}
}

func TestHitResetsIdle(t *testing.T) {
	_, p := build(t, 2, 2)
	p.OnFill(0, 0, load(0x1, 4))
	p.lines[p.idx(0, 0)].leeway = 2
	p.OnAccess(0, load(0x2, 400), false)
	p.OnAccess(0, load(0x2, 464), false)
	p.OnHit(0, 0, load(0x1, 4))
	if p.lines[p.idx(0, 0)].idleAcc != 0 {
		t.Fatal("hit did not reset the idle counter")
	}
}

func TestAsymmetricTraining(t *testing.T) {
	sh, _ := build(t, 4, 2)
	sig := sh.index(0x42, 0)
	// Growth is immediate.
	sh.train(0, repl.Access{}, sig, 10)
	sh.train(0, repl.Access{}, sig, 40)
	if lw, _ := sh.predict(0, repl.Access{}, sig); lw != 40 {
		t.Fatalf("leeway after growth %d, want 40", lw)
	}
	// Shrinkage needs repeated evidence.
	sh.train(0, repl.Access{}, sig, 5)
	if lw, _ := sh.predict(0, repl.Access{}, sig); lw != 40 {
		t.Fatal("single low observation shrank the leeway")
	}
	for i := 0; i < 4; i++ {
		sh.train(0, repl.Access{}, sig, 5)
	}
	if lw, _ := sh.predict(0, repl.Access{}, sig); lw >= 40 {
		t.Fatalf("persistent low observations did not shrink the leeway: %d", lw)
	}
}

func TestUntrainedDefault(t *testing.T) {
	sh, _ := build(t, 4, 2)
	lw, _ := sh.predict(0, repl.Access{}, 123)
	if lw == 0 || int(lw) > sh.cfg.MaxLeeway {
		t.Fatalf("untrained default %d", lw)
	}
}

func TestWritebackZeroLeeway(t *testing.T) {
	_, p := build(t, 2, 2)
	p.OnFill(0, 0, repl.Access{Block: 4, Type: mem.Writeback})
	p.OnAccess(0, load(0x2, 400), false)
	if !p.lines[p.idx(0, 0)].dead() {
		t.Fatal("writeback fill should have no leeway")
	}
}
