package shippp

import (
	"testing"

	"drishti/internal/fabric"
	"drishti/internal/mem"
	"drishti/internal/repl"
	"drishti/internal/sampler"
	"drishti/internal/stats"
)

func build(t *testing.T, sets, ways int) (*Shared, *Slice) {
	t.Helper()
	fab := fabric.MustNew(fabric.Config{Placement: fabric.Local, Slices: 1, Cores: 1})
	cfg := Config{Sets: sets, Ways: ways, Slices: 1, Cores: 1, SampledSets: sets}
	sh, err := NewShared(cfg, fab)
	if err != nil {
		t.Fatal(err)
	}
	sel := sampler.NewStatic(sets, sets, stats.NewRand(1))
	return sh, NewSlice(sh, 0, sel)
}

func load(pc, block uint64) repl.Access {
	return repl.Access{PC: pc, Block: block, Type: mem.Load}
}

func TestReusedSignatureInsertsNearMRU(t *testing.T) {
	sh, p := build(t, 4, 2)
	pc := uint64(0x100)
	// Train: fill then hit repeatedly.
	for i := 0; i < 20; i++ {
		p.OnFill(0, 0, load(pc, 4))
		p.OnHit(0, 0, load(pc, 4))
	}
	sig := sh.index(pc, 0, false)
	if ctr, _ := sh.predict(0, repl.Access{}, sig); ctr < shctMax {
		t.Fatalf("reused signature counter %d", ctr)
	}
	p.OnFill(0, 1, load(pc, 8))
	if p.rrpv[p.idx(0, 1)] != 0 {
		t.Fatalf("hot signature inserted at rrpv %d", p.rrpv[p.idx(0, 1)])
	}
}

func TestDeadSignatureInsertsDistant(t *testing.T) {
	sh, p := build(t, 4, 2)
	pc := uint64(0xD0A)
	// Fill and evict without reuse, repeatedly.
	for i := 0; i < 10; i++ {
		p.OnFill(0, 0, load(pc, uint64(i)*4))
		p.OnEvict(0, 0, 0)
	}
	sig := sh.index(pc, 0, false)
	if ctr, _ := sh.predict(0, repl.Access{}, sig); ctr != 0 {
		t.Fatalf("dead signature counter %d", ctr)
	}
	p.OnFill(0, 1, load(pc, 999))
	if p.rrpv[p.idx(0, 1)] != rrpvMax {
		t.Fatalf("dead signature inserted at rrpv %d", p.rrpv[p.idx(0, 1)])
	}
}

func TestOutcomeBitTrainsOnce(t *testing.T) {
	sh, p := build(t, 4, 2)
	pc := uint64(0x200)
	p.OnFill(0, 0, load(pc, 4))
	before := sh.fab.Stats.Trainings
	p.OnHit(0, 0, load(pc, 4))
	p.OnHit(0, 0, load(pc, 4))
	p.OnHit(0, 0, load(pc, 4))
	if sh.fab.Stats.Trainings != before+1 {
		t.Fatalf("re-hits trained %d times", sh.fab.Stats.Trainings-before)
	}
}

func TestWritebackNeutral(t *testing.T) {
	_, p := build(t, 4, 2)
	p.OnFill(0, 0, repl.Access{Block: 4, Type: mem.Writeback})
	if p.rrpv[p.idx(0, 0)] != rrpvMax {
		t.Fatal("writeback fill should be distant")
	}
}

func TestVictimInRange(t *testing.T) {
	_, p := build(t, 4, 4)
	for i := 0; i < 100; i++ {
		if v := p.Victim(i%4, repl.Access{}); v < 0 || v >= 4 {
			t.Fatalf("victim %d", v)
		}
	}
}
