// Package shippp implements SHiP++ (Young et al., CRC-2), the enhanced
// signature-based hit predictor: RRIP replacement whose insertion position
// is chosen by a Signature History Counter Table (SHCT) trained on sampled
// sets. Like the other prediction-based policies in this repository, the
// SHCT is banked through a fabric.Fabric so Drishti's per-core-yet-global
// placement and the dynamic sampled cache apply directly (Table 7/8).
package shippp

import (
	"fmt"

	"drishti/internal/fabric"
	"drishti/internal/mem"
	"drishti/internal/repl"
	"drishti/internal/sampler"
)

// Config sizes SHiP++ for one LLC slice population.
type Config struct {
	Sets        int
	Ways        int
	Slices      int
	Cores       int
	SampledSets int // per slice (default 64; fewer with Drishti's DSC)
	SHCTEntries int // per bank (default 16384)
}

// Normalize fills defaults.
func (c Config) Normalize() Config {
	if c.SampledSets == 0 {
		c.SampledSets = 64
	}
	if c.SHCTEntries == 0 {
		c.SHCTEntries = 16384
	}
	return c
}

// Validate reports configuration errors.
func (c Config) Validate() error {
	if c.Sets <= 0 || c.Ways <= 0 || c.Slices <= 0 || c.Cores <= 0 {
		return fmt.Errorf("shippp: geometry must be positive: %+v", c)
	}
	if c.SHCTEntries&(c.SHCTEntries-1) != 0 {
		return fmt.Errorf("shippp: SHCT entries must be a power of two")
	}
	return nil
}

const (
	shctMax = 7 // 3-bit counters, as in SHiP++
	rrpvMax = 3 // 2-bit RRPV
)

// Shared holds the banked SHCT.
type Shared struct {
	cfg  Config
	fab  *fabric.Fabric
	bank [][]uint8
}

// NewShared allocates the SHCT banks.
func NewShared(cfg Config, fab *fabric.Fabric) (*Shared, error) {
	cfg = cfg.Normalize()
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	s := &Shared{cfg: cfg, fab: fab}
	s.bank = make([][]uint8, fab.NumBanks())
	for i := range s.bank {
		b := make([]uint8, cfg.SHCTEntries)
		for j := range b {
			b[j] = 1 // weakly not-reused, per the reference implementation
		}
		s.bank[i] = b
	}
	return s, nil
}

// Config returns the normalized configuration.
func (s *Shared) Config() Config { return s.cfg }

func (s *Shared) index(pc uint64, core int, prefetch bool) uint32 {
	h := pc*0x9e3779b97f4a7c15 ^ uint64(core)*0xd6e8feb86659fd93
	if prefetch {
		h ^= 0xbf58476d1ce4e5b9
	}
	h ^= h >> 32
	return uint32(h) & uint32(s.cfg.SHCTEntries-1)
}

func (s *Shared) train(slice int, a repl.Access, sig uint32, reused bool) {
	for _, b := range s.fab.TrainBanks(slice, a.Core, a.Cycle) {
		c := &s.bank[b][sig]
		if reused {
			if *c < shctMax {
				*c++
			}
		} else if *c > 0 {
			*c--
		}
	}
}

func (s *Shared) predict(slice int, a repl.Access, sig uint32) (ctr uint8, lat uint32) {
	b, lat := s.fab.PredictBank(slice, a.Core, a.Cycle)
	return s.bank[b][sig], lat
}

// lineState is SHiP's per-line metadata.
type lineState struct {
	sig     uint32
	core    uint16
	outcome bool // reused since fill
	sampled bool // filled while its set was sampled
}

// Slice is the SHiP++ instance for one LLC slice.
type Slice struct {
	shared  *Shared
	sliceID int
	sel     sampler.SetSelector

	rrpv  []uint8
	lines []lineState

	penalty uint32
}

// NewSlice builds the per-slice policy instance.
func NewSlice(shared *Shared, sliceID int, sel sampler.SetSelector) *Slice {
	cfg := shared.cfg
	p := &Slice{
		shared:  shared,
		sliceID: sliceID,
		sel:     sel,
		rrpv:    make([]uint8, cfg.Sets*cfg.Ways),
		lines:   make([]lineState, cfg.Sets*cfg.Ways),
	}
	for i := range p.rrpv {
		p.rrpv[i] = rrpvMax
	}
	return p
}

// Name implements repl.Policy.
func (p *Slice) Name() string { return "ship++" }

// FillPenalty implements repl.FillLatencier.
func (p *Slice) FillPenalty() uint32 { return p.penalty }

func (p *Slice) idx(set, way int) int { return set*p.shared.cfg.Ways + way }

// OnAccess implements repl.Observer: feeds the dynamic sampled cache.
func (p *Slice) OnAccess(set int, a repl.Access, hit bool) {
	if a.Type.IsDemand() {
		p.sel.OnAccess(set, hit)
	}
}

// OnHit implements repl.Policy: promote and train reuse.
func (p *Slice) OnHit(set, way int, a repl.Access) {
	if a.Type == mem.Writeback {
		return
	}
	i := p.idx(set, way)
	p.rrpv[i] = 0
	ln := &p.lines[i]
	if ln.sampled && !ln.outcome {
		ln.outcome = true
		p.shared.train(p.sliceID, a, ln.sig, true)
	}
}

// Victim implements repl.Policy: standard RRIP victim search.
func (p *Slice) Victim(set int, _ repl.Access) int {
	base := set * p.shared.cfg.Ways
	for {
		for w := 0; w < p.shared.cfg.Ways; w++ {
			if p.rrpv[base+w] >= rrpvMax {
				return w
			}
		}
		for w := 0; w < p.shared.cfg.Ways; w++ {
			p.rrpv[base+w]++
		}
	}
}

// OnEvict implements repl.Policy: a sampled line evicted without reuse
// trains its signature as not-reused.
func (p *Slice) OnEvict(set, way int, _ uint64) {
	i := p.idx(set, way)
	ln := &p.lines[i]
	if ln.sampled && !ln.outcome {
		a := repl.Access{Core: int(ln.core)}
		p.shared.train(p.sliceID, a, ln.sig, false)
	}
	ln.sampled = false
}

// OnFill implements repl.Policy: insertion position from the SHCT.
func (p *Slice) OnFill(set, way int, a repl.Access) {
	i := p.idx(set, way)
	sig := p.shared.index(a.PC, a.Core, a.Type == mem.Prefetch)
	_, sampled := p.sel.IsSampled(set)
	p.lines[i] = lineState{sig: sig, core: uint16(a.Core), sampled: sampled}

	if a.Type == mem.Writeback {
		p.rrpv[i] = rrpvMax
		p.penalty = 0
		return
	}
	ctr, lat := p.shared.predict(p.sliceID, a, sig)
	p.penalty = lat
	switch {
	case ctr == 0:
		p.rrpv[i] = rrpvMax // predicted dead on arrival
	case ctr >= shctMax:
		p.rrpv[i] = 0 // SHiP++: strongly reused signatures insert at MRU
	default:
		p.rrpv[i] = rrpvMax - 1
	}
}

// Budget reports per-core storage in bytes.
func Budget(cfg Config, sampledSets int, dynamic bool) map[string]int {
	cfg = cfg.Normalize()
	out := map[string]int{
		"shct":          cfg.SHCTEntries * 3 / 8,
		"rrpv":          cfg.Sets * cfg.Ways * 2 / 8,
		"line-metadata": cfg.Sets * cfg.Ways * 16 / 8, // sig + outcome bits
	}
	if dynamic {
		out["saturating-counters"] = cfg.Sets
	}
	_ = sampledSets
	return out
}
