// Package glider implements an online Glider-lite (Shi et al., MICRO'19):
// Hawkeye's OPTgen labeling drives an Integer Support Vector Machine (ISVM)
// over a per-core PC History Register (PCHR), replacing Hawkeye's simple
// per-PC counter with a context-sensitive predictor.
//
// The published Glider trains an LSTM offline and distills it into the
// ISVM; we train the ISVM online directly, which is the deployable
// configuration the paper's Table 8 evaluates. ISVM weight tables are
// banked through a fabric.Fabric, so D-Glider (per-core-yet-global
// predictor + dynamic sampled cache) is the same code with different
// wiring.
package glider

import (
	"fmt"

	"drishti/internal/fabric"
	"drishti/internal/mem"
	"drishti/internal/policy/optgen"
	"drishti/internal/repl"
	"drishti/internal/sampler"
)

// Config sizes Glider for one LLC slice population.
type Config struct {
	Sets          int
	Ways          int
	Slices        int
	Cores         int
	SampledSets   int // per slice (default 64)
	ISVMEntries   int // PC-indexed weight vectors per bank (default 2048)
	HistoryLen    int // PCHR depth (default 5)
	HistoryFactor int // OPTgen window = HistoryFactor×Ways (default 8)
}

// Normalize fills defaults.
func (c Config) Normalize() Config {
	if c.SampledSets == 0 {
		c.SampledSets = 64
	}
	if c.ISVMEntries == 0 {
		c.ISVMEntries = 2048
	}
	if c.HistoryLen == 0 {
		c.HistoryLen = 5
	}
	if c.HistoryFactor == 0 {
		c.HistoryFactor = 8
	}
	return c
}

// Validate reports configuration errors.
func (c Config) Validate() error {
	if c.Sets <= 0 || c.Ways <= 0 || c.Slices <= 0 || c.Cores <= 0 {
		return fmt.Errorf("glider: geometry must be positive: %+v", c)
	}
	if c.ISVMEntries&(c.ISVMEntries-1) != 0 {
		return fmt.Errorf("glider: ISVM entries must be a power of two")
	}
	if c.HistoryLen <= 0 || c.HistoryLen > 16 {
		return fmt.Errorf("glider: history length %d out of range", c.HistoryLen)
	}
	return nil
}

const (
	weightMax   = 31 // ISVM weights saturate at ±31 (6-bit)
	weightMin   = -31
	featureBits = 4 // each PCHR element hashes to a 16-way feature
	rrpvMax     = 7
	// threshold: sum of active weights above this → cache-friendly.
	friendlyThreshold = 0
)

// isvmEntry is one PC's weight vector over hashed history features.
type isvmEntry [1 << featureBits]int8

// Shared holds the banked ISVM tables plus the per-core PCHRs. The PCHR is
// architectural core state (the last HistoryLen load PCs), so it is global
// by construction; what Drishti changes is where the *weights* live.
type Shared struct {
	cfg  Config
	fab  *fabric.Fabric
	bank [][]isvmEntry
	pchr [][]uint8 // cores × HistoryLen hashed features
}

// NewShared allocates ISVM banks and PCHRs.
func NewShared(cfg Config, fab *fabric.Fabric) (*Shared, error) {
	cfg = cfg.Normalize()
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	s := &Shared{cfg: cfg, fab: fab}
	s.bank = make([][]isvmEntry, fab.NumBanks())
	for i := range s.bank {
		s.bank[i] = make([]isvmEntry, cfg.ISVMEntries)
	}
	s.pchr = make([][]uint8, cfg.Cores)
	for i := range s.pchr {
		s.pchr[i] = make([]uint8, cfg.HistoryLen)
	}
	return s, nil
}

// Config returns the normalized configuration.
func (s *Shared) Config() Config { return s.cfg }

func (s *Shared) index(pc uint64, core int) uint32 {
	h := pc*0x9e3779b97f4a7c15 ^ uint64(core)*0xff51afd7ed558ccd
	h ^= h >> 30
	return uint32(h) & uint32(s.cfg.ISVMEntries-1)
}

func feature(pc uint64) uint8 {
	return uint8((pc * 0xc2b2ae3d27d4eb4f >> 57)) & (1<<featureBits - 1)
}

// PushPC records a demand-load PC into core's history register.
func (s *Shared) PushPC(core int, pc uint64) {
	h := s.pchr[core]
	copy(h[1:], h[:len(h)-1])
	h[0] = feature(pc)
}

// historySnapshot packs the PCHR into a uint64 for OPTgen entry metadata,
// so training replays the history as it was at access time.
func (s *Shared) historySnapshot(core int) uint64 {
	var snap uint64
	for i, f := range s.pchr[core] {
		snap |= uint64(f) << (uint(i) * featureBits)
	}
	return snap
}

func (s *Shared) sum(bank int, sig uint32, snap uint64) int {
	e := &s.bank[bank][sig]
	total := 0
	for i := 0; i < s.cfg.HistoryLen; i++ {
		f := uint8(snap>>(uint(i)*featureBits)) & (1<<featureBits - 1)
		total += int(e[f])
	}
	return total
}

// train nudges the weights of the features active in snap toward the OPTgen
// outcome, with SVM-style margin: stop updating once confidently correct.
func (s *Shared) train(slice int, a repl.Access, sig uint32, snap uint64, friendly bool) {
	for _, b := range s.fab.TrainBanks(slice, a.Core, a.Cycle) {
		cur := s.sum(b, sig, snap)
		if friendly && cur > weightMax || !friendly && cur < weightMin {
			continue // outside margin: converged
		}
		e := &s.bank[b][sig]
		for i := 0; i < s.cfg.HistoryLen; i++ {
			f := uint8(snap>>(uint(i)*featureBits)) & (1<<featureBits - 1)
			w := &e[f]
			if friendly {
				if *w < weightMax {
					*w++
				}
			} else if *w > weightMin {
				*w--
			}
		}
	}
}

// predict evaluates the ISVM for (slice, core) and returns friendliness plus
// fill-path latency.
func (s *Shared) predict(slice int, a repl.Access, sig uint32) (friendly bool, lat uint32) {
	b, lat := s.fab.PredictBank(slice, a.Core, a.Cycle)
	return s.sum(b, sig, s.historySnapshot(a.Core)) > friendlyThreshold, lat
}

// Slice is the Glider instance for one LLC slice.
type Slice struct {
	shared  *Shared
	sliceID int
	sel     sampler.SetSelector
	selGen  uint64

	rrpv     []uint8
	lineSig  []uint32
	lineSnap []uint64
	lineCore []uint16
	lineFrnd []bool

	samples map[int]*optgen.Set // keyed by set number
	penalty uint32
}

// NewSlice builds the per-slice policy instance.
func NewSlice(shared *Shared, sliceID int, sel sampler.SetSelector) *Slice {
	cfg := shared.cfg
	p := &Slice{
		shared:   shared,
		sliceID:  sliceID,
		sel:      sel,
		selGen:   sel.Generation(),
		rrpv:     make([]uint8, cfg.Sets*cfg.Ways),
		lineSig:  make([]uint32, cfg.Sets*cfg.Ways),
		lineSnap: make([]uint64, cfg.Sets*cfg.Ways),
		lineCore: make([]uint16, cfg.Sets*cfg.Ways),
		lineFrnd: make([]bool, cfg.Sets*cfg.Ways),
		samples:  make(map[int]*optgen.Set, sel.N()),
	}
	for i := range p.rrpv {
		p.rrpv[i] = rrpvMax
	}
	return p
}

// Name implements repl.Policy.
func (p *Slice) Name() string { return "glider" }

// FillPenalty implements repl.FillLatencier.
func (p *Slice) FillPenalty() uint32 { return p.penalty }

func (p *Slice) idx(set, way int) int { return set*p.shared.cfg.Ways + way }

// maybeFlush drops sampled history for sets no longer sampled; sets that
// stay selected keep their history.
func (p *Slice) maybeFlush() {
	if g := p.sel.Generation(); g != p.selGen {
		p.selGen = g
		for set := range p.samples {
			if _, ok := p.sel.IsSampled(set); !ok {
				delete(p.samples, set)
			}
		}
	}
}

// OnAccess implements repl.Observer: PCHR update + OPTgen training.
func (p *Slice) OnAccess(set int, a repl.Access, hit bool) {
	if a.Type == mem.Writeback {
		return
	}
	if a.Type.IsDemand() {
		p.sel.OnAccess(set, hit)
		p.shared.PushPC(a.Core, a.PC)
	}
	p.maybeFlush()
	if _, ok := p.sel.IsSampled(set); !ok {
		return
	}
	ss := p.samples[set]
	if ss == nil {
		ss = optgen.NewSet(p.shared.cfg.HistoryFactor*p.shared.cfg.Ways, p.shared.cfg.Ways)
		p.samples[set] = ss
	}
	sig := p.shared.index(a.PC, a.Core)
	snap := p.shared.historySnapshot(a.Core)
	if e, found := ss.Lookup(a.Block); found {
		trainA := repl.Access{Core: int(e.Core), Cycle: a.Cycle}
		p.shared.train(p.sliceID, trainA, e.Sig, e.Meta, ss.OptHit(e.TS))
		e.Sig, e.Core, e.TS, e.Meta = sig, uint16(a.Core), ss.Time(), snap
	} else {
		ent := optgen.Entry{Sig: sig, Core: uint16(a.Core), TS: ss.Time(), Meta: snap}
		if old, evicted := ss.Insert(a.Block, ent); evicted {
			trainA := repl.Access{Core: int(old.Core), Cycle: a.Cycle}
			p.shared.train(p.sliceID, trainA, old.Sig, old.Meta, false)
		}
	}
	ss.Advance()
}

// OnHit implements repl.Policy.
func (p *Slice) OnHit(set, way int, a repl.Access) {
	if a.Type == mem.Writeback {
		return
	}
	i := p.idx(set, way)
	p.rrpv[i] = 0
	p.lineSig[i] = p.shared.index(a.PC, a.Core)
	p.lineSnap[i] = p.shared.historySnapshot(a.Core)
}

// Victim implements repl.Policy.
func (p *Slice) Victim(set int, _ repl.Access) int {
	base := set * p.shared.cfg.Ways
	maxW, maxV := 0, p.rrpv[base]
	for w := 0; w < p.shared.cfg.Ways; w++ {
		v := p.rrpv[base+w]
		if v == rrpvMax {
			return w
		}
		if v > maxV {
			maxW, maxV = w, v
		}
	}
	return maxW
}

// OnEvict implements repl.Policy.
func (p *Slice) OnEvict(set, way int, _ uint64) {
	i := p.idx(set, way)
	if p.lineFrnd[i] && p.rrpv[i] < rrpvMax {
		a := repl.Access{Core: int(p.lineCore[i])}
		p.shared.train(p.sliceID, a, p.lineSig[i], p.lineSnap[i], false)
	}
}

// OnFill implements repl.Policy.
func (p *Slice) OnFill(set, way int, a repl.Access) {
	i := p.idx(set, way)
	sig := p.shared.index(a.PC, a.Core)
	p.lineSig[i] = sig
	p.lineCore[i] = uint16(a.Core)
	p.lineSnap[i] = p.shared.historySnapshot(a.Core)

	if a.Type == mem.Writeback {
		p.rrpv[i] = rrpvMax
		p.lineFrnd[i] = false
		p.penalty = 0
		return
	}
	friendly, lat := p.shared.predict(p.sliceID, a, sig)
	p.penalty = lat
	p.lineFrnd[i] = friendly
	if !friendly {
		p.rrpv[i] = rrpvMax
		return
	}
	base := set * p.shared.cfg.Ways
	for w := 0; w < p.shared.cfg.Ways; w++ {
		if base+w != i && p.rrpv[base+w] < rrpvMax-1 {
			p.rrpv[base+w]++
		}
	}
	p.rrpv[i] = 0
}

// Budget reports per-core storage in bytes.
func Budget(cfg Config, sampledSets int, dynamic bool) map[string]int {
	cfg = cfg.Normalize()
	entries := cfg.HistoryFactor * cfg.Ways
	out := map[string]int{
		"sampled-cache": sampledSets * entries * 33 / 8,
		"isvm":          cfg.ISVMEntries * (1 << featureBits) * 6 / 8,
		"pchr":          cfg.HistoryLen,
		"rrip-counters": cfg.Sets * cfg.Ways * 3 / 8,
	}
	if dynamic {
		out["saturating-counters"] = cfg.Sets
	}
	return out
}
