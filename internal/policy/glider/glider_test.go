package glider

import (
	"testing"

	"drishti/internal/fabric"
	"drishti/internal/mem"
	"drishti/internal/repl"
	"drishti/internal/sampler"
	"drishti/internal/stats"
)

func build(t *testing.T, sets, ways int) (*Shared, *Slice) {
	t.Helper()
	fab := fabric.MustNew(fabric.Config{Placement: fabric.Local, Slices: 1, Cores: 1})
	cfg := Config{Sets: sets, Ways: ways, Slices: 1, Cores: 1, SampledSets: sets}
	sh, err := NewShared(cfg, fab)
	if err != nil {
		t.Fatal(err)
	}
	sel := sampler.NewStatic(sets, sets, stats.NewRand(1))
	return sh, NewSlice(sh, 0, sel)
}

func load(pc, block uint64) repl.Access {
	return repl.Access{PC: pc, Block: block, Type: mem.Load}
}

func TestPCHRShifts(t *testing.T) {
	sh, _ := build(t, 4, 2)
	sh.PushPC(0, 0x100)
	snap1 := sh.historySnapshot(0)
	sh.PushPC(0, 0x200)
	snap2 := sh.historySnapshot(0)
	if snap1 == snap2 {
		t.Fatal("history did not shift")
	}
	// The old head must now appear at position 1.
	f := feature(0x100)
	if uint8(snap2>>featureBits)&(1<<featureBits-1) != f {
		t.Fatal("old PC not shifted to slot 1")
	}
}

func TestISVMLearnsScan(t *testing.T) {
	sh, p := build(t, 4, 2)
	scanPC := uint64(0xBAD)
	for i := uint64(0); i < 400; i++ {
		p.OnAccess(0, load(scanPC, i*4), false)
	}
	sig := sh.index(scanPC, 0)
	if friendly, _ := sh.predict(0, repl.Access{PC: scanPC}, sig); friendly {
		t.Fatal("scan PC predicted friendly by the ISVM")
	}
}

func TestISVMLearnsLoop(t *testing.T) {
	sh, p := build(t, 4, 4)
	loopPC := uint64(0x600D)
	for round := 0; round < 100; round++ {
		for b := uint64(0); b < 2; b++ {
			p.OnAccess(0, load(loopPC, b*4), true)
		}
	}
	sig := sh.index(loopPC, 0)
	if friendly, _ := sh.predict(0, repl.Access{PC: loopPC}, sig); !friendly {
		t.Fatal("loop PC predicted averse")
	}
}

func TestMarginStopsTraining(t *testing.T) {
	sh, _ := build(t, 4, 2)
	sig := uint32(7)
	snap := uint64(0)
	// Train far past the margin; weights must saturate, not overflow.
	for i := 0; i < 1000; i++ {
		sh.train(0, repl.Access{}, sig, snap, true)
	}
	if got := sh.sum(0, sig, snap); got > int(weightMax)*sh.cfg.HistoryLen {
		t.Fatalf("weights beyond saturation: %d", got)
	}
}

func TestFillPlacement(t *testing.T) {
	_, p := build(t, 4, 2)
	p.OnFill(0, 0, load(0x1, 4))
	// Untrained ISVM sums to 0 → not friendly → distant insert.
	if p.rrpv[p.idx(0, 0)] != rrpvMax {
		t.Fatalf("untrained fill rrpv %d", p.rrpv[p.idx(0, 0)])
	}
}

func TestVictimPrefersAverse(t *testing.T) {
	_, p := build(t, 2, 2)
	p.rrpv[p.idx(0, 0)] = 0
	p.rrpv[p.idx(0, 1)] = rrpvMax
	if v := p.Victim(0, repl.Access{}); v != 1 {
		t.Fatalf("victim %d", v)
	}
	// No RRPV-7 line: evict the max.
	p.rrpv[p.idx(1, 0)] = 2
	p.rrpv[p.idx(1, 1)] = 5
	if v := p.Victim(1, repl.Access{}); v != 1 {
		t.Fatalf("victim %d, want max-RRPV way", v)
	}
}

func TestEvictDetrainsFriendly(t *testing.T) {
	sh, p := build(t, 4, 4)
	loopPC := uint64(0x600D)
	for round := 0; round < 100; round++ {
		for b := uint64(0); b < 2; b++ {
			p.OnAccess(0, load(loopPC, b*4), true)
		}
	}
	sig := sh.index(loopPC, 0)
	if friendly, _ := sh.predict(0, repl.Access{PC: loopPC}, sig); !friendly {
		t.Skip("loop PC not trained friendly; detrain untestable")
	}
	// Fill as friendly, then evict repeatedly without reuse: the ISVM sum
	// must decrease.
	before := sh.sum(0, sig, sh.historySnapshot(0))
	for i := 0; i < 50; i++ {
		p.OnFill(1, 0, load(loopPC, 100))
		p.rrpv[p.idx(1, 0)] = 0 // still "friendly-looking" at eviction
		p.OnEvict(1, 0, 100)
	}
	after := sh.sum(0, sig, sh.historySnapshot(0))
	if after >= before {
		t.Fatalf("eviction detraining did not lower the sum: %d → %d", before, after)
	}
}

func TestWritebackFillDistant(t *testing.T) {
	_, p := build(t, 2, 2)
	p.OnFill(0, 0, repl.Access{Block: 4, Type: mem.Writeback})
	if p.rrpv[p.idx(0, 0)] != rrpvMax {
		t.Fatal("writeback fill should be distant")
	}
	// Writeback hits must not touch predictor state.
	p.OnHit(0, 0, repl.Access{Block: 4, Type: mem.Writeback})
}

func TestHitPromotes(t *testing.T) {
	_, p := build(t, 2, 2)
	p.rrpv[p.idx(0, 1)] = 5
	p.OnHit(0, 1, load(0x9, 4))
	if p.rrpv[p.idx(0, 1)] != 0 {
		t.Fatal("hit did not promote")
	}
}

func TestConfigValidation(t *testing.T) {
	if err := (Config{Sets: 4, Ways: 2, Slices: 1, Cores: 1, ISVMEntries: 3}).Validate(); err == nil {
		t.Fatal("non-power-of-two ISVM accepted")
	}
	if err := (Config{Sets: 4, Ways: 2, Slices: 1, Cores: 1, HistoryLen: 99}).Normalize().Validate(); err == nil {
		t.Fatal("absurd history accepted")
	}
	if Budget(Config{Sets: 2048, Ways: 16, Slices: 32, Cores: 32}, 64, true)["saturating-counters"] != 2048 {
		t.Fatal("budget counters wrong")
	}
}
