package perceptron

import (
	"testing"

	"drishti/internal/fabric"
	"drishti/internal/mem"
	"drishti/internal/repl"
	"drishti/internal/sampler"
	"drishti/internal/stats"
)

func build(t *testing.T, sets, ways int) (*Shared, *Slice) {
	t.Helper()
	fab := fabric.MustNew(fabric.Config{Placement: fabric.Local, Slices: 1, Cores: 1})
	cfg := Config{Sets: sets, Ways: ways, Slices: 1, Cores: 1, SampledSets: sets}
	sh, err := NewShared(cfg, fab)
	if err != nil {
		t.Fatal(err)
	}
	sel := sampler.NewStatic(sets, sets, stats.NewRand(1))
	return sh, NewSlice(sh, 0, sel)
}

func load(pc, block uint64) repl.Access {
	return repl.Access{PC: pc, Block: block, Type: mem.Load}
}

func TestLearnsNoReuseAndBypasses(t *testing.T) {
	_, p := build(t, 4, 2)
	pc := uint64(0xBAD)
	// Fill+evict with no reuse until the weights cross the bypass bar.
	bypassed := false
	for i := 0; i < 200 && !bypassed; i++ {
		blk := uint64(i * 4)
		v := p.Victim(0, load(pc, blk))
		if v == repl.Bypass {
			bypassed = true
			break
		}
		p.OnFill(0, v, load(pc, blk))
		p.OnEvict(0, v, blk)
	}
	if !bypassed {
		t.Fatal("dead stream never learned to bypass")
	}
}

func TestReusedLinesKeepMRUInsertion(t *testing.T) {
	_, p := build(t, 4, 2)
	pc := uint64(0x600D)
	for i := 0; i < 50; i++ {
		v := p.Victim(0, load(pc, 4))
		if v == repl.Bypass {
			t.Fatal("reused PC bypassed")
		}
		p.OnFill(0, v, load(pc, 4))
		p.OnHit(0, v, load(pc, 4))
	}
	v := p.Victim(0, load(pc, 4))
	if v == repl.Bypass {
		t.Fatal("hot PC bypassed after training")
	}
	p.OnFill(0, v, load(pc, 8))
	if p.stamps[p.idx(0, v)] == 0 {
		t.Fatal("hot PC inserted at LRU")
	}
}

func TestWeightsSaturate(t *testing.T) {
	sh, _ := build(t, 4, 2)
	feat := sh.features(0x1, 0x40, 0)
	for i := 0; i < 1000; i++ {
		sh.train(0, repl.Access{}, feat, true)
	}
	if sum := sh.sum(0, feat); sum > numFeatures*int(weightMax) {
		t.Fatalf("weights overflowed: %d", sum)
	}
}

func TestFeaturesDiffer(t *testing.T) {
	sh, _ := build(t, 4, 2)
	a := sh.features(0x400, 0x1000, 0)
	b := sh.features(0x404, 0x1000, 0)
	c := sh.features(0x400, 0x1000, 1)
	if a == b || a == c {
		t.Fatal("feature hashes collide across PC/core changes")
	}
}

func TestOneLookupPerFill(t *testing.T) {
	sh, p := build(t, 4, 2)
	before := sh.fab.Stats.Lookups
	v := p.Victim(0, load(0x1, 4))
	if v != repl.Bypass {
		p.OnFill(0, v, load(0x1, 4))
	}
	if sh.fab.Stats.Lookups != before+1 {
		t.Fatalf("fill path made %d lookups", sh.fab.Stats.Lookups-before)
	}
}
