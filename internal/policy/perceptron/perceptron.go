// Package perceptron implements perceptron learning for reuse prediction
// (Teran, Wang & Jiménez, MICRO'16): multiple feature tables — hashes of
// the PC, shifted PC bits, and block address bits — vote through saturating
// weights; the sum against thresholds decides bypass/insertion/promotion.
// Training data comes from sampled sets.
//
// Weight tables are banked through a fabric.Fabric, so D-Perceptron follows
// the same construction as the other prediction-based policies (Table 7).
package perceptron

import (
	"fmt"

	"drishti/internal/fabric"
	"drishti/internal/mem"
	"drishti/internal/repl"
	"drishti/internal/sampler"
)

// Config sizes the policy for one LLC slice population.
type Config struct {
	Sets        int
	Ways        int
	Slices      int
	Cores       int
	SampledSets int
	TableBits   int // log2 entries per feature table (default 12)
}

// Normalize fills defaults.
func (c Config) Normalize() Config {
	if c.SampledSets == 0 {
		c.SampledSets = 64
	}
	if c.TableBits == 0 {
		c.TableBits = 12
	}
	return c
}

// Validate reports configuration errors.
func (c Config) Validate() error {
	if c.Sets <= 0 || c.Ways <= 0 || c.Slices <= 0 || c.Cores <= 0 {
		return fmt.Errorf("perceptron: geometry must be positive: %+v", c)
	}
	if c.TableBits < 4 || c.TableBits > 20 {
		return fmt.Errorf("perceptron: table bits %d out of range", c.TableBits)
	}
	return nil
}

const (
	numFeatures = 4
	weightMax   = 31
	weightMin   = -32
	// tauBypass: sums above it predict no-reuse strongly enough to bypass;
	// tauDead: sums above it insert at distant priority. Thresholds follow
	// the paper's two-level decision.
	tauBypass = 40
	tauDead   = 8
	// margin for training: keep updating until confidently correct. It
	// must exceed tauBypass or the weights could never reach it.
	trainMargin = 48
)

// Shared holds the banked feature tables.
type Shared struct {
	cfg Config
	fab *fabric.Fabric
	// bank × feature × entry; weights are "no-reuse" votes.
	w [][][]int8
}

// NewShared allocates weight banks.
func NewShared(cfg Config, fab *fabric.Fabric) (*Shared, error) {
	cfg = cfg.Normalize()
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	s := &Shared{cfg: cfg, fab: fab}
	s.w = make([][][]int8, fab.NumBanks())
	for b := range s.w {
		s.w[b] = make([][]int8, numFeatures)
		for f := range s.w[b] {
			s.w[b][f] = make([]int8, 1<<cfg.TableBits)
		}
	}
	return s, nil
}

// Config returns the normalized configuration.
func (s *Shared) Config() Config { return s.cfg }

// features hashes the multiperspective inputs into per-table indices.
func (s *Shared) features(pc, block uint64, core int) [numFeatures]uint32 {
	mask := uint32(1)<<s.cfg.TableBits - 1
	var out [numFeatures]uint32
	out[0] = uint32((pc^uint64(core)*0x9e3779b97f4a7c15)>>2) & mask
	out[1] = uint32((pc>>5)*0xff51afd7ed558ccd>>30) & mask
	out[2] = uint32((block>>6)*0xc4ceb9fe1a85ec53>>31) & mask
	out[3] = uint32(((pc>>1)^block>>12)*0x2545f4914f6cdd1d>>32) & mask
	return out
}

func (s *Shared) sum(bank int, feat [numFeatures]uint32) int {
	total := 0
	for f := 0; f < numFeatures; f++ {
		total += int(s.w[bank][f][feat[f]])
	}
	return total
}

// train moves the weights toward noReuse, with a margin.
func (s *Shared) train(slice int, a repl.Access, feat [numFeatures]uint32, noReuse bool) {
	for _, b := range s.fab.TrainBanks(slice, a.Core, a.Cycle) {
		cur := s.sum(b, feat)
		if noReuse && cur > trainMargin || !noReuse && cur < -trainMargin {
			continue
		}
		for f := 0; f < numFeatures; f++ {
			w := &s.w[b][f][feat[f]]
			if noReuse {
				if *w < weightMax {
					*w++
				}
			} else if *w > weightMin {
				*w--
			}
		}
	}
}

// predict returns the no-reuse confidence sum and the fill-path latency.
func (s *Shared) predict(slice int, a repl.Access, feat [numFeatures]uint32) (sum int, lat uint32) {
	b, lat := s.fab.PredictBank(slice, a.Core, a.Cycle)
	return s.sum(b, feat), lat
}

// lineState is the per-line metadata.
type lineState struct {
	feat    [numFeatures]uint32
	core    uint16
	reused  bool
	sampled bool
	valid   bool
}

// Slice is the perceptron policy for one LLC slice: LRU base order with
// perceptron-driven bypass and distant insertion.
type Slice struct {
	shared  *Shared
	sliceID int
	sel     sampler.SetSelector

	stamps  []uint64
	clock   uint64
	lines   []lineState
	penalty uint32

	pendingSum   int
	pendingValid bool
}

// NewSlice builds the per-slice policy instance.
func NewSlice(shared *Shared, sliceID int, sel sampler.SetSelector) *Slice {
	cfg := shared.cfg
	return &Slice{
		shared:  shared,
		sliceID: sliceID,
		sel:     sel,
		stamps:  make([]uint64, cfg.Sets*cfg.Ways),
		lines:   make([]lineState, cfg.Sets*cfg.Ways),
	}
}

// Name implements repl.Policy.
func (p *Slice) Name() string { return "perceptron" }

// FillPenalty implements repl.FillLatencier.
func (p *Slice) FillPenalty() uint32 { return p.penalty }

func (p *Slice) idx(set, way int) int { return set*p.shared.cfg.Ways + way }

// OnAccess implements repl.Observer.
func (p *Slice) OnAccess(set int, a repl.Access, hit bool) {
	if a.Type.IsDemand() {
		p.sel.OnAccess(set, hit)
	}
}

// OnHit implements repl.Policy: reuse observed — train the inserting
// features as reused (once), promote.
func (p *Slice) OnHit(set, way int, a repl.Access) {
	if a.Type == mem.Writeback {
		return
	}
	i := p.idx(set, way)
	p.clock++
	p.stamps[i] = p.clock
	ln := &p.lines[i]
	if ln.sampled && ln.valid && !ln.reused {
		ln.reused = true
		p.shared.train(p.sliceID, a, ln.feat, false)
	}
}

// Victim implements repl.Policy: LRU order, with perceptron bypass for
// strongly no-reuse fills.
func (p *Slice) Victim(set int, a repl.Access) int {
	if a.Type.IsDemand() || a.Type == mem.Prefetch {
		feat := p.shared.features(a.PC, a.Block, a.Core)
		sum, lat := p.shared.predict(p.sliceID, a, feat)
		p.penalty = lat
		p.pendingSum, p.pendingValid = sum, true
		if sum >= tauBypass {
			return repl.Bypass
		}
	}
	base := set * p.shared.cfg.Ways
	best, bestStamp := 0, p.stamps[base]
	for w := 1; w < p.shared.cfg.Ways; w++ {
		if p.stamps[base+w] < bestStamp {
			best, bestStamp = w, p.stamps[base+w]
		}
	}
	return best
}

// OnEvict implements repl.Policy: dead sampled lines train as no-reuse.
func (p *Slice) OnEvict(set, way int, _ uint64) {
	i := p.idx(set, way)
	ln := &p.lines[i]
	if ln.sampled && ln.valid && !ln.reused {
		a := repl.Access{Core: int(ln.core)}
		p.shared.train(p.sliceID, a, ln.feat, true)
	}
	p.lines[i] = lineState{}
}

// OnFill implements repl.Policy.
func (p *Slice) OnFill(set, way int, a repl.Access) {
	i := p.idx(set, way)
	p.clock++
	_, sampled := p.sel.IsSampled(set)
	if a.Type == mem.Writeback {
		p.stamps[i] = 0
		p.lines[i] = lineState{sampled: sampled}
		p.penalty = 0
		return
	}
	feat := p.shared.features(a.PC, a.Block, a.Core)
	sum := p.pendingSum
	if !p.pendingValid {
		var lat uint32
		sum, lat = p.shared.predict(p.sliceID, a, feat)
		p.penalty = lat
	}
	p.pendingValid = false
	if sum >= tauDead {
		p.stamps[i] = 0 // distant insertion
	} else {
		p.stamps[i] = p.clock
	}
	p.lines[i] = lineState{feat: feat, core: uint16(a.Core), sampled: sampled, valid: true}
}

// Budget reports per-core storage in bytes.
func Budget(cfg Config, sampledSets int, dynamic bool) map[string]int {
	cfg = cfg.Normalize()
	out := map[string]int{
		"weights":       numFeatures * (1 << cfg.TableBits) * 6 / 8,
		"line-metadata": cfg.Sets * cfg.Ways * 2,
	}
	if dynamic {
		out["saturating-counters"] = cfg.Sets
	}
	_ = sampledSets
	return out
}
