package hawkeye

import (
	"testing"

	"drishti/internal/fabric"
	"drishti/internal/mem"
	"drishti/internal/noc"
	"drishti/internal/repl"
	"drishti/internal/sampler"
	"drishti/internal/stats"
)

func build(t *testing.T, placement fabric.Placement, sets, ways, slices int) (*Shared, []*Slice, *fabric.Fabric) {
	t.Helper()
	fab, err := fabric.New(fabric.Config{
		Placement: placement,
		Slices:    slices,
		Cores:     slices,
		Mesh:      noc.NewMesh(slices, 4, 2),
		Star:      noc.NewStar(slices, 3),
	})
	if err != nil {
		t.Fatal(err)
	}
	cfg := Config{Sets: sets, Ways: ways, Slices: slices, Cores: slices, SampledSets: sets}
	sh, err := NewShared(cfg, fab)
	if err != nil {
		t.Fatal(err)
	}
	var ps []*Slice
	for i := 0; i < slices; i++ {
		sel := sampler.NewStatic(sets, sets, stats.NewRand(uint64(i))) // all sets sampled
		ps = append(ps, NewSlice(sh, i, sel))
	}
	return sh, ps, fab
}

func access(pc, block uint64, typ mem.AccessType) repl.Access {
	return repl.Access{PC: pc, Block: block, Type: typ}
}

func TestConfigValidate(t *testing.T) {
	if err := (Config{Sets: 4, Ways: 2, Slices: 1, Cores: 1, SampledSets: 8}).Validate(); err == nil {
		t.Fatal("sampled sets > sets accepted")
	}
	if err := (Config{}).Normalize().Validate(); err == nil {
		t.Fatal("zero geometry accepted")
	}
}

func TestLearnsScanIsAverse(t *testing.T) {
	_, ps, _ := build(t, fabric.Local, 4, 2, 1)
	p := ps[0]
	scanPC := uint64(0xBAD)
	// A long scan through set 0: blocks never reuse.
	for i := uint64(0); i < 200; i++ {
		p.OnAccess(0, access(scanPC, i*4, mem.Load), false)
	}
	// After enough history evictions the PC must be predicted averse.
	sig := p.shared.index(scanPC, 0, false)
	if friendly, _ := p.shared.predict(0, repl.Access{}, sig); friendly {
		t.Fatal("scan PC still predicted cache-friendly")
	}
	// And fills from it go to RRPV 7 (immediately evictable).
	p.OnFill(0, 0, access(scanPC, 999, mem.Load))
	if p.rrpv[0] != rrpvMax {
		t.Fatalf("averse fill rrpv %d", p.rrpv[0])
	}
}

func TestLearnsLoopIsFriendly(t *testing.T) {
	_, ps, _ := build(t, fabric.Local, 4, 4, 1)
	p := ps[0]
	loopPC := uint64(0x600D)
	// Two blocks ping-ponging in set 0: short reuse, low occupancy.
	for round := 0; round < 50; round++ {
		for b := uint64(0); b < 2; b++ {
			p.OnAccess(0, access(loopPC, b*4, mem.Load), true)
		}
	}
	sig := p.shared.index(loopPC, 0, false)
	if friendly, _ := p.shared.predict(0, repl.Access{}, sig); !friendly {
		t.Fatal("looping PC predicted averse")
	}
	p.OnFill(0, 1, access(loopPC, 123, mem.Load))
	if p.rrpv[1] != 0 {
		t.Fatalf("friendly fill rrpv %d", p.rrpv[1])
	}
}

func TestVictimPrefersAverse(t *testing.T) {
	_, ps, _ := build(t, fabric.Local, 2, 2, 1)
	p := ps[0]
	p.rrpv[p.idx(0, 0)] = 0
	p.rrpv[p.idx(0, 1)] = rrpvMax
	if v := p.Victim(0, repl.Access{}); v != 1 {
		t.Fatalf("victim %d, want the RRPV-7 way", v)
	}
}

func TestLocalIsMyopicGlobalIsNot(t *testing.T) {
	// Train a PC in slice 0 only; with Local placement slice 1 knows
	// nothing, with PerCoreGlobal it shares the view.
	for _, tc := range []struct {
		placement fabric.Placement
		wantSame  bool
	}{
		{fabric.Local, false},
		{fabric.PerCoreGlobal, true},
	} {
		sh, ps, _ := build(t, tc.placement, 4, 2, 2)
		scanPC := uint64(0xF00)
		for i := uint64(0); i < 300; i++ {
			ps[0].OnAccess(0, access(scanPC, i*4, mem.Load), false)
		}
		sig := sh.index(scanPC, 0, false)
		// Prediction as seen from slice 1, core 0.
		b1, _ := sh.fab.PredictBank(1, 0, 0)
		trained := sh.bank[b1][sig] != friendlyAt
		if trained != tc.wantSame {
			t.Fatalf("%v: slice-1 view trained=%v, want %v", tc.placement, trained, tc.wantSame)
		}
	}
}

func TestGenerationFlushDropsUnsampledSets(t *testing.T) {
	fab := fabric.MustNew(fabric.Config{Placement: fabric.Local, Slices: 1, Cores: 1})
	cfg := Config{Sets: 16, Ways: 2, Slices: 1, Cores: 1, SampledSets: 4}
	sh, err := NewShared(cfg, fab)
	if err != nil {
		t.Fatal(err)
	}
	dyn := sampler.MustDynamic(sampler.DynamicConfig{
		Sets: 16, N: 4, CounterBits: 8, MonitorLen: 64, ActiveLen: 64, UniformThreshold: 1,
	}, stats.NewRand(1))
	p := NewSlice(sh, 0, dyn)
	// Fill some sampled history on whatever is sampled now.
	set := dyn.SampledSets()[0]
	p.OnAccess(set, access(1, 1, mem.Load), false)
	if len(p.samples) == 0 {
		t.Fatal("no sample state allocated")
	}
	// Drive a reselection: all sets miss except the current sample.
	for i := 0; i < 200; i++ {
		dyn.OnAccess(i%16, i%16 == set)
	}
	p.maybeFlush()
	for s := range p.samples {
		if _, ok := dyn.IsSampled(s); !ok {
			t.Fatalf("stale sample state kept for unsampled set %d", s)
		}
	}
}

func TestBudget(t *testing.T) {
	cfg := Config{Sets: 2048, Ways: 16, Slices: 32, Cores: 32}
	without := Budget(cfg, 64, false)
	with := Budget(cfg, 8, true)
	sum := func(m map[string]int) int {
		t := 0
		for _, v := range m {
			t += v
		}
		return t
	}
	// Table 3's direction: Drishti saves storage despite the counters.
	if sum(with) >= sum(without) {
		t.Fatalf("Drishti budget %d ≥ baseline %d", sum(with), sum(without))
	}
	if with["saturating-counters"] != 2048 {
		t.Fatalf("saturating counters %d B, want 2048 (2048 × 1B)", with["saturating-counters"])
	}
	if _, ok := without["saturating-counters"]; ok {
		t.Fatal("baseline should have no saturating counters")
	}
}
