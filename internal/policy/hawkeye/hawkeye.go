// Package hawkeye implements the Hawkeye LLC replacement policy (Jain &
// Lin, ISCA'16): Belady's-OPT emulation over sampled sets (OPTgen), a
// PC-indexed 3-bit reuse predictor, and RRIP-style insertion/aging.
//
// The implementation is slice-aware: predictor tables are banked through a
// fabric.Fabric, so the same code runs as baseline Hawkeye (local per-slice
// predictor), D-Hawkeye (per-core yet global predictor over NOCSTAR), or any
// other placement from Table 2. Sampled sets come from a sampler.SetSelector
// (static random, or Drishti's dynamic sampled cache).
package hawkeye

import (
	"fmt"

	"drishti/internal/fabric"
	"drishti/internal/mem"
	"drishti/internal/policy/optgen"
	"drishti/internal/repl"
	"drishti/internal/sampler"
)

// Config sizes Hawkeye for one LLC slice population.
type Config struct {
	Sets             int // sets per slice
	Ways             int // slice associativity
	Slices           int
	Cores            int
	SampledSets      int // per slice (paper: 64 baseline, 8 with Drishti)
	PredictorEntries int // per bank, 3-bit counters (default 8192)
	HistoryFactor    int // OPTgen window = HistoryFactor×Ways (default 8)
}

// Normalize fills defaults.
func (c Config) Normalize() Config {
	if c.SampledSets == 0 {
		c.SampledSets = 64
	}
	if c.PredictorEntries == 0 {
		c.PredictorEntries = 8192
	}
	if c.HistoryFactor == 0 {
		c.HistoryFactor = 8
	}
	return c
}

// Validate reports configuration errors.
func (c Config) Validate() error {
	if c.Sets <= 0 || c.Ways <= 0 || c.Slices <= 0 || c.Cores <= 0 {
		return fmt.Errorf("hawkeye: geometry must be positive: %+v", c)
	}
	if c.SampledSets > c.Sets {
		return fmt.Errorf("hawkeye: %d sampled sets exceed %d sets", c.SampledSets, c.Sets)
	}
	if c.PredictorEntries&(c.PredictorEntries-1) != 0 {
		return fmt.Errorf("hawkeye: predictor entries must be a power of two")
	}
	return nil
}

const (
	counterMax = 7 // 3-bit saturating counters
	friendlyAt = 4 // counter value at/above which a PC is cache-friendly
	rrpvMax    = 7 // 3-bit RRPV
)

// Shared holds state common to every slice: the banked reuse predictor.
type Shared struct {
	cfg  Config
	fab  *fabric.Fabric
	bank [][]uint8 // NumBanks × PredictorEntries, 3-bit counters
}

// NewShared allocates the predictor banks for the given fabric placement.
func NewShared(cfg Config, fab *fabric.Fabric) (*Shared, error) {
	cfg = cfg.Normalize()
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	s := &Shared{cfg: cfg, fab: fab}
	s.bank = make([][]uint8, fab.NumBanks())
	for i := range s.bank {
		b := make([]uint8, cfg.PredictorEntries)
		for j := range b {
			b[j] = friendlyAt // start weakly friendly, like the reference code
		}
		s.bank[i] = b
	}
	return s, nil
}

// Config returns the normalized configuration.
func (s *Shared) Config() Config { return s.cfg }

// index hashes (PC, core, prefetch-bit) into a predictor entry. Per-core
// indexing matches Mockingjay-style per-slice-per-core predictors (Fig 1)
// and is what lets the per-core-global placement partition cleanly.
func (s *Shared) index(pc uint64, core int, prefetch bool) uint32 {
	h := pc*0x9e3779b97f4a7c15 ^ uint64(core)*0xbf58476d1ce4e5b9
	if prefetch {
		h ^= 0x94d049bb133111eb
	}
	h ^= h >> 29
	return uint32(h) & uint32(s.cfg.PredictorEntries-1)
}

// train moves the counter for sig toward friendly (true) or averse (false)
// in every bank the fabric says this event must update.
func (s *Shared) train(slice int, a repl.Access, sig uint32, friendly bool) {
	for _, b := range s.fab.TrainBanks(slice, a.Core, a.Cycle) {
		c := &s.bank[b][sig]
		if friendly {
			if *c < counterMax {
				*c++
			}
		} else if *c > 0 {
			*c--
		}
	}
}

// predict reads the counter for sig from the bank serving (slice, core) and
// returns the friendliness plus the interconnect latency on the fill path.
func (s *Shared) predict(slice int, a repl.Access, sig uint32) (friendly bool, lat uint32) {
	b, lat := s.fab.PredictBank(slice, a.Core, a.Cycle)
	return s.bank[b][sig] >= friendlyAt, lat
}

// Slice is the Hawkeye instance attached to one LLC slice. It implements
// repl.Policy, repl.Observer, and repl.FillLatencier.
type Slice struct {
	shared  *Shared
	sliceID int
	sel     sampler.SetSelector
	selGen  uint64

	rrpv     []uint8  // sets×ways
	lineSig  []uint32 // predictor index that inserted each line
	lineCore []uint16 // core that inserted each line (for detraining)
	lineFrnd []bool   // predicted friendly at insertion

	samples map[int]*optgen.Set // keyed by set number
	penalty uint32              // interconnect cycles charged to the last fill

	// Stats for the frequency-distribution experiments (Fig 4).
	InsertFriendly uint64
	InsertAverse   uint64
}

// NewSlice builds the per-slice policy instance.
func NewSlice(shared *Shared, sliceID int, sel sampler.SetSelector) *Slice {
	cfg := shared.cfg
	p := &Slice{
		shared:   shared,
		sliceID:  sliceID,
		sel:      sel,
		selGen:   sel.Generation(),
		rrpv:     make([]uint8, cfg.Sets*cfg.Ways),
		lineSig:  make([]uint32, cfg.Sets*cfg.Ways),
		lineCore: make([]uint16, cfg.Sets*cfg.Ways),
		lineFrnd: make([]bool, cfg.Sets*cfg.Ways),
		samples:  make(map[int]*optgen.Set, sel.N()),
	}
	for i := range p.rrpv {
		p.rrpv[i] = rrpvMax
	}
	return p
}

// Name implements repl.Policy.
func (p *Slice) Name() string { return "hawkeye" }

// FillPenalty implements repl.FillLatencier.
func (p *Slice) FillPenalty() uint32 { return p.penalty }

func (p *Slice) idx(set, way int) int { return set*p.shared.cfg.Ways + way }

// maybeFlush drops sampled history for sets the dynamic sampled cache no
// longer samples. Sets that stay selected (persistent hot sets) keep their
// history, as the hardware sampled-cache entries would remain valid.
func (p *Slice) maybeFlush() {
	if g := p.sel.Generation(); g != p.selGen {
		p.selGen = g
		for set := range p.samples {
			if _, ok := p.sel.IsSampled(set); !ok {
				delete(p.samples, set)
			}
		}
	}
}

// OnAccess implements repl.Observer: OPTgen training on sampled sets.
func (p *Slice) OnAccess(set int, a repl.Access, hit bool) {
	if a.Type == mem.Writeback {
		return
	}
	if a.Type.IsDemand() {
		p.sel.OnAccess(set, hit)
	}
	p.maybeFlush()
	if _, ok := p.sel.IsSampled(set); !ok {
		return
	}
	ss := p.samples[set]
	if ss == nil {
		ss = optgen.NewSet(p.shared.cfg.HistoryFactor*p.shared.cfg.Ways, p.shared.cfg.Ways)
		p.samples[set] = ss
	}
	sig := p.shared.index(a.PC, a.Core, a.Type == mem.Prefetch)
	if e, found := ss.Lookup(a.Block); found {
		trainA := repl.Access{Core: int(e.Core), Cycle: a.Cycle}
		p.shared.train(p.sliceID, trainA, e.Sig, ss.OptHit(e.TS))
		e.Sig, e.Core, e.TS = sig, uint16(a.Core), ss.Time()
	} else {
		ent := optgen.Entry{Sig: sig, Core: uint16(a.Core), TS: ss.Time()}
		if old, evicted := ss.Insert(a.Block, ent); evicted {
			// The line aged out of an 8×-LLC-sized window without reuse,
			// so OPT would not have kept it: detrain its PC.
			trainA := repl.Access{Core: int(old.Core), Cycle: a.Cycle}
			p.shared.train(p.sliceID, trainA, old.Sig, false)
		}
	}
	ss.Advance()
}

// OnHit implements repl.Policy.
func (p *Slice) OnHit(set, way int, a repl.Access) {
	if a.Type == mem.Writeback {
		return
	}
	p.rrpv[p.idx(set, way)] = 0
	p.lineSig[p.idx(set, way)] = p.shared.index(a.PC, a.Core, a.Type == mem.Prefetch)
}

// Victim implements repl.Policy: prefer an averse line (RRPV 7); otherwise
// evict the oldest friendly line and detrain the PC that inserted it.
func (p *Slice) Victim(set int, _ repl.Access) int {
	base := set * p.shared.cfg.Ways
	maxW, maxV := 0, p.rrpv[base]
	for w := 0; w < p.shared.cfg.Ways; w++ {
		v := p.rrpv[base+w]
		if v == rrpvMax {
			return w
		}
		if v > maxV {
			maxW, maxV = w, v
		}
	}
	return maxW
}

// OnEvict implements repl.Policy: evicting a line we predicted friendly
// means the prediction was wrong — detrain the PC that inserted it.
func (p *Slice) OnEvict(set, way int, _ uint64) {
	i := p.idx(set, way)
	if p.lineFrnd[i] && p.rrpv[i] < rrpvMax {
		a := repl.Access{Core: int(p.lineCore[i])}
		p.shared.train(p.sliceID, a, p.lineSig[i], false)
	}
}

// OnFill implements repl.Policy: predict, insert, and age.
func (p *Slice) OnFill(set, way int, a repl.Access) {
	sig := p.shared.index(a.PC, a.Core, a.Type == mem.Prefetch)
	i := p.idx(set, way)
	p.lineSig[i] = sig
	p.lineCore[i] = uint16(a.Core)

	if a.Type == mem.Writeback {
		// Dirty fills get the lowest priority (Section 5.2, Table 5).
		p.rrpv[i] = rrpvMax
		p.lineFrnd[i] = false
		p.penalty = 0
		return
	}

	friendly, lat := p.shared.predict(p.sliceID, a, sig)
	p.penalty = lat
	p.lineFrnd[i] = friendly
	if !friendly {
		p.rrpv[i] = rrpvMax
		p.InsertAverse++
		return
	}
	p.InsertFriendly++
	// Age everyone else so older friendly lines become evictable.
	base := set * p.shared.cfg.Ways
	for w := 0; w < p.shared.cfg.Ways; w++ {
		if base+w != i && p.rrpv[base+w] < rrpvMax-1 {
			p.rrpv[base+w]++
		}
	}
	p.rrpv[i] = 0
}

// Budget reports the per-core storage of the policy's structures in bytes,
// following Table 3's hardware entry sizes: a 64-set sampled cache costs
// 12 KB (compressed tags + signatures), the OPTgen occupancy vector 1 KB,
// the 8K-entry 3-bit predictor 3 KB, and the 3-bit RRIP state 12 KB for a
// 2048×16 slice. Drishti's 8-set configuration keeps wider entries, so its
// sampled cache floors at 3 KB.
func Budget(cfg Config, sampledSets int, dynamic bool) map[string]int {
	cfg = cfg.Normalize()
	sampledBytes := 12 * 1024 * sampledSets / 64
	if dynamic && sampledBytes < 3*1024 {
		sampledBytes = 3 * 1024
	}
	out := map[string]int{
		"sampled-cache":    sampledBytes,
		"occupancy-vector": 1024,
		"predictor":        cfg.PredictorEntries * 3 / 8,
		"rrip-counters":    cfg.Sets * cfg.Ways * 3 / 8,
	}
	if dynamic {
		out["saturating-counters"] = cfg.Sets // 2048 × 1 B
	}
	return out
}
