package sim

import (
	"drishti/internal/obs"
	"drishti/internal/sampler"
)

// telemetry is the epoch snapshotter (Config.TelemetryEpoch). It samples the
// simulator's existing cumulative counters every epoch's worth of LLC demand
// accesses and emits the deltas as an obs.Epoch. It only reads state — the
// simulation cannot observe it, which keeps results bit-identical with
// telemetry on or off (design decision D5; TestTelemetryDeterminism).
//
// Baselines ("prev*") hold the cumulative value at the previous flush; an
// epoch field is current−prev. Warmup complicates this: maybeFinishWarmup
// resets cache/core/NoC/fabric stats to zero but NOT the sampler's counters,
// so the warmup rebase zeroes the former baselines and re-reads the latter.
type telemetry struct {
	sink   obs.EpochSink
	epoch  uint64 // LLC demand accesses per epoch
	tag    string
	policy string

	seq   int
	loads uint64 // demand accesses since the last flush
	err   error  // first sink write error (returned from Run)

	dsc []*sampler.Dynamic // dynamic selectors in slice order (nil when none)

	prevSliceAcc  []uint64
	prevSliceMiss []uint64
	prevCoreAcc   []uint64
	prevCoreMiss  []uint64
	prevLookups   []uint64
	prevTrains    []uint64

	prevSampledMiss   []uint64
	prevUnsampledMiss []uint64
	prevSelections    []uint64
	prevUniform       []uint64
	prevChurn         []uint64

	prevMeshMsgs, prevMeshHops   uint64
	prevStarMsgs, prevStarStalls uint64
}

// newTelemetry sizes the baselines for s. Call after the system is fully
// assembled; returns nil when telemetry is disabled.
func newTelemetry(s *System) *telemetry {
	cfg := s.cfg
	if cfg.TelemetryEpoch == 0 {
		return nil
	}
	t := &telemetry{
		sink:   cfg.TelemetrySink,
		epoch:  cfg.TelemetryEpoch,
		tag:    cfg.TelemetryTag,
		policy: cfg.Policy.DisplayName(),

		prevSliceAcc:  make([]uint64, len(s.llc)),
		prevSliceMiss: make([]uint64, len(s.llc)),
		prevCoreAcc:   make([]uint64, cfg.Cores),
		prevCoreMiss:  make([]uint64, cfg.Cores),
	}
	if f := s.built.Fabric; f != nil {
		t.prevLookups = make([]uint64, len(f.BankLookups))
		t.prevTrains = make([]uint64, len(f.BankTrains))
	}
	for _, sel := range s.built.Selectors {
		if d, ok := sel.(*sampler.Dynamic); ok {
			t.dsc = append(t.dsc, d)
		}
	}
	if n := len(t.dsc); n > 0 {
		t.prevSampledMiss = make([]uint64, n)
		t.prevUnsampledMiss = make([]uint64, n)
		t.prevSelections = make([]uint64, n)
		t.prevUniform = make([]uint64, n)
		t.prevChurn = make([]uint64, n)
	}
	return t
}

// tick records one LLC demand access and flushes a full epoch when due.
func (t *telemetry) tick(s *System) {
	t.loads++
	if t.loads >= t.epoch {
		t.flush(s, false)
	}
}

// flush emits the epoch accumulated so far (a no-op when empty unless final)
// and advances the baselines. final marks the closing partial epoch.
func (t *telemetry) flush(s *System, final bool) {
	if t.loads == 0 && !final {
		return
	}
	e := &obs.Epoch{
		Run:    t.tag,
		Policy: t.policy,
		Seq:    t.seq,
		Loads:  t.loads,
		Warmup: !s.warmupDone,
		Final:  final,
		Slices: make([]obs.SliceEpoch, len(s.llc)),
		Cores:  make([]obs.CoreEpoch, len(s.coreLLCAccesses)),
	}
	for i, sl := range s.llc {
		acc := sl.Stats.DemandAccesses - t.prevSliceAcc[i]
		miss := sl.Stats.DemandMisses - t.prevSliceMiss[i]
		se := obs.SliceEpoch{Accesses: acc, Misses: miss}
		if acc > 0 {
			se.MissRate = float64(miss) / float64(acc)
		}
		e.Slices[i] = se
		t.prevSliceAcc[i] = sl.Stats.DemandAccesses
		t.prevSliceMiss[i] = sl.Stats.DemandMisses
	}
	for i := range s.coreLLCAccesses {
		acc := s.coreLLCAccesses[i] - t.prevCoreAcc[i]
		miss := s.coreLLCMisses[i] - t.prevCoreMiss[i]
		ce := obs.CoreEpoch{Accesses: acc, Misses: miss}
		if acc > 0 {
			ce.HitRate = 1 - float64(miss)/float64(acc)
		}
		e.Cores[i] = ce
		t.prevCoreAcc[i] = s.coreLLCAccesses[i]
		t.prevCoreMiss[i] = s.coreLLCMisses[i]
	}
	if f := s.built.Fabric; f != nil {
		e.Banks = make([]obs.BankEpoch, len(f.BankLookups))
		for i := range f.BankLookups {
			e.Banks[i] = obs.BankEpoch{
				Lookups: f.BankLookups[i] - t.prevLookups[i],
				Trains:  f.BankTrains[i] - t.prevTrains[i],
			}
			t.prevLookups[i] = f.BankLookups[i]
			t.prevTrains[i] = f.BankTrains[i]
		}
	}
	if len(t.dsc) > 0 {
		e.DSC = make([]obs.DSCEpoch, len(t.dsc))
		for i, d := range t.dsc {
			de := obs.DSCEpoch{
				SampledMisses:    d.SampledMisses - t.prevSampledMiss[i],
				UnsampledMisses:  d.UnsampledMisses - t.prevUnsampledMiss[i],
				Selections:       d.Selections - t.prevSelections[i],
				UniformFallbacks: d.UniformFallbacks - t.prevUniform[i],
				Churn:            d.Churn - t.prevChurn[i],
			}
			if tot := de.SampledMisses + de.UnsampledMisses; tot > 0 {
				de.Utilization = float64(de.SampledMisses) / float64(tot)
			}
			e.DSC[i] = de
			t.prevSampledMiss[i] = d.SampledMisses
			t.prevUnsampledMiss[i] = d.UnsampledMisses
			t.prevSelections[i] = d.Selections
			t.prevUniform[i] = d.UniformFallbacks
			t.prevChurn[i] = d.Churn
		}
	}
	e.Mesh = obs.MeshEpoch{Messages: s.mesh.Messages - t.prevMeshMsgs, Hops: s.mesh.HopSum - t.prevMeshHops}
	t.prevMeshMsgs, t.prevMeshHops = s.mesh.Messages, s.mesh.HopSum
	e.Star = obs.StarEpoch{Messages: s.star.Messages - t.prevStarMsgs, Stalls: s.star.Stalls - t.prevStarStalls}
	t.prevStarMsgs, t.prevStarStalls = s.star.Messages, s.star.Stalls

	t.seq++
	t.loads = 0
	if err := t.sink.WriteEpoch(e); err != nil && t.err == nil {
		t.err = err
	}
}

// warmupReset follows maybeFinishWarmup's stat resets: everything that was
// zeroed gets a zero baseline; the sampler's counters survive warmup, so
// their baselines re-read the current values instead.
func (t *telemetry) warmupReset() {
	zero := func(v []uint64) {
		for i := range v {
			v[i] = 0
		}
	}
	zero(t.prevSliceAcc)
	zero(t.prevSliceMiss)
	zero(t.prevCoreAcc)
	zero(t.prevCoreMiss)
	zero(t.prevLookups)
	zero(t.prevTrains)
	for i, d := range t.dsc {
		t.prevSampledMiss[i] = d.SampledMisses
		t.prevUnsampledMiss[i] = d.UnsampledMisses
		t.prevSelections[i] = d.Selections
		t.prevUniform[i] = d.UniformFallbacks
		t.prevChurn[i] = d.Churn
	}
	t.prevMeshMsgs, t.prevMeshHops = 0, 0
	t.prevStarMsgs, t.prevStarStalls = 0, 0
}
