package sim

import (
	"reflect"
	"testing"

	"drishti/internal/obs"
	"drishti/internal/policies"
)

// memSink collects epochs in memory for assertions.
type memSink struct {
	epochs []*obs.Epoch
}

func (m *memSink) WriteEpoch(e *obs.Epoch) error {
	cp := *e
	m.epochs = append(m.epochs, &cp)
	return nil
}

func telemetryConfig(cores int) Config {
	cfg := testConfig(cores)
	cfg.Policy = policies.Spec{Name: "hawkeye", Drishti: true}
	return cfg
}

// TestTelemetryDeterminism is the D5 guard: enabling the epoch snapshotter
// must not perturb the simulation in any observable way — the final Result
// is bit-identical with telemetry on or off.
func TestTelemetryDeterminism(t *testing.T) {
	cores := 4
	cfg := telemetryConfig(cores)
	mix := testMix(t, cfg, "605.mcf_s-1554B", cores)

	plain, err := RunMix(cfg, mix)
	if err != nil {
		t.Fatal(err)
	}

	sink := &memSink{}
	tcfg := cfg
	tcfg.TelemetryEpoch = 2000
	tcfg.TelemetrySink = sink
	traced, err := RunMix(tcfg, mix)
	if err != nil {
		t.Fatal(err)
	}

	if !reflect.DeepEqual(plain, traced) {
		t.Fatalf("telemetry changed the simulation result:\noff: %+v\non:  %+v", plain, traced)
	}
	if len(sink.epochs) < 2 {
		t.Fatalf("only %d epochs emitted", len(sink.epochs))
	}
}

// TestTelemetryEpochContent checks the acceptance shape on a 4-core
// Hawkeye+Drishti run: per-slice demand miss rates, per-bank predictor
// activity, DSC sampled-set utilization, and NoC traffic all present, with
// epoch deltas consistent with the cumulative Result.
func TestTelemetryEpochContent(t *testing.T) {
	cores := 4
	cfg := telemetryConfig(cores)
	cfg.TelemetryEpoch = 2000
	sink := &memSink{}
	cfg.TelemetrySink = sink
	mix := testMix(t, cfg, "605.mcf_s-1554B", cores)

	res, err := RunMix(cfg, mix)
	if err != nil {
		t.Fatal(err)
	}
	if len(sink.epochs) == 0 {
		t.Fatal("no epochs emitted")
	}

	last := sink.epochs[len(sink.epochs)-1]
	if !last.Final {
		t.Fatal("last epoch not marked final")
	}
	for i, e := range sink.epochs[:len(sink.epochs)-1] {
		if e.Seq != i {
			t.Fatalf("epoch %d has seq %d", i, e.Seq)
		}
		if !e.Warmup && !e.Final && e.Loads != cfg.TelemetryEpoch {
			t.Fatalf("full epoch %d has %d loads", i, e.Loads)
		}
	}

	var sawSliceTraffic, sawBankActivity, sawDSCMisses, sawMesh bool
	for _, e := range sink.epochs {
		if e.Run != mix.Name {
			t.Fatalf("epoch run tag %q, want mix name %q", e.Run, mix.Name)
		}
		if e.Policy == "" {
			t.Fatal("epoch missing policy name")
		}
		if len(e.Slices) != cores || len(e.Cores) != cores {
			t.Fatalf("epoch has %d slices / %d cores", len(e.Slices), len(e.Cores))
		}
		// Drishti per-core-global placement: one predictor bank per core.
		if len(e.Banks) != cores {
			t.Fatalf("epoch has %d banks, want %d", len(e.Banks), cores)
		}
		// Dynamic sampled cache on every slice.
		if len(e.DSC) != cores {
			t.Fatalf("epoch has %d DSC entries, want %d", len(e.DSC), cores)
		}
		for _, s := range e.Slices {
			if s.MissRate < 0 || s.MissRate > 1 {
				t.Fatalf("slice miss rate %v out of range", s.MissRate)
			}
			if s.Accesses > 0 {
				sawSliceTraffic = true
			}
		}
		for _, c := range e.Cores {
			if c.HitRate < 0 || c.HitRate > 1 {
				t.Fatalf("core hit rate %v out of range", c.HitRate)
			}
		}
		for _, b := range e.Banks {
			if b.Lookups > 0 || b.Trains > 0 {
				sawBankActivity = true
			}
		}
		for _, d := range e.DSC {
			if d.Utilization < 0 || d.Utilization > 1 {
				t.Fatalf("DSC utilization %v out of range", d.Utilization)
			}
			if d.SampledMisses+d.UnsampledMisses > 0 {
				sawDSCMisses = true
			}
		}
		if e.Mesh.Messages > 0 {
			sawMesh = true
		}
	}
	if !sawSliceTraffic || !sawBankActivity || !sawDSCMisses || !sawMesh {
		t.Fatalf("missing signals: slice=%t bank=%t dsc=%t mesh=%t",
			sawSliceTraffic, sawBankActivity, sawDSCMisses, sawMesh)
	}

	// Post-warmup epoch deltas must sum to the cumulative Result counters
	// (both count demand traffic from the same reset point).
	var epochMisses uint64
	for _, e := range sink.epochs {
		if e.Warmup {
			continue
		}
		for _, s := range e.Slices {
			epochMisses += s.Misses
		}
	}
	if epochMisses != res.LLC.DemandMisses {
		t.Fatalf("epoch miss deltas sum to %d, Result has %d", epochMisses, res.LLC.DemandMisses)
	}
}

// TestTelemetryValidate: an epoch interval without a sink is a config error.
func TestTelemetryValidate(t *testing.T) {
	cfg := DefaultConfig(4)
	cfg.TelemetryEpoch = 1000
	if err := cfg.Validate(); err == nil {
		t.Fatal("epoch without sink accepted")
	}
	cfg.TelemetrySink = &memSink{}
	if err := cfg.Validate(); err != nil {
		t.Fatal(err)
	}
}

// TestTelemetryKey: the epoch interval must separate memo-cache entries
// (a cached telemetry-off result replays no epochs), while sink and tag —
// which don't affect what is simulated — must not.
func TestTelemetryKey(t *testing.T) {
	a := DefaultConfig(4)
	b := a
	b.TelemetryEpoch = 1000
	if a.Key() == b.Key() {
		t.Fatal("telemetry epoch not keyed")
	}
	c := b
	c.TelemetrySink = &memSink{}
	c.TelemetryTag = "cell-7"
	if b.Key() != c.Key() {
		t.Fatal("sink/tag leaked into the key")
	}
}
