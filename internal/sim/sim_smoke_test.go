package sim

import (
	"testing"

	"drishti/internal/policies"
	"drishti/internal/workload"
)

func smokeConfig(cores int) Config {
	cfg := DefaultConfig(cores)
	cfg.Instructions = 20_000
	cfg.Warmup = 4_000
	return cfg
}

func TestSmokeSingleCoreLRU(t *testing.T) {
	cfg := smokeConfig(1)
	mix := workload.Homogeneous(workload.SPECModels()[0], 1, 7)
	res, err := RunMix(cfg, mix)
	if err != nil {
		t.Fatalf("RunMix: %v", err)
	}
	if res.PerCore[0].IPC <= 0 || res.PerCore[0].IPC > 6 {
		t.Fatalf("implausible IPC %v", res.PerCore[0].IPC)
	}
	if res.LLC.DemandAccesses == 0 {
		t.Fatalf("no LLC traffic")
	}
	t.Logf("IPC=%.3f MPKI=%.2f WPKI=%.2f APKI=%.2f dramReads=%d",
		res.PerCore[0].IPC, res.MPKI, res.WPKI, res.APKI, res.DRAM.Reads)
}

func TestSmokeFourCorePolicies(t *testing.T) {
	mix := workload.Homogeneous(workload.SPECModels()[0], 4, 11) // mcf-like
	for _, spec := range []policies.Spec{
		{Name: "lru"},
		{Name: "hawkeye"},
		{Name: "mockingjay"},
		{Name: "hawkeye", Drishti: true},
		{Name: "mockingjay", Drishti: true},
	} {
		spec := spec
		t.Run(spec.DisplayName(), func(t *testing.T) {
			cfg := smokeConfig(4)
			cfg.Policy = spec
			res, err := RunMix(cfg, mix)
			if err != nil {
				t.Fatalf("RunMix: %v", err)
			}
			t.Logf("%-14s IPCsum=%.3f MPKI=%.2f WPKI=%.2f", spec.DisplayName(), res.IPCSum(), res.MPKI, res.WPKI)
		})
	}
}

func TestSmokeDeterminism(t *testing.T) {
	cfg := smokeConfig(2)
	cfg.Policy = policies.Spec{Name: "mockingjay", Drishti: true}
	mix := workload.Homogeneous(workload.GAPModels()[0], 2, 3)
	a, err := RunMix(cfg, mix)
	if err != nil {
		t.Fatalf("run a: %v", err)
	}
	b, err := RunMix(cfg, mix)
	if err != nil {
		t.Fatalf("run b: %v", err)
	}
	if a.IPCSum() != b.IPCSum() || a.MPKI != b.MPKI || a.LLC.TotalAccesses != b.LLC.TotalAccesses {
		t.Fatalf("non-deterministic results: %+v vs %+v", a.LLC, b.LLC)
	}
}
