package sim

import (
	"drishti/internal/dram"
	"drishti/internal/energy"
	"drishti/internal/fabric"
	"drishti/internal/metrics"
	"drishti/internal/sampler"
)

// CoreResult summarizes one core's measured region.
type CoreResult struct {
	IPC          float64
	Instructions uint64
	Cycles       uint64
	LLCAccesses  uint64 // demand accesses this core made to the LLC
	LLCMisses    uint64 // demand misses
}

// LLCResult aggregates the sliced LLC.
type LLCResult struct {
	DemandAccesses uint64
	DemandMisses   uint64
	TotalAccesses  uint64
	Writebacks     uint64 // dirty evictions to DRAM
	Bypasses       uint64
}

// PCSliceStats summarizes the Fig 2 scatter tracker.
type PCSliceStats struct {
	PCs         int     // PCs with ≥2 demand loads at the LLC
	OneSlicePCs int     // of those, PCs whose loads all hit one slice
	FractionOne float64 // OneSlicePCs / PCs
}

// Result is everything a run produces.
type Result struct {
	PolicyName string
	Cores      int

	PerCore []CoreResult
	LLC     LLCResult

	MPKI float64 // LLC demand misses per kilo instruction (all cores)
	WPKI float64 // LLC→DRAM writebacks per kilo instruction
	APKI float64 // LLC demand accesses per kilo instruction

	TotalInstructions uint64

	Fabric     *fabric.Stats // nil for non-predictor policies
	BankAPKI   []float64     // per-bank predictor accesses per kilo instr
	MeshMsgs   uint64
	MeshAvgLat float64
	StarMsgs   uint64

	DRAM dram.Stats

	Energy energy.Breakdown

	PrefetchesIssued  uint64
	PrefetchesDropped uint64 // resident or bandwidth-throttled candidates

	// Dynamic sampled cache activity (zero for static selection).
	DSCSelections       uint64
	DSCUniformFallbacks uint64

	PCSlices *PCSliceStats // nil unless TrackPCSlices

	Budget map[string]int // per-core policy storage, bytes
}

// IPCs returns the per-core IPC vector.
func (r *Result) IPCs() []float64 {
	out := make([]float64, 0, len(r.PerCore))
	for _, c := range r.PerCore {
		out = append(out, c.IPC)
	}
	return out
}

// IPCSum returns ΣIPC (throughput; used as a quick comparison metric).
func (r *Result) IPCSum() float64 {
	var s float64
	for _, c := range r.PerCore {
		s += c.IPC
	}
	return s
}

// collect builds the Result after Run completes.
func (s *System) collect() *Result {
	r := &Result{
		PolicyName: s.cfg.Policy.DisplayName(),
		Cores:      s.cfg.Cores,
		Budget:     s.built.Budget,
	}
	for c := range s.cores {
		rec := s.finishedAt[c]
		r.PerCore = append(r.PerCore, CoreResult{
			IPC:          rec.ipc,
			Instructions: rec.instrs,
			Cycles:       rec.cycles,
			LLCAccesses:  s.coreLLCAccesses[c],
			LLCMisses:    s.coreLLCMisses[c],
		})
		r.TotalInstructions += rec.instrs
	}
	for _, sl := range s.llc {
		r.LLC.DemandAccesses += sl.Stats.DemandAccesses
		r.LLC.DemandMisses += sl.Stats.DemandMisses
		r.LLC.TotalAccesses += sl.Stats.Accesses
		r.LLC.Writebacks += sl.Stats.Writebacks
		r.LLC.Bypasses += sl.Stats.Bypasses
	}
	r.MPKI = metrics.PerKiloInstr(r.LLC.DemandMisses, r.TotalInstructions)
	r.WPKI = metrics.PerKiloInstr(r.LLC.Writebacks, r.TotalInstructions)
	r.APKI = metrics.PerKiloInstr(r.LLC.DemandAccesses, r.TotalInstructions)

	if f := s.built.Fabric; f != nil {
		st := f.Stats
		r.Fabric = &st
		perCoreInstr := r.TotalInstructions / uint64(s.cfg.Cores)
		for _, acc := range f.BankAccesses {
			r.BankAPKI = append(r.BankAPKI, metrics.PerKiloInstr(acc, perCoreInstr))
		}
	}
	r.MeshMsgs = s.mesh.Messages
	r.MeshAvgLat = s.mesh.AvgLatency()
	r.StarMsgs = s.star.Messages
	r.DRAM = s.ram.Stats
	r.PrefetchesIssued = s.prefIssued
	r.PrefetchesDropped = s.prefDropped
	for _, sel := range s.built.Selectors {
		if d, ok := sel.(*sampler.Dynamic); ok {
			r.DSCSelections += d.Selections
			r.DSCUniformFallbacks += d.UniformFallbacks
		}
	}

	ev := energy.Events{
		LLCAccesses:  r.LLC.TotalAccesses,
		DRAMReads:    r.DRAM.Reads,
		DRAMWrites:   r.DRAM.Writes,
		MeshMessages: s.mesh.Messages,
		MeshHops:     s.mesh.HopSum,
		StarMessages: s.star.Messages,
	}
	if r.Fabric != nil {
		ev.PredAccesses = r.Fabric.Lookups + r.Fabric.Trainings
	}
	r.Energy = energy.Default().Compute(ev)

	if s.pcSlices != nil {
		ps := &PCSliceStats{}
		s.pcSlices.Range(func(_ uint64, t *pcTrack) bool {
			if t.loads < 2 {
				return true // exclude single-load PCs, as Fig 2 does
			}
			ps.PCs++
			if popcount2(t.slices) == 1 {
				ps.OneSlicePCs++
			}
			return true
		})
		if ps.PCs > 0 {
			ps.FractionOne = float64(ps.OneSlicePCs) / float64(ps.PCs)
		}
		r.PCSlices = ps
	}
	return r
}

func popcount2(v [2]uint64) int {
	return popcount(v[0]) + popcount(v[1])
}

func popcount(v uint64) int {
	n := 0
	for v != 0 {
		v &= v - 1
		n++
	}
	return n
}
