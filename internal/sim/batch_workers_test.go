package sim

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"runtime"
	"sync"
	"testing"
	"time"

	"drishti/internal/obs"
	"drishti/internal/workload"
)

// This file pins the parallel-lockstep contract: a batched run is
// byte-identical at every Config.LaneWorkers setting — per-lane Results,
// the telemetry byte stream on one shared sink, and the deadlock-breaker
// window-growth path all match the serial (workers=1) rotation exactly.

// workerCounts is the sweep the regression tests run: serial, the
// smallest parallel pool, and the host default. Duplicates are kept —
// rerunning a count is a cheap extra determinism check.
func workerCounts() []int {
	return []int{1, 2, runtime.GOMAXPROCS(0)}
}

// batchWorkersRun executes one batch at the given worker count and
// returns a SHA-256 digest per lane result plus the bytes a single
// shared telemetry sink received (lane-tagged NDJSON).
func batchWorkersRun(t *testing.T, cfg Config, mix workload.Mix, workers int) ([]string, []byte) {
	t.Helper()
	var shared bytes.Buffer
	sink := obs.NewNDJSONWriter(&shared)
	base := cfg
	base.LaneWorkers = workers
	base.TelemetryEpoch = 2000
	base.TelemetrySink = sink // Validate needs one even though variants override

	variants := make([]Variant, len(batchTestSpecs))
	for i, spec := range batchTestSpecs {
		variants[i] = Variant{
			Policy:        spec,
			TelemetryTag:  "cell-" + spec.DisplayName(),
			TelemetrySink: obs.TagEpochs(sink, i+1, "wsweep"),
		}
	}
	results, err := RunBatch(base, variants, mix)
	if err != nil {
		t.Fatalf("RunBatch (workers=%d): %v", workers, err)
	}
	hashes := make([]string, len(results))
	for i, r := range results {
		sum := sha256.Sum256([]byte(resultJSON(t, r)))
		hashes[i] = hex.EncodeToString(sum[:])
	}
	if shared.Len() == 0 {
		t.Fatalf("workers=%d: shared sink received no telemetry", workers)
	}
	return hashes, shared.Bytes()
}

// assertWorkersSweepIdentical runs the batch across workerCounts and
// requires SHA-256-equal results and a byte-equal shared telemetry
// stream at every count.
func assertWorkersSweepIdentical(t *testing.T, cfg Config, mix workload.Mix) {
	t.Helper()
	var (
		refHashes []string
		refTelem  []byte
	)
	for _, w := range workerCounts() {
		hashes, telem := batchWorkersRun(t, cfg, mix, w)
		if refHashes == nil {
			refHashes, refTelem = hashes, telem
			continue
		}
		for i := range hashes {
			if hashes[i] != refHashes[i] {
				t.Errorf("workers=%d lane %d (%s): result SHA-256 %s, workers=1 got %s",
					w, i, batchTestSpecs[i].DisplayName(), hashes[i], refHashes[i])
			}
		}
		if !bytes.Equal(telem, refTelem) {
			t.Errorf("workers=%d: shared telemetry stream differs from workers=1 (%d vs %d bytes)",
				w, len(telem), len(refTelem))
		}
	}
}

// TestBatchWorkersSweepDeterminism is the cross-worker-count regression
// test, on both sharing tiers.
func TestBatchWorkersSweepDeterminism(t *testing.T) {
	for _, tier2 := range []bool{false, true} {
		cfg, mix := batchTestConfig(t, 2)
		if tier2 {
			cfg.L1Prefetcher, cfg.L2Prefetcher = "none", "none"
			if !tier2Eligible(cfg) {
				t.Fatal("config not tier-2 eligible")
			}
		}
		assertWorkersSweepIdentical(t, cfg, mix)
	}
}

// TestBatchForkedWorkersDeterminism covers the generator-fork fallback:
// forked lanes run on the same pool and must stay byte-identical too.
func TestBatchForkedWorkersDeterminism(t *testing.T) {
	old := batchMemBudget
	batchMemBudget = 1
	defer func() { batchMemBudget = old }()
	cfg, mix := batchTestConfig(t, 2)
	assertWorkersSweepIdentical(t, cfg, mix)
}

// growCounter counts deadlock-breaker "window-grow" events; safe for the
// concurrent callbacks the PhaseObserver contract allows.
type growCounter struct {
	mu    sync.Mutex
	grows int
}

func (g *growCounter) ObservePhase(phase string, lane int, d time.Duration) {
	if phase != "window-grow" {
		return
	}
	g.mu.Lock()
	g.grows++
	g.mu.Unlock()
}

// TestBatchWorkersGrowthPathIdentity shrinks the lockstep window until
// the deadlock breaker fires and checks the growth count — and the
// results — are identical at every worker count. The rotation structure
// is part of the deterministic schedule, so a parallel rotation must
// block, grow, and resume exactly where the serial one does.
func TestBatchWorkersGrowthPathIdentity(t *testing.T) {
	oldWindow := batchWindow
	batchWindow = 32 // tight enough that cross-core shapes mutually block
	defer func() { batchWindow = oldWindow }()
	cfg, mix := batchTestConfig(t, 4)

	var (
		refHashes []string
		refGrows  = -1
	)
	for _, w := range workerCounts() {
		base := cfg
		base.LaneWorkers = w
		gc := &growCounter{}
		base.Phases = gc
		variants := make([]Variant, len(batchTestSpecs))
		for i, spec := range batchTestSpecs {
			variants[i] = Variant{Policy: spec}
		}
		results, err := RunBatch(base, variants, mix)
		if err != nil {
			t.Fatalf("RunBatch (workers=%d): %v", w, err)
		}
		hashes := make([]string, len(results))
		for i, r := range results {
			sum := sha256.Sum256([]byte(resultJSON(t, r)))
			hashes[i] = hex.EncodeToString(sum[:])
		}
		if refGrows < 0 {
			refHashes, refGrows = hashes, gc.grows
			if refGrows == 0 {
				t.Fatal("tight window never fired the deadlock breaker; the test exercises nothing")
			}
			continue
		}
		if gc.grows != refGrows {
			t.Errorf("workers=%d: %d window growths, workers=1 had %d", w, gc.grows, refGrows)
		}
		for i := range hashes {
			if hashes[i] != refHashes[i] {
				t.Errorf("workers=%d lane %d: result differs from workers=1 under a tight window", w, i)
			}
		}
	}
}
