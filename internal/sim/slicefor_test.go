package sim

import (
	"testing"

	"drishti/internal/trace"
	"drishti/internal/workload"
)

// newTestSystem builds a System for slice-mapping tests without running it.
func newTestSystem(t *testing.T, cores int) *System {
	t.Helper()
	cfg := testConfig(cores)
	readers := make([]trace.Reader, cores)
	g, err := workload.NewGenerator(workload.AllSPECGAP()[0].Scale(8, cfg.SetIndexBits()), 1)
	if err != nil {
		t.Fatal(err)
	}
	readers[0] = g
	sys, err := New(cfg, readers)
	if err != nil {
		t.Fatal(err)
	}
	return sys
}

// TestSliceForNonPowerOfTwoCores exercises the h % cores fallback: slice IDs
// must stay in range and reasonably balanced when the core count has no
// power-of-two mask.
func TestSliceForNonPowerOfTwoCores(t *testing.T) {
	for _, cores := range []int{3, 5, 6, 7, 12} {
		sys := newTestSystem(t, cores)
		const blocks = 30000 // per-slice expectation: blocks/cores
		counts := make([]int, cores)
		for b := uint64(0); b < blocks; b++ {
			s := sys.sliceFor(b<<8 | b%7)
			if s < 0 || s >= cores {
				t.Fatalf("cores=%d: slice %d out of range", cores, s)
			}
			counts[s]++
		}
		want := blocks / cores
		for s, c := range counts {
			if c < want/2 || c > want*2 {
				t.Errorf("cores=%d: slice %d got %d of %d blocks (want ≈%d)",
					cores, s, c, blocks, want)
			}
		}
	}
}

// TestSliceForDeterministic: the slice map is a pure function of the block
// address — repeated queries and a second identical system must agree.
func TestSliceForDeterministic(t *testing.T) {
	a := newTestSystem(t, 6)
	b := newTestSystem(t, 6)
	for blk := uint64(1); blk < 4096; blk += 37 {
		if a.sliceFor(blk) != a.sliceFor(blk) || a.sliceFor(blk) != b.sliceFor(blk) {
			t.Fatalf("sliceFor(%#x) not deterministic", blk)
		}
	}
}

// TestSliceForSingleCore: one core means one slice, whatever the hash says.
func TestSliceForSingleCore(t *testing.T) {
	sys := newTestSystem(t, 1)
	for blk := uint64(0); blk < 1000; blk++ {
		if s := sys.sliceFor(blk); s != 0 {
			t.Fatalf("cores=1: sliceFor(%#x) = %d", blk, s)
		}
	}
}
