package sim

import (
	"bytes"
	"sync"
	"testing"
	"time"

	"drishti/internal/obs"
)

// TestBatchPerLaneTelemetryMatchesSerial is the per-lane attribution
// regression test: a batched run with per-Variant telemetry tags and
// sinks must emit, for every lane, the byte-identical epoch stream its
// serial run emits. Before Variant.TelemetryTag existed, K lanes
// funneled into one tag and the streams could not even be compared.
func TestBatchPerLaneTelemetryMatchesSerial(t *testing.T) {
	cfg, mix := batchTestConfig(t, 2)
	cfg.TelemetryEpoch = 2000

	specs := batchTestSpecs[:3]
	variants := make([]Variant, len(specs))
	batchOut := make([]*bytes.Buffer, len(specs))
	for i, spec := range specs {
		batchOut[i] = &bytes.Buffer{}
		variants[i] = Variant{
			Policy:        spec,
			TelemetryTag:  "cell-" + spec.DisplayName(),
			TelemetrySink: obs.NewNDJSONWriter(batchOut[i]),
		}
	}
	base := cfg
	base.TelemetrySink = obs.NewNDJSONWriter(&bytes.Buffer{}) // Validate requires a sink
	if _, err := RunBatch(base, variants, mix); err != nil {
		t.Fatalf("RunBatch: %v", err)
	}

	for i, spec := range specs {
		var serialOut bytes.Buffer
		c := cfg
		c.Policy = spec
		c.TelemetryTag = "cell-" + spec.DisplayName()
		c.TelemetrySink = obs.NewNDJSONWriter(&serialOut)
		if _, err := RunMix(c, mix); err != nil {
			t.Fatalf("serial %s: %v", spec.DisplayName(), err)
		}
		if batchOut[i].Len() == 0 {
			t.Fatalf("lane %d (%s) emitted no telemetry", i, spec.DisplayName())
		}
		if got, want := batchOut[i].String(), serialOut.String(); got != want {
			t.Errorf("lane %d (%s): batched telemetry differs from serial\nbatched: %.300s\nserial:  %.300s",
				i, spec.DisplayName(), got, want)
		}
	}
}

// phaseLog is a PhaseObserver accumulating observed durations per
// (phase, lane). The mutex keeps -race happy if a future batch driver
// goes parallel; today calls arrive from one goroutine.
type phaseLog struct {
	mu  sync.Mutex
	got map[string]time.Duration
}

func (p *phaseLog) ObservePhase(phase string, lane int, d time.Duration) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.got == nil {
		p.got = make(map[string]time.Duration)
	}
	key := phase
	if lane >= 0 {
		key = phase + "#" + string(rune('0'+lane))
	}
	p.got[key] += d
}

// TestBatchPhaseObserverDeterminism: attaching a phase observer is
// strictly observational — results stay bit-identical to an unobserved
// run, on both sharing tiers, while the observer sees every phase.
func TestBatchPhaseObserverDeterminism(t *testing.T) {
	for _, tier2 := range []bool{false, true} {
		cfg, mix := batchTestConfig(t, 2)
		if tier2 {
			cfg.L1Prefetcher, cfg.L2Prefetcher = "none", "none"
			if !tier2Eligible(cfg) {
				t.Fatal("config not tier-2 eligible")
			}
		}
		variants := []Variant{{Policy: batchTestSpecs[0]}, {Policy: batchTestSpecs[2]}}

		plain, err := RunBatch(cfg, variants, mix)
		if err != nil {
			t.Fatal(err)
		}
		obsCfg := cfg
		log := &phaseLog{}
		obsCfg.Phases = log
		observed, err := RunBatch(obsCfg, variants, mix)
		if err != nil {
			t.Fatal(err)
		}
		for i := range plain {
			if got, want := resultJSON(t, observed[i]), resultJSON(t, plain[i]); got != want {
				t.Errorf("tier2=%t lane %d: phase observer changed the result", tier2, i)
			}
		}
		for _, phase := range []string{"workload-gen", "lane-run#0", "lane-run#1", "barrier"} {
			if _, ok := log.got[phase]; !ok {
				t.Errorf("tier2=%t: phase %q never observed: %v", tier2, phase, log.got)
			}
		}
		if _, ok := log.got["private-replay"]; ok != tier2 {
			t.Errorf("tier2=%t: private-replay observed=%t: %v", tier2, ok, log.got)
		}
	}
}
