package sim

import (
	"context"
	"fmt"
	"math/bits"

	"drishti/internal/cache"
	"drishti/internal/cpu"
	"drishti/internal/dram"
	"drishti/internal/mem"
	"drishti/internal/noc"
	"drishti/internal/oatable"
	"drishti/internal/policies"
	"drishti/internal/prefetch"
	"drishti/internal/repl"
	"drishti/internal/stats"
	"drishti/internal/trace"
	"drishti/internal/workload"
)

// System is one assembled many-core machine plus its workload.
type System struct {
	cfg Config

	cores   []*cpu.Core
	readers []trace.Reader // nil = idle core
	// genReaders[i] is readers[i] when it is a *workload.Generator — the
	// only reader type real runs use — letting the step loop call Next
	// directly instead of through the interface.
	genReaders []*workload.Generator
	l1         []*cache.Cache
	l2         []*cache.Cache
	l1pf       []prefetch.Prefetcher
	l2pf       []prefetch.Prefetcher

	llc      []*cache.Cache
	built    *policies.Built
	penAware []repl.FillLatencier // per-slice, nil when policy has no fill penalty

	mesh *noc.Mesh
	star *noc.Star
	ram  *dram.DRAM

	// Optional MSHR files (nil when Config.ModelMSHRs is off).
	l1MSHR  []*mshrFile
	l2MSHR  []*mshrFile
	llcMSHR []*mshrFile

	sliceMask uint64
	setBits   uint

	// Run bookkeeping.
	finishedAt  []recorded
	warmupDone  bool
	totalTarget uint64
	prefIssued  uint64
	prefDropped uint64 // candidates already resident or throttled

	// Per-core LLC demand counters.
	coreLLCAccesses []uint64
	coreLLCMisses   []uint64

	// Fig 2 tracker: (core, PC) → slice bitmap + load count. An
	// open-addressing table — the tracker sits on the LLC demand path, so
	// it must not allocate per access in steady state.
	pcSlices *oatable.Table[pcTrack]

	// Epoch telemetry (nil when Config.TelemetryEpoch is zero; the hot path
	// pays one nil check).
	telem *telemetry

	// expCursors, when non-nil, makes this system a batched tier-2 lane:
	// steps replay pre-expanded private-hierarchy outcomes from a shared
	// stream (see expStream) instead of simulating L1/L2 locally. Set only
	// by the batch runner.
	expCursors []*expCursor
}

type recorded struct {
	done   bool
	cycles uint64
	instrs uint64
	ipc    float64
}

type pcTrack struct {
	slices [2]uint64 // bitmap over up to 128 slices
	loads  uint64
}

// pcSlicesLimit bounds the Fig 2 tracker: when the table exceeds this many
// (core, PC) keys it restarts its observation window. Workload models use a
// few dozen PCs per core, so real runs never reach it.
const pcSlicesLimit = 1 << 16

// New builds a system for cfg running mix readers (one per core; nil entries
// leave that core idle — used for the IPC-alone runs).
func New(cfg Config, readers []trace.Reader) (*System, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if len(readers) != cfg.Cores {
		return nil, fmt.Errorf("sim: %d readers for %d cores", len(readers), cfg.Cores)
	}
	rnd := stats.NewRand(cfg.Seed ^ 0x5eed)
	genReaders := make([]*workload.Generator, len(readers))
	for i, rd := range readers {
		genReaders[i], _ = rd.(*workload.Generator)
	}
	s := &System{
		cfg:             cfg,
		readers:         readers,
		genReaders:      genReaders,
		mesh:            noc.NewMesh(cfg.Cores, cfg.MeshPerHop, cfg.MeshRouter),
		star:            noc.NewStar(cfg.Cores, cfg.StarLatency),
		finishedAt:      make([]recorded, cfg.Cores),
		coreLLCAccesses: make([]uint64, cfg.Cores),
		coreLLCMisses:   make([]uint64, cfg.Cores),
	}
	var err error
	s.ram, err = dram.New(cfg.dramConfig())
	if err != nil {
		return nil, err
	}

	// Cores and private caches.
	for c := 0; c < cfg.Cores; c++ {
		core, err := cpu.New(c, cfg.cpuConfig())
		if err != nil {
			return nil, err
		}
		s.cores = append(s.cores, core)
		l1, err := cache.New(cache.Config{Name: fmt.Sprintf("l1d-%d", c), Sets: cfg.l1Sets(), Ways: cfg.L1Ways},
			repl.NewLRU(cfg.l1Sets(), cfg.L1Ways))
		if err != nil {
			return nil, err
		}
		s.l1 = append(s.l1, l1)
		l2, err := cache.New(cache.Config{Name: fmt.Sprintf("l2-%d", c), Sets: cfg.l2Sets(), Ways: cfg.L2Ways},
			repl.NewSRRIP(cfg.l2Sets(), cfg.L2Ways))
		if err != nil {
			return nil, err
		}
		s.l2 = append(s.l2, l2)
		p1, err := prefetch.New(cfg.L1Prefetcher, rnd.Uint64())
		if err != nil {
			return nil, err
		}
		p2, err := prefetch.New(cfg.L2Prefetcher, rnd.Uint64())
		if err != nil {
			return nil, err
		}
		s.l1pf = append(s.l1pf, p1)
		s.l2pf = append(s.l2pf, p2)
	}

	// Sliced LLC: one slice per core.
	sets := cfg.llcSetsPerSlice()
	s.setBits = uint(bits.TrailingZeros(uint(sets)))
	s.sliceMask = uint64(cfg.Cores - 1)
	geo := policies.Geometry{Slices: cfg.Cores, Cores: cfg.Cores, SetsPerSlice: sets, Ways: cfg.LLCWays}
	s.built, err = policies.Build(cfg.Policy, geo, s.mesh, s.star, rnd.Fork(42))
	if err != nil {
		return nil, err
	}
	s.penAware = make([]repl.FillLatencier, cfg.Cores)
	for i := 0; i < cfg.Cores; i++ {
		sl, err := cache.New(cache.Config{Name: fmt.Sprintf("llc-%d", i), Sets: sets, Ways: cfg.LLCWays},
			s.built.PerSlice[i])
		if err != nil {
			return nil, err
		}
		s.llc = append(s.llc, sl)
		if fl, ok := s.built.PerSlice[i].(repl.FillLatencier); ok {
			s.penAware[i] = fl
		}
	}

	if cfg.ModelMSHRs {
		for c := 0; c < cfg.Cores; c++ {
			s.l1MSHR = append(s.l1MSHR, newMSHRFile(cfg.l1MSHRs()))
			s.l2MSHR = append(s.l2MSHR, newMSHRFile(cfg.l2MSHRs()))
			s.llcMSHR = append(s.llcMSHR, newMSHRFile(cfg.llcMSHRs()))
		}
	}

	if cfg.TrackPCSlices {
		s.pcSlices = oatable.New[pcTrack](2 * pcSlicesLimit)
	}
	s.telem = newTelemetry(s)
	s.totalTarget = cfg.Warmup + cfg.Instructions
	return s, nil
}

// Built exposes the assembled policy stack (experiments introspect it).
func (s *System) Built() *policies.Built { return s.built }

// Slices exposes the LLC slice caches (experiments read per-set stats).
func (s *System) Slices() []*cache.Cache { return s.llc }

// Mesh exposes the mesh model.
func (s *System) Mesh() *noc.Mesh { return s.mesh }

// Star exposes the NOCSTAR model.
func (s *System) Star() *noc.Star { return s.star }

// DRAM exposes the memory model.
func (s *System) DRAM() *dram.DRAM { return s.ram }

// sliceFor maps a block to its LLC slice using an XOR-fold of the tag bits
// (complex addressing after [33]/[41]); using only bits above the set index
// keeps the workload generators' set-steering orthogonal to slice balance.
func (s *System) sliceFor(block uint64) int {
	if s.cfg.Cores == 1 {
		return 0
	}
	h := mem.FoldXor(block>>s.setBits, 20)
	h = stats.Mix64(h)
	if s.sliceMask != 0 && uint64(s.cfg.Cores)&(uint64(s.cfg.Cores)-1) == 0 {
		return int(h & s.sliceMask)
	}
	return int(h % uint64(s.cfg.Cores))
}

// --- access path -----------------------------------------------------------

// accessL1 runs one demand memory instruction through the hierarchy and
// returns the latency the core observes.
func (s *System) accessL1(coreID int, rec trace.Rec) uint32 {
	now := s.cores[coreID].Cycle()
	typ := mem.Load
	if rec.Write {
		typ = mem.RFO
	}
	block := mem.Block(rec.Addr)
	a := repl.Access{PC: rec.PC, Block: block, Core: coreID, Type: typ, Cycle: now}

	hit, _ := s.l1[coreID].Access(a)
	lat := s.cfg.L1Latency
	if !hit {
		lat += s.accessL2(coreID, a, now, true)
		if s.l1MSHR != nil {
			lat += s.l1MSHR[coreID].reserve(now, lat)
		}
		// FillMiss: Access above already probed and missed, and the lower
		// levels only invalidate (never install) L1 lines in between.
		ev := s.l1[coreID].FillMiss(a, typ == mem.RFO)
		if ev.Valid && ev.Dirty {
			s.writebackL2(coreID, ev.Block, now)
		}
	}
	// L1 prefetcher trains on demand accesses.
	for _, cand := range s.l1pf[coreID].Train(rec.PC, rec.Addr, hit) {
		s.issueL1Prefetch(coreID, rec.PC, cand, now)
	}
	return lat
}

// accessL2 services an L1 miss (or L1-prefetch fill) and returns latency
// beyond L1. trainPf gates L2 prefetcher training (demand traffic only).
func (s *System) accessL2(coreID int, a repl.Access, now uint64, trainPf bool) uint32 {
	hit, _ := s.l2[coreID].Access(a)
	lat := s.cfg.L2Latency
	if !hit {
		lat += s.accessLLC(coreID, a, now)
		if s.l2MSHR != nil {
			lat += s.l2MSHR[coreID].reserve(now, lat)
		}
		ev := s.l2[coreID].FillMiss(a, false)
		if ev.Valid && ev.Dirty {
			s.writebackLLC(coreID, ev.Block, now)
		}
	}
	if trainPf && a.Type.IsDemand() {
		addr := a.Block << mem.BlockShift
		for _, cand := range s.l2pf[coreID].Train(a.PC, addr, hit) {
			s.issueL2Prefetch(coreID, a.PC, cand, now)
		}
	}
	return lat
}

// accessLLC services an L2 miss at the home slice and returns latency beyond
// L2: NoC round trip + slice access, plus DRAM on a miss, plus any predictor
// penalty the policy's fill decision incurred (design decision D4).
func (s *System) accessLLC(coreID int, a repl.Access, now uint64) uint32 {
	sliceID := s.sliceFor(a.Block)
	sl := s.llc[sliceID]
	lat := s.cfg.LLCLatency + 2*s.mesh.Latency(coreID, sliceID)

	if a.Type.IsDemand() {
		s.coreLLCAccesses[coreID]++
		if s.pcSlices != nil && a.Type == mem.Load {
			s.trackPC(coreID, a.PC, sliceID)
		}
	}

	hit, _ := sl.Access(a)
	if hit {
		if s.telem != nil && a.Type.IsDemand() {
			s.telem.tick(s)
		}
		return lat
	}
	if a.Type.IsDemand() {
		s.coreLLCMisses[coreID]++
	}
	lat += s.ram.Read(a.Block<<mem.BlockShift, now+uint64(lat))
	if s.llcMSHR != nil {
		lat += s.llcMSHR[sliceID].reserve(now, lat)
	}
	ev := sl.FillMiss(a, false)
	if s.penAware[sliceID] != nil {
		lat += s.penAware[sliceID].FillPenalty()
	}
	if ev.Valid {
		s.retireLLCEviction(ev, now+uint64(lat))
	}
	if s.telem != nil && a.Type.IsDemand() {
		s.telem.tick(s)
	}
	return lat
}

// retireLLCEviction finishes an LLC eviction: dirty data goes to DRAM, and
// under an inclusive LLC the line is back-invalidated from every private
// cache (any dirty private copy must also drain).
func (s *System) retireLLCEviction(ev cache.Evicted, now uint64) {
	dirty := ev.Dirty
	if s.cfg.InclusiveLLC {
		for c := 0; c < s.cfg.Cores; c++ {
			if d, present := s.l1[c].Invalidate(ev.Block); present && d {
				dirty = true
			}
			if d, present := s.l2[c].Invalidate(ev.Block); present && d {
				dirty = true
			}
		}
	}
	if dirty {
		s.ram.Write(ev.Block<<mem.BlockShift, now)
	}
}

// writebackL2 retires a dirty L1 eviction into L2.
func (s *System) writebackL2(coreID int, block uint64, now uint64) {
	a := repl.Access{Block: block, Core: coreID, Type: mem.Writeback, Cycle: now}
	hit, _ := s.l2[coreID].Access(a)
	if hit {
		return // Access marked it dirty
	}
	ev := s.l2[coreID].FillMiss(a, true)
	if ev.Valid && ev.Dirty {
		s.writebackLLC(coreID, ev.Block, now)
	}
}

// writebackLLC retires a dirty L2 eviction into the home LLC slice
// (non-inclusive hierarchy: writebacks allocate).
func (s *System) writebackLLC(coreID int, block uint64, now uint64) {
	sliceID := s.sliceFor(block)
	s.mesh.Latency(coreID, sliceID) // writeback traffic
	a := repl.Access{Block: block, Core: coreID, Type: mem.Writeback, Cycle: now}
	sl := s.llc[sliceID]
	hit, _ := sl.Access(a)
	if hit {
		return
	}
	ev := sl.FillMiss(a, true)
	if ev.Valid {
		s.retireLLCEviction(ev, now)
	}
}

// prefetchThrottle is the DRAM queue delay (cycles) beyond which prefetch
// requests are dropped. Hardware prefetchers back off under memory-bandwidth
// pressure (MSHR/queue occupancy throttling); without this, a fast streaming
// core can saturate the shared channels and live-lock its neighbors.
const prefetchThrottle = 500

// prefetchAllowed applies bandwidth-pressure throttling for cand.
func (s *System) prefetchAllowed(cand uint64, now uint64) bool {
	return s.ram.QueueDelay(cand, now) <= prefetchThrottle
}

// issueL1Prefetch brings cand into L1 (and below) without charging the core.
func (s *System) issueL1Prefetch(coreID int, pc, cand uint64, now uint64) {
	block := mem.Block(cand)
	if _, ok := s.l1[coreID].Probe(block); ok {
		s.prefDropped++
		return
	}
	if !s.prefetchAllowed(cand, now) {
		s.prefDropped++
		return
	}
	s.prefIssued++
	a := repl.Access{PC: pc, Block: block, Core: coreID, Type: mem.Prefetch, Cycle: now}
	s.accessL2(coreID, a, now, false)
	// FillMiss: the Probe above missed and accessL2 never installs L1 lines.
	ev := s.l1[coreID].FillMiss(a, false)
	if ev.Valid && ev.Dirty {
		s.writebackL2(coreID, ev.Block, now)
	}
}

// issueL2Prefetch brings cand into L2 (and below) without charging the core.
func (s *System) issueL2Prefetch(coreID int, pc, cand uint64, now uint64) {
	block := mem.Block(cand)
	if _, ok := s.l2[coreID].Probe(block); ok {
		s.prefDropped++
		return
	}
	if !s.prefetchAllowed(cand, now) {
		s.prefDropped++
		return
	}
	s.prefIssued++
	a := repl.Access{PC: pc, Block: block, Core: coreID, Type: mem.Prefetch, Cycle: now}
	// The Probe above just missed and nothing ran since, so the access is a
	// known miss: record it (stats + policy observers) without re-probing.
	s.l2[coreID].AccessMiss(a)
	s.accessLLC(coreID, a, now)
	ev := s.l2[coreID].FillMiss(a, false)
	if ev.Valid && ev.Dirty {
		s.writebackLLC(coreID, ev.Block, now)
	}
}

func (s *System) trackPC(coreID int, pc uint64, sliceID int) {
	key := uint64(coreID)<<48 ^ stats.Mix64(pc)>>16
	t := s.pcSlices.Get(key)
	if t == nil {
		if s.pcSlices.Len() > pcSlicesLimit {
			s.pcSlices.Clear()
		}
		t = s.pcSlices.Insert(key)
	}
	t.slices[sliceID/64] |= 1 << uint(sliceID%64)
	t.loads++
}

// --- run loop ----------------------------------------------------------------

// RunContext executes the workload until every active core has retired
// its target instruction count. Finished cores keep running (their
// traces loop) so shared-resource contention persists, matching the
// paper's methodology. The step loop polls ctx every 1024 steps and
// aborts with a wrapped ctx.Err() once it is done. Cancellation never
// changes results — a run either completes bit-identically to an
// uncancellable run or returns an error. context.Background (whose Done
// channel is nil) costs one nil check per step, so the non-cancellable
// path is unchanged.
func (s *System) RunContext(ctx context.Context) (*Result, error) {
	r, err := s.newRunner(ctx)
	if err != nil {
		return nil, err
	}
	done, _, err := r.run(^uint64(0))
	if err != nil {
		return nil, err
	}
	if !done { // ungated runs only stop on done or error
		return nil, fmt.Errorf("sim: run stalled before completion")
	}
	return s.finishRun()
}

// warmupBase returns how many instructions of a core's target were consumed
// by warmup accounting (cores report instructions relative to their warmup
// snapshot). Warmup finishes for all cores at once, so the value is
// system-wide — it used to take a coreID it never read.
func (s *System) warmupBase() uint64 {
	if s.warmupDone {
		return s.cfg.Warmup
	}
	return 0
}

// step advances one core by one trace record.
func (s *System) step(coreID int) {
	var rec trace.Rec
	var ok bool
	if g := s.genReaders[coreID]; g != nil {
		rec, ok = g.Next()
	} else {
		rec, ok = s.readers[coreID].Next()
	}
	if !ok {
		// Finite trace exhausted: loop it to keep contention alive.
		s.readers[coreID].Reset()
		rec, ok = s.readers[coreID].Next()
		if !ok {
			return
		}
	}
	core := s.cores[coreID]
	core.AdvanceNonMem(rec.Gap)
	lat := s.accessL1(coreID, rec)
	if rec.Write {
		// Stores commit without blocking retirement.
		core.IssueMem(1)
		_ = lat
	} else {
		core.IssueMem(lat)
	}
}

// maybeFinishWarmup resets all statistics once every active core has
// retired its warmup budget.
func (s *System) maybeFinishWarmup() {
	if s.warmupDone {
		return
	}
	for c, rd := range s.readers {
		if rd != nil && s.cores[c].Instructions() < s.cfg.Warmup {
			return
		}
	}
	if s.telem != nil {
		// Close the partial warmup epoch while the cumulative counters it
		// baselines against still exist — the resets below zero them.
		s.telem.flush(s, false)
	}
	s.warmupDone = true
	for c, rd := range s.readers {
		if rd == nil {
			continue
		}
		s.cores[c].ResetStats()
		s.l1[c].ResetStats()
		s.l2[c].ResetStats()
	}
	for _, sl := range s.llc {
		sl.ResetStats()
	}
	s.ram.ResetStats()
	s.mesh.Reset()
	s.star.Reset()
	if s.built.Fabric != nil {
		s.built.Fabric.ResetStats()
	}
	for i := range s.coreLLCAccesses {
		s.coreLLCAccesses[i] = 0
		s.coreLLCMisses[i] = 0
	}
	s.prefIssued, s.prefDropped = 0, 0
	if s.pcSlices != nil {
		s.pcSlices.Clear()
	}
	if s.telem != nil {
		s.telem.warmupReset()
	}
}
