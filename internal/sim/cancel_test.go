package sim

import (
	"context"
	"errors"
	"testing"

	"drishti/internal/workload"
)

func cancelFixture() (Config, workload.Mix) {
	cfg := ScaledConfig(2, 8)
	cfg.Instructions = 50_000
	cfg.Warmup = 10_000
	models := workload.ScaleAll(workload.AllSPECGAP(), 8, cfg.SetIndexBits())
	return cfg, workload.Homogeneous(models[0], 2, 1)
}

// A pre-cancelled context must abort the run with a context error, not
// produce a result.
func TestRunMixContextCancelled(t *testing.T) {
	cfg, mix := cancelFixture()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	res, err := RunMixContext(ctx, cfg, mix)
	if err == nil {
		t.Fatalf("cancelled run returned a result: %+v", res)
	}
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("error %v does not wrap context.Canceled", err)
	}
}

// A background context must be bit-identical to the ctx-less path.
func TestRunMixContextBackgroundIdentical(t *testing.T) {
	cfg, mix := cancelFixture()
	plain, err := RunMix(cfg, mix)
	if err != nil {
		t.Fatal(err)
	}
	viaCtx, err := RunMixContext(context.Background(), cfg, mix)
	if err != nil {
		t.Fatal(err)
	}
	if plain.MPKI != viaCtx.MPKI || plain.IPCSum() != viaCtx.IPCSum() ||
		plain.LLC != viaCtx.LLC || plain.TotalInstructions != viaCtx.TotalInstructions {
		t.Fatalf("context path diverged: %+v vs %+v", plain, viaCtx)
	}
}

// Cancelling the alone-run pool must surface the context error too.
func TestRunAloneNContextCancelled(t *testing.T) {
	cfg, mix := cancelFixture()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := RunAloneNContext(ctx, cfg, mix, 2); !errors.Is(err, context.Canceled) {
		t.Fatalf("got %v, want context.Canceled", err)
	}
}
