package sim

import (
	"testing"

	"drishti/internal/policies"
	"drishti/internal/workload"
)

// TestFullSizeMachine runs the paper's Table 4 geometry (2 MB slices, 512 KB
// L2, 48 KB L1D, 2048-set slices) unscaled — a short smoke that the
// full-size path works and that the paper's structure parameters (sampled
// sets 32/16, DSC intervals of 32K/128K slice loads) wire up.
func TestFullSizeMachine(t *testing.T) {
	if testing.Short() {
		t.Skip("full-size machine smoke is not -short")
	}
	cfg := DefaultConfig(4)
	cfg.Instructions = 40_000
	cfg.Warmup = 8_000
	cfg.Policy = policies.Spec{Name: "mockingjay", Drishti: true}
	if cfg.SetIndexBits() != 11 {
		t.Fatalf("full-size set bits %d, want 11", cfg.SetIndexBits())
	}
	// Full-size workload models, unscaled.
	mix := workload.Homogeneous(workload.AllSPECGAP()[0], 4, 1)
	res, err := RunMix(cfg, mix)
	if err != nil {
		t.Fatal(err)
	}
	if res.IPCSum() <= 0 {
		t.Fatal("no progress on the full-size machine")
	}
	// The paper's per-slice sampled-set count for D-Mockingjay is 16.
	readers, err := Readers(mix)
	if err != nil {
		t.Fatal(err)
	}
	sys, err := New(cfg, readers)
	if err != nil {
		t.Fatal(err)
	}
	if n := sys.Built().Selectors[0].N(); n != 16 {
		t.Fatalf("full-size D-Mockingjay sampled sets %d, want 16", n)
	}
	base := cfg
	base.Policy = policies.Spec{Name: "mockingjay"}
	readers, err = Readers(mix)
	if err != nil {
		t.Fatal(err)
	}
	bsys, err := New(base, readers)
	if err != nil {
		t.Fatal(err)
	}
	if n := bsys.Built().Selectors[0].N(); n != 32 {
		t.Fatalf("full-size Mockingjay sampled sets %d, want 32", n)
	}
}
