package sim

import (
	"testing"

	"drishti/internal/workload"
)

// TestRunAloneParallelMatchesSerial: every parallelism must produce the
// bit-identical alone-IPC vector, since each per-core run is an
// independent deterministic system.
func TestRunAloneParallelMatchesSerial(t *testing.T) {
	cfg := testConfig(4)
	mix := testMix(t, cfg, "605.mcf_s-665B", 4)
	serial, err := RunAloneN(cfg, mix, 1)
	if err != nil {
		t.Fatal(err)
	}
	for _, par := range []int{2, 4, 8} {
		got, err := RunAloneN(cfg, mix, par)
		if err != nil {
			t.Fatalf("parallelism %d: %v", par, err)
		}
		for c := range serial {
			if got[c] != serial[c] {
				t.Fatalf("parallelism %d core %d: IPC %v != serial %v", par, c, got[c], serial[c])
			}
		}
	}
}

// TestRunAloneDefaultMatchesExplicit: the exported RunAlone (GOMAXPROCS
// pool) agrees with the serial path.
func TestRunAloneDefaultMatchesExplicit(t *testing.T) {
	cfg := testConfig(2)
	mix := testMix(t, cfg, "641.leela_s-800B", 2)
	def, err := RunAlone(cfg, mix)
	if err != nil {
		t.Fatal(err)
	}
	serial, err := RunAloneN(cfg, mix, 1)
	if err != nil {
		t.Fatal(err)
	}
	for c := range serial {
		if def[c] != serial[c] {
			t.Fatalf("core %d: default %v != serial %v", c, def[c], serial[c])
		}
	}
}

// TestRunAloneErrorDeterministic: when several cores fail, the error of
// the lowest-numbered failing core wins at every parallelism, matching
// the serial path.
func TestRunAloneErrorDeterministic(t *testing.T) {
	cfg := testConfig(4)
	mix := testMix(t, cfg, "605.mcf_s-665B", 4)
	// Invalidate cores 1 and 3: a model with no streams fails generator
	// construction.
	mix.Models[1] = workload.Model{Name: "broken-1"}
	mix.Models[3] = workload.Model{Name: "broken-3"}
	_, errSerial := RunAloneN(cfg, mix, 1)
	if errSerial == nil {
		t.Fatal("serial run accepted a broken model")
	}
	for _, par := range []int{2, 8} {
		_, err := RunAloneN(cfg, mix, par)
		if err == nil {
			t.Fatalf("parallelism %d accepted a broken model", par)
		}
		if err.Error() != errSerial.Error() {
			t.Fatalf("parallelism %d error %q != serial %q", par, err, errSerial)
		}
	}
}
