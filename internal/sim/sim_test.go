package sim

import (
	"testing"

	"drishti/internal/fabric"
	"drishti/internal/policies"
	"drishti/internal/trace"
	"drishti/internal/workload"
)

func testConfig(cores int) Config {
	cfg := ScaledConfig(cores, 8)
	cfg.Instructions = 30_000
	cfg.Warmup = 6_000
	return cfg
}

func testMix(t *testing.T, cfg Config, name string, cores int) workload.Mix {
	t.Helper()
	for _, m := range workload.AllSPECGAP() {
		if m.Name == name {
			return workload.Homogeneous(m.Scale(8, cfg.SetIndexBits()), cores, 5)
		}
	}
	t.Fatalf("model %s missing", name)
	return workload.Mix{}
}

func TestConfigValidate(t *testing.T) {
	if err := DefaultConfig(4).Validate(); err != nil {
		t.Fatal(err)
	}
	bad := DefaultConfig(4)
	bad.Cores = 0
	if err := bad.Validate(); err == nil {
		t.Fatal("zero cores accepted")
	}
	bad = DefaultConfig(4)
	bad.Instructions = 0
	if err := bad.Validate(); err == nil {
		t.Fatal("zero instructions accepted")
	}
}

func TestScaledConfigGeometry(t *testing.T) {
	cfg := ScaledConfig(16, 8)
	if cfg.SliceKB != 256 || cfg.L2KB != 64 || cfg.L1KB != 6 {
		t.Fatalf("scaled sizes %d/%d/%d", cfg.SliceKB, cfg.L2KB, cfg.L1KB)
	}
	if cfg.SetIndexBits() != 8 {
		t.Fatalf("set bits %d", cfg.SetIndexBits())
	}
	full := ScaledConfig(16, 1)
	if full.SliceKB != 2048 || full.SetIndexBits() != 11 {
		t.Fatal("scale 1 must be the Table 4 machine")
	}
}

func TestSliceDistributionUniform(t *testing.T) {
	cfg := testConfig(16)
	readers := make([]trace.Reader, 16)
	g, err := workload.NewGenerator(workload.AllSPECGAP()[0].Scale(8, cfg.SetIndexBits()), 1)
	if err != nil {
		t.Fatal(err)
	}
	readers[0] = g
	sys, err := New(cfg, readers)
	if err != nil {
		t.Fatal(err)
	}
	counts := make([]int, 16)
	for b := uint64(0); b < 160000; b++ {
		counts[sys.sliceFor(b<<8|b%7)]++
	}
	for s, c := range counts {
		if c < 7000 || c > 13000 {
			t.Fatalf("slice %d got %d of 160000 blocks (non-uniform hash)", s, c)
		}
	}
}

func TestRunProducesSaneResult(t *testing.T) {
	cfg := testConfig(2)
	mix := testMix(t, cfg, "602.gcc_s-734B", 2)
	res, err := RunMix(cfg, mix)
	if err != nil {
		t.Fatal(err)
	}
	for i, c := range res.PerCore {
		if c.IPC <= 0 || c.IPC > 6 {
			t.Fatalf("core %d IPC %v", i, c.IPC)
		}
		if c.Instructions < cfg.Instructions {
			t.Fatalf("core %d retired %d < target", i, c.Instructions)
		}
	}
	if res.LLC.DemandAccesses == 0 || res.DRAM.Reads == 0 {
		t.Fatal("no memory traffic")
	}
	if res.MPKI <= 0 || res.APKI < res.MPKI {
		t.Fatalf("MPKI=%v APKI=%v", res.MPKI, res.APKI)
	}
	if res.Energy.Total <= 0 {
		t.Fatal("no energy accounted")
	}
}

func TestDeterminism(t *testing.T) {
	cfg := testConfig(4)
	cfg.Policy = policies.Spec{Name: "mockingjay", Drishti: true}
	mix := testMix(t, cfg, "605.mcf_s-1554B", 4)
	a, err := RunMix(cfg, mix)
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunMix(cfg, mix)
	if err != nil {
		t.Fatal(err)
	}
	if a.IPCSum() != b.IPCSum() || a.LLC != b.LLC || a.DRAM != b.DRAM {
		t.Fatal("identical configs diverged (design decision D5)")
	}
}

func TestPoliciesDifferentiate(t *testing.T) {
	// On a thrash-prone workload, Hawkeye must beat LRU on LLC misses.
	model := workload.Model{
		Name: "loop-scan", Suite: workload.SuiteSPEC, MeanGap: 3,
		Streams: []workload.StreamSpec{
			{Kind: workload.Loop, Weight: 5, FootprintKB: 384, PCs: 8},
			{Kind: workload.Sequential, Weight: 5, FootprintKB: 8192, PCs: 2},
		},
	}
	run := func(pol string) *Result {
		cfg := ScaledConfig(1, 8)
		cfg.Instructions = 250_000
		cfg.Warmup = 80_000
		cfg.L1Prefetcher = "none"
		cfg.L2Prefetcher = "none"
		cfg.Policy = policies.Spec{Name: pol}
		res, err := RunMix(cfg, workload.Homogeneous(model, 1, 5))
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	lru := run("lru")
	hawk := run("hawkeye")
	if hawk.MPKI >= lru.MPKI*0.95 {
		t.Fatalf("hawkeye MPKI %.1f vs lru %.1f: no scan resistance", hawk.MPKI, lru.MPKI)
	}
}

func TestWritebacksReachDRAM(t *testing.T) {
	cfg := testConfig(2)
	mix := testMix(t, cfg, "619.lbm_s-2676B", 2) // write-heavy streaming
	res, err := RunMix(cfg, mix)
	if err != nil {
		t.Fatal(err)
	}
	if res.DRAM.Writes == 0 || res.WPKI <= 0 {
		t.Fatal("write-heavy workload produced no DRAM writes")
	}
}

func TestIdleCoresAllowed(t *testing.T) {
	cfg := testConfig(4)
	readers := make([]trace.Reader, 4)
	g, err := workload.NewGenerator(workload.AllSPECGAP()[0].Scale(8, cfg.SetIndexBits()), 3)
	if err != nil {
		t.Fatal(err)
	}
	readers[2] = g // only core 2 active
	sys, err := New(cfg, readers)
	if err != nil {
		t.Fatal(err)
	}
	res, err := sys.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.PerCore[2].IPC <= 0 {
		t.Fatal("active core has no IPC")
	}
	for _, i := range []int{0, 1, 3} {
		if res.PerCore[i].Instructions != 0 {
			t.Fatalf("idle core %d retired instructions", i)
		}
	}
}

func TestNoActiveCoresRejected(t *testing.T) {
	cfg := testConfig(2)
	sys, err := New(cfg, make([]trace.Reader, 2))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sys.Run(); err == nil {
		t.Fatal("all-idle run accepted")
	}
}

func TestRunAloneMatchesMix(t *testing.T) {
	cfg := testConfig(2)
	mix := testMix(t, cfg, "641.leela_s-800B", 2)
	alone, err := RunAlone(cfg, mix)
	if err != nil {
		t.Fatal(err)
	}
	if len(alone) != 2 {
		t.Fatalf("alone IPCs %v", alone)
	}
	together, err := RunMix(cfg, mix)
	if err != nil {
		t.Fatal(err)
	}
	for i := range alone {
		if alone[i] <= 0 {
			t.Fatalf("alone IPC %v", alone[i])
		}
		// Contention can only hurt (allowing small simulation noise).
		if together.PerCore[i].IPC > alone[i]*1.15 {
			t.Fatalf("core %d faster together (%v) than alone (%v)",
				i, together.PerCore[i].IPC, alone[i])
		}
	}
}

func TestRunWithMetrics(t *testing.T) {
	cfg := testConfig(2)
	mix := testMix(t, cfg, "641.leela_s-800B", 2)
	alone, err := RunAlone(cfg, mix)
	if err != nil {
		t.Fatal(err)
	}
	out, err := RunWithMetrics(cfg, mix, alone)
	if err != nil {
		t.Fatal(err)
	}
	if out.Metrics.WS <= 0 || out.Metrics.WS > 2.05 {
		t.Fatalf("2-core WS %v", out.Metrics.WS)
	}
}

func TestPCSliceTracking(t *testing.T) {
	cfg := testConfig(8)
	cfg.TrackPCSlices = true
	mix := testMix(t, cfg, "pr-twitter", 8)
	res, err := RunMix(cfg, mix)
	if err != nil {
		t.Fatal(err)
	}
	if res.PCSlices == nil || res.PCSlices.PCs == 0 {
		t.Fatal("no PC→slice statistics collected")
	}
	if res.PCSlices.FractionOne <= 0 || res.PCSlices.FractionOne > 1 {
		t.Fatalf("fraction %v", res.PCSlices.FractionOne)
	}
	// pr-like workloads have many narrow PCs → a large one-slice share.
	if res.PCSlices.FractionOne < 0.2 {
		t.Fatalf("pr-like one-slice fraction %.2f, expected substantial", res.PCSlices.FractionOne)
	}
}

func TestDrishtiUsesNocstar(t *testing.T) {
	cfg := testConfig(4)
	cfg.Policy = policies.Spec{Name: "mockingjay", Drishti: true}
	mix := testMix(t, cfg, "605.mcf_s-1554B", 4)
	res, err := RunMix(cfg, mix)
	if err != nil {
		t.Fatal(err)
	}
	if res.StarMsgs == 0 {
		t.Fatal("D-Mockingjay produced no NOCSTAR traffic")
	}
	base := cfg
	base.Policy = policies.Spec{Name: "mockingjay"}
	bres, err := RunMix(base, mix)
	if err != nil {
		t.Fatal(err)
	}
	if bres.StarMsgs != 0 {
		t.Fatal("baseline Mockingjay used NOCSTAR")
	}
}

func TestCentralizedBankConcentration(t *testing.T) {
	cfg := testConfig(8)
	cfg.Policy = policies.Spec{
		Name:             "mockingjay",
		Placement:        policies.PlacementPtr(fabric.Centralized),
		FixedPredLatency: 1,
	}
	mix := testMix(t, cfg, "602.gcc_s-734B", 8)
	res, err := RunMix(cfg, mix)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.BankAPKI) != 1 {
		t.Fatalf("centralized banks %d", len(res.BankAPKI))
	}
	pcg := cfg
	pcg.Policy = policies.Spec{Name: "mockingjay", Placement: policies.PlacementPtr(fabric.PerCoreGlobal), FixedPredLatency: 1}
	res2, err := RunMix(pcg, mix)
	if err != nil {
		t.Fatal(err)
	}
	var maxPer float64
	for _, v := range res2.BankAPKI {
		if v > maxPer {
			maxPer = v
		}
	}
	// Fig 10's shape: the central bank sees far more traffic than any
	// per-core bank.
	if res.BankAPKI[0] < 4*maxPer {
		t.Fatalf("central=%.1f per-core-max=%.1f: concentration missing", res.BankAPKI[0], maxPer)
	}
}

func TestPrefetchersRun(t *testing.T) {
	cfg := testConfig(2)
	cfg.L2Prefetcher = "spp"
	mix := testMix(t, cfg, "603.bwaves_s-3699B", 2)
	res, err := RunMix(cfg, mix)
	if err != nil {
		t.Fatal(err)
	}
	if res.PrefetchesIssued+res.PrefetchesDropped == 0 {
		t.Fatal("streaming workload generated no prefetch candidates")
	}
}

func TestMixCoreCountMismatch(t *testing.T) {
	cfg := testConfig(4)
	mix := testMix(t, cfg, "602.gcc_s-734B", 2)
	if _, err := RunMix(cfg, mix); err == nil {
		t.Fatal("core-count mismatch accepted")
	}
}

func TestFixedPredLatencySlowdown(t *testing.T) {
	// Fig 11's mechanism: a large predictor latency on the fill path must
	// cost performance relative to a small one.
	mix := testMix(t, testConfig(4), "605.mcf_s-1554B", 4)
	run := func(lat uint32) float64 {
		cfg := testConfig(4)
		cfg.Instructions = 60_000
		cfg.Policy = policies.Spec{Name: "mockingjay", Drishti: true, FixedPredLatency: lat}
		res, err := RunMix(cfg, mix)
		if err != nil {
			t.Fatal(err)
		}
		return res.IPCSum()
	}
	fast, slow := run(1), run(300)
	if slow >= fast {
		t.Fatalf("300-cycle predictor latency not slower: fast=%v slow=%v", fast, slow)
	}
}

func TestDSCStatsSurfaceInResult(t *testing.T) {
	cfg := testConfig(2)
	cfg.Instructions = 60_000
	cfg.Policy = policies.Spec{Name: "mockingjay", Drishti: true}
	mix := testMix(t, cfg, "605.mcf_s-1554B", 2)
	res, err := RunMix(cfg, mix)
	if err != nil {
		t.Fatal(err)
	}
	if res.DSCSelections == 0 {
		t.Fatal("dynamic selector activity not surfaced")
	}
	base := cfg
	base.Policy = policies.Spec{Name: "mockingjay"}
	bres, err := RunMix(base, mix)
	if err != nil {
		t.Fatal(err)
	}
	if bres.DSCSelections != 0 {
		t.Fatal("static selection reported DSC activity")
	}
}
