package sim

import (
	"fmt"
	"strings"
)

// Key returns a stable identity string for the configuration, covering
// every field that can influence a simulation's outcome. The experiment
// harness keys its cross-experiment memo caches on it.
//
// Unlike a fmt %+v rendering, the key is explicit about optional fields:
// zero-valued DRAM/CPU/MSHR sub-configs are resolved to the defaults they
// select, so a config that spells out the defaults and one that leaves
// them zero — which simulate identically — share a cache entry, while the
// nested policy spec is keyed through Spec.Key (whose pointer fields %+v
// would render as addresses).
func (c Config) Key() string {
	var b strings.Builder
	d := c.dramConfig()
	u := c.cpuConfig()
	fmt.Fprintf(&b, "cores=%d|slice=%d/%d|l1=%d/%d|l2=%d/%d",
		c.Cores, c.SliceKB, c.LLCWays, c.L1KB, c.L1Ways, c.L2KB, c.L2Ways)
	fmt.Fprintf(&b, "|lat=%d,%d,%d|mesh=%d,%d|star=%d",
		c.L1Latency, c.L2Latency, c.LLCLatency, c.MeshPerHop, c.MeshRouter, c.StarLatency)
	fmt.Fprintf(&b, "|dram=%d,%d,%d,%d,%d,%d,%d",
		d.Channels, d.BanksPerCh, d.RowBytes, d.TRP, d.TRCD, d.TCAS, d.BurstCycles)
	fmt.Fprintf(&b, "|policy={%s}", c.Policy.Key())
	fmt.Fprintf(&b, "|pf=%s,%s", c.L1Prefetcher, c.L2Prefetcher)
	fmt.Fprintf(&b, "|instr=%d|warmup=%d", c.Instructions, c.Warmup)
	fmt.Fprintf(&b, "|cpu=%d,%d|seed=%d", u.IssueWidth, u.ROBSize, c.Seed)
	fmt.Fprintf(&b, "|track=%t|incl=%t", c.TrackPCSlices, c.InclusiveLLC)
	fmt.Fprintf(&b, "|mshr=%t,%d,%d,%d", c.ModelMSHRs, c.l1MSHRs(), c.l2MSHRs(), c.llcMSHRs())
	// TelemetryEpoch is keyed even though telemetry never changes results:
	// a memo-cache hit replays no epochs, so a telemetry-enabled run must
	// not be satisfied by a cached telemetry-off result (or vice versa).
	// The sink and tag are deliberately excluded — they don't affect what
	// is simulated, only where the epochs go. Phases is excluded for the
	// same reason: a phase observer measures wall time around existing
	// work and never changes the simulation. LaneWorkers is excluded too:
	// batched lanes merge at deterministic barriers, so every worker count
	// produces byte-identical results (pinned by the workers-sweep
	// determinism test) and a cached result is valid for all of them.
	fmt.Fprintf(&b, "|telem=%d", c.TelemetryEpoch)
	return b.String()
}
