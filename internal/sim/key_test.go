package sim

import (
	"testing"

	"drishti/internal/policies"
)

// TestConfigKeyDistinguishesFields mutates the baseline one field at a
// time and requires every variant to produce a distinct key: no two
// differing configs may collide in the harness memo caches.
func TestConfigKeyDistinguishesFields(t *testing.T) {
	base := DefaultConfig(4)
	variants := map[string]func(*Config){
		"cores":        func(c *Config) { c.Cores = 8 },
		"slicekb":      func(c *Config) { c.SliceKB *= 2 },
		"llcways":      func(c *Config) { c.LLCWays = 8 },
		"l1kb":         func(c *Config) { c.L1KB = 96 },
		"l1ways":       func(c *Config) { c.L1Ways = 6 },
		"l2kb":         func(c *Config) { c.L2KB = 1024 },
		"l2ways":       func(c *Config) { c.L2Ways = 16 },
		"l1lat":        func(c *Config) { c.L1Latency = 4 },
		"l2lat":        func(c *Config) { c.L2Latency = 14 },
		"llclat":       func(c *Config) { c.LLCLatency = 24 },
		"meshhop":      func(c *Config) { c.MeshPerHop = 5 },
		"meshrouter":   func(c *Config) { c.MeshRouter = 3 },
		"star":         func(c *Config) { c.StarLatency = 7 },
		"dram":         func(c *Config) { c.DRAM.Channels = 9 },
		"policy":       func(c *Config) { c.Policy = policies.Spec{Name: "srrip"} },
		"drishti":      func(c *Config) { c.Policy.Drishti = true },
		"l1pf":         func(c *Config) { c.L1Prefetcher = "none" },
		"l2pf":         func(c *Config) { c.L2Prefetcher = "spp" },
		"instr":        func(c *Config) { c.Instructions = 123 },
		"warmup":       func(c *Config) { c.Warmup = 456 },
		"cpu":          func(c *Config) { c.CPU.IssueWidth = 4; c.CPU.ROBSize = 224 },
		"seed":         func(c *Config) { c.Seed = 2 },
		"trackslices":  func(c *Config) { c.TrackPCSlices = true },
		"inclusive":    func(c *Config) { c.InclusiveLLC = true },
		"modelmshrs":   func(c *Config) { c.ModelMSHRs = true },
		"l1mshrs":      func(c *Config) { c.ModelMSHRs = true; c.L1MSHRs = 4 },
		"l2mshrs":      func(c *Config) { c.ModelMSHRs = true; c.L2MSHRs = 32 },
		"llcmshrs":     func(c *Config) { c.ModelMSHRs = true; c.LLCMSHRs = 128 },
		"sampledsets":  func(c *Config) { c.Policy.SampledSets = 3 },
		"fixedsampled": func(c *Config) { c.Policy.FixedSampledSets = []int{1, 2} },
	}
	keys := map[string]string{"base": base.Key()}
	for name, mutate := range variants {
		cfg := base
		mutate(&cfg)
		k := cfg.Key()
		for prev, pk := range keys {
			if pk == k {
				t.Errorf("variant %q collides with %q: %s", name, prev, k)
			}
		}
		keys[name] = k
	}
}

// TestConfigKeyStable: equal configs must share a key even when optional
// sub-configs are spelled out vs. left zero (they resolve to the same
// machine), and across repeated calls.
func TestConfigKeyStable(t *testing.T) {
	a := DefaultConfig(4)
	b := DefaultConfig(4)
	if a.Key() != b.Key() {
		t.Fatalf("identical configs differ:\n%s\n%s", a.Key(), b.Key())
	}
	// Explicit defaults vs. zero values simulate identically → same key.
	c := DefaultConfig(4)
	c.DRAM = c.dramConfig()
	if a.Key() != c.Key() {
		t.Fatalf("explicit default DRAM changed the key:\n%s\n%s", a.Key(), c.Key())
	}
	if a.Key() != a.Key() {
		t.Fatal("Key not deterministic")
	}
}

// TestConfigKeyDereferencesSpecPointers is the regression the key builder
// exists for: %+v rendered Spec's pointer fields as addresses, so equal
// configs built at different times never shared a cache entry.
func TestConfigKeyDereferencesSpecPointers(t *testing.T) {
	mk := func() Config {
		cfg := DefaultConfig(4)
		cfg.Policy = policies.Spec{
			Name:           "mockingjay",
			UseNocstar:     policies.BoolPtr(true),
			DynamicSampler: policies.BoolPtr(false),
		}
		return cfg
	}
	a, b := mk(), mk()
	if a.Key() != b.Key() {
		t.Fatalf("pointer-valued specs with equal values produce different keys:\n%s\n%s",
			a.Key(), b.Key())
	}
}
