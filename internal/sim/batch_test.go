package sim

import (
	"context"
	"encoding/json"
	"testing"

	"drishti/internal/policies"
	"drishti/internal/workload"
)

// batchTestConfig builds a small machine for equivalence tests.
func batchTestConfig(t *testing.T, cores int) (Config, workload.Mix) {
	t.Helper()
	cfg := ScaledConfig(cores, 8)
	cfg.Instructions = 20_000
	cfg.Warmup = 5_000
	m, ok := workload.ByName("605.mcf_s-1554B")
	if !ok {
		t.Fatal("mcf model missing")
	}
	mix := workload.Homogeneous(m.Scale(8, cfg.SetIndexBits()), cores, 5)
	return cfg, mix
}

func resultJSON(t *testing.T, r *Result) string {
	t.Helper()
	b, err := json.Marshal(r)
	if err != nil {
		t.Fatal(err)
	}
	return string(b)
}

var batchTestSpecs = []policies.Spec{
	{Name: "lru"},
	{Name: "dip"},
	{Name: "srrip"},
	{Name: "hawkeye", Drishti: true},
	{Name: "mockingjay", Drishti: true},
}

// assertBatchMatchesSerial runs the spec set both batched and serially and
// requires bit-identical results per lane.
func assertBatchMatchesSerial(t *testing.T, cfg Config, mix workload.Mix) {
	t.Helper()
	variants := make([]Variant, len(batchTestSpecs))
	for i, spec := range batchTestSpecs {
		variants[i] = Variant{Policy: spec}
	}
	batched, err := RunBatch(cfg, variants, mix)
	if err != nil {
		t.Fatalf("RunBatch: %v", err)
	}
	for i, spec := range batchTestSpecs {
		c := cfg
		c.Policy = spec
		serial, err := RunMix(c, mix)
		if err != nil {
			t.Fatalf("serial %s: %v", spec.DisplayName(), err)
		}
		if got, want := resultJSON(t, batched[i]), resultJSON(t, serial); got != want {
			t.Errorf("lane %d (%s): batched result differs from serial\nbatched: %.200s\nserial:  %.200s",
				i, spec.DisplayName(), got, want)
		}
	}
}

// TestBatchMatchesSerialTier1 covers the raw-stream sharing tier (default
// prefetchers on → private hierarchies simulated per lane).
func TestBatchMatchesSerialTier1(t *testing.T) {
	cfg, mix := batchTestConfig(t, 4)
	if tier2Eligible(cfg) {
		t.Fatal("default config unexpectedly tier-2 eligible")
	}
	assertBatchMatchesSerial(t, cfg, mix)
}

// TestBatchMatchesSerialTier2 covers the expanded-stream tier (prefetchers
// off → the private hierarchy is simulated once and shared).
func TestBatchMatchesSerialTier2(t *testing.T) {
	cfg, mix := batchTestConfig(t, 4)
	cfg.L1Prefetcher, cfg.L2Prefetcher = "none", "none"
	if !tier2Eligible(cfg) {
		t.Fatal("prefetcher-free config should be tier-2 eligible")
	}
	assertBatchMatchesSerial(t, cfg, mix)
}

// TestBatchMatchesSerialTier2MSHRs keeps MSHR modeling on the lane side.
func TestBatchMatchesSerialTier2MSHRs(t *testing.T) {
	cfg, mix := batchTestConfig(t, 4)
	cfg.L1Prefetcher, cfg.L2Prefetcher = "none", "none"
	cfg.ModelMSHRs = true
	assertBatchMatchesSerial(t, cfg, mix)
}

// TestBatchInclusiveLLCFallsBackToTier1 checks an inclusive LLC (whose
// back-invalidations couple the private caches to lane state) still
// batches correctly via tier 1.
func TestBatchInclusiveLLCFallsBackToTier1(t *testing.T) {
	cfg, mix := batchTestConfig(t, 2)
	cfg.L1Prefetcher, cfg.L2Prefetcher = "none", "none"
	cfg.InclusiveLLC = true
	if tier2Eligible(cfg) {
		t.Fatal("inclusive LLC must not be tier-2 eligible")
	}
	assertBatchMatchesSerial(t, cfg, mix)
}

// TestBatchAloneLanes checks alone-run lanes reproduce RunAloneN exactly
// while sharing the stream with a mix lane.
func TestBatchAloneLanes(t *testing.T) {
	cfg, mix := batchTestConfig(t, 4)
	cfg.L1Prefetcher, cfg.L2Prefetcher = "none", "none"
	base := cfg
	base.Policy = policies.Spec{Name: "lru"}

	variants := []Variant{{Policy: base.Policy}}
	for c := 0; c < cfg.Cores; c++ {
		variants = append(variants, Variant{Policy: base.Policy, Alone: true, AloneCore: c})
	}
	batched, err := RunBatch(base, variants, mix)
	if err != nil {
		t.Fatalf("RunBatch: %v", err)
	}

	alone, err := RunAloneN(base, mix, 1)
	if err != nil {
		t.Fatalf("RunAloneN: %v", err)
	}
	for c := 0; c < cfg.Cores; c++ {
		if got := batched[1+c].PerCore[c].IPC; got != alone[c] {
			t.Errorf("alone lane core %d IPC = %v, serial %v", c, got, alone[c])
		}
	}
	serial, err := RunMix(base, mix)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := resultJSON(t, batched[0]), resultJSON(t, serial); got != want {
		t.Errorf("mix lane result differs from serial when batched with alone lanes")
	}
}

// TestBatchForkFallback forces the generator-fork path via a tiny memory
// budget and checks results stay identical.
func TestBatchForkFallback(t *testing.T) {
	old := batchMemBudget
	batchMemBudget = 1
	defer func() { batchMemBudget = old }()
	cfg, mix := batchTestConfig(t, 2)
	assertBatchMatchesSerial(t, cfg, mix)
}

// TestBatchCancellation checks a cancelled context aborts the batch.
func TestBatchCancellation(t *testing.T) {
	cfg, mix := batchTestConfig(t, 2)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := RunBatchContext(ctx, cfg, []Variant{{Policy: policies.Spec{Name: "lru"}}}, mix)
	if err == nil {
		t.Fatal("expected cancellation error")
	}
}
