package sim

// mshrFile models a miss-status holding register file: a bounded set of
// outstanding misses. When every register is busy, the next miss must wait
// for the earliest completion — the structural limit on memory-level
// parallelism that Table 4 sizes at 8 (L1D), 16 (L2), and 64 (LLC slice).
//
// By default the simulator approximates MLP limits with the ROB window
// alone (design decision D3); Config.ModelMSHRs enables these strict
// per-level limits.
type mshrFile struct {
	completions []uint64
	n           int
	// Stalls counts cycles added to miss latencies by a full file.
	Stalls uint64
}

func newMSHRFile(entries int) *mshrFile {
	if entries <= 0 {
		entries = 1
	}
	return &mshrFile{completions: make([]uint64, entries)}
}

// reserve allocates a register for a miss issued at now that will complete
// at now+latency, returning the extra cycles the miss waits when the file
// is full. Completed entries (completion ≤ now) are reclaimed first.
func (m *mshrFile) reserve(now uint64, latency uint32) (wait uint32) {
	// Reclaim finished entries.
	if m.n == len(m.completions) {
		// Find the earliest completion; if it is in the past the slot is
		// free, otherwise the miss waits for it.
		earliest := 0
		for i := 1; i < m.n; i++ {
			if m.completions[i] < m.completions[earliest] {
				earliest = i
			}
		}
		if c := m.completions[earliest]; c > now {
			wait = uint32(c - now)
			m.Stalls += uint64(wait)
		}
		// Reuse the slot for the new miss.
		m.completions[earliest] = now + uint64(wait) + uint64(latency)
		return wait
	}
	m.completions[m.n] = now + uint64(latency)
	m.n++
	return 0
}
