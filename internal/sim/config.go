// Package sim assembles and runs the full many-core system: per-core OOO
// timing models, private L1D/L2 with prefetchers, the sliced NUCA LLC with
// a pluggable replacement stack, the mesh and NOCSTAR interconnects, and
// DRAM. It is the substrate every experiment in the paper runs on.
package sim

import (
	"fmt"
	"os"
	"runtime"
	"strconv"
	"time"

	"drishti/internal/cpu"
	"drishti/internal/dram"
	"drishti/internal/noc"
	"drishti/internal/obs"
	"drishti/internal/policies"
)

// Config describes one simulated system. Defaults follow Table 4.
type Config struct {
	Cores int

	// LLC geometry: one slice per core.
	SliceKB int // 2048 (2 MB per slice)
	LLCWays int // 16

	// Private caches.
	L1KB   int // 48
	L1Ways int // 12
	L2KB   int // 512
	L2Ways int // 8

	// Access latencies in cycles (L1 5, L2 15, LLC 20 + NoC).
	L1Latency  uint32
	L2Latency  uint32
	LLCLatency uint32

	// Mesh parameters: per-hop and router cycles. With 4 and 2 a 32-node
	// mesh averages ≈20 cycles, matching Section 4.1.3.
	MeshPerHop  uint32
	MeshRouter  uint32
	StarLatency uint32 // NOCSTAR end-to-end latency (3)

	// DRAM. A zero value takes dram.DefaultConfig(Cores).
	DRAM dram.Config

	// Replacement policy stack for the LLC.
	Policy policies.Spec

	// Prefetchers ("none", "next-line", "ip-stride", "spp", "bingo",
	// "ipcp", "berti", "gaze").
	L1Prefetcher string
	L2Prefetcher string

	// Per-core instruction counts.
	Instructions uint64 // measured region per core
	Warmup       uint64 // warmup instructions per core

	// CPU model. A zero value takes cpu.DefaultConfig.
	CPU cpu.Config

	Seed uint64

	// TrackPCSlices enables the Fig 2 PC→slice scatter tracker.
	TrackPCSlices bool

	// InclusiveLLC makes the LLC inclusive of L1/L2: an LLC eviction
	// back-invalidates the line from every private cache. The paper's
	// baseline is non-inclusive (Table 4); this knob exists for inclusion-
	// victim ablations.
	InclusiveLLC bool

	// ModelMSHRs enforces Table 4's per-level miss-status-register limits
	// (L1D 8, L2 16, LLC slice 64) instead of approximating MLP with the
	// ROB window alone.
	ModelMSHRs bool

	// MSHR sizes (used when ModelMSHRs is set; zero = Table 4 defaults).
	L1MSHRs  int
	L2MSHRs  int
	LLCMSHRs int

	// TelemetryEpoch > 0 enables the epoch snapshotter: every TelemetryEpoch
	// LLC demand accesses (summed across slices) one obs.Epoch of stat deltas
	// is written to TelemetrySink. Zero disables telemetry entirely; the hot
	// path then costs a single nil check. Telemetry is observational only —
	// it must not change simulation results (design decision D5).
	TelemetryEpoch uint64
	TelemetrySink  obs.EpochSink
	TelemetryTag   string // run label stamped on every epoch (e.g. a run ID)

	// Phases, when non-nil, receives coarse wall-clock phase timings from
	// batched runs (workload generation, private-hierarchy replay, per-lane
	// LLC access loops, lockstep window barriers). Like TelemetrySink it is
	// observational only: it measures time around existing work and must
	// never change simulation results. Nil costs one check per batch phase
	// (never per access).
	Phases PhaseObserver

	// LaneWorkers bounds how many lanes of a batched run (RunBatch) execute
	// concurrently between lockstep barriers. 0 selects the default —
	// DRISHTI_LANE_WORKERS if set, else GOMAXPROCS, clamped to the lane
	// count; 1 forces the serial rotation. Results, and telemetry bytes on
	// a shared sink, are bit-identical at every setting (lanes share only
	// read-only window state between barriers and merge in lane order), so
	// this is purely a wall-clock knob and is excluded from Key(). It
	// composes multiplicatively with sweep-level parallelism: keep
	// cells × lanes within the host's core budget (see README Performance).
	LaneWorkers int
}

// PhaseObserver receives wall-clock phase timings from a batched run.
// Phase names are "workload-gen", "private-replay", "lane-run", "barrier",
// and "window-grow"; lane is the variant index the timing belongs to, or
// -1 for work shared by all lanes. A phase may be reported multiple times
// (implementations accumulate); "window-grow" is reported with a zero
// duration once per deadlock-breaker window growth, so its count — which
// is identical at every LaneWorkers setting — is observable.
//
// Concurrency contract: shared phases ("workload-gen", "private-replay",
// "barrier", "window-grow") are always reported from the goroutine
// driving the batch, but "lane-run" timings arrive from the lane's own
// worker goroutine when LaneWorkers > 1. Implementations must therefore
// be safe for concurrent use (the built-in span-attribute collector in
// internal/dist synchronizes internally).
type PhaseObserver interface {
	ObservePhase(phase string, lane int, d time.Duration)
}

// DefaultConfig returns the paper's baseline system for the given core
// count, with a small default instruction budget suitable for tests; the
// experiment harness scales Instructions explicitly.
func DefaultConfig(cores int) Config {
	return Config{
		Cores:        cores,
		SliceKB:      2048,
		LLCWays:      16,
		L1KB:         48,
		L1Ways:       12,
		L2KB:         512,
		L2Ways:       8,
		L1Latency:    5,
		L2Latency:    15,
		LLCLatency:   20,
		MeshPerHop:   4,
		MeshRouter:   2,
		StarLatency:  noc.DefaultStarLatency,
		Policy:       policies.Spec{Name: "lru"},
		L1Prefetcher: "next-line",
		L2Prefetcher: "ip-stride",
		Instructions: 50_000,
		Warmup:       10_000,
		CPU:          cpu.DefaultConfig(),
		Seed:         1,
	}
}

// ScaledConfig returns the baseline machine shrunk by scale (cache sizes
// divided by scale, geometry otherwise identical). Experiments run at
// harness scale pair it with workload.Model.Scale(scale, cfg.SetIndexBits())
// so footprint-to-capacity ratios — which is what replacement behavior
// depends on — match the full-size machine while simulating 100–1000×
// fewer instructions (DESIGN.md §4 scale note).
func ScaledConfig(cores, scale int) Config {
	cfg := DefaultConfig(cores)
	if scale <= 1 {
		return cfg
	}
	div := func(v, min int) int {
		v /= scale
		if v < min {
			v = min
		}
		return v
	}
	cfg.SliceKB = div(cfg.SliceKB, 64)
	cfg.L2KB = div(cfg.L2KB, 16)
	cfg.L1KB = div(cfg.L1KB, 6)
	return cfg
}

// SetIndexBits returns the per-slice LLC set-index width, which workload
// hot-set steering must target.
func (c Config) SetIndexBits() int {
	sets := c.llcSetsPerSlice()
	bits := 0
	for 1<<uint(bits+1) <= sets {
		bits++
	}
	return bits
}

// Validate reports configuration errors.
func (c Config) Validate() error {
	if c.Cores <= 0 {
		return fmt.Errorf("sim: cores must be positive")
	}
	if c.SliceKB <= 0 || c.LLCWays <= 0 || c.L1KB <= 0 || c.L2KB <= 0 {
		return fmt.Errorf("sim: cache sizes must be positive")
	}
	if c.Instructions == 0 {
		return fmt.Errorf("sim: zero instruction budget")
	}
	if c.llcSetsPerSlice() <= 0 {
		return fmt.Errorf("sim: slice %d KB too small for %d ways", c.SliceKB, c.LLCWays)
	}
	if c.TelemetryEpoch > 0 && c.TelemetrySink == nil {
		return fmt.Errorf("sim: telemetry epoch %d with no sink", c.TelemetryEpoch)
	}
	return nil
}

func (c Config) llcSetsPerSlice() int { return c.SliceKB * 1024 / 64 / c.LLCWays }
func (c Config) l1Sets() int          { return c.L1KB * 1024 / 64 / c.L1Ways }
func (c Config) l2Sets() int          { return c.L2KB * 1024 / 64 / c.L2Ways }

func (c Config) dramConfig() dram.Config {
	if c.DRAM.Channels == 0 {
		return dram.DefaultConfig(c.Cores)
	}
	return c.DRAM
}

func (c Config) l1MSHRs() int {
	if c.L1MSHRs > 0 {
		return c.L1MSHRs
	}
	return 8
}

func (c Config) l2MSHRs() int {
	if c.L2MSHRs > 0 {
		return c.L2MSHRs
	}
	return 16
}

func (c Config) llcMSHRs() int {
	if c.LLCMSHRs > 0 {
		return c.LLCMSHRs
	}
	return 64
}

func (c Config) cpuConfig() cpu.Config {
	if c.CPU.IssueWidth == 0 {
		return cpu.DefaultConfig()
	}
	return c.CPU
}

// laneWorkers resolves the effective lane-worker pool size for a batch of
// k lanes: an explicit positive LaneWorkers wins (callers may deliberately
// oversubscribe), 0 falls back to DRISHTI_LANE_WORKERS and then
// GOMAXPROCS, and the result is clamped to [1, k] — more workers than
// lanes would only idle.
func (c Config) laneWorkers(k int) int {
	w := c.LaneWorkers
	if w == 0 {
		if v, err := strconv.Atoi(os.Getenv("DRISHTI_LANE_WORKERS")); err == nil && v > 0 {
			w = v
		} else {
			w = runtime.GOMAXPROCS(0)
		}
	}
	if w > k {
		w = k
	}
	if w < 1 {
		w = 1
	}
	return w
}
