package sim

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"os"
	"testing"

	"drishti/internal/policies"
	"drishti/internal/workload"
)

// goldenCell is one point of the policy×mix determinism grid.
type goldenCell struct {
	policy  policies.Spec
	model   string
	cores   int
	trackPC bool
}

// goldenGrid covers the paths the hot-path optimizations touch: baseline and
// sampled-cache policies, power-of-two and non-power-of-two core counts (the
// latter exercises the h%cores slice-hash fallback end to end), a write-heavy
// mix (writeback fill path), and the PC→slice tracker (open-addressing table).
var goldenGrid = []goldenCell{
	{policy: policies.Spec{Name: "lru"}, model: "605.mcf_s-1554B", cores: 4},
	{policy: policies.Spec{Name: "dip"}, model: "605.mcf_s-1554B", cores: 4},
	{policy: policies.Spec{Name: "hawkeye", Drishti: true}, model: "605.mcf_s-1554B", cores: 4},
	{policy: policies.Spec{Name: "mockingjay", Drishti: true}, model: "605.mcf_s-1554B", cores: 4},
	{policy: policies.Spec{Name: "lru"}, model: "602.gcc_s-734B", cores: 3},
	{policy: policies.Spec{Name: "dip"}, model: "602.gcc_s-734B", cores: 3},
	{policy: policies.Spec{Name: "hawkeye", Drishti: true}, model: "602.gcc_s-734B", cores: 3},
	{policy: policies.Spec{Name: "mockingjay", Drishti: true}, model: "602.gcc_s-734B", cores: 3},
	{policy: policies.Spec{Name: "lru"}, model: "619.lbm_s-2676B", cores: 2},
	{policy: policies.Spec{Name: "srrip"}, model: "619.lbm_s-2676B", cores: 2},
	{policy: policies.Spec{Name: "mockingjay", Drishti: true}, model: "619.lbm_s-2676B", cores: 2},
	{policy: policies.Spec{Name: "lru"}, model: "pr-twitter", cores: 8, trackPC: true},
}

// goldenHashes pins the exact Result of every grid cell as produced by the
// pre-optimization simulator (captured at the seed of this PR). The hot-path
// work — heap scheduler, single-probe fill, SoA tag arrays, open-addressing
// tables — must reproduce these bit-for-bit: any drift here is a correctness
// bug, not an acceptable perf tradeoff. Regenerate (only for intentional
// model changes) with:
//
//	DRISHTI_GOLDEN_UPDATE=1 go test ./internal/sim -run TestGoldenResultHashes -v
var goldenHashes = map[string]string{
	"name=lru|drishti=false|place=nil|nocstar=nil|predlat=0|dsc=nil|ssets=0|fixed=|perslice=/605.mcf_s-1554B/c4/pc=false":       "e8dd20d42b7e1b143445bbc00b57b4274db47e665ef970bd197b1d83e641d0d3",
	"name=dip|drishti=false|place=nil|nocstar=nil|predlat=0|dsc=nil|ssets=0|fixed=|perslice=/605.mcf_s-1554B/c4/pc=false":       "a671a2599fc79470c90b90754bd90d4f60e7e0e4a1a1f265dcc94d8e1bb14351",
	"name=hawkeye|drishti=true|place=nil|nocstar=nil|predlat=0|dsc=nil|ssets=0|fixed=|perslice=/605.mcf_s-1554B/c4/pc=false":    "de78f89d6192bf11b4ea9277c3586ed857c621b860c7cee4cdd800f5a8a48109",
	"name=mockingjay|drishti=true|place=nil|nocstar=nil|predlat=0|dsc=nil|ssets=0|fixed=|perslice=/605.mcf_s-1554B/c4/pc=false": "560c7cf3d8cf505e44badbc116b0ab1ef103fdf9ab1d6b6274c06a4faee2ba64",
	"name=lru|drishti=false|place=nil|nocstar=nil|predlat=0|dsc=nil|ssets=0|fixed=|perslice=/602.gcc_s-734B/c3/pc=false":        "0d850e96cd5920ef57756dd3506b10e55c79625d69b87b4ec92e35a09c9f2d46",
	"name=dip|drishti=false|place=nil|nocstar=nil|predlat=0|dsc=nil|ssets=0|fixed=|perslice=/602.gcc_s-734B/c3/pc=false":        "c2244fbf823f8d9284232604beb586f6ad5eac53e504f757ca7e0f35c423d1f3",
	"name=hawkeye|drishti=true|place=nil|nocstar=nil|predlat=0|dsc=nil|ssets=0|fixed=|perslice=/602.gcc_s-734B/c3/pc=false":     "be3425edfd2695a0213ae2c4959725112f8fff6f4b855aa84ee52ec5490a697f",
	"name=mockingjay|drishti=true|place=nil|nocstar=nil|predlat=0|dsc=nil|ssets=0|fixed=|perslice=/602.gcc_s-734B/c3/pc=false":  "c552d8fb0df76e745526c70736b486aeb8db026fa9b9af1f5bd6b744f9bbe21b",
	"name=lru|drishti=false|place=nil|nocstar=nil|predlat=0|dsc=nil|ssets=0|fixed=|perslice=/619.lbm_s-2676B/c2/pc=false":       "233354af170b4a0234f03d992852e7b5f82ed0b6f6bd87208794568fc8e161d9",
	"name=srrip|drishti=false|place=nil|nocstar=nil|predlat=0|dsc=nil|ssets=0|fixed=|perslice=/619.lbm_s-2676B/c2/pc=false":     "d56476cf60326b0957c29c2370768ceedc6c92c16f0017f9c68abafc0d8045b7",
	"name=mockingjay|drishti=true|place=nil|nocstar=nil|predlat=0|dsc=nil|ssets=0|fixed=|perslice=/619.lbm_s-2676B/c2/pc=false": "a485ff300e5061f49a5d45cb85dc5502105df3b026e3be50e8a26dcc9ea774b5",
	"name=lru|drishti=false|place=nil|nocstar=nil|predlat=0|dsc=nil|ssets=0|fixed=|perslice=/pr-twitter/c8/pc=true":             "ce5203b1e967ea494d52c4716dfdc253157eac0824997401179632812761b54c",
}

func goldenKey(c goldenCell) string {
	return fmt.Sprintf("%s/%s/c%d/pc=%v", c.policy.Key(), c.model, c.cores, c.trackPC)
}

// goldenHash canonicalizes a Result to a hex digest. JSON marshaling is
// deterministic for the fields involved (maps serialize with sorted keys,
// floats round-trip exactly), so equal digests mean equal results.
func goldenHash(t *testing.T, res *Result) string {
	t.Helper()
	blob, err := json.Marshal(res)
	if err != nil {
		t.Fatalf("marshal result: %v", err)
	}
	sum := sha256.Sum256(blob)
	return hex.EncodeToString(sum[:])
}

func goldenRun(t *testing.T, c goldenCell) *Result {
	t.Helper()
	cfg := ScaledConfig(c.cores, 8)
	cfg.Instructions = 30_000
	cfg.Warmup = 6_000
	cfg.Policy = c.policy
	cfg.TrackPCSlices = c.trackPC
	m, ok := workload.ByName(c.model)
	if !ok {
		t.Fatalf("model %s missing", c.model)
	}
	mix := workload.Homogeneous(m.Scale(8, cfg.SetIndexBits()), c.cores, 5)
	res, err := RunMix(cfg, mix)
	if err != nil {
		t.Fatalf("%s: %v", goldenKey(c), err)
	}
	return res
}

// TestGoldenBatchedMatchesSerial is the bit-identity guard for lockstep
// batching: the golden grid's cells, grouped by (model, cores) into
// multi-policy batches, must hash to the exact same values the serial path
// pins in goldenHashes — per lane, for both sharing tiers. Tier 1 shares
// only the raw record stream; the tier-2 pass additionally shares the
// private L1/L2 hierarchy (prefetchers off) and is checked batched vs
// serial since those cells have no pinned hash.
func TestGoldenBatchedMatchesSerial(t *testing.T) {
	type group struct {
		cells []goldenCell
	}
	groups := map[string]*group{}
	var order []string
	for _, c := range goldenGrid {
		key := fmt.Sprintf("%s/c%d/pc=%v", c.model, c.cores, c.trackPC)
		g, ok := groups[key]
		if !ok {
			g = &group{}
			groups[key] = g
			order = append(order, key)
		}
		g.cells = append(g.cells, c)
	}
	for _, key := range order {
		g := groups[key]
		c0 := g.cells[0]
		t.Run(key, func(t *testing.T) {
			t.Parallel()
			cfg := ScaledConfig(c0.cores, 8)
			cfg.Instructions = 30_000
			cfg.Warmup = 6_000
			cfg.TrackPCSlices = c0.trackPC
			m, ok := workload.ByName(c0.model)
			if !ok {
				t.Fatalf("model %s missing", c0.model)
			}
			mix := workload.Homogeneous(m.Scale(8, cfg.SetIndexBits()), c0.cores, 5)

			variants := make([]Variant, len(g.cells))
			for i, c := range g.cells {
				variants[i] = Variant{Policy: c.policy}
			}

			// Tier 1: default prefetchers, against the pinned hashes.
			batched, err := RunBatch(cfg, variants, mix)
			if err != nil {
				t.Fatalf("tier-1 batch: %v", err)
			}
			for i, c := range g.cells {
				got := goldenHash(t, batched[i])
				if want := goldenHashes[goldenKey(c)]; got != want {
					t.Errorf("tier-1 lane %s drifted from serial golden:\n got %s\nwant %s", goldenKey(c), got, want)
				}
			}

			// Tier 2: prefetchers off, against fresh serial runs.
			t2 := cfg
			t2.L1Prefetcher, t2.L2Prefetcher = "none", "none"
			if !tier2Eligible(t2) {
				t.Fatal("prefetcher-free config should be tier-2 eligible")
			}
			batched, err = RunBatch(t2, variants, mix)
			if err != nil {
				t.Fatalf("tier-2 batch: %v", err)
			}
			for i, c := range g.cells {
				sc := t2
				sc.Policy = c.policy
				serial, err := RunMix(sc, mix)
				if err != nil {
					t.Fatalf("tier-2 serial %s: %v", c.policy.Key(), err)
				}
				if got, want := goldenHash(t, batched[i]), goldenHash(t, serial); got != want {
					t.Errorf("tier-2 lane %s differs from serial:\n got %s\nwant %s", goldenKey(c), got, want)
				}
			}
		})
	}
}

// TestGoldenResultHashes is the bit-identity guard for the hot-path
// optimizations: every cell of the grid must hash exactly to the value
// captured before the refactor.
func TestGoldenResultHashes(t *testing.T) {
	update := os.Getenv("DRISHTI_GOLDEN_UPDATE") == "1"
	for _, c := range goldenGrid {
		c := c
		t.Run(goldenKey(c), func(t *testing.T) {
			t.Parallel()
			got := goldenHash(t, goldenRun(t, c))
			if update {
				t.Logf("GOLDEN\t%q: %q,", goldenKey(c), got)
				return
			}
			want, ok := goldenHashes[goldenKey(c)]
			if !ok {
				t.Fatalf("no golden hash recorded for %s (got %s)", goldenKey(c), got)
			}
			if got != want {
				t.Fatalf("result drifted from pre-optimization golden:\n got %s\nwant %s", got, want)
			}
		})
	}
}
