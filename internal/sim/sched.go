package sim

// coreHeap schedules the run loop: an implicit binary min-heap over the
// active cores, keyed on (cycle, coreID) with the coreID breaking ties.
// This replaces the per-step O(cores) linear scan with O(log cores) — the
// win that makes 64–128-core ("scal") runs cheap to schedule.
//
// Equivalence with the scan it replaced: the scan picked the lowest-indexed
// core among those with the minimal cycle (strict less-than kept the first),
// and a heap ordered by (cycle, coreID) pops exactly that core. Stepping a
// core changes only that core's cycle, and cpu.Core cycles never decrease,
// so a single root sift-down after each step restores the heap invariant.
// The selection sequence — and therefore every simulation result — is
// bit-identical to the linear scan's.
type coreHeap struct {
	cycle []uint64
	id    []int32
}

// newCoreHeap builds a heap over coreIDs, all at their cores' current
// cycles. Cores are appended in increasing ID order at equal cycles, which
// is already a valid (cycle, coreID) min-heap.
func newCoreHeap(coreIDs []int, cycleOf func(coreID int) uint64) *coreHeap {
	h := &coreHeap{
		cycle: make([]uint64, 0, len(coreIDs)),
		id:    make([]int32, 0, len(coreIDs)),
	}
	for _, c := range coreIDs {
		h.cycle = append(h.cycle, cycleOf(c))
		h.id = append(h.id, int32(c))
	}
	for i := len(h.id)/2 - 1; i >= 0; i-- {
		h.siftDown(i)
	}
	return h
}

// min returns the core to step next: minimal cycle, lowest ID on ties.
func (h *coreHeap) min() int { return int(h.id[0]) }

// fixMin re-keys the root (the core just stepped) to newCycle and restores
// the heap. newCycle must be ≥ the root's previous cycle.
func (h *coreHeap) fixMin(newCycle uint64) {
	h.cycle[0] = newCycle
	h.siftDown(0)
}

// second returns the runner-up (cycle, coreID) after the root — the key
// the root's core must stay at or below (lexicographically) to remain the
// scheduler's pick. With a single core there is no runner-up and the root
// is always picked: (max, max) is returned so any key qualifies.
func (h *coreHeap) second() (uint64, int32) {
	n := len(h.id)
	if n < 2 {
		return ^uint64(0), int32(1<<31 - 1)
	}
	m := 1
	if n > 2 && h.less(2, 1) {
		m = 2
	}
	return h.cycle[m], h.id[m]
}

func (h *coreHeap) less(i, j int) bool {
	return h.cycle[i] < h.cycle[j] || (h.cycle[i] == h.cycle[j] && h.id[i] < h.id[j])
}

func (h *coreHeap) siftDown(i int) {
	n := len(h.id)
	for {
		l := 2*i + 1
		if l >= n {
			return
		}
		m := l
		if r := l + 1; r < n && h.less(r, l) {
			m = r
		}
		if !h.less(m, i) {
			return
		}
		h.cycle[i], h.cycle[m] = h.cycle[m], h.cycle[i]
		h.id[i], h.id[m] = h.id[m], h.id[i]
		i = m
	}
}
