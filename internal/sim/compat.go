package sim

import (
	"context"

	"drishti/internal/workload"
)

// This file holds every context-free entrypoint in the package. The
// *Context forms are the canonical API — they carry the documentation
// and the behavior — and each wrapper here is exactly that form with
// context.Background(), kept for existing callers and quick scripts.
// A context that is never cancelled produces bit-identical results, so
// the wrappers add nothing but convenience.

// Run is RunContext with context.Background().
func (s *System) Run() (*Result, error) { return s.RunContext(context.Background()) }

// RunMix is RunMixContext with context.Background().
func RunMix(cfg Config, mix workload.Mix) (*Result, error) {
	return RunMixContext(context.Background(), cfg, mix)
}

// RunAlone is RunAloneContext with context.Background().
func RunAlone(cfg Config, mix workload.Mix) ([]float64, error) {
	return RunAloneContext(context.Background(), cfg, mix)
}

// RunAloneN is RunAloneNContext with context.Background().
func RunAloneN(cfg Config, mix workload.Mix, parallelism int) ([]float64, error) {
	return RunAloneNContext(context.Background(), cfg, mix, parallelism)
}

// RunBatch is RunBatchContext with context.Background().
func RunBatch(base Config, variants []Variant, mix workload.Mix) ([]*Result, error) {
	return RunBatchContext(context.Background(), base, variants, mix)
}

// RunWithMetrics is RunWithMetricsContext with context.Background().
func RunWithMetrics(cfg Config, mix workload.Mix, aloneIPC []float64) (*MixOutcome, error) {
	return RunWithMetricsContext(context.Background(), cfg, mix, aloneIPC)
}
