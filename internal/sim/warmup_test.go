package sim

import (
	"testing"

	"drishti/internal/workload"
)

// TestWarmupExcludedFromStats checks that the measured region excludes
// warmup: a run with warmup must report fewer LLC accesses than the same
// run measuring from cycle zero, and per-core instruction counts must equal
// the configured budget (not budget+warmup).
func TestWarmupExcludedFromStats(t *testing.T) {
	base := ScaledConfig(2, 8)
	base.Instructions = 30_000
	mix := workload.Homogeneous(
		workload.AllSPECGAP()[0].Scale(8, base.SetIndexBits()), 2, 9)

	withWarm := base
	withWarm.Warmup = 30_000
	resWarm, err := RunMix(withWarm, mix)
	if err != nil {
		t.Fatal(err)
	}
	noWarm := base
	noWarm.Warmup = 0
	resCold, err := RunMix(noWarm, mix)
	if err != nil {
		t.Fatal(err)
	}
	for i, c := range resWarm.PerCore {
		if c.Instructions < withWarm.Instructions || c.Instructions > withWarm.Instructions+100 {
			t.Fatalf("core %d measured %d instructions, want ≈%d (warmup excluded)",
				i, c.Instructions, withWarm.Instructions)
		}
	}
	// The warmed run's caches start hot: its measured MPKI must not exceed
	// the cold run's by much (cold includes compulsory misses).
	if resWarm.MPKI > resCold.MPKI*1.5 {
		t.Fatalf("warmed MPKI %.1f ≫ cold MPKI %.1f", resWarm.MPKI, resCold.MPKI)
	}
}

// TestWarmupDeterministicWithPolicyState checks warmup interacts cleanly
// with stateful policies: the reported region must still be deterministic.
func TestWarmupDeterministicWithPolicyState(t *testing.T) {
	cfg := ScaledConfig(2, 8)
	cfg.Instructions = 25_000
	cfg.Warmup = 10_000
	cfg.Policy.Name = "hawkeye"
	mix := workload.Homogeneous(
		workload.AllSPECGAP()[2].Scale(8, cfg.SetIndexBits()), 2, 4)
	a, err := RunMix(cfg, mix)
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunMix(cfg, mix)
	if err != nil {
		t.Fatal(err)
	}
	if a.MPKI != b.MPKI || a.IPCSum() != b.IPCSum() {
		t.Fatal("warmup broke determinism")
	}
}
