package sim

import (
	"context"
	"fmt"
	"runtime"
	"sync"

	"drishti/internal/metrics"
	"drishti/internal/trace"
	"drishti/internal/workload"
)

// Readers builds the per-core trace readers for a mix.
func Readers(mix workload.Mix) ([]trace.Reader, error) {
	if err := mix.Validate(); err != nil {
		return nil, err
	}
	readers := make([]trace.Reader, mix.Cores())
	for c := range readers {
		r, err := workload.NewReader(mix, c)
		if err != nil {
			return nil, err
		}
		readers[c] = r
	}
	return readers, nil
}

// RunMixContext builds and runs a system over a workload mix, aborting
// with a wrapped ctx.Err() once ctx is done. When telemetry is on and no
// tag was set, epochs are tagged with the mix name. Cancellation never
// changes results — a run either completes bit-identically to an
// uncancellable run or returns an error.
func RunMixContext(ctx context.Context, cfg Config, mix workload.Mix) (*Result, error) {
	if mix.Cores() != cfg.Cores {
		return nil, fmt.Errorf("sim: mix %s targets %d cores, config has %d", mix.Name, mix.Cores(), cfg.Cores)
	}
	if cfg.TelemetryEpoch > 0 && cfg.TelemetryTag == "" {
		cfg.TelemetryTag = mix.Name
	}
	readers, err := Readers(mix)
	if err != nil {
		return nil, err
	}
	sys, err := New(cfg, readers)
	if err != nil {
		return nil, err
	}
	return sys.RunContext(ctx)
}

// RunAloneContext measures each core's alone IPC: the same machine (all
// LLC slices available) with only that core active, per the metric
// definitions in Section 5.2. The returned vector aligns with the mix's
// cores. The per-core runs are independent systems and execute
// concurrently on up to GOMAXPROCS workers; use RunAloneNContext to
// bound the pool explicitly.
func RunAloneContext(ctx context.Context, cfg Config, mix workload.Mix) ([]float64, error) {
	return RunAloneNContext(ctx, cfg, mix, runtime.GOMAXPROCS(0))
}

// RunAloneNContext is RunAloneContext with an explicit worker-pool
// bound. Each alone-run is a deterministic, self-contained System, so
// the results are identical for every parallelism; parallelism <= 1 runs
// strictly serially. Cancellation stops dispatching further cores and
// aborts the in-flight ones. On failure the error of the lowest-numbered
// failing core is returned, matching the serial path.
func RunAloneNContext(ctx context.Context, cfg Config, mix workload.Mix, parallelism int) ([]float64, error) {
	if mix.Cores() != cfg.Cores {
		return nil, fmt.Errorf("sim: mix %s targets %d cores, config has %d", mix.Name, mix.Cores(), cfg.Cores)
	}
	out := make([]float64, cfg.Cores)
	if parallelism > cfg.Cores {
		parallelism = cfg.Cores
	}
	if parallelism <= 1 {
		for c := 0; c < cfg.Cores; c++ {
			ipc, err := runAloneCore(ctx, cfg, mix, c)
			if err != nil {
				return nil, err
			}
			out[c] = ipc
		}
		return out, nil
	}
	var (
		mu       sync.Mutex
		firstErr error
		errCore  = cfg.Cores
		wg       sync.WaitGroup
		sem      = make(chan struct{}, parallelism)
	)
	for c := 0; c < cfg.Cores; c++ {
		mu.Lock()
		failed := firstErr != nil
		mu.Unlock()
		if failed {
			// Every core below the recorded error has already been
			// dispatched (dispatch is in core order), so the min-core
			// error below is exactly the serial path's error.
			break
		}
		sem <- struct{}{}
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			defer func() { <-sem }()
			ipc, err := runAloneCore(ctx, cfg, mix, c)
			if err != nil {
				mu.Lock()
				if c < errCore {
					errCore, firstErr = c, err
				}
				mu.Unlock()
				return
			}
			out[c] = ipc
		}(c)
	}
	wg.Wait()
	if firstErr != nil {
		return nil, firstErr
	}
	return out, nil
}

// runAloneCore runs the machine with only core c active. Alone runs are
// IPC calibration, not the run of record, so telemetry is disabled — the
// concurrent per-core systems would otherwise interleave epochs under one
// tag in the shared sink.
func runAloneCore(ctx context.Context, cfg Config, mix workload.Mix, c int) (float64, error) {
	cfg.TelemetryEpoch, cfg.TelemetrySink, cfg.TelemetryTag = 0, nil, ""
	readers := make([]trace.Reader, cfg.Cores)
	r, err := workload.NewReader(mix, c)
	if err != nil {
		return 0, err
	}
	readers[c] = r
	sys, err := New(cfg, readers)
	if err != nil {
		return 0, err
	}
	res, err := sys.RunContext(ctx)
	if err != nil {
		return 0, err
	}
	return res.PerCore[c].IPC, nil
}

// MixOutcome bundles a together-run with its multi-core metrics.
type MixOutcome struct {
	Result  *Result
	Metrics metrics.Multi
}

// RunWithMetricsContext runs the mix and computes WS/HS/MIS/unfairness
// against the supplied alone-IPC vector (typically measured once per mix
// on the LRU baseline and shared across policies; see DESIGN.md §4 scale
// note).
func RunWithMetricsContext(ctx context.Context, cfg Config, mix workload.Mix, aloneIPC []float64) (*MixOutcome, error) {
	res, err := RunMixContext(ctx, cfg, mix)
	if err != nil {
		return nil, err
	}
	m, err := metrics.Compute(res.IPCs(), aloneIPC)
	if err != nil {
		return nil, err
	}
	return &MixOutcome{Result: res, Metrics: m}, nil
}
