package sim

import (
	"fmt"

	"drishti/internal/metrics"
	"drishti/internal/trace"
	"drishti/internal/workload"
)

// Readers builds the per-core trace readers for a mix.
func Readers(mix workload.Mix) ([]trace.Reader, error) {
	if err := mix.Validate(); err != nil {
		return nil, err
	}
	readers := make([]trace.Reader, mix.Cores())
	for c := range readers {
		g, err := workload.NewGenerator(mix.Models[c], mix.Seeds[c])
		if err != nil {
			return nil, err
		}
		readers[c] = g
	}
	return readers, nil
}

// RunMix builds and runs a system over a workload mix.
func RunMix(cfg Config, mix workload.Mix) (*Result, error) {
	if mix.Cores() != cfg.Cores {
		return nil, fmt.Errorf("sim: mix %s targets %d cores, config has %d", mix.Name, mix.Cores(), cfg.Cores)
	}
	readers, err := Readers(mix)
	if err != nil {
		return nil, err
	}
	sys, err := New(cfg, readers)
	if err != nil {
		return nil, err
	}
	return sys.Run()
}

// RunAlone measures each core's alone IPC: the same machine (all LLC slices
// available) with only that core active, per the metric definitions in
// Section 5.2. The returned vector aligns with the mix's cores.
func RunAlone(cfg Config, mix workload.Mix) ([]float64, error) {
	if mix.Cores() != cfg.Cores {
		return nil, fmt.Errorf("sim: mix %s targets %d cores, config has %d", mix.Name, mix.Cores(), cfg.Cores)
	}
	out := make([]float64, cfg.Cores)
	for c := 0; c < cfg.Cores; c++ {
		readers := make([]trace.Reader, cfg.Cores)
		g, err := workload.NewGenerator(mix.Models[c], mix.Seeds[c])
		if err != nil {
			return nil, err
		}
		readers[c] = g
		sys, err := New(cfg, readers)
		if err != nil {
			return nil, err
		}
		res, err := sys.Run()
		if err != nil {
			return nil, err
		}
		out[c] = res.PerCore[c].IPC
	}
	return out, nil
}

// MixOutcome bundles a together-run with its multi-core metrics.
type MixOutcome struct {
	Result  *Result
	Metrics metrics.Multi
}

// RunWithMetrics runs the mix and computes WS/HS/MIS/unfairness against the
// supplied alone-IPC vector (typically measured once per mix on the LRU
// baseline and shared across policies; see DESIGN.md §4 scale note).
func RunWithMetrics(cfg Config, mix workload.Mix, aloneIPC []float64) (*MixOutcome, error) {
	res, err := RunMix(cfg, mix)
	if err != nil {
		return nil, err
	}
	m, err := metrics.Compute(res.IPCs(), aloneIPC)
	if err != nil {
		return nil, err
	}
	return &MixOutcome{Result: res, Metrics: m}, nil
}
