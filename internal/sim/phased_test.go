package sim

import (
	"testing"

	"drishti/internal/policies"
	"drishti/internal/sampler"
	"drishti/internal/trace"
	"drishti/internal/workload"
)

// TestDynamicSamplerTracksPhases drives a phase-changing workload through
// D-Mockingjay and checks the dynamic sampled cache actually re-selects
// (Section 4.2's phase-change adaptation), and that the run completes with
// sane output despite the churn.
func TestDynamicSamplerTracksPhases(t *testing.T) {
	// The DSC cycle is MonitorLen+ActiveLen = 5×(sets×ways) slice loads
	// (20.5K at harness scale); the run must span several cycles.
	cfg := ScaledConfig(1, 8)
	cfg.Instructions = 1_100_000
	cfg.Warmup = 50_000
	cfg.Policy = policies.Spec{Name: "mockingjay", Drishti: true}

	model := workload.ScalePhased(workload.PhasedMcf(20_000), 8, cfg.SetIndexBits())
	g, err := workload.NewPhasedGenerator(model, 7)
	if err != nil {
		t.Fatal(err)
	}
	sys, err := New(cfg, []trace.Reader{g})
	if err != nil {
		t.Fatal(err)
	}
	res, err := sys.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.PerCore[0].IPC <= 0 {
		t.Fatal("no progress on phased workload")
	}
	dyn, ok := sys.Built().Selectors[0].(*sampler.Dynamic)
	if !ok {
		t.Fatalf("selector %T, want dynamic", sys.Built().Selectors[0])
	}
	if dyn.Selections < 2 {
		t.Fatalf("only %d selections across multiple phases", dyn.Selections)
	}
}

// TestPhasedRunsUnderAllMainPolicies is a robustness sweep: phase churn
// must not break any policy's sampled-state management.
func TestPhasedRunsUnderAllMainPolicies(t *testing.T) {
	for _, spec := range []policies.Spec{
		{Name: "lru"},
		{Name: "hawkeye", Drishti: true},
		{Name: "mockingjay", Drishti: true},
		{Name: "ship++", Drishti: true},
		{Name: "sdbp", Drishti: true},
		{Name: "dip", Drishti: true},
	} {
		cfg := ScaledConfig(2, 8)
		cfg.Instructions = 40_000
		cfg.Warmup = 8_000
		cfg.Policy = spec
		model := workload.ScalePhased(workload.PhasedMcf(5_000), 8, cfg.SetIndexBits())
		readers := make([]trace.Reader, 2)
		for c := range readers {
			g, err := workload.NewPhasedGenerator(model, uint64(c)+1)
			if err != nil {
				t.Fatal(err)
			}
			readers[c] = g
		}
		sys, err := New(cfg, readers)
		if err != nil {
			t.Fatalf("%s: %v", spec.DisplayName(), err)
		}
		if _, err := sys.Run(); err != nil {
			t.Fatalf("%s: %v", spec.DisplayName(), err)
		}
	}
}
