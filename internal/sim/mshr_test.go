package sim

import (
	"testing"

	"drishti/internal/workload"
)

func TestMSHRFileBasics(t *testing.T) {
	m := newMSHRFile(2)
	if w := m.reserve(100, 50); w != 0 {
		t.Fatalf("first reserve waited %d", w)
	}
	if w := m.reserve(100, 50); w != 0 {
		t.Fatalf("second reserve waited %d", w)
	}
	// File full; both complete at 150: the third miss at t=100 waits 50.
	if w := m.reserve(100, 50); w != 50 {
		t.Fatalf("full-file reserve waited %d, want 50", w)
	}
	if m.Stalls != 50 {
		t.Fatalf("stall accounting %d", m.Stalls)
	}
	// Past completions free slots without waiting.
	if w := m.reserve(10_000, 50); w != 0 {
		t.Fatalf("expired slot still busy: waited %d", w)
	}
}

func TestMSHRFileMinimumOneEntry(t *testing.T) {
	m := newMSHRFile(0)
	if w := m.reserve(0, 10); w != 0 {
		t.Fatalf("waited %d", w)
	}
	if w := m.reserve(0, 10); w != 10 {
		t.Fatalf("single-entry file should serialize: waited %d", w)
	}
}

// TestMSHRsThrottleMLP checks the end-to-end effect: with strict Table 4
// MSHR limits, a memory-bound workload cannot overlap as many misses, so it
// runs slower than the ROB-window-only default.
func TestMSHRsThrottleMLP(t *testing.T) {
	mix := workload.Homogeneous(
		workload.AllSPECGAP()[0].Scale(8, ScaledConfig(1, 8).SetIndexBits()), 1, 5)
	run := func(model bool) float64 {
		cfg := ScaledConfig(1, 8)
		cfg.Instructions = 60_000
		cfg.Warmup = 10_000
		cfg.ModelMSHRs = model
		res, err := RunMix(cfg, mix)
		if err != nil {
			t.Fatal(err)
		}
		return res.PerCore[0].IPC
	}
	free, limited := run(false), run(true)
	if limited >= free {
		t.Fatalf("MSHR limits did not throttle MLP: free=%v limited=%v", free, limited)
	}
}

func TestMSHRSizesOverridable(t *testing.T) {
	cfg := DefaultConfig(1)
	if cfg.l1MSHRs() != 8 || cfg.l2MSHRs() != 16 || cfg.llcMSHRs() != 64 {
		t.Fatal("Table 4 defaults wrong")
	}
	cfg.L1MSHRs = 32
	if cfg.l1MSHRs() != 32 {
		t.Fatal("override ignored")
	}
}
