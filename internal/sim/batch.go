package sim

import (
	"context"
	"fmt"
	"sync"
	"time"

	"drishti/internal/cache"
	"drishti/internal/mem"
	"drishti/internal/obs"
	"drishti/internal/policies"
	"drishti/internal/repl"
	"drishti/internal/trace"
	"drishti/internal/workload"
)

// This file implements lockstep batched simulation: K lanes (simulator
// instances differing only in replacement policy / DSC configuration, or
// alone-run activation) execute against one shared access stream, paying
// the workload-generation cost once instead of K times.
//
// Two sharing tiers, chosen automatically from the base config:
//
//   - Tier 1 (always legal): the raw trace.Rec stream is materialized once
//     per core into a bounded workload.Stream window; each lane reads it
//     through a cursor and simulates its full hierarchy as usual.
//
//   - Tier 2 (prefetchers off, non-inclusive LLC): the private L1/L2
//     hierarchy is additionally simulated once per core by an expStream,
//     because under those conditions private-cache behavior is identical
//     in every lane: L1 (LRU) and L2 (SRRIP) decisions depend only on the
//     access order, never on timing, and nothing below the L2 feeds back
//     into the private caches (prefetch throttling consults DRAM queue
//     timing and inclusive LLCs back-invalidate — both disabled). Lanes
//     replay the recorded outcomes (hit levels, writeback victims) and
//     simulate only their own lane-varying state: core timing, MSHRs,
//     LLC slices, policy/predictor stack, NoCs, and DRAM.
//
// Each lane is a complete System driven by its own resumable runner in
// rotation quanta. A lane's step sequence is exactly what its solo run
// would execute, just time-sliced, so batched results are bit-identical
// to unbatched runs (asserted per lane by the golden tests). Per-core
// window limits bound how far lanes may drift apart so the shared window
// stays small; chunks behind the slowest lane are recycled.
//
// Between barriers the lanes are independent: all lane-varying state
// (cores, MSHRs, LLC slices, policy/predictor stack, NoCs, DRAM) is
// private per lane, and the shared stream window is made strictly
// read-only for the rotation by materializing it up to the window limits
// at the barrier (Stream.Ensure / expStream.ensure). runLockstep
// therefore fans the rotation's lane quanta onto a bounded worker pool
// (Config.LaneWorkers, default min(K, GOMAXPROCS)) and merges outcomes —
// progress, completion, errors, buffered telemetry — in deterministic
// lane order at the barrier, so results and telemetry bytes are identical
// at every worker count (the workers-sweep determinism test pins this).

// batchQuantum is how many steps a lane runs per rotation.
const batchQuantum = 8192

// batchWindow is the per-core record skew allowed between the fastest and
// slowest lane before the fast lane pauses (grown on demand if a rotation
// ever makes no progress; see runLockstep). A variable so tests can
// shrink it to exercise the deadlock-breaker growth path.
var batchWindow uint64 = 8192

// batchMemBudget bounds the estimated resident shared-window bytes; above
// it RunBatchContext falls back to per-lane generator forks (no shared
// window, same results). A variable so tests can force the fork path.
var batchMemBudget = 256 << 20

// epochBuffer queues one lane's telemetry epochs so concurrent lanes
// never write the (possibly shared) real sink directly; the batch driver
// drains buffers in lane order at each rotation barrier, which reproduces
// the serial rotation's emission order byte for byte at every worker
// count. Buffering epoch pointers is safe: the telemetry snapshotter
// allocates a fresh Epoch per flush and never writes it again.
//
// WriteEpoch is called from the lane's goroutine and drain from the
// driver, phases that the rotation barrier already separates; the mutex
// keeps the type independently safe anyway (epochs are rare — one per
// TelemetryEpoch LLC accesses — so the lock is off the hot path).
type epochBuffer struct {
	mu   sync.Mutex
	next obs.EpochSink
	q    []*obs.Epoch
	err  error // sticky first drain error
}

// WriteEpoch implements obs.EpochSink. A past drain failure is returned
// so it surfaces through the lane's own telemetry error path, exactly
// where a direct sink write would have reported it.
func (b *epochBuffer) WriteEpoch(e *obs.Epoch) error {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.q = append(b.q, e)
	return b.err
}

// drain forwards queued epochs to the real sink in order. Like a direct
// sink write, a failure does not stop the simulation; the sticky error
// is returned and resurfaces from later writes and finishRun.
func (b *epochBuffer) drain() error {
	b.mu.Lock()
	defer b.mu.Unlock()
	for _, e := range b.q {
		if err := b.next.WriteEpoch(e); err != nil && b.err == nil {
			b.err = err
		}
	}
	b.q = b.q[:0]
	return b.err
}

// Variant is one lane of a batched run: a replacement-policy point, run
// either on the full mix or as a single-core alone run. The zero value is
// a mix lane with the zero policy spec.
type Variant struct {
	// Policy replaces the base config's replacement policy for this lane.
	Policy policies.Spec
	// Alone runs the lane with only core AloneCore active (RunAlone
	// semantics: same machine, telemetry off). Alone lanes share the
	// per-core stream with mix lanes — an alone run consumes exactly the
	// records the mix run feeds that core, because generation has no
	// feedback from the simulation.
	Alone     bool
	AloneCore int

	// TelemetryTag, when non-empty, replaces the base config's
	// TelemetryTag for this lane, so K lanes sharing one sink keep
	// distinct attribution — a batched sweep cell's epochs carry the same
	// tag its serial run would. Ignored for alone lanes (telemetry off).
	TelemetryTag string
	// TelemetrySink, when non-nil, replaces the base config's
	// TelemetrySink for this lane (e.g. an obs.TagEpochs wrapper stamping
	// lane/cell attribution). Ignored for alone lanes.
	TelemetrySink obs.EpochSink
}

// RunBatchContext runs every variant lane over one shared generation of
// the mix's access streams and returns per-lane results aligned with
// variants. Each lane's result is bit-identical to running its
// configuration alone through RunMixContext (or runAloneCore for alone
// lanes). On failure the error of the lowest-indexed failing lane is
// returned and the whole batch aborts.
func RunBatchContext(ctx context.Context, base Config, variants []Variant, mix workload.Mix) ([]*Result, error) {
	if len(variants) == 0 {
		return nil, fmt.Errorf("sim: batch with no variants")
	}
	if mix.Cores() != base.Cores {
		return nil, fmt.Errorf("sim: mix %s targets %d cores, config has %d", mix.Name, mix.Cores(), base.Cores)
	}
	cfgs := make([]Config, len(variants))
	used := make([]bool, base.Cores) // cores any lane activates
	for i, v := range variants {
		cfg := base
		cfg.Policy = v.Policy
		if v.Alone {
			if v.AloneCore < 0 || v.AloneCore >= base.Cores {
				return nil, fmt.Errorf("sim: batch variant %d: alone core %d out of range", i, v.AloneCore)
			}
			// Alone runs are IPC calibration, not the run of record
			// (mirrors runAloneCore).
			cfg.TelemetryEpoch, cfg.TelemetrySink, cfg.TelemetryTag = 0, nil, ""
			used[v.AloneCore] = true
		} else {
			if v.TelemetrySink != nil {
				cfg.TelemetrySink = v.TelemetrySink
			}
			if v.TelemetryTag != "" {
				cfg.TelemetryTag = v.TelemetryTag
			}
			if cfg.TelemetryEpoch > 0 && cfg.TelemetryTag == "" {
				cfg.TelemetryTag = mix.Name
			}
			for c := range used {
				used[c] = true
			}
		}
		cfgs[i] = cfg
	}
	if err := mix.Validate(); err != nil {
		return nil, err
	}

	// Per-lane telemetry buffers decouple concurrently-running lanes from
	// the (possibly shared) sink; the driver drains them in lane order at
	// each barrier, so the sink sees the serial emission byte stream at
	// every worker count. Alone lanes have telemetry off (bufs[i] nil).
	workers := base.laneWorkers(len(variants))
	bufs := make([]*epochBuffer, len(variants))
	for i := range cfgs {
		if cfgs[i].TelemetryEpoch > 0 && cfgs[i].TelemetrySink != nil {
			bufs[i] = &epochBuffer{next: cfgs[i].TelemetrySink}
			cfgs[i].TelemetrySink = bufs[i]
		}
	}

	tier2 := tier2Eligible(base)
	if batchResidentBytes(used, tier2) > batchMemBudget {
		return runBatchForked(ctx, cfgs, variants, mix, workers, bufs)
	}

	// Shared per-core streams, built only for cores some lane activates.
	po := base.Phases
	var genStart time.Time
	if po != nil {
		genStart = time.Now()
	}
	var (
		raws []*workload.Stream
		exps []*expStream
	)
	if tier2 {
		exps = make([]*expStream, base.Cores)
	} else {
		raws = make([]*workload.Stream, base.Cores)
	}
	for c := 0; c < base.Cores; c++ {
		if !used[c] {
			continue
		}
		g, err := workload.NewReader(mix, c)
		if err != nil {
			return nil, err
		}
		if tier2 {
			exps[c] = newExpStream(base, c, g)
			exps[c].phases = po
		} else {
			raws[c] = workload.NewStream(g, 0)
		}
	}
	if po != nil {
		// Stream construction only; the bulk of generation happens lazily
		// inside lane stepping and is covered by lane-run/private-replay.
		po.ObservePhase("workload-gen", -1, time.Since(genStart))
	}

	lanes := make([]*batchLane, len(variants))
	for i, v := range variants {
		ln, err := newBatchLane(ctx, cfgs[i], v, raws, exps)
		if err != nil {
			return nil, fmt.Errorf("sim: batch lane %d (%s): %w", i, v.Policy.DisplayName(), err)
		}
		lanes[i] = ln
	}
	if err := runLockstep(lanes, raws, exps, po, workers, bufs); err != nil {
		return nil, err
	}
	out := make([]*Result, len(lanes))
	for i, ln := range lanes {
		res, err := ln.sys.finishRun()
		if err != nil {
			return nil, fmt.Errorf("sim: batch lane %d (%s): %w", i, variants[i].Policy.DisplayName(), err)
		}
		if bufs[i] != nil {
			// finishRun's final flush landed in the buffer; forward it (and
			// surface any sink error) now, still in lane order.
			if err := bufs[i].drain(); err != nil {
				return nil, fmt.Errorf("sim: batch lane %d (%s): telemetry sink: %w", i, variants[i].Policy.DisplayName(), err)
			}
		}
		out[i] = res
	}
	return out, nil
}

// tier2Eligible reports whether the private hierarchy can be simulated
// once and shared across lanes (see the file comment for the argument).
func tier2Eligible(cfg Config) bool {
	noPf := func(name string) bool { return name == "" || name == "none" }
	return noPf(cfg.L1Prefetcher) && noPf(cfg.L2Prefetcher) && !cfg.InclusiveLLC
}

// batchResidentBytes estimates the peak resident shared-window footprint.
func batchResidentBytes(used []bool, tier2 bool) int {
	perRec := 24 // trace.Rec
	if tier2 {
		perRec = 42 // expStream SoA columns
	}
	cores := 0
	for _, u := range used {
		if u {
			cores++
		}
	}
	// Window plus the chunks in flight on either side of it.
	return cores * (int(batchWindow) + 2*streamChunkLen) * perRec
}

// streamChunkLen mirrors workload's default chunk size for the estimate.
const streamChunkLen = 2048

// batchLane is one variant's System plus its paused runner and stream
// positions.
type batchLane struct {
	sys   *System
	run   *runner
	cores []int // active core IDs
	done  bool
}

// expMarker marks a core active in a tier-2 lane; the expanded step path
// never reads it.
type expMarker struct{}

func (expMarker) Next() (trace.Rec, bool) { panic("sim: tier-2 batch lane read its raw reader") }
func (expMarker) Reset()                  { panic("sim: tier-2 batch lane reset its raw reader") }

func newBatchLane(ctx context.Context, cfg Config, v Variant, raws []*workload.Stream, exps []*expStream) (*batchLane, error) {
	readers := make([]trace.Reader, cfg.Cores)
	var expCursors []*expCursor
	if exps != nil {
		expCursors = make([]*expCursor, cfg.Cores)
	}
	var cores []int
	activate := func(c int) {
		cores = append(cores, c)
		if exps != nil {
			readers[c] = expMarker{}
			expCursors[c] = &expCursor{stream: exps[c]}
		} else {
			readers[c] = raws[c].Cursor()
		}
	}
	if v.Alone {
		activate(v.AloneCore)
	} else {
		for c := 0; c < cfg.Cores; c++ {
			activate(c)
		}
	}
	sys, err := New(cfg, readers)
	if err != nil {
		return nil, err
	}
	sys.expCursors = expCursors
	run, err := sys.newRunner(ctx) // window limits installed by runLockstep
	if err != nil {
		return nil, err
	}
	return &batchLane{sys: sys, run: run, cores: cores}, nil
}

// laneOutcome is one lane's rotation result. Outcomes are produced by
// whichever goroutine ran the quantum and merged by the driver in lane
// order, which is what keeps the rotation deterministic.
type laneOutcome struct {
	stepped bool
	done    bool
	err     error
}

// quantum runs one rotation quantum of lane i. With po non-nil the wall
// time is reported as "lane-run" from the calling goroutine — a pool
// worker when lanes run concurrently (see the PhaseObserver contract).
func (ln *batchLane) quantum(i int, po PhaseObserver) laneOutcome {
	var t0 time.Time
	if po != nil {
		t0 = time.Now()
	}
	before := ln.run.guard
	done, _, err := ln.run.run(batchQuantum)
	if po != nil {
		po.ObservePhase("lane-run", i, time.Since(t0))
	}
	if err != nil {
		return laneOutcome{err: fmt.Errorf("sim: batch lane %d: %w", i, err)}
	}
	return laneOutcome{stepped: ln.run.guard != before, done: done}
}

// runLockstep drives every lane in rotation quanta until all finish.
// Per-core limits bound lane skew; the floor (lowest-position) lane of a
// core is never gated, and if cross-core window shapes ever block every
// lane in one rotation, the limits grow by a window so progress resumes.
//
// With workers > 1 each rotation's quanta run concurrently on a bounded
// pool. That is race-free because the barrier materializes the shared
// streams up to the window limits before lanes run (so the lane phase
// only reads them — a runner never steps past limits[c], and telemetry
// goes to per-lane buffers), and it is deterministic because every
// unfinished lane runs exactly one quantum per rotation regardless of
// worker count and the outcomes — progress OR, completion, the
// lowest-lane error, buffered epochs — merge in lane order at the
// barrier. The rotation sequence, and with it the deadlock-breaker
// growth path, is therefore identical at every worker setting.
//
// When po is non-nil, per-lane quantum time is reported per rotation
// ("lane-run", from the executing goroutine), barrier time once at the
// end ("barrier"), and each deadlock-breaker growth as a zero-duration
// "window-grow"; timing wraps existing work and never alters it.
func runLockstep(lanes []*batchLane, raws []*workload.Stream, exps []*expStream, po PhaseObserver, workers int, bufs []*epochBuffer) error {
	cores := 0
	if raws != nil {
		cores = len(raws)
	} else {
		cores = len(exps)
	}
	limits := make([]uint64, cores)
	for c := range limits {
		limits[c] = batchWindow
	}
	for _, ln := range lanes {
		ln.run.limits = limits // shared: window advances reach every lane
		ln.run.consumed = make([]uint64, cores)
	}

	// ensure materializes every shared stream up to its window limit so
	// the following lane phase never mutates shared state — the invariant
	// that makes concurrent lanes legal. Driver-only, like Release.
	ensure := func() {
		for c := 0; c < cores; c++ {
			if raws != nil && raws[c] != nil {
				raws[c].Ensure(limits[c])
			}
			if exps != nil && exps[c] != nil {
				exps[c].ensure(limits[c])
			}
		}
	}

	// drainTo forwards buffered lane telemetry to the real sinks, in lane
	// order, up to and including lane last — the serial rotation's
	// emission order. Sink errors stay sticky in the buffer and surface
	// through the lane's own telemetry error path.
	drainTo := func(last int) {
		for i := 0; i <= last && i < len(bufs); i++ {
			if bufs[i] != nil {
				bufs[i].drain()
			}
		}
	}

	outs := make([]laneOutcome, len(lanes))
	var (
		tasks chan int
		wg    sync.WaitGroup
	)
	if workers > 1 {
		tasks = make(chan int, len(lanes))
		defer close(tasks)
		for w := 0; w < workers; w++ {
			go func() {
				for i := range tasks {
					outs[i] = lanes[i].quantum(i, po)
					wg.Done()
				}
			}()
		}
	}

	var barrierDur time.Duration
	live := len(lanes)
	ensure()
	for live > 0 {
		// Lane phase: every unfinished lane runs one quantum against the
		// frozen window.
		if workers > 1 {
			for i, ln := range lanes {
				if ln.done {
					continue
				}
				wg.Add(1)
				tasks <- i
			}
			wg.Wait()
		} else {
			for i, ln := range lanes {
				if ln.done {
					continue
				}
				if outs[i] = ln.quantum(i, po); outs[i].err != nil {
					break // serial semantics: later lanes don't run this rotation
				}
			}
		}

		// Barrier: merge outcomes in lane order, then advance the window.
		stepped := false
		for i, ln := range lanes {
			if ln.done {
				continue
			}
			o := outs[i]
			if o.err != nil {
				// Lanes ≤ i emitted exactly the epochs the serial rotation
				// would have before aborting; later lanes' buffers are
				// dropped with the batch.
				drainTo(i)
				return o.err
			}
			if o.stepped {
				stepped = true
			}
			if o.done {
				ln.done = true
				live--
			}
		}
		drainTo(len(bufs) - 1)
		if live == 0 {
			break
		}
		var b0 time.Time
		if po != nil {
			b0 = time.Now()
		}
		// Advance the window: recycle everything below the slowest
		// unfinished lane and let the fastest run a window past it.
		for c := 0; c < cores; c++ {
			floor, any := ^uint64(0), false
			for _, ln := range lanes {
				if ln.done {
					continue
				}
				for _, lc := range ln.cores {
					if lc == c {
						if p := ln.run.consumed[c]; p < floor {
							floor = p
						}
						any = true
						break
					}
				}
			}
			if !any {
				continue
			}
			if raws != nil && raws[c] != nil {
				raws[c].Release(floor)
			}
			if exps != nil && exps[c] != nil {
				exps[c].release(floor)
			}
			limit := floor + batchWindow
			if !stepped && limit <= limits[c] {
				// Deadlock breaker: mutually-blocked window shapes across
				// different cores can stall a rotation; widen until a lane
				// moves. Results are unaffected — limits only pause lanes.
				limit = limits[c] + batchWindow
				if po != nil {
					po.ObservePhase("window-grow", -1, 0)
				}
			}
			limits[c] = limit
		}
		ensure()
		if po != nil {
			barrierDur += time.Since(b0)
		}
	}
	if po != nil {
		po.ObservePhase("barrier", -1, barrierDur)
	}
	return nil
}

// runBatchForked is the memory-budget fallback: every lane replays the
// stream itself from a cheap reader fork — there is no shared window at
// all, so lanes are fully independent and run on the same bounded worker
// pool the lockstep path uses. Identical results: lane telemetry is
// buffered and drained in lane order at the end, and on failure the
// lowest-indexed failing lane's error is returned with only lanes at or
// below it having emitted epochs, exactly like the serial path.
func runBatchForked(ctx context.Context, cfgs []Config, variants []Variant, mix workload.Mix, workers int, bufs []*epochBuffer) ([]*Result, error) {
	protos := make([]trace.Reader, mix.Cores())
	for c := range protos {
		g, err := workload.NewReader(mix, c)
		if err != nil {
			return nil, err
		}
		protos[c] = g
	}
	// Forks mutate the proto readers, so every lane's readers are built
	// serially up front; only the runs themselves are concurrent.
	readers := make([][]trace.Reader, len(variants))
	for i, v := range variants {
		readers[i] = make([]trace.Reader, cfgs[i].Cores)
		var err error
		if v.Alone {
			readers[i][v.AloneCore], err = workload.ForkReader(protos[v.AloneCore])
		} else {
			for c := range readers[i] {
				if readers[i][c], err = workload.ForkReader(protos[c]); err != nil {
					break
				}
			}
		}
		if err != nil {
			return nil, err
		}
	}
	out := make([]*Result, len(variants))
	runLane := func(i int) error {
		sys, err := New(cfgs[i], readers[i])
		if err != nil {
			return err
		}
		res, err := sys.RunContext(ctx)
		if err != nil {
			return err
		}
		out[i] = res
		return nil
	}
	wrap := func(i int, err error) error {
		return fmt.Errorf("sim: batch lane %d (%s): %w", i, variants[i].Policy.DisplayName(), err)
	}
	errLane, firstErr := len(variants), error(nil)
	if workers <= 1 {
		for i := range variants {
			if err := runLane(i); err != nil {
				errLane, firstErr = i, wrap(i, err)
				break
			}
		}
	} else {
		var (
			mu  sync.Mutex
			wg  sync.WaitGroup
			sem = make(chan struct{}, workers)
		)
		for i := range variants {
			mu.Lock()
			failed := firstErr != nil
			mu.Unlock()
			if failed {
				break // already-dispatched lanes below the error still finish
			}
			sem <- struct{}{}
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				defer func() { <-sem }()
				if err := runLane(i); err != nil {
					mu.Lock()
					if i < errLane {
						errLane, firstErr = i, wrap(i, err)
					}
					mu.Unlock()
				}
			}(i)
		}
		wg.Wait()
	}
	for i := 0; i < len(bufs) && i <= errLane; i++ {
		if bufs[i] != nil {
			if err := bufs[i].drain(); err != nil && firstErr == nil {
				errLane, firstErr = i, fmt.Errorf("sim: batch lane %d (%s): telemetry sink: %w", i, variants[i].Policy.DisplayName(), err)
			}
		}
	}
	if firstErr != nil {
		return nil, firstErr
	}
	return out, nil
}

// --- tier-2 expanded stream --------------------------------------------------

// Expanded-record flag bits.
const (
	expWrite uint8 = 1 << iota // store (RFO)
	expL1Hit                   // hit in L1; no lane-side work beyond timing
	expL2Hit                   // L1 miss that hit in L2
	expWB1                     // L2 demand fill evicted a dirty line (wb1)
	expWB2                     // L1 eviction's L2 writeback evicted dirty (wb2)
)

// expChunk is one chunk of expanded records in SoA layout. loc[i] is the
// number of consecutive core-local records starting at i (0 when record i
// itself is not local): a record is local when it never leaves the private
// hierarchy — an L1 hit, or an L2 hit whose L1 eviction caused no L2
// writeback miss (no expWB2) — so replaying it touches only the issuing
// core's own state (cycle/ROB counters and its per-core MSHR), never the
// lane-shared LLC/NoC/DRAM. Lanes replay whole local runs under a single
// scheduler step (see stepExpandedN).
type expChunk struct {
	gap   []uint32
	flags []uint8
	loc   []uint16
	pc    []uint64
	block []uint64
	wb1   []uint64
	wb2   []uint64
}

func newExpChunk(n int) *expChunk {
	return &expChunk{
		gap:   make([]uint32, 0, n),
		flags: make([]uint8, 0, n),
		loc:   make([]uint16, 0, n),
		pc:    make([]uint64, 0, n),
		block: make([]uint64, 0, n),
		wb1:   make([]uint64, 0, n),
		wb2:   make([]uint64, 0, n),
	}
}

func (ck *expChunk) reset() {
	ck.gap = ck.gap[:0]
	ck.flags = ck.flags[:0]
	ck.loc = ck.loc[:0]
	ck.pc = ck.pc[:0]
	ck.block = ck.block[:0]
	ck.wb1 = ck.wb1[:0]
	ck.wb2 = ck.wb2[:0]
}

// annotateLocalRuns fills loc after a chunk is fully expanded. Runs never
// cross chunk boundaries (a lane just takes two fast steps).
func (ck *expChunk) annotateLocalRuns() {
	run := uint16(0)
	for j := len(ck.flags) - 1; j >= 0; j-- {
		f := ck.flags[j]
		if f&expL1Hit != 0 || (f&expL2Hit != 0 && f&expWB2 == 0) {
			run++
		} else {
			run = 0
		}
		ck.loc[j] = run
	}
}

// expChunkLen is the expansion granularity.
const expChunkLen = 2048

// expStream is the tier-2 shared stream for one core: each raw record runs
// through the core's private L1/L2 hierarchy exactly once (in the same
// operation order as System.accessL1/accessL2/writebackL2), and the
// outcome — hit level, demand block, and any writeback victims — is
// recorded for every lane to replay. The private caches here see
// Access.Cycle zero, which is safe because neither the cache bookkeeping
// nor the L1/L2 policies (LRU, SRRIP) read it.
type expStream struct {
	src    trace.Reader
	coreID int
	l1, l2 *cache.Cache
	base   uint64 // absolute index of chunks[0]'s first record
	next   uint64 // absolute index of the first unexpanded record
	chunks []*expChunk
	free   []*expChunk
	done   bool
	phases PhaseObserver // optional "private-replay" wall-time reporting
}

func newExpStream(cfg Config, coreID int, src trace.Reader) *expStream {
	// Private caches constructed exactly as System.New does; cache.New only
	// fails on geometry errors, which cfg.Validate has already excluded.
	l1, err := cache.New(cache.Config{Name: fmt.Sprintf("exp-l1d-%d", coreID), Sets: cfg.l1Sets(), Ways: cfg.L1Ways},
		repl.NewLRU(cfg.l1Sets(), cfg.L1Ways))
	if err != nil {
		panic(err)
	}
	l2, err := cache.New(cache.Config{Name: fmt.Sprintf("exp-l2-%d", coreID), Sets: cfg.l2Sets(), Ways: cfg.L2Ways},
		repl.NewSRRIP(cfg.l2Sets(), cfg.L2Ways))
	if err != nil {
		panic(err)
	}
	return &expStream{src: src, coreID: coreID, l1: l1, l2: l2}
}

// fill expands one chunk of raw records through the private hierarchy.
func (e *expStream) fill() bool {
	if e.done {
		return false
	}
	if e.phases != nil {
		t0 := time.Now()
		defer func() { e.phases.ObservePhase("private-replay", -1, time.Since(t0)) }()
	}
	var ck *expChunk
	if n := len(e.free); n > 0 {
		ck, e.free = e.free[n-1], e.free[:n-1]
		ck.reset()
	} else {
		ck = newExpChunk(expChunkLen)
	}
	for len(ck.gap) < expChunkLen {
		rec, ok := e.src.Next()
		if !ok {
			// Finite trace exhausted: loop it, mirroring System.step.
			e.src.Reset()
			if rec, ok = e.src.Next(); !ok {
				e.done = true
				break
			}
		}
		e.expand(ck, rec)
	}
	if len(ck.gap) == 0 {
		return false
	}
	ck.loc = ck.loc[:len(ck.gap)]
	ck.annotateLocalRuns()
	e.chunks = append(e.chunks, ck)
	e.next += uint64(len(ck.gap))
	return true
}

// expand runs one record through L1/L2 and appends its outcome. The
// private-cache operation order matches the serial path exactly:
// l1.Access → l2.Access → l2.FillMiss → l1.FillMiss → (writeback)
// l2.Access → l2.FillMiss.
func (e *expStream) expand(ck *expChunk, rec trace.Rec) {
	block := mem.Block(rec.Addr)
	typ := mem.Load
	var flags uint8
	if rec.Write {
		typ = mem.RFO
		flags = expWrite
	}
	a := repl.Access{PC: rec.PC, Block: block, Core: e.coreID, Type: typ}
	var wb1, wb2 uint64
	if hit, _ := e.l1.Access(a); hit {
		flags |= expL1Hit
	} else {
		if hit2, _ := e.l2.Access(a); hit2 {
			flags |= expL2Hit
		} else {
			if ev := e.l2.FillMiss(a, false); ev.Valid && ev.Dirty {
				flags |= expWB1
				wb1 = ev.Block
			}
		}
		if ev := e.l1.FillMiss(a, typ == mem.RFO); ev.Valid && ev.Dirty {
			// System.writebackL2, minus the lane-side LLC traffic.
			wa := repl.Access{Block: ev.Block, Core: e.coreID, Type: mem.Writeback}
			if whit, _ := e.l2.Access(wa); !whit {
				if evw := e.l2.FillMiss(wa, true); evw.Valid && evw.Dirty {
					flags |= expWB2
					wb2 = evw.Block
				}
			}
		}
	}
	ck.gap = append(ck.gap, rec.Gap)
	ck.flags = append(ck.flags, flags)
	ck.pc = append(ck.pc, rec.PC)
	ck.block = append(ck.block, block)
	ck.wb1 = append(ck.wb1, wb1)
	ck.wb2 = append(ck.wb2, wb2)
}

// ensure expands records until every position below pos is replayable (or
// the source is degenerate). Driver-only, like workload.Stream.Ensure:
// after ensure(pos), lane reads strictly below pos never mutate the
// stream, so they are safe from concurrent goroutines until the next
// ensure/release.
func (e *expStream) ensure(pos uint64) {
	for e.next < pos && e.fill() {
	}
}

// release recycles chunks wholly below min.
func (e *expStream) release(min uint64) {
	drop := 0
	for drop < len(e.chunks) &&
		len(e.chunks[drop].gap) == expChunkLen &&
		e.base+uint64(drop+1)*expChunkLen <= min {
		drop++
	}
	if drop == 0 {
		return
	}
	e.free = append(e.free, e.chunks[:drop]...)
	e.chunks = append(e.chunks[:0], e.chunks[drop:]...)
	e.base += uint64(drop) * expChunkLen
}

// expCursor is one lane's position in a core's expanded stream.
type expCursor struct {
	stream *expStream
	pos    uint64
}

// stepExpandedN replays expanded records for coreID and returns how many
// it consumed (0 only for a degenerate empty source). The slow path
// replays one record — the lane-side half of System.step/accessL1/accessL2
// (core timing, MSHR reservations, LLC and writeback traffic) with the
// private-hierarchy outcomes read from the shared expansion; latency
// arithmetic and call order mirror the serial path operation for
// operation.
//
// The fast path replays a burst of core-local records (loc column) under
// one scheduler step, eliding the per-record heap/gate/loop overhead. The
// burst reproduces the serial schedule exactly — not just equivalently:
// it continues only while the serial heap would keep picking this core
// (its (cycle, coreID) stays lexicographically at or below the heap's
// runner-up, which is constant during the burst because only the stepped
// core's key ever changes), and it breaks at any record where the serial
// step loop would act between steps (finish crossing with no cores left,
// warmup crossing). Per-record CPU ops still run individually because ROB
// occupancy (lane-specific miss latencies in flight) makes each record's
// timing state-dependent.
func (r *runner) stepExpandedN(coreID int, budget uint64) uint64 {
	s := r.s
	cur := s.expCursors[coreID]
	e := cur.stream
	// The barrier pre-expands the window (ensure), so under lockstep this
	// loop only runs for a degenerate empty source, where fill is a pure
	// read of e.done — concurrent lanes stay race-free either way.
	for cur.pos >= e.next {
		if !e.fill() {
			return 0 // degenerate empty source; mirrors step's bail-out
		}
	}
	off := cur.pos - e.base
	ck := e.chunks[off/expChunkLen]
	i := int(off % expChunkLen)

	if run := uint64(ck.loc[i]); run > 1 {
		if run > budget {
			run = budget // never read past the shared-window limit
		}
		k2, id2 := r.sched.second()
		if n := uint64(r.replayLocalRun(coreID, ck, i, int(run), k2, id2)); n > 0 {
			cur.pos += n
			return n
		}
		// 0 = the scheduled record ends the whole run; single-step it.
	}
	cur.pos++

	core := s.cores[coreID]
	core.AdvanceNonMem(ck.gap[i])
	flags := ck.flags[i]
	now := core.Cycle()
	lat := s.cfg.L1Latency
	if flags&expL1Hit == 0 {
		latL2 := s.cfg.L2Latency
		if flags&expL2Hit == 0 {
			typ := mem.Load
			if flags&expWrite != 0 {
				typ = mem.RFO
			}
			a := repl.Access{PC: ck.pc[i], Block: ck.block[i], Core: coreID, Type: typ, Cycle: now}
			latL2 += s.accessLLC(coreID, a, now)
			if s.l2MSHR != nil {
				latL2 += s.l2MSHR[coreID].reserve(now, latL2)
			}
			if flags&expWB1 != 0 {
				s.writebackLLC(coreID, ck.wb1[i], now)
			}
		}
		lat += latL2
		if s.l1MSHR != nil {
			lat += s.l1MSHR[coreID].reserve(now, lat)
		}
		if flags&expWB2 != 0 {
			s.writebackLLC(coreID, ck.wb2[i], now)
		}
	}
	if flags&expWrite != 0 {
		// Stores commit without blocking retirement.
		core.IssueMem(1)
	} else {
		core.IssueMem(lat)
	}
	return 1
}

// replayLocalRun replays up to n records of ck starting at i — all
// core-local — for coreID, and returns how many it executed (0 means the
// scheduled record must run as a single step instead). Per-record ops are
// byte-for-byte the slow path's local subset: L1 hits cost L1Latency; L2
// hits cost L1+L2 latency plus any L1-MSHR wait (per-core state, so still
// local).
//
// Two burst disciplines, both bit-identical to serial:
//
//   - Exact (pre-warmup, or telemetry live): the burst continues only
//     while the serial heap would keep picking this core — (cycle,
//     coreID) lexicographically at or below the runner-up (k2, id2) — and
//     breaks after a warmup crossing so the outer loop's
//     maybeFinishWarmup fires on the same step as serial. The step
//     sequence is exactly serial's, so global events that snapshot other
//     cores (warmup reset, telemetry epochs) see identical state.
//
//   - Atomic (post-warmup, no telemetry): the burst runs to its end
//     regardless of the runner-up. Equivalence: executed heap keys are
//     non-decreasing, so shared-state steps (the only steps that touch
//     LLC/NoC/DRAM/fabric) still execute in (cycle, coreID) order —
//     local records can't reorder them — and per-core timing is
//     schedule-independent. Overshooting the run's final step with local
//     records is invisible: collect() reads only the finishedAt
//     snapshots (captured per record, below) and shared-state counters.
//     The one step that must not execute early is the run-terminating
//     crossing itself — steps with smaller keys on other cores still
//     owe shared-state work — so when this core is the last unfinished
//     one, the burst stops short of the crossing record and lets it run
//     as a single step at its true heap key.
func (r *runner) replayLocalRun(coreID int, ck *expChunk, i, n int, k2 uint64, id2 int32) int {
	s := r.s
	core := s.cores[coreID]
	l1Lat := s.cfg.L1Latency
	l2Lat := l1Lat + s.cfg.L2Latency
	id := int32(coreID)
	done := s.finishedAt[coreID].done
	atomic := s.warmupDone && s.telem == nil
	lastCore := atomic && !done && r.remaining == 1
	var mshr *mshrFile
	if s.l1MSHR != nil {
		mshr = s.l1MSHR[coreID]
	}
	// Express the finish/warmup crossings as retired-instruction budgets so
	// the per-record checks are one counter compare: record j retires
	// gap[j]+1 instructions. A warmup budget is only needed while this core
	// is still below the warmup line — once it has crossed, further local
	// records can't make maybeFinishWarmup newly fire (the other cores'
	// counts don't move during the burst), exactly as in serial stepping.
	const never = ^uint64(0)
	needF := never // instructions until this core's finish crossing
	if !done {
		needF = s.totalTarget - s.warmupBase() - core.Instructions()
	}
	needW := never // instructions until this core first crosses warmup
	if !s.warmupDone && core.Instructions() < s.cfg.Warmup {
		needW = s.cfg.Warmup - core.Instructions()
	}
	gaps := ck.gap[i : i+n]
	fls := ck.flags[i : i+n]
	var cum uint64
	for j := 0; j < n; j++ {
		gap := gaps[j]
		if atomic {
			if lastCore && cum+uint64(gap)+1 >= needF {
				return j // run-ending step executes at its true heap key
			}
		} else if j > 0 {
			if cyc := core.Cycle(); cyc > k2 || (cyc == k2 && id > id2) {
				return j // serial heap would pick the runner-up now
			}
		}
		if fl := fls[j]; fl&expL1Hit != 0 || mshr == nil {
			// Fixed latency — fused single-pass retire.
			lat := l1Lat
			if fl&expL1Hit == 0 {
				lat = l2Lat
			}
			if fl&expWrite != 0 {
				lat = 1 // stores commit without blocking retirement
			}
			core.Retire(gap, lat)
		} else {
			// L2 hit with an MSHR: the wait depends on the post-gap cycle.
			core.AdvanceNonMem(gap)
			lat := l2Lat + mshr.reserve(core.Cycle(), l2Lat)
			if fl&expWrite != 0 {
				core.IssueMem(1)
			} else {
				core.IssueMem(lat)
			}
		}
		cum += uint64(gap) + 1
		if cum >= needF {
			s.finishedAt[coreID] = recorded{
				done:   true,
				cycles: core.Cycles(),
				instrs: core.Instructions(),
				ipc:    core.IPC(),
			}
			done = true
			needF = never
			if r.remaining--; r.remaining == 0 {
				return j + 1 // exact mode: the whole run ends on this step
			}
		}
		if cum >= needW {
			return j + 1 // outer loop must run maybeFinishWarmup now
		}
	}
	return n
}
