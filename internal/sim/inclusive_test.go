package sim

import (
	"testing"

	"drishti/internal/workload"
)

// TestInclusiveLLCHurtsWithBigPrivateCaches reproduces the classic
// inclusion-victim effect: when the private caches hold a meaningful share
// of the working set, LLC evictions back-invalidate live lines and cost
// performance relative to the non-inclusive baseline.
func TestInclusiveLLCHurts(t *testing.T) {
	model := workload.Model{
		Name: "inclusion-victims", Suite: workload.SuiteSPEC, MeanGap: 3,
		Streams: []workload.StreamSpec{
			// Hot L2-resident loop (the inclusion victims). Small enough
			// that it stabilizes in the 64 KB L2 despite scan churn.
			{Kind: workload.Loop, Weight: 7, FootprintKB: 24, PCs: 8},
			// LLC-thrashing scan that forces LLC evictions.
			{Kind: workload.Sequential, Weight: 3, FootprintKB: 8192, PCs: 2},
		},
	}
	run := func(inclusive bool) *Result {
		cfg := ScaledConfig(1, 8)
		cfg.Instructions = 120_000
		cfg.Warmup = 20_000
		cfg.InclusiveLLC = inclusive
		res, err := RunMix(cfg, workload.Homogeneous(model, 1, 3))
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	nonInc, inc := run(false), run(true)
	// Back-invalidated loop lines must be refetched from DRAM: the
	// inclusive run does strictly more DRAM reads and LLC demand misses.
	if inc.DRAM.Reads <= nonInc.DRAM.Reads {
		t.Fatalf("no inclusion-victim refetches: inclusive reads %d ≤ non-inclusive %d",
			inc.DRAM.Reads, nonInc.DRAM.Reads)
	}
	if inc.MPKI <= nonInc.MPKI {
		t.Fatalf("inclusive MPKI %.2f ≤ non-inclusive %.2f", inc.MPKI, nonInc.MPKI)
	}
}

// TestInclusiveLLCInvariant checks the inclusion property itself: after an
// inclusive run, no private cache holds a block absent from the LLC.
func TestInclusiveLLCInvariant(t *testing.T) {
	cfg := ScaledConfig(2, 8)
	cfg.Instructions = 25_000
	cfg.Warmup = 5_000
	cfg.InclusiveLLC = true
	mix := workload.Homogeneous(
		workload.AllSPECGAP()[0].Scale(8, cfg.SetIndexBits()), 2, 11)
	readers, err := Readers(mix)
	if err != nil {
		t.Fatal(err)
	}
	sys, err := New(cfg, readers)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sys.Run(); err != nil {
		t.Fatal(err)
	}
	inLLC := func(block uint64) bool {
		_, ok := sys.llc[sys.sliceFor(block)].Probe(block)
		return ok
	}
	violations := 0
	for c := 0; c < cfg.Cores; c++ {
		for _, pc := range []interface{ Probe(uint64) (int, bool) }{sys.l1[c], sys.l2[c]} {
			_ = pc
		}
	}
	// Walk the private caches via Probe over their known contents: the
	// cache API exposes Probe only, so sample the LLC's recent traffic
	// instead — probe the L1/L2 for blocks NOT in the LLC by scanning a
	// window of generated addresses.
	g, err := workload.NewGenerator(mix.Models[0].Scale(1, cfg.SetIndexBits()), mix.Seeds[0])
	if err != nil {
		t.Fatal(err)
	}
	seen := map[uint64]bool{}
	for i := 0; i < 30_000; i++ {
		r, _ := g.Next()
		blk := r.Addr >> 6
		if seen[blk] {
			continue
		}
		seen[blk] = true
		for c := 0; c < cfg.Cores; c++ {
			if _, ok := sys.l1[c].Probe(blk); ok && !inLLC(blk) {
				violations++
			}
			if _, ok := sys.l2[c].Probe(blk); ok && !inLLC(blk) {
				violations++
			}
		}
	}
	if violations > 0 {
		t.Fatalf("%d inclusion violations (private line without an LLC copy)", violations)
	}
}
