package sim

import (
	"context"
	"fmt"
)

// runner is the resumable state of a System's step loop. RunContext drives
// one runner to completion in a single call; the batch runner time-slices
// many runners (one per lane) against a shared record stream, pausing a
// lane whenever its next core would read past the stream window.
//
// The loop body is the exact sequence the monolithic RunContext executed,
// so a runner driven in quanta performs the same steps in the same order
// as one driven straight through: results are bit-identical regardless of
// slicing.
type runner struct {
	s         *System
	ctx       context.Context
	cancelCh  <-chan struct{}
	sched     *coreHeap
	remaining int
	guard     uint64
	guardMax  uint64
	// limits/consumed, when limits is non-nil, gate the runner against a
	// shared stream window: before stepping the scheduled core the runner
	// checks consumed[core] < limits[core] and pauses (run returns blocked)
	// otherwise. The heap order is part of the deterministic schedule, so a
	// refused core blocks the whole lane — stepping any other core would
	// change results. limits is shared across a batch's lanes (runLockstep
	// advances it); consumed counts this lane's per-core records.
	limits   []uint64
	consumed []uint64
}

// newRunner validates the workload and builds the scheduler. It mirrors
// the prologue of the former RunContext verbatim.
func (s *System) newRunner(ctx context.Context) (*runner, error) {
	var cancelCh <-chan struct{}
	if ctx != nil {
		cancelCh = ctx.Done()
	}
	var activeIDs []int
	for c := range s.readers {
		if s.readers[c] != nil {
			activeIDs = append(activeIDs, c)
		} else {
			s.finishedAt[c] = recorded{done: true}
		}
	}
	active := len(activeIDs)
	if active == 0 {
		return nil, fmt.Errorf("sim: no active cores")
	}
	if s.cfg.Warmup == 0 {
		s.warmupDone = true
	}

	// Earliest-core scheduling via an indexed min-heap on (cycle, coreID):
	// O(log cores) per step instead of the old O(cores) scan, with the same
	// deterministic lowest-ID tie-break (see coreHeap). Finished cores keep
	// running — their traces loop so contention persists — so heap
	// membership is fixed for the whole run and only the stepped core's key
	// ever changes.
	sched := newCoreHeap(activeIDs, func(c int) uint64 { return s.cores[c].Cycle() })

	return &runner{
		s:         s,
		ctx:       ctx,
		cancelCh:  cancelCh,
		sched:     sched,
		remaining: active,
		guardMax:  64 * s.totalTarget * uint64(active),
	}, nil
}

// run advances the system by at most maxSteps trace records. done reports
// that every active core reached its target; blocked reports an early
// return because the gate refused the next scheduled core (call run again
// once the gate admits it). The guard and cancellation counters persist
// across calls, so slicing a run changes nothing about its behavior.
func (r *runner) run(maxSteps uint64) (done, blocked bool, err error) {
	s := r.s
	for steps := uint64(0); r.remaining > 0; steps++ {
		if steps >= maxSteps {
			return false, false, nil
		}
		if r.cancelCh != nil && r.guard&1023 == 0 {
			select {
			case <-r.cancelCh:
				return false, false, fmt.Errorf("sim: run cancelled after %d steps: %w", r.guard, r.ctx.Err())
			default:
			}
		}
		coreID := r.sched.min()
		budget := ^uint64(0)
		if r.limits != nil {
			if c := r.consumed[coreID]; c < r.limits[coreID] {
				budget = r.limits[coreID] - c
			} else {
				return false, true, nil
			}
		}
		var consumed uint64 = 1
		if s.expCursors != nil {
			// May replay a whole run of core-local records (see
			// stepExpandedN); a run executes under one heap step, which is
			// schedule-equivalent because local records touch no shared
			// state and heap keys are non-decreasing.
			consumed = r.stepExpandedN(coreID, budget)
		} else {
			s.step(coreID)
		}
		if r.limits != nil {
			r.consumed[coreID] += consumed
		}
		r.sched.fixMin(s.cores[coreID].Cycle())
		if !s.finishedAt[coreID].done && s.cores[coreID].Instructions()+s.warmupBase() >= s.totalTarget {
			core := s.cores[coreID]
			s.finishedAt[coreID] = recorded{
				done:   true,
				cycles: core.Cycles(),
				instrs: core.Instructions(),
				ipc:    core.IPC(),
			}
			r.remaining--
		}
		// Warmup can only complete on a step where the stepped core itself
		// crossed the budget (every other core's count is unchanged), so
		// skip the all-cores scan otherwise.
		if !s.warmupDone && s.cores[coreID].Instructions() >= s.cfg.Warmup {
			s.maybeFinishWarmup()
		}
		if consumed > 1 {
			r.guard += consumed - 1 // guard counts records, not heap steps
		}
		if r.guard++; r.guard > r.guardMax && r.guardMax > 0 {
			detail := ""
			for c := range s.cores {
				if s.readers[c] != nil {
					detail += fmt.Sprintf(" core%d[i=%d c=%d done=%v]", c, s.cores[c].Instructions(), s.cores[c].Cycles(), s.finishedAt[c].done)
				}
			}
			return false, false, fmt.Errorf("sim: run exceeded %d steps without completing:%s", r.guardMax, detail)
		}
	}
	return true, false, nil
}

// finishRun closes telemetry and collects the result once a runner reports
// done. It mirrors the epilogue of the former RunContext verbatim.
func (s *System) finishRun() (*Result, error) {
	if s.telem != nil {
		s.telem.flush(s, true)
		if s.telem.err != nil {
			return nil, fmt.Errorf("sim: telemetry sink: %w", s.telem.err)
		}
	}
	return s.collect(), nil
}
