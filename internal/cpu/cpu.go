// Package cpu implements the per-core timing model: an interval-style
// out-of-order core with a bounded reorder buffer and in-order retirement.
// Non-memory instructions retire at the issue width; loads occupy ROB
// entries until their memory latency elapses, so misses overlap up to the
// ROB depth — the memory-level-parallelism behavior that makes replacement
// policy quality visible in IPC (design decision D3 in DESIGN.md).
package cpu

import "fmt"

// Config sizes a core (defaults follow Table 4's Sunny-Cove-like baseline).
type Config struct {
	IssueWidth int // instructions issued per cycle (6)
	ROBSize    int // in-flight loads the core tolerates (352)
}

// DefaultConfig returns the paper's baseline core.
func DefaultConfig() Config { return Config{IssueWidth: 6, ROBSize: 352} }

// Validate reports configuration errors.
func (c Config) Validate() error {
	if c.IssueWidth <= 0 || c.ROBSize <= 0 {
		return fmt.Errorf("cpu: width and ROB size must be positive: %+v", c)
	}
	return nil
}

// Core is one simulated core's timing state.
type Core struct {
	ID  int
	cfg Config

	cycle     uint64
	instrs    uint64 // instructions retired
	slotsUsed int    // issue slots consumed in the current cycle
	rob       []uint64
	robHead   int
	robLen    int

	// Warmup snapshots: statistics are reported relative to these so the
	// shared clock (DRAM, NOCSTAR reservations) stays monotonic.
	baseCycle  uint64
	baseInstrs uint64
}

// New builds a core.
func New(id int, cfg Config) (*Core, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	return &Core{ID: id, cfg: cfg, rob: make([]uint64, cfg.ROBSize)}, nil
}

// MustNew is New that panics on configuration errors.
func MustNew(id int, cfg Config) *Core {
	c, err := New(id, cfg)
	if err != nil {
		panic(err)
	}
	return c
}

// Cycle returns the core's current (absolute) cycle.
func (c *Core) Cycle() uint64 { return c.cycle }

// Instructions returns instructions retired since the last ResetStats.
func (c *Core) Instructions() uint64 { return c.instrs - c.baseInstrs }

// Cycles returns cycles elapsed since the last ResetStats.
func (c *Core) Cycles() uint64 { return c.cycle - c.baseCycle }

// IPC returns instructions per cycle since the last ResetStats.
func (c *Core) IPC() float64 {
	cy := c.Cycles()
	if cy == 0 {
		return 0
	}
	return float64(c.Instructions()) / float64(cy)
}

// issueSlot consumes one issue slot, advancing the cycle at the width.
func (c *Core) issueSlot() {
	c.slotsUsed++
	if c.slotsUsed >= c.cfg.IssueWidth {
		c.slotsUsed = 0
		c.cycle++
	}
	c.instrs++
}

// AdvanceNonMem retires n non-memory instructions. This is issueSlot n
// times, folded into one division: the cycle advances once per IssueWidth
// slots consumed, wherever the slot counter started. Most gaps between
// memory references are shorter than the issue width, so the common case
// skips the divide entirely.
func (c *Core) AdvanceNonMem(n uint32) {
	total := c.slotsUsed + int(n)
	if total < c.cfg.IssueWidth {
		c.slotsUsed = total
		c.instrs += uint64(n)
		return
	}
	c.cycle += uint64(total / c.cfg.IssueWidth)
	c.slotsUsed = total % c.cfg.IssueWidth
	c.instrs += uint64(n)
}

// Retire retires gap non-memory instructions followed by one memory
// instruction of fixed access latency memLat — AdvanceNonMem plus IssueMem
// fused into one state pass, for replay loops that issue one call per
// trace record. Callers that need the post-gap cycle before choosing the
// latency (MSHR waits) must use the two-call form instead.
func (c *Core) Retire(gap, memLat uint32) {
	total := c.slotsUsed + int(gap)
	cycle := c.cycle
	if total >= c.cfg.IssueWidth {
		cycle += uint64(total / c.cfg.IssueWidth)
		total %= c.cfg.IssueWidth
	}
	if c.robLen == c.cfg.ROBSize {
		done := c.rob[c.robHead]
		if c.robHead++; c.robHead == c.cfg.ROBSize {
			c.robHead = 0
		}
		c.robLen--
		if done > cycle {
			cycle = done
			total = 0
		}
	}
	completion := cycle + uint64(memLat)
	tail := c.robHead + c.robLen
	if tail >= c.cfg.ROBSize {
		tail -= c.cfg.ROBSize
	}
	c.rob[tail] = completion
	c.robLen++
	if total++; total >= c.cfg.IssueWidth {
		total = 0
		cycle++
	}
	c.slotsUsed = total
	c.cycle = cycle
	c.instrs += uint64(gap) + 1
}

// reserveROB frees a ROB slot, stalling the core if the oldest in-flight
// memory instruction has not completed.
func (c *Core) reserveROB() {
	if c.robLen < c.cfg.ROBSize {
		return
	}
	done := c.rob[c.robHead]
	// Ring advance without the integer divide: head is always in range, so
	// one conditional subtract replaces the modulo.
	if c.robHead++; c.robHead == c.cfg.ROBSize {
		c.robHead = 0
	}
	c.robLen--
	if done > c.cycle {
		c.cycle = done
		c.slotsUsed = 0
	}
}

// IssueMem issues one memory instruction whose access latency is latency
// cycles. Stores should pass their (small) commit latency, not the fill
// latency, since they do not block retirement.
func (c *Core) IssueMem(latency uint32) {
	c.reserveROB()
	completion := c.cycle + uint64(latency)
	tail := c.robHead + c.robLen
	if tail >= c.cfg.ROBSize {
		tail -= c.cfg.ROBSize
	}
	c.rob[tail] = completion
	c.robLen++
	c.issueSlot()
}

// Drain advances the cycle past every in-flight completion (end of the
// simulated region).
func (c *Core) Drain() {
	for c.robLen > 0 {
		done := c.rob[c.robHead]
		if c.robHead++; c.robHead == c.cfg.ROBSize {
			c.robHead = 0
		}
		c.robLen--
		if done > c.cycle {
			c.cycle = done
		}
	}
	c.slotsUsed = 0
}

// ResetStats rebaselines the reported instruction and cycle counters (end of
// warmup). The absolute clock keeps advancing so shared resources (DRAM,
// NOCSTAR link reservations) remain monotonic.
func (c *Core) ResetStats() {
	c.baseCycle = c.cycle
	c.baseInstrs = c.instrs
}
