package cpu

import (
	"testing"
	"testing/quick"
)

func newCore(t *testing.T, width, rob int) *Core {
	t.Helper()
	c, err := New(0, Config{IssueWidth: width, ROBSize: rob})
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestValidate(t *testing.T) {
	if err := (Config{}).Validate(); err == nil {
		t.Fatal("zero config accepted")
	}
	if err := DefaultConfig().Validate(); err != nil {
		t.Fatal(err)
	}
	if DefaultConfig().IssueWidth != 6 || DefaultConfig().ROBSize != 352 {
		t.Fatal("Table 4 defaults changed")
	}
}

func TestNonMemIPCEqualsWidth(t *testing.T) {
	c := newCore(t, 4, 16)
	c.AdvanceNonMem(4000)
	if c.Instructions() != 4000 {
		t.Fatalf("instructions %d", c.Instructions())
	}
	if ipc := c.IPC(); ipc < 3.9 || ipc > 4.0 {
		t.Fatalf("non-mem IPC %v, want ≈4", ipc)
	}
}

func TestSingleLoadLatencyHidden(t *testing.T) {
	// One long load among many independent instructions: the ROB hides it.
	c := newCore(t, 1, 64)
	c.IssueMem(1000)
	c.AdvanceNonMem(63)
	if c.Cycle() >= 1000 {
		t.Fatalf("load not overlapped: cycle %d", c.Cycle())
	}
	c.Drain()
	if c.Cycle() < 1000 {
		t.Fatalf("drain did not wait for load: cycle %d", c.Cycle())
	}
}

func TestROBLimitsMLP(t *testing.T) {
	// With a 4-entry ROB, the 5th outstanding load stalls on the 1st.
	c := newCore(t, 1, 4)
	for i := 0; i < 4; i++ {
		c.IssueMem(1000)
	}
	if c.Cycle() >= 1000 {
		t.Fatal("stalled before ROB was full")
	}
	c.IssueMem(1000)
	if c.Cycle() < 1000 {
		t.Fatalf("ROB overflow did not stall: cycle %d", c.Cycle())
	}
}

func TestMLPOverlapsEqualLatency(t *testing.T) {
	// N loads of equal latency within the ROB window cost ≈1 window, not N.
	c := newCore(t, 1, 100)
	for i := 0; i < 100; i++ {
		c.IssueMem(500)
	}
	c.Drain()
	if c.Cycle() > 700 {
		t.Fatalf("no MLP: %d cycles for 100 overlapping loads", c.Cycle())
	}
	// Serial execution would be ≈50000 cycles.
}

func TestDrainIdempotent(t *testing.T) {
	c := newCore(t, 2, 8)
	c.IssueMem(100)
	c.Drain()
	cy := c.Cycle()
	c.Drain()
	if c.Cycle() != cy {
		t.Fatal("double drain advanced the clock")
	}
}

func TestResetStatsKeepsClock(t *testing.T) {
	c := newCore(t, 2, 8)
	c.AdvanceNonMem(100)
	abs := c.Cycle()
	c.ResetStats()
	if c.Cycle() != abs {
		t.Fatal("absolute clock must keep running across warmup reset")
	}
	if c.Instructions() != 0 || c.Cycles() != 0 {
		t.Fatal("relative counters not rebased")
	}
	c.AdvanceNonMem(10)
	if c.Instructions() != 10 {
		t.Fatalf("post-reset instructions %d", c.Instructions())
	}
}

func TestIPCBoundedByWidth(t *testing.T) {
	check := func(latencies []uint16) bool {
		c := newCore(t, 6, 32)
		for _, l := range latencies {
			c.IssueMem(uint32(l)%300 + 1)
			c.AdvanceNonMem(3)
		}
		c.Drain()
		if c.Instructions() == 0 {
			return true
		}
		return c.IPC() <= 6.0
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestCycleMonotoneProperty(t *testing.T) {
	check := func(ops []uint16) bool {
		c := newCore(t, 4, 16)
		prev := c.Cycle()
		for _, op := range ops {
			if op%2 == 0 {
				c.IssueMem(uint32(op % 500))
			} else {
				c.AdvanceNonMem(uint32(op % 10))
			}
			if c.Cycle() < prev {
				return false
			}
			prev = c.Cycle()
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
