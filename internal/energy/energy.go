// Package energy implements the event-based uncore energy model used for
// Fig 15: constant energy per LLC access, DRAM operation, mesh hop, and
// NOCSTAR transfer. The paper computes absolute numbers with CACTI-P,
// McPAT, and the Micron power calculator; Fig 15 reports energy normalized
// to LRU, for which relative event counts dominate, so a constant-energy
// model preserves the comparison (DESIGN.md §2).
package energy

// Model holds per-event energies in picojoules. Values are representative
// 7 nm-class numbers; only ratios matter for the normalized results.
type Model struct {
	LLCAccessPJ  float64 // per LLC lookup/fill (2 MB slice)
	DRAMReadPJ   float64 // per 64B DRAM read
	DRAMWritePJ  float64 // per 64B DRAM write
	MeshHopPJ    float64 // per flit-hop on the mesh
	MeshRouterPJ float64 // per router traversal
	NocstarPJ    float64 // per NOCSTAR transfer (Section 4.1.4: ≈50 pJ)
	PredictorPJ  float64 // per predictor table access
}

// Default returns the calibrated model.
func Default() Model {
	return Model{
		LLCAccessPJ:  500,
		DRAMReadPJ:   15000,
		DRAMWritePJ:  15000,
		MeshHopPJ:    60,
		MeshRouterPJ: 40,
		NocstarPJ:    50,
		PredictorPJ:  8,
	}
}

// Events counts the uncore activity of a run.
type Events struct {
	LLCAccesses  uint64
	DRAMReads    uint64
	DRAMWrites   uint64
	MeshMessages uint64
	MeshHops     uint64
	StarMessages uint64
	PredAccesses uint64
}

// Breakdown is the resulting energy split in millijoules.
type Breakdown struct {
	LLC   float64
	DRAM  float64
	NoC   float64 // mesh + NOCSTAR + predictor accesses
	Total float64
}

// Compute turns event counts into an energy breakdown.
func (m Model) Compute(ev Events) Breakdown {
	const pjToMj = 1e-9
	var b Breakdown
	b.LLC = float64(ev.LLCAccesses) * m.LLCAccessPJ * pjToMj
	b.DRAM = (float64(ev.DRAMReads)*m.DRAMReadPJ + float64(ev.DRAMWrites)*m.DRAMWritePJ) * pjToMj
	b.NoC = (float64(ev.MeshHops)*m.MeshHopPJ +
		float64(ev.MeshMessages)*m.MeshRouterPJ +
		float64(ev.StarMessages)*m.NocstarPJ +
		float64(ev.PredAccesses)*m.PredictorPJ) * pjToMj
	b.Total = b.LLC + b.DRAM + b.NoC
	return b
}
