package energy

import "testing"

func TestComputeBreakdown(t *testing.T) {
	m := Default()
	ev := Events{
		LLCAccesses:  1000,
		DRAMReads:    100,
		DRAMWrites:   50,
		MeshMessages: 200,
		MeshHops:     800,
		StarMessages: 40,
		PredAccesses: 500,
	}
	b := m.Compute(ev)
	if b.Total <= 0 {
		t.Fatal("zero energy")
	}
	if diff := b.Total - (b.LLC + b.DRAM + b.NoC); diff > 1e-12 || diff < -1e-12 {
		t.Fatalf("breakdown does not sum: %v", diff)
	}
	// DRAM dominates at these ratios (15 nJ vs 0.5 nJ per event).
	if b.DRAM <= b.LLC {
		t.Fatalf("DRAM %.4f should dominate LLC %.4f", b.DRAM, b.LLC)
	}
}

func TestZeroEvents(t *testing.T) {
	if b := Default().Compute(Events{}); b.Total != 0 {
		t.Fatalf("no events, energy %v", b.Total)
	}
}

func TestMonotonicInEvents(t *testing.T) {
	m := Default()
	small := m.Compute(Events{DRAMReads: 10})
	big := m.Compute(Events{DRAMReads: 20})
	if big.Total <= small.Total {
		t.Fatal("energy not monotone in event count")
	}
}

func TestNocstarCheapPerPaper(t *testing.T) {
	// Section 4.1.4: ≈50 pJ per NOCSTAR transfer — far below a DRAM access.
	m := Default()
	if m.NocstarPJ >= m.DRAMReadPJ/10 {
		t.Fatal("NOCSTAR energy out of proportion")
	}
	if m.NocstarPJ != 50 {
		t.Fatalf("NOCSTAR pJ %v, paper says ≈50", m.NocstarPJ)
	}
}
