// Package obs is the simulator's observability layer: a low-overhead metric
// registry (counters, gauges, histograms), an epoch time-series schema with
// NDJSON/CSV sinks for per-run telemetry, a live progress reporter for the
// experiment worker pool, structured-logging setup shared by the CLIs, and
// an HTTP endpoint serving pprof plus a JSON snapshot of the registry.
//
// Everything here observes the simulation without perturbing it: telemetry
// reads counters the simulator already maintains, and the disabled path is a
// single nil check with no allocation (DESIGN.md D5 — observability must not
// change results).
package obs

import (
	"encoding/json"
	"math"
	"sort"
	"sync"
	"sync/atomic"

	"drishti/internal/stats"
)

// Counter is a monotonically increasing metric, safe for concurrent use.
type Counter struct {
	v atomic.Uint64
}

// Add increments the counter by n.
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Inc increments the counter by one.
func (c *Counter) Inc() { c.v.Add(1) }

// Value returns the current count.
func (c *Counter) Value() uint64 { return c.v.Load() }

// Set forces the counter to v (used for totals that are discovered late,
// e.g. a sweep's cell count).
func (c *Counter) Set(v uint64) { c.v.Store(v) }

// Gauge is a point-in-time float metric, safe for concurrent use.
type Gauge struct {
	bits atomic.Uint64
}

// Set records v.
func (g *Gauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// Value returns the last recorded value.
func (g *Gauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }

// Histogram is a concurrency-safe wrapper over stats.Histogram for registry
// use (the in-simulator epoch path uses stats.Histogram directly — it is
// single-threaded and must stay lock-free).
type Histogram struct {
	mu sync.Mutex
	h  *stats.Histogram
}

// Observe records a value.
func (h *Histogram) Observe(v int64) {
	h.mu.Lock()
	h.h.Add(v)
	h.mu.Unlock()
}

// HistogramSnapshot is the exported view of a Histogram.
type HistogramSnapshot struct {
	Count uint64  `json:"count"`
	Mean  float64 `json:"mean"`
	P50   float64 `json:"p50"`
	P99   float64 `json:"p99"`
}

// Snapshot summarizes the histogram.
func (h *Histogram) Snapshot() HistogramSnapshot {
	h.mu.Lock()
	defer h.mu.Unlock()
	return HistogramSnapshot{
		Count: h.h.Count(),
		Mean:  h.h.Mean(),
		P50:   h.h.Quantile(0.5),
		P99:   h.h.Quantile(0.99),
	}
}

// Registry names and owns a set of metrics. Metric accessors create on first
// use, so callers never register up front. All methods are safe for
// concurrent use; the HTTP /metrics endpoint snapshots a registry while
// sweep workers update it.
type Registry struct {
	mu       sync.Mutex
	counters map[string]*Counter
	gauges   map[string]*Gauge
	hists    map[string]*Histogram
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters: make(map[string]*Counter),
		gauges:   make(map[string]*Gauge),
		hists:    make(map[string]*Histogram),
	}
}

var defaultRegistry = NewRegistry()

// Default returns the process-wide registry the CLIs publish to.
func Default() *Registry { return defaultRegistry }

// Counter returns the named counter, creating it if needed.
func (r *Registry) Counter(name string) *Counter {
	r.mu.Lock()
	defer r.mu.Unlock()
	c, ok := r.counters[name]
	if !ok {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the named gauge, creating it if needed.
func (r *Registry) Gauge(name string) *Gauge {
	r.mu.Lock()
	defer r.mu.Unlock()
	g, ok := r.gauges[name]
	if !ok {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns the named histogram, creating it with the given shape
// ([min, min+width*n) in n buckets plus overflow) if needed. The shape of an
// existing histogram is not changed.
func (r *Registry) Histogram(name string, min, width int64, n int) *Histogram {
	r.mu.Lock()
	defer r.mu.Unlock()
	h, ok := r.hists[name]
	if !ok {
		h = &Histogram{h: stats.NewHistogram(min, width, n)}
		r.hists[name] = h
	}
	return h
}

// Snapshot returns a stable map of every metric's current value: counters as
// uint64, gauges as float64, histograms as HistogramSnapshot.
func (r *Registry) Snapshot() map[string]any {
	r.mu.Lock()
	counters := make(map[string]*Counter, len(r.counters))
	for k, v := range r.counters {
		counters[k] = v
	}
	gauges := make(map[string]*Gauge, len(r.gauges))
	for k, v := range r.gauges {
		gauges[k] = v
	}
	hists := make(map[string]*Histogram, len(r.hists))
	for k, v := range r.hists {
		hists[k] = v
	}
	r.mu.Unlock()

	out := make(map[string]any, len(counters)+len(gauges)+len(hists))
	for k, c := range counters {
		out[k] = c.Value()
	}
	for k, g := range gauges {
		out[k] = g.Value()
	}
	for k, h := range hists {
		out[k] = h.Snapshot()
	}
	return out
}

// MarshalJSON renders the snapshot with sorted keys (json.Marshal on the
// snapshot map already sorts, but going through Snapshot keeps locking in
// one place).
func (r *Registry) MarshalJSON() ([]byte, error) {
	return json.Marshal(r.Snapshot())
}

// Names returns every metric name in sorted order (tests and debugging).
func (r *Registry) Names() []string {
	r.mu.Lock()
	defer r.mu.Unlock()
	names := make([]string, 0, len(r.counters)+len(r.gauges)+len(r.hists))
	for k := range r.counters {
		names = append(names, k)
	}
	for k := range r.gauges {
		names = append(names, k)
	}
	for k := range r.hists {
		names = append(names, k)
	}
	sort.Strings(names)
	return names
}
