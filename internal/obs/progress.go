package obs

import (
	"fmt"
	"io"
	"sync"
	"time"
)

// Progress is a live completed/total reporter for the experiment worker
// pool. Workers call Done as cells finish; the reporter rewrites one status
// line (throttled) with completed/total, cells/sec, and an ETA. All methods
// are safe for concurrent use and no-ops on a nil receiver, so callers
// thread an optional *Progress without nil checks.
type Progress struct {
	mu        sync.Mutex
	w         io.Writer
	label     string
	done      int
	total     int
	start     time.Time
	last      time.Time
	minPeriod time.Duration
	wrote     bool // a status line is on screen (needs \r or final \n)

	// Optional registry mirrors so an -http /metrics endpoint exposes the
	// same numbers the status line shows.
	cDone, cTotal *Counter
	gRate         *Gauge
}

// NewProgress returns a reporter writing to w (typically os.Stderr).
func NewProgress(w io.Writer, label string) *Progress {
	return &Progress{
		w:         w,
		label:     label,
		start:     time.Now(),
		minPeriod: 200 * time.Millisecond,
	}
}

// Attach mirrors the reporter's counters into reg under the given prefix
// (<prefix>_done, <prefix>_total, <prefix>_per_sec).
func (p *Progress) Attach(reg *Registry, prefix string) *Progress {
	if p == nil || reg == nil {
		return p
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	p.cDone = reg.Counter(prefix + "_done")
	p.cTotal = reg.Counter(prefix + "_total")
	p.gRate = reg.Gauge(prefix + "_per_sec")
	return p
}

// AddTotal grows the expected cell count (sweeps announce their size as
// they start, so the total accretes across an experiment).
func (p *Progress) AddTotal(n int) {
	if p == nil {
		return
	}
	p.mu.Lock()
	p.total += n
	if p.cTotal != nil {
		p.cTotal.Set(uint64(p.total))
	}
	p.maybeRenderLocked(false)
	p.mu.Unlock()
}

// Done records n completed cells.
func (p *Progress) Done(n int) {
	if p == nil {
		return
	}
	p.mu.Lock()
	p.done += n
	if p.cDone != nil {
		p.cDone.Set(uint64(p.done))
	}
	p.maybeRenderLocked(false)
	p.mu.Unlock()
}

// Finish forces a final render and terminates the status line. A reporter
// that never saw work stays silent.
func (p *Progress) Finish() {
	if p == nil {
		return
	}
	p.mu.Lock()
	if p.total > 0 || p.done > 0 {
		p.maybeRenderLocked(true)
	}
	if p.wrote {
		fmt.Fprintln(p.w)
		p.wrote = false
	}
	p.mu.Unlock()
}

// maybeRenderLocked redraws the status line if the throttle allows (or
// force). Callers hold p.mu.
func (p *Progress) maybeRenderLocked(force bool) {
	now := time.Now()
	if !force && now.Sub(p.last) < p.minPeriod {
		return
	}
	p.last = now
	line := p.renderLocked(now)
	if p.gRate != nil {
		p.gRate.Set(p.rateLocked(now))
	}
	fmt.Fprintf(p.w, "\r\x1b[K%s", line)
	p.wrote = true
}

// rateLocked returns completed cells per second so far.
func (p *Progress) rateLocked(now time.Time) float64 {
	el := now.Sub(p.start).Seconds()
	if el <= 0 {
		return 0
	}
	return float64(p.done) / el
}

// renderLocked formats the status line. Callers hold p.mu.
func (p *Progress) renderLocked(now time.Time) string {
	rate := p.rateLocked(now)
	eta := "--"
	if rate > 0 && p.total > p.done {
		eta = (time.Duration(float64(p.total-p.done)/rate) * time.Second).Round(time.Second).String()
	}
	return fmt.Sprintf("%s %d/%d cells  %.1f cells/s  ETA %s", p.label, p.done, p.total, rate, eta)
}

// Snapshot returns (done, total) for tests and callers that summarize.
func (p *Progress) Snapshot() (done, total int) {
	if p == nil {
		return 0, 0
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.done, p.total
}
