package obs

import (
	"bytes"
	"strings"
	"testing"
)

func TestNewLoggerLevels(t *testing.T) {
	var buf bytes.Buffer
	log := NewLogger(&buf, "drishti-bench", false)
	log.Info("experiment done", "id", "fig13")
	out := buf.String()
	if !strings.Contains(out, "bin=drishti-bench") || !strings.Contains(out, "id=fig13") {
		t.Fatalf("log line = %q", out)
	}

	buf.Reset()
	quiet := NewLogger(&buf, "drishti-bench", true)
	quiet.Info("suppressed")
	if buf.Len() != 0 {
		t.Fatalf("-quiet leaked info output: %q", buf.String())
	}
	quiet.Warn("kept")
	if !strings.Contains(buf.String(), "kept") {
		t.Fatalf("-quiet swallowed a warning: %q", buf.String())
	}
}

func TestDiscardDropsEverything(t *testing.T) {
	// Must not panic and must not write anywhere observable.
	Discard().Error("nobody hears this")
}

func TestRunIDStableAndDistinct(t *testing.T) {
	a := RunID("cfg|x", "mix|y")
	if a != RunID("cfg|x", "mix|y") {
		t.Fatal("RunID not deterministic")
	}
	if len(a) != 12 {
		t.Fatalf("RunID length = %d", len(a))
	}
	if a == RunID("cfg|x", "mix|z") {
		t.Fatal("different inputs collide")
	}
	// Part boundaries matter: ("ab","c") != ("a","bc").
	if RunID("ab", "c") == RunID("a", "bc") {
		t.Fatal("part boundaries ignored")
	}
}
