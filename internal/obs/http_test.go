package obs

import (
	"encoding/json"
	"io"
	"net/http"
	"testing"
)

func TestServeMetricsAndPprof(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("sweep_cells_done").Add(12)
	s, err := Serve("127.0.0.1:0", reg)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	resp, err := http.Get("http://" + s.Addr + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/metrics status = %d", resp.StatusCode)
	}
	var m map[string]any
	if err := json.Unmarshal(body, &m); err != nil {
		t.Fatalf("/metrics not JSON: %v\n%s", err, body)
	}
	if m["sweep_cells_done"].(float64) != 12 {
		t.Fatalf("/metrics = %v", m)
	}

	resp, err = http.Get("http://" + s.Addr + "/debug/pprof/")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/debug/pprof/ status = %d", resp.StatusCode)
	}
}

func TestServeBadAddr(t *testing.T) {
	if _, err := Serve("256.256.256.256:0", NewRegistry()); err == nil {
		t.Fatal("bad address accepted")
	}
}
