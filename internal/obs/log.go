package obs

import (
	"hash/fnv"
	"io"
	"log/slog"
)

// NewLogger builds the slog logger the CLIs share: key=value text lines to
// w, tagged with the binary name. quiet raises the level to Warn so -quiet
// suppresses informational chatter without hiding failures.
func NewLogger(w io.Writer, name string, quiet bool) *slog.Logger {
	level := slog.LevelInfo
	if quiet {
		level = slog.LevelWarn
	}
	h := slog.NewTextHandler(w, &slog.HandlerOptions{Level: level})
	return slog.New(h).With("bin", name)
}

// Discard returns a logger that drops everything (the default for library
// callers that did not wire logging).
func Discard() *slog.Logger {
	return slog.New(slog.NewTextHandler(io.Discard, &slog.HandlerOptions{Level: slog.LevelError + 1}))
}

// RunID derives a short stable identifier from the given parts (typically a
// config key plus a mix key). Equal inputs give equal IDs across processes,
// so log lines and telemetry epochs of the same cell correlate.
func RunID(parts ...string) string {
	h := fnv.New64a()
	for _, p := range parts {
		io.WriteString(h, p)
		h.Write([]byte{0})
	}
	const hex = "0123456789abcdef"
	v := h.Sum64()
	var b [12]byte
	for i := len(b) - 1; i >= 0; i-- {
		b[i] = hex[v&0xf]
		v >>= 4
	}
	return string(b[:])
}
