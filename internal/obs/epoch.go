package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"strconv"
	"sync"
)

// Epoch is one telemetry snapshot of a running simulation. All activity
// fields are deltas over the epoch (the demand loads since the previous
// snapshot), not cumulative totals — plotting a field over Seq directly
// gives the time series.
//
// The NDJSON export writes one Epoch object per line; the field names and
// types below are the schema downstream plotting scripts depend on and are
// pinned by TestEpochNDJSONGolden.
type Epoch struct {
	Run    string `json:"run,omitempty"`    // run tag (mix name or sweep cell ID)
	Policy string `json:"policy,omitempty"` // policy display name
	Seq    int    `json:"seq"`              // epoch number within the run, 0-based
	Loads  uint64 `json:"loads"`            // LLC demand loads in this epoch
	Warmup bool   `json:"warmup,omitempty"` // true for epochs inside the warmup region
	Final  bool   `json:"final,omitempty"`  // true for the (possibly short) last epoch

	// Lane and Cell attribute an epoch to its batch lane and sweep cell
	// when several lockstep lanes share one sink (see TagEpochs). Lane is
	// 1-based — the lane's index in the batch plus one — so 0 (omitted)
	// means "not a batched lane". Both are NDJSON-only: the CSV schema
	// predates them and its header is pinned.
	Lane int    `json:"lane,omitempty"`
	Cell string `json:"cell,omitempty"` // sweep cell ID (store key hash)

	Slices []SliceEpoch `json:"slices"`          // per LLC slice
	Cores  []CoreEpoch  `json:"cores"`           // per core (demand traffic it sent to the LLC)
	Banks  []BankEpoch  `json:"banks,omitempty"` // per predictor bank (empty for non-predictor policies)
	DSC    []DSCEpoch   `json:"dsc,omitempty"`   // per slice with a dynamic sampled cache
	Mesh   MeshEpoch    `json:"mesh"`
	Star   StarEpoch    `json:"star"`
}

// SliceEpoch is one LLC slice's demand traffic over the epoch.
type SliceEpoch struct {
	Accesses uint64  `json:"accesses"`
	Misses   uint64  `json:"misses"`
	MissRate float64 `json:"missRate"` // Misses/Accesses, 0 when idle
}

// CoreEpoch is the demand traffic one core sent to the LLC over the epoch.
type CoreEpoch struct {
	Accesses uint64  `json:"accesses"`
	Misses   uint64  `json:"misses"`
	HitRate  float64 `json:"hitRate"` // 1 - Misses/Accesses, 0 when idle
}

// BankEpoch is one predictor bank's activity over the epoch. Under Drishti's
// per-core-global placement bank i is core i's predictor, so this is the
// per-core predictor lookup/train series.
type BankEpoch struct {
	Lookups uint64 `json:"lookups"`
	Trains  uint64 `json:"trains"`
}

// DSCEpoch is one slice's dynamic-sampled-cache activity over the epoch.
// Utilization is the fraction of the slice's demand misses that landed in
// currently sampled sets — the quantity Enhancement II exists to raise
// (randomly chosen sampled sets sit idle while hot sets go unsampled).
type DSCEpoch struct {
	SampledMisses    uint64  `json:"sampledMisses"`
	UnsampledMisses  uint64  `json:"unsampledMisses"`
	Utilization      float64 `json:"utilization"`
	Selections       uint64  `json:"selections"`       // monitor→active transitions
	UniformFallbacks uint64  `json:"uniformFallbacks"` // selections that fell back to random
	Churn            uint64  `json:"churn"`            // sampled sets replaced by selections
}

// MeshEpoch is the mesh traffic over the epoch.
type MeshEpoch struct {
	Messages uint64 `json:"messages"`
	Hops     uint64 `json:"hops"`
}

// StarEpoch is the NOCSTAR traffic over the epoch.
type StarEpoch struct {
	Messages uint64 `json:"messages"`
	Stalls   uint64 `json:"stalls"` // cycles lost to link contention
}

// EpochSink receives epoch snapshots. Implementations must be safe for
// concurrent use: parallel sweep cells share one sink.
type EpochSink interface {
	WriteEpoch(*Epoch) error
}

// TagEpochs wraps next so every epoch passing through is stamped with
// lane/cell attribution before being forwarded. lane is 1-based (pass 0
// to leave the field off, e.g. for serial runs); cell is typically the
// sweep cell's store-key hash. The simulator allocates a fresh Epoch per
// flush, so stamping in place is safe.
func TagEpochs(next EpochSink, lane int, cell string) EpochSink {
	return &tagSink{next: next, lane: lane, cell: cell}
}

type tagSink struct {
	next EpochSink
	lane int
	cell string
}

// WriteEpoch implements EpochSink.
func (t *tagSink) WriteEpoch(e *Epoch) error {
	e.Lane = t.lane
	e.Cell = t.cell
	return t.next.WriteEpoch(e)
}

// --- NDJSON ------------------------------------------------------------------

// NDJSONWriter writes one JSON object per line. Lines are written atomically
// under a mutex, so interleaved runs stay line-separated.
type NDJSONWriter struct {
	mu  sync.Mutex
	enc *json.Encoder
}

// NewNDJSONWriter wraps w.
func NewNDJSONWriter(w io.Writer) *NDJSONWriter {
	return &NDJSONWriter{enc: json.NewEncoder(w)}
}

// WriteEpoch implements EpochSink.
func (n *NDJSONWriter) WriteEpoch(e *Epoch) error {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.enc.Encode(e)
}

// --- CSV ---------------------------------------------------------------------

// csvHeader is the flattened long-format schema: one row per (epoch, kind,
// idx), with columns unused by a kind left empty.
const csvHeader = "run,policy,seq,warmup,final,loads,kind,idx," +
	"accesses,misses,rate," +
	"lookups,trains," +
	"sampledMisses,unsampledMisses,utilization,selections,uniformFallbacks,churn," +
	"messages,hops,stalls\n"

// CSVWriter flattens epochs into long-format CSV rows (kind ∈ slice, core,
// bank, dsc, mesh, star). Safe for concurrent use.
type CSVWriter struct {
	mu     sync.Mutex
	w      io.Writer
	header bool
}

// NewCSVWriter wraps w; the header row is emitted before the first epoch.
func NewCSVWriter(w io.Writer) *CSVWriter { return &CSVWriter{w: w} }

// WriteEpoch implements EpochSink.
func (c *CSVWriter) WriteEpoch(e *Epoch) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if !c.header {
		if _, err := io.WriteString(c.w, csvHeader); err != nil {
			return err
		}
		c.header = true
	}
	var buf []byte
	prefix := fmt.Sprintf("%s,%s,%d,%t,%t,%d", csvEscape(e.Run), csvEscape(e.Policy),
		e.Seq, e.Warmup, e.Final, e.Loads)
	row := func(kind string, idx int, cols [14]string) {
		buf = append(buf, prefix...)
		buf = append(buf, ',')
		buf = append(buf, kind...)
		buf = append(buf, ',')
		buf = strconv.AppendInt(buf, int64(idx), 10)
		for _, col := range cols {
			buf = append(buf, ',')
			buf = append(buf, col...)
		}
		buf = append(buf, '\n')
	}
	u := func(v uint64) string { return strconv.FormatUint(v, 10) }
	f := func(v float64) string { return strconv.FormatFloat(v, 'g', 6, 64) }
	for i, s := range e.Slices {
		row("slice", i, [14]string{0: u(s.Accesses), 1: u(s.Misses), 2: f(s.MissRate)})
	}
	for i, s := range e.Cores {
		row("core", i, [14]string{0: u(s.Accesses), 1: u(s.Misses), 2: f(s.HitRate)})
	}
	for i, b := range e.Banks {
		row("bank", i, [14]string{3: u(b.Lookups), 4: u(b.Trains)})
	}
	for i, d := range e.DSC {
		row("dsc", i, [14]string{5: u(d.SampledMisses), 6: u(d.UnsampledMisses),
			7: f(d.Utilization), 8: u(d.Selections), 9: u(d.UniformFallbacks), 10: u(d.Churn)})
	}
	row("mesh", 0, [14]string{11: u(e.Mesh.Messages), 12: u(e.Mesh.Hops)})
	row("star", 0, [14]string{11: u(e.Star.Messages), 13: u(e.Star.Stalls)})
	_, err := c.w.Write(buf)
	return err
}

// csvEscape quotes a field if it contains CSV metacharacters. Mix names and
// policy names are alphanumeric today; this guards future tags.
func csvEscape(s string) string {
	for i := 0; i < len(s); i++ {
		switch s[i] {
		case ',', '"', '\n', '\r':
			return strconv.Quote(s)
		}
	}
	return s
}
