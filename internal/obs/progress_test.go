package obs

import (
	"bytes"
	"strings"
	"sync"
	"testing"
)

func TestProgressAccounting(t *testing.T) {
	var buf bytes.Buffer
	p := NewProgress(&buf, "sweep")
	p.AddTotal(10)
	p.Done(3)
	p.Finish()
	done, total := p.Snapshot()
	if done != 3 || total != 10 {
		t.Fatalf("snapshot = %d/%d", done, total)
	}
	out := buf.String()
	if !strings.Contains(out, "sweep 3/10 cells") {
		t.Fatalf("status line missing counts: %q", out)
	}
	if !strings.Contains(out, "cells/s") || !strings.Contains(out, "ETA") {
		t.Fatalf("status line missing rate/ETA: %q", out)
	}
	if !strings.HasSuffix(out, "\n") {
		t.Fatalf("Finish did not terminate the line: %q", out)
	}
}

func TestProgressNilSafe(t *testing.T) {
	var p *Progress
	p.AddTotal(5)
	p.Done(1)
	p.Finish()
	if d, tot := p.Snapshot(); d != 0 || tot != 0 {
		t.Fatalf("nil snapshot = %d/%d", d, tot)
	}
}

func TestProgressRegistryMirror(t *testing.T) {
	var buf bytes.Buffer
	reg := NewRegistry()
	p := NewProgress(&buf, "sweep").Attach(reg, "sweep_cells")
	p.AddTotal(4)
	p.Done(2)
	p.Finish()
	if got := reg.Counter("sweep_cells_done").Value(); got != 2 {
		t.Fatalf("mirrored done = %d", got)
	}
	if got := reg.Counter("sweep_cells_total").Value(); got != 4 {
		t.Fatalf("mirrored total = %d", got)
	}
}

// TestProgressConcurrent hammers the reporter from many goroutines; the
// worker pool calls Done from every worker, so -race must stay clean.
func TestProgressConcurrent(t *testing.T) {
	var buf bytes.Buffer
	p := NewProgress(&buf, "sweep")
	p.AddTotal(800)
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 100; j++ {
				p.Done(1)
			}
		}()
	}
	wg.Wait()
	p.Finish()
	if done, _ := p.Snapshot(); done != 800 {
		t.Fatalf("done = %d", done)
	}
	if !strings.Contains(buf.String(), "800/800") {
		t.Fatalf("final line missing: %q", buf.String())
	}
}
