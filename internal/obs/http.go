package obs

import (
	"encoding/json"
	"net"
	"net/http"
	"net/http/pprof"
	"time"
)

// Server is a running observability HTTP endpoint.
type Server struct {
	Addr string // bound address (resolves :0 to the actual port)
	srv  *http.Server
	done chan error
}

// Serve starts an HTTP server on addr exposing:
//
//	/metrics       JSON snapshot of reg
//	/debug/pprof/  the standard pprof index, profiles, and traces
//
// It binds synchronously (so the caller sees port conflicts immediately)
// and serves in a background goroutine. Use Close to shut it down.
func Serve(addr string, reg *Registry) (*Server, error) {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		enc.Encode(reg.Snapshot())
	})
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)

	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	s := &Server{
		Addr: ln.Addr().String(),
		srv:  &http.Server{Handler: mux, ReadHeaderTimeout: 5 * time.Second},
		done: make(chan error, 1),
	}
	go func() { s.done <- s.srv.Serve(ln) }()
	return s, nil
}

// Close stops the server.
func (s *Server) Close() error {
	err := s.srv.Close()
	<-s.done // wait for Serve to return so no goroutine outlives Close
	return err
}
