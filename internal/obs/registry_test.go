package obs

import (
	"encoding/json"
	"sync"
	"testing"
)

func TestRegistryCounterGauge(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("cells_done")
	c.Inc()
	c.Add(4)
	if got := r.Counter("cells_done").Value(); got != 5 {
		t.Fatalf("counter = %d, want 5", got)
	}
	g := r.Gauge("rate")
	g.Set(3.5)
	if got := r.Gauge("rate").Value(); got != 3.5 {
		t.Fatalf("gauge = %v, want 3.5", got)
	}
	// Same name returns the same metric, not a fresh one.
	if r.Counter("cells_done") != c {
		t.Fatal("Counter did not return the existing instance")
	}
}

func TestRegistryHistogramSnapshot(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("lat", 0, 10, 10)
	for _, v := range []int64{5, 15, 15, 25} {
		h.Observe(v)
	}
	s := h.Snapshot()
	if s.Count != 4 {
		t.Fatalf("count = %d", s.Count)
	}
	if s.Mean != 15 {
		t.Fatalf("mean = %v, want 15", s.Mean)
	}
	if s.P50 < 10 || s.P50 > 20 {
		t.Fatalf("p50 = %v, want within [10,20]", s.P50)
	}
}

func TestRegistrySnapshotJSON(t *testing.T) {
	r := NewRegistry()
	r.Counter("a").Add(7)
	r.Gauge("b").Set(1.5)
	b, err := json.Marshal(r)
	if err != nil {
		t.Fatal(err)
	}
	var m map[string]any
	if err := json.Unmarshal(b, &m); err != nil {
		t.Fatal(err)
	}
	if m["a"].(float64) != 7 || m["b"].(float64) != 1.5 {
		t.Fatalf("snapshot = %v", m)
	}
}

// TestRegistryConcurrent exercises creation and updates from many
// goroutines; go test -race is the assertion.
func TestRegistryConcurrent(t *testing.T) {
	r := NewRegistry()
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				r.Counter("shared").Inc()
				r.Gauge("g").Set(float64(j))
				r.Histogram("h", 0, 1, 4).Observe(int64(j % 4))
				if j%100 == 0 {
					r.Snapshot()
				}
			}
		}()
	}
	wg.Wait()
	if got := r.Counter("shared").Value(); got != 8000 {
		t.Fatalf("counter = %d, want 8000", got)
	}
	if len(r.Names()) != 3 {
		t.Fatalf("names = %v", r.Names())
	}
}
