package trace

import (
	"bufio"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"os"
	"sync"
)

// JournalVersion is the schema version stamped on every journal line.
// Bump it whenever the Span wire encoding changes, and regenerate the
// golden file in testdata/ with -update.
const JournalVersion = 1

// journalLine is one NDJSON record of the event journal.
type journalLine struct {
	V    int  `json:"v"`
	Span Span `json:"span"`
}

// Journal is an append-only NDJSON event journal of completed spans,
// persisted next to the result store. Appends are crash-safe: each span
// is marshalled fully before a single O_APPEND write, so a crash can
// only ever truncate the final line, never interleave or corrupt
// earlier ones. Journal implements Sink.
type Journal struct {
	mu sync.Mutex
	f  *os.File
}

// OpenJournal opens (creating if needed) the journal at path for
// appending.
func OpenJournal(path string) (*Journal, error) {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, fmt.Errorf("trace journal: %w", err)
	}
	return &Journal{f: f}, nil
}

// Record implements Sink. Marshal errors are impossible for Span
// (string/int fields only) and write errors are swallowed: tracing must
// never take down the serving path.
func (j *Journal) Record(s *Span) {
	if j == nil {
		return
	}
	line, err := json.Marshal(journalLine{V: JournalVersion, Span: *s})
	if err != nil {
		return
	}
	line = append(line, '\n')
	j.mu.Lock()
	_, _ = j.f.Write(line)
	j.mu.Unlock()
}

// Close closes the underlying file.
func (j *Journal) Close() error {
	if j == nil {
		return nil
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.f.Close()
}

// ErrJournalVersion reports a journal line written by an incompatible
// schema version.
var ErrJournalVersion = errors.New("trace journal: unsupported schema version")

// ReadJournal reads every span from the journal at path. A torn or
// truncated *final* line — the only damage a crash mid-append can cause
// — is tolerated and skipped; malformed lines anywhere else, and any
// line with an unknown schema version, are errors.
func ReadJournal(path string) ([]Span, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("trace journal: %w", err)
	}
	defer f.Close()
	return readJournal(f)
}

func readJournal(r io.Reader) ([]Span, error) {
	var spans []Span
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 4*1024*1024)
	lineNo := 0
	var pendingErr error
	for sc.Scan() {
		lineNo++
		if pendingErr != nil {
			// The malformed line was not the last one: real corruption.
			return nil, pendingErr
		}
		raw := sc.Bytes()
		if len(raw) == 0 {
			continue
		}
		var jl journalLine
		if err := json.Unmarshal(raw, &jl); err != nil {
			// Maybe a crash-torn tail; only fatal if more lines follow.
			pendingErr = fmt.Errorf("trace journal: line %d: %w", lineNo, err)
			continue
		}
		if jl.V != JournalVersion {
			return nil, fmt.Errorf("%w: line %d has v=%d, want %d",
				ErrJournalVersion, lineNo, jl.V, JournalVersion)
		}
		spans = append(spans, jl.Span)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("trace journal: %w", err)
	}
	return spans, nil
}
