package trace

import (
	"bytes"
	"errors"
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

var update = flag.Bool("update", false, "rewrite golden files")

func goldenSpans() []Span {
	return []Span{
		{
			TraceID:     "0123456789abcdef0123456789abcdef",
			SpanID:      "00000000000000aa",
			Name:        "job",
			Node:        "served",
			StartUnixNS: 1700000000000000000,
			DurationNS:  250_000_000,
			Attrs:       map[string]string{"status": "done"},
		},
		{
			TraceID:     "0123456789abcdef0123456789abcdef",
			SpanID:      "00000000000000bb",
			ParentID:    "00000000000000aa",
			Name:        "lane",
			Node:        "w001-a",
			StartUnixNS: 1700000000010000000,
			DurationNS:  120_000_000,
		},
	}
}

// TestJournalGolden pins the on-disk journal schema. A deliberate
// schema change must bump JournalVersion and regenerate with -update.
func TestJournalGolden(t *testing.T) {
	path := filepath.Join(t.TempDir(), "trace.journal")
	j, err := OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	for i := range goldenSpans() {
		s := goldenSpans()[i]
		j.Record(&s)
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	got, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	golden := filepath.Join("testdata", "journal.golden")
	if *update {
		if err := os.WriteFile(golden, got, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("journal bytes drifted from %s.\nA deliberate schema change must bump JournalVersion and regenerate with -update.\ngot:\n%swant:\n%s",
			golden, got, want)
	}
}

func TestJournalRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "trace.journal")
	j, err := OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	want := goldenSpans()
	for i := range want {
		j.Record(&want[i])
	}
	// Re-open and append: the journal must accumulate, not truncate.
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	j2, err := OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	extra := Span{TraceID: "ff", SpanID: "01", Name: "late", StartUnixNS: 1, DurationNS: 2}
	j2.Record(&extra)
	if err := j2.Close(); err != nil {
		t.Fatal(err)
	}
	want = append(want, extra)

	got, err := ReadJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) {
		t.Fatalf("read %d spans, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i].SpanID != want[i].SpanID || got[i].Name != want[i].Name {
			t.Fatalf("span %d: got %+v, want %+v", i, got[i], want[i])
		}
	}
	if got[0].Attrs["status"] != "done" {
		t.Fatalf("attrs lost: %+v", got[0])
	}
}

// TestJournalCrashTornTail: a crash mid-append leaves a truncated final
// line; the journal must still read every complete span before it.
func TestJournalCrashTornTail(t *testing.T) {
	path := filepath.Join(t.TempDir(), "trace.journal")
	j, err := OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	spans := goldenSpans()
	for i := range spans {
		j.Record(&spans[i])
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	// Simulate the crash: chop the file mid-way through the last line.
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	cut := bytes.LastIndexByte(bytes.TrimRight(raw, "\n"), '{')
	if err := os.WriteFile(path, raw[:cut+5], 0o644); err != nil {
		t.Fatal(err)
	}
	got, err := ReadJournal(path)
	if err != nil {
		t.Fatalf("torn tail must be tolerated, got error: %v", err)
	}
	if len(got) != len(spans)-1 {
		t.Fatalf("read %d spans, want %d (all but the torn one)", len(got), len(spans)-1)
	}
	// And the journal stays appendable after the crash.
	j2, err := OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	defer j2.Close()
	j2.Record(&Span{TraceID: "t", SpanID: "s", Name: "recovered", StartUnixNS: 1, DurationNS: 1})
}

// TestJournalMidFileCorruption: damage anywhere but the tail is real
// corruption and must surface as an error, not be skipped silently.
func TestJournalMidFileCorruption(t *testing.T) {
	path := filepath.Join(t.TempDir(), "trace.journal")
	lines := []string{
		`{"v":1,"span":{"traceId":"t","spanId":"a","name":"ok","startUnixNs":1,"durationNs":1}}`,
		`{"v":1,"span":{"traceId":"t","spa`, // torn, but NOT last
		`{"v":1,"span":{"traceId":"t","spanId":"b","name":"ok2","startUnixNs":2,"durationNs":1}}`,
	}
	if err := os.WriteFile(path, []byte(strings.Join(lines, "\n")+"\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadJournal(path); err == nil {
		t.Fatal("mid-file corruption read back without error")
	}
}

// TestJournalVersionMismatch: future schema versions are refused.
func TestJournalVersionMismatch(t *testing.T) {
	path := filepath.Join(t.TempDir(), "trace.journal")
	line := `{"v":99,"span":{"traceId":"t","spanId":"a","name":"x","startUnixNs":1,"durationNs":1}}` + "\n"
	if err := os.WriteFile(path, []byte(line), 0o644); err != nil {
		t.Fatal(err)
	}
	_, err := ReadJournal(path)
	if !errors.Is(err, ErrJournalVersion) {
		t.Fatalf("got %v, want ErrJournalVersion", err)
	}
}
