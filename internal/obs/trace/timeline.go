package trace

import (
	"fmt"
	"io"
	"sort"
	"time"
)

const timelineBarWidth = 40

// RenderTimeline writes a text timeline of one trace's spans: one
// swimlane per node, spans drawn as proportional bars over the trace's
// wall-clock extent, with the critical path (the chain from the root
// that ends latest at every step) marked with '*' and drawn with '#'.
func RenderTimeline(w io.Writer, spans []Span) {
	if len(spans) == 0 {
		fmt.Fprintln(w, "trace: no spans")
		return
	}
	start, end := spans[0].StartUnixNS, spans[0].End()
	for _, s := range spans[1:] {
		if s.StartUnixNS < start {
			start = s.StartUnixNS
		}
		if s.End() > end {
			end = s.End()
		}
	}
	total := end - start
	if total <= 0 {
		total = 1
	}

	critical := criticalPath(spans)
	onPath := make(map[string]bool, len(critical))
	for _, s := range critical {
		onPath[s.SpanID] = true
	}

	// Group by node, lanes ordered by each node's earliest span.
	byNode := make(map[string][]Span)
	var nodes []string
	ordered := make([]Span, len(spans))
	copy(ordered, spans)
	sort.Slice(ordered, func(i, j int) bool {
		if ordered[i].StartUnixNS != ordered[j].StartUnixNS {
			return ordered[i].StartUnixNS < ordered[j].StartUnixNS
		}
		if ordered[i].Name != ordered[j].Name {
			return ordered[i].Name < ordered[j].Name
		}
		return ordered[i].SpanID < ordered[j].SpanID
	})
	for _, s := range ordered {
		node := s.Node
		if node == "" {
			node = "(unknown)"
		}
		if _, ok := byNode[node]; !ok {
			nodes = append(nodes, node)
		}
		byNode[node] = append(byNode[node], s)
	}

	fmt.Fprintf(w, "trace %s · %d spans · %s\n",
		spans[0].TraceID, len(spans), fmtDur(total))
	nameW := 12
	for _, s := range spans {
		if len(s.Name) > nameW {
			nameW = len(s.Name)
		}
	}
	for _, node := range nodes {
		fmt.Fprintf(w, "%s\n", node)
		for _, s := range byNode[node] {
			lo := int(int64(timelineBarWidth) * (s.StartUnixNS - start) / total)
			hi := int(int64(timelineBarWidth) * (s.End() - start) / total)
			if hi <= lo {
				hi = lo + 1
			}
			if hi > timelineBarWidth {
				hi = timelineBarWidth
			}
			bar := make([]byte, timelineBarWidth)
			fill := byte('=')
			mark := ' '
			if onPath[s.SpanID] {
				fill = '#'
				mark = '*'
			}
			for i := range bar {
				switch {
				case i >= lo && i < hi:
					bar[i] = fill
				default:
					bar[i] = '.'
				}
			}
			fmt.Fprintf(w, "  %c %-*s %9s |%s|\n",
				mark, nameW, s.Name, fmtDur(s.DurationNS), bar)
		}
	}
	if len(critical) > 0 {
		fmt.Fprintf(w, "critical path:")
		var pathNS int64
		for i, s := range critical {
			if i > 0 {
				fmt.Fprintf(w, " →")
			}
			fmt.Fprintf(w, " %s", s.Name)
			pathNS += s.DurationNS
		}
		pct := 100 * float64(critical[len(critical)-1].End()-critical[0].StartUnixNS) / float64(total)
		fmt.Fprintf(w, " (%.0f%% of trace)\n", pct)
	}
}

// criticalPath returns the chain of spans from the root obtained by
// descending, at every span, into the child that ends latest. With the
// root ending last (the usual case — the job span encloses everything)
// this is the path that determined the trace's wall-clock duration.
func criticalPath(spans []Span) []Span {
	children := make(map[string][]Span)
	byID := make(map[string]Span, len(spans))
	for _, s := range spans {
		byID[s.SpanID] = s
	}
	var root *Span
	for _, s := range spans {
		if _, ok := byID[s.ParentID]; s.ParentID != "" && ok {
			children[s.ParentID] = append(children[s.ParentID], s)
			continue
		}
		// Orphan or true root: the earliest-starting one wins.
		if root == nil || s.StartUnixNS < root.StartUnixNS {
			c := s
			root = &c
		}
	}
	if root == nil {
		return nil
	}
	path := []Span{*root}
	cur := *root
	for {
		kids := children[cur.SpanID]
		if len(kids) == 0 {
			return path
		}
		best := kids[0]
		for _, k := range kids[1:] {
			if k.End() > best.End() ||
				(k.End() == best.End() && k.SpanID < best.SpanID) {
				best = k
			}
		}
		path = append(path, best)
		cur = best
	}
}

func fmtDur(ns int64) string {
	return time.Duration(ns).Round(time.Microsecond).String()
}
