package trace

import "sync"

// defaultCollectorCap bounds how many distinct traces the in-memory
// collector retains before evicting the oldest; a long-lived service
// must not grow without bound.
const defaultCollectorCap = 256

// Collector is an in-memory Sink that groups completed spans by trace
// ID so the coordinator can serve whole span trees over
// GET /v1/jobs/{id}/trace. When more than cap distinct traces are held,
// the oldest trace (by first-seen order) is evicted.
type Collector struct {
	mu     sync.Mutex
	cap    int
	traces map[string][]Span
	order  []string
}

// NewCollector returns a collector retaining up to cap traces
// (cap <= 0 selects the default).
func NewCollector(cap int) *Collector {
	if cap <= 0 {
		cap = defaultCollectorCap
	}
	return &Collector{cap: cap, traces: make(map[string][]Span)}
}

// Record implements Sink.
func (c *Collector) Record(s *Span) {
	if s.TraceID == "" {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, ok := c.traces[s.TraceID]; !ok {
		if len(c.order) >= c.cap {
			evict := c.order[0]
			c.order = c.order[1:]
			delete(c.traces, evict)
		}
		c.order = append(c.order, s.TraceID)
	}
	c.traces[s.TraceID] = append(c.traces[s.TraceID], *s)
}

// Spans returns a copy of the collected spans of one trace (nil when
// the trace is unknown or evicted).
func (c *Collector) Spans(traceID string) []Span {
	c.mu.Lock()
	defer c.mu.Unlock()
	got := c.traces[traceID]
	if got == nil {
		return nil
	}
	out := make([]Span, len(got))
	copy(out, got)
	return out
}

// Recorder bundles the pieces one tracing-enabled process needs: an
// in-memory collector (for serving traces), an optional persistent
// journal, and the node name stamped on locally minted spans. A nil
// *Recorder is fully inert, so callers thread a single optional field
// through their Options.
type Recorder struct {
	node      string
	collector *Collector
	journal   *Journal
	sink      Sink
}

// NewRecorder builds a recorder for node. journal may be nil
// (in-memory only).
func NewRecorder(node string, journal *Journal) *Recorder {
	r := &Recorder{node: node, collector: NewCollector(0), journal: journal}
	if journal != nil {
		r.sink = Multi(r.collector, journal)
	} else {
		r.sink = r.collector
	}
	return r
}

// Record implements Sink: spans are collected and journalled. Used both
// by local tracers and for spans shipped back from workers (nil-safe).
func (r *Recorder) Record(s *Span) {
	if r == nil {
		return
	}
	r.sink.Record(s)
}

// Spans returns the collected spans of one trace (nil-safe).
func (r *Recorder) Spans(traceID string) []Span {
	if r == nil {
		return nil
	}
	return r.collector.Spans(traceID)
}

// Tracer returns a tracer minting spans on this recorder's node
// (nil on a nil recorder, making all downstream span calls no-ops).
func (r *Recorder) Tracer() *Tracer {
	if r == nil {
		return nil
	}
	return NewTracer(r.node, r)
}

// Close closes the journal, if any (nil-safe).
func (r *Recorder) Close() error {
	if r == nil {
		return nil
	}
	return r.journal.Close()
}
