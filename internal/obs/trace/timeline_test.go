package trace

import (
	"strings"
	"testing"
)

func timelineFixture() []Span {
	// job (served) encloses decompose (served) and two worker lanes;
	// lane-b ends last, so the critical path is job → lease → lane-b.
	base := int64(1_700_000_000_000_000_000)
	ms := int64(1_000_000)
	return []Span{
		{TraceID: "t0", SpanID: "s-job", Name: "job", Node: "served",
			StartUnixNS: base, DurationNS: 100 * ms},
		{TraceID: "t0", SpanID: "s-dec", ParentID: "s-job", Name: "decompose", Node: "served",
			StartUnixNS: base + 1*ms, DurationNS: 4 * ms},
		{TraceID: "t0", SpanID: "s-lease", ParentID: "s-job", Name: "lease", Node: "served",
			StartUnixNS: base + 6*ms, DurationNS: 90 * ms},
		{TraceID: "t0", SpanID: "s-lane-a", ParentID: "s-lease", Name: "lane-a", Node: "w001",
			StartUnixNS: base + 10*ms, DurationNS: 30 * ms},
		{TraceID: "t0", SpanID: "s-lane-b", ParentID: "s-lease", Name: "lane-b", Node: "w002",
			StartUnixNS: base + 10*ms, DurationNS: 80 * ms},
	}
}

func TestRenderTimeline(t *testing.T) {
	var sb strings.Builder
	RenderTimeline(&sb, timelineFixture())
	out := sb.String()

	for _, want := range []string{
		"trace t0 · 5 spans · 100ms",
		"served", "w001", "w002",
		"job", "decompose", "lane-a", "lane-b",
		"critical path: job → lease → lane-b",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("timeline missing %q:\n%s", want, out)
		}
	}
	// Critical-path rows are starred and drawn with '#'; off-path rows
	// are not.
	for _, line := range strings.Split(out, "\n") {
		if !strings.Contains(line, "|") { // bar rows only
			continue
		}
		switch {
		case strings.Contains(line, " lane-b "):
			if !strings.Contains(line, "*") || !strings.Contains(line, "#") {
				t.Fatalf("lane-b not marked critical: %q", line)
			}
		case strings.Contains(line, " lane-a "):
			if strings.Contains(line, "*") || strings.Contains(line, "#") {
				t.Fatalf("lane-a wrongly marked critical: %q", line)
			}
		case strings.Contains(line, " decompose "):
			if strings.Contains(line, "*") {
				t.Fatalf("decompose wrongly on critical path: %q", line)
			}
		}
	}
}

func TestRenderTimelineEmpty(t *testing.T) {
	var sb strings.Builder
	RenderTimeline(&sb, nil)
	if !strings.Contains(sb.String(), "no spans") {
		t.Fatalf("empty render: %q", sb.String())
	}
}

func TestCriticalPathOrphanRoot(t *testing.T) {
	// A span whose parent never arrived (lost completion) still roots
	// a path instead of panicking.
	spans := []Span{
		{TraceID: "t", SpanID: "x", ParentID: "missing", Name: "lane",
			StartUnixNS: 10, DurationNS: 5},
	}
	got := criticalPath(spans)
	if len(got) != 1 || got[0].SpanID != "x" {
		t.Fatalf("orphan path: %+v", got)
	}
}
