// Package trace is lightweight span-based distributed tracing for the
// drishti serving stack. A trace is a tree of spans identified by a
// shared trace ID; spans carry wall-clock timing plus free-form string
// attributes and flow from workers back to the coordinator over the
// fleet wire protocol, where they are collected in memory and persisted
// to an append-only NDJSON journal.
//
// The package is deliberately tiny and dependency-free: no sampling, no
// clock propagation, no baggage. Everything is nil-safe — a nil *Tracer
// (tracing disabled) makes Start return a nil *ActiveSpan whose methods
// are all no-ops, so instrumented code pays one nil check and nothing
// else.
package trace

import (
	"context"
	"crypto/rand"
	"encoding/hex"
	"sync"
	"time"
)

// Span is one completed timed operation. The JSON encoding is the wire
// and journal schema; changes must bump JournalVersion and regenerate
// the golden file in testdata/.
type Span struct {
	TraceID  string `json:"traceId"`
	SpanID   string `json:"spanId"`
	ParentID string `json:"parentId,omitempty"`
	// Name is the operation ("job", "decompose", "lease", "lane", ...).
	Name string `json:"name"`
	// Node is the process that recorded the span (service name or
	// worker ID); it keys the timeline swimlanes.
	Node        string            `json:"node,omitempty"`
	StartUnixNS int64             `json:"startUnixNs"`
	DurationNS  int64             `json:"durationNs"`
	Attrs       map[string]string `json:"attrs,omitempty"`
}

// End returns the span's end time as unix nanoseconds.
func (s *Span) End() int64 { return s.StartUnixNS + s.DurationNS }

// SpanContext is the propagated identity of a span: just enough to
// parent remote children. A zero SpanContext means "no trace".
type SpanContext struct {
	TraceID string
	SpanID  string
}

// Valid reports whether the context belongs to a live trace.
func (sc SpanContext) Valid() bool { return sc.TraceID != "" }

// Sink receives completed spans. Implementations must be safe for
// concurrent use.
type Sink interface {
	Record(s *Span)
}

// Tracer mints spans for one node and hands the completed ones to a
// sink. The zero value and the nil pointer are both inert.
type Tracer struct {
	node string
	sink Sink
}

// NewTracer returns a tracer stamping node onto every span. A nil sink
// yields a tracer whose spans are dropped on End (still usable for
// context propagation, but pointless — prefer a nil *Tracer when
// tracing is off).
func NewTracer(node string, sink Sink) *Tracer {
	return &Tracer{node: node, sink: sink}
}

// Start opens a span under parent. A zero parent starts a new trace
// with a fresh trace ID; a parent with only a TraceID starts a root
// span of that trace. On a nil tracer Start returns nil, and every
// *ActiveSpan method is nil-safe, so callers never branch.
func (t *Tracer) Start(parent SpanContext, name string) *ActiveSpan {
	if t == nil {
		return nil
	}
	traceID := parent.TraceID
	if traceID == "" {
		traceID = NewTraceID()
	}
	return &ActiveSpan{
		tracer: t,
		span: Span{
			TraceID:     traceID,
			SpanID:      newSpanID(),
			ParentID:    parent.SpanID,
			Name:        name,
			Node:        t.node,
			StartUnixNS: time.Now().UnixNano(),
		},
		start: time.Now(),
	}
}

// ActiveSpan is an in-progress span. Not safe for concurrent mutation;
// one goroutine owns a span between Start and End.
type ActiveSpan struct {
	tracer *Tracer
	span   Span
	start  time.Time
	ended  bool
}

// Context returns the span's propagation context (zero on nil).
func (a *ActiveSpan) Context() SpanContext {
	if a == nil {
		return SpanContext{}
	}
	return SpanContext{TraceID: a.span.TraceID, SpanID: a.span.SpanID}
}

// SetAttr attaches a key/value attribute (no-op on nil).
func (a *ActiveSpan) SetAttr(key, value string) {
	if a == nil {
		return
	}
	if a.span.Attrs == nil {
		a.span.Attrs = make(map[string]string, 4)
	}
	a.span.Attrs[key] = value
}

// End completes the span and records it. Safe to call more than once;
// only the first call records.
func (a *ActiveSpan) End() {
	if a == nil || a.ended {
		return
	}
	a.ended = true
	a.span.DurationNS = time.Since(a.start).Nanoseconds()
	if a.tracer != nil && a.tracer.sink != nil {
		s := a.span
		a.tracer.sink.Record(&s)
	}
}

// NewTraceID returns a fresh 16-byte random trace ID in hex.
func NewTraceID() string { return randomHex(16) }

func newSpanID() string { return randomHex(8) }

func randomHex(n int) string {
	b := make([]byte, n)
	// crypto/rand never fails on the platforms we run on; on the
	// impossible error path b stays zeroed and the ID is still
	// well-formed, keeping tracing non-fatal.
	_, _ = rand.Read(b)
	return hex.EncodeToString(b)
}

// Buffer is a Sink that accumulates spans in memory until drained.
// Workers buffer the spans of one lease group and ship them on the
// completion message.
type Buffer struct {
	mu    sync.Mutex
	spans []Span
}

// Record implements Sink.
func (b *Buffer) Record(s *Span) {
	b.mu.Lock()
	b.spans = append(b.spans, *s)
	b.mu.Unlock()
}

// Drain returns and clears the buffered spans (nil-safe).
func (b *Buffer) Drain() []Span {
	if b == nil {
		return nil
	}
	b.mu.Lock()
	out := b.spans
	b.spans = nil
	b.mu.Unlock()
	return out
}

// Multi fans a span out to several sinks (nils skipped).
func Multi(sinks ...Sink) Sink {
	kept := make([]Sink, 0, len(sinks))
	for _, s := range sinks {
		if s != nil {
			kept = append(kept, s)
		}
	}
	return multiSink(kept)
}

type multiSink []Sink

func (m multiSink) Record(s *Span) {
	for _, sk := range m {
		sk.Record(s)
	}
}

// --- context propagation -----------------------------------------------------

type ctxKey struct{}

// NewContext returns ctx carrying sc, so trace identity flows through
// call chains (e.g. Service → Distributor.RunJob) without signature
// changes.
func NewContext(ctx context.Context, sc SpanContext) context.Context {
	return context.WithValue(ctx, ctxKey{}, sc)
}

// FromContext extracts the span context stored by NewContext (zero when
// absent).
func FromContext(ctx context.Context) SpanContext {
	sc, _ := ctx.Value(ctxKey{}).(SpanContext)
	return sc
}
