package trace

import (
	"context"
	"fmt"
	"sync"
	"testing"
	"time"
)

// TestNilTracerIsInert: the entire span API must be callable through a
// nil tracer — that is the "tracing off" fast path.
func TestNilTracerIsInert(t *testing.T) {
	var tr *Tracer
	sp := tr.Start(SpanContext{}, "noop")
	if sp != nil {
		t.Fatalf("nil tracer produced a span: %+v", sp)
	}
	// All methods on the nil span are no-ops.
	sp.SetAttr("k", "v")
	if got := sp.Context(); got.Valid() {
		t.Fatalf("nil span has valid context %+v", got)
	}
	sp.End()
	sp.End()

	var rec *Recorder
	rec.Record(&Span{TraceID: "t"})
	if got := rec.Spans("t"); got != nil {
		t.Fatalf("nil recorder returned spans: %v", got)
	}
	if tr := rec.Tracer(); tr != nil {
		t.Fatalf("nil recorder returned tracer: %v", tr)
	}
	if err := rec.Close(); err != nil {
		t.Fatal(err)
	}
	var buf *Buffer
	if got := buf.Drain(); got != nil {
		t.Fatalf("nil buffer drained %v", got)
	}
}

func TestTracerSpans(t *testing.T) {
	var buf Buffer
	tr := NewTracer("node-a", &buf)

	root := tr.Start(SpanContext{}, "job")
	if !root.Context().Valid() {
		t.Fatal("root has no trace ID")
	}
	child := tr.Start(root.Context(), "step")
	child.SetAttr("cells", "4")
	time.Sleep(time.Millisecond)
	child.End()
	child.End() // double End records once
	root.End()

	spans := buf.Drain()
	if len(spans) != 2 {
		t.Fatalf("got %d spans, want 2", len(spans))
	}
	c, r := spans[0], spans[1]
	if c.Name != "step" || r.Name != "job" {
		t.Fatalf("span order: %q, %q", c.Name, r.Name)
	}
	if c.TraceID != r.TraceID {
		t.Fatalf("trace IDs differ: %q vs %q", c.TraceID, r.TraceID)
	}
	if c.ParentID != r.SpanID {
		t.Fatalf("child parent %q != root span %q", c.ParentID, r.SpanID)
	}
	if c.Node != "node-a" {
		t.Fatalf("node = %q", c.Node)
	}
	if c.Attrs["cells"] != "4" {
		t.Fatalf("attrs = %v", c.Attrs)
	}
	if c.DurationNS <= 0 {
		t.Fatalf("duration = %d", c.DurationNS)
	}
	if got := buf.Drain(); len(got) != 0 {
		t.Fatalf("drain not empty after drain: %v", got)
	}
}

// TestStartWithRemoteParent: a parent context arriving over the wire
// (trace ID + span ID) parents local spans into the remote trace.
func TestStartWithRemoteParent(t *testing.T) {
	var buf Buffer
	tr := NewTracer("worker-1", &buf)
	sp := tr.Start(SpanContext{TraceID: "cafe", SpanID: "beef"}, "lease-group")
	sp.End()
	got := buf.Drain()
	if len(got) != 1 || got[0].TraceID != "cafe" || got[0].ParentID != "beef" {
		t.Fatalf("remote-parented span: %+v", got)
	}
}

func TestCollectorGroupsAndEvicts(t *testing.T) {
	c := NewCollector(2)
	c.Record(&Span{TraceID: "t1", SpanID: "a"})
	c.Record(&Span{TraceID: "t2", SpanID: "b"})
	c.Record(&Span{TraceID: "t1", SpanID: "c"})
	if got := len(c.Spans("t1")); got != 2 {
		t.Fatalf("t1 has %d spans, want 2", got)
	}
	// Third distinct trace evicts the oldest (t1).
	c.Record(&Span{TraceID: "t3", SpanID: "d"})
	if got := c.Spans("t1"); got != nil {
		t.Fatalf("t1 not evicted: %v", got)
	}
	if got := len(c.Spans("t2")); got != 1 {
		t.Fatalf("t2 has %d spans, want 1", got)
	}
	// Returned slice is a copy.
	s := c.Spans("t2")
	s[0].Name = "mutated"
	if c.Spans("t2")[0].Name == "mutated" {
		t.Fatal("Spans returned internal storage")
	}
}

func TestRecorderRoundTrip(t *testing.T) {
	rec := NewRecorder("served", nil)
	tr := rec.Tracer()
	sp := tr.Start(SpanContext{TraceID: "feed"}, "job")
	sp.End()
	got := rec.Spans("feed")
	if len(got) != 1 || got[0].Name != "job" || got[0].Node != "served" {
		t.Fatalf("recorder spans: %+v", got)
	}
}

func TestContextRoundTrip(t *testing.T) {
	sc := SpanContext{TraceID: "aa", SpanID: "bb"}
	ctx := NewContext(context.Background(), sc)
	if got := FromContext(ctx); got != sc {
		t.Fatalf("got %+v, want %+v", got, sc)
	}
	if got := FromContext(context.Background()); got.Valid() {
		t.Fatalf("empty context yielded %+v", got)
	}
}

func TestNewTraceIDUnique(t *testing.T) {
	a, b := NewTraceID(), NewTraceID()
	if a == b {
		t.Fatalf("collision: %s", a)
	}
	if len(a) != 32 {
		t.Fatalf("trace ID %q has length %d, want 32", a, len(a))
	}
}

// TestBufferConcurrent exercises the sinks under -race.
func TestBufferConcurrent(t *testing.T) {
	var buf Buffer
	col := NewCollector(0)
	sink := Multi(&buf, col, nil)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				sink.Record(&Span{TraceID: "t", SpanID: fmt.Sprintf("%d-%d", g, i)})
			}
		}(g)
	}
	wg.Wait()
	if got := len(buf.Drain()); got != 800 {
		t.Fatalf("buffer drained %d spans, want 800", got)
	}
	if got := len(col.Spans("t")); got != 800 {
		t.Fatalf("collector has %d spans, want 800", got)
	}
}
