package obs

import (
	"bytes"
	"encoding/json"
	"flag"
	"os"
	"strings"
	"sync"
	"testing"
)

var update = flag.Bool("update", false, "rewrite golden files")

// goldenEpochs is a fixed pair of epochs exercising every schema field.
func goldenEpochs() []*Epoch {
	return []*Epoch{
		{
			Run: "mix01", Policy: "d-mockingjay", Seq: 0, Loads: 4096, Warmup: true,
			Slices: []SliceEpoch{{Accesses: 100, Misses: 25, MissRate: 0.25}, {}},
			Cores:  []CoreEpoch{{Accesses: 60, Misses: 15, HitRate: 0.75}, {Accesses: 40, Misses: 10, HitRate: 0.75}},
			Banks:  []BankEpoch{{Lookups: 30, Trains: 12}, {Lookups: 20, Trains: 8}},
			DSC: []DSCEpoch{{SampledMisses: 5, UnsampledMisses: 20, Utilization: 0.2,
				Selections: 1, UniformFallbacks: 0, Churn: 3}},
			Mesh: MeshEpoch{Messages: 200, Hops: 420},
			Star: StarEpoch{Messages: 42, Stalls: 2},
		},
		{
			Run: "mix01", Policy: "d-mockingjay", Seq: 1, Loads: 512, Final: true,
			Lane: 2, Cell: "c0ffee42",
			Slices: []SliceEpoch{{Accesses: 12, Misses: 3, MissRate: 0.25}, {Accesses: 4, Misses: 4, MissRate: 1}},
			Cores:  []CoreEpoch{{Accesses: 16, Misses: 7, HitRate: 0.5625}, {}},
			Mesh:   MeshEpoch{Messages: 31, Hops: 62},
			Star:   StarEpoch{},
		},
	}
}

// TestEpochNDJSONGolden pins the NDJSON epoch schema — field names, types,
// and line framing — so downstream plotting scripts don't silently break.
// If this fails because of an intentional schema change, update
// testdata/epoch.golden AND the schema documentation in README.md.
func TestEpochNDJSONGolden(t *testing.T) {
	var buf bytes.Buffer
	w := NewNDJSONWriter(&buf)
	for _, e := range goldenEpochs() {
		if err := w.WriteEpoch(e); err != nil {
			t.Fatal(err)
		}
	}
	if *update {
		if err := os.WriteFile("testdata/epoch.golden", buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile("testdata/epoch.golden")
	if err != nil {
		t.Fatal(err)
	}
	if got := buf.String(); got != string(want) {
		t.Fatalf("NDJSON schema drifted from testdata/epoch.golden\n got: %s\nwant: %s", got, want)
	}
	// Every line must be standalone-parseable JSON (NDJSON framing).
	for i, line := range strings.Split(strings.TrimSpace(buf.String()), "\n") {
		var m map[string]any
		if err := json.Unmarshal([]byte(line), &m); err != nil {
			t.Fatalf("line %d is not valid JSON: %v", i, err)
		}
	}
}

func TestEpochCSV(t *testing.T) {
	var buf bytes.Buffer
	w := NewCSVWriter(&buf)
	for _, e := range goldenEpochs() {
		if err := w.WriteEpoch(e); err != nil {
			t.Fatal(err)
		}
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if !strings.HasPrefix(lines[0], "run,policy,seq,warmup,final,loads,kind,idx,") {
		t.Fatalf("header = %q", lines[0])
	}
	// Epoch 0: 2 slices + 2 cores + 2 banks + 1 dsc + mesh + star = 9 rows.
	// Epoch 1: 2 slices + 2 cores + mesh + star = 6 rows. Plus the header.
	if len(lines) != 1+9+6 {
		t.Fatalf("row count = %d:\n%s", len(lines), buf.String())
	}
	cols := strings.Count(lines[0], ",")
	for i, l := range lines[1:] {
		if strings.Count(l, ",") != cols {
			t.Fatalf("row %d has ragged columns: %q", i, l)
		}
	}
	if !strings.Contains(buf.String(), "mix01,d-mockingjay,0,true,false,4096,slice,0,100,25,0.25") {
		t.Fatalf("slice row missing:\n%s", buf.String())
	}
	if !strings.Contains(buf.String(), ",dsc,0,,,,,,5,20,0.2,1,0,3,,,") {
		t.Fatalf("dsc row missing:\n%s", buf.String())
	}
}

// TestTagEpochs: the tagging wrapper stamps lane/cell attribution on
// every epoch and otherwise forwards untouched.
func TestTagEpochs(t *testing.T) {
	var buf bytes.Buffer
	sink := TagEpochs(NewNDJSONWriter(&buf), 3, "deadbeef")
	if err := sink.WriteEpoch(&Epoch{Run: "mix01", Policy: "lru", Seq: 7, Loads: 11}); err != nil {
		t.Fatal(err)
	}
	var m map[string]any
	if err := json.Unmarshal(buf.Bytes(), &m); err != nil {
		t.Fatal(err)
	}
	if m["lane"] != float64(3) || m["cell"] != "deadbeef" {
		t.Fatalf("tags not stamped: %v", m)
	}
	if m["run"] != "mix01" || m["seq"] != float64(7) {
		t.Fatalf("payload mangled: %v", m)
	}
	// lane 0 stays off the wire (serial / untagged runs).
	buf.Reset()
	if err := TagEpochs(NewNDJSONWriter(&buf), 0, "").WriteEpoch(&Epoch{Run: "r"}); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(buf.String(), "lane") || strings.Contains(buf.String(), "cell") {
		t.Fatalf("zero tags leaked into wire: %s", buf.String())
	}
}

func TestCSVEscape(t *testing.T) {
	if got := csvEscape("plain-name"); got != "plain-name" {
		t.Fatalf("escaped plain string: %q", got)
	}
	if got := csvEscape(`a,b"c`); got != `"a,b\"c"` {
		t.Fatalf("escape = %q", got)
	}
}

// TestNDJSONWriterConcurrent checks that parallel runs sharing one sink keep
// whole lines (and keeps -race honest about the writer's locking).
func TestNDJSONWriterConcurrent(t *testing.T) {
	var buf bytes.Buffer
	w := NewNDJSONWriter(&buf)
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			e := &Epoch{Run: "r", Seq: i, Slices: []SliceEpoch{{}}, Cores: []CoreEpoch{{}}}
			for j := 0; j < 50; j++ {
				if err := w.WriteEpoch(e); err != nil {
					t.Error(err)
					return
				}
			}
		}(i)
	}
	wg.Wait()
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 200 {
		t.Fatalf("line count = %d", len(lines))
	}
	for _, l := range lines {
		var m map[string]any
		if err := json.Unmarshal([]byte(l), &m); err != nil {
			t.Fatalf("interleaved line %q: %v", l, err)
		}
	}
}
